package main

import (
	"strings"
	"testing"
)

func metroResults() []result {
	return []result{
		{Name: "BenchmarkMetroCapture/shards=1/cells=200/ues=512", Procs: 4, Iters: 300000, NsOp: 1000, AllocsOp: 0},
		{Name: "BenchmarkMetroCapture/shards=4/cells=200/ues=512", Procs: 4, Iters: 300000, NsOp: 320, AllocsOp: 0},
		{Name: "BenchmarkUnrelated", Procs: 4, Iters: 1000, NsOp: 50, AllocsOp: 99},
	}
}

func TestGatePassesOnScaling(t *testing.T) {
	report, err := gate(metroResults(), "MetroCapture", "shards=1", "shards=4", 2.5, 2, 0)
	if err != nil {
		t.Fatalf("gate failed: %v (report %v)", err, report)
	}
	if len(report) == 0 {
		t.Fatal("gate produced no report lines")
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "3.12x") {
		t.Fatalf("report missing measured speedup: %s", joined)
	}
}

func TestGateFailsBelowFloor(t *testing.T) {
	rs := metroResults()
	rs[1].NsOp = 500 // only 2.0x
	if _, err := gate(rs, "MetroCapture", "shards=1", "shards=4", 2.5, -1, 0); err == nil {
		t.Fatal("2.0x speedup passed a 2.5x floor")
	}
}

func TestGateFailsOnAllocGrowth(t *testing.T) {
	rs := metroResults()
	rs[1].AllocsOp = 3
	if _, err := gate(rs, "MetroCapture", "shards=1", "shards=4", 0, 2, 0); err == nil {
		t.Fatal("3 allocs/op passed a limit of 2")
	}
	// The unrelated benchmark's 99 allocs/op must not trip the gate:
	// -bench scopes which entries are considered.
	if _, err := gate(metroResults(), "MetroCapture", "", "", 0, 2, 0); err != nil {
		t.Fatalf("alloc gate leaked outside -bench scope: %v", err)
	}
}

func TestGateAllocRatio(t *testing.T) {
	lake := func(baseAllocs, targetAllocs int64) []result {
		return []result{
			{Name: "BenchmarkLakeSpill/lake=off", Iters: 1000, NsOp: 100, AllocsOp: baseAllocs},
			{Name: "BenchmarkLakeSpill/lake=on", Iters: 1000, NsOp: 110, AllocsOp: targetAllocs},
		}
	}
	// Within the cap: 11 <= 1.15 * 10.
	if _, err := gate(lake(10, 11), "LakeSpill", "lake=off", "lake=on", 0, -1, 1.15); err != nil {
		t.Fatalf("11 vs 10 allocs failed a 1.15x cap: %v", err)
	}
	// Over the cap: 12 > 1.15 * 10.
	if _, err := gate(lake(10, 12), "LakeSpill", "lake=off", "lake=on", 0, -1, 1.15); err == nil {
		t.Fatal("12 vs 10 allocs passed a 1.15x cap")
	}
	// A 0-alloc baseline demands a 0-alloc target regardless of ratio.
	if _, err := gate(lake(0, 1), "LakeSpill", "lake=off", "lake=on", 0, -1, 100); err == nil {
		t.Fatal("allocating target passed against a 0-alloc baseline")
	}
	if _, err := gate(lake(0, 0), "LakeSpill", "lake=off", "lake=on", 0, -1, 1.15); err != nil {
		t.Fatalf("0 vs 0 allocs failed: %v", err)
	}
	// The ratio gate needs base and target entries.
	if _, err := gate(lake(0, 0), "LakeSpill", "", "lake=on", 0, -1, 1.15); err == nil {
		t.Fatal("ratio gate without -base passed")
	}
}

func TestGateMatchErrors(t *testing.T) {
	if _, err := gate(metroResults(), "NoSuchBench", "", "", 0, -1, 0); err == nil {
		t.Fatal("empty selection passed")
	}
	if _, err := gate(metroResults(), "MetroCapture", "shards=9", "shards=4", 2.5, -1, 0); err == nil {
		t.Fatal("missing base entry passed")
	}
	if _, err := gate(metroResults(), "MetroCapture", "shards=1", "shards=", 2.5, -1, 0); err == nil {
		t.Fatal("ambiguous target match passed")
	}
	if _, err := gate(metroResults(), "MetroCapture", "", "shards=4", 2.5, -1, 0); err == nil {
		t.Fatal("speedup gate without -base passed")
	}
	zero := metroResults()
	zero[0].NsOp = 0
	if _, err := gate(zero, "MetroCapture", "shards=1", "shards=4", 2.5, -1, 0); err == nil {
		t.Fatal("zero ns/op baseline passed")
	}
}
