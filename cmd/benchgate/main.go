// Command benchgate enforces benchmark invariants against a benchjson
// artifact: given a baseline benchmark name and a target benchmark name
// (matched as substrings of the artifact's entries), it fails the build
// unless the target is at least -min-speedup times faster than the
// baseline, and unless every matched entry stays within -max-allocs
// allocations per operation.
//
//	go test ./internal/shard -bench MetroCapture -benchmem -run '^$' |
//	    go run ./cmd/benchjson > BENCH_metro.json
//	go run ./cmd/benchgate -json BENCH_metro.json \
//	    -base shards=1 -target shards=4 -min-speedup 2.5 -max-allocs 2
//
// CI's metro bench job uses it to turn the sharded-scaling claim into a
// build gate: the 4-shard run must sustain >= 2.5x the 1-shard
// throughput on the same scenario, alloc-free in steady state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// result mirrors cmd/benchjson's output schema.
type result struct {
	Name     string             `json:"name"`
	Procs    int                `json:"procs"`
	Iters    int64              `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BOp      int64              `json:"b_op,omitempty"`
	AllocsOp int64              `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		jsonPath   = flag.String("json", "", "benchjson artifact to check (required)")
		bench      = flag.String("bench", "", "only consider entries whose name contains this substring (optional)")
		base       = flag.String("base", "", "baseline entry: the unique considered entry whose name contains this substring")
		target     = flag.String("target", "", "target entry: the unique considered entry whose name contains this substring")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless target is at least this many times faster than base (0 = skip)")
		maxAllocs  = flag.Int64("max-allocs", -1, "fail if any considered entry reports more allocs/op than this (-1 = skip)")
		maxRatio   = flag.Float64("max-alloc-ratio", 0, "fail unless target allocs/op <= this ratio times base allocs/op; a 0-alloc base requires a 0-alloc target (0 = skip)")
	)
	flag.Parse()
	if *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -json is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*jsonPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *jsonPath, err)
		os.Exit(2)
	}
	report, err := gate(results, *bench, *base, *target, *minSpeedup, *maxAllocs, *maxRatio)
	for _, line := range report {
		fmt.Println("benchgate:", line)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// gate checks the invariants and returns a human-readable report plus
// the first violation (nil if all hold).
func gate(results []result, bench, base, target string, minSpeedup float64, maxAllocs int64, maxAllocRatio float64) ([]string, error) {
	considered := results
	if bench != "" {
		considered = nil
		for _, r := range results {
			if strings.Contains(r.Name, bench) {
				considered = append(considered, r)
			}
		}
	}
	if len(considered) == 0 {
		return nil, fmt.Errorf("no benchmark entries matched %q", bench)
	}
	var report []string

	if maxAllocs >= 0 {
		for _, r := range considered {
			report = append(report, fmt.Sprintf("%s: %d allocs/op (limit %d)", r.Name, r.AllocsOp, maxAllocs))
			if r.AllocsOp > maxAllocs {
				return report, fmt.Errorf("%s reports %d allocs/op, limit %d", r.Name, r.AllocsOp, maxAllocs)
			}
		}
	}

	if minSpeedup > 0 {
		b, err := unique(considered, base, "base")
		if err != nil {
			return report, err
		}
		t, err := unique(considered, target, "target")
		if err != nil {
			return report, err
		}
		if b.NsOp <= 0 || t.NsOp <= 0 {
			return report, fmt.Errorf("ns/op missing: base %v, target %v", b.NsOp, t.NsOp)
		}
		speedup := b.NsOp / t.NsOp
		report = append(report, fmt.Sprintf("%s vs %s: %.2fx throughput (floor %.2fx)",
			t.Name, b.Name, speedup, minSpeedup))
		if speedup < minSpeedup {
			return report, fmt.Errorf("target %s is %.2fx the baseline %s; floor is %.2fx",
				t.Name, speedup, b.Name, minSpeedup)
		}
	}

	if maxAllocRatio > 0 {
		b, err := unique(considered, base, "base")
		if err != nil {
			return report, err
		}
		t, err := unique(considered, target, "target")
		if err != nil {
			return report, err
		}
		limit := float64(b.AllocsOp) * maxAllocRatio
		report = append(report, fmt.Sprintf("%s vs %s: %d vs %d allocs/op (ratio cap %.2fx)",
			t.Name, b.Name, t.AllocsOp, b.AllocsOp, maxAllocRatio))
		if b.AllocsOp == 0 {
			// A 0-alloc baseline is a hard invariant: any ratio of zero is
			// zero, so the target must stay alloc-free too.
			if t.AllocsOp != 0 {
				return report, fmt.Errorf("target %s allocates (%d allocs/op) but baseline %s is alloc-free",
					t.Name, t.AllocsOp, b.Name)
			}
		} else if float64(t.AllocsOp) > limit {
			return report, fmt.Errorf("target %s reports %d allocs/op, cap is %.1f (%.2fx of %s's %d)",
				t.Name, t.AllocsOp, limit, maxAllocRatio, b.Name, b.AllocsOp)
		}
	}
	return report, nil
}

// unique finds the single entry whose name contains the substring.
func unique(results []result, sub, role string) (result, error) {
	if sub == "" {
		return result{}, fmt.Errorf("this gate needs -%s", role)
	}
	var found []result
	for _, r := range results {
		if strings.Contains(r.Name, sub) {
			found = append(found, r)
		}
	}
	switch len(found) {
	case 0:
		return result{}, fmt.Errorf("no entry matches %s %q", role, sub)
	case 1:
		return found[0], nil
	default:
		names := make([]string, len(found))
		for i, r := range found {
			names[i] = r.Name
		}
		return result{}, fmt.Errorf("%s %q is ambiguous: %s", role, sub, strings.Join(names, ", "))
	}
}
