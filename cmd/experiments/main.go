// Command experiments regenerates the paper's evaluation: every figure
// of §5 (and appendix C/D) as the same series the paper plots, against
// the simulated RAN substrate. See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments -fig all            # everything, full scale
//	experiments -fig fig7a,fig9b    # a subset
//	experiments -quick              # smoke-scale sweep
//	experiments -summary            # headline numbers only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"nrscope/internal/eval"
)

var figures = []struct {
	id  string
	fn  func(eval.Options) eval.Figure
	doc string
}{
	{"fig7a", eval.Fig7a, "DCI miss rate, srsRAN, 1-4 UEs"},
	{"fig7b", eval.Fig7b, "DCI miss rate, Amarisoft, 8-64 UEs"},
	{"fig8a", eval.Fig8a, "REG decoding error CCDF, srsRAN"},
	{"fig8b", eval.Fig8b, "REG decoding error CCDF, Amarisoft"},
	{"fig9a", eval.Fig9a, "throughput error CCDF, Mosolab"},
	{"fig9b", eval.Fig9b, "throughput error CCDF, Amarisoft"},
	{"fig9c", eval.Fig9c, "throughput error CCDF, T-Mobile"},
	{"fig10", eval.Fig10, "UE active time CCDF, T-Mobile"},
	{"fig11", eval.Fig11, "active UEs per second/minute CDF"},
	{"fig12", eval.Fig12, "processing time vs UEs, 1 vs 4 threads"},
	{"fig13", eval.Fig13, "DCI miss rate across the floor"},
	{"fig14", eval.Fig14, "spare capacity estimation, 2 UEs"},
	{"fig15", eval.Fig15, "MCS and retransmission by channel"},
	{"fig16abc", eval.Fig16abc, "throughput error by UE status"},
	{"fig16d", eval.Fig16d, "packet aggregation per TTI"},
	{"ext-sched", eval.ExtSchedulers, "extension: RR vs PF scheduler fingerprinting"},
	{"ext-cc", eval.ExtCongestion, "extension: telemetry-driven congestion control vs AIMD"},
}

func main() {
	var (
		which   = flag.String("fig", "all", "comma-separated figure ids, or 'all'")
		quick   = flag.Bool("quick", false, "smoke-scale sweeps")
		slots   = flag.Int("slots", 0, "override per-run slot count")
		seed    = flag.Int64("seed", 0, "override base seed")
		summary = flag.Bool("summary", false, "print headline notes only")
		list    = flag.Bool("list", false, "list available figures")
	)
	flag.Parse()

	if *list {
		for _, f := range figures {
			fmt.Printf("%-9s %s\n", f.id, f.doc)
		}
		return
	}

	want := map[string]bool{}
	if *which != "all" {
		for _, id := range strings.Split(*which, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !knownFigure(id) {
				log.Fatalf("unknown figure %q (try -list)", id)
			}
		}
	}

	opts := eval.Options{Quick: *quick, Slots: *slots, Seed: *seed}
	for _, f := range figures {
		if *which != "all" && !want[f.id] {
			continue
		}
		start := time.Now()
		fig := f.fn(opts)
		if *summary {
			fmt.Print(fig.Summary())
		} else {
			fmt.Print(fig.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", f.id, time.Since(start).Round(time.Millisecond))
	}
}

func knownFigure(id string) bool {
	for _, f := range figures {
		if f.id == id {
			return true
		}
	}
	return false
}
