// Command nrscope runs the telemetry tool against a simulated 5G SA
// cell: it acquires MIB/SIB1, tracks UE associations through the RACH,
// decodes every UE's DCIs per TTI, and writes the telemetry log —
// optionally streaming it over TCP to application servers, the paper's
// §6 feedback path.
//
// Usage:
//
//	nrscope -cell amarisoft -ues 4 -duration 10s -threads 4 \
//	        -log telemetry.jsonl -stream 127.0.0.1:9900
//	nrscope -record capture.nrsc -duration 10s     # save the air capture
//	nrscope -replay capture.nrsc -log t.jsonl      # post-process offline
//	nrscope -metrics 127.0.0.1:9090 ...            # Prometheus + pprof endpoint
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"nrscope"
	"nrscope/internal/capfile"
	"nrscope/internal/obs"
	"nrscope/internal/telemetry"
)

func main() {
	var (
		cellName = flag.String("cell", "amarisoft", "cell preset: srsran|mosolab|amarisoft|tmobile1|tmobile2")
		ues      = flag.Int("ues", 2, "number of simulated UEs")
		duration = flag.Duration("duration", 5*time.Second, "capture duration")
		threads  = flag.Int("threads", 1, "DCI decoding threads")
		seed     = flag.Int64("seed", 1, "random seed")
		logPath  = flag.String("log", "", "telemetry JSONL output file")
		stream   = flag.String("stream", "", "TCP address to serve live telemetry on")
		noVerify = flag.Bool("skip-msg4-verify", false, "skip RRC Setup PDSCH verification of new UEs (paper's shortcut)")
		record   = flag.String("record", "", "save the raw capture stream to this file")
		replay   = flag.String("replay", "", "process a recorded capture file instead of live slots")
		metrics  = flag.String("metrics", "", "serve Prometheus /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()

	if *metrics != "" {
		obs.PublishExpvar()
		srv, err := obs.Serve(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "nrscope: observability on http://%s/metrics\n", srv.Addr())
	}

	opts := []nrscope.Option{nrscope.WithDCIThreads(*threads)}
	if *noVerify {
		opts = append(opts, nrscope.WithVerifyMSG4(false))
	}
	if *replay != "" {
		runReplay(*replay, *logPath, opts)
		return
	}

	preset, err := presetByName(*cellName)
	if err != nil {
		log.Fatal(err)
	}
	tb, err := nrscope.NewTestbed(preset, *seed, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *ues; i++ {
		tb.AttachUE(nrscope.UEProfile{})
	}

	var recorder *capfile.Writer
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg := tb.GNB.Config()
		recorder, err = capfile.NewWriter(f, capfile.Header{
			CellID: cfg.CellID, Mu: cfg.Mu, NumPRB: cfg.CarrierPRBs,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer recorder.Close()
	}

	var writer *telemetry.Writer
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		writer = telemetry.NewWriter(f)
		defer writer.Flush()
	}
	var server *telemetry.Server
	if *stream != "" {
		server, err = telemetry.NewServer(*stream)
		if err != nil {
			log.Fatal(err)
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "nrscope: streaming telemetry on %s\n", server.Addr())
	}

	var records, newUEs int
	var elapsed time.Duration
	var processed int
	handle := func(res *nrscope.SlotResult) {
		if res.MIBAcquired {
			fmt.Fprintf(os.Stderr, "nrscope: MIB acquired at slot %d\n", res.SlotIdx)
		}
		if res.SIB1Acquired {
			fmt.Fprintf(os.Stderr, "nrscope: SIB1 acquired at slot %d\n", res.SlotIdx)
		}
		newUEs += len(res.NewUEs)
		for _, rnti := range res.NewUEs {
			fmt.Fprintf(os.Stderr, "nrscope: new UE c-rnti=0x%04x at slot %d\n", rnti, res.SlotIdx)
		}
		for _, rec := range res.Records {
			records++
			if writer != nil {
				if err := writer.Write(rec); err != nil {
					log.Fatal(err)
				}
			}
			if server != nil {
				server.Publish(rec)
			}
		}
		elapsed += res.Elapsed
		processed++
	}
	slots := int(*duration / tb.TTI())
	for i := 0; i < slots; i++ {
		cap, res := tb.StepCapture()
		if recorder != nil {
			if err := recorder.Append(cap); err != nil {
				log.Fatal(err)
			}
		}
		handle(res)
	}
	if recorder != nil {
		fmt.Fprintf(os.Stderr, "nrscope: recorded %d slots to %s\n", recorder.Slots(), *record)
	}

	fmt.Fprintf(os.Stderr, "nrscope: %d records, %d UEs discovered, mean processing %.1f us/slot\n",
		records, newUEs, float64(elapsed.Microseconds())/float64(processed))
	for _, rnti := range tb.Scope.KnownUEs() {
		dl := tb.Scope.Bitrate(rnti, true, tb.GNB.SlotIdx())
		ul := tb.Scope.Bitrate(rnti, false, tb.GNB.SlotIdx())
		fmt.Fprintf(os.Stderr, "  ue 0x%04x: DL %.2f Mbps, UL %.2f Mbps\n", rnti, dl/1e6, ul/1e6)
	}
}

// runReplay post-processes a recorded capture file offline (§4: the
// worker pool's on-demand mode; §7: the post-processing library).
func runReplay(path, logPath string, opts []nrscope.Option) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := capfile.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	hdr := r.Header()
	fmt.Fprintf(os.Stderr, "nrscope: replaying cell %d (%v, %d PRBs) from %s\n",
		hdr.CellID, hdr.Mu, hdr.NumPRB, path)
	scope := nrscope.New(hdr.CellID, opts...)

	var writer *telemetry.Writer
	if logPath != "" {
		out, err := os.Create(logPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		writer = telemetry.NewWriter(out)
		defer writer.Flush()
	}
	records, slots, lastSlot := 0, 0, 0
	for {
		cap, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		res := scope.ProcessSlot(cap)
		slots++
		lastSlot = res.SlotIdx
		for _, rec := range res.Records {
			records++
			if writer != nil {
				if err := writer.Write(rec); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "nrscope: replayed %d slots, %d records, %d UEs tracked\n",
		slots, records, len(scope.KnownUEs()))
	for _, rnti := range scope.KnownUEs() {
		fmt.Fprintf(os.Stderr, "  ue 0x%04x: DL %.2f Mbps\n", rnti, scope.Bitrate(rnti, true, lastSlot)/1e6)
	}
}

func presetByName(name string) (nrscope.Preset, error) {
	switch name {
	case "srsran":
		return nrscope.SrsRANPreset, nil
	case "mosolab":
		return nrscope.MosolabPreset, nil
	case "amarisoft":
		return nrscope.AmarisoftPreset, nil
	case "tmobile1":
		return nrscope.TMobile1Preset, nil
	case "tmobile2":
		return nrscope.TMobile2Preset, nil
	default:
		return 0, fmt.Errorf("unknown cell %q", name)
	}
}
