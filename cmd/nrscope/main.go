// Command nrscope runs the telemetry tool against a simulated 5G SA
// cell: it acquires MIB/SIB1, tracks UE associations through the RACH,
// decodes every UE's DCIs per TTI, and distributes the telemetry
// through the internal/bus fanout to any number of sinks — JSONL log
// files, TCP subscribers, and a live SSE feed on the observability
// endpoint (the paper's §6 feedback path).
//
// Usage:
//
//	nrscope -cell amarisoft -ues 4 -duration 10s -threads 4 \
//	        -sink jsonl:telemetry.jsonl -sink tcp:127.0.0.1:9900
//	nrscope -metrics 127.0.0.1:9090 -sink sse ...   # SSE feed on /events
//	nrscope -record capture.nrsc -duration 10s      # save the air capture
//	nrscope -replay capture.nrsc -sink jsonl:t.jsonl  # post-process offline
//	nrscope -history -metrics 127.0.0.1:9090 ...    # /history query API
//	nrscope -lake ./lake -lake-retention 1h ...     # spill history to disk
//	nrscope -cell amarisoft -fuse-cell mosolab -history ...  # multi-cell fusion
//	nrscope -shards 4 -cell amarisoft -fuse-cell mosolab ... # sharded supervisor
//
// Repeating -fuse-cell monitors additional cells and fuses every cell's
// stream through the §7 aggregator: per-cell load, cross-cell handover
// and carrier-aggregation candidates are reported at exit. With
// -history, the fusion aggregator and the /history query API share one
// bounded store — one copy of the bins backs both.
//
// The -sink flag is repeatable; its grammar is
//
//	jsonl:PATH   append JSON lines to PATH (Block policy: lossless,
//	             drained in full on shutdown; -sink-rotate-mb rotates)
//	tcp:ADDR     serve JSONL over TCP on ADDR (per-connection DropOldest
//	             queues: a slow subscriber drops its own records)
//	sse          serve server-sent events on the -metrics mux at /events
//	promrw:URL   push Prometheus remote-write frames to URL
//	influx:URL   push InfluxDB v2 line protocol (?bucket=B required)
//	otlp:URL     push OTLP/HTTP JSON metrics to URL
//
// The pump sinks (promrw, influx, otlp) take ?key=value options on the
// URL — auth, timestamps, batching, frame size — documented under
// pump.FromSpec; with -replay they backfill a recorded capture into the
// remote store. At exit every bus subscription prints a delivery
// summary (delivered / dropped / retries / quarantines).
//
// The legacy -log PATH and -stream ADDR flags remain as shorthands for
// jsonl: and tcp: sinks.
//
// With -shards N the cells (the -cell preset plus every -fuse-cell) are
// partitioned across N supervised shards (internal/shard): each shard
// owns its own history partition, bus publisher, and — in multi-cell
// runs — its own fusion aggregator, and is restarted on stall or panic
// with its partition intact. The cross-shard rollup is served under
// /shards on the -metrics mux and summarized at exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nrscope"
	"nrscope/internal/bus"
	"nrscope/internal/capfile"
	"nrscope/internal/fusion"
	"nrscope/internal/history"
	"nrscope/internal/lake"
	"nrscope/internal/obs"
	"nrscope/internal/pump"
	"nrscope/internal/shard"
)

// stringList collects repeated flags (-sink, -fuse-cell).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var sinks, fuseCells stringList
	var (
		cellName = flag.String("cell", "amarisoft", "cell preset: srsran|mosolab|amarisoft|tmobile1|tmobile2")
		ues      = flag.Int("ues", 2, "number of simulated UEs")
		duration = flag.Duration("duration", 5*time.Second, "capture duration")
		threads  = flag.Int("threads", 1, "DCI decoding threads")
		decodeTh = flag.Int("decode-threads", 0, "decode-pool workers for standalone runs: slot blind-decode moves off the capture loop onto a shared worker pool, cells decoding concurrently (0 = decode inline)")
		seed     = flag.Int64("seed", 1, "random seed")
		logPath  = flag.String("log", "", "telemetry JSONL output file (shorthand for -sink jsonl:PATH)")
		stream   = flag.String("stream", "", "TCP address to serve live telemetry on (shorthand for -sink tcp:ADDR)")
		rotateMB = flag.Int64("sink-rotate-mb", 0, "rotate jsonl sinks after this many MiB (0 = never)")
		noVerify = flag.Bool("skip-msg4-verify", false, "skip RRC Setup PDSCH verification of new UEs (paper's shortcut)")
		record   = flag.String("record", "", "save the raw capture stream to this file")
		replay   = flag.String("replay", "", "process a recorded capture file instead of live slots")
		metrics  = flag.String("metrics", "", "serve Prometheus /metrics, /debug/vars, /debug/pprof and the /events SSE feed on this address (e.g. 127.0.0.1:9090)")

		shards      = flag.Int("shards", 0, "partition the monitored cells across N supervised shards (0 = unsharded); composes with -fuse-cell, -history and -sink")
		hist        = flag.Bool("history", false, "keep a queryable session-history store (served under /history on the -metrics mux)")
		histBin     = flag.Duration("history-bin", 100*time.Millisecond, "history aggregation bin width")
		histDepth   = flag.Int("history-depth", 600, "bins of history retained per UE and per cell")
		histMaxUEs  = flag.Int("history-max-ues", 10000, "UE series cap in the history store (LRU eviction beyond it)")
		idleHorizon = flag.Duration("idle-horizon", 0, "evict UEs idle longer than this from the scope and the history store (0 = slot-count default)")

		lakeDir       = flag.String("lake", "", "spill history bins evicted from RAM into columnar segments under this directory (implies -history; queries answer across RAM + disk)")
		lakeSegMB     = flag.Int64("lake-segment-mb", 8, "seal lake segments at this many MiB")
		lakeRetention = flag.Duration("lake-retention", 0, "drop lake segments wholly older than this horizon (0 = keep everything)")
	)
	flag.Var(&sinks, "sink", "telemetry sink (repeatable): jsonl:PATH | tcp:ADDR | sse")
	flag.Var(&fuseCells, "fuse-cell", "additional cell preset to monitor and fuse with -cell (repeatable; enables the multi-cell aggregator)")
	flag.Parse()

	var metricsSrv *obs.Server
	if *metrics != "" {
		obs.PublishExpvar()
		srv, err := obs.Serve(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		metricsSrv = srv
		fmt.Fprintf(os.Stderr, "nrscope: observability on http://%s/metrics\n", srv.Addr())
	}

	// Legacy shorthands feed the same bus as explicit -sink flags.
	if *logPath != "" {
		sinks = append(sinks, "jsonl:"+*logPath)
	}
	if *stream != "" {
		sinks = append(sinks, "tcp:"+*stream)
	}
	b, closeBus, err := setupSinks(sinks, *rotateMB, metricsSrv)
	if err != nil {
		log.Fatal(err)
	}

	// Sharded mode replaces the single shared store with per-shard
	// partitions owned by the supervisor, so it branches off before the
	// store is built. The -history* flags configure the partitions.
	lakeCfg := lake.Config{
		SegmentBytes: *lakeSegMB << 20,
		Retention:    *lakeRetention,
		BinWidth:     *histBin,
	}
	if *shards > 0 {
		if *record != "" || *replay != "" {
			log.Fatal("nrscope: -shards cannot be combined with -record or -replay")
		}
		histCfg := history.Config{
			BinWidth: *histBin, Depth: *histDepth,
			MaxUEs:      maxUEsPerShard(*histMaxUEs, *shards),
			IdleHorizon: *idleHorizon,
		}
		runSharded(append([]string{*cellName}, fuseCells...), *shards, *ues, *duration, *seed,
			buildOpts(*threads, *noVerify, *idleHorizon), b, metricsSrv, histCfg, *lakeDir, lakeCfg)
		closeBus()
		return
	}

	// The history store is a Block (lossless) bus subscriber, so turning
	// it on creates a bus even when no -sink flags asked for one. -lake
	// spills the store's evicted bins to disk, so it implies the store.
	var store *history.Store
	var lk *lake.Lake
	if *hist || *lakeDir != "" {
		if b == nil {
			nb := bus.New()
			b = nb
			closeBus = func() {
				if err := nb.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "nrscope: history drain: %v\n", err)
				}
			}
		}
		store = history.New(history.Config{
			BinWidth: *histBin, Depth: *histDepth, MaxUEs: *histMaxUEs,
			IdleHorizon: *idleHorizon,
		})
		if *lakeDir != "" {
			var lerr error
			lk, lerr = lake.Open(*lakeDir, lakeCfg)
			if lerr != nil {
				log.Fatal(lerr)
			}
			store.AttachLake(lk)
			fmt.Fprintf(os.Stderr, "nrscope: telemetry lake at %s\n", *lakeDir)
		}
		if metricsSrv != nil {
			store.Mount(metricsSrv)
			fmt.Fprintf(os.Stderr, "nrscope: history API on http://%s/history/ues\n", metricsSrv.Addr())
		}
	}
	defer closeBus()

	opts := buildOpts(*threads, *noVerify, *idleHorizon)
	if len(fuseCells) > 0 {
		if *record != "" || *replay != "" {
			log.Fatal("nrscope: -fuse-cell cannot be combined with -record or -replay")
		}
		// Multi-cell mode: the scopes do not publish to the bus
		// themselves — the fusion aggregator mirrors the fused stream
		// onto it, and feeds the (shared) history store directly.
		runMultiCell(append([]string{*cellName}, fuseCells...), *ues, *duration, *seed, opts, b, store, *idleHorizon, *decodeTh)
		closeBus()
		if store != nil {
			printHistorySummary(store)
		}
		closeLake(lk)
		return
	}
	if b != nil {
		opts = append(opts, nrscope.WithBus(b))
	}
	if *replay != "" {
		runReplay(*replay, opts, b, store)
		closeBus() // drain Block subscribers before reading the store
		if store != nil {
			printHistorySummary(store)
		}
		closeLake(lk)
		return
	}

	preset, err := presetByName(*cellName)
	if err != nil {
		log.Fatal(err)
	}
	tb, err := nrscope.NewTestbed(preset, *seed, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *ues; i++ {
		tb.AttachUE(nrscope.UEProfile{})
	}
	cellID := tb.GNB.Config().CellID
	if store != nil {
		if err := store.AddCell(cellID, tb.TTI()); err != nil {
			log.Fatal(err)
		}
		if _, err := store.SubscribeTo(b, cellID); err != nil {
			log.Fatal(err)
		}
	}

	var recorder *capfile.Writer
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg := tb.GNB.Config()
		recorder, err = capfile.NewWriter(f, capfile.Header{
			CellID: cfg.CellID, Mu: cfg.Mu, NumPRB: cfg.CarrierPRBs,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer recorder.Close()
	}

	var records, newUEs int
	var elapsed time.Duration
	var processed int
	handle := func(res *nrscope.SlotResult) {
		if res.MIBAcquired {
			fmt.Fprintf(os.Stderr, "nrscope: MIB acquired at slot %d\n", res.SlotIdx)
		}
		if res.SIB1Acquired {
			fmt.Fprintf(os.Stderr, "nrscope: SIB1 acquired at slot %d\n", res.SlotIdx)
		}
		newUEs += len(res.NewUEs)
		for _, rnti := range res.NewUEs {
			fmt.Fprintf(os.Stderr, "nrscope: new UE c-rnti=0x%04x at slot %d\n", rnti, res.SlotIdx)
		}
		records += len(res.Records)
		elapsed += res.Elapsed
		processed++
		if store != nil && res.Spare != nil {
			store.IngestSpare(cellID, res.SlotIdx, res.Spare)
		}
	}
	slots := int(*duration / tb.TTI())
	if *decodeTh > 0 {
		// Capture synthesis and blind decode overlap through the pool;
		// per-cell slot order stays strict. The handler runs on a worker
		// goroutine, so the run counters take a lock.
		pool := nrscope.NewDecodePool(*decodeTh, 256)
		var mu sync.Mutex
		if err := pool.AddCell(cellID, tb.Scope, func(res *nrscope.SlotResult) {
			mu.Lock()
			handle(res)
			mu.Unlock()
		}); err != nil {
			log.Fatal(err)
		}
		if err := pool.Start(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < slots; i++ {
			cap := tb.StepRaw()
			if recorder != nil {
				if err := recorder.Append(cap); err != nil {
					log.Fatal(err)
				}
			}
			pool.Submit(cellID, cap)
		}
		pool.Close()
	} else {
		for i := 0; i < slots; i++ {
			cap, res := tb.StepCapture()
			if recorder != nil {
				if err := recorder.Append(cap); err != nil {
					log.Fatal(err)
				}
			}
			handle(res)
		}
	}
	if recorder != nil {
		fmt.Fprintf(os.Stderr, "nrscope: recorded %d slots to %s\n", recorder.Slots(), *record)
	}

	fmt.Fprintf(os.Stderr, "nrscope: %d records, %d UEs discovered, mean processing %.1f us/slot\n",
		records, newUEs, float64(elapsed.Microseconds())/float64(processed))
	for _, rnti := range tb.Scope.KnownUEs() {
		dl := tb.Scope.Bitrate(rnti, true, tb.GNB.SlotIdx())
		ul := tb.Scope.Bitrate(rnti, false, tb.GNB.SlotIdx())
		fmt.Fprintf(os.Stderr, "  ue 0x%04x: DL %.2f Mbps, UL %.2f Mbps\n", rnti, dl/1e6, ul/1e6)
	}
	closeBus() // drain Block subscribers before reading the store
	if store != nil {
		printHistorySummary(store)
	}
	closeLake(lk)
}

// closeLake drains the lake's spill queue to disk, reports its totals,
// and releases it.
func closeLake(lk *lake.Lake) {
	if lk == nil {
		return
	}
	_ = lk.Sync()
	st := lk.Stats()
	if err := lk.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nrscope: lake close: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "nrscope: lake: %d segments, %d KiB, %d bins + %d anomalies spilled, %d compactions\n",
		st.Segments, st.Bytes>>10, st.SpilledBins, st.SpilledAnomalies, st.Compactions)
	if st.DroppedEntries > 0 {
		fmt.Fprintf(os.Stderr, "nrscope: lake dropped %d spill entries (queue overflow)\n", st.DroppedEntries)
	}
}

// buildOpts translates the scope-tuning flags into testbed options.
func buildOpts(threads int, noVerify bool, idleHorizon time.Duration) []nrscope.Option {
	opts := []nrscope.Option{nrscope.WithDCIThreads(threads)}
	if noVerify {
		opts = append(opts, nrscope.WithVerifyMSG4(false))
	}
	if idleHorizon > 0 {
		opts = append(opts, nrscope.WithIdleHorizon(idleHorizon))
	}
	return opts
}

// maxUEsPerShard divides the global -history-max-ues cap across the
// shard partitions (each partition enforces its own LRU cap).
func maxUEsPerShard(maxUEs, shards int) int {
	per := maxUEs / shards
	if per < 1 {
		per = 1
	}
	return per
}

// runSharded drives one testbed per cell preset through the sharded
// supervisor: cells are partitioned across the shards, each shard folds
// its cells' records into its own history partition (and, in multi-cell
// runs, its own fusion aggregator) and publishes to the bus. The
// cross-shard rollup is served under /shards on the -metrics mux and
// printed at exit.
func runSharded(cellNames []string, shards, ues int, duration time.Duration, seed int64,
	opts []nrscope.Option, b *bus.Bus, metricsSrv *obs.Server, histCfg history.Config,
	lakeDir string, lakeCfg lake.Config) {
	if shards > len(cellNames) {
		fmt.Fprintf(os.Stderr, "nrscope: %d shards for %d cells; %d shards will idle\n",
			shards, len(cellNames), shards-len(cellNames))
	}
	sup := shard.New(shard.Config{
		Shards:  shards,
		History: histCfg,
		Fusion:  len(cellNames) > 1,
		Bus:     b,
	})
	// One lake partition per shard: a shard's evicted bins spill under
	// its own subdirectory, and the rollup layer's fan-in sees RAM +
	// disk through each partition's queries.
	var lakes []*lake.Lake
	if lakeDir != "" {
		if err := sup.AttachLakes(func(i int) (history.Lake, error) {
			l, err := lake.Open(filepath.Join(lakeDir, fmt.Sprintf("shard-%d", i)), lakeCfg)
			if err == nil {
				lakes = append(lakes, l)
			}
			return l, err
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "nrscope: telemetry lake at %s (%d shard partitions)\n", lakeDir, shards)
	}
	type cellRun struct {
		tb *nrscope.Testbed
		id uint16
	}
	cells := make([]cellRun, 0, len(cellNames))
	for i, name := range cellNames {
		preset, err := presetByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tb, err := nrscope.NewTestbed(preset, seed+int64(i), opts...)
		if err != nil {
			log.Fatal(err)
		}
		cfg := tb.GNB.Config()
		idx, err := sup.AddCell(cfg.CellID, cfg.Mu)
		if err != nil {
			log.Fatalf("nrscope: sharding %q: %v", name, err)
		}
		// Decode-in-shard: the shard worker owning this cell runs the
		// blind decode itself, so the capture loop below only steps the
		// simulators and queues raw slots.
		if err := sup.AttachScope(cfg.CellID, tb.Scope); err != nil {
			log.Fatalf("nrscope: sharding %q: %v", name, err)
		}
		for u := 0; u < ues; u++ {
			tb.AttachUE(nrscope.UEProfile{})
		}
		cells = append(cells, cellRun{tb, cfg.CellID})
		fmt.Fprintf(os.Stderr, "nrscope: cell %d (%s, %v) on shard %d\n", cfg.CellID, name, cfg.Mu, idx)
	}
	if err := sup.Start(); err != nil {
		log.Fatal(err)
	}
	if metricsSrv != nil {
		sup.Mount(metricsSrv)
		fmt.Fprintf(os.Stderr, "nrscope: shard rollup API on http://%s/shards\n", metricsSrv.Addr())
	}

	step := 50 * time.Millisecond
	for t := time.Duration(0); t < duration; t += step {
		for _, c := range cells {
			perStep := int(step / c.tb.TTI())
			for i := 0; i < perStep; i++ {
				if err := sup.SubmitCapture(c.id, c.tb.StepRaw()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	sup.Flush()

	h := sup.Health()
	fmt.Fprintf(os.Stderr, "nrscope: decoded %d slots across %d cells on %d shards (%d UEs tracked)\n",
		h.DecodedSlots, h.Cells, h.Shards, h.TrackedUEs)
	for _, ps := range h.PerShard {
		state := "up"
		if ps.Dead {
			state = "dead"
		} else if !ps.Up {
			state = "down"
		}
		fmt.Fprintf(os.Stderr, "nrscope: shard %d (%s): %d cells, %d decoded, %d applied, %d dropped, %d restarts, %d UEs\n",
			ps.Shard, state, ps.Cells, ps.DecodedSlots, ps.Applied, ps.Dropped, ps.Restarts, ps.TrackedUEs)
	}
	window := time.Duration(histCfg.BinWidth.Milliseconds()*int64(histCfg.Depth)) * time.Millisecond
	if window <= 0 {
		window = time.Minute
	}
	if ranks, err := sup.TopK("bits", window, 5); err == nil && len(ranks) > 0 {
		fmt.Fprintf(os.Stderr, "nrscope: fused top UEs by bits:\n")
		for _, r := range ranks {
			fmt.Fprintf(os.Stderr, "  cell %d ue 0x%04x: %.0f bits\n", r.Cell, r.RNTI, r.Value)
		}
	}
	if len(cellNames) > 1 {
		hos := sup.Handovers()
		for _, ho := range hos {
			fmt.Fprintf(os.Stderr, "nrscope: %s\n", ho)
		}
		if len(hos) == 0 {
			fmt.Fprintln(os.Stderr, "nrscope: no handover candidates detected")
		}
	}
	if anoms := sup.Anomalies(); len(anoms) > 0 {
		fmt.Fprintf(os.Stderr, "nrscope: shards flagged %d anomalies (last: %s)\n",
			len(anoms), anoms[len(anoms)-1].String())
	}
	if err := sup.Close(); err != nil {
		log.Fatal(err)
	}
	for _, lk := range lakes {
		closeLake(lk)
	}
}

// runMultiCell drives one testbed per cell preset and fuses every
// cell's records through the §7 aggregator. With -history the
// aggregator publishes into the store already serving the query API
// (one bounded copy of the bins backs both); without it the aggregator
// owns a private store at the 10 ms correlation bin. Either way memory
// stays flat for arbitrarily long runs.
func runMultiCell(cellNames []string, ues int, duration time.Duration, seed int64, opts []nrscope.Option, b *bus.Bus, store *history.Store, idleHorizon time.Duration, decodeThreads int) {
	agg := fusion.NewWithStore(store)
	if idleHorizon > 0 {
		agg.IdleHorizon = idleHorizon
	}
	if b != nil {
		agg.PublishTo(b)
	}
	type cellRun struct {
		tb *nrscope.Testbed
		id uint16
	}
	cells := make([]cellRun, 0, len(cellNames))
	for i, name := range cellNames {
		preset, err := presetByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tb, err := nrscope.NewTestbed(preset, seed+int64(i), opts...)
		if err != nil {
			log.Fatal(err)
		}
		cfg := tb.GNB.Config()
		if err := agg.AddCell(cfg.CellID, cfg.Mu); err != nil {
			log.Fatalf("nrscope: fusing %q: %v", name, err)
		}
		for u := 0; u < ues; u++ {
			tb.AttachUE(nrscope.UEProfile{})
		}
		cells = append(cells, cellRun{tb, cfg.CellID})
		fmt.Fprintf(os.Stderr, "nrscope: fusing cell %d (%s, %v)\n", cfg.CellID, name, cfg.Mu)
	}

	var records int
	step := 50 * time.Millisecond
	if decodeThreads > 0 {
		// Shared decode pool: every cell's blind decode runs on the
		// worker set, cells in parallel, slots per cell in order. The
		// handlers feed the (single) aggregator under a lock.
		pool := nrscope.NewDecodePool(decodeThreads, 256)
		var mu sync.Mutex
		for _, c := range cells {
			id := c.id
			if err := pool.AddCell(id, c.tb.Scope, func(res *nrscope.SlotResult) {
				mu.Lock()
				for _, rec := range res.Records {
					_ = agg.Ingest(id, rec)
				}
				if store != nil && res.Spare != nil {
					store.IngestSpare(id, res.SlotIdx, res.Spare)
				}
				records += len(res.Records)
				mu.Unlock()
			}); err != nil {
				log.Fatal(err)
			}
		}
		if err := pool.Start(); err != nil {
			log.Fatal(err)
		}
		for t := time.Duration(0); t < duration; t += step {
			for _, c := range cells {
				perStep := int(step / c.tb.TTI())
				for i := 0; i < perStep; i++ {
					pool.Submit(c.id, c.tb.StepRaw())
				}
			}
		}
		pool.Close()
	} else {
		for t := time.Duration(0); t < duration; t += step {
			for _, c := range cells {
				id := c.id
				c.tb.RunFor(step, func(res *nrscope.SlotResult) {
					for _, rec := range res.Records {
						_ = agg.Ingest(id, rec)
					}
					if store != nil && res.Spare != nil {
						store.IngestSpare(id, res.SlotIdx, res.Spare)
					}
					records += len(res.Records)
				})
			}
		}
	}

	fmt.Fprintf(os.Stderr, "nrscope: fused %d records across %d cells; merged view holds %d bins\n",
		records, len(cells), len(agg.Merged()))
	for _, c := range cells {
		load, _ := agg.CellLoad(c.id)
		total, recent, _ := agg.ActiveUEs(c.id, duration, time.Second)
		fmt.Fprintf(os.Stderr, "nrscope: cell %d: mean load %.2f Mbps, %d UE sessions retained (%d recent)\n",
			c.id, load/1e6, total, recent)
	}
	hos := agg.Handovers()
	for _, h := range hos {
		fmt.Fprintf(os.Stderr, "nrscope: %s\n", h)
	}
	if len(hos) == 0 {
		fmt.Fprintln(os.Stderr, "nrscope: no handover candidates detected")
	}
	for _, ca := range agg.CarrierAggregation(0.7) {
		fmt.Fprintf(os.Stderr, "nrscope: %s\n", ca)
	}
}

// printHistorySummary rolls up the history store at the end of a run:
// the per-cell retained totals, the busiest UEs, and any anomalies.
func printHistorySummary(store *history.Store) {
	snap := store.Snapshot()
	for _, c := range snap.Cells {
		fmt.Fprintf(os.Stderr, "nrscope: history cell %d: %d UEs, DL %d bits, UL %d bits, %d grants, %d retx in the last %d bins\n",
			c.Cell, c.UEs, c.DLBits, c.ULBits, c.Grants, c.Retx, snap.Depth)
	}
	window := time.Duration(snap.BinMs*float64(snap.Depth)) * time.Millisecond
	if ranks, err := store.TopK("bits", window, 5); err == nil && len(ranks) > 0 {
		fmt.Fprintf(os.Stderr, "nrscope: history top UEs by bits:\n")
		for _, r := range ranks {
			fmt.Fprintf(os.Stderr, "  ue 0x%04x: %.0f bits\n", r.RNTI, r.Value)
		}
	}
	if anoms := store.Anomalies(); len(anoms) > 0 {
		fmt.Fprintf(os.Stderr, "nrscope: history flagged %d anomalies (last: %s)\n",
			len(anoms), anoms[len(anoms)-1].String())
	}
}

// setupSinks builds the telemetry bus from the -sink specs. Returns a
// nil bus when no sinks are requested. The returned closer drains the
// bus (Block sinks lose zero records), prints each subscription's
// delivery summary, and then shuts the TCP servers.
func setupSinks(specs []string, rotateMB int64, metricsSrv *obs.Server) (*bus.Bus, func(), error) {
	if len(specs) == 0 {
		return nil, func() {}, nil
	}
	b := bus.New()
	var tcpServers []*bus.TCPServer
	var subs []*bus.Subscription
	closer := func() {
		if err := b.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nrscope: sink drain: %v\n", err)
		}
		stats := make([]bus.SubStats, len(subs))
		for i, sub := range subs {
			stats[i] = sub.Stats()
		}
		for _, line := range formatSinkSummary(stats) {
			fmt.Fprintf(os.Stderr, "nrscope: %s\n", line)
		}
		for _, srv := range tcpServers {
			_ = srv.Close()
		}
	}
	fail := func(err error) (*bus.Bus, func(), error) {
		closer()
		return nil, func() {}, err
	}
	for _, spec := range specs {
		kind, arg, _ := strings.Cut(spec, ":")
		switch kind {
		case "jsonl":
			if arg == "" {
				return fail(fmt.Errorf("nrscope: -sink jsonl needs a path (jsonl:PATH)"))
			}
			sink, err := bus.NewJSONLFileSink(arg, rotateMB<<20)
			if err != nil {
				return fail(err)
			}
			// Block policy: the log is the lossless record of the run.
			sub, err := b.Subscribe("jsonl", bus.Block, sink)
			if err != nil {
				return fail(err)
			}
			subs = append(subs, sub)
		case "tcp":
			if arg == "" {
				return fail(fmt.Errorf("nrscope: -sink tcp needs an address (tcp:ADDR)"))
			}
			srv, err := bus.NewTCPServer(b, arg)
			if err != nil {
				return fail(err)
			}
			tcpServers = append(tcpServers, srv)
			fmt.Fprintf(os.Stderr, "nrscope: streaming telemetry on %s\n", srv.Addr())
		case "sse":
			if metricsSrv == nil {
				return fail(fmt.Errorf("nrscope: -sink sse needs the -metrics endpoint (it serves /events on that mux)"))
			}
			metricsSrv.Handle("/events", bus.SSEHandler(b))
			fmt.Fprintf(os.Stderr, "nrscope: SSE telemetry on http://%s/events\n", metricsSrv.Addr())
		case "promrw", "influx", "otlp":
			snk, tun, err := pump.FromSpec(kind, arg)
			if err != nil {
				return fail(err)
			}
			// Live pumps default to DropOldest (freshness over
			// completeness towards a remote store); ?block=true opts
			// into lossless. Retry/backoff/quarantine ride on the bus
			// runner defaults; the pump counts its bus-side drops so
			// sent + dropped closes against the published total.
			policy := bus.DropOldest
			if tun.Block {
				policy = bus.Block
			}
			sub, err := b.Subscribe(snk.Name(), policy, snk,
				bus.WithQueueSize(tun.Queue),
				bus.WithBatch(tun.Batch, tun.Flush),
				bus.WithDropNotify(snk.CountDrops))
			if err != nil {
				_ = snk.Close()
				return fail(err)
			}
			subs = append(subs, sub)
			fmt.Fprintf(os.Stderr, "nrscope: pumping telemetry to %s (%s, %s)\n", snk.URL(), kind, policy)
		default:
			return fail(fmt.Errorf("nrscope: unknown sink %q (want jsonl:PATH, tcp:ADDR, sse, promrw:URL, influx:URL or otlp:URL)", spec))
		}
	}
	return b, closer, nil
}

// formatSinkSummary renders the end-of-run delivery ledger, one line
// per bus subscription. Zero-valued failure columns are elided so the
// healthy case stays short.
func formatSinkSummary(stats []bus.SubStats) []string {
	lines := make([]string, 0, len(stats))
	for _, st := range stats {
		line := fmt.Sprintf("sink %s: %d delivered, %d dropped", st.Name, st.Delivered, st.Dropped)
		if st.Rejected > 0 {
			line += fmt.Sprintf(", %d rejected", st.Rejected)
		}
		if st.Retries > 0 {
			line += fmt.Sprintf(", %d retries", st.Retries)
		}
		if st.Failures > 0 {
			line += fmt.Sprintf(", %d failures", st.Failures)
		}
		if st.Quarantines > 0 {
			line += fmt.Sprintf(", %d quarantines", st.Quarantines)
		}
		lines = append(lines, line)
	}
	return lines
}

// runReplay post-processes a recorded capture file offline (§4: the
// worker pool's on-demand mode; §7: the post-processing library). The
// scope publishes through the same bus/sink set as a live run.
func runReplay(path string, opts []nrscope.Option, b *bus.Bus, store *history.Store) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := capfile.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	hdr := r.Header()
	fmt.Fprintf(os.Stderr, "nrscope: replaying cell %d (%v, %d PRBs) from %s\n",
		hdr.CellID, hdr.Mu, hdr.NumPRB, path)
	if store != nil {
		if err := store.AddCell(hdr.CellID, hdr.Mu.SlotDuration()); err != nil {
			log.Fatal(err)
		}
		if _, err := store.SubscribeTo(b, hdr.CellID); err != nil {
			log.Fatal(err)
		}
	}
	scope := nrscope.New(hdr.CellID, opts...)

	records, slots, lastSlot := 0, 0, 0
	for {
		cap, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		res := scope.ProcessSlot(cap)
		slots++
		lastSlot = res.SlotIdx
		records += len(res.Records)
		if store != nil && res.Spare != nil {
			store.IngestSpare(hdr.CellID, res.SlotIdx, res.Spare)
		}
	}
	fmt.Fprintf(os.Stderr, "nrscope: replayed %d slots, %d records, %d UEs tracked\n",
		slots, records, len(scope.KnownUEs()))
	for _, rnti := range scope.KnownUEs() {
		fmt.Fprintf(os.Stderr, "  ue 0x%04x: DL %.2f Mbps\n", rnti, scope.Bitrate(rnti, true, lastSlot)/1e6)
	}
}

func presetByName(name string) (nrscope.Preset, error) {
	switch name {
	case "srsran":
		return nrscope.SrsRANPreset, nil
	case "mosolab":
		return nrscope.MosolabPreset, nil
	case "amarisoft":
		return nrscope.AmarisoftPreset, nil
	case "tmobile1":
		return nrscope.TMobile1Preset, nil
	case "tmobile2":
		return nrscope.TMobile2Preset, nil
	default:
		return 0, fmt.Errorf("unknown cell %q", name)
	}
}
