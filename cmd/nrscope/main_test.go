package main

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"nrscope/internal/bus"
	"nrscope/internal/telemetry"
)

func TestFormatSinkSummary(t *testing.T) {
	got := formatSinkSummary([]bus.SubStats{
		{Name: "jsonl", Delivered: 1200},
		{Name: "promrw", Delivered: 1180, Dropped: 20, Retries: 6, Failures: 2, Quarantines: 1},
		{Name: "tcp", Delivered: 7, Dropped: 0, Rejected: 3},
	})
	want := []string{
		"sink jsonl: 1200 delivered, 0 dropped",
		"sink promrw: 1180 delivered, 20 dropped, 6 retries, 2 failures, 1 quarantines",
		"sink tcp: 7 delivered, 0 dropped, 3 rejected",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("formatSinkSummary =\n%q\nwant\n%q", got, want)
	}
	if lines := formatSinkSummary(nil); len(lines) != 0 {
		t.Errorf("empty stats produced %q", lines)
	}
}

func TestSetupSinksPump(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	b, closer, err := setupSinks([]string{"promrw:" + srv.URL + "?name=setup_sinks_test&flush=2ms"}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("pump spec returned a nil bus")
	}
	if err := b.Publish(telemetry.Record{RNTI: 0x4601, TBS: 1000}); err != nil {
		t.Fatal(err)
	}
	closer()
	if got.Load() == 0 {
		t.Error("pump never reached the backend")
	}
}

func TestSetupSinksErrors(t *testing.T) {
	for _, specs := range [][]string{
		{"promrw:not-a-url"},
		{"influx:http://db:8086"}, // no bucket
		{"kafka:broker:9092"},
	} {
		if _, _, err := setupSinks(specs, 64, nil); err == nil {
			t.Errorf("setupSinks(%q) succeeded, want error", specs)
		}
	}
	b, closer, err := setupSinks(nil, 64, nil)
	if err != nil || b != nil {
		t.Errorf("no specs: bus=%v err=%v, want nil/nil", b, err)
	}
	closer()
}
