// Command gnbsim runs the simulated 5G SA base station standalone and
// writes its ground-truth log (the srsRAN-log equivalent the paper's
// §5.2.1 evaluation matches against) as JSON lines.
//
// Usage:
//
//	gnbsim -cell amarisoft -ues 4 -duration 10s -out gt.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nrscope/internal/ran"
)

func main() {
	var (
		cellName = flag.String("cell", "amarisoft", "cell preset: srsran|mosolab|amarisoft|tmobile1|tmobile2")
		ues      = flag.Int("ues", 2, "number of static UEs to attach")
		duration = flag.Duration("duration", 5*time.Second, "simulated air time")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("out", "", "ground-truth JSONL output (default stdout)")
		churn    = flag.Bool("churn", false, "enable the UE arrival/departure population process")
	)
	flag.Parse()

	cfg, err := cellByName(*cellName)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	slots := int(*duration / cfg.TTI())
	gnb, err := ran.NewGNB(cfg, slots+1)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *ues; i++ {
		gnb.AddUE(nil, -1)
	}
	if *churn {
		gnb.SetPopulation(ran.DefaultPopulation())
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	enc := json.NewEncoder(w)

	type gtLine struct {
		SlotIdx   int    `json:"slot_idx"`
		SFN       int    `json:"sfn"`
		Slot      int    `json:"slot"`
		RNTI      uint16 `json:"rnti"`
		Downlink  bool   `json:"downlink"`
		TBS       int    `json:"tbs"`
		NumPRB    int    `json:"nof_prb"`
		MCS       int    `json:"mcs"`
		AggLevel  int    `json:"agg_level"`
		StartCCE  int    `json:"cce"`
		Retx      bool   `json:"retx"`
		Common    bool   `json:"common"`
		MSG4      bool   `json:"msg4"`
		Delivered int    `json:"delivered_bytes"`
	}

	total, retx := 0, 0
	for i := 0; i < slots; i++ {
		slot := gnb.Step()
		for _, r := range slot.GT {
			total++
			if r.IsRetx {
				retx++
			}
			if err := enc.Encode(gtLine{
				SlotIdx: r.SlotIdx, SFN: r.Slot.SFN, Slot: r.Slot.Slot,
				RNTI: r.RNTI, Downlink: r.Grant.Downlink, TBS: r.Grant.TBS,
				NumPRB: r.Grant.NumPRB, MCS: r.Grant.MCSIndex,
				AggLevel: r.AggLevel, StartCCE: r.StartCCE,
				Retx: r.IsRetx, Common: r.Common, MSG4: r.MSG4,
				Delivered: r.DeliveredBytes,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "gnbsim: %s, %d slots, %d DCIs (%d retx), %d UEs connected\n",
		cfg.Name, slots, total, retx, len(gnb.ConnectedRNTIs()))
}

func cellByName(name string) (ran.CellConfig, error) {
	switch name {
	case "srsran":
		return ran.SrsRANCell(), nil
	case "mosolab":
		return ran.MosolabCell(), nil
	case "amarisoft":
		return ran.AmarisoftCell(), nil
	case "tmobile1":
		return ran.TMobileCell(1), nil
	case "tmobile2":
		return ran.TMobileCell(2), nil
	default:
		return ran.CellConfig{}, fmt.Errorf("unknown cell %q", name)
	}
}
