// Command benchjson converts `go test -bench -benchmem` output read
// from stdin into a JSON array, one object per benchmark result line:
//
//	go test -bench SlotLoop -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH_decode.json
//
// CI uses it to persist decode-path benchmark baselines as build
// artifacts, so perf regressions are visible across commits without a
// stateful benchmark server.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name     string  `json:"name"`
	Procs    int     `json:"procs"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	// Extra holds custom units (e.g. figure-bench metrics) as unit -> value.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if out == nil {
		out = []result{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkName-P  N  X ns/op  [Y B/op  Z allocs/op ...]`
// line; anything else (ok/PASS/goos headers) is skipped.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iters = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if r.NsOp == 0 && r.Extra == nil {
		return result{}, false
	}
	return r, true
}
