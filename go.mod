module nrscope

go 1.22
