// Quickstart: attach one UE to a simulated 5G SA cell, run NR-Scope
// against it, and print the telemetry the paper's Fig. 3 illustrates —
// per-UE throughput recovered purely from decoded DCIs.
package main

import (
	"fmt"
	"time"

	"nrscope"
)

func main() {
	tb, err := nrscope.NewTestbed(nrscope.AmarisoftPreset, 42)
	if err != nil {
		panic(err)
	}

	// One video-watching UE (the paper's typical workload).
	rnti := tb.AttachUE(nrscope.UEProfile{Mobility: "static"})
	fmt.Printf("attached UE, gNB will assign c-rnti 0x%04x\n", rnti)

	// Run two simulated seconds; report once per 100 ms.
	slotsPerReport := int(100 * time.Millisecond / tb.TTI())
	slot := 0
	tb.RunFor(2*time.Second, func(res *nrscope.SlotResult) {
		slot = res.SlotIdx
		if res.MIBAcquired {
			fmt.Printf("[%5d] cell search: MIB decoded (SFN sync)\n", res.SlotIdx)
		}
		if res.SIB1Acquired {
			fmt.Printf("[%5d] cell search: SIB1 decoded (cell config known)\n", res.SlotIdx)
		}
		for _, r := range res.NewUEs {
			fmt.Printf("[%5d] RACH: discovered c-rnti 0x%04x from MSG4 CRC\n", res.SlotIdx, r)
		}
		if res.SlotIdx%slotsPerReport == 0 && res.SlotIdx > 0 {
			dl := tb.Scope.Bitrate(rnti, true, res.SlotIdx)
			ul := tb.Scope.Bitrate(rnti, false, res.SlotIdx)
			fmt.Printf("[%5d] ue 0x%04x: DL %6.2f Mbps  UL %5.2f Mbps\n",
				res.SlotIdx, rnti, dl/1e6, ul/1e6)
		}
	})

	fmt.Printf("done after %d slots; scope tracked %d UE(s)\n", slot+1, len(tb.Scope.KnownUEs()))
}
