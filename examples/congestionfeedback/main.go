// Congestion feedback (paper §6): NR-Scope runs as a service, streaming
// RAN telemetry over TCP to a sender's congestion controller. The
// feedback arrives faster than half an RTT — it shortcuts the full round
// trip — so the sender can match its rate to the UE's actual radio
// allocation instead of waiting for end-to-end loss or delay signals.
//
// This example wires three parties in one process:
//   - a simulated cell with one video UE plus a competing bulk UE,
//   - NR-Scope publishing per-DCI telemetry through the distribution
//     bus (internal/bus) onto a local TCP port — each subscriber owns a
//     bounded DropOldest queue, so a stalled receiver can never hold
//     back the decode loop,
//   - a toy sender subscribing to the feed and adapting its target rate
//     to the UE's observed allocation + fair-share spare capacity.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"nrscope"
	"nrscope/internal/bus"
	"nrscope/internal/telemetry"
)

func main() {
	tb, err := nrscope.NewTestbed(nrscope.AmarisoftPreset, 17)
	if err != nil {
		panic(err)
	}
	target := tb.AttachUE(nrscope.UEProfile{Mobility: "static"})
	competitor := tb.AttachUE(nrscope.UEProfile{Mobility: "static", SessionSeconds: 1.0})
	fmt.Printf("target UE 0x%04x, competitor 0x%04x departs after 1 s\n", target, competitor)

	// Telemetry leaves the scope through the bus; the TCP server gives
	// every subscriber its own queue (live feedback wants freshness, so
	// the per-connection policy is DropOldest with a small batch delay).
	feed := nrscope.NewBus()
	defer feed.Close()
	server, err := bus.NewTCPServer(feed, "127.0.0.1:0",
		bus.WithConnOptions(bus.WithBatch(16, time.Millisecond)))
	if err != nil {
		panic(err)
	}
	defer server.Close()
	fmt.Printf("NR-Scope telemetry service on %s\n", server.Addr())

	// The application-server side: subscribe and adapt the send rate.
	var targetRate atomic.Int64
	client, err := telemetry.Dial(server.Addr())
	if err != nil {
		panic(err)
	}
	defer client.Close()
	go func() {
		window := 0.0
		const alpha = 0.05
		for {
			rec, err := client.Next()
			if err != nil {
				return
			}
			if rec.RNTI != 0 && rec.Downlink && !rec.IsRetx && !rec.Common {
				// EWMA of the per-DCI allocation translated to a rate.
				window = (1-alpha)*window + alpha*float64(rec.TBS)
				targetRate.Store(int64(window))
			}
		}
	}()

	tti := tb.TTI()
	reportEvery := int(200 * time.Millisecond / tti)
	tb.RunFor(2*time.Second, func(res *nrscope.SlotResult) {
		for _, rec := range res.Records {
			if rec.RNTI == target {
				_ = feed.Publish(rec)
			}
		}
		if res.SlotIdx%reportEvery == 0 && res.SlotIdx > 0 {
			observed := tb.Scope.Bitrate(target, true, res.SlotIdx)
			ewma := targetRate.Load()
			fmt.Printf("t=%4.1fs  sender's adapted rate signal: %6d bits/TB  (scope DL rate %5.2f Mbps)\n",
				float64(res.SlotIdx)*tti.Seconds(), ewma, observed/1e6)
		}
	})
	fmt.Println("after the competitor departs, the target's allocation grows —")
	fmt.Println("the sender learns it from the RAN feed, not from end-to-end probing.")
}
