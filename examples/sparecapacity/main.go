// Spare capacity estimation (paper §5.4.1 / Fig. 14): two UEs share the
// cell; NR-Scope splits the unused resource elements of each TTI evenly
// across them and re-rates each share at that UE's own modulation and
// coding rate, yielding a per-UE spare bitrate an application server
// could exploit without touching the RAN.
package main

import (
	"fmt"
	"time"

	"nrscope"
)

func main() {
	tb, err := nrscope.NewTestbed(nrscope.MosolabPreset, 7)
	if err != nil {
		panic(err)
	}
	ue1 := tb.AttachUE(nrscope.UEProfile{Mobility: "static"})
	ue2 := tb.AttachUE(nrscope.UEProfile{Mobility: "pedestrian"})
	fmt.Printf("two UEs sharing the cell: 0x%04x (static), 0x%04x (pedestrian)\n", ue1, ue2)
	fmt.Println("time(s)  UE        used(Mbps)  spare(Mbps)  usedREs  spareREs")

	tti := tb.TTI()
	reportEvery := int(250 * time.Millisecond / tti)
	tb.RunFor(3*time.Second, func(res *nrscope.SlotResult) {
		if res.Spare == nil || res.SlotIdx%reportEvery != 0 || res.SlotIdx == 0 {
			return
		}
		spare := res.Spare
		t := float64(res.SlotIdx) * tti.Seconds()
		for _, rnti := range []uint16{ue1, ue2} {
			used := tb.Scope.Bitrate(rnti, true, res.SlotIdx)
			// Spare bits for this UE in one TTI, scaled to a rate.
			spareBps := spare.PerUE[rnti] / tti.Seconds()
			fmt.Printf("%6.2f   0x%04x  %9.2f  %10.2f  %7d  %8d\n",
				t, rnti, used/1e6, spareBps/1e6, spare.UsedREs, spare.TotalREs-spare.UsedREs)
		}
	})

	fmt.Println("\nnote: both UEs get the same spare REs but different spare bitrates —")
	fmt.Println("their modulation/coding rates differ (paper Fig. 14a).")
}
