// Spare capacity estimation (paper §5.4.1 / Fig. 14): two UEs share the
// cell; NR-Scope splits the unused resource elements of each TTI evenly
// across them and re-rates each share at that UE's own modulation and
// coding rate, yielding a per-UE spare bitrate an application server
// could exploit without touching the RAN.
//
// The telemetry flows scope -> bus -> internal/history, and the report
// below is produced entirely from the history query API — the same
// windowed aggregates GET /history/ue serves over HTTP.
package main

import (
	"fmt"
	"time"

	"nrscope"
	"nrscope/internal/history"
)

func main() {
	b := nrscope.NewBus()
	tb, err := nrscope.NewTestbed(nrscope.MosolabPreset, 7, nrscope.WithBus(b))
	if err != nil {
		panic(err)
	}
	ue1 := tb.AttachUE(nrscope.UEProfile{Mobility: "static"})
	ue2 := tb.AttachUE(nrscope.UEProfile{Mobility: "pedestrian"})
	fmt.Printf("two UEs sharing the cell: 0x%04x (static), 0x%04x (pedestrian)\n", ue1, ue2)

	cellID := tb.GNB.Config().CellID
	st := history.New(history.Config{BinWidth: 250 * time.Millisecond, Depth: 64})
	if err := st.AddCell(cellID, tb.TTI()); err != nil {
		panic(err)
	}
	if _, err := st.SubscribeTo(b, cellID); err != nil {
		panic(err)
	}

	// DCI records reach the store through the bus; spare-capacity
	// estimates ride the direct path (they are per-slot derivations,
	// not bus records).
	tti := tb.TTI()
	tb.RunFor(3*time.Second, func(res *nrscope.SlotResult) {
		if res.Spare != nil {
			st.IngestSpare(cellID, res.SlotIdx, res.Spare)
		}
	})
	if err := b.Close(); err != nil { // lossless drain into the store
		panic(err)
	}

	fmt.Println("time(s)  UE        used(Mbps)  spare(Mbps)  usedREs  spareREs")
	slotsPerBin := float64(250*time.Millisecond) / float64(tti)
	for _, rnti := range []uint16{ue1, ue2} {
		bins, _ := st.Query(cellID, rnti, 0, 3000, 1)
		for _, bin := range bins {
			if bin.Grants == 0 {
				continue
			}
			// SpareBits is the UE's share summed over the bin's slots;
			// UsedREs/TotalREs are cell-wide sums — report the per-slot
			// average to match the paper's per-TTI framing.
			spareBps := bin.SpareBits / (bin.SpanMs / 1e3)
			cell, _ := st.CellQuery(cellID, bin.StartMs, bin.StartMs+bin.SpanMs, 1)
			var usedREs, spareREs float64
			if len(cell) == 1 && cell[0].TotalREs > 0 {
				usedREs = float64(cell[0].UsedREs) / slotsPerBin
				spareREs = float64(cell[0].TotalREs-cell[0].UsedREs) / slotsPerBin
			}
			fmt.Printf("%6.2f   0x%04x  %9.2f  %10.2f  %7.0f  %8.0f\n",
				bin.StartMs/1e3, rnti, bin.DLBps/1e6, spareBps/1e6, usedREs, spareREs)
		}
	}

	fmt.Println("\nnote: both UEs get the same spare REs but different spare bitrates —")
	fmt.Println("their modulation/coding rates differ (paper Fig. 14a).")
}
