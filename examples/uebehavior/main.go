// UE behaviour measurement (paper §5.3.1 / Figs. 10-11): point NR-Scope
// at a busy commercial-style cell with churning users and measure, out
// of loop, how long UEs stay and how many are scheduled per second —
// the "come-and-go" pattern of real cellular networks.
//
// The scheduled-per-second series (Fig. 11) is computed from the
// internal/history store's 1-second bins rather than hand-rolled maps:
// the scope publishes onto the bus, the store folds the stream into
// windowed aggregates, and the example just queries them.
package main

import (
	"fmt"
	"sort"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/history"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
)

func main() {
	cfg := ran.TMobileCell(1)
	cfg.Seed = 23
	gnb, err := ran.NewGNB(cfg, 1<<21)
	if err != nil {
		panic(err)
	}
	pop := ran.DefaultPopulation()
	pop.ArrivalsPerSecond = 1.5
	gnb.SetPopulation(pop)

	duration := 30 * time.Second
	b := bus.New()
	st := history.New(history.Config{BinWidth: time.Second, Depth: 64})
	if err := st.AddCell(cfg.CellID, cfg.TTI()); err != nil {
		panic(err)
	}
	if _, err := st.SubscribeTo(b, cfg.CellID); err != nil {
		panic(err)
	}

	rx := radio.NewReceiver(channel.Normal, 16, 99).Reuse(true)
	scope := core.New(cfg.CellID,
		core.WithBus(b),
		core.WithInactivityTimeout(int(2*time.Second/cfg.TTI())))

	slots := int(duration / cfg.TTI())
	for i := 0; i < slots; i++ {
		out := gnb.Step()
		scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
	if err := b.Close(); err != nil { // lossless drain into the store
		panic(err)
	}

	// Session lengths (Fig. 10), from the scope's association tracking.
	var sessions []float64
	for _, a := range scope.DepartedUEs() {
		sessions = append(sessions, float64(a.ActiveSlots())*cfg.TTI().Seconds())
	}
	for _, rnti := range scope.KnownUEs() {
		if tr := scope.Track(rnti); tr != nil {
			sessions = append(sessions, float64(tr.LastSeen-tr.FirstSeen+1)*cfg.TTI().Seconds())
		}
	}
	sort.Float64s(sessions)
	fmt.Printf("observed %d UE sessions in %v of air time\n", len(sessions), duration)
	if n := len(sessions); n > 0 {
		fmt.Printf("  median active time: %5.1f s\n", sessions[n/2])
		fmt.Printf("  p90 active time:    %5.1f s  (paper: 90%% of UEs stay < 35 s)\n", sessions[n*9/10])
	}

	// Scheduled UEs per second (Fig. 11): every 1 s history bin with at
	// least one grant marks its UE scheduled in that second.
	perSecond := map[int64]int{}
	for _, ue := range st.UEs(cfg.CellID) {
		bins, _ := st.Query(cfg.CellID, ue.RNTI, 0, duration.Seconds()*1e3, 1)
		for _, bin := range bins {
			if bin.Grants > 0 {
				perSecond[int64(bin.StartMs/1e3)]++
			}
		}
	}
	var counts []int
	for _, n := range perSecond {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	if n := len(counts); n > 0 {
		fmt.Printf("scheduled UEs per second: median %d, max %d  (%d UE series retained)\n",
			counts[n/2], counts[n-1], st.TrackedUEs())
	}
}
