// UE behaviour measurement (paper §5.3.1 / Figs. 10-11): point NR-Scope
// at a busy commercial-style cell with churning users and measure, out
// of loop, how long UEs stay and how many are scheduled per second —
// the "come-and-go" pattern of real cellular networks.
package main

import (
	"fmt"
	"sort"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
)

func main() {
	cfg := ran.TMobileCell(1)
	cfg.Seed = 23
	gnb, err := ran.NewGNB(cfg, 1<<21)
	if err != nil {
		panic(err)
	}
	pop := ran.DefaultPopulation()
	pop.ArrivalsPerSecond = 1.5
	gnb.SetPopulation(pop)

	rx := radio.NewReceiver(channel.Normal, 16, 99).Reuse(true)
	scope := core.New(cfg.CellID,
		core.WithInactivityTimeout(int(2*time.Second/cfg.TTI())))

	duration := 30 * time.Second
	slots := int(duration / cfg.TTI())
	perSecond := map[int]map[uint16]bool{}
	for i := 0; i < slots; i++ {
		out := gnb.Step()
		res := scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		sec := int(float64(out.SlotIdx) * cfg.TTI().Seconds())
		for _, rec := range res.Records {
			if rec.Common {
				continue
			}
			if perSecond[sec] == nil {
				perSecond[sec] = map[uint16]bool{}
			}
			perSecond[sec][rec.RNTI] = true
		}
	}

	// Session lengths (Fig. 10).
	var sessions []float64
	for _, a := range scope.DepartedUEs() {
		sessions = append(sessions, float64(a.ActiveSlots())*cfg.TTI().Seconds())
	}
	for _, rnti := range scope.KnownUEs() {
		if tr := scope.Track(rnti); tr != nil {
			sessions = append(sessions, float64(tr.LastSeen-tr.FirstSeen+1)*cfg.TTI().Seconds())
		}
	}
	sort.Float64s(sessions)
	fmt.Printf("observed %d UE sessions in %v of air time\n", len(sessions), duration)
	if n := len(sessions); n > 0 {
		fmt.Printf("  median active time: %5.1f s\n", sessions[n/2])
		fmt.Printf("  p90 active time:    %5.1f s  (paper: 90%% of UEs stay < 35 s)\n", sessions[n*9/10])
	}

	// Scheduled UEs per second (Fig. 11).
	var counts []int
	for _, m := range perSecond {
		counts = append(counts, len(m))
	}
	sort.Ints(counts)
	if n := len(counts); n > 0 {
		fmt.Printf("scheduled UEs per second: median %d, max %d\n", counts[n/2], counts[n-1])
	}
}
