// Multi-cell fusion (paper §7, "Post-Processing Library"): two NR-Scope
// instances monitor two cells; their telemetry streams are fused into an
// aggregate view that reports per-cell load and flags cross-cell UE
// handovers — a session going silent on one cell immediately followed by
// a fresh C-RNTI with a similar traffic fingerprint on the other.
//
// The aggregator is history-backed: every record is folded into a
// bounded history.Store of fixed-depth bin rings, and the fused views
// (merged stream, carrier-aggregation correlation) are reconstructed
// from those bins. Here the store is created explicitly and shared with
// the aggregator — the same wiring cmd/nrscope uses for
// -fuse-cell + -history, where one copy of the bins backs both the
// fusion views and the /history query API.
package main

import (
	"fmt"
	"time"

	"nrscope"
	"nrscope/internal/fusion"
	"nrscope/internal/history"
)

func main() {
	// Two independent cells, each with its own scope.
	cellA, err := nrscope.NewTestbed(nrscope.AmarisoftPreset, 5)
	if err != nil {
		panic(err)
	}
	cellB, err := nrscope.NewTestbed(nrscope.MosolabPreset, 6)
	if err != nil {
		panic(err)
	}
	// One bounded store backs the fusion views and stays queryable:
	// 10 ms correlation bins, 600 bins (= 6 s) retained per series.
	store := history.New(history.Config{BinWidth: 10 * time.Millisecond, Depth: 600})
	agg := fusion.NewWithStore(store)
	idA, idB := cellA.GNB.Config().CellID, cellB.GNB.Config().CellID
	must(agg.AddCell(idA, cellA.GNB.Config().Mu))
	must(agg.AddCell(idB, cellB.GNB.Config().Mu))

	// The moving UE: 1.5 s on cell A, then it re-attaches on cell B.
	// (C-RNTIs are cell-local: the scopes see two unrelated identifiers.)
	onA := cellA.AttachUE(nrscope.UEProfile{Mobility: "vehicle", SessionSeconds: 1.5})
	// A bystander UE on cell B from the start.
	bystander := cellB.AttachUE(nrscope.UEProfile{Mobility: "static"})
	fmt.Printf("moving UE on cell A: 0x%04x; bystander on cell B: 0x%04x\n", onA, bystander)

	var onB uint16
	total := 3 * time.Second
	step := 50 * time.Millisecond
	for t := time.Duration(0); t < total; t += step {
		cellA.RunFor(step, func(res *nrscope.SlotResult) {
			for _, rec := range res.Records {
				_ = agg.Ingest(idA, rec)
			}
		})
		cellB.RunFor(step, func(res *nrscope.SlotResult) {
			for _, rec := range res.Records {
				_ = agg.Ingest(idB, rec)
			}
		})
		// Hand the UE over once its cell-A session ends.
		if onB == 0 && t >= 1500*time.Millisecond {
			onB = cellB.AttachUE(nrscope.UEProfile{Mobility: "vehicle"})
			fmt.Printf("t=%v: UE re-attaches on cell B (will get 0x%04x)\n", t, onB)
		}
	}

	for _, id := range []uint16{idA, idB} {
		load, _ := agg.CellLoad(id)
		totalUEs, recent, _ := agg.ActiveUEs(id, total, time.Second)
		fmt.Printf("cell %d: mean load %.2f Mbps, %d UEs seen (%d recent)\n",
			id, load/1e6, totalUEs, recent)
	}
	for _, h := range agg.Handovers() {
		fmt.Println(h)
	}
	if len(agg.Handovers()) == 0 {
		fmt.Println("no handover candidates detected")
	}
	fmt.Printf("merged view: %d active bins across both cells (bounded by the %d-bin rings)\n",
		len(agg.Merged()), store.Depth())
	// The shared store answers queries over the same bins the fused
	// views were computed from — the moving UE's last second on cell B:
	if onB != 0 {
		var bits int64
		bins, _ := store.QueryWindow(idB, onB, time.Second, 1)
		for _, b := range bins {
			bits += b.DLBits
		}
		fmt.Printf("moving UE 0x%04x on cell B: %d DL bits in its last retained second\n", onB, bits)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
