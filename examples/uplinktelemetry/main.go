// Uplink control telemetry (paper §7, "UCI Decoding" future work): a
// second receiver captures the uplink carrier, and NR-Scope decodes each
// tracked UE's PUCCH — scheduling requests, CQI reports and HARQ
// feedback — giving visibility into uplink demand and channel quality
// that downlink DCIs alone cannot provide.
package main

import (
	"fmt"
	"time"

	"nrscope"
	"nrscope/internal/channel"
	"nrscope/internal/radio"
)

func main() {
	tb, err := nrscope.NewTestbed(nrscope.AmarisoftPreset, 13)
	if err != nil {
		panic(err)
	}
	// The uplink carrier needs its own tuner (a second USRP channel).
	ulRX := radio.NewReceiver(channel.Normal, 22, 1301).Reuse(true)

	good := tb.AttachUE(nrscope.UEProfile{Mobility: "static", UplinkKbps: 800})
	bad := tb.AttachUE(nrscope.UEProfile{Mobility: "urban", UplinkKbps: 800})
	fmt.Printf("UEs: 0x%04x static, 0x%04x urban-faded\n", good, bad)

	type stats struct {
		reports, srs, acks, nacks int
		cqiSum                    int
	}
	perUE := map[uint16]*stats{good: {}, bad: {}}

	slots := int(3 * time.Second / tb.TTI())
	for i := 0; i < slots; i++ {
		out := tb.GNB.Step()
		tb.Scope.ProcessSlot(tb.RX.Capture(out.SlotIdx, out.Ref, out.Grid))
		ul := tb.Scope.ProcessUplinkSlot(ulRX.Capture(out.SlotIdx, out.Ref, out.ULGrid))
		for _, r := range ul.Reports {
			s := perUE[r.RNTI]
			if s == nil {
				continue
			}
			s.reports++
			s.cqiSum += r.UCI.CQI
			if r.UCI.SR {
				s.srs++
			}
			if r.UCI.HasAck {
				if r.UCI.Ack {
					s.acks++
				} else {
					s.nacks++
				}
			}
		}
	}

	fmt.Println("ue       reports   SRs  ACKs  NACKs  mean CQI")
	for _, rnti := range []uint16{good, bad} {
		s := perUE[rnti]
		if s.reports == 0 {
			fmt.Printf("0x%04x   (no UCI decoded)\n", rnti)
			continue
		}
		fmt.Printf("0x%04x   %7d  %4d  %4d  %5d  %8.1f\n",
			rnti, s.reports, s.srs, s.acks, s.nacks, float64(s.cqiSum)/float64(s.reports))
	}
	fmt.Println("\nthe urban UE reports lower CQI and draws NACKs — uplink-side evidence")
	fmt.Println("of the same channel conditions the downlink telemetry infers from MCS/HARQ.")
}
