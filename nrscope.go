// Package nrscope is a Go reproduction of "NR-Scope: A Practical 5G
// Standalone Telemetry Tool" (CoNEXT 2024): a passive telemetry engine
// that recovers per-UE throughput, channel quality, retransmissions and
// spare RAN capacity from a 5G Standalone cell's control channel,
// without operator, phone, or UE cooperation.
//
// Because this reproduction is pure software (no SDR hardware), the
// repository also contains a complete symbol-level 5G SA RAN simulator —
// gNB, schedulers, HARQ, RACH, channel models — that stands in for the
// USRP front end and the live cells of the paper's evaluation; see
// DESIGN.md for the substitution map and EXPERIMENTS.md for the
// reproduced figures.
//
// This package is the public facade: it re-exports the telemetry engine
// (internal/core), its options, and a Testbed that wires a simulated
// cell to the scope for quick starts:
//
//	tb, _ := nrscope.NewTestbed(nrscope.AmarisoftPreset, 1)
//	tb.AttachUE(nrscope.UEProfile{})
//	for i := 0; i < 20000; i++ {
//	    res := tb.Step()
//	    for _, rec := range res.Records { ... }
//	}
package nrscope

import (
	"fmt"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/telemetry"
	"nrscope/internal/traffic"
)

// Re-exported engine types. Scope is the paper's telemetry engine;
// Pipeline its asynchronous Fig.-4 worker-pool form.
type (
	// Scope is the NR-Scope telemetry engine (one per monitored cell).
	Scope = core.Scope
	// SlotResult is the per-TTI output of the engine.
	SlotResult = core.SlotResult
	// Option configures the engine.
	Option = core.Option
	// Pipeline is the asynchronous worker-pool front of the engine.
	Pipeline = core.Pipeline
	// DecodePool is the shared multi-cell decode worker pool: per-cell
	// slot order stays strict while cells decode concurrently, with
	// work-stealing across the registered cells.
	DecodePool = core.DecodePool
	// Record is one decoded DCI's telemetry row.
	Record = telemetry.Record
	// Capture is one received slot from the radio front end.
	Capture = radio.Capture
	// UEActivity summarises one observed UE session.
	UEActivity = core.UEActivity
	// Bus is the in-process telemetry distribution bus (internal/bus):
	// bounded per-sink queues, batching, backpressure policies, and
	// managed pluggable sinks.
	Bus = bus.Bus
)

// Engine options, re-exported from the core package.
var (
	// WithDCIThreads shards the UE list over n decoding goroutines.
	WithDCIThreads = core.WithDCIThreads
	// WithVerifyMSG4 toggles RRC-Setup PDSCH verification of new UEs.
	WithVerifyMSG4 = core.WithVerifyMSG4
	// WithInactivityTimeout ages out silent UEs after n slots.
	WithInactivityTimeout = core.WithInactivityTimeout
	// WithIdleHorizon ages out silent UEs after a wall-clock duration
	// (converted to slots once the cell's numerology is known).
	WithIdleHorizon = core.WithIdleHorizon
	// WithThroughputWindow sets the bitrate estimator window.
	WithThroughputWindow = core.WithThroughputWindow
	// WithDMRSGate toggles the candidate occupancy pre-filter.
	WithDMRSGate = core.WithDMRSGate
	// WithBus publishes every emitted record onto a telemetry bus.
	WithBus = core.WithBus
)

// NewBus creates an empty telemetry distribution bus; attach it to a
// scope with WithBus and add sinks via bus.Subscribe / bus.NewTCPServer
// / bus sink constructors (see internal/bus).
func NewBus() *Bus { return bus.New() }

// New creates a telemetry engine for the cell with the given physical
// cell id.
func New(cellID uint16, opts ...Option) *Scope { return core.New(cellID, opts...) }

// NewPipeline wraps a scope in the asynchronous worker-pool pipeline.
func NewPipeline(s *Scope, workers, queueDepth int) *Pipeline {
	return core.NewPipeline(s, workers, queueDepth)
}

// NewDecodePool creates a shared decode pool; register each cell's
// scope with AddCell, then Start, then feed it captures (for example
// from Testbed.StepRaw) with Submit.
func NewDecodePool(workers, queueDepth int) *DecodePool {
	return core.NewDecodePool(workers, queueDepth)
}

// Preset selects one of the evaluation cells of the paper (§5.1).
type Preset int

// Cell presets.
const (
	// SrsRANPreset is the srsRAN/Open5GS cell: 20 MHz TDD at 30 kHz SCS.
	SrsRANPreset Preset = iota
	// MosolabPreset is the Mosolabs/Aether CBRS small cell.
	MosolabPreset
	// AmarisoftPreset is the Amari Callbox (up to 64 emulated UEs).
	AmarisoftPreset
	// TMobile1Preset is commercial cell 1: FDD n25, 10 MHz.
	TMobile1Preset
	// TMobile2Preset is commercial cell 2: FDD n71, 15 MHz.
	TMobile2Preset
)

// cell returns the preset's RAN configuration.
func (p Preset) cell() (ran.CellConfig, error) {
	switch p {
	case SrsRANPreset:
		return ran.SrsRANCell(), nil
	case MosolabPreset:
		return ran.MosolabCell(), nil
	case AmarisoftPreset:
		return ran.AmarisoftCell(), nil
	case TMobile1Preset:
		return ran.TMobileCell(1), nil
	case TMobile2Preset:
		return ran.TMobileCell(2), nil
	default:
		return ran.CellConfig{}, fmt.Errorf("nrscope: unknown preset %d", int(p))
	}
}

// UEProfile describes a simulated UE attached to a testbed cell.
type UEProfile struct {
	// Mobility selects the channel model: "static" (default),
	// "pedestrian", "vehicle", "urban", "awgn".
	Mobility string
	// DownlinkMbps is the mean downlink demand (0 = 30 fps video at
	// ~4.8 Mbit/s, the paper's typical UE).
	DownlinkMbps float64
	// UplinkKbps adds an uplink flow (0 = 200 kbit/s).
	UplinkKbps float64
	// SessionSeconds bounds the UE's stay (0 = whole run).
	SessionSeconds float64
}

func (u UEProfile) model() channel.Model {
	switch u.Mobility {
	case "", "static":
		return channel.Normal
	case "awgn":
		return channel.AWGN
	case "pedestrian":
		return channel.Pedestrian
	case "vehicle", "moving":
		return channel.Vehicle
	case "urban", "blocked":
		return channel.Urban
	default:
		return channel.Normal
	}
}

// Testbed is a self-contained simulated cell + radio + telemetry engine,
// replacing the USRP-and-live-cell setup of the paper for software-only
// experimentation.
type Testbed struct {
	GNB   *ran.GNB
	RX    *radio.Receiver
	Scope *Scope
}

// NewTestbed builds a testbed on a preset cell. seed controls all
// randomness; scope options may be appended.
func NewTestbed(p Preset, seed int64, opts ...Option) (*Testbed, error) {
	cfg, err := p.cell()
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	gnb, err := ran.NewGNB(cfg, 1<<21)
	if err != nil {
		return nil, err
	}
	return &Testbed{
		GNB:   gnb,
		RX:    radio.NewReceiver(channel.Normal, 22, cfg.Seed^0xACE).Reuse(true),
		Scope: New(cfg.CellID, opts...),
	}, nil
}

// AttachUE admits a UE that will RACH at the next occasion. It returns
// the C-RNTI the cell will assign.
func (tb *Testbed) AttachUE(profile UEProfile) uint16 {
	cfg := tb.GNB.Config()
	tti := cfg.TTI()
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		var dl traffic.Generator
		if profile.DownlinkMbps > 0 {
			dl = traffic.NewCBR(profile.DownlinkMbps*1e6, tti)
		} else {
			dl = traffic.NewVideo(30, 20000, 0.2, tti, seed)
		}
		ulKbps := profile.UplinkKbps
		if ulKbps == 0 {
			ulKbps = 200
		}
		ul := traffic.NewCBR(ulKbps*1e3, tti)
		ch := channel.New(profile.model(), cfg.BaseSNRdB, seed)
		return dl, ul, ch
	}
	session := -1
	if profile.SessionSeconds > 0 {
		session = int(profile.SessionSeconds / tti.Seconds())
	}
	return tb.GNB.AddUE(factory, session)
}

// Step advances the whole chain one TTI and returns the scope's output.
func (tb *Testbed) Step() *SlotResult {
	_, res := tb.StepCapture()
	return res
}

// StepCapture advances one TTI and returns both the radio capture (for
// recording, see internal/capfile) and the scope's output. The capture
// grid is reused on the second-following step.
func (tb *Testbed) StepCapture() (*Capture, *SlotResult) {
	out := tb.GNB.Step()
	cap := tb.RX.Capture(out.SlotIdx, out.Ref, out.Grid)
	return cap, tb.Scope.ProcessSlot(cap)
}

// StepRaw advances one TTI and returns the radio capture WITHOUT
// running the scope — for feeding a DecodePool or a shard supervisor
// that decodes elsewhere. It disables the receiver's capture-buffer
// recycling: queued captures must own their grids.
func (tb *Testbed) StepRaw() *Capture {
	tb.RX.Reuse(false)
	out := tb.GNB.Step()
	return tb.RX.Capture(out.SlotIdx, out.Ref, out.Grid)
}

// TTI returns the testbed cell's slot duration.
func (tb *Testbed) TTI() time.Duration { return tb.GNB.Config().TTI() }

// RunFor advances the testbed for a wall-clock-equivalent duration,
// invoking fn (if non-nil) on every slot result.
func (tb *Testbed) RunFor(d time.Duration, fn func(*SlotResult)) {
	slots := int(d / tb.TTI())
	for i := 0; i < slots; i++ {
		res := tb.Step()
		if fn != nil {
			fn(res)
		}
	}
}
