package nrscope

// Benchmark harness: one testing.B target per table/figure of the
// paper's evaluation (DESIGN.md §4 maps each to its experiment), plus
// ablation benches for the design choices DESIGN.md §5 calls out.
//
// Each figure bench runs the corresponding experiment end to end at a
// reduced (Quick) scale, so `go test -bench=.` regenerates every result
// in minutes; `cmd/experiments` runs the full-scale versions and prints
// the series. Wall-clock per op therefore means "time to reproduce the
// figure", not a micro-operation.

import (
	"testing"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/eval"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/traffic"
)

// quick is the scale figure benches run at.
var quick = eval.Options{Quick: true, Slots: 3000}

// benchFigure runs one figure experiment per iteration and records a
// headline metric as a custom benchmark unit.
func benchFigure(b *testing.B, fn func(eval.Options) eval.Figure) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := quick
		o.Seed = int64(9000 + i)
		fig := fn(o)
		if len(fig.Series) == 0 {
			b.Fatal("figure produced no series")
		}
	}
}

func BenchmarkFig07aDCIMissRateSrsran(b *testing.B)      { benchFigure(b, eval.Fig7a) }
func BenchmarkFig07bDCIMissRateAmarisoft(b *testing.B)   { benchFigure(b, eval.Fig7b) }
func BenchmarkFig08aREGErrorSrsran(b *testing.B)         { benchFigure(b, eval.Fig8a) }
func BenchmarkFig08bREGErrorAmarisoft(b *testing.B)      { benchFigure(b, eval.Fig8b) }
func BenchmarkFig09aThroughputErrorMosolab(b *testing.B) { benchFigure(b, eval.Fig9a) }
func BenchmarkFig09bThroughputErrorAmarisoft(b *testing.B) {
	benchFigure(b, eval.Fig9b)
}
func BenchmarkFig09cThroughputErrorTMobile(b *testing.B) { benchFigure(b, eval.Fig9c) }
func BenchmarkFig10UEActiveTime(b *testing.B)            { benchFigure(b, eval.Fig10) }
func BenchmarkFig11ActiveUECounts(b *testing.B)          { benchFigure(b, eval.Fig11) }
func BenchmarkFig12ProcessingTime(b *testing.B)          { benchFigure(b, eval.Fig12) }
func BenchmarkFig13Coverage(b *testing.B)                { benchFigure(b, eval.Fig13) }
func BenchmarkFig14SpareCapacity(b *testing.B)           { benchFigure(b, eval.Fig14) }
func BenchmarkFig15MCSRetransmission(b *testing.B)       { benchFigure(b, eval.Fig15) }
func BenchmarkFig16abcScenarios(b *testing.B)            { benchFigure(b, eval.Fig16abc) }
func BenchmarkFig16dPacketAggregation(b *testing.B)      { benchFigure(b, eval.Fig16d) }
func BenchmarkExtSchedulerFingerprint(b *testing.B)      { benchFigure(b, eval.ExtSchedulers) }
func BenchmarkExtCongestionControl(b *testing.B)         { benchFigure(b, eval.ExtCongestion) }

// --- core-loop micro benches ---

// benchSlotLoop measures steady-state per-slot processing with n UEs and
// the given scope options — the primitive underlying Fig. 12.
func benchSlotLoop(b *testing.B, nUEs int, opts ...core.Option) {
	b.Helper()
	cfg := ran.AmarisoftCell()
	cfg.Seed = 77
	gnb, err := ran.NewGNB(cfg, 1<<21)
	if err != nil {
		b.Fatal(err)
	}
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewVideo(30, 15000, 0.2, cfg.TTI(), seed),
			traffic.NewCBR(200e3, cfg.TTI()),
			channel.New(channel.Normal, cfg.BaseSNRdB, seed)
	}
	for i := 0; i < nUEs; i++ {
		gnb.AddUE(factory, -1)
	}
	rx := radio.NewReceiver(channel.Normal, 22, 5).Reuse(true)
	scope := core.New(cfg.CellID, opts...)
	for i := 0; i < 1500; i++ { // RACH + discovery settle
		out := gnb.Step()
		scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := gnb.Step()
		scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
}

func BenchmarkSlotLoop4UEs(b *testing.B)  { benchSlotLoop(b, 4) }
func BenchmarkSlotLoop16UEs(b *testing.B) { benchSlotLoop(b, 16) }
func BenchmarkSlotLoop64UEs(b *testing.B) { benchSlotLoop(b, 64) }
func BenchmarkSlotLoop64UEs4Threads(b *testing.B) {
	benchSlotLoop(b, 64, core.WithDCIThreads(4))
}

// BenchmarkUplinkSlotLoop16UEs measures steady-state uplink UCI
// processing — one pucch.Decode energy gate (and, for active resources,
// a full demap/descramble/Viterbi/CRC pass) per tracked RNTI per slot.
func BenchmarkUplinkSlotLoop16UEs(b *testing.B) {
	cfg := ran.AmarisoftCell()
	cfg.Seed = 79
	gnb, err := ran.NewGNB(cfg, 1<<21)
	if err != nil {
		b.Fatal(err)
	}
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewVideo(30, 15000, 0.2, cfg.TTI(), seed),
			traffic.NewCBR(200e3, cfg.TTI()),
			channel.New(channel.Normal, cfg.BaseSNRdB, seed)
	}
	for i := 0; i < 16; i++ {
		gnb.AddUE(factory, -1)
	}
	rx := radio.NewReceiver(channel.Normal, 22, 5).Reuse(true)
	ulRX := radio.NewReceiver(channel.Normal, 22, 1301).Reuse(true)
	scope := core.New(cfg.CellID)
	for i := 0; i < 1500; i++ { // RACH + discovery settle
		out := gnb.Step()
		scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		scope.ProcessUplinkSlot(ulRX.Capture(out.SlotIdx, out.Ref, out.ULGrid))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := gnb.Step()
		scope.ProcessUplinkSlot(ulRX.Capture(out.SlotIdx, out.Ref, out.ULGrid))
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationRRCSetupSkip compares admitting new UEs with full
// RRC-Setup PDSCH verification against the paper's §3.1.2 shortcut that
// only uses the DCI after the first Setup is known.
func BenchmarkAblationRRCSetupSkip(b *testing.B) {
	b.Run("verify", func(b *testing.B) { benchSlotLoop(b, 8, core.WithVerifyMSG4(true)) })
	b.Run("skip", func(b *testing.B) { benchSlotLoop(b, 8, core.WithVerifyMSG4(false)) })
}

// BenchmarkAblationUEListSharding measures the §4 DCI-thread sharding.
func BenchmarkAblationUEListSharding(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1thread", 2: "2threads", 4: "4threads"}[threads], func(b *testing.B) {
			benchSlotLoop(b, 64, core.WithDCIThreads(threads))
		})
	}
}

// BenchmarkAblationDMRSGate measures the DMRS-correlation occupancy gate
// against brute-force decoding of every candidate.
func BenchmarkAblationDMRSGate(b *testing.B) {
	b.Run("gated", func(b *testing.B) { benchSlotLoop(b, 16, core.WithDMRSGate(true)) })
	b.Run("bruteforce", func(b *testing.B) { benchSlotLoop(b, 16, core.WithDMRSGate(false)) })
}

// BenchmarkAblationWorkerPool compares the synchronous slot loop with
// the Fig.-4 asynchronous worker pool at several widths.
func BenchmarkAblationWorkerPool(b *testing.B) {
	run := func(b *testing.B, workers int) {
		cfg := ran.AmarisoftCell()
		cfg.Seed = 78
		gnb, err := ran.NewGNB(cfg, 1<<21)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			gnb.AddUE(nil, -1)
		}
		// No buffer reuse: the pipeline queues captures.
		rx := radio.NewReceiver(channel.Normal, 22, 5)
		scope := core.New(cfg.CellID)
		pipe := core.NewPipeline(scope, workers, 64)
		done := make(chan struct{})
		go func() {
			for range pipe.Results() {
			}
			close(done)
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := gnb.Step()
			pipe.Submit(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		}
		pipe.Close()
		<-done
	}
	b.Run("1worker", func(b *testing.B) { run(b, 1) })
	b.Run("4workers", func(b *testing.B) { run(b, 4) })
}

// BenchmarkEndToEndTestbed measures the full facade path (the number a
// downstream user sees per TTI).
func BenchmarkEndToEndTestbed(b *testing.B) {
	tb, err := NewTestbed(AmarisoftPreset, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tb.AttachUE(UEProfile{})
	}
	tb.RunFor(500*time.Millisecond, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Step()
	}
}
