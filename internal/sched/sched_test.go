package sched

import (
	"testing"
	"testing/quick"

	"nrscope/internal/dci"
	"nrscope/internal/phy"
)

func region51() Region {
	return Region{StartPRB: 0, NumPRB: 51, TimeRow: 0, Link: dci.DefaultLinkConfig()}
}

func TestTimeRowSymbolsMatchesPhyTable(t *testing.T) {
	for row, ta := range phy.DefaultTimeAllocTable {
		if got := timeRowSymbols(row); got != ta.NumSymbols {
			t.Errorf("row %d: %d symbols, phy table has %d", row, got, ta.NumSymbols)
		}
	}
}

func TestSizeAllocationCoversQueue(t *testing.T) {
	link := dci.DefaultLinkConfig()
	for _, want := range []int{100, 5000, 50000} {
		nprb, tbs := sizeAllocation(want, 15, 51, 0, link)
		if nprb < 1 || nprb > 51 {
			t.Fatalf("want %d bits: nprb = %d", want, nprb)
		}
		if tbs < want && nprb < 51 {
			t.Errorf("want %d bits: tbs %d with %d PRBs does not cover queue", want, tbs, nprb)
		}
		// Minimality: one fewer PRB must not cover.
		if nprb > 1 {
			_, smaller := sizeAllocation(want, 15, nprb-1, 0, link)
			if smaller >= want && tbs >= want {
				t.Errorf("want %d bits: %d PRBs not minimal", want, nprb)
			}
		}
	}
}

func TestSizeAllocationEmptyRegion(t *testing.T) {
	if nprb, _ := sizeAllocation(100, 10, 0, 0, dci.DefaultLinkConfig()); nprb != 0 {
		t.Errorf("nprb = %d on empty region", nprb)
	}
}

func TestRoundRobinBasicAllocation(t *testing.T) {
	s := NewRoundRobin()
	reqs := []Request{
		{RNTI: 1, QueueBits: 10000, CQI: 12},
		{RNTI: 2, QueueBits: 10000, CQI: 12},
	}
	allocs := s.Schedule(0, reqs, region51())
	if len(allocs) != 2 {
		t.Fatalf("%d allocations, want 2", len(allocs))
	}
	if err := Validate(allocs, region51()); err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		if a.TBS < 10000 {
			t.Errorf("rnti %d: TBS %d does not cover queue", a.RNTI, a.TBS)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := NewRoundRobin()
	// Queue so large one UE eats the whole band.
	reqs := []Request{
		{RNTI: 1, QueueBits: 1 << 20, CQI: 10},
		{RNTI: 2, QueueBits: 1 << 20, CQI: 10},
	}
	firstServed := make(map[uint16]int)
	for slot := 0; slot < 10; slot++ {
		allocs := s.Schedule(slot, reqs, region51())
		if len(allocs) == 0 {
			t.Fatal("no allocations")
		}
		firstServed[allocs[0].RNTI]++
	}
	if firstServed[1] == 0 || firstServed[2] == 0 {
		t.Errorf("round robin never rotated: %v", firstServed)
	}
}

func TestRetransmissionsServedFirst(t *testing.T) {
	s := NewRoundRobin()
	reqs := []Request{{
		RNTI:      7,
		QueueBits: 1000,
		CQI:       10,
		Retx:      []RetxRequest{{HARQID: 3, TBS: 4000, NDI: 1, MCS: 9, NPRB: 5}},
	}}
	allocs := s.Schedule(0, reqs, region51())
	if len(allocs) != 2 {
		t.Fatalf("%d allocations, want 2 (retx + new)", len(allocs))
	}
	if !allocs[0].IsRetx || allocs[0].HARQID != 3 || allocs[0].TBS != 4000 || allocs[0].NDI != 1 {
		t.Errorf("first allocation not the retransmission: %+v", allocs[0])
	}
	if allocs[1].IsRetx {
		t.Error("second allocation should be new data")
	}
}

func TestRegionExhaustion(t *testing.T) {
	s := NewRoundRobin()
	var reqs []Request
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{RNTI: uint16(i + 1), QueueBits: 1 << 20, CQI: 8})
	}
	region := region51()
	allocs := s.Schedule(0, reqs, region)
	if err := Validate(allocs, region); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range allocs {
		total += a.NumPRB
	}
	if total > region.NumPRB {
		t.Errorf("allocated %d PRBs in a %d-PRB region", total, region.NumPRB)
	}
	if total < region.NumPRB {
		t.Errorf("backlogged UEs but %d PRBs left idle", region.NumPRB-total)
	}
}

func TestLowCQIGetsLowMCS(t *testing.T) {
	s := NewRoundRobin()
	good := s.Schedule(0, []Request{{RNTI: 1, QueueBits: 20000, CQI: 15}}, region51())
	bad := s.Schedule(1, []Request{{RNTI: 1, QueueBits: 20000, CQI: 2}}, region51())
	if len(good) != 1 || len(bad) != 1 {
		t.Fatal("expected one allocation each")
	}
	if bad[0].MCS >= good[0].MCS {
		t.Errorf("CQI 2 MCS %d not below CQI 15 MCS %d", bad[0].MCS, good[0].MCS)
	}
	if bad[0].NumPRB <= good[0].NumPRB {
		t.Errorf("low CQI should need more PRBs: %d vs %d", bad[0].NumPRB, good[0].NumPRB)
	}
}

func TestProportionalFairFavoursStarvedUE(t *testing.T) {
	p := NewProportionalFair()
	// UE 1 has been served heavily; UE 2 not at all.
	p.avg[1] = 1e6
	p.avg[2] = 1
	reqs := []Request{
		{RNTI: 1, QueueBits: 1 << 20, CQI: 10},
		{RNTI: 2, QueueBits: 1 << 20, CQI: 10},
	}
	allocs := p.Schedule(0, reqs, region51())
	if len(allocs) == 0 {
		t.Fatal("no allocations")
	}
	if allocs[0].RNTI != 2 {
		t.Errorf("starved UE not served first: %+v", allocs[0])
	}
}

func TestProportionalFairLongRunFairness(t *testing.T) {
	p := NewProportionalFair()
	reqs := []Request{
		{RNTI: 1, QueueBits: 1 << 20, CQI: 10},
		{RNTI: 2, QueueBits: 1 << 20, CQI: 10},
	}
	served := map[uint16]int{}
	for slot := 0; slot < 200; slot++ {
		for _, a := range p.Schedule(slot, reqs, region51()) {
			served[a.RNTI] += a.TBS
		}
	}
	if served[1] == 0 || served[2] == 0 {
		t.Fatalf("a UE starved: %v", served)
	}
	ratio := float64(served[1]) / float64(served[2])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("equal-CQI PF ratio %.2f, want near 1", ratio)
	}
}

func TestProportionalFairForget(t *testing.T) {
	p := NewProportionalFair()
	p.Schedule(0, []Request{{RNTI: 9, QueueBits: 100, CQI: 10}}, region51())
	if _, ok := p.avg[9]; !ok {
		t.Fatal("PF state not created")
	}
	p.Forget(9)
	if _, ok := p.avg[9]; ok {
		t.Error("PF state not dropped")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	region := region51()
	bad := []Allocation{
		{RNTI: 1, StartPRB: 0, NumPRB: 10},
		{RNTI: 2, StartPRB: 5, NumPRB: 10},
	}
	if err := Validate(bad, region); err == nil {
		t.Error("overlap not caught")
	}
	outside := []Allocation{{RNTI: 1, StartPRB: 45, NumPRB: 10}}
	if err := Validate(outside, region); err == nil {
		t.Error("out-of-region not caught")
	}
	empty := []Allocation{{RNTI: 1, StartPRB: 0, NumPRB: 0}}
	if err := Validate(empty, region); err == nil {
		t.Error("empty allocation not caught")
	}
}

func TestSchedulersNeverOverlapProperty(t *testing.T) {
	f := func(seed int64, nUEs uint8, queues [8]uint32, cqis [8]uint8) bool {
		n := 1 + int(nUEs)%8
		var reqs []Request
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{
				RNTI:      uint16(i + 1),
				QueueBits: int(queues[i] % 200000),
				CQI:       int(cqis[i]) % 16,
			})
		}
		region := region51()
		for _, s := range []Scheduler{NewRoundRobin(), NewProportionalFair()} {
			for slot := 0; slot < 5; slot++ {
				if Validate(s.Schedule(slot, reqs, region), region) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRoundRobin16UEs(b *testing.B) {
	s := NewRoundRobin()
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{RNTI: uint16(i + 1), QueueBits: 30000, CQI: 10})
	}
	region := region51()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(i, reqs, region)
	}
}
