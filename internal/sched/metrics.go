package sched

import "nrscope/internal/obs"

// met instruments the simulator-side MAC schedulers: how many grants
// the cell issues and how many resource elements it leaves spare per
// TTI — the ground truth the scope's passive spare-capacity estimate
// (§5.4.1) is judged against.
var met = struct {
	grantsIssued *obs.Counter
	retxGrants   *obs.Counter
	grantedBits  *obs.Counter
	spareREs     *obs.Counter
	schedCalls   *obs.Counter
}{
	grantsIssued: obs.Default.Counter("nrscope_sched_grants_issued_total",
		"allocations issued by the MAC schedulers"),
	retxGrants: obs.Default.Counter("nrscope_sched_retx_grants_total",
		"allocations that are HARQ retransmissions"),
	grantedBits: obs.Default.Counter("nrscope_sched_granted_bits_total",
		"transport block bits granted"),
	spareREs: obs.Default.Counter("nrscope_sched_spare_res_total",
		"resource elements left unallocated in scheduled regions"),
	schedCalls: obs.Default.Counter("nrscope_sched_calls_total",
		"Schedule invocations"),
}

// subcarriersPerPRB mirrors phy.SubcarriersPerPRB without the import
// (this package deliberately stays phy-free; see timeRowSymbols).
const subcarriersPerPRB = 12

// observeSchedule records one Schedule call's outcome: the grants it
// issued and the REs of the region it left spare.
func observeSchedule(allocs []Allocation, region Region) {
	met.schedCalls.Inc()
	usedPRBs := 0
	for _, a := range allocs {
		met.grantsIssued.Inc()
		met.grantedBits.Add(int64(a.TBS))
		if a.IsRetx {
			met.retxGrants.Inc()
		}
		usedPRBs += a.NumPRB
	}
	sparePRBs := region.NumPRB - usedPRBs
	if sparePRBs > 0 {
		met.spareREs.Add(int64(sparePRBs * subcarriersPerPRB * timeRowSymbols(region.TimeRow)))
	}
}
