// Package sched implements the gNB-side MAC downlink/uplink schedulers
// of the simulated RAN: round-robin (what srsRAN-class small cells run)
// and proportional-fair. The scheduler decides, per TTI, which UEs get
// PRBs, how many, and at what MCS — the decisions NR-Scope later
// recovers from the air by decoding the resulting DCIs.
package sched

import (
	"fmt"
	"sort"

	"nrscope/internal/channel"
	"nrscope/internal/dci"
	"nrscope/internal/mcs"
)

// RetxRequest asks the scheduler to re-send a pending HARQ transport
// block: same TBS, same NDI, highest priority.
type RetxRequest struct {
	HARQID int
	TBS    int
	NDI    uint8
	MCS    int
	NPRB   int // PRBs of the original transmission
}

// Request is one UE's scheduling state for a TTI.
type Request struct {
	RNTI      uint16
	QueueBits int // new data waiting
	CQI       int // latest channel quality report
	Retx      []RetxRequest
}

// Allocation is one scheduled transmission within the TTI.
type Allocation struct {
	RNTI     uint16
	StartPRB int
	NumPRB   int
	TimeRow  int // row in phy.DefaultTimeAllocTable
	MCS      int
	TBS      int // transport block size the allocation carries
	IsRetx   bool
	HARQID   int   // meaningful when IsRetx
	NDI      uint8 // meaningful when IsRetx
}

// Region is the contiguous PRB span available for data in this TTI
// (control regions and broadcast blocks are carved out by the caller).
type Region struct {
	StartPRB int
	NumPRB   int
	TimeRow  int // time-domain row for data this slot
	Link     dci.LinkConfig
}

// Scheduler allocates a TTI's region among the requesting UEs.
type Scheduler interface {
	// Name identifies the policy in logs and benches.
	Name() string
	// Schedule returns non-overlapping allocations within the region.
	Schedule(slot int, reqs []Request, region Region) []Allocation
}

// maxMCSForCQI converts a CQI report into the highest safe MCS index.
func maxMCSForCQI(cqi int, table mcs.Table) int {
	return table.IndexForEfficiency(channel.CQIEfficiency(cqi))
}

// MCSForCQI exposes the CQI-to-MCS link adaptation used by the
// schedulers, for callers (the RAN control plane) that size grants
// outside the data scheduler.
func MCSForCQI(cqi int, table mcs.Table) int { return maxMCSForCQI(cqi, table) }

// Size finds the smallest PRB count (up to maxPRB) whose TBS covers
// wantBits at the given MCS and time-allocation row; see sizeAllocation.
func Size(wantBits, mcsIdx, maxPRB, timeRow int, link dci.LinkConfig) (nprb, tbs int) {
	return sizeAllocation(wantBits, mcsIdx, maxPRB, timeRow, link)
}

// sizeAllocation finds the smallest PRB count (up to maxPRB) whose TBS
// covers wantBits at the given MCS, and returns (nprb, tbs). When even
// maxPRB cannot cover the queue it returns maxPRB and its TBS.
func sizeAllocation(wantBits, mcsIdx, maxPRB, timeRow int, link dci.LinkConfig) (int, int) {
	if maxPRB < 1 {
		return 0, 0
	}
	ta := timeRowSymbols(timeRow)
	lo, hi := 1, maxPRB
	tbsAt := func(nprb int) int {
		res, err := mcs.Compute(mcs.TBSParams{
			NPRB: nprb, NSymbols: ta, DMRSPerPRB: link.DMRSPerPRB,
			Overhead: link.Overhead, Layers: link.Layers,
			MCSIndex: mcsIdx, Table: link.Table,
		})
		if err != nil {
			return 0
		}
		return res.TBS
	}
	if tbsAt(maxPRB) < wantBits {
		return maxPRB, tbsAt(maxPRB)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if tbsAt(mid) >= wantBits {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, tbsAt(lo)
}

func timeRowSymbols(row int) int {
	// Avoid importing phy for one lookup; rows mirror
	// phy.DefaultTimeAllocTable (validated in tests).
	symbols := []int{12, 10, 8, 6, 4, 6, 10, 2}
	if row < 0 || row >= len(symbols) {
		return 12
	}
	return symbols[row]
}

// allocate packs one UE's transmissions (retransmissions first, then new
// data) into the remaining region. It returns the allocations and the
// new next-free PRB.
func allocate(req Request, region Region, nextPRB int) ([]Allocation, int) {
	var out []Allocation
	free := func() int { return region.StartPRB + region.NumPRB - nextPRB }

	for _, rx := range req.Retx {
		nprb := rx.NPRB
		if nprb > free() {
			break // cannot fit the retransmission this TTI
		}
		out = append(out, Allocation{
			RNTI: req.RNTI, StartPRB: nextPRB, NumPRB: nprb,
			TimeRow: region.TimeRow, MCS: rx.MCS, TBS: rx.TBS,
			IsRetx: true, HARQID: rx.HARQID, NDI: rx.NDI,
		})
		nextPRB += nprb
	}
	if req.QueueBits > 0 && free() > 0 {
		m := maxMCSForCQI(req.CQI, region.Link.Table)
		nprb, tbs := sizeAllocation(req.QueueBits, m, free(), region.TimeRow, region.Link)
		if nprb > 0 && tbs > 0 {
			out = append(out, Allocation{
				RNTI: req.RNTI, StartPRB: nextPRB, NumPRB: nprb,
				TimeRow: region.TimeRow, MCS: m, TBS: tbs,
			})
			nextPRB += nprb
		}
	}
	return out, nextPRB
}

// RoundRobin serves UEs in rotating order, giving each its full demand
// before moving on — the policy of the srsRAN/Amarisoft class of cells
// under moderate load.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Schedule implements Scheduler.
func (r *RoundRobin) Schedule(slot int, reqs []Request, region Region) (out []Allocation) {
	if len(reqs) == 0 || region.NumPRB < 1 {
		return nil
	}
	defer func() { observeSchedule(out, region) }()
	nextPRB := region.StartPRB
	start := r.next % len(reqs)
	for i := 0; i < len(reqs); i++ {
		req := reqs[(start+i)%len(reqs)]
		var allocs []Allocation
		allocs, nextPRB = allocate(req, region, nextPRB)
		out = append(out, allocs...)
		if nextPRB >= region.StartPRB+region.NumPRB {
			break
		}
	}
	r.next++
	return out
}

// ProportionalFair prioritises UEs by the ratio of their instantaneous
// achievable rate to their EWMA-served throughput.
type ProportionalFair struct {
	// Beta is the EWMA coefficient for the served-rate average.
	Beta float64
	avg  map[uint16]float64
}

// NewProportionalFair returns a PF scheduler with the standard beta.
func NewProportionalFair() *ProportionalFair {
	return &ProportionalFair{Beta: 0.05, avg: make(map[uint16]float64)}
}

// Name implements Scheduler.
func (p *ProportionalFair) Name() string { return "proportional-fair" }

// Schedule implements Scheduler.
func (p *ProportionalFair) Schedule(slot int, reqs []Request, region Region) (out []Allocation) {
	if len(reqs) == 0 || region.NumPRB < 1 {
		return nil
	}
	defer func() { observeSchedule(out, region) }()
	type scored struct {
		req      Request
		priority float64
	}
	order := make([]scored, 0, len(reqs))
	for _, req := range reqs {
		inst := channel.CQIEfficiency(req.CQI)
		avg := p.avg[req.RNTI]
		if avg < 1e-9 {
			avg = 1e-9
		}
		order = append(order, scored{req: req, priority: inst / avg})
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].priority > order[b].priority })

	nextPRB := region.StartPRB
	served := make(map[uint16]float64, len(reqs))
	for _, s := range order {
		var allocs []Allocation
		allocs, nextPRB = allocate(s.req, region, nextPRB)
		for _, a := range allocs {
			served[a.RNTI] += float64(a.TBS)
		}
		out = append(out, allocs...)
		if nextPRB >= region.StartPRB+region.NumPRB {
			break
		}
	}
	// EWMA update for every requester, including the unserved.
	for _, req := range reqs {
		p.avg[req.RNTI] = (1-p.Beta)*p.avg[req.RNTI] + p.Beta*served[req.RNTI]
	}
	return out
}

// Forget drops PF state for a departed UE.
func (p *ProportionalFair) Forget(rnti uint16) { delete(p.avg, rnti) }

// Validate checks an allocation set for region containment and overlap;
// the RAN asserts this invariant every slot.
func Validate(allocs []Allocation, region Region) error {
	end := region.StartPRB + region.NumPRB
	sorted := append([]Allocation(nil), allocs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].StartPRB < sorted[b].StartPRB })
	prev := region.StartPRB
	for _, a := range sorted {
		if a.NumPRB < 1 {
			return fmt.Errorf("sched: empty allocation for %#x", a.RNTI)
		}
		if a.StartPRB < prev {
			return fmt.Errorf("sched: overlap at PRB %d (rnti %#x)", a.StartPRB, a.RNTI)
		}
		if a.StartPRB+a.NumPRB > end {
			return fmt.Errorf("sched: allocation beyond region end (rnti %#x)", a.RNTI)
		}
		prev = a.StartPRB + a.NumPRB
	}
	return nil
}
