package capfile

import (
	"bytes"
	"io"
	"math"
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hdr := Header{CellID: 500, Mu: phy.Mu1, NumPRB: 51}
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	g := phy.NewGrid(51)
	g.Set(3, 100, complex(0.5, -0.25))
	caps := []*radio.Capture{
		{SlotIdx: 0, Ref: phy.SlotRef{SFN: 0, Slot: 0}, N0: 0.01, SNRdB: 20, Grid: g},
		{SlotIdx: 1, Ref: phy.SlotRef{SFN: 0, Slot: 1}, N0: 0.02, SNRdB: 17}, // uplink slot
		{SlotIdx: 2, Ref: phy.SlotRef{SFN: 0, Slot: 2}, N0: 0.01, SNRdB: 20, Grid: g},
	}
	for _, c := range caps {
		if err := w.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Slots() != 3 {
		t.Errorf("Slots = %d", w.Slots())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != hdr {
		t.Errorf("header %+v, want %+v", r.Header(), hdr)
	}
	for i, want := range caps {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.SlotIdx != want.SlotIdx || got.Ref != want.Ref || got.N0 != want.N0 || got.SNRdB != want.SNRdB {
			t.Errorf("record %d meta: %+v", i, got)
		}
		if (got.Grid == nil) != (want.Grid == nil) {
			t.Fatalf("record %d grid presence mismatch", i)
		}
		if got.Grid != nil {
			v := got.Grid.At(3, 100)
			if math.Abs(real(v)-0.5) > 1e-6 || math.Abs(imag(v)+0.25) > 1e-6 {
				t.Errorf("record %d sample %v", i, v)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Mu: phy.Numerology(7), NumPRB: 51}); err == nil {
		t.Error("bad numerology accepted")
	}
	if _, err := NewWriter(&buf, Header{Mu: phy.Mu1, NumPRB: 0}); err == nil {
		t.Error("zero PRBs accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("JUNKDATA???"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("NR"))); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestWriterRejectsMismatchedGrid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{CellID: 1, Mu: phy.Mu1, NumPRB: 51})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&radio.Capture{Grid: phy.NewGrid(24)}); err == nil {
		t.Error("mismatched grid width accepted")
	}
	_ = w.Close()
	if err := w.Append(&radio.Capture{}); err == nil {
		t.Error("append after close accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{CellID: 1, Mu: phy.Mu1, NumPRB: 24})
	_ = w.Append(&radio.Capture{SlotIdx: 0, Grid: phy.NewGrid(24)})
	_ = w.Close()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-100]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated grid read: %v", err)
	}
}

// TestOfflineReplayMatchesLive records a short session and checks the
// scope produces identical telemetry from the replay — the offline
// post-processing workflow.
func TestOfflineReplayMatchesLive(t *testing.T) {
	cfg := ran.AmarisoftCell()
	cfg.Seed = 91
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gnb.AddUE(nil, -1)
	rx := radio.NewReceiver(channel.Normal, 25, 9)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{CellID: cfg.CellID, Mu: cfg.Mu, NumPRB: cfg.CarrierPRBs})
	if err != nil {
		t.Fatal(err)
	}
	live := core.New(cfg.CellID)
	liveRecords := 0
	const slots = 600
	for i := 0; i < slots; i++ {
		out := gnb.Step()
		cap := rx.Capture(out.SlotIdx, out.Ref, out.Grid)
		if err := w.Append(cap); err != nil {
			t.Fatal(err)
		}
		liveRecords += len(live.ProcessSlot(cap).Records)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if liveRecords == 0 {
		t.Fatal("live pass produced nothing")
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := core.New(r.Header().CellID)
	replayRecords := 0
	for {
		cap, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayRecords += len(replay.ProcessSlot(cap).Records)
	}
	// complex64 quantisation is far below the noise floor; the decoded
	// telemetry must match exactly.
	if replayRecords != liveRecords {
		t.Errorf("replay found %d records, live %d", replayRecords, liveRecords)
	}
}
