// Package capfile persists radio captures to disk and replays them, so
// NR-Scope can post-process recordings offline — the "on-demand slot
// data processing" the paper's §4 worker pool enables when real-time
// output is not needed, and the raw-material of the §7 post-processing
// library.
//
// Format (little-endian):
//
//	magic "NRSC" | u16 version | u16 cellID | u8 mu | u16 numPRB
//	per slot: u8 tag | i64 slotIdx | u16 sfn | u16 slot | f64 n0 | f64 snr
//	          tag&1 == 1: followed by width*14 complex64 samples
//
// Samples are stored as complex64 — half the in-memory size, far more
// precision than any RF front end delivers.
package capfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nrscope/internal/phy"
	"nrscope/internal/radio"
)

const (
	magic   = "NRSC"
	version = 1
)

// Header identifies a capture stream.
type Header struct {
	CellID uint16
	Mu     phy.Numerology
	NumPRB int
}

// Writer streams captures to an io.Writer.
type Writer struct {
	bw     *bufio.Writer
	hdr    Header
	slots  int
	closed bool
}

// NewWriter writes the header and returns a capture writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if !hdr.Mu.Valid() {
		return nil, fmt.Errorf("capfile: invalid numerology")
	}
	if hdr.NumPRB < 1 || hdr.NumPRB > 275 {
		return nil, fmt.Errorf("capfile: numPRB %d", hdr.NumPRB)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	scratch := make([]byte, 8)
	binary.LittleEndian.PutUint16(scratch, version)
	binary.LittleEndian.PutUint16(scratch[2:], hdr.CellID)
	scratch[4] = byte(hdr.Mu)
	binary.LittleEndian.PutUint16(scratch[5:], uint16(hdr.NumPRB))
	if _, err := bw.Write(scratch[:7]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, hdr: hdr}, nil
}

// Append records one capture. Nil grids (uplink-only slots) are stored
// as grid-less markers so replay preserves slot timing.
func (w *Writer) Append(cap *radio.Capture) error {
	if w.closed {
		return fmt.Errorf("capfile: writer closed")
	}
	var tag byte
	if cap.Grid != nil {
		if cap.Grid.NumPRB != w.hdr.NumPRB {
			return fmt.Errorf("capfile: grid width %d != header %d", cap.Grid.NumPRB, w.hdr.NumPRB)
		}
		tag = 1
	}
	var fixed [1 + 8 + 2 + 2 + 8 + 8]byte
	fixed[0] = tag
	binary.LittleEndian.PutUint64(fixed[1:], uint64(int64(cap.SlotIdx)))
	binary.LittleEndian.PutUint16(fixed[9:], uint16(cap.Ref.SFN))
	binary.LittleEndian.PutUint16(fixed[11:], uint16(cap.Ref.Slot))
	binary.LittleEndian.PutUint64(fixed[13:], math.Float64bits(cap.N0))
	binary.LittleEndian.PutUint64(fixed[21:], math.Float64bits(cap.SNRdB))
	if _, err := w.bw.Write(fixed[:]); err != nil {
		return err
	}
	if cap.Grid != nil {
		var b [8]byte
		for _, s := range cap.Grid.Samples() {
			binary.LittleEndian.PutUint32(b[:4], math.Float32bits(float32(real(s))))
			binary.LittleEndian.PutUint32(b[4:], math.Float32bits(float32(imag(s))))
			if _, err := w.bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	w.slots++
	return nil
}

// Slots reports how many captures were appended.
func (w *Writer) Slots() int { return w.slots }

// Close flushes buffered data. The underlying writer is not closed.
func (w *Writer) Close() error {
	w.closed = true
	return w.bw.Flush()
}

// Reader replays a capture stream.
type Reader struct {
	br  *bufio.Reader
	hdr Header
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4+7)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("capfile: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("capfile: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("capfile: unsupported version %d", v)
	}
	hdr := Header{
		CellID: binary.LittleEndian.Uint16(head[6:]),
		Mu:     phy.Numerology(head[8]),
		NumPRB: int(binary.LittleEndian.Uint16(head[9:])),
	}
	if !hdr.Mu.Valid() || hdr.NumPRB < 1 {
		return nil, fmt.Errorf("capfile: corrupt header %+v", hdr)
	}
	return &Reader{br: br, hdr: hdr}, nil
}

// Header returns the stream identity.
func (r *Reader) Header() Header { return r.hdr }

// Next reads one capture; io.EOF marks the clean end of the stream.
func (r *Reader) Next() (*radio.Capture, error) {
	var fixed [1 + 8 + 2 + 2 + 8 + 8]byte
	if _, err := io.ReadFull(r.br, fixed[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("capfile: truncated record: %w", err)
	}
	cap := &radio.Capture{
		SlotIdx: int(int64(binary.LittleEndian.Uint64(fixed[1:]))),
		Ref: phy.SlotRef{
			SFN:  int(binary.LittleEndian.Uint16(fixed[9:])),
			Slot: int(binary.LittleEndian.Uint16(fixed[11:])),
		},
		N0:    math.Float64frombits(binary.LittleEndian.Uint64(fixed[13:])),
		SNRdB: math.Float64frombits(binary.LittleEndian.Uint64(fixed[21:])),
	}
	if fixed[0]&1 == 1 {
		g := phy.NewGrid(r.hdr.NumPRB)
		s := g.Samples()
		buf := make([]byte, 8*len(s))
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, fmt.Errorf("capfile: truncated grid: %w", err)
		}
		for i := range s {
			re := math.Float32frombits(binary.LittleEndian.Uint32(buf[8*i:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(buf[8*i+4:]))
			s[i] = complex(float64(re), float64(im))
		}
		cap.Grid = g
	}
	return cap, nil
}
