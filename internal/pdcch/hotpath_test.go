package pdcch

import (
	"math/rand"
	"sync"
	"testing"

	"nrscope/internal/bits"
	"nrscope/internal/phy"
	"nrscope/internal/polar"
	"nrscope/internal/raceflag"
)

// TestDecodeCandidateIntoMatchesDecodeCandidate pins the Into variant to
// the allocating one bit for bit, including across buffer reuse.
func TestDecodeCandidateIntoMatchesDecodeCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(cellID)
	cs := coreset()
	var buf []uint8
	for _, al := range []int{1, 2, 4, 8} {
		cand := phy.Candidate{AggLevel: al, StartCCE: 0}
		g := phy.NewGrid(51)
		if err := c.Encode(g, cs, cand, 3, randomBits(rng, 43), 0x4601); err != nil {
			t.Fatal(err)
		}
		n0 := addNoise(g, 12, rng)
		want, err := c.DecodeCandidate(g, cs, cand, 3, 43, n0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeCandidateInto(buf, g, cs, cand, 3, 43, n0)
		if err != nil {
			t.Fatal(err)
		}
		buf = got[:0] // reuse across aggregation levels
		if len(got) != len(want) {
			t.Fatalf("AL%d: length %d vs %d", al, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AL%d: bit %d differs", al, i)
			}
		}
	}
}

// TestDecodeHotPathZeroAlloc enforces the tentpole property: with warm
// codec caches and reused buffers, the per-candidate decode path, the
// DMRS metric and the occupancy sweep perform no heap allocation.
func TestDecodeHotPathZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(12))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 4, StartCCE: 0}
	g := phy.NewGrid(51)
	if err := c.Encode(g, cs, cand, 3, randomBits(rng, 43), 0x4601); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 15, rng)

	// Warm every cache (layouts for all CCE metrics, gold, polar, pool).
	blk, err := c.DecodeCandidate(g, cs, cand, 3, 43, n0)
	if err != nil {
		t.Fatal(err)
	}
	c.DMRSMetric(g, cs, cand, 3)
	occ := c.OccupiedCCEs(g, cs, 3)

	if n := testing.AllocsPerRun(100, func() {
		out, err := c.DecodeCandidateInto(blk, g, cs, cand, 3, 43, n0)
		if err != nil {
			t.Fatal(err)
		}
		blk = out
	}); n != 0 {
		t.Errorf("DecodeCandidateInto: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.DMRSMetric(g, cs, cand, 3)
	}); n != 0 {
		t.Errorf("DMRSMetric: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		occ = c.OccupiedCCEsInto(occ, g, cs, 3)
	}); n != 0 {
		t.Errorf("OccupiedCCEsInto: %.1f allocs/op, want 0", n)
	}
}

// TestCodecConcurrentDecode hammers one codec from many goroutines with
// cold caches: the lazily built layout/DMRS/gold/polar caches must be
// race-free (run under -race in CI) and every decode must still be
// correct.
func TestCodecConcurrentDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := New(cellID)
	cs := coreset()
	type tx struct {
		g    *phy.Grid
		cand phy.Candidate
		slot int
		rnti uint16
	}
	var txs []tx
	for i, al := range []int{1, 2, 4, 8, 1, 2, 4, 8} {
		cand := phy.Candidate{AggLevel: al, StartCCE: (i % 2) * al}
		g := phy.NewGrid(51)
		rnti := uint16(0x4600 + i)
		if err := c.Encode(g, cs, cand, i%20, randomBits(rng, 43), rnti); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx{g: g, cand: cand, slot: i % 20, rnti: rnti})
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint8
			for rep := 0; rep < 20; rep++ {
				x := txs[(w+rep)%len(txs)]
				blk, err := c.DecodeCandidateInto(buf, x.g, cs, x.cand, x.slot, 43, 1e-4)
				if err != nil {
					errs <- err.Error()
					return
				}
				buf = blk[:0]
				if !bits.MatchDCICRC(blk, x.rnti) {
					errs <- "CRC failed on noiseless concurrent decode"
					return
				}
				if m := c.DMRSMetric(x.g, cs, x.cand, x.slot); m < DMRSThreshold {
					errs <- "DMRS metric below threshold on occupied candidate"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPayloadFitsMatchesPolarFeasibility: PayloadFits must agree exactly
// with whether a polar construction exists for the candidate, since the
// blind decoder uses it to classify positions as empty without trying.
func TestPayloadFitsMatchesPolarFeasibility(t *testing.T) {
	for _, al := range phy.AggregationLevels {
		e := al * phy.BitsPerCCE
		for payload := 1; payload <= 600; payload++ {
			_, err := polar.NewCode(payload+24, e)
			if got, want := PayloadFits(payload, al), err == nil; got != want {
				t.Fatalf("PayloadFits(%d, AL%d) = %v, NewCode err = %v", payload, al, got, err)
			}
		}
	}
}
