package pdcch

import (
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/bits"
	"nrscope/internal/channel"
	"nrscope/internal/phy"
)

const cellID = 500

func coreset() phy.CORESET {
	return phy.CORESET{ID: 0, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0}
}

func addNoise(g *phy.Grid, snrdB float64, rng *rand.Rand) float64 {
	n0 := channel.SNRdBToN0(snrdB)
	sigma := math.Sqrt(n0 / 2)
	s := g.Samples()
	for i := range s {
		s[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return n0
}

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(2))
	}
	return out
}

func TestEncodeDecodeRoundTripNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(cellID)
	cs := coreset()
	for _, al := range []int{1, 2, 4, 8} {
		cand := phy.Candidate{AggLevel: al, StartCCE: 0}
		g := phy.NewGrid(51)
		payload := randomBits(rng, 43)
		rnti := uint16(0x4601)
		if err := c.Encode(g, cs, cand, 3, payload, rnti); err != nil {
			t.Fatalf("AL%d: %v", al, err)
		}
		block, err := c.DecodeCandidate(g, cs, cand, 3, len(payload), 1e-4)
		if err != nil {
			t.Fatalf("AL%d: %v", al, err)
		}
		got, ok := bits.CheckDCICRC(block, rnti)
		if !ok {
			t.Fatalf("AL%d: CRC failed on noiseless channel", al)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("AL%d: payload bit %d wrong", al, i)
			}
		}
	}
}

func TestRNTIRecoveryThroughFullChain(t *testing.T) {
	// The paper's §3.1.2 C-RNTI discovery, run through polar coding,
	// scrambling, modulation and a moderately noisy channel.
	rng := rand.New(rand.NewSource(2))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 4, StartCCE: 0}
	recovered := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		g := phy.NewGrid(51)
		payload := randomBits(rng, 43)
		rnti := uint16(0x4000 + trial)
		if err := c.Encode(g, cs, cand, trial%20, payload, rnti); err != nil {
			t.Fatal(err)
		}
		n0 := addNoise(g, 10, rng)
		block, err := c.DecodeCandidate(g, cs, cand, trial%20, len(payload), n0)
		if err != nil {
			t.Fatal(err)
		}
		if _, got, ok := bits.RecoverRNTI(block); ok && got == rnti {
			recovered++
		}
	}
	if recovered < trials*9/10 {
		t.Errorf("recovered RNTI in %d/%d trials at 10 dB, want >= 90%%", recovered, trials)
	}
}

func TestDecodeMissRateIncreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 2, StartCCE: 2}
	missAt := func(snr float64) int {
		misses := 0
		for trial := 0; trial < 40; trial++ {
			g := phy.NewGrid(51)
			payload := randomBits(rng, 43)
			if err := c.Encode(g, cs, cand, 5, payload, 0x4601); err != nil {
				t.Fatal(err)
			}
			n0 := addNoise(g, snr, rng)
			block, err := c.DecodeCandidate(g, cs, cand, 5, len(payload), n0)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := bits.CheckDCICRC(block, 0x4601); !ok {
				misses++
			}
		}
		return misses
	}
	high := missAt(20)
	low := missAt(-2)
	if high > 2 {
		t.Errorf("misses at 20 dB = %d/40, want near 0", high)
	}
	if low <= high {
		t.Errorf("misses at -2 dB (%d) not above 20 dB (%d)", low, high)
	}
}

func TestDMRSMetricDetectsPresence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(cellID)
	cs := coreset()
	used := phy.Candidate{AggLevel: 4, StartCCE: 0}
	empty := phy.Candidate{AggLevel: 4, StartCCE: 4}
	g := phy.NewGrid(51)
	if err := c.Encode(g, cs, used, 7, randomBits(rng, 43), 0x4601); err != nil {
		t.Fatal(err)
	}
	addNoise(g, 10, rng)
	if m := c.DMRSMetric(g, cs, used, 7); m < DMRSThreshold {
		t.Errorf("occupied candidate metric %.2f below threshold", m)
	}
	if m := c.DMRSMetric(g, cs, empty, 7); m > DMRSThreshold {
		t.Errorf("empty candidate metric %.2f above threshold", m)
	}
}

func TestDMRSMetricEmptyGrid(t *testing.T) {
	c := New(cellID)
	cs := coreset()
	g := phy.NewGrid(51)
	if m := c.DMRSMetric(g, cs, phy.Candidate{AggLevel: 1, StartCCE: 0}, 0); m != 0 {
		t.Errorf("metric on silent grid = %.3f, want 0", m)
	}
}

func TestDMRSMetricSlotSpecific(t *testing.T) {
	// DMRS from a different slot must not correlate: the detector cannot
	// be fooled by stale transmissions.
	rng := rand.New(rand.NewSource(5))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 8, StartCCE: 0}
	g := phy.NewGrid(51)
	if err := c.Encode(g, cs, cand, 3, randomBits(rng, 43), 0x4601); err != nil {
		t.Fatal(err)
	}
	same := c.DMRSMetric(g, cs, cand, 3)
	other := c.DMRSMetric(g, cs, cand, 4)
	if other >= same {
		t.Errorf("stale-slot metric %.2f not below live metric %.2f", other, same)
	}
	if other > DMRSThreshold {
		t.Errorf("stale-slot metric %.2f above threshold", other)
	}
}

func TestCellScramblingIsolation(t *testing.T) {
	// A codec configured for a different cell id must fail the CRC:
	// scrambling isolates co-channel cells.
	rng := rand.New(rand.NewSource(6))
	cA := New(500)
	cB := New(501)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 4, StartCCE: 0}
	g := phy.NewGrid(51)
	payload := randomBits(rng, 43)
	if err := cA.Encode(g, cs, cand, 1, payload, 0x4601); err != nil {
		t.Fatal(err)
	}
	block, err := cB.DecodeCandidate(g, cs, cand, 1, len(payload), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bits.CheckDCICRC(block, 0x4601); ok {
		t.Error("wrong-cell decode passed CRC")
	}
}

func BenchmarkDecodeCandidateAL4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 4, StartCCE: 0}
	g := phy.NewGrid(51)
	if err := c.Encode(g, cs, cand, 3, randomBits(rng, 43), 0x4601); err != nil {
		b.Fatal(err)
	}
	n0 := addNoise(g, 15, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeCandidate(g, cs, cand, 3, 43, n0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDMRSMetric(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := New(cellID)
	cs := coreset()
	cand := phy.Candidate{AggLevel: 4, StartCCE: 0}
	g := phy.NewGrid(51)
	if err := c.Encode(g, cs, cand, 3, randomBits(rng, 43), 0x4601); err != nil {
		b.Fatal(err)
	}
	addNoise(g, 15, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DMRSMetric(g, cs, cand, 3)
	}
}
