// Package pdcch implements the physical downlink control channel
// processing chain both ends of the simulated air interface share
// (TS 38.211 §7.3.2, TS 38.212 §7.3): CRC attachment with RNTI
// scrambling, polar coding, rate matching to the candidate's aggregation
// level, cell-specific bit scrambling, QPSK modulation, DMRS generation,
// and mapping onto CORESET resource elements.
//
// The gNB simulator encodes with it; NR-Scope's blind decoder runs the
// inverse chain per search-space candidate. The decoder additionally
// exposes a DMRS correlation detector so the scope can skip candidates
// that plainly carry no transmission — the standard trick for keeping
// blind decoding cheap.
package pdcch

import (
	"fmt"
	"math"
	"sync"

	"nrscope/internal/bits"
	"nrscope/internal/modulation"
	"nrscope/internal/phy"
	"nrscope/internal/polar"
)

// Codec carries the cell-specific scrambling context and caches of
// polar code constructions and Gold sequences (whose 1600-bit burn-in
// would otherwise dominate per-candidate decoding cost). It is safe for
// concurrent use.
type Codec struct {
	cellID uint16

	mu    sync.RWMutex
	codes map[[2]int]*polar.Code // (K, E) -> construction
	gold  map[uint32][]uint8     // cinit -> sequence prefix
}

// New returns a codec for the given physical cell id.
func New(cellID uint16) *Codec {
	return &Codec{
		cellID: cellID,
		codes:  make(map[[2]int]*polar.Code),
		gold:   make(map[uint32][]uint8),
	}
}

// goldSeq returns (a prefix of) the Gold sequence for cinit, at least n
// bits long, from the cache. Gold sequences have the prefix property, so
// one entry per cinit suffices; the PDCCH needs only a handful of cinit
// values per cell (one scrambling init plus one DMRS init per
// slot/symbol pair), keeping the cache small and hot.
func (c *Codec) goldSeq(cinit uint32, n int) []uint8 {
	c.mu.RLock()
	seq := c.gold[cinit]
	c.mu.RUnlock()
	if len(seq) >= n {
		return seq[:n]
	}
	grown := n * 2
	if grown < 2048 {
		grown = 2048
	}
	seq = bits.GoldSequence(cinit, grown)
	c.mu.Lock()
	if prev := c.gold[cinit]; len(prev) < len(seq) {
		c.gold[cinit] = seq
	} else {
		seq = prev
	}
	c.mu.Unlock()
	return seq[:n]
}

// code returns the cached polar construction for (k, e).
func (c *Codec) code(k, e int) (*polar.Code, error) {
	key := [2]int{k, e}
	c.mu.RLock()
	pc := c.codes[key]
	c.mu.RUnlock()
	if pc != nil {
		return pc, nil
	}
	pc, err := polar.NewCode(k, e)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.codes[key] = pc
	c.mu.Unlock()
	return pc, nil
}

// dmrsSymbols generates the candidate's DMRS QPSK symbols for a slot.
// DMRS is derived from the cell id and slot/symbol indices only, so a
// passive observer can regenerate it without UE state.
func (c *Codec) dmrsSymbols(cs phy.CORESET, cand phy.Candidate, slot int) []complex128 {
	res := cs.CandidateDMRSREs(cand.StartCCE, cand.AggLevel)
	out := make([]complex128, len(res))
	// Group by symbol: one Gold sequence per OFDM symbol.
	bySym := make(map[int][]int) // symbol -> positions in res
	for i, re := range res {
		bySym[re.Symbol] = append(bySym[re.Symbol], i)
	}
	for sym, idxs := range bySym {
		seq := c.goldSeq(bits.PDCCHDMRSInit(slot, sym, c.cellID), 2*cs.NumPRB*len(phy.REGDMRSOffsets))
		// Each DMRS RE consumes two sequence bits (QPSK). Index the
		// sequence by the RE's subcarrier so encoder and decoder agree
		// regardless of enumeration order.
		for _, i := range idxs {
			sc := res[i].Subcarrier
			k := sc % (cs.NumPRB * phy.SubcarriersPerPRB) / 4 // DMRS every 4th subcarrier
			b0 := seq[(2*k)%len(seq)]
			b1 := seq[(2*k+1)%len(seq)]
			out[i] = complex((1-2*float64(b0))/math.Sqrt2, (1-2*float64(b1))/math.Sqrt2)
		}
	}
	return out
}

// Encode writes one DCI transmission onto the grid: payload bits are
// CRC24C-protected with the RNTI scrambled in, polar encoded and rate
// matched to cand.AggLevel CCEs, scrambled, QPSK mapped onto the
// candidate's data REs, and the DMRS is placed on its pilot REs.
func (c *Codec) Encode(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int, payload []uint8, rnti uint16) error {
	block := bits.AttachDCICRC(payload, rnti)
	e := cand.AggLevel * phy.BitsPerCCE
	pc, err := c.code(len(block), e)
	if err != nil {
		return fmt.Errorf("pdcch: %w", err)
	}
	coded := pc.Encode(block)
	scr := c.goldSeq(bits.PDCCHScramblingInit(0, c.cellID), len(coded))
	for i := range coded {
		coded[i] ^= scr[i]
	}
	syms := modulation.Map(modulation.QPSK, coded)
	res := cs.CandidateDataREs(cand.StartCCE, cand.AggLevel)
	if len(syms) != len(res) {
		return fmt.Errorf("pdcch: %d symbols for %d REs", len(syms), len(res))
	}
	for i, re := range res {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
	dmrs := c.dmrsSymbols(cs, cand, slot)
	dres := cs.CandidateDMRSREs(cand.StartCCE, cand.AggLevel)
	for i, re := range dres {
		g.Set(re.Symbol, re.Subcarrier, dmrs[i])
	}
	return nil
}

// DMRSMetric correlates the candidate's pilot REs against the expected
// DMRS. It returns a normalised metric in [-1, 1]; values near 1 mean a
// PDCCH transmission is present on the candidate. Empty or noise-only
// candidates score near zero.
func (c *Codec) DMRSMetric(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int) float64 {
	dmrs := c.dmrsSymbols(cs, cand, slot)
	res := cs.CandidateDMRSREs(cand.StartCCE, cand.AggLevel)
	var corr complex128
	var energy float64
	for i, re := range res {
		rx := g.At(re.Symbol, re.Subcarrier)
		ref := dmrs[i]
		corr += rx * complex(real(ref), -imag(ref))
		energy += real(rx)*real(rx) + imag(rx)*imag(rx)
	}
	n := float64(len(res))
	if energy == 0 {
		return 0
	}
	// Normalise by sqrt(total energy * reference energy): |rho| <= 1.
	mag := math.Sqrt(real(corr)*real(corr) + imag(corr)*imag(corr))
	return mag / math.Sqrt(energy*n)
}

// DMRSThreshold is the detection threshold for DMRSMetric above which a
// candidate is worth a polar decode. Chosen so noise-only candidates are
// rejected with high probability while transmissions at usable SNRs pass.
const DMRSThreshold = 0.5

// CCEMetric is DMRSMetric restricted to a single CCE (18 pilot REs).
// The blind decoder computes it once per CCE per slot and only spends
// polar decodes on candidates whose CCEs all look occupied.
func (c *Codec) CCEMetric(g *phy.Grid, cs phy.CORESET, cce, slot int) float64 {
	return c.DMRSMetric(g, cs, phy.Candidate{AggLevel: 1, StartCCE: cce}, slot)
}

// OccupiedCCEs scans the CORESET and returns, per CCE, whether its DMRS
// correlation clears the detection threshold.
func (c *Codec) OccupiedCCEs(g *phy.Grid, cs phy.CORESET, slot int) []bool {
	out := make([]bool, cs.NumCCE())
	for i := range out {
		out[i] = c.CCEMetric(g, cs, i, slot) >= DMRSThreshold
	}
	return out
}

// DecodeCandidate runs the inverse chain on one candidate and returns
// the hard-decision block (payload || CRC24) of the hypothesised payload
// size. The caller verifies the CRC (with a known RNTI) or recovers the
// RNTI from it. n0 is the receiver's noise variance estimate.
func (c *Codec) DecodeCandidate(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int, payloadBits int, n0 float64) ([]uint8, error) {
	k := payloadBits + 24
	e := cand.AggLevel * phy.BitsPerCCE
	pc, err := c.code(k, e)
	if err != nil {
		return nil, fmt.Errorf("pdcch: %w", err)
	}
	res := cs.CandidateDataREs(cand.StartCCE, cand.AggLevel)
	syms := make([]complex128, len(res))
	for i, re := range res {
		syms[i] = g.At(re.Symbol, re.Subcarrier)
	}
	llr := modulation.Demap(modulation.QPSK, syms, n0)
	// Descramble in the LLR domain: a scrambling bit of 1 flips the sign.
	seq := c.goldSeq(bits.PDCCHScramblingInit(0, c.cellID), len(llr))
	for i := range llr {
		if seq[i] == 1 {
			llr[i] = -llr[i]
		}
	}
	return pc.Decode(llr), nil
}
