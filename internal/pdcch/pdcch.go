// Package pdcch implements the physical downlink control channel
// processing chain both ends of the simulated air interface share
// (TS 38.211 §7.3.2, TS 38.212 §7.3): CRC attachment with RNTI
// scrambling, polar coding, rate matching to the candidate's aggregation
// level, cell-specific bit scrambling, QPSK modulation, DMRS generation,
// and mapping onto CORESET resource elements.
//
// The gNB simulator encodes with it; NR-Scope's blind decoder runs the
// inverse chain per search-space candidate. The decoder additionally
// exposes a DMRS correlation detector so the scope can skip candidates
// that plainly carry no transmission — the standard trick for keeping
// blind decoding cheap.
//
// Everything a candidate decode needs that does not depend on the
// received grid is cached on the Codec: candidate RE layouts per
// (CORESET, aggregation level, start CCE), DMRS reference symbols per
// (CORESET, slot), Gold sequence prefixes per cinit, and polar code
// constructions per (K, E). Together with pooled demap scratch and the
// buffer-reusing DecodeCandidateInto / polar.DecodeInto variants, the
// steady-state per-candidate decode path performs no heap allocation.
package pdcch

import (
	"fmt"
	"math"
	"sync"

	"nrscope/internal/bits"
	"nrscope/internal/modulation"
	"nrscope/internal/phy"
	"nrscope/internal/polar"
)

// Codec carries the cell-specific scrambling context and the candidate
// decode caches. It is safe for concurrent use; cache entries are
// immutable once published, so readers share them without copying.
type Codec struct {
	cellID uint16

	mu      sync.RWMutex
	codes   map[[2]int]*polar.Code   // (K, E) -> construction
	gold    map[uint32][]uint8       // cinit -> sequence prefix
	layouts map[layoutKey]*layout    // candidate position -> RE geometry
	dmrs    map[dmrsKey][]complex128 // (CORESET, slot) -> DMRS reference

	scratch sync.Pool // *decodeScratch, reused across DecodeCandidate calls
}

// layoutKey identifies one candidate position within a CORESET.
type layoutKey struct {
	cs  phy.CORESET
	al  int
	cce int
}

// dmrsKey identifies one (CORESET, slot-in-frame) DMRS reference table.
type dmrsKey struct {
	cs   phy.CORESET
	slot int
}

// layout is the immutable RE geometry of one candidate position: its
// data REs in mapping order, its DMRS REs, and for each DMRS RE the
// index into the per-(CORESET, slot) reference table.
type layout struct {
	data   []phy.RE
	dmrs   []phy.RE
	refIdx []int32
}

// decodeScratch is the pooled working memory of one candidate decode.
type decodeScratch struct {
	syms []complex128
	llr  []float64
}

// New returns a codec for the given physical cell id.
func New(cellID uint16) *Codec {
	return &Codec{
		cellID:  cellID,
		codes:   make(map[[2]int]*polar.Code),
		gold:    make(map[uint32][]uint8),
		layouts: make(map[layoutKey]*layout),
		dmrs:    make(map[dmrsKey][]complex128),
	}
}

// goldSeq returns (a prefix of) the Gold sequence for cinit, at least n
// bits long, from the cache. Gold sequences have the prefix property, so
// one entry per cinit suffices; the PDCCH needs only a handful of cinit
// values per cell (one scrambling init plus one DMRS init per
// slot/symbol pair), keeping the cache small and hot.
func (c *Codec) goldSeq(cinit uint32, n int) []uint8 {
	c.mu.RLock()
	seq := c.gold[cinit]
	c.mu.RUnlock()
	if len(seq) >= n {
		return seq[:n]
	}
	grown := n * 2
	if grown < 2048 {
		grown = 2048
	}
	seq = bits.GoldSequence(cinit, grown)
	c.mu.Lock()
	if prev := c.gold[cinit]; len(prev) < len(seq) {
		c.gold[cinit] = seq
	} else {
		seq = prev
	}
	c.mu.Unlock()
	return seq[:n]
}

// code returns the cached polar construction for (k, e).
func (c *Codec) code(k, e int) (*polar.Code, error) {
	key := [2]int{k, e}
	c.mu.RLock()
	pc := c.codes[key]
	c.mu.RUnlock()
	if pc != nil {
		return pc, nil
	}
	pc, err := polar.NewCode(k, e)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.codes[key] = pc
	c.mu.Unlock()
	return pc, nil
}

// layout returns the cached RE geometry of a candidate position,
// building it on first use. The cache is bounded by the candidate
// position space: sum over aggregation levels of NumCCE/L entries per
// CORESET.
func (c *Codec) layout(cs phy.CORESET, cand phy.Candidate) *layout {
	key := layoutKey{cs: cs, al: cand.AggLevel, cce: cand.StartCCE}
	c.mu.RLock()
	lay := c.layouts[key]
	c.mu.RUnlock()
	if lay != nil {
		return lay
	}
	lay = &layout{
		data: cs.CandidateDataREs(cand.StartCCE, cand.AggLevel),
		dmrs: cs.CandidateDMRSREs(cand.StartCCE, cand.AggLevel),
	}
	perSym := cs.NumPRB * len(phy.REGDMRSOffsets)
	lay.refIdx = make([]int32, len(lay.dmrs))
	for i, re := range lay.dmrs {
		// DMRS rides every 4th subcarrier; index the reference table by
		// the RE's subcarrier so encoder and decoder agree regardless of
		// enumeration order.
		k := re.Subcarrier % (cs.NumPRB * phy.SubcarriersPerPRB) / 4
		lay.refIdx[i] = int32((re.Symbol-cs.StartSym)*perSym + k)
	}
	c.mu.Lock()
	if prev := c.layouts[key]; prev != nil {
		lay = prev
	} else {
		c.layouts[key] = lay
	}
	c.mu.Unlock()
	return lay
}

// dmrsRef returns the cached DMRS reference symbols of a CORESET for a
// slot: one QPSK symbol per DMRS subcarrier per CORESET OFDM symbol,
// flattened symbol-major. DMRS is derived from the cell id and
// slot/symbol indices only, so a passive observer can regenerate it
// without UE state; slot indices recur every frame, keeping the cache
// bounded at slots-per-frame entries per CORESET.
func (c *Codec) dmrsRef(cs phy.CORESET, slot int) []complex128 {
	key := dmrsKey{cs: cs, slot: slot}
	c.mu.RLock()
	ref := c.dmrs[key]
	c.mu.RUnlock()
	if ref != nil {
		return ref
	}
	perSym := cs.NumPRB * len(phy.REGDMRSOffsets)
	ref = make([]complex128, cs.Duration*perSym)
	for d := 0; d < cs.Duration; d++ {
		seq := c.goldSeq(bits.PDCCHDMRSInit(slot, cs.StartSym+d, c.cellID), 2*perSym)
		for k := 0; k < perSym; k++ {
			b0, b1 := seq[2*k%len(seq)], seq[(2*k+1)%len(seq)]
			ref[d*perSym+k] = complex((1-2*float64(b0))/math.Sqrt2, (1-2*float64(b1))/math.Sqrt2)
		}
	}
	c.mu.Lock()
	if prev := c.dmrs[key]; prev != nil {
		ref = prev
	} else {
		c.dmrs[key] = ref
	}
	c.mu.Unlock()
	return ref
}

// Encode writes one DCI transmission onto the grid: payload bits are
// CRC24C-protected with the RNTI scrambled in, polar encoded and rate
// matched to cand.AggLevel CCEs, scrambled, QPSK mapped onto the
// candidate's data REs, and the DMRS is placed on its pilot REs.
func (c *Codec) Encode(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int, payload []uint8, rnti uint16) error {
	block := bits.AttachDCICRC(payload, rnti)
	e := cand.AggLevel * phy.BitsPerCCE
	pc, err := c.code(len(block), e)
	if err != nil {
		return fmt.Errorf("pdcch: %w", err)
	}
	coded := pc.Encode(block)
	scr := c.goldSeq(bits.PDCCHScramblingInit(0, c.cellID), len(coded))
	for i := range coded {
		coded[i] ^= scr[i]
	}
	syms := modulation.Map(modulation.QPSK, coded)
	lay := c.layout(cs, cand)
	if len(syms) != len(lay.data) {
		return fmt.Errorf("pdcch: %d symbols for %d REs", len(syms), len(lay.data))
	}
	for i, re := range lay.data {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
	ref := c.dmrsRef(cs, slot)
	for i, re := range lay.dmrs {
		g.Set(re.Symbol, re.Subcarrier, ref[lay.refIdx[i]])
	}
	return nil
}

// DMRSMetric correlates the candidate's pilot REs against the expected
// DMRS. It returns a normalised metric in [-1, 1]; values near 1 mean a
// PDCCH transmission is present on the candidate. Empty or noise-only
// candidates score near zero. The layout and reference symbols come from
// the codec caches, so the steady-state call is allocation free.
func (c *Codec) DMRSMetric(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int) float64 {
	lay := c.layout(cs, cand)
	ref := c.dmrsRef(cs, slot)
	var corr complex128
	var energy float64
	for i, re := range lay.dmrs {
		rx := g.At(re.Symbol, re.Subcarrier)
		r := ref[lay.refIdx[i]]
		corr += rx * complex(real(r), -imag(r))
		energy += real(rx)*real(rx) + imag(rx)*imag(rx)
	}
	n := float64(len(lay.dmrs))
	if energy == 0 {
		return 0
	}
	// Normalise by sqrt(total energy * reference energy): |rho| <= 1.
	mag := math.Sqrt(real(corr)*real(corr) + imag(corr)*imag(corr))
	return mag / math.Sqrt(energy*n)
}

// DMRSThreshold is the detection threshold for DMRSMetric above which a
// candidate is worth a polar decode. Chosen so noise-only candidates are
// rejected with high probability while transmissions at usable SNRs pass.
const DMRSThreshold = 0.5

// CCEMetric is DMRSMetric restricted to a single CCE (18 pilot REs).
// The blind decoder computes it once per CCE per slot and only spends
// polar decodes on candidates whose CCEs all look occupied.
func (c *Codec) CCEMetric(g *phy.Grid, cs phy.CORESET, cce, slot int) float64 {
	return c.DMRSMetric(g, cs, phy.Candidate{AggLevel: 1, StartCCE: cce}, slot)
}

// OccupiedCCEs scans the CORESET and returns, per CCE, whether its DMRS
// correlation clears the detection threshold.
func (c *Codec) OccupiedCCEs(g *phy.Grid, cs phy.CORESET, slot int) []bool {
	return c.OccupiedCCEsInto(nil, g, cs, slot)
}

// OccupiedCCEsInto is OccupiedCCEs writing into dst (reused when its
// capacity covers the CORESET), so the per-slot occupancy sweep does not
// allocate at steady state.
func (c *Codec) OccupiedCCEsInto(dst []bool, g *phy.Grid, cs phy.CORESET, slot int) []bool {
	n := cs.NumCCE()
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = c.CCEMetric(g, cs, i, slot) >= DMRSThreshold
	}
	return dst
}

// PayloadFits reports whether a payload of the given size can be carried
// at the aggregation level at all (a polar code for it exists). The
// blind decoder skips infeasible positions without counting them as
// decode failures: no transmission is possible there.
func PayloadFits(payloadBits, aggLevel int) bool {
	return polar.Feasible(payloadBits+24, aggLevel*phy.BitsPerCCE)
}

// DecodeCandidate runs the inverse chain on one candidate and returns
// the hard-decision block (payload || CRC24) of the hypothesised payload
// size. The caller verifies the CRC (with a known RNTI) or recovers the
// RNTI from it. n0 is the receiver's noise variance estimate.
func (c *Codec) DecodeCandidate(g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int, payloadBits int, n0 float64) ([]uint8, error) {
	return c.DecodeCandidateInto(nil, g, cs, cand, slot, payloadBits, n0)
}

// DecodeCandidateInto is DecodeCandidate writing the hard-decision block
// into dst (reused when its capacity covers payloadBits+24 bits). With a
// warm cache the call performs no heap allocation: RE layout, scrambling
// sequence and polar construction come from the codec caches, and the
// demap/descramble working buffers from a pool.
func (c *Codec) DecodeCandidateInto(dst []uint8, g *phy.Grid, cs phy.CORESET, cand phy.Candidate, slot int, payloadBits int, n0 float64) ([]uint8, error) {
	k := payloadBits + 24
	e := cand.AggLevel * phy.BitsPerCCE
	pc, err := c.code(k, e)
	if err != nil {
		return nil, fmt.Errorf("pdcch: %w", err)
	}
	lay := c.layout(cs, cand)
	sc, _ := c.scratch.Get().(*decodeScratch)
	if sc == nil {
		sc = &decodeScratch{}
	}
	if cap(sc.syms) < len(lay.data) {
		// Round the scratch up to whole demap chunks so capacities stay
		// stable across aggregation levels (a level-16 candidate reuses
		// the same buffers a level-4 one grew).
		n := (len(lay.data) + modulation.ChunkWidth - 1) &^ (modulation.ChunkWidth - 1)
		sc.syms = make([]complex128, n)
	}
	syms := sc.syms[:len(lay.data)]
	for i, re := range lay.data {
		syms[i] = g.At(re.Symbol, re.Subcarrier)
	}
	llr := modulation.DemapInto(sc.llr, modulation.QPSK, syms, n0)
	sc.llr = llr
	// Descramble in the LLR domain: a scrambling bit of 1 flips the sign.
	seq := c.goldSeq(bits.PDCCHScramblingInit(0, c.cellID), len(llr))
	bits.DescrambleLLRInPlace(seq, llr)
	out := pc.DecodeInto(dst, llr)
	c.scratch.Put(sc)
	return out, nil
}
