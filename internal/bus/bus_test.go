package bus

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nrscope/internal/obs"
	"nrscope/internal/telemetry"
)

func rec(slot int) telemetry.Record {
	return telemetry.Record{SlotIdx: slot, RNTI: 0x4601, Downlink: true, TBS: 1000 + slot}
}

// collectSink captures delivered records and can be made to block or
// fail on demand.
type collectSink struct {
	mu      sync.Mutex
	recs    []telemetry.Record
	batches int
	calls   atomic.Int64
	gate    chan struct{} // non-nil: WriteBatch blocks until a receive
	failing atomic.Bool   // WriteBatch errors while set
	closed  atomic.Bool
}

func (c *collectSink) WriteBatch(recs []telemetry.Record) error {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	if c.failing.Load() {
		return errors.New("sink down")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, recs...)
	c.batches++
	return nil
}

func (c *collectSink) Close() error {
	c.closed.Store(true)
	return nil
}

func (c *collectSink) records() []telemetry.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]telemetry.Record, len(c.recs))
	copy(out, c.recs)
	return out
}

func TestPublishAfterCloseReturnsError(t *testing.T) {
	b := New()
	sink := &collectSink{}
	if _, err := b.Subscribe("edge_close", Block, sink); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Must not panic, must report closure.
	if err := b.Publish(rec(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after Close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if _, err := b.Subscribe("late", Block, &collectSink{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after Close = %v, want ErrClosed", err)
	}
	if !sink.closed.Load() {
		t.Error("sink not closed on bus Close")
	}
}

// TestDropOldestDropsExactlyOldest pins eviction order and accounting:
// with the runner wedged on the first record and a queue of 4, records
// evicted are exactly the oldest, and the drop counter matches.
func TestDropOldestDropsExactlyOldest(t *testing.T) {
	b := New()
	sink := &collectSink{gate: make(chan struct{})}
	sub, err := b.Subscribe("edge_dropoldest", DropOldest, sink,
		WithQueueSize(4), WithBatch(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Instruments are shared by sink name across -count=N runs: assert
	// on deltas from this run's baseline, not absolutes.
	dropsBase := sub.Dropped()
	// First record: wait until the runner has taken it out of the queue
	// (it is now blocked inside WriteBatch).
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.calls.Load() == 0 {
		t.Fatal("runner never picked up the first record")
	}
	// Fill the queue (1..4), then overflow with 5..7: the three oldest
	// queued records (1, 2, 3) must be evicted.
	for i := 1; i <= 7; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	dropsBefore := sub.Dropped() - dropsBase
	close(sink.gate) // release the runner
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got := sink.records()
	var slots []int
	for _, r := range got {
		slots = append(slots, r.SlotIdx)
	}
	want := []int{0, 4, 5, 6, 7}
	if len(slots) != len(want) {
		t.Fatalf("delivered %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("delivered %v, want %v (oldest must be evicted first)", slots, want)
		}
	}
	if dropsBefore != 3 {
		t.Errorf("drop counter = %d before drain, want 3", dropsBefore)
	}
}

// TestDrainOnCloseDeliversAllToBlockSink proves the zero-loss drain
// contract: everything published before Close reaches a Block sink,
// in order, even with a queue far smaller than the record count.
func TestDrainOnCloseDeliversAllToBlockSink(t *testing.T) {
	b := New()
	sink := &collectSink{}
	if _, err := b.Subscribe("edge_drain", Block, sink,
		WithQueueSize(32), WithBatch(8, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got := sink.records()
	if len(got) != n {
		t.Fatalf("delivered %d records, want %d (Block sink must lose zero on Close)", len(got), n)
	}
	for i, r := range got {
		if r.SlotIdx != i {
			t.Fatalf("record %d has slot %d: order broken", i, r.SlotIdx)
		}
	}
}

// TestBatchFlushMaxDelayTimer: with sparse traffic (a single record,
// far fewer than maxBatch), the max-delay timer must flush the batch.
func TestBatchFlushMaxDelayTimer(t *testing.T) {
	b := New()
	defer b.Close()
	sink := &collectSink{}
	if _, err := b.Subscribe("edge_sparse", Block, sink,
		WithBatch(1000, 50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(rec(7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.records()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	got := sink.records()
	if len(got) != 1 || got[0].SlotIdx != 7 {
		t.Fatalf("sparse record never flushed by the max-delay timer: %v", got)
	}
}

// TestBatchFlushMaxBatch: heavy traffic must flush on batch size, not
// wait out a long delay timer.
func TestBatchFlushMaxBatch(t *testing.T) {
	b := New()
	sink := &collectSink{}
	if _, err := b.Subscribe("edge_maxbatch", Block, sink,
		WithQueueSize(2048), WithBatch(64, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	const n = 1024
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.records()) < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(sink.records()) != n {
		t.Fatalf("delivered %d/%d", len(sink.records()), n)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deliveries waited on the delay timer (%v) despite full batches", elapsed)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryThenQuarantine: a failing sink is retried with backoff, then
// quarantined so later batches become counted drops without touching
// the sink; after the cooldown a healthy sink delivers again.
func TestRetryThenQuarantine(t *testing.T) {
	b := New()
	defer b.Close()
	sink := &collectSink{}
	sink.failing.Store(true)
	sub, err := b.Subscribe("edge_quarantine", Block, sink,
		WithBatch(1, time.Millisecond),
		WithRetry(2, time.Millisecond, 4*time.Millisecond),
		WithQuarantine(1, 300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	dropsBase := sub.Dropped()
	quarantinesBase := obs.Snapshot()["nrscope_bus_edge_quarantine_quarantines_total"]
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	// 1 attempt + 2 retries, then quarantine.
	deadline := time.Now().Add(5 * time.Second)
	for sink.calls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sink.calls.Load(); got != 3 {
		t.Fatalf("WriteBatch called %d times, want 3 (1 + 2 retries)", got)
	}
	if obs.Snapshot()["nrscope_bus_edge_quarantine_quarantines_total"]-quarantinesBase < 1 {
		t.Error("quarantine never engaged")
	}
	// While quarantined: dropped without a sink call.
	calls := sink.calls.Load()
	if err := b.Publish(rec(1)); err != nil {
		t.Fatal(err)
	}
	for sub.Dropped()-dropsBase < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.calls.Load() != calls {
		t.Error("quarantined sink was still called")
	}
	if got := sub.Dropped() - dropsBase; got != 2 {
		t.Errorf("dropped = %d, want 2 (failed batch + quarantined batch)", got)
	}
	// After cooldown the sink recovered: delivery resumes.
	sink.failing.Store(false)
	time.Sleep(350 * time.Millisecond)
	if err := b.Publish(rec(2)); err != nil {
		t.Fatal(err)
	}
	for len(sink.records()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := sink.records()
	if len(got) != 1 || got[0].SlotIdx != 2 {
		t.Fatalf("post-cooldown delivery = %v, want slot 2", got)
	}
}

// TestSubscriptionCloseDetaches: closing one subscription must not
// disturb its siblings.
func TestSubscriptionCloseDetaches(t *testing.T) {
	b := New()
	left, right := &collectSink{}, &collectSink{}
	subL, err := b.Subscribe("edge_left", Block, left, WithBatch(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("edge_right", Block, right, WithBatch(1, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	subL.Close()
	if !left.closed.Load() {
		t.Error("closed subscription's sink not closed")
	}
	if b.Subscribers() != 1 {
		t.Errorf("Subscribers = %d after detach, want 1", b.Subscribers())
	}
	if err := b.Publish(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(left.records()); got != 1 {
		t.Errorf("detached sink got %d records, want 1 (only the pre-detach one)", got)
	}
	if got := len(right.records()); got != 2 {
		t.Errorf("surviving sink got %d records, want 2", got)
	}
}

// TestDrainZeroLossWithConcurrentSlowTCP is the subsystem's acceptance
// test: a Block-policy JSONL sink must lose zero records across
// Bus.Close while a concurrent DropOldest TCP subscriber with a full
// queue (its client never reads) reports drops through the obs
// counters — no stall, no deadlock, no panic.
func TestDrainZeroLossWithConcurrentSlowTCP(t *testing.T) {
	before := obs.Snapshot()
	b := New()
	path := filepath.Join(t.TempDir(), "drain.jsonl")
	jsonl, err := NewJSONLFileSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("jsonl", Block, jsonl, WithQueueSize(64), WithBatch(16, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewTCPServer(b, "127.0.0.1:0",
		WithWriteTimeout(200*time.Millisecond),
		WithConnOptions(WithQueueSize(16), WithBatch(8, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	// A TCP subscriber that never reads: its queue fills, DropOldest
	// recycles it, and its socket writes eventually hit the deadline.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Subscribers() != 1 {
		t.Fatal("TCP subscriber never registered")
	}

	const n = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := b.Publish(rec(i)); err != nil {
				t.Errorf("Publish %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Publish stalled behind the slow TCP subscriber")
	}

	closed := make(chan error, 1)
	go func() { closed <- b.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Logf("drain reported sink errors (expected for the dead TCP conn): %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Bus.Close deadlocked draining a slow TCP subscriber")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("JSONL sink has %d records, want %d (zero loss through Block drain)", len(got), n)
	}
	for i, r := range got {
		if r.SlotIdx != i {
			t.Fatalf("record %d has slot %d: order broken", i, r.SlotIdx)
		}
	}
	delta := obs.Delta(before, obs.Snapshot())
	if delta["nrscope_bus_tcp_dropped_total"] <= 0 {
		t.Error("slow TCP subscriber reported no drops")
	}
	if delta["nrscope_bus_jsonl_dropped_total"] != 0 {
		t.Errorf("JSONL sink dropped %v records", delta["nrscope_bus_jsonl_dropped_total"])
	}
	if delta["nrscope_bus_jsonl_delivered_total"] != n {
		t.Errorf("JSONL delivered counter = %v, want %d", delta["nrscope_bus_jsonl_delivered_total"], n)
	}
}

// TestBlockPolicyBackpressure: a Block subscriber with a wedged sink
// must make Publish wait (not drop) until queue space frees.
func TestBlockPolicyBackpressure(t *testing.T) {
	b := New()
	sink := &collectSink{gate: make(chan struct{})}
	sub, err := b.Subscribe("edge_block", Block, sink,
		WithQueueSize(2), WithBatch(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		for i := 0; i < 8; i++ {
			_ = b.Publish(rec(i))
		}
	}()
	select {
	case <-blocked:
		t.Fatal("publisher never blocked on a full Block queue")
	case <-time.After(100 * time.Millisecond):
	}
	close(sink.gate)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher never unblocked after the sink drained")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.records()); got != 8 {
		t.Errorf("delivered %d records, want all 8", got)
	}
	if sub.Dropped() != 0 {
		t.Errorf("Block subscriber dropped %d records", sub.Dropped())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"jsonl":     "jsonl",
		"TCP-conn":  "tcp_conn",
		"a b/c":     "a_b_c",
		"":          "sink",
		"Sink.9":    "sink_9",
		"über-sink": "_ber_sink",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if DropOldest.String() != "drop-oldest" || Block.String() != "block" {
		t.Error("policy strings wrong")
	}
}

// TestQuarantineCooldownResume: a quarantined sink resumes normal
// delivery once the cooldown elapses — the batch that arrives after the
// quarantine window is delivered, not dropped.
func TestQuarantineCooldownResume(t *testing.T) {
	b := New()
	defer b.Close()
	sink := &collectSink{}
	sink.failing.Store(true)
	sub, err := b.Subscribe("edge_cooldown", Block, sink,
		WithBatch(1, time.Millisecond),
		WithRetry(0, time.Millisecond, time.Millisecond),
		WithQuarantine(2, 120*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	base := sub.Stats()
	deadline := time.Now().Add(5 * time.Second)
	wait := func(cond func() bool, what string) {
		t.Helper()
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", what, sub.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Two consecutive failures engage the quarantine.
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(rec(1)); err != nil {
		t.Fatal(err)
	}
	wait(func() bool { return sub.Stats().Quarantines-base.Quarantines >= 1 }, "quarantine entry")
	calls := sink.calls.Load()
	// While quarantined: dropped without touching the sink.
	if err := b.Publish(rec(2)); err != nil {
		t.Fatal(err)
	}
	wait(func() bool { return sub.Stats().Dropped-base.Dropped >= 3 }, "quarantine drop")
	if got := sink.calls.Load(); got != calls {
		t.Fatalf("quarantined sink called %d more times", got-calls)
	}
	// Past the cooldown, a healthy sink delivers again.
	sink.failing.Store(false)
	time.Sleep(150 * time.Millisecond)
	if err := b.Publish(rec(3)); err != nil {
		t.Fatal(err)
	}
	wait(func() bool { return len(sink.records()) == 1 }, "post-cooldown delivery")
	if got := sink.records(); got[0].SlotIdx != 3 {
		t.Fatalf("post-cooldown delivery = slot %d, want 3", got[0].SlotIdx)
	}
	st := sub.Stats()
	if st.Quarantines-base.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", st.Quarantines-base.Quarantines)
	}
	if st.Dropped-base.Dropped != 3 || st.Delivered-base.Delivered != 1 {
		t.Errorf("dropped/delivered = %d/%d, want 3/1",
			st.Dropped-base.Dropped, st.Delivered-base.Delivered)
	}
}

// TestDeliverySuccessResetsFailureCounter: one successful batch resets
// the consecutive-failure counter, so interleaved failures never reach
// the quarantine threshold — only an unbroken run does.
func TestDeliverySuccessResetsFailureCounter(t *testing.T) {
	b := New()
	defer b.Close()
	sink := &collectSink{}
	sub, err := b.Subscribe("edge_failreset", Block, sink,
		WithBatch(1, time.Millisecond),
		WithRetry(0, time.Millisecond, time.Millisecond),
		WithQuarantine(3, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	base := sub.Stats()
	deadline := time.Now().Add(5 * time.Second)
	wait := func(cond func() bool, what string) {
		t.Helper()
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", what, sub.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	step := func(slot int, fail bool, calls int64) {
		t.Helper()
		sink.failing.Store(fail)
		if err := b.Publish(rec(slot)); err != nil {
			t.Fatal(err)
		}
		wait(func() bool { return sink.calls.Load() >= calls }, "sink call")
	}
	// fail, fail, ok, fail, fail: without the reset the 4th failure
	// would be the 3rd consecutive and quarantine the sink.
	step(0, true, 1)
	step(1, true, 2)
	step(2, false, 3)
	step(3, true, 4)
	step(4, true, 5)
	wait(func() bool { return sub.Stats().Dropped-base.Dropped >= 4 }, "failed-batch accounting")
	time.Sleep(10 * time.Millisecond) // let the post-WriteBatch bookkeeping settle
	if q := sub.Stats().Quarantines - base.Quarantines; q != 0 {
		t.Fatalf("quarantines = %d after interleaved failures, want 0 (success must reset the counter)", q)
	}
	// A third truly-consecutive failure still quarantines.
	step(5, true, 6)
	wait(func() bool { return sub.Stats().Quarantines-base.Quarantines >= 1 }, "quarantine after 3 consecutive failures")
}

// TestDropNotify: the WithDropNotify hook sees every DropOldest
// eviction, synchronously with the push that caused it, and its total
// matches the subscription's dropped counter.
func TestDropNotify(t *testing.T) {
	b := New()
	var notified atomic.Int64
	sink := &collectSink{gate: make(chan struct{})}
	sub, err := b.Subscribe("edge_dropnotify", DropOldest, sink,
		WithQueueSize(1), WithBatch(1, time.Millisecond),
		WithDropNotify(func(n int) { notified.Add(int64(n)) }))
	if err != nil {
		t.Fatal(err)
	}
	base := sub.Dropped()
	// r0 occupies the (gated) sink; r1 queues; r2 and r3 each evict.
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.calls.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 3; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := notified.Load(); got != 2 {
		t.Fatalf("notified %d drops, want 2 (evictions are reported synchronously)", got)
	}
	close(sink.gate)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := notified.Load(), sub.Dropped()-base; got != want {
		t.Fatalf("notified %d, dropped counter says %d", got, want)
	}
	if got := len(sink.records()); got != 2 {
		t.Fatalf("delivered %d records, want 2 (r0 and the survivor r3)", got)
	}
}
