package bus

import (
	"strings"
	"sync"

	"nrscope/internal/obs"
)

// met is the bus-wide instrumentation.
var met = struct {
	published       *obs.Counter
	publishRejected *obs.Counter
	subscribers     *obs.Gauge
}{
	published: obs.Default.Counter("nrscope_bus_published_total",
		"records published into the telemetry bus"),
	publishRejected: obs.Default.Counter("nrscope_bus_publish_rejected_total",
		"publishes rejected because the bus or a subscription was closed"),
	subscribers: obs.Default.Gauge("nrscope_bus_subscribers",
		"live bus subscriptions"),
}

// sinkMetrics is one named sink's instrument set. Subscriptions sharing
// a name (e.g. every TCP connection under "tcp") share one set: the
// counters aggregate, the depth gauge reports the last sampled queue.
type sinkMetrics struct {
	depth       *obs.Gauge
	capacity    *obs.Gauge
	delivered   *obs.Counter
	dropped     *obs.Counter
	rejected    *obs.Counter
	retried     *obs.Counter
	failures    *obs.Counter
	quarantines *obs.Counter
	flush       *obs.Histogram
}

var (
	sinkMetricsMu    sync.Mutex
	sinkMetricsCache = map[string]*sinkMetrics{}
)

// metricsFor resolves (or creates) the instrument set for a sink name.
func metricsFor(name string) *sinkMetrics {
	key := sanitizeMetricName(name)
	sinkMetricsMu.Lock()
	defer sinkMetricsMu.Unlock()
	if m, ok := sinkMetricsCache[key]; ok {
		return m
	}
	p := "nrscope_bus_" + key + "_"
	m := &sinkMetrics{
		depth:       obs.Default.Gauge(p+"queue_depth", "records queued towards the "+name+" sink (last sampled)"),
		capacity:    obs.Default.Gauge(p+"queue_capacity", "ring queue capacity of the "+name+" sink"),
		delivered:   obs.Default.Counter(p+"delivered_total", "records delivered to the "+name+" sink"),
		dropped:     obs.Default.Counter(p+"dropped_total", "records dropped towards the "+name+" sink (queue eviction, quarantine, failed delivery)"),
		rejected:    obs.Default.Counter(p+"rejected_total", "records refused by the "+name+" sink's closing queue"),
		retried:     obs.Default.Counter(p+"retries_total", "delivery retries towards the "+name+" sink"),
		failures:    obs.Default.Counter(p+"delivery_failures_total", "batches whose delivery to the "+name+" sink failed after retries"),
		quarantines: obs.Default.Counter(p+"quarantines_total", "times the "+name+" sink entered failure quarantine"),
		flush:       obs.Default.Histogram(p+"flush_seconds", "successful batch delivery latency to the "+name+" sink", obs.LatencyBuckets),
	}
	sinkMetricsCache[key] = m
	return m
}

// sanitizeMetricName maps an arbitrary sink name into the Prometheus
// metric-name alphabet.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "sink"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
