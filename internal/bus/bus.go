// Package bus is the telemetry distribution layer between the scope
// engine and its consumers: an in-process pub/sub fanout that producers
// (core.Scope, fusion.Aggregator, replay) publish telemetry.Records
// into, and sinks (JSONL log, TCP stream, SSE feed, custom) consume
// from — the paper's §6 always-on service posture, where per-TTI
// capacity telemetry must reach application servers faster than half an
// RTT without a slow consumer stalling the decode hot path.
//
// Each subscriber owns a bounded ring queue and a backpressure policy:
// DropOldest for live feedback consumers (freshness over completeness)
// and Block for lossless log/eval consumers (completeness over
// publisher latency). A managed runner per subscriber forms batches
// under a max-batch/max-delay flush rule and delivers them to the Sink
// with retry (exponential backoff + jitter) and failure quarantine, so
// a flapping sink degrades to counted drops instead of stalling its
// siblings. Close drains: every record already queued to a Block
// subscriber is delivered before Close returns.
package bus

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"nrscope/internal/telemetry"
)

// Policy selects a subscriber's behaviour when its queue is full.
type Policy int

const (
	// DropOldest evicts the oldest queued record to admit the new one —
	// live consumers prefer fresh telemetry over complete telemetry.
	DropOldest Policy = iota
	// Block makes Publish wait for queue space — lossless consumers
	// (logs, eval) prefer complete telemetry over publisher latency.
	Block
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Block {
		return "block"
	}
	return "drop-oldest"
}

// ErrClosed is returned by Publish and Subscribe after Close.
var ErrClosed = errors.New("bus: closed")

// Sink consumes delivered record batches. WriteBatch is called from the
// subscription's runner goroutine only (no concurrent calls for one
// subscription); an error triggers the runner's retry/quarantine
// machinery. Close is called exactly once, after the final batch.
type Sink interface {
	WriteBatch(recs []telemetry.Record) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface (Close is a no-op).
type SinkFunc func(recs []telemetry.Record) error

// WriteBatch implements Sink.
func (f SinkFunc) WriteBatch(recs []telemetry.Record) error { return f(recs) }

// Close implements Sink.
func (f SinkFunc) Close() error { return nil }

// subConfig is a subscription's tuning, set via SubOption.
type subConfig struct {
	queueSize       int
	maxBatch        int
	maxDelay        time.Duration
	maxRetries      int
	backoffBase     time.Duration
	backoffCap      time.Duration
	quarantineAfter int
	cooldown        time.Duration
	failFast        bool
	onClose         func()
	onDrop          func(n int)
}

func defaultSubConfig() subConfig {
	return subConfig{
		queueSize:       1024,
		maxBatch:        64,
		maxDelay:        5 * time.Millisecond,
		maxRetries:      3,
		backoffBase:     5 * time.Millisecond,
		backoffCap:      250 * time.Millisecond,
		quarantineAfter: 3,
		cooldown:        2 * time.Second,
	}
}

// SubOption tunes one subscription.
type SubOption func(*subConfig)

// WithQueueSize bounds the subscriber's ring queue (default 1024).
func WithQueueSize(n int) SubOption {
	return func(c *subConfig) {
		if n > 0 {
			c.queueSize = n
		}
	}
}

// WithBatch sets the flush rule: a batch is delivered when it reaches
// maxBatch records or maxDelay after its first record, whichever comes
// first (default 64 records / 5 ms).
func WithBatch(maxBatch int, maxDelay time.Duration) SubOption {
	return func(c *subConfig) {
		if maxBatch > 0 {
			c.maxBatch = maxBatch
		}
		if maxDelay > 0 {
			c.maxDelay = maxDelay
		}
	}
}

// WithRetry sets the per-batch delivery retry budget and the
// exponential-backoff base and cap (default 3 retries, 5 ms..250 ms).
func WithRetry(maxRetries int, base, cap time.Duration) SubOption {
	return func(c *subConfig) {
		if maxRetries >= 0 {
			c.maxRetries = maxRetries
		}
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// WithQuarantine sets how many consecutive failed deliveries quarantine
// the sink and for how long; while quarantined, batches become counted
// drops instead of delivery attempts (default 3 failures, 2 s).
func WithQuarantine(after int, cooldown time.Duration) SubOption {
	return func(c *subConfig) {
		if after > 0 {
			c.quarantineAfter = after
		}
		if cooldown > 0 {
			c.cooldown = cooldown
		}
	}
}

// WithFailFast makes the first failed delivery terminal: the
// subscription drops its queue, detaches from the bus, and closes its
// sink — the right policy for per-connection sinks (a broken TCP peer
// cannot recover; retrying only delays its siblings' drain). Implies a
// zero retry budget.
func WithFailFast() SubOption {
	return func(c *subConfig) { c.failFast = true }
}

// WithOnClose registers a callback invoked once, after the
// subscription's runner exits (drain complete or fail-fast abort).
func WithOnClose(fn func()) SubOption {
	return func(c *subConfig) { c.onClose = fn }
}

// WithDropNotify registers a callback invoked with the number of
// records just dropped towards the sink — queue evictions (DropOldest),
// quarantine drops, failed deliveries after retries, and fail-fast
// aborts. It lets a sink keep its own drop accounting (the pump SDK's
// nrscope_pump_<name>_records_dropped_total) in lockstep with the
// runner's, so sent + dropped == published holds per sink. Called from
// publisher and runner goroutines without the queue lock held; fn must
// be cheap and safe for concurrent use.
func WithDropNotify(fn func(n int)) SubOption {
	return func(c *subConfig) { c.onDrop = fn }
}

// Bus fans published records out to its subscriptions.
type Bus struct {
	mu     sync.Mutex
	subs   []*Subscription // copy-on-write: Publish reads the header
	closed bool
}

// New creates an empty bus.
func New() *Bus { return &Bus{} }

// Subscribe registers a sink under a name (the name keys the sink's
// nrscope_bus_<name>_* metrics; subscriptions may share a name, sharing
// instruments). The subscription's runner starts immediately.
func (b *Bus) Subscribe(name string, policy Policy, sink Sink, opts ...SubOption) (*Subscription, error) {
	cfg := defaultSubConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.failFast {
		cfg.maxRetries = 0
	}
	s := &Subscription{
		name:   name,
		policy: policy,
		sink:   sink,
		cfg:    cfg,
		buf:    make([]telemetry.Record, cfg.queueSize),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		met:    metricsFor(name),
		bus:    b,
	}
	s.notFull = sync.NewCond(&s.mu)
	h := fnv.New64a()
	h.Write([]byte(name))
	s.rng = rand.New(rand.NewSource(int64(h.Sum64()) ^ time.Now().UnixNano()))

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	next := make([]*Subscription, len(b.subs)+1)
	copy(next, b.subs)
	next[len(b.subs)] = s
	b.subs = next
	b.mu.Unlock()

	s.met.capacity.Set(int64(cfg.queueSize))
	met.subscribers.Inc()
	go s.run()
	return s, nil
}

// Publish fans one record out to every subscription, honouring each
// subscription's backpressure policy. Safe for concurrent use. After
// Close it returns ErrClosed instead of panicking.
func (b *Bus) Publish(rec telemetry.Record) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		met.publishRejected.Inc()
		return ErrClosed
	}
	subs := b.subs // copy-on-write slice: safe to read unlocked
	b.mu.Unlock()
	met.published.Inc()
	for _, s := range subs {
		s.push(rec)
	}
	return nil
}

// Subscribers reports the number of live subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// remove detaches one subscription (no-op if already detached).
func (b *Bus) remove(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, cur := range b.subs {
		if cur == s {
			next := make([]*Subscription, 0, len(b.subs)-1)
			next = append(next, b.subs[:i]...)
			next = append(next, b.subs[i+1:]...)
			b.subs = next
			return
		}
	}
}

// Close stops the bus: Publish starts returning ErrClosed, every
// subscription drains its queue (Block subscribers lose zero records),
// sinks are closed, and Close returns once all runners have exited.
// Idempotent.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()

	for _, s := range subs {
		s.beginClose()
	}
	var errs []error
	for _, s := range subs {
		<-s.done
		if err := s.closeErr; err != nil {
			errs = append(errs, fmt.Errorf("bus: sink %s: %w", s.name, err))
		}
	}
	return errors.Join(errs...)
}

// Subscription is one consumer's end of the bus: a bounded ring queue
// plus the runner goroutine delivering batches to the Sink.
type Subscription struct {
	name   string
	policy Policy
	sink   Sink
	cfg    subConfig
	bus    *Bus
	met    *sinkMetrics

	mu      sync.Mutex
	notFull *sync.Cond // Block-policy publishers wait here
	buf     []telemetry.Record
	head, n int
	closed  bool

	wake chan struct{} // runner wake signal (buffered 1)
	done chan struct{} // closed when the runner exits

	// Runner-local state (no locking: only the runner touches these).
	rng             *rand.Rand
	consecutiveFail int
	quarantineUntil time.Time
	closeErr        error

	closeOnce sync.Once
}

// Name returns the subscription's metric name.
func (s *Subscription) Name() string { return s.name }

// Done is closed when the subscription's runner has exited (drain
// complete, fail-fast abort, or Close).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Close detaches the subscription from the bus, drains its queue per
// its policy, closes the sink, and waits for the runner to exit.
// Idempotent; safe to call concurrently with Bus.Close.
func (s *Subscription) Close() {
	s.bus.remove(s)
	s.beginClose()
	<-s.done
}

// beginClose marks the queue closed and wakes everything; the runner
// drains what is queued and exits.
func (s *Subscription) beginClose() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.notFull.Broadcast()
		s.mu.Unlock()
		s.signal()
		met.subscribers.Dec()
	})
}

func (s *Subscription) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// push enqueues one record per the backpressure policy. Returns false
// if the subscription is closing (the record is counted as rejected).
func (s *Subscription) push(rec telemetry.Record) bool {
	evicted := 0
	s.mu.Lock()
	for s.n == len(s.buf) {
		if s.closed {
			s.mu.Unlock()
			s.met.rejected.Inc()
			return false
		}
		if s.policy == DropOldest {
			s.buf[s.head] = telemetry.Record{}
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.met.dropped.Inc()
			evicted++
			break
		}
		s.notFull.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		s.met.rejected.Inc()
		s.notifyDrop(evicted)
		return false
	}
	s.buf[(s.head+s.n)%len(s.buf)] = rec
	s.n++
	s.met.depth.Set(int64(s.n))
	s.mu.Unlock()
	s.notifyDrop(evicted)
	s.signal()
	return true
}

// notifyDrop forwards a drop count to the WithDropNotify hook. Callers
// must not hold s.mu.
func (s *Subscription) notifyDrop(n int) {
	if n > 0 && s.cfg.onDrop != nil {
		s.cfg.onDrop(n)
	}
}

// takeLocked moves queued records into batch, up to maxBatch total.
func (s *Subscription) takeLocked(batch []telemetry.Record) []telemetry.Record {
	freed := false
	for s.n > 0 && len(batch) < s.cfg.maxBatch {
		batch = append(batch, s.buf[s.head])
		s.buf[s.head] = telemetry.Record{}
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		freed = true
	}
	if freed {
		s.met.depth.Set(int64(s.n))
		s.notFull.Broadcast()
	}
	return batch
}

// collect blocks until at least one record is queued, then gathers a
// batch: full at maxBatch, or flushed maxDelay after the first record.
// Returns an empty batch only when the subscription is closed and the
// queue fully drained.
func (s *Subscription) collect(batch []telemetry.Record) []telemetry.Record {
	s.mu.Lock()
	for s.n == 0 {
		if s.closed {
			s.mu.Unlock()
			return batch
		}
		s.mu.Unlock()
		<-s.wake
		s.mu.Lock()
	}
	batch = s.takeLocked(batch)
	full := len(batch) >= s.cfg.maxBatch
	closing := s.closed
	s.mu.Unlock()
	if full || closing {
		return batch
	}
	timer := time.NewTimer(s.cfg.maxDelay)
	defer timer.Stop()
	for {
		select {
		case <-s.wake:
			s.mu.Lock()
			batch = s.takeLocked(batch)
			full = len(batch) >= s.cfg.maxBatch
			closing = s.closed
			s.mu.Unlock()
			if full || closing {
				return batch
			}
		case <-timer.C:
			return batch
		}
	}
}

// run is the managed sink runner: batch, deliver, retry, quarantine.
func (s *Subscription) run() {
	defer func() {
		s.closeErr = s.sink.Close()
		s.met.depth.Set(0)
		if s.cfg.onClose != nil {
			s.cfg.onClose()
		}
		close(s.done)
	}()
	batch := make([]telemetry.Record, 0, s.cfg.maxBatch)
	for {
		batch = s.collect(batch[:0])
		if len(batch) == 0 {
			return // closed and drained
		}
		if !s.deliver(batch) {
			// Fail-fast abort: drop whatever is still queued, detach.
			s.abort()
			return
		}
	}
}

// deliver writes one batch with retry + backoff + jitter. Returns false
// only on a fail-fast terminal failure.
func (s *Subscription) deliver(batch []telemetry.Record) bool {
	if !s.quarantineUntil.IsZero() {
		if time.Now().Before(s.quarantineUntil) {
			// Quarantined: the flapping sink degrades to counted drops
			// instead of stalling its siblings' share of publisher time.
			s.met.dropped.Add(int64(len(batch)))
			s.notifyDrop(len(batch))
			return true
		}
		s.quarantineUntil = time.Time{} // cooldown over: probe again
	}
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		err = s.sink.WriteBatch(batch)
		if err == nil {
			break
		}
		if attempt >= s.cfg.maxRetries {
			break
		}
		s.met.retried.Inc()
		time.Sleep(s.backoff(attempt))
	}
	if err != nil {
		s.met.failures.Inc()
		s.met.dropped.Add(int64(len(batch)))
		s.notifyDrop(len(batch))
		if s.cfg.failFast {
			return false
		}
		s.consecutiveFail++
		if s.consecutiveFail >= s.cfg.quarantineAfter {
			s.consecutiveFail = 0
			s.quarantineUntil = time.Now().Add(s.cfg.cooldown)
			s.met.quarantines.Inc()
		}
		return true
	}
	s.consecutiveFail = 0
	s.met.delivered.Add(int64(len(batch)))
	s.met.flush.Observe(time.Since(start).Seconds())
	return true
}

// backoff returns base*2^attempt capped, with ±50% jitter so flapping
// sinks across subscriptions do not retry in lockstep.
func (s *Subscription) backoff(attempt int) time.Duration {
	d := s.cfg.backoffBase << uint(attempt)
	if d > s.cfg.backoffCap || d <= 0 {
		d = s.cfg.backoffCap
	}
	half := int64(d) / 2
	return time.Duration(half + s.rng.Int63n(half+1))
}

// abort is the fail-fast exit: mark closed, count the queue as dropped,
// release Block publishers, and detach from the bus.
func (s *Subscription) abort() {
	s.bus.remove(s)
	s.closeOnce.Do(func() {
		met.subscribers.Dec()
	})
	s.mu.Lock()
	s.closed = true
	aborted := s.n
	if s.n > 0 {
		s.met.dropped.Add(int64(s.n))
		s.n = 0
		s.head = 0
	}
	s.notFull.Broadcast()
	s.mu.Unlock()
	s.notifyDrop(aborted)
}

// Dropped reports the subscription's drop counter (DropOldest
// evictions, quarantine drops, and failed deliveries).
func (s *Subscription) Dropped() int64 { return s.met.dropped.Value() }

// Delivered reports how many records reached the sink successfully.
func (s *Subscription) Delivered() int64 { return s.met.delivered.Value() }

// SubStats is one sink's delivery accounting, as reported by
// Subscription.Stats — the per-sink end-of-run summary's data shape.
type SubStats struct {
	Name        string
	Delivered   int64 // records the sink accepted
	Dropped     int64 // evictions + quarantine drops + failed deliveries
	Rejected    int64 // pushes refused by a closing queue
	Retries     int64 // delivery retry attempts
	Failures    int64 // batches failed after exhausting retries
	Quarantines int64 // times the sink entered failure quarantine
}

// Stats snapshots the subscription's delivery counters. Subscriptions
// sharing a name share instruments, so the counters aggregate across
// same-named siblings (e.g. every TCP connection under "tcp").
func (s *Subscription) Stats() SubStats {
	return SubStats{
		Name:        s.name,
		Delivered:   s.met.delivered.Value(),
		Dropped:     s.met.dropped.Value(),
		Rejected:    s.met.rejected.Value(),
		Retries:     s.met.retried.Value(),
		Failures:    s.met.failures.Value(),
		Quarantines: s.met.quarantines.Value(),
	}
}
