package bus

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nrscope/internal/obs"
	"nrscope/internal/telemetry"
)

// TestSSEHandlerBatchedEvents: a published burst reaches the client as
// one data: frame per record (batches are framed record-wise).
func TestSSEHandlerBatchedEvents(t *testing.T) {
	b := New()
	defer b.Close()
	ts := httptest.NewServer(SSEHandler(b))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < n; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("frame %d = %q, want data: prefix", i, line)
		}
		recs, err := telemetry.ReadAll(strings.NewReader(strings.TrimPrefix(line, "data: ")))
		if err != nil || len(recs) != 1 {
			t.Fatalf("frame %d payload: %v %v", i, recs, err)
		}
		if recs[0].SlotIdx != i {
			t.Fatalf("frame %d carries slot %d: records reordered or dropped", i, recs[0].SlotIdx)
		}
		if blank, err := br.ReadString('\n'); err != nil || blank != "\n" {
			t.Fatalf("frame %d not blank-line terminated: %q %v", i, blank, err)
		}
	}
}

// gatedWriter is a Flusher whose Write blocks until released — a stand-
// in for a stalled SSE client with full socket buffers.
type gatedWriter struct {
	gate    chan struct{}
	blocked chan struct{}
	once    sync.Once
	header  http.Header
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{gate: make(chan struct{}), blocked: make(chan struct{}), header: make(http.Header)}
}

func (g *gatedWriter) Header() http.Header { return g.header }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Flush()              {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.blocked) })
	<-g.gate
	return len(p), nil
}

// TestSSEHandlerSlowReaderDrops: a stalled client's DropOldest queue
// evicts its own records, and the evictions land in the sse sink's
// drop counter — the accounting that distinguishes "slow tab" from
// "lossy bus".
func TestSSEHandlerSlowReaderDrops(t *testing.T) {
	b := New()
	defer b.Close()
	before := obs.Snapshot()

	gw := newGatedWriter()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/events", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		SSEHandler(b).ServeHTTP(gw, req)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Subscribers() != 1 {
		t.Fatal("subscription never registered")
	}
	// First record reaches the sink and blocks in Write.
	if err := b.Publish(rec(0)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gw.blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("sink never attempted a write")
	}
	// Overrun the stalled subscriber's queue (default capacity 1024):
	// DropOldest must evict synchronously, never stall Publish.
	const burst = 2500
	for i := 1; i <= burst; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	d := obs.Delta(before, obs.Snapshot())
	if drops := d["nrscope_bus_sse_dropped_total"]; drops < burst-1100 {
		t.Errorf("sse drops = %v, want >= %d after a %d-record overrun", drops, burst-1100, burst)
	}
	// Release the client and disconnect: the handler must come home.
	close(gw.gate)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler leaked after disconnect")
	}
	if b.Subscribers() != 0 {
		t.Error("subscription leaked after disconnect")
	}
}

// TestSSEHandlerClosedBus: connecting after Close ends the response
// immediately instead of hanging the client.
func TestSSEHandlerClosedBus(t *testing.T) {
	b := New()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(SSEHandler(b))
	defer ts.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err == nil {
		t.Errorf("closed bus produced frame %q, want immediate EOF", line)
	}
}
