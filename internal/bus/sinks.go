package bus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"nrscope/internal/telemetry"
)

// JSONLSink writes record batches as JSON lines — the bus-managed form
// of the paper's Fig. 4 log file. Backed by a file (NewJSONLFileSink)
// it rotates on size: when the current file exceeds maxBytes after a
// flush, it is renamed to <path>.1, <path>.2, ... and a fresh <path> is
// opened, so a long-lived service never grows one unbounded log.
type JSONLSink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	cw      *countingWriter
	enc     *json.Encoder
	file    *os.File // nil when wrapping a plain io.Writer
	path    string
	maxSize int64
	seq     int
	count   int64
	closed  bool
}

// countingWriter tracks bytes flushed to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewJSONLSink wraps an io.Writer in a JSONL batch sink (no rotation).
func NewJSONLSink(w io.Writer) *JSONLSink {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	return &JSONLSink{bw: bw, cw: cw, enc: json.NewEncoder(bw)}
}

// NewJSONLFileSink creates (truncating) path and rotates it whenever it
// exceeds maxBytes; maxBytes <= 0 disables rotation.
func NewJSONLFileSink(path string, maxBytes int64) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bus: jsonl sink: %w", err)
	}
	s := NewJSONLSink(f)
	s.file = f
	s.path = path
	s.maxSize = maxBytes
	return s, nil
}

// WriteBatch implements Sink: encode, flush, maybe rotate.
func (s *JSONLSink) WriteBatch(recs []telemetry.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("bus: jsonl sink closed")
	}
	for _, rec := range recs {
		if err := s.enc.Encode(rec); err != nil {
			return fmt.Errorf("bus: jsonl sink: %w", err)
		}
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("bus: jsonl sink: %w", err)
	}
	s.count += int64(len(recs))
	if s.file != nil && s.maxSize > 0 && s.cw.n >= s.maxSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked closes the current file, shelves it as <path>.<seq>, and
// starts a fresh <path>.
func (s *JSONLSink) rotateLocked() error {
	if err := s.file.Close(); err != nil {
		return fmt.Errorf("bus: jsonl rotate: %w", err)
	}
	s.seq++
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.seq)); err != nil {
		return fmt.Errorf("bus: jsonl rotate: %w", err)
	}
	f, err := os.Create(s.path)
	if err != nil {
		return fmt.Errorf("bus: jsonl rotate: %w", err)
	}
	s.file = f
	s.cw = &countingWriter{w: f}
	s.bw = bufio.NewWriter(s.cw)
	s.enc = json.NewEncoder(s.bw)
	return nil
}

// Count reports how many records were written across all generations.
func (s *JSONLSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Rotations reports how many times the log rotated.
func (s *JSONLSink) Rotations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close flushes and, for file-backed sinks, closes the file.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.bw.Flush()
	if s.file != nil {
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
