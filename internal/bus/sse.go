package bus

import (
	"encoding/json"
	"fmt"
	"net/http"

	"nrscope/internal/telemetry"
)

// SSEHandler streams the bus as server-sent events: each record is one
// `data: <json>` frame. Mounted on the observability mux (obs.Server,
// cmd/nrscope -metrics) it gives browsers and curl a zero-dependency
// live telemetry feed next to /metrics. Every client is its own
// DropOldest subscription — a stalled browser tab drops its own
// records, never its siblings'.
func SSEHandler(b *Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "bus: streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		sink := &sseSink{w: w, fl: fl}
		sub, err := b.Subscribe("sse", DropOldest, sink, WithFailFast())
		if err != nil { // bus already closed
			return
		}
		select {
		case <-r.Context().Done():
			sub.Close()
		case <-sub.Done():
		}
	})
}

// sseSink frames one client's batches as SSE events. WriteBatch runs on
// the subscription's runner goroutine; the handler goroutine only waits,
// so the ResponseWriter has a single writer.
type sseSink struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// WriteBatch implements Sink.
func (s *sseSink) WriteBatch(recs []telemetry.Record) error {
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(s.w, "data: %s\n\n", line); err != nil {
			return err
		}
	}
	s.fl.Flush()
	return nil
}

// Close implements Sink; the response ends when the handler returns.
func (s *sseSink) Close() error { return nil }
