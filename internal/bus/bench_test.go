package bus

import (
	"fmt"
	"testing"
	"time"

	"nrscope/internal/telemetry"
)

// BenchmarkBusFanout measures Publish throughput (records/sec into the
// bus, and record-deliveries/sec out of it) across subscriber counts —
// the distribution layer's analogue of the decode path's Fig.-12
// numbers: how many consumers one scope's feed can serve.
func BenchmarkBusFanout(b *testing.B) {
	for _, subs := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("%dsubs", subs), func(b *testing.B) {
			bb := New()
			for i := 0; i < subs; i++ {
				if _, err := bb.Subscribe(fmt.Sprintf("bench%d", i), DropOldest,
					SinkFunc(func(recs []telemetry.Record) error { return nil }),
					WithQueueSize(4096), WithBatch(256, time.Millisecond)); err != nil {
					b.Fatal(err)
				}
			}
			r := telemetry.Record{SlotIdx: 1, RNTI: 0x4601, Downlink: true, TBS: 8192, MCS: 20}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.SlotIdx = i
				if err := bb.Publish(r); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := bb.Close(); err != nil {
				b.Fatal(err)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "records/s")
				b.ReportMetric(float64(b.N)*float64(subs)/secs, "deliveries/s")
			}
		})
	}
}

// BenchmarkBusPublishBlock measures the lossless path: a Block
// subscriber with a fast sink, the configuration of the JSONL log.
func BenchmarkBusPublishBlock(b *testing.B) {
	bb := New()
	if _, err := bb.Subscribe("bench_block", Block,
		SinkFunc(func(recs []telemetry.Record) error { return nil }),
		WithQueueSize(4096), WithBatch(256, time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	r := telemetry.Record{SlotIdx: 1, RNTI: 0x4601, Downlink: true, TBS: 8192}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SlotIdx = i
		if err := bb.Publish(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := bb.Close(); err != nil {
		b.Fatal(err)
	}
}
