package bus

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nrscope/internal/telemetry"
)

func TestJSONLSinkWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.WriteBatch([]telemetry.Record{rec(0), rec(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].SlotIdx != 0 || back[1].SlotIdx != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	if err := s.WriteBatch([]telemetry.Record{rec(2)}); err == nil {
		t.Error("write after Close succeeded")
	}
}

// TestJSONLFileSinkRotation: crossing maxBytes shelves the current file
// as <path>.N and continues in a fresh <path>, losing nothing.
func TestJSONLFileSinkRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.jsonl")
	s, err := NewJSONLFileSink(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100 // ~230 bytes/record: several rotations
	for i := 0; i < n; i++ {
		if err := s.WriteBatch([]telemetry.Record{rec(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Rotations() < 2 {
		t.Fatalf("Rotations = %d, want >= 2", s.Rotations())
	}
	// Concatenate generations oldest-first plus the live file: every
	// record present, in order.
	var all []telemetry.Record
	for i := 1; i <= s.Rotations(); i++ {
		all = append(all, readJSONL(t, fmt.Sprintf("%s.%d", path, i))...)
	}
	all = append(all, readJSONL(t, path)...)
	if len(all) != n {
		t.Fatalf("records across generations = %d, want %d", len(all), n)
	}
	for i, r := range all {
		if r.SlotIdx != i {
			t.Fatalf("record %d has slot %d", i, r.SlotIdx)
		}
	}
}

func readJSONL(t *testing.T, path string) []telemetry.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestTCPServerWireCompatible: the bus TCP sink speaks the same JSONL
// protocol as the pre-bus telemetry.Server, so telemetry.Dial clients
// keep working unchanged.
func TestTCPServerWireCompatible(t *testing.T) {
	b := New()
	defer b.Close()
	srv, err := NewTCPServer(b, "127.0.0.1:0",
		WithConnOptions(WithBatch(4, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := telemetry.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Subscribers() != 1 {
		t.Fatal("subscriber never registered")
	}
	want := rec(42)
	if err := b.Publish(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SlotIdx != 42 || got.RNTI != want.RNTI || got.TBS != want.TBS {
		t.Errorf("streamed record mismatch: %+v", got)
	}
}

// TestTCPServerDropsDeadSubscriber: a closed peer is detached by the
// fail-fast policy without disturbing the bus.
func TestTCPServerDropsDeadSubscriber(t *testing.T) {
	b := New()
	defer b.Close()
	srv, err := NewTCPServer(b, "127.0.0.1:0",
		WithWriteTimeout(200*time.Millisecond),
		WithConnOptions(WithBatch(1, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := telemetry.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_ = c.Close()
	for i := 0; i < 2000 && srv.Subscribers() > 0; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Subscribers() != 0 {
		t.Error("dead subscriber never dropped")
	}
	// The bus keeps serving new subscribers afterwards.
	c2, err := telemetry.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for srv.Subscribers() == 0 && time.Now().Before(deadline.Add(2*time.Second)) {
		time.Sleep(time.Millisecond)
	}
	if err := b.Publish(rec(7)); err != nil {
		t.Fatal(err)
	}
	if got, err := c2.Next(); err != nil || got.SlotIdx != 7 {
		t.Fatalf("post-drop subscriber: rec=%+v err=%v", got, err)
	}
}

// TestSSEHandlerStreams: records published into the bus arrive as
// `data: <json>` frames on an SSE client.
func TestSSEHandlerStreams(t *testing.T) {
	b := New()
	defer b.Close()
	ts := httptest.NewServer(SSEHandler(b))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Subscribers() != 1 {
		t.Fatal("SSE subscription never registered")
	}
	if err := b.Publish(rec(99)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("frame %q lacks data: prefix", line)
	}
	var got telemetry.Record
	recs, err := telemetry.ReadAll(strings.NewReader(strings.TrimPrefix(line, "data: ")))
	if err != nil || len(recs) != 1 {
		t.Fatalf("frame payload unreadable: %v %v", recs, err)
	}
	got = recs[0]
	if got.SlotIdx != 99 {
		t.Errorf("SSE record slot = %d, want 99", got.SlotIdx)
	}
}

// TestSSEHandlerClientDisconnect: closing the client detaches its
// subscription instead of leaking it.
func TestSSEHandlerClientDisconnect(t *testing.T) {
	b := New()
	defer b.Close()
	ts := httptest.NewServer(SSEHandler(b))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 0))
	resp.Body.Close()
	for i := 0; i < 2000 && b.Subscribers() > 0; i++ {
		if err := b.Publish(rec(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if b.Subscribers() != 0 {
		t.Error("SSE subscription leaked after client disconnect")
	}
}

// TestJSONLRotateExactBoundary: a batch whose bytes land exactly on the
// rotation limit rotates once — no double rotation, no lost records —
// and the next batch starts the fresh file.
func TestJSONLRotateExactBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.jsonl")
	// Identical records encode to identical line lengths, so n of them
	// land exactly on n*line bytes.
	r := rec(7)
	var probe bytes.Buffer
	ps := NewJSONLSink(&probe)
	if err := ps.WriteBatch([]telemetry.Record{r}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	line := int64(probe.Len())
	const n = 8
	sink, err := NewJSONLFileSink(path, n*line)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]telemetry.Record, n)
	for i := range batch {
		batch[i] = r
	}
	if err := sink.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := sink.Rotations(); got != 1 {
		t.Fatalf("Rotations = %d after an exact-boundary batch, want 1", got)
	}
	// The next batch lands in the fresh file, and nothing was lost.
	if err := sink.WriteBatch([]telemetry.Record{rec(9)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Count(); got != n+1 {
		t.Fatalf("Count = %d, want %d", got, n+1)
	}
	readAll := func(p string) []telemetry.Record {
		t.Helper()
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		recs, err := telemetry.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	shelved := readAll(path + ".1")
	if len(shelved) != n {
		t.Fatalf("rotated generation holds %d records, want %d", len(shelved), n)
	}
	for i, got := range shelved {
		if got.SlotIdx != r.SlotIdx || got.TBS != r.TBS {
			t.Fatalf("rotated record %d = %+v, want %+v", i, got, r)
		}
	}
	fresh := readAll(path)
	if len(fresh) != 1 || fresh[0].SlotIdx != 9 {
		t.Fatalf("fresh generation = %+v, want the single post-rotation record", fresh)
	}
	if _, err := os.Stat(path + ".2"); !os.IsNotExist(err) {
		t.Fatalf("unexpected second rotation generation (err=%v)", err)
	}
}
