package bus

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"nrscope/internal/telemetry"
)

// TCPServer serves the bus over TCP as JSON lines — the bus-managed
// form of telemetry.Server (§6 feedback path), wire-compatible with
// telemetry.Dial. Each accepted connection becomes its own DropOldest
// subscription, so a slow subscriber fills (then recycles) its own ring
// queue instead of stalling Publish or its sibling connections; a
// connection whose write fails or times out is dropped fail-fast.
type TCPServer struct {
	bus          *Bus
	ln           net.Listener
	writeTimeout time.Duration
	subOpts      []SubOption

	mu     sync.Mutex
	conns  map[net.Conn]*Subscription
	closed bool
	wg     sync.WaitGroup
}

// TCPOption tunes the TCP server.
type TCPOption func(*TCPServer)

// WithWriteTimeout bounds each connection write (default 5 s); a
// subscriber that stops reading is disconnected after at most this
// long, it can never stall drain.
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(s *TCPServer) {
		if d > 0 {
			s.writeTimeout = d
		}
	}
}

// WithConnOptions forwards subscription options (queue size, batch
// rule) to every accepted connection's subscription.
func WithConnOptions(opts ...SubOption) TCPOption {
	return func(s *TCPServer) { s.subOpts = append(s.subOpts, opts...) }
}

// NewTCPServer listens on addr and streams the bus to every subscriber.
func NewTCPServer(b *Bus, addr string, opts ...TCPOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: tcp sink: %w", err)
	}
	s := &TCPServer{
		bus:          b,
		ln:           ln,
		writeTimeout: 5 * time.Second,
		conns:        make(map[net.Conn]*Subscription),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the listening address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		sink := &connSink{conn: conn, timeout: s.writeTimeout}
		opts := append([]SubOption{WithFailFast(), WithOnClose(func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		})}, s.subOpts...)
		// All connections share the "tcp" instrument set: drops and
		// deliveries aggregate across subscribers.
		sub, err := s.bus.Subscribe("tcp", DropOldest, sink, opts...)
		if err != nil { // bus already closed
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = sub
		s.mu.Unlock()
	}
}

// Subscribers reports the currently connected subscriber count.
func (s *TCPServer) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting, detaches and drains every connection
// subscription, and closes the sockets.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*Subscription, 0, len(s.conns))
	for _, sub := range s.conns {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sub := range subs {
		sub.Close()
	}
	s.wg.Wait()
	return err
}

// connSink writes one subscriber's batches onto its socket.
type connSink struct {
	conn    net.Conn
	timeout time.Duration
}

// WriteBatch implements Sink. Any error (including a write deadline
// hit) is terminal for the connection via the fail-fast policy.
func (c *connSink) WriteBatch(recs []telemetry.Record) error {
	buf := make([]byte, 0, 256*len(recs))
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	_, err := c.conn.Write(buf)
	return err
}

// Close implements Sink.
func (c *connSink) Close() error { return c.conn.Close() }
