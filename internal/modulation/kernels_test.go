package modulation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// chunkEdgeCounts exercises every chunk-boundary shape: below, at, and
// just above one chunk, plus a multi-chunk count with a ragged tail.
var chunkEdgeCounts = []int{1, ChunkWidth - 1, ChunkWidth, ChunkWidth + 1, 3*ChunkWidth + 5}

// TestChunkedMatchesReference is the golden-equivalence property test:
// over every scheme, chunk-boundary symbol count and a sweep of noise
// variances (including one below the MinN0 floor), the chunked kernels
// must reproduce the retained reference level-scan bit for bit.
func TestChunkedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n0s := []float64{1e-9, 1e-3, 0.01, 0.3, 1.0, 7.5}
	for _, s := range allSchemes {
		for _, n := range chunkEdgeCounts {
			for _, n0 := range n0s {
				syms := make([]complex128, n)
				for i := range syms {
					// Mix constellation-scale and wild amplitudes so the
					// saturation path is covered too.
					amp := 1.0
					if rng.Intn(8) == 0 {
						amp = 1e7
					}
					syms[i] = complex(rng.NormFloat64()*amp, rng.NormFloat64()*amp)
				}
				got := DemapInto(nil, s, syms, n0)
				want := demapReference(nil, s, syms, n0)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v n=%d n0=%g: LLR %d chunked %v != reference %v",
							s, n, n0, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestChunkedMatchesReferenceRandomSNRs drives the same equivalence with
// randomised SNRs and symbol counts, as a guard against shapes the fixed
// grid above misses.
func TestChunkedMatchesReferenceRandomSNRs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := allSchemes[rng.Intn(len(allSchemes))]
		n := 1 + rng.Intn(4*ChunkWidth)
		n0 := math.Pow(10, rng.Float64()*6-4) // 1e-4 .. 1e2
		syms := noisySymbols(rng, n)
		got := DemapInto(nil, s, syms, n0)
		want := demapReference(nil, s, syms, n0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d %v n=%d n0=%g: LLR %d chunked %v != reference %v",
					trial, s, n, n0, i, got[i], want[i])
			}
		}
	}
}

// TestHardDecisionRoundTripAllPoints is the exhaustive constellation
// sweep: every label of every scheme, mapped to its exact constellation
// point, must hard-decide back to itself through the chunked demap.
func TestHardDecisionRoundTripAllPoints(t *testing.T) {
	for _, s := range allSchemes {
		qm := s.BitsPerSymbol()
		n := 1 << uint(qm)
		all := make([]uint8, 0, n*qm)
		for v := 0; v < n; v++ {
			for j := 0; j < qm; j++ {
				all = append(all, uint8(v>>uint(qm-1-j))&1)
			}
		}
		syms := Map(s, all)
		got := HardDecision(DemapInto(nil, s, syms, 0.1))
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("%v: bit %d of exhaustive round trip flipped", s, i)
			}
		}
	}
}

// TestDemapN0FloorAndSaturation is the regression test for the n0 <= 0
// clamp: a zero (or negative, or NaN) noise variance must not produce
// unbounded LLRs, and every output must respect the MaxLLR saturation so
// downstream Viterbi branch-metric sums cannot overflow to ±Inf.
func TestDemapN0FloorAndSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, s := range allSchemes {
		for _, n0 := range []float64{0, -1, 1e-300, math.NaN()} {
			syms := noisySymbols(rng, 2*ChunkWidth+3)
			llr := DemapInto(nil, s, syms, n0)
			for i, v := range llr {
				if !isFinite(v) || math.Abs(v) > MaxLLR {
					t.Fatalf("%v n0=%v: LLR %d = %v escapes saturation", s, n0, i, v)
				}
			}
			// The floor must preserve decisions: an exact constellation
			// point still hard-decides to itself at n0 = 0.
			bits := make([]uint8, s.BitsPerSymbol())
			point := Map(s, bits)
			got := HardDecision(DemapInto(nil, s, point, n0))
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("%v n0=%v: clamped demap flipped bit %d", s, n0, i)
				}
			}
		}
	}
}

// TestDemapNonFiniteSymbols: Inf/NaN symbol components must demap to
// finite, saturated LLRs (NaN to 0), matching the reference policy.
func TestDemapNonFiniteSymbols(t *testing.T) {
	bad := []complex128{
		complex(math.Inf(1), 0.3),
		complex(math.Inf(-1), math.Inf(1)),
		complex(math.NaN(), -0.7),
		complex(0.2, math.NaN()),
		complex(math.NaN(), math.NaN()),
		complex(1e308, -1e308),
	}
	for _, s := range allSchemes {
		got := DemapInto(nil, s, bad, 0.5)
		want := demapReference(nil, s, bad, 0.5)
		for i, v := range got {
			if !isFinite(v) || math.Abs(v) > MaxLLR {
				t.Fatalf("%v: LLR %d = %v not finite/saturated", s, i, v)
			}
			if v != want[i] {
				t.Fatalf("%v: LLR %d chunked %v != reference %v", s, i, v, want[i])
			}
		}
	}
}

// TestDemapIntoChunkedZeroAlloc: the chunk driver must stay allocation
// free with a reused destination across every scheme and a ragged count.
func TestDemapIntoChunkedZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(44))
	for _, s := range allSchemes {
		syms := noisySymbols(rng, 3*ChunkWidth+5)
		dst := DemapInto(nil, s, syms, 0.4)
		if n := testing.AllocsPerRun(100, func() {
			dst = DemapInto(dst, s, syms, 0.4)
		}); n != 0 {
			t.Errorf("%v: chunked DemapInto %.1f allocs/op, want 0", s, n)
		}
	}
}

// BenchmarkDemap is the per-scheme kernel family CI's demap gate runs:
// the chunked kernels against the retained reference level-scan, both
// into reused destinations (0 allocs/op is part of the gate).
func BenchmarkDemap(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	const nSyms = 4096
	syms := noisySymbols(rng, nSyms)
	for _, s := range allSchemes {
		dst := make([]float64, nSyms*s.BitsPerSymbol())
		b.Run(fmt.Sprintf("scheme=%s/kernel=chunked", s), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(nSyms * 16))
			for i := 0; i < b.N; i++ {
				dst = DemapInto(dst, s, syms, 0.3)
			}
		})
		b.Run(fmt.Sprintf("scheme=%s/kernel=reference", s), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(nSyms * 16))
			for i := 0; i < b.N; i++ {
				dst = demapReference(dst, s, syms, 0.3)
			}
		})
	}
}
