// Package modulation provides the constellation mappers and soft
// demappers for the modulation orders used on 5G physical channels:
// QPSK (PDCCH, PBCH), and 16/64/256-QAM (PDSCH).
//
// Symbols are complex128 with unit average energy. The demapper produces
// max-log LLRs (positive = bit 0 likelier) for an AWGN channel with noise
// variance sigma^2 per complex dimension pair (i.e. N0).
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a modulation order.
type Scheme int

// Modulation schemes, with their 3GPP Qm values (bits per symbol).
const (
	QPSK   Scheme = 2
	QAM16  Scheme = 4
	QAM64  Scheme = 6
	QAM256 Scheme = 8
)

// BitsPerSymbol returns Qm.
func (s Scheme) BitsPerSymbol() int { return int(s) }

// String implements fmt.Stringer using the 3GPP spelling.
func (s Scheme) String() string {
	switch s {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// FromQm maps a Qm value (2, 4, 6, 8) to a Scheme.
func FromQm(qm int) (Scheme, error) {
	switch qm {
	case 2:
		return QPSK, nil
	case 4:
		return QAM16, nil
	case 6:
		return QAM64, nil
	case 8:
		return QAM256, nil
	default:
		return 0, fmt.Errorf("modulation: unsupported Qm %d", qm)
	}
}

// pamLevels returns the per-dimension Gray-mapped PAM amplitudes for
// sqrt(M)-PAM and the normalisation factor, following the TS 38.211 §5.1
// constructions where each axis is a Gray-coded PAM driven by half the
// bits of the symbol.
func (s Scheme) pamBits() int { return int(s) / 2 }

// norm returns the amplitude normalisation so E[|x|^2] = 1.
func (s Scheme) norm() float64 {
	switch s {
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	case QAM256:
		return 1 / math.Sqrt(170)
	default:
		panic("modulation: unknown scheme")
	}
}

// grayPAM maps n bits (MSB-first) to an unnormalised PAM level following
// the 38.211 convention: bit 0 selects the sign (0 -> positive), later
// bits refine amplitude so that Gray adjacency holds.
func grayPAM(bits []uint8) float64 {
	// 38.211 builds the level as a nested expression, e.g. 64QAM I-axis:
	// (1-2b0)[4-(1-2b2)[2-(1-2b4)]]. Generalise the nesting.
	n := len(bits)
	v := 1.0
	for i := n - 1; i >= 1; i-- {
		v = float64(int(1)<<uint(n-i)) - sgn(bits[i])*v
	}
	return sgn(bits[0]) * v
}

func sgn(b uint8) float64 {
	if b == 0 {
		return 1
	}
	return -1
}

// Map modulates a bit slice into symbols. len(bits) must be a multiple of
// BitsPerSymbol.
func Map(s Scheme, bitstream []uint8) []complex128 {
	qm := s.BitsPerSymbol()
	if len(bitstream)%qm != 0 {
		panic(fmt.Sprintf("modulation: %d bits not a multiple of Qm %d", len(bitstream), qm))
	}
	half := s.pamBits()
	norm := s.norm()
	out := make([]complex128, len(bitstream)/qm)
	iBits := make([]uint8, half)
	qBits := make([]uint8, half)
	for k := range out {
		chunk := bitstream[k*qm : (k+1)*qm]
		// 38.211 interleaves: even-indexed bits drive I, odd-indexed Q.
		for j := 0; j < half; j++ {
			iBits[j] = chunk[2*j]
			qBits[j] = chunk[2*j+1]
		}
		out[k] = complex(grayPAM(iBits)*norm, grayPAM(qBits)*norm)
	}
	return out
}

// Demap produces max-log LLRs for each bit of each symbol under AWGN with
// noise variance n0 (total, both dimensions). Positive LLR favours bit 0.
func Demap(s Scheme, symbols []complex128, n0 float64) []float64 {
	return DemapInto(nil, s, symbols, n0)
}

// DemapInto is Demap writing into dst (reused when its capacity covers
// len(symbols)·Qm, so per-candidate demapping on the blind-decode hot
// path is allocation free). It returns the LLR slice.
//
// Symbols are processed in fixed-width chunks through flat I/Q lanes by
// the per-constellation kernels in kernels.go, whose LLRs are
// bit-identical to the retained reference level-scan. n0 is clamped to
// MinN0 (NaN included) and every LLR is saturated into [-MaxLLR, MaxLLR]
// with non-finite values mapped to 0, so downstream branch-metric sums
// stay finite for any input.
func DemapInto(dst []float64, s Scheme, symbols []complex128, n0 float64) []float64 {
	if !(n0 >= MinN0) { // the negated form also catches NaN
		n0 = MinN0
	}
	qm := s.BitsPerSymbol()
	if cap(dst) < len(symbols)*qm {
		dst = make([]float64, len(symbols)*qm)
	}
	dst = dst[:len(symbols)*qm]
	if s == QPSK {
		// One level per sign: the max-log LLR collapses to 4·a·y/n0, one
		// multiply per bit, so a lane deinterleave would only add copies.
		// This scalar closed form is the prototype the QAM lane kernels
		// generalise; it is bit-identical to the reference by definition.
		scale := 4 * qpskAmp / n0
		for k, sym := range symbols {
			dst[2*k] = saturate(scale * real(sym))
			dst[2*k+1] = saturate(scale * imag(sym))
		}
		return dst
	}
	kern := demapKernels[s.pamBits()]
	lanes := lanePool.Get().(*chunkLanes)
	for base := 0; base < len(symbols); base += ChunkWidth {
		n := len(symbols) - base
		if n > ChunkWidth {
			n = ChunkWidth
		}
		for i, sym := range symbols[base : base+n] {
			lanes.re[i] = real(sym)
			lanes.im[i] = imag(sym)
		}
		kern(dst[base*qm:(base+n)*qm], lanes.re[:n], lanes.im[:n], n0)
	}
	lanePool.Put(lanes)
	return dst
}

// demapAxis writes the LLRs of one axis into out at positions
// offset, offset+2, offset+4, ... (matching the I/Q bit interleave).
func demapAxis(y float64, levels []float64, labels [][]uint8, half int, n0 float64, out []float64, offset int) {
	for b := 0; b < half; b++ {
		best0 := math.Inf(1)
		best1 := math.Inf(1)
		for li, lv := range levels {
			d := y - lv
			m := d * d
			if labels[li][b] == 0 {
				if m < best0 {
					best0 = m
				}
			} else if m < best1 {
				best1 = m
			}
		}
		out[offset+2*b] = (best1 - best0) / n0
	}
}

// qpskAmp is the per-axis QPSK amplitude (1/√2 under unit energy).
var qpskAmp = QPSK.norm()

// pamTables caches the per-axis level/label enumeration of every scheme:
// Demap used to rebuild it per call, which dominated its allocation
// profile. Index is pamBits (1, 2, 3, 4).
var pamTables [5]struct {
	levels []float64
	labels [][]uint8
}

func init() {
	for _, s := range []Scheme{QPSK, QAM16, QAM64, QAM256} {
		half := s.pamBits()
		n := 1 << uint(half)
		norm := s.norm()
		levels := make([]float64, n)
		labels := make([][]uint8, n)
		for v := 0; v < n; v++ {
			bits := make([]uint8, half)
			for j := 0; j < half; j++ {
				bits[j] = uint8(v>>uint(half-1-j)) & 1
			}
			levels[v] = grayPAM(bits) * norm
			labels[v] = bits
		}
		pamTables[half].levels = levels
		pamTables[half].labels = labels
	}
	initKernels() // the kernels' level ladders come from the tables above
}

// pamTable returns the cached normalised PAM levels of one axis together
// with their bit labels.
func pamTable(s Scheme) (levels []float64, labels [][]uint8) {
	t := pamTables[s.pamBits()]
	return t.levels, t.labels
}

// HardDecision slices LLRs to bits: negative LLR -> 1.
func HardDecision(llr []float64) []uint8 {
	out := make([]uint8, len(llr))
	for i, v := range llr {
		if v < 0 {
			out[i] = 1
		}
	}
	return out
}
