package modulation

import (
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

func noisySymbols(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// TestQPSKFastPathMatchesMaxLog: the closed-form QPSK demap must equal
// the generic two-level max-log computation it replaced.
func TestQPSKFastPathMatchesMaxLog(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	syms := noisySymbols(rng, 200)
	n0 := 0.3
	got := Demap(QPSK, syms, n0)
	levels, labels := pamTable(QPSK)
	want := make([]float64, len(got))
	for k, sym := range syms {
		demapAxis(real(sym), levels, labels, 1, n0, want[2*k:], 0)
		demapAxis(imag(sym), levels, labels, 1, n0, want[2*k:], 1)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("LLR %d: fast %.12f vs max-log %.12f", i, got[i], want[i])
		}
	}
}

// TestDemapIntoReusesBuffer: with sufficient capacity the destination
// backing array is reused and no allocation happens.
func TestDemapIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, s := range allSchemes {
		syms := noisySymbols(rng, 64)
		first := DemapInto(nil, s, syms, 0.5)
		second := DemapInto(first, s, syms, 0.5)
		if &first[0] != &second[0] {
			t.Errorf("%v: DemapInto reallocated despite sufficient capacity", s)
		}
		if raceflag.Enabled {
			continue // allocation counts differ under the race detector
		}
		if n := testing.AllocsPerRun(100, func() {
			first = DemapInto(first, s, syms, 0.5)
		}); n != 0 {
			t.Errorf("%v: DemapInto %.1f allocs/op, want 0", s, n)
		}
	}
}

// TestDemapIntoMatchesDemap across all schemes (Demap is the nil-dst
// special case; pin them together anyway so a fast path added to one
// cannot drift from the other).
func TestDemapIntoMatchesDemap(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, s := range allSchemes {
		syms := noisySymbols(rng, 48)
		want := Demap(s, syms, 0.7)
		buf := make([]float64, 0, len(syms)*s.BitsPerSymbol())
		got := DemapInto(buf, s, syms, 0.7)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: LLR %d differs", s, i)
			}
		}
	}
}
