package modulation

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

var allSchemes = []Scheme{QPSK, QAM16, QAM64, QAM256}

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(2))
	}
	return out
}

func TestFromQm(t *testing.T) {
	for _, s := range allSchemes {
		got, err := FromQm(s.BitsPerSymbol())
		if err != nil || got != s {
			t.Errorf("FromQm(%d) = %v, %v", s.BitsPerSymbol(), got, err)
		}
	}
	if _, err := FromQm(3); err == nil {
		t.Error("FromQm(3) did not error")
	}
}

func TestUnitAverageEnergy(t *testing.T) {
	for _, s := range allSchemes {
		qm := s.BitsPerSymbol()
		n := 1 << uint(qm)
		var sum float64
		for v := 0; v < n; v++ {
			bits := make([]uint8, qm)
			for j := 0; j < qm; j++ {
				bits[j] = uint8(v>>uint(qm-1-j)) & 1
			}
			sym := Map(s, bits)[0]
			sum += real(sym)*real(sym) + imag(sym)*imag(sym)
		}
		avg := sum / float64(n)
		if math.Abs(avg-1) > 1e-9 {
			t.Errorf("%v: average symbol energy %.6f, want 1", s, avg)
		}
	}
}

func TestConstellationPointsDistinct(t *testing.T) {
	for _, s := range allSchemes {
		qm := s.BitsPerSymbol()
		n := 1 << uint(qm)
		seen := make(map[complex128]int)
		for v := 0; v < n; v++ {
			bits := make([]uint8, qm)
			for j := 0; j < qm; j++ {
				bits[j] = uint8(v>>uint(qm-1-j)) & 1
			}
			sym := Map(s, bits)[0]
			if prev, dup := seen[sym]; dup {
				t.Errorf("%v: labels %d and %d map to the same point", s, prev, v)
			}
			seen[sym] = v
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Nearest neighbours along one axis must differ in exactly one bit —
	// the defining property of the Gray mapping.
	for _, s := range allSchemes {
		levels, labels := pamTable(s)
		type lv struct {
			level float64
			label []uint8
		}
		pts := make([]lv, len(levels))
		for i := range levels {
			pts[i] = lv{levels[i], labels[i]}
		}
		for i := range pts {
			for j := range pts {
				if pts[j].level <= pts[i].level {
					continue
				}
				// find the immediate right neighbour
				isNeighbour := true
				for k := range pts {
					if pts[k].level > pts[i].level && pts[k].level < pts[j].level {
						isNeighbour = false
						break
					}
				}
				if !isNeighbour {
					continue
				}
				diff := 0
				for b := range pts[i].label {
					if pts[i].label[b] != pts[j].label[b] {
						diff++
					}
				}
				if diff != 1 {
					t.Errorf("%v: adjacent levels %.3f and %.3f differ in %d bits", s, pts[i].level, pts[j].level, diff)
				}
			}
		}
	}
}

func TestMapDemapRoundTripNoiseless(t *testing.T) {
	f := func(seed int64, schemeIdx uint8, nRaw uint8) bool {
		s := allSchemes[int(schemeIdx)%len(allSchemes)]
		rng := rand.New(rand.NewSource(seed))
		n := (1 + int(nRaw)%40) * s.BitsPerSymbol()
		bitstream := randomBits(rng, n)
		symbols := Map(s, bitstream)
		llr := Demap(s, symbols, 0.01)
		got := HardDecision(llr)
		for i := range bitstream {
			if got[i] != bitstream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDemapUnderNoise(t *testing.T) {
	// Hard decisions from a moderately noisy QPSK channel should have a
	// low but non-zero bit error rate, in the ballpark of Q(sqrt(2Es/N0)).
	rng := rand.New(rand.NewSource(3))
	bitstream := randomBits(rng, 20000)
	symbols := Map(QPSK, bitstream)
	n0 := 0.5 // Es/N0 = 3 dB
	noisy := make([]complex128, len(symbols))
	sigma := math.Sqrt(n0 / 2)
	for i, sym := range symbols {
		noisy[i] = sym + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	got := HardDecision(Demap(QPSK, noisy, n0))
	errs := 0
	for i := range bitstream {
		if got[i] != bitstream[i] {
			errs++
		}
	}
	ber := float64(errs) / float64(len(bitstream))
	// Es/N0 = 3 dB -> Eb/N0 = 0 dB -> BER = Q(sqrt(2)) ~ 0.0786.
	if ber < 0.05 || ber > 0.11 {
		t.Errorf("QPSK BER at 3 dB = %.4f, expected around 0.079", ber)
	}
}

func TestDemapLLRMagnitudeOrdering(t *testing.T) {
	// A symbol far from the decision boundary must give larger-magnitude
	// LLRs than one close to it.
	sym := Map(QPSK, []uint8{0, 0})[0]
	far := Demap(QPSK, []complex128{sym * 2}, 1)
	near := Demap(QPSK, []complex128{sym * complex(0.1, 0)}, 1)
	if math.Abs(far[0]) <= math.Abs(near[0]) {
		t.Errorf("far LLR %.2f not larger than near LLR %.2f", far[0], near[0])
	}
}

func TestMapPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Map with misaligned bit count did not panic")
		}
	}()
	Map(QAM64, make([]uint8, 7))
}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{QPSK: "QPSK", QAM16: "16QAM", QAM64: "64QAM", QAM256: "256QAM"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestQPSKPhases(t *testing.T) {
	// QPSK per 38.211: all four points on the diagonals at 45/135/225/315.
	for _, bits := range [][]uint8{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		sym := Map(QPSK, bits)[0]
		if math.Abs(cmplx.Abs(sym)-1) > 1e-9 {
			t.Errorf("QPSK %v: |sym| = %f, want 1", bits, cmplx.Abs(sym))
		}
		if math.Abs(math.Abs(real(sym))-math.Abs(imag(sym))) > 1e-9 {
			t.Errorf("QPSK %v not on a diagonal: %v", bits, sym)
		}
	}
}

func BenchmarkDemapQPSK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	symbols := Map(QPSK, randomBits(rng, 864))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Demap(QPSK, symbols, 0.5)
	}
}

func BenchmarkDemap256QAM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	symbols := Map(QAM256, randomBits(rng, 8*1000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Demap(QAM256, symbols, 0.1)
	}
}
