// Chunked, branch-free soft-demap kernels.
//
// DemapInto splits the symbol stream into fixed-width chunks, deinterleaves
// each chunk into flat I/Q float64 lanes, and hands the lanes to a
// per-constellation kernel. The kernels replace the generic level-scan
// (demapAxis) with closed-form per-axis max-log expressions: for each bit
// of a Gray-coded PAM axis, the nearest label-0 and label-1 levels are
// selected through a min-tree over the per-level squared distances — the
// nested |y|-folding structure of the 38.211 Gray mapping collapses each
// class to a handful of candidates — so the inner loops are straight-line
// FMA-shaped code with no per-symbol branching and no [][]uint8 label
// lookups. Because the kernels compute the very same squared distances the
// level-scan computes (same level values from the same table, same
// subtraction/multiplication/division order), their LLRs are bit-identical
// to the reference scan; the equivalence is enforced by the property tests
// in kernels_test.go.
//
// The kernel table is the backend seam: a future assembly/intrinsics
// implementation replaces entries at init time (behind a build tag) as
// long as it stays bit-identical to the reference.
package modulation

import (
	"math"
	"sync"
)

// ChunkWidth is the number of symbols a demap kernel processes per chunk.
// Callers that size reusable symbol/LLR scratch can round capacities up to
// a multiple of ChunkWidth so buffer reuse stays stable across differently
// sized candidates (see internal/pdcch).
const ChunkWidth = 64

// MinN0 is the noise-variance floor DemapInto clamps to. The previous
// 1e-12 floor made the QPSK LLR scale ~4e12, which overflowed downstream
// branch-metric sums; 1e-6 together with the MaxLLR saturation keeps every
// LLR, and any bounded sum of LLRs, comfortably finite.
const MinN0 = 1e-6

// MaxLLR is the saturation magnitude of every demapped LLR. Non-finite
// intermediate values (from non-finite symbols) are mapped to 0 — an
// unreadable symbol carries no information either way.
const MaxLLR = 1e6

// saturate clamps an LLR into [-MaxLLR, MaxLLR], mapping NaN to 0.
func saturate(v float64) float64 {
	if v != v { // NaN: no information
		return 0
	}
	return min(MaxLLR, max(-MaxLLR, v))
}

// demapKernel processes one chunk: re and im are the flat I/Q lanes of
// len(re) symbols, dst has len(re)*Qm entries, and LLRs are written
// I-axis bits at even in-symbol offsets, Q-axis at odd (the 38.211
// interleave). n0 is the pre-clamped noise variance.
type demapKernel func(dst []float64, re, im []float64, n0 float64)

// demapKernels maps pamBits (1..4) to the active chunk kernel. This
// indirection is the pluggable backend seam described above.
var demapKernels = [5]demapKernel{
	1: demapChunkQPSK,
	2: demapChunk16,
	3: demapChunk64,
	4: demapChunk256,
}

// chunkLanes is the flat I/Q lane pair one chunk is deinterleaved into.
// Pooled because the lanes cross the demapKernel indirection (escape
// analysis cannot keep them on the stack through a function value), and
// DemapInto must stay allocation free on the blind-decode hot path.
type chunkLanes struct{ re, im [ChunkWidth]float64 }

var lanePool = sync.Pool{New: func() any { return new(chunkLanes) }}

// Positive per-axis PAM amplitudes in ascending order, taken verbatim
// from pamTables (initKernels) so the kernels use bit-identical level
// values to the reference scan: lv16 = {d, 3d}, lv64 = {d..7d},
// lv256 = {d..15d} with d the per-scheme normalisation.
var (
	lv16  [2]float64
	lv64  [4]float64
	lv256 [8]float64
)

// initKernels extracts the positive level ladders from the freshly built
// pamTables. Called from the package init in modulation.go, after the
// tables exist (file-order init would run this file's init first).
func initKernels() {
	fill := func(s Scheme, out []float64) {
		levels, _ := pamTable(s)
		n := 0
		for _, lv := range levels {
			if lv > 0 {
				out[n] = lv
				n++
			}
		}
		if n != len(out) {
			panic("modulation: PAM table has unexpected level count")
		}
		// ascending: insertion sort over <= 8 entries
		for i := 1; i < n; i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	fill(QAM16, lv16[:])
	fill(QAM64, lv64[:])
	fill(QAM256, lv256[:])
}

// demapChunkQPSK is the PR-5 closed-form QPSK fast path in lane form: one
// level per sign, so the max-log LLR collapses to 4·a·y/n0.
func demapChunkQPSK(dst []float64, re, im []float64, n0 float64) {
	scale := 4 * qpskAmp / n0
	for i, y := range re {
		dst[2*i] = saturate(scale * y)
		dst[2*i+1] = saturate(scale * im[i])
	}
}

// demapAxis16 writes the two LLRs of one 16QAM axis at o[off], o[off+2].
//
// Gray magnitudes by b1: 0 -> d, 1 -> 3d. Classes: b0 splits by sign,
// b1 by magnitude {d} vs {3d}; each class minimum is a one-deep min-tree
// over exact squared distances.
func demapAxis16(o []float64, off int, y, n0 float64) {
	l1, l3 := lv16[0], lv16[1]
	d1 := y - l1
	d3 := y - l3
	e1 := y + l1
	e3 := y + l3
	m1 := d1 * d1
	m3 := d3 * d3
	w1 := e1 * e1
	w3 := e3 * e3
	o[off] = saturate((min(w1, w3) - min(m1, m3)) / n0)
	o[off+2] = saturate((min(m3, w3) - min(m1, w1)) / n0)
}

func demapChunk16(dst []float64, re, im []float64, n0 float64) {
	for i, y := range re {
		o := dst[4*i : 4*i+4 : 4*i+4]
		demapAxis16(o, 0, y, n0)
		demapAxis16(o, 1, im[i], n0)
	}
}

// demapAxis64 writes the three LLRs of one 64QAM axis at o[off], o[off+2],
// o[off+4].
//
// Gray magnitudes by (b1,b2): 00 -> 3d, 01 -> d, 10 -> 5d, 11 -> 7d.
// Per-bit classes over magnitudes: b1: {d,3d} vs {5d,7d};
// b2: {3d,5d} vs {d,7d}; b0 splits by sign. s_k = min over the ±k·d pair.
func demapAxis64(o []float64, off int, y, n0 float64) {
	l1, l3, l5, l7 := lv64[0], lv64[1], lv64[2], lv64[3]
	d1 := y - l1
	d3 := y - l3
	d5 := y - l5
	d7 := y - l7
	e1 := y + l1
	e3 := y + l3
	e5 := y + l5
	e7 := y + l7
	m1 := d1 * d1
	m3 := d3 * d3
	m5 := d5 * d5
	m7 := d7 * d7
	w1 := e1 * e1
	w3 := e3 * e3
	w5 := e5 * e5
	w7 := e7 * e7
	s1 := min(m1, w1)
	s3 := min(m3, w3)
	s5 := min(m5, w5)
	s7 := min(m7, w7)
	pos := min(min(m1, m3), min(m5, m7))
	neg := min(min(w1, w3), min(w5, w7))
	o[off] = saturate((neg - pos) / n0)
	o[off+2] = saturate((min(s5, s7) - min(s1, s3)) / n0)
	o[off+4] = saturate((min(s1, s7) - min(s3, s5)) / n0)
}

func demapChunk64(dst []float64, re, im []float64, n0 float64) {
	for i, y := range re {
		o := dst[6*i : 6*i+6 : 6*i+6]
		demapAxis64(o, 0, y, n0)
		demapAxis64(o, 1, im[i], n0)
	}
}

// demapAxis256 writes the four LLRs of one 256QAM axis at o[off],
// o[off+2], o[off+4], o[off+6].
//
// Gray magnitudes by (b1,b2,b3): b1=0 -> {5,7,3,1}d, b1=1 -> {11,9,13,15}d
// (in b2b3 order 00,01,10,11). Per-bit magnitude classes:
// b1: {1,3,5,7} vs {9,11,13,15}; b2: {5,7,9,11} vs {1,3,13,15};
// b3: {3,5,11,13} vs {1,7,9,15}; b0 splits by sign.
func demapAxis256(o []float64, off int, y, n0 float64) {
	l01, l03, l05, l07 := lv256[0], lv256[1], lv256[2], lv256[3]
	l09, l11, l13, l15 := lv256[4], lv256[5], lv256[6], lv256[7]
	d01 := y - l01
	d03 := y - l03
	d05 := y - l05
	d07 := y - l07
	d09 := y - l09
	d11 := y - l11
	d13 := y - l13
	d15 := y - l15
	e01 := y + l01
	e03 := y + l03
	e05 := y + l05
	e07 := y + l07
	e09 := y + l09
	e11 := y + l11
	e13 := y + l13
	e15 := y + l15
	m01 := d01 * d01
	m03 := d03 * d03
	m05 := d05 * d05
	m07 := d07 * d07
	m09 := d09 * d09
	m11 := d11 * d11
	m13 := d13 * d13
	m15 := d15 * d15
	w01 := e01 * e01
	w03 := e03 * e03
	w05 := e05 * e05
	w07 := e07 * e07
	w09 := e09 * e09
	w11 := e11 * e11
	w13 := e13 * e13
	w15 := e15 * e15
	s01 := min(m01, w01)
	s03 := min(m03, w03)
	s05 := min(m05, w05)
	s07 := min(m07, w07)
	s09 := min(m09, w09)
	s11 := min(m11, w11)
	s13 := min(m13, w13)
	s15 := min(m15, w15)
	pos := min(min(min(m01, m03), min(m05, m07)), min(min(m09, m11), min(m13, m15)))
	neg := min(min(min(w01, w03), min(w05, w07)), min(min(w09, w11), min(w13, w15)))
	o[off] = saturate((neg - pos) / n0)
	o[off+2] = saturate((min(min(s09, s11), min(s13, s15)) - min(min(s01, s03), min(s05, s07))) / n0)
	o[off+4] = saturate((min(min(s01, s03), min(s13, s15)) - min(min(s05, s07), min(s09, s11))) / n0)
	o[off+6] = saturate((min(min(s01, s07), min(s09, s15)) - min(min(s03, s05), min(s11, s13))) / n0)
}

func demapChunk256(dst []float64, re, im []float64, n0 float64) {
	for i, y := range re {
		o := dst[8*i : 8*i+8 : 8*i+8]
		demapAxis256(o, 0, y, n0)
		demapAxis256(o, 1, im[i], n0)
	}
}

// demapReference is the pre-kernel implementation of DemapInto, retained
// verbatim as the golden reference for the chunked kernels: the QPSK
// closed form plus the demapAxis level-scan for the QAM schemes, under the
// same n0 floor and LLR saturation policy. The chunked kernels must match
// it bit for bit on every input (kernels_test.go); it also serves as the
// baseline arm of the BenchmarkDemap family that CI's demap gate checks
// the kernels against.
func demapReference(dst []float64, s Scheme, symbols []complex128, n0 float64) []float64 {
	if !(n0 >= MinN0) { // the negated form also catches NaN
		n0 = MinN0
	}
	qm := s.BitsPerSymbol()
	if cap(dst) < len(symbols)*qm {
		dst = make([]float64, len(symbols)*qm)
	}
	dst = dst[:len(symbols)*qm]
	if s == QPSK {
		scale := 4 * qpskAmp / n0
		for k, sym := range symbols {
			dst[2*k] = saturate(scale * real(sym))
			dst[2*k+1] = saturate(scale * imag(sym))
		}
		return dst
	}
	half := s.pamBits()
	levels, labels := pamTable(s)
	for k, sym := range symbols {
		demapAxis(real(sym), levels, labels, half, n0, dst[k*qm:], 0)
		demapAxis(imag(sym), levels, labels, half, n0, dst[k*qm:], 1)
	}
	for i, v := range dst {
		dst[i] = saturate(v)
	}
	return dst
}

// isFinite reports whether v is a finite float64 (used by tests and the
// saturation contract).
func isFinite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }
