package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_events_total", "events"); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.5555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	bounds, counts := h.Buckets()
	wantCounts := []int64{1, 2, 3} // cumulative
	for i := range bounds {
		if counts[i] != wantCounts[i] {
			t.Errorf("bucket le=%g count = %d, want %d", bounds[i], counts[i], wantCounts[i])
		}
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	g := r.Gauge("test_gauge", "")
	h := r.Histogram("test_hist", "", []float64{1})
	r.GaugeFunc("test_fn", "", func() float64 { return 42 })

	before := r.Snapshot()
	c.Add(3)
	g.Set(-2)
	h.Observe(0.5)
	h.Observe(2)
	after := r.Snapshot()
	d := Delta(before, after)

	if d["test_total"] != 3 {
		t.Errorf("counter delta = %g, want 3", d["test_total"])
	}
	if d["test_gauge"] != -2 {
		t.Errorf("gauge delta = %g, want -2", d["test_gauge"])
	}
	if d["test_hist_count"] != 2 {
		t.Errorf("hist count delta = %g, want 2", d["test_hist_count"])
	}
	if d["test_hist_sum"] != 2.5 {
		t.Errorf("hist sum delta = %g, want 2.5", d["test_hist_sum"])
	}
	if after["test_fn"] != 42 {
		t.Errorf("gauge func = %g, want 42", after["test_fn"])
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_events_total", "total events").Add(9)
	r.Gauge("test_depth", "queue depth").Set(3)
	h := r.Histogram("test_latency_seconds", "slot latency", []float64{0.001, 0.01})
	h.Observe(0.002)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_events_total total events",
		"# TYPE test_events_total counter",
		"test_events_total 9",
		"# TYPE test_depth gauge",
		"test_depth 3",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.001"} 0`,
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="+Inf"} 1`,
		"test_latency_seconds_sum 0.002",
		"test_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_http_total", "via http").Add(5)
	srv, err := ServeRegistry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "test_http_total 5") {
		t.Errorf("/metrics = %d, body:\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "{") {
		t.Errorf("/debug/vars = %d, body:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("test_name", "")
	r.Gauge("test_name", "")
}
