package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the opt-in observability listener: Prometheus metrics on
// /metrics, the expvar JSON dump on /debug/vars, and the full pprof
// suite under /debug/pprof/. It deliberately uses its own mux so
// nothing leaks onto http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
	wg  sync.WaitGroup
}

// Serve starts the observability listener on addr (e.g. ":9090" or
// "127.0.0.1:0") exposing the Default registry.
func Serve(addr string) (*Server, error) {
	return ServeRegistry(addr, Default)
}

// ServeRegistry starts the observability listener for a specific
// registry.
func ServeRegistry(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, mux: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// Handle mounts an additional handler on the observability mux (e.g.
// the telemetry bus's /events SSE feed next to /metrics). ServeMux
// registration is safe while the server is running.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Addr returns the listening address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry's Snapshot as the expvar
// variable "nrscope_metrics" (idempotent), so /debug/vars carries the
// same numbers as /metrics in JSON form.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("nrscope_metrics", expvar.Func(func() any {
			return Snapshot()
		}))
	})
}
