// Package obs is the pipeline observability layer: a dependency-free
// metrics subsystem (atomic counters, gauges, fixed-bucket histograms,
// and a named registry) with Prometheus-text-format exposition and an
// opt-in HTTP listener that also wires expvar and pprof.
//
// The hot decode path (core.Pipeline, core.Scope) records into
// package-level metrics resolved from the Default registry at init
// time, so instrumentation costs one atomic op per event and zero
// allocations. Snapshot() returns a flat name→value map so tests and
// internal/eval can assert on counter deltas across a run, making the
// instrumentation itself testable.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into a fixed cumulative bucket layout
// (Prometheus histogram semantics: bucket i counts observations <=
// Buckets[i], plus an implicit +Inf bucket).
type Histogram struct {
	buckets []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Int64
	count   atomic.Int64  // the implicit +Inf bucket
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBuckets is the fixed layout for per-slot decode latencies, in
// seconds: 25 µs up to 100 ms, roughly exponential. A healthy real-time
// run keeps the mass far below one TTI (250 µs–1 ms).
var LatencyBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

// DepthBuckets is the fixed layout for queue-depth style observations.
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]atomic.Int64, len(bs))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Bucket counts are cumulative (Prometheus convention): v lands in
	// every bucket whose upper bound covers it.
	idx := sort.SearchFloat64s(h.buckets, v)
	for i := idx; i < len(h.counts); i++ {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and their cumulative counts (the
// +Inf bucket is the final Count()).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.buckets...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram" | "gaugefunc"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	gaugeFn func() float64
}

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry or the package Default.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	order   []string
}

// Default is the process-wide registry every package-level instrument
// registers into (Prometheus-style process semantics: metrics aggregate
// across all pipelines and scopes in the process).
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help, kind string, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := build()
	m.name, m.help, m.kind = name, help, kind
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
// Re-registering an existing name returns the same instrument.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering an existing name keeps the original function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gaugefunc", func() *metric {
		return &metric{gaugeFn: fn}
	})
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, "histogram", func() *metric {
		return &metric{hist: newHistogram(buckets)}
	}).hist
}

// Snapshot returns every metric's current value as a flat map:
// counters and gauges under their own name, histograms as
// "<name>_count" and "<name>_sum". Tests diff two snapshots to assert
// on counter deltas across a run.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.order)+8)
	for _, name := range r.order {
		m := r.metrics[name]
		switch m.kind {
		case "counter":
			out[name] = float64(m.counter.Value())
		case "gauge":
			out[name] = float64(m.gauge.Value())
		case "gaugefunc":
			out[name] = m.gaugeFn()
		case "histogram":
			out[name+"_count"] = float64(m.hist.Count())
			out[name+"_sum"] = m.hist.Sum()
		}
	}
	return out
}

// Snapshot returns the Default registry's snapshot.
func Snapshot() map[string]float64 { return Default.Snapshot() }

// Delta subtracts snapshot before from after, key by key (keys absent
// from before count as zero). Gauges come through as signed deltas.
func Delta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}
