package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one
// sample line per counter/gauge, and the cumulative bucket series plus
// _sum/_count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.order {
		m := r.metrics[name]
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, m.help)
		}
		switch m.kind {
		case "counter":
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s %d\n", name, m.counter.Value())
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %d\n", name, m.gauge.Value())
		case "gaugefunc":
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(m.gaugeFn()))
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			bounds, counts := m.hist.Buckets()
			for i, le := range bounds {
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatFloat(le), counts[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, m.hist.Count())
			fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(m.hist.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", name, m.hist.Count())
		}
	}
	return bw.Flush()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler returns the Default registry's /metrics handler.
func Handler() http.Handler { return Default.Handler() }
