package eval

import (
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/pbecc"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/traffic"
)

// ExtSchedulers is an extension experiment beyond the paper: NR-Scope
// observes the same heterogeneous-UE workload under a round-robin and a
// proportional-fair downlink scheduler, entirely passively, and the
// per-UE throughput profile it reconstructs separates the two policies —
// RAN-aware designs can fingerprint a closed cell's scheduler from the
// air (§6 "RAN Aware Design for Closed RAN").
func ExtSchedulers(o Options) Figure {
	fig := Figure{ID: "ext-sched", Title: "Scheduler fingerprinting: RR vs PF (extension)", XLabel: "UE mean SNR (dB)", YLabel: "observed Mbit/s"}
	snrs := pick(o, []float64{12, 20}, []float64{10, 14, 18, 22})
	cell := ran.AmarisoftCell()
	for _, pf := range []bool{false, true} {
		name := "round-robin"
		if pf {
			name = "proportional-fair"
		}
		var specs []UESpec
		for _, snr := range snrs {
			// Saturating demand over a fading channel: the band is
			// contended every TTI, which is where RR and PF diverge.
			specs = append(specs, UESpec{Model: channel.Vehicle, SNRdB: snr, DL: WorkloadHeavy, SessionSlots: -1})
		}
		res := mustRun(SessionConfig{
			Cell:             cell,
			ScopeSNRdB:       25,
			UEs:              specs,
			ProportionalFair: pf,
			Slots:            o.slots(8000),
			Seed:             o.seed(1400),
		})
		// Observed throughput per UE from the scope's records alone.
		bits := make(map[uint16]float64)
		var maxSlot int
		for _, rec := range res.Records {
			if rec.Common || !rec.Downlink || rec.IsRetx {
				continue
			}
			bits[rec.RNTI] += float64(rec.TBS)
			if rec.SlotIdx > maxSlot {
				maxSlot = rec.SlotIdx
			}
		}
		dur := float64(maxSlot) * cell.TTI().Seconds()
		s := Series{Name: name}
		var rates []float64
		for i, rnti := range res.AddedRNTIs {
			rate := bits[rnti] / dur
			s.X = append(s.X, snrs[i])
			s.Y = append(s.Y, rate/1e6)
			rates = append(rates, rate)
		}
		fig.Series = append(fig.Series, s)
		fig.Note("%s: sum %.1f Mbps, Jain fairness %.3f", name, sum(rates)/1e6, jain(rates))
	}
	fig.Note("PF's opportunistic gain over RR on the identical fading workload is the passive fingerprint")
	return fig
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// jain computes Jain's fairness index: (Σx)² / (n·Σx²), 1 = equal.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return s * s / (float64(len(xs)) * sq)
}

// ExtCongestion runs the paper's §6 congestion-control use case end to
// end: a sender adapts its rate to NR-Scope's telemetry feed (PBE-CC
// style: allocation + fair-share spare capacity) against an end-to-end
// AIMD baseline that backs off on RTT inflation. A competing bulk UE
// occupies the middle third of the run, so available capacity drops and
// recovers; the telemetry sender tracks it directly, the baseline only
// via queue buildup.
func ExtCongestion(o Options) Figure {
	fig := Figure{ID: "ext-cc", Title: "Telemetry-driven congestion control vs AIMD (extension)", XLabel: "time (s)", YLabel: "Mbit/s"}
	slots := o.slots(12000)
	for _, kind := range []string{"nr-scope-telemetry", "aimd-delay"} {
		s, goodput, p95Delay := runCongestion(kind, slots, o.seed(1500))
		fig.Series = append(fig.Series, s)
		fig.Note("%s: mean goodput %.2f Mbps, p95 queue delay %.1f ms", kind, goodput/1e6, p95Delay*1e3)
	}
	fig.Note("competitor occupies the middle third; telemetry tracks the capacity swing, AIMD pays in queue delay")
	return fig
}

// runCongestion executes one closed-loop run and returns the delivered
// rate series, mean goodput and p95 queueing delay.
func runCongestion(kind string, slots int, seed int64) (Series, float64, float64) {
	cell := ran.AmarisoftCell()
	cell.Seed = seed
	gnb, err := ran.NewGNB(cell, slots+1)
	if err != nil {
		panic(err)
	}
	tti := cell.TTI()
	var sender *traffic.Dynamic
	factory := func(rnti uint16, s int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		sender = traffic.NewDynamic(2e6, tti)
		return sender, nil, channel.New(channel.Normal, cell.BaseSNRdB, s)
	}
	target := gnb.AddUE(factory, -1)
	rx := radio.NewReceiver(channel.Normal, 25, seed^0xACE).Reuse(true)
	scope := core.New(cell.CellID)

	tel := pbecc.NewTelemetry(target, tti.Seconds())
	rttSlots := int(40 * time.Millisecond / tti)
	aimd := pbecc.NewAIMD(2e6, rttSlots)
	dutyCycle := cell.TDD.DownlinkDutyCycle()

	// One-RTT-delayed queue-delay samples for the end-to-end baseline.
	delayRing := make([]float64, rttSlots+1)

	series := Series{Name: kind}
	var delays []float64
	competitorAdded := false
	for i := 0; i < slots; i++ {
		if !competitorAdded && i == slots/3 {
			gnb.AddUE(func(rnti uint16, s int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
				return traffic.NewBulk(20000), nil, channel.New(channel.Normal, cell.BaseSNRdB, s)
			}, slots/3)
			competitorAdded = true
		}
		out := gnb.Step()
		res := scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))

		ue := gnb.UE(target)
		served := ue.Ledger.WindowBitrate(out.SlotIdx-200, out.SlotIdx)
		capEst := served
		if capEst < 1e6 {
			capEst = 1e6
		}
		qDelay := float64(ue.DLQueueBits()) / capEst
		delays = append(delays, qDelay)
		delayRing[out.SlotIdx%len(delayRing)] = qDelay

		switch kind {
		case "nr-scope-telemetry":
			for _, rec := range res.Records {
				tel.OnRecord(rec)
			}
			if res.Spare != nil {
				tel.OnSpare(res.Spare.PerUE[target] / tti.Seconds() * dutyCycle)
			}
			tel.OnIdle(out.SlotIdx)
			sender.SetRate(tel.Rate())
		case "aimd-delay":
			lagged := delayRing[(out.SlotIdx+1)%len(delayRing)] // ~one RTT old
			aimd.OnSlot(lagged)
			sender.SetRate(aimd.Rate())
		}

		if out.SlotIdx%400 == 0 && out.SlotIdx > 400 {
			appendXY(&series, float64(out.SlotIdx)*tti.Seconds(), served/1e6)
		}
	}
	ue := gnb.UE(target)
	goodput := float64(ue.Ledger.TotalBytes()) * 8 / (float64(slots) * tti.Seconds())
	return series, goodput, Percentile(delays, 95)
}
