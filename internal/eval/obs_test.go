package eval

import (
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/ran"
)

func TestSessionCollectsObsDeltas(t *testing.T) {
	res, err := Run(SessionConfig{
		Cell:       ran.AmarisoftCell(),
		ScopeSNRdB: 25,
		UEs:        []UESpec{{Model: channel.Normal, DL: WorkloadLight, SessionSlots: -1}},
		Slots:      800,
		Seed:       123,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("session did not collect obs deltas")
	}
	if got := res.Obs["nrscope_scope_slots_processed_total"]; got != 800 {
		t.Errorf("slots_processed delta = %g, want 800", got)
	}
	if res.Obs["nrscope_sched_grants_issued_total"] <= 0 {
		t.Error("simulator issued no grants during the session")
	}
	if res.Obs["nrscope_sched_spare_res_total"] <= 0 {
		t.Error("simulator recorded no spare REs during the session")
	}
	// The scope's blind decoding must account for the records the
	// session collected: every record is a matched candidate.
	if matched := res.Obs["nrscope_scope_blind_candidates_matched_total"]; matched < float64(len(res.Records)) {
		t.Errorf("candidates matched delta = %g < %d records", matched, len(res.Records))
	}
}
