package eval

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	if got := jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal rates Jain = %v, want 1", got)
	}
	if got := jain([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one-flow Jain = %v, want 0.25", got)
	}
	if jain(nil) != 0 || jain([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain not 0")
	}
}

func TestExtSchedulersQuick(t *testing.T) {
	fig := ExtSchedulers(Options{Quick: true, Slots: 4000})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 || math.IsNaN(y) {
				t.Errorf("%s[%d] = %v", s.Name, i, y)
			}
		}
		// Higher-SNR UE must observe a higher rate under both policies.
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("%s: rate not increasing with SNR: %v", s.Name, s.Y)
		}
	}
}

func TestExtCongestionQuick(t *testing.T) {
	fig := ExtCongestion(Options{Slots: 6000, Seed: 4321})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	rates := map[string]float64{}
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Fatalf("%s: empty series", s.Name)
		}
		rates[s.Name] = Mean(s.Y)
	}
	// The telemetry controller must clearly out-utilise the end-to-end
	// baseline (the §6 claim).
	if rates["nr-scope-telemetry"] <= rates["aimd-delay"] {
		t.Errorf("telemetry rate %.2f not above AIMD %.2f Mbps",
			rates["nr-scope-telemetry"], rates["aimd-delay"])
	}
}
