package eval

import (
	"fmt"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/ran"
)

// Options scales an experiment. Zero values pick the figure's default
// (sized for minutes-equivalent runs; the paper used 10-minute captures).
type Options struct {
	// Slots caps the per-run TTI count (0 = figure default).
	Slots int
	// Seed varies the random universe (0 = default seed).
	Seed int64
	// Quick shrinks UE counts and sweeps for smoke tests.
	Quick bool
}

func (o Options) slots(def int) int {
	if o.Slots > 0 {
		return o.Slots
	}
	return def
}

func (o Options) seed(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// pick returns the quick or full variant of a sweep.
func pick[T any](o Options, quick, full []T) []T {
	if o.Quick {
		return quick
	}
	return full
}

// mustRun runs a session, panicking on configuration errors (the
// experiment definitions are static).
func mustRun(sc SessionConfig) *SessionResult {
	res, err := Run(sc)
	if err != nil {
		panic(fmt.Sprintf("eval: %v", err))
	}
	return res
}

// ueMix builds n identical UE specs.
func ueMix(n int, spec UESpec) []UESpec {
	out := make([]UESpec, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// Fig7a reproduces Fig. 7(a): DL/UL DCI miss rate on the srsRAN cell
// with 1-4 phone UEs.
func Fig7a(o Options) Figure {
	return figMissRate("fig7a", "DCI miss rate, srsRAN cell", ran.SrsRANCell(),
		pick(o, []int{1, 2}, []int{1, 2, 3, 4}), o)
}

// Fig7b reproduces Fig. 7(b): the Amarisoft cell with 8-64 emulated UEs.
func Fig7b(o Options) Figure {
	return figMissRate("fig7b", "DCI miss rate, Amarisoft cell", ran.AmarisoftCell(),
		pick(o, []int{4, 8}, []int{8, 16, 32, 64}), o)
}

func figMissRate(id, title string, cell ran.CellConfig, counts []int, o Options) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "UEs in RAN", YLabel: "miss rate"}
	var dlSeries, ulSeries Series
	dlSeries.Name = "DL DCI"
	ulSeries.Name = "UL DCI"
	for _, n := range counts {
		res := mustRun(SessionConfig{
			Cell: cell,
			// The scope's own reception fades (it is an indoor USRP, not
			// a cabled tap): misses happen during its dips, like the
			// paper's fraction-of-a-percent rates.
			ScopeModel: channel.Pedestrian,
			ScopeSNRdB: 16,
			UEs:        ueMix(n, UESpec{Model: channel.Pedestrian, DL: WorkloadVideo, ULbps: 300e3, SessionSlots: -1}),
			Slots:      o.slots(8000),
			Seed:       o.seed(100) + int64(n),
		})
		dl, ul, dlTot, ulTot := res.MissRates()
		dlSeries.X = append(dlSeries.X, float64(n))
		dlSeries.Y = append(dlSeries.Y, dl)
		ulSeries.X = append(ulSeries.X, float64(n))
		ulSeries.Y = append(ulSeries.Y, ul)
		fig.Note("%d UEs: DL miss %.4f (%d DCIs), UL miss %.4f (%d DCIs)", n, dl, dlTot, ul, ulTot)
	}
	fig.Series = append(fig.Series, dlSeries, ulSeries)
	return fig
}

// Fig8a reproduces Fig. 8(a): CCDF of per-TTI REG-count decoding error
// on the srsRAN cell.
func Fig8a(o Options) Figure {
	return figREGError("fig8a", "REG decoding error, srsRAN cell", ran.SrsRANCell(),
		pick(o, []int{1, 2}, []int{1, 2, 3, 4}), o)
}

// Fig8b reproduces Fig. 8(b) on the Amarisoft cell.
func Fig8b(o Options) Figure {
	return figREGError("fig8b", "REG decoding error, Amarisoft cell", ran.AmarisoftCell(),
		pick(o, []int{4, 8}, []int{8, 16, 32, 64}), o)
}

func figREGError(id, title string, cell ran.CellConfig, counts []int, o Options) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "error in REG count per TTI", YLabel: "CCDF"}
	for _, n := range counts {
		res := mustRun(SessionConfig{
			Cell:       cell,
			ScopeModel: channel.Pedestrian,
			ScopeSNRdB: 16,
			UEs:        ueMix(n, UESpec{Model: channel.Pedestrian, DL: WorkloadVideo, ULbps: 300e3, SessionSlots: -1}),
			Slots:      o.slots(8000),
			Seed:       o.seed(200) + int64(n),
		})
		errs := res.REGErrors()
		fig.AddCDF(fmt.Sprintf("%d UEs", n), CCDF(errs, 40))
		zero := 0
		for _, e := range errs {
			if e == 0 {
				zero++
			}
		}
		fig.Note("%d UEs: mean REG error %.2f per TTI, zero-error fraction %.4f",
			n, Mean(errs), float64(zero)/float64(len(errs)))
	}
	return fig
}

// Fig9a reproduces Fig. 9(a): throughput-estimation error CCDF on the
// Mosolab small cell with 1-4 UEs.
func Fig9a(o Options) Figure {
	fig := Figure{ID: "fig9a", Title: "Throughput estimation error, Mosolab cell", XLabel: "error (kbps)", YLabel: "CCDF"}
	for _, n := range pick(o, []int{1, 2}, []int{1, 2, 3, 4}) {
		res := mustRun(SessionConfig{
			Cell:       ran.MosolabCell(),
			ScopeSNRdB: 18,
			UEs:        ueMix(n, UESpec{Model: channel.Normal, DL: WorkloadVideo, SessionSlots: -1}),
			Slots:      o.slots(10000),
			Seed:       o.seed(300) + int64(n),
		})
		errs, meanGT := res.ThroughputErrors()
		fig.AddCDF(fmt.Sprintf("%d UEs", n), CCDF(errs, 40))
		fig.Note("%d UEs: median %.2f kbps, p75 %.2f kbps, mean GT %.2f Mbps, rel err %.3f%%",
			n, Median(errs), Percentile(errs, 75), meanGT/1e6, 100*Mean(errs)*1e3/meanGT)
	}
	return fig
}

// Fig9b reproduces Fig. 9(b): the Amarisoft cell with 8-64 UEs.
func Fig9b(o Options) Figure {
	fig := Figure{ID: "fig9b", Title: "Throughput estimation error, Amarisoft cell", XLabel: "error (kbps)", YLabel: "CCDF"}
	for _, n := range pick(o, []int{4, 8}, []int{8, 16, 32, 64}) {
		res := mustRun(SessionConfig{
			Cell:       ran.AmarisoftCell(),
			ScopeSNRdB: 20,
			UEs:        ueMix(n, UESpec{Model: channel.Normal, DL: WorkloadVideo, SessionSlots: -1}),
			Slots:      o.slots(10000),
			Seed:       o.seed(400) + int64(n),
		})
		errs, meanGT := res.ThroughputErrors()
		fig.AddCDF(fmt.Sprintf("%d UEs", n), CCDF(errs, 40))
		fig.Note("%d UEs: median %.2f kbps, p95 %.2f kbps, mean GT %.2f Mbps",
			n, Median(errs), Percentile(errs, 95), meanGT/1e6)
	}
	return fig
}

// Fig9c reproduces Fig. 9(c): a single UE in the two T-Mobile cells
// under indoor/outdoor/moving conditions.
func Fig9c(o Options) Figure {
	fig := Figure{ID: "fig9c", Title: "Throughput estimation error, T-Mobile cells", XLabel: "error (kbps)", YLabel: "CCDF"}
	scenarios := []struct {
		name  string
		model channel.Model
	}{
		{"Indoor", channel.Normal},
		{"Outdoor", channel.Pedestrian},
		{"Moving", channel.Vehicle},
	}
	cells := pick(o, []int{1}, []int{1, 2})
	for _, cellN := range cells {
		for _, sc := range scenarios {
			res := mustRun(SessionConfig{
				Cell:       ran.TMobileCell(cellN),
				ScopeSNRdB: 15,
				UEs:        []UESpec{{Model: sc.model, DL: WorkloadVideo, SessionSlots: -1}},
				Slots:      o.slots(8000),
				Seed:       o.seed(500) + int64(cellN*10),
			})
			errs, meanGT := res.ThroughputErrors()
			fig.AddCDF(fmt.Sprintf("%s (%d)", sc.name, cellN), CCDF(errs, 40))
			fig.Note("cell %d %s: median %.2f kbps, mean GT %.2f Mbps", cellN, sc.name, Median(errs), meanGT/1e6)
		}
	}
	return fig
}

// Fig10 reproduces Fig. 10: the CCDF of UE active time in the commercial
// cells across times of day (population churn measurement).
func Fig10(o Options) Figure {
	fig := Figure{ID: "fig10", Title: "UE active time in T-Mobile cells", XLabel: "active time (s)", YLabel: "CCDF"}
	times := []struct {
		name string
		rate float64
	}{
		{"Morning", 1.2},
		{"Afternoon", 1.5},
		{"Night", 0.5},
	}
	cells := pick(o, []int{1}, []int{1, 2})
	for _, cellN := range cells {
		for _, tod := range times {
			cell := ran.TMobileCell(cellN)
			tti := cell.TTI()
			pop := ran.DefaultPopulation()
			pop.ArrivalsPerSecond = tod.rate
			if cellN == 2 {
				pop.ArrivalsPerSecond /= 3 // cell 2 sees 100-200 vs 400-600 UEs
			}
			res := mustRun(SessionConfig{
				Cell:       cell,
				ScopeSNRdB: 15,
				ScopeOpts:  []core.Option{core.WithInactivityTimeout(int(2 * time.Second / tti))},
				Population: &pop,
				Slots:      o.slots(60000), // 60 s at 1 ms TTI
				Seed:       o.seed(600) + int64(cellN),
			})
			var activeSecs []float64
			for _, a := range res.Scope.DepartedUEs() {
				activeSecs = append(activeSecs, float64(a.ActiveSlots())*tti.Seconds())
			}
			for _, rnti := range res.Scope.KnownUEs() {
				if tr := res.Scope.Track(rnti); tr != nil {
					activeSecs = append(activeSecs, float64(tr.LastSeen-tr.FirstSeen+1)*tti.Seconds())
				}
			}
			if len(activeSecs) == 0 {
				continue
			}
			fig.AddCDF(fmt.Sprintf("%s (%d)", tod.name, cellN), CCDF(activeSecs, 40))
			fig.Note("cell %d %s: %d sessions, p90 active %.1f s",
				cellN, tod.name, len(activeSecs), Percentile(activeSecs, 90))
		}
	}
	return fig
}

// Fig11 reproduces Fig. 11: the CDF of distinct scheduled UEs per second
// and per minute.
func Fig11(o Options) Figure {
	fig := Figure{ID: "fig11", Title: "Active UEs per second/minute", XLabel: "UE count", YLabel: "CDF"}
	for _, cellN := range pick(o, []int{1}, []int{1, 2}) {
		cell := ran.TMobileCell(cellN)
		tti := cell.TTI()
		pop := ran.DefaultPopulation()
		if cellN == 2 {
			pop.ArrivalsPerSecond /= 3
		}
		res := mustRun(SessionConfig{
			Cell:       cell,
			ScopeSNRdB: 15,
			Population: &pop,
			Slots:      o.slots(120000), // 2 min at 1 ms
			Seed:       o.seed(700) + int64(cellN),
		})
		slotsPerSec := int(time.Second / tti)
		perSecond := distinctPerBucket(res, slotsPerSec)
		perMinute := distinctPerBucket(res, 60*slotsPerSec)
		fig.AddCDF(fmt.Sprintf("Cell %d, 1 second", cellN), CDF(perSecond, 40))
		fig.AddCDF(fmt.Sprintf("Cell %d, 1 minute", cellN), CDF(perMinute, 40))
		fig.Note("cell %d: mean %.1f UEs/s, max %.0f UEs/min",
			cellN, Mean(perSecond), Percentile(perMinute, 100))
	}
	return fig
}

// distinctPerBucket counts distinct scheduled RNTIs per bucket of slots.
func distinctPerBucket(res *SessionResult, bucketSlots int) []float64 {
	buckets := make(map[int]map[uint16]bool)
	for _, rec := range res.Records {
		if rec.Common {
			continue
		}
		b := rec.SlotIdx / bucketSlots
		if buckets[b] == nil {
			buckets[b] = make(map[uint16]bool)
		}
		buckets[b][rec.RNTI] = true
	}
	var out []float64
	for _, m := range buckets {
		out = append(out, float64(len(m)))
	}
	return out
}
