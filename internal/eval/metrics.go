package eval

import (
	"math"
)

// dciKey identifies one transmission for GT <-> scope matching, the way
// the paper matches srsRAN log lines to NR-Scope output "using the
// timestamp and the TTI index" (§5.2.1).
type dciKey struct {
	slot int
	rnti uint16
	dl   bool
	tbs  int
}

// countable reports whether a GT record should count towards miss-rate
// style metrics: data DCIs sent after the scope had acquired the cell
// and discovered the UE (a UE whose RACH predates the telemetry session
// is invisible by design, §3.1.2).
func (r *SessionResult) countable(slotIdx int, rnti uint16) bool {
	if r.AcquiredSlot < 0 || slotIdx <= r.AcquiredSlot {
		return false
	}
	d, ok := r.Discovered[rnti]
	return ok && slotIdx > d
}

// MissRates computes the per-direction DCI miss rate (Fig. 7): the
// fraction of ground-truth data DCIs the scope failed to decode.
func (r *SessionResult) MissRates() (dl, ul float64, dlTotal, ulTotal int) {
	gtCount := make(map[dciKey]int)
	for _, g := range r.GT {
		if g.Common || !r.countable(g.SlotIdx, g.RNTI) {
			continue
		}
		k := dciKey{g.SlotIdx, g.RNTI, g.Grant.Downlink, g.Grant.TBS}
		gtCount[k]++
		if g.Grant.Downlink {
			dlTotal++
		} else {
			ulTotal++
		}
	}
	seen := make(map[dciKey]int)
	for _, rec := range r.Records {
		if rec.Common {
			continue
		}
		seen[dciKey{rec.SlotIdx, rec.RNTI, rec.Downlink, rec.TBS}]++
	}
	var dlMiss, ulMiss int
	for k, n := range gtCount {
		missing := n - seen[k]
		if missing < 0 {
			missing = 0
		}
		if k.dl {
			dlMiss += missing
		} else {
			ulMiss += missing
		}
	}
	dl, ul = math.NaN(), math.NaN()
	if dlTotal > 0 {
		dl = float64(dlMiss) / float64(dlTotal)
	}
	if ulTotal > 0 {
		ul = float64(ulMiss) / float64(ulTotal)
	}
	return dl, ul, dlTotal, ulTotal
}

// REGErrors computes, per TTI, the absolute error in the decoded
// REG count against ground truth (Fig. 8): |sum of scope REGs - sum of
// GT REGs| over the countable DCIs of the TTI.
func (r *SessionResult) REGErrors() []float64 {
	gtPerTTI := make(map[int]int)
	countableTTI := make(map[int]bool)
	for _, g := range r.GT {
		if g.Common {
			continue
		}
		if !r.countable(g.SlotIdx, g.RNTI) {
			continue
		}
		gtPerTTI[g.SlotIdx] += g.Grant.REGCount()
		countableTTI[g.SlotIdx] = true
	}
	scopePerTTI := make(map[int]int)
	for _, rec := range r.Records {
		if rec.Common || !countableTTI[rec.SlotIdx] {
			continue
		}
		scopePerTTI[rec.SlotIdx] += rec.REGs
	}
	out := make([]float64, 0, len(gtPerTTI))
	for slot, gt := range gtPerTTI {
		out = append(out, math.Abs(float64(gt-scopePerTTI[slot])))
	}
	return out
}

// ThroughputErrors returns |estimate - ground truth| in kbit/s across
// all bitrate samples (Figs. 9 and 16), plus the mean GT rate for the
// relative-error headline.
func (r *SessionResult) ThroughputErrors() (errsKbps []float64, meanGTbps float64) {
	var gtSum float64
	n := 0
	for _, s := range r.Bitrates {
		if s.GTBps == 0 && s.EstBps == 0 {
			continue // silent UE; nothing to estimate
		}
		errsKbps = append(errsKbps, math.Abs(s.EstBps-s.GTBps)/1e3)
		gtSum += s.GTBps
		n++
	}
	if n > 0 {
		meanGTbps = gtSum / float64(n)
	}
	return errsKbps, meanGTbps
}

// RetxRatios returns, per UE, the ground-truth and scope-observed
// retransmission ratios (Fig. 15 right), over countable DCIs.
func (r *SessionResult) RetxRatios() (gt, scope map[uint16]float64) {
	type cnt struct{ total, retx int }
	g := make(map[uint16]*cnt)
	s := make(map[uint16]*cnt)
	for _, rec := range r.GT {
		if rec.Common || !rec.Grant.Downlink || !r.countable(rec.SlotIdx, rec.RNTI) {
			continue
		}
		c := g[rec.RNTI]
		if c == nil {
			c = &cnt{}
			g[rec.RNTI] = c
		}
		c.total++
		if rec.IsRetx {
			c.retx++
		}
	}
	for _, rec := range r.Records {
		if rec.Common || !rec.Downlink {
			continue
		}
		c := s[rec.RNTI]
		if c == nil {
			c = &cnt{}
			s[rec.RNTI] = c
		}
		c.total++
		if rec.IsRetx {
			c.retx++
		}
	}
	gt = make(map[uint16]float64)
	scope = make(map[uint16]float64)
	for rnti, c := range g {
		if c.total > 0 {
			gt[rnti] = float64(c.retx) / float64(c.total)
		}
	}
	for rnti, c := range s {
		if c.total > 0 {
			scope[rnti] = float64(c.retx) / float64(c.total)
		}
	}
	return gt, scope
}

// MCSSamples returns the ground-truth and scope-observed downlink MCS
// indices (Fig. 15 left) over countable DCIs.
func (r *SessionResult) MCSSamples() (gt, scope []float64) {
	for _, rec := range r.GT {
		if rec.Common || !rec.Grant.Downlink || !r.countable(rec.SlotIdx, rec.RNTI) {
			continue
		}
		gt = append(gt, float64(rec.Grant.MCSIndex))
	}
	for _, rec := range r.Records {
		if rec.Common || !rec.Downlink {
			continue
		}
		scope = append(scope, float64(rec.MCS))
	}
	return gt, scope
}

// MeanMCSPerUE returns per-UE mean downlink MCS from both views,
// aligned by RNTI, for the Fig. 15 R² comparison.
func (r *SessionResult) MeanMCSPerUE() (gt, scope []float64) {
	type acc struct {
		sum float64
		n   int
	}
	g := make(map[uint16]*acc)
	s := make(map[uint16]*acc)
	for _, rec := range r.GT {
		if rec.Common || !rec.Grant.Downlink || !r.countable(rec.SlotIdx, rec.RNTI) {
			continue
		}
		a := g[rec.RNTI]
		if a == nil {
			a = &acc{}
			g[rec.RNTI] = a
		}
		a.sum += float64(rec.Grant.MCSIndex)
		a.n++
	}
	for _, rec := range r.Records {
		if rec.Common || !rec.Downlink {
			continue
		}
		a := s[rec.RNTI]
		if a == nil {
			a = &acc{}
			s[rec.RNTI] = a
		}
		a.sum += float64(rec.MCS)
		a.n++
	}
	for rnti, ga := range g {
		sa := s[rnti]
		if sa == nil || ga.n == 0 || sa.n == 0 {
			continue
		}
		gt = append(gt, ga.sum/float64(ga.n))
		scope = append(scope, sa.sum/float64(sa.n))
	}
	return gt, scope
}
