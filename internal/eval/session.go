package eval

import (
	"fmt"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/obs"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/sched"
	"nrscope/internal/telemetry"
	"nrscope/internal/traffic"
)

// UESpec describes one UE attached for a session.
type UESpec struct {
	// Model and SNRdB set the UE's link; SNRdB 0 means the cell default.
	Model channel.Model
	SNRdB float64
	// DL selects the downlink workload; ULbps adds a CBR uplink flow.
	DL    Workload
	ULbps float64
	// SessionSlots bounds the UE's stay (<0 = whole session).
	SessionSlots int
}

// Workload is a downlink traffic shape.
type Workload int

// Workloads (the paper's §5.2.2 mix: videos and file downloads, plus
// saturating and light flows for the capacity experiments).
const (
	WorkloadVideo Workload = iota
	WorkloadBulk
	WorkloadHeavy // cell-saturating backlog
	WorkloadFile
	WorkloadLight
	WorkloadNone
)

// factory builds the ran.UEFactory for a spec.
func (u UESpec) factory(cfg ran.CellConfig) ran.UEFactory {
	return func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		snr := u.SNRdB
		if snr == 0 {
			snr = cfg.BaseSNRdB
		}
		ch := channel.New(u.Model, snr, seed)
		var dl traffic.Generator
		tti := cfg.TTI()
		switch u.DL {
		case WorkloadVideo:
			dl = traffic.NewVideo(30, 20000, 0.2, tti, seed)
		case WorkloadBulk:
			dl = traffic.NewBulk(4000)
		case WorkloadHeavy:
			dl = traffic.NewBulk(20000)
		case WorkloadFile:
			dl = traffic.NewFiniteFile(8<<20, 6000)
		case WorkloadLight:
			dl = traffic.NewOnOff(1e6, 200*time.Millisecond, 300*time.Millisecond, tti, seed)
		case WorkloadNone:
			dl = nil
		}
		var ul traffic.Generator
		if u.ULbps > 0 {
			ul = traffic.NewCBR(u.ULbps, tti)
		}
		return dl, ul, ch
	}
}

// SessionConfig describes one measurement run.
type SessionConfig struct {
	Cell ran.CellConfig

	// Scope reception path.
	ScopeModel channel.Model
	ScopeSNRdB float64
	ScopeOpts  []core.Option

	UEs        []UESpec
	Population *ran.Population

	// ProportionalFair swaps the cell's downlink scheduler from
	// round-robin to proportional-fair (the scheduler-inference
	// extension experiment observes the difference passively).
	ProportionalFair bool

	Slots int
	// SampleEvery sets the cadence (slots) of bitrate samples; 0 = 100.
	SampleEvery int
	Seed        int64
}

// BitrateSample pairs the scope's estimate with the ledger ground truth
// for one UE at one instant.
type BitrateSample struct {
	SlotIdx  int
	RNTI     uint16
	EstBps   float64
	GTBps    float64
	SpareBps float64 // fair-share spare capacity attributed to this UE
}

// SpareSample records the per-TTI used/spare REs for Fig. 14b.
type SpareSample struct {
	SlotIdx  int
	UsedREs  int
	TotalREs int
	PerUE    map[uint16]float64
}

// SessionResult aggregates everything a figure needs.
type SessionResult struct {
	Config SessionConfig

	GT      []ran.GTRecord
	Records []telemetry.Record

	AcquiredSlot int
	Discovered   map[uint16]int // rnti -> slot the scope learned it
	AddedRNTIs   []uint16       // rntis attached via UEs specs

	Bitrates []BitrateSample
	Spares   []SpareSample

	Elapsed []time.Duration // per-processed-slot decode time

	// Obs holds the obs.Snapshot() counter deltas accumulated across
	// this session's slots (decode attempts, grants issued, and so on),
	// so figures and tests can assert the instrumented pipeline did the
	// work it claims. Gauge entries are point-in-time deltas and only
	// meaningful for sessions run back to back.
	Obs map[string]float64

	GNB   *ran.GNB
	Scope *core.Scope
}

// Run executes a session.
func Run(sc SessionConfig) (*SessionResult, error) {
	if sc.Slots < 1 {
		return nil, fmt.Errorf("eval: session needs Slots >= 1")
	}
	cell := sc.Cell
	if sc.Seed != 0 {
		cell.Seed = sc.Seed
	}
	gnb, err := ran.NewGNB(cell, sc.Slots+1)
	if err != nil {
		return nil, err
	}
	if sc.Population != nil {
		gnb.SetPopulation(*sc.Population)
	}
	if sc.ProportionalFair {
		gnb.UseSchedulers(sched.NewProportionalFair(), sched.NewRoundRobin())
	}
	scopeModel := sc.ScopeModel
	snr := sc.ScopeSNRdB
	if snr == 0 {
		snr = 25
	}
	rx := radio.NewReceiver(scopeModel, snr, cell.Seed^0xACE).Reuse(true)
	scope := core.New(cell.CellID, sc.ScopeOpts...)

	res := &SessionResult{
		Config:       sc,
		AcquiredSlot: -1,
		Discovered:   make(map[uint16]int),
		GNB:          gnb,
		Scope:        scope,
	}
	for _, spec := range sc.UEs {
		rnti := gnb.AddUE(spec.factory(cell), spec.SessionSlots)
		res.AddedRNTIs = append(res.AddedRNTIs, rnti)
	}

	sampleEvery := sc.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 100
	}

	obsBefore := obs.Snapshot()
	for i := 0; i < sc.Slots; i++ {
		out := gnb.Step()
		cap := rx.Capture(out.SlotIdx, out.Ref, out.Grid)
		sr := scope.ProcessSlot(cap)

		res.GT = append(res.GT, out.GT...)
		res.Records = append(res.Records, sr.Records...)
		if sr.SIB1Acquired && res.AcquiredSlot < 0 {
			res.AcquiredSlot = sr.SlotIdx
		}
		for _, rnti := range sr.NewUEs {
			res.Discovered[rnti] = sr.SlotIdx
		}
		if out.Grid != nil {
			res.Elapsed = append(res.Elapsed, sr.Elapsed)
		}
		if sr.Spare != nil {
			res.Spares = append(res.Spares, SpareSample{
				SlotIdx: sr.SlotIdx, UsedREs: sr.Spare.UsedREs,
				TotalREs: sr.Spare.TotalREs, PerUE: sr.Spare.PerUE,
			})
		}
		if out.SlotIdx%sampleEvery == 0 && out.SlotIdx > 0 {
			res.sampleBitrates(out.SlotIdx, sr)
		}
	}
	res.Obs = obs.Delta(obsBefore, obs.Snapshot())
	return res, nil
}

// sampleBitrates snapshots estimate-vs-ledger bitrates for every
// discovered UE.
func (r *SessionResult) sampleBitrates(slotIdx int, sr *core.SlotResult) {
	window := r.Scope.WindowSlots()
	for rnti, at := range r.Discovered {
		if slotIdx-at < window {
			continue // window not yet representative
		}
		ue := r.GNB.UE(rnti)
		if ue == nil || !ue.Connected() {
			continue
		}
		est := r.Scope.Bitrate(rnti, true, slotIdx)
		gt := ue.Ledger.WindowBitrate(slotIdx-window, slotIdx)
		s := BitrateSample{SlotIdx: slotIdx, RNTI: rnti, EstBps: est, GTBps: gt}
		if sr.Spare != nil {
			tti := r.Config.Cell.TTI().Seconds()
			s.SpareBps = sr.Spare.PerUE[rnti] / tti
		}
		r.Bitrates = append(r.Bitrates, s)
	}
}
