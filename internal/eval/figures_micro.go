package eval

import (
	"fmt"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/ran"
	"nrscope/internal/traffic"
)

// Fig12 reproduces Fig. 12: per-slot processing time against the number
// of tracked UEs, with one and four DCI threads, on the 20 MHz Amarisoft
// cell and the 10 MHz T-Mobile cell. The wall-clock numbers are the real
// compute cost of this implementation; the paper's claim under test is
// the O(n log n + m) shape — a bandwidth-dependent base plus a linear
// term in UEs — and the thread speedup at high UE counts.
func Fig12(o Options) Figure {
	fig := Figure{ID: "fig12", Title: "Processing time vs tracked UEs", XLabel: "UEs", YLabel: "us per slot"}
	counts := pick(o, []int{1, 4, 16}, []int{1, 2, 4, 8, 16, 32, 64, 128})
	cells := []struct {
		name string
		cell ran.CellConfig
	}{
		{"Amarisoft 20MHz", ran.AmarisoftCell()},
		{"T-Mobile 10MHz", ran.TMobileCell(1)},
	}
	for _, c := range cells {
		for _, threads := range []int{1, 4} {
			s := Series{Name: fmt.Sprintf("%s, %d thread(s)", c.name, threads)}
			for _, n := range counts {
				us := measureProcessing(c.cell, n, threads, o)
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, us)
				fig.Note("%s, %d threads, %d UEs: %.1f us/slot", c.name, threads, n, us)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}

// measureProcessing returns the mean decode time per downlink slot (us)
// once n UEs are tracked.
func measureProcessing(cell ran.CellConfig, n, threads int, o Options) float64 {
	pop := ran.Population{} // no churn; fixed UEs
	_ = pop
	warmup := o.slots(3000)
	measure := warmup / 2
	res := mustRun(SessionConfig{
		Cell:       cell,
		ScopeSNRdB: 20,
		ScopeOpts:  []core.Option{core.WithDCIThreads(threads)},
		UEs:        ueMix(n, UESpec{Model: channel.Normal, DL: WorkloadLight, ULbps: 100e3, SessionSlots: -1}),
		Slots:      warmup + measure,
		Seed:       o.seed(800) + int64(n*10+threads),
	})
	// Use only the tail, once discovery settled, and take the median —
	// GC pauses and scheduler preemption contaminate a mean.
	tail := res.Elapsed
	if len(tail) > measure {
		tail = tail[len(tail)-measure:]
	}
	if len(tail) == 0 {
		return 0
	}
	us := make([]float64, len(tail))
	for i, d := range tail {
		us[i] = float64(d.Microseconds())
	}
	return Median(us)
}

// Fig13 reproduces Fig. 13: DCI miss rate across receiver positions on
// the lab floor — position maps to distance, distance to SNR through the
// indoor path-loss model, and the miss rate follows signal quality.
func Fig13(o Options) Figure {
	fig := Figure{ID: "fig13", Title: "DCI miss rate across the floor", XLabel: "distance from gNB (m)", YLabel: "miss rate"}
	pl := channel.DefaultIndoor()
	// A low-power indoor small cell and a modest USRP front end: the far
	// corner of the floor sits near the QPSK decode threshold, which is
	// where the paper's Fig. 13 misses appear.
	const txPowerDBm, noiseFloorDBm = -5, -85
	distances := pick(o, []float64{2, 16}, []float64{1, 2, 4, 8, 12, 16, 20})
	nUEs := 8
	if o.Quick {
		nUEs = 4
	}
	dl := Series{Name: "DL DCI"}
	ul := Series{Name: "UL DCI"}
	for _, d := range distances {
		snr := pl.SNRAt(d, txPowerDBm, noiseFloorDBm)
		res := mustRun(SessionConfig{
			Cell:       ran.AmarisoftCell(),
			ScopeSNRdB: snr,
			UEs:        ueMix(nUEs, UESpec{Model: channel.Normal, DL: WorkloadVideo, ULbps: 300e3, SessionSlots: -1}),
			Slots:      o.slots(6000),
			Seed:       o.seed(900) + int64(d),
		})
		dlMiss, ulMiss, _, _ := res.MissRates()
		dl.X = append(dl.X, d)
		dl.Y = append(dl.Y, dlMiss)
		ul.X = append(ul.X, d)
		ul.Y = append(ul.Y, ulMiss)
		fig.Note("%.0f m (scope SNR %.1f dB): DL miss %.4f, UL miss %.4f", d, snr, dlMiss, ulMiss)
	}
	fig.Series = append(fig.Series, dl, ul)
	return fig
}

// Fig14 reproduces Fig. 14: spare-capacity estimation with two UEs on
// the Mosolab cell — per-UE bitrate (scope vs tcpdump-equivalent ledger)
// plus the fair-share spare bitrate (a), and used vs spare REs per TTI (b).
func Fig14(o Options) Figure {
	fig := Figure{ID: "fig14", Title: "Spare capacity estimation, 2 UEs", XLabel: "time (s)", YLabel: "Mbit/s"}
	cell := ran.MosolabCell()
	res := mustRun(SessionConfig{
		Cell:        cell,
		ScopeSNRdB:  18,
		UEs:         ueMix(2, UESpec{Model: channel.Normal, DL: WorkloadVideo, SessionSlots: -1}),
		Slots:       o.slots(20000),
		SampleEvery: 200,
		Seed:        o.seed(1000),
	})
	tti := cell.TTI().Seconds()
	series := make(map[string]*Series)
	get := func(name string) *Series {
		if series[name] == nil {
			series[name] = &Series{Name: name}
		}
		return series[name]
	}
	order := []string{}
	for i, rnti := range res.AddedRNTIs {
		for _, tag := range []string{"NR-Scope", "tcpdump", "Spare"} {
			order = append(order, fmt.Sprintf("UE%d %s", i+1, tag))
		}
		_ = rnti
	}
	for _, s := range res.Bitrates {
		idx := indexOf(res.AddedRNTIs, s.RNTI)
		if idx < 0 {
			continue
		}
		t := float64(s.SlotIdx) * tti
		appendXY(get(fmt.Sprintf("UE%d NR-Scope", idx+1)), t, s.EstBps/1e6)
		appendXY(get(fmt.Sprintf("UE%d tcpdump", idx+1)), t, s.GTBps/1e6)
		appendXY(get(fmt.Sprintf("UE%d Spare", idx+1)), t, s.SpareBps/1e6)
	}
	for _, name := range order {
		if s := series[name]; s != nil {
			fig.Series = append(fig.Series, *s)
		}
	}
	// Fig. 14(b): REs used vs spare per TTI (downsampled).
	used := Series{Name: "Used REs per TTI"}
	spare := Series{Name: "Spare REs per TTI"}
	step := len(res.Spares)/50 + 1
	for i := 0; i < len(res.Spares); i += step {
		sp := res.Spares[i]
		t := float64(sp.SlotIdx) * tti
		appendXY(&used, t, float64(sp.UsedREs))
		appendXY(&spare, t, float64(sp.TotalREs-sp.UsedREs))
	}
	fig.Series = append(fig.Series, used, spare)

	// Headline: estimation accuracy during the run.
	errs, meanGT := res.ThroughputErrors()
	fig.Note("per-sample throughput error: median %.2f kbps over mean GT %.2f Mbps", Median(errs), meanGT/1e6)
	return fig
}

func indexOf(xs []uint16, v uint16) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func appendXY(s *Series, x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Fig15 reproduces Fig. 15: MCS index CDF and retransmission-ratio CDF
// for UEs emulated with the Normal/AWGN/Pedestrian/Vehicle/Urban
// channels, plus the R² agreement between scope and ground truth.
func Fig15(o Options) Figure {
	fig := Figure{ID: "fig15", Title: "MCS and retransmission by channel", XLabel: "MCS index / retx ratio", YLabel: "CDF"}
	n := 16
	if o.Quick {
		n = 6
	}
	var gtMeanMCS, scMeanMCS []float64
	var gtRetxAll, scRetxAll []float64
	for _, model := range channel.Models {
		res := mustRun(SessionConfig{
			Cell:       ran.AmarisoftCell(),
			ScopeSNRdB: 22,
			UEs:        ueMix(n, UESpec{Model: model, DL: WorkloadBulk, SessionSlots: -1}),
			Slots:      o.slots(8000),
			Seed:       o.seed(1100) + int64(model),
		})
		_, scopeMCS := res.MCSSamples()
		fig.AddCDF("MCS "+model.String(), CDF(scopeMCS, 32))
		gtR, scR := res.RetxRatios()
		var ratios []float64
		for rnti, r := range scR {
			ratios = append(ratios, r)
			if gr, ok := gtR[rnti]; ok {
				gtRetxAll = append(gtRetxAll, gr)
				scRetxAll = append(scRetxAll, r)
			}
		}
		fig.AddCDF("Retx "+model.String(), CDF(ratios, 32))
		g, s := res.MeanMCSPerUE()
		gtMeanMCS = append(gtMeanMCS, g...)
		scMeanMCS = append(scMeanMCS, s...)
		fig.Note("%s: mean MCS %.1f, mean retx ratio %.3f", model, Mean(scopeMCS), Mean(ratios))
	}
	fig.Note("R^2 scope vs GT: MCS %.4f, retransmission ratio %.4f",
		RSquared(gtMeanMCS, scMeanMCS), RSquared(gtRetxAll, scRetxAll))
	return fig
}

// Fig16abc reproduces Fig. 16(a-c): throughput-error CCDFs with static,
// blocked, and moving UEs on the Mosolab cell.
func Fig16abc(o Options) Figure {
	fig := Figure{ID: "fig16abc", Title: "Throughput error by UE status, Mosolab cell", XLabel: "error (kbps)", YLabel: "CCDF"}
	scenarios := []struct {
		name  string
		model channel.Model
	}{
		{"Static", channel.Normal},
		{"Blocked", channel.Urban},
		{"Moving", channel.Vehicle},
	}
	for _, sc := range scenarios {
		for _, n := range pick(o, []int{1, 2}, []int{1, 2, 3, 4}) {
			res := mustRun(SessionConfig{
				Cell:       ran.MosolabCell(),
				ScopeSNRdB: 18,
				UEs:        ueMix(n, UESpec{Model: sc.model, DL: WorkloadVideo, SessionSlots: -1}),
				Slots:      o.slots(8000),
				Seed:       o.seed(1200) + int64(n),
			})
			errs, _ := res.ThroughputErrors()
			fig.AddCDF(fmt.Sprintf("%s %d UE", sc.name, n), CCDF(errs, 40))
			fig.Note("%s %d UEs: median err %.2f kbps", sc.name, n, Median(errs))
		}
	}
	return fig
}

// Fig16d reproduces Fig. 16(d): packets aggregated per TTI, for a UE
// alone in the cell (spare capacity) vs competing with others.
func Fig16d(o Options) Figure {
	fig := Figure{ID: "fig16d", Title: "Packet aggregation per TTI", XLabel: "packets per TTI", YLabel: "CDF"}
	run := func(name string, competitors int) {
		specs := []UESpec{{Model: channel.Normal, DL: WorkloadVideo, SessionSlots: -1}}
		specs = append(specs, ueMix(competitors, UESpec{Model: channel.Normal, DL: WorkloadBulk, SessionSlots: -1})...)
		res := mustRun(SessionConfig{
			Cell:       ran.MosolabCell(),
			ScopeSNRdB: 18,
			UEs:        specs,
			Slots:      o.slots(8000),
			Seed:       o.seed(1300) + int64(competitors),
		})
		ue := res.GNB.UE(res.AddedRNTIs[0])
		if ue == nil {
			return
		}
		var pkts []float64
		for _, p := range ue.Ledger.PacketsPerTTI() {
			pkts = append(pkts, float64(p))
		}
		fig.AddCDF(name, CDF(pkts, 24))
		fig.Note("%s: mean %.2f packets/TTI (MTU %d)", name, Mean(pkts), traffic.MTU)
	}
	// Competition must be heavy enough that the watched UE is sometimes
	// skipped for whole TTIs — that is what aggregates its packets.
	run("Spare", 0)
	run("With Competition", 9)
	return fig
}

// AllFigures runs the complete evaluation and returns every reproduced
// figure in paper order.
func AllFigures(o Options) []Figure {
	return []Figure{
		Fig7a(o), Fig7b(o),
		Fig8a(o), Fig8b(o),
		Fig9a(o), Fig9b(o), Fig9c(o),
		Fig10(o), Fig11(o),
		Fig12(o), Fig13(o),
		Fig14(o), Fig15(o),
		Fig16abc(o), Fig16d(o),
	}
}
