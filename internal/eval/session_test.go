package eval

import (
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/core"
	"nrscope/internal/ran"
)

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(SessionConfig{Cell: ran.AmarisoftCell(), Slots: 0}); err == nil {
		t.Error("zero-slot session accepted")
	}
	bad := ran.AmarisoftCell()
	bad.CarrierPRBs = 1
	if _, err := Run(SessionConfig{Cell: bad, Slots: 10}); err == nil {
		t.Error("invalid cell accepted")
	}
}

func TestAllWorkloadsDriveTraffic(t *testing.T) {
	for _, w := range []Workload{WorkloadVideo, WorkloadBulk, WorkloadFile, WorkloadLight} {
		res, err := Run(SessionConfig{
			Cell:       ran.AmarisoftCell(),
			ScopeSNRdB: 25,
			UEs:        []UESpec{{Model: channel.Normal, DL: w, SessionSlots: -1}},
			Slots:      1500,
			Seed:       77 + int64(w),
		})
		if err != nil {
			t.Fatal(err)
		}
		dlRecords := 0
		for _, rec := range res.Records {
			if rec.Downlink && !rec.Common {
				dlRecords++
			}
		}
		if dlRecords == 0 {
			t.Errorf("workload %d produced no downlink records", w)
		}
	}
	// WorkloadNone with uplink only.
	res, err := Run(SessionConfig{
		Cell:       ran.AmarisoftCell(),
		ScopeSNRdB: 25,
		UEs:        []UESpec{{Model: channel.Normal, DL: WorkloadNone, ULbps: 500e3, SessionSlots: -1}},
		Slots:      1500,
		Seed:       99,
	})
	if err != nil {
		t.Fatal(err)
	}
	ul := 0
	for _, rec := range res.Records {
		if !rec.Downlink && !rec.Common {
			ul++
		}
	}
	if ul == 0 {
		t.Error("UL-only UE produced no uplink records")
	}
}

func TestSessionWithPopulation(t *testing.T) {
	pop := ran.DefaultPopulation()
	pop.ArrivalsPerSecond = 6
	pop.MedianSessionSeconds = 1
	res, err := Run(SessionConfig{
		Cell:       ran.AmarisoftCell(),
		ScopeSNRdB: 25,
		ScopeOpts:  []core.Option{core.WithInactivityTimeout(800)},
		Population: &pop,
		Slots:      8000, // 4 s
		Seed:       1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discovered) < 3 {
		t.Errorf("only %d UEs discovered under churn", len(res.Discovered))
	}
	// Some sessions should have aged out by the end.
	if len(res.Scope.DepartedUEs()) == 0 {
		t.Error("no sessions aged out")
	}
}

func TestDMRSGateDoesNotChangeFindings(t *testing.T) {
	run := func(gate bool) int {
		res, err := Run(SessionConfig{
			Cell:       ran.AmarisoftCell(),
			ScopeSNRdB: 25,
			ScopeOpts:  []core.Option{core.WithDMRSGate(gate)},
			UEs:        ueMix(2, UESpec{Model: channel.Normal, DL: WorkloadVideo, SessionSlots: -1}),
			Slots:      2000,
			Seed:       555,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, rec := range res.Records {
			if !rec.Common {
				n++
			}
		}
		return n
	}
	gated := run(true)
	brute := run(false)
	if gated == 0 {
		t.Fatal("no records")
	}
	// The gate is an optimisation: at high SNR the two must agree.
	if gated != brute {
		t.Errorf("gated found %d records, brute force %d", gated, brute)
	}
}

func TestMeanMCSPerUEAgreement(t *testing.T) {
	res := quickSession(t, 2)
	gt, scope := res.MeanMCSPerUE()
	if len(gt) != 2 || len(scope) != 2 {
		t.Fatalf("per-UE MCS: %d gt, %d scope", len(gt), len(scope))
	}
	if r := RSquared(gt, scope); r < 0.98 {
		t.Errorf("MCS R² = %.4f at 25 dB, want near 1", r)
	}
}
