// Package eval reproduces the paper's evaluation: it wires the simulated
// gNB, the radio front end and the NR-Scope engine into measurement
// sessions, computes the paper's metrics (DCI miss rate, REG decoding
// error, throughput estimation error, UE activity, processing time,
// MCS/retransmission distributions), and packages each table/figure of
// §5 as a reproducible experiment (see DESIGN.md §4 for the index).
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs (nearest-rank on
// a sorted copy). It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one (x, P[X <= x]) pair.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical distribution of xs at up to maxPoints
// evenly spaced quantiles (all points when maxPoints <= 0).
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	var out []CDFPoint
	for i := 0; i < n; i += step {
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / float64(n)})
	}
	if out[len(out)-1].P != 1 {
		out = append(out, CDFPoint{X: s[n-1], P: 1})
	}
	return out
}

// CCDF returns the complementary distribution P[X > x], the form the
// paper plots for error tails (Figs. 8, 9, 10, 16).
func CCDF(xs []float64, maxPoints int) []CDFPoint {
	cdf := CDF(xs, maxPoints)
	out := make([]CDFPoint, len(cdf))
	for i, p := range cdf {
		out[i] = CDFPoint{X: p.X, P: 1 - p.P}
	}
	return out
}

// RSquared computes the coefficient of determination of predicted vs
// observed values — the paper reports R² = 0.9970 (MCS) and 0.9862
// (retransmissions) between NR-Scope and ground truth (§5.4.2).
func RSquared(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		return math.NaN()
	}
	mean := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		d := observed[i] - predicted[i]
		ssRes += d * d
		m := observed[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Series is one plottable line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced result: the same rows/series the paper plots.
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// AddCDF appends a distribution as a series.
func (f *Figure) AddCDF(name string, points []CDFPoint) {
	s := Series{Name: name}
	for _, p := range points {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.P)
	}
	f.Series = append(f.Series, s)
}

// Note records a headline number (the quantities quoted in the text).
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure as aligned text rows.
func (f *Figure) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", f.ID, f.Title)
	if f.XLabel != "" || f.YLabel != "" {
		out += fmt.Sprintf("   x: %s | y: %s\n", f.XLabel, f.YLabel)
	}
	for _, s := range f.Series {
		out += fmt.Sprintf("  series %q (%d points)\n", s.Name, len(s.X))
		for i := range s.X {
			out += fmt.Sprintf("    %12.4f  %12.6f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}

// Summary renders only the headline notes and series shapes.
func (f *Figure) Summary() string {
	out := fmt.Sprintf("== %s: %s ==\n", f.ID, f.Title)
	for _, s := range f.Series {
		out += fmt.Sprintf("  series %q: %d points", s.Name, len(s.X))
		if len(s.Y) > 0 {
			out += fmt.Sprintf(" (first %.4g, last %.4g)", s.Y[0], s.Y[len(s.Y)-1])
		}
		out += "\n"
	}
	for _, n := range f.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}
