package eval

import (
	"math"
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/ran"
)

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
}

func TestCDFCCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cdf := CDF(xs, 0)
	if len(cdf) != 4 || cdf[3].P != 1 || cdf[0].X != 1 {
		t.Errorf("CDF = %+v", cdf)
	}
	ccdf := CCDF(xs, 0)
	if ccdf[3].P != 0 {
		t.Errorf("CCDF tail = %v", ccdf[3].P)
	}
	// Downsampling keeps the final point.
	big := make([]float64, 1000)
	for i := range big {
		big[i] = float64(i)
	}
	ds := CDF(big, 10)
	if ds[len(ds)-1].P != 1 {
		t.Error("downsampled CDF misses P=1")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if got := RSquared(obs, obs); got != 1 {
		t.Errorf("perfect R² = %v", got)
	}
	noisy := []float64{1.1, 1.9, 3.2, 3.9}
	r := RSquared(obs, noisy)
	if r < 0.9 || r >= 1 {
		t.Errorf("noisy R² = %v", r)
	}
	if !math.IsNaN(RSquared(obs, obs[:2])) {
		t.Error("length mismatch not NaN")
	}
}

func quickSession(t *testing.T, ues int) *SessionResult {
	t.Helper()
	res, err := Run(SessionConfig{
		Cell:       ran.AmarisoftCell(),
		ScopeSNRdB: 25,
		UEs:        ueMix(ues, UESpec{Model: channel.Normal, DL: WorkloadVideo, ULbps: 200e3, SessionSlots: -1}),
		Slots:      3000,
		Seed:       4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSessionProducesData(t *testing.T) {
	res := quickSession(t, 2)
	if res.AcquiredSlot < 0 {
		t.Fatal("cell never acquired")
	}
	if len(res.Discovered) != 2 {
		t.Fatalf("discovered %d UEs, want 2", len(res.Discovered))
	}
	if len(res.GT) == 0 || len(res.Records) == 0 {
		t.Fatal("no records collected")
	}
	if len(res.Bitrates) == 0 {
		t.Fatal("no bitrate samples")
	}
	if len(res.Elapsed) == 0 {
		t.Fatal("no timing samples")
	}
}

func TestMissRatesNearZeroAtHighSNR(t *testing.T) {
	res := quickSession(t, 2)
	dl, ul, dlTot, ulTot := res.MissRates()
	if dlTot < 50 || ulTot < 50 {
		t.Fatalf("too few DCIs: dl=%d ul=%d", dlTot, ulTot)
	}
	if dl > 0.01 {
		t.Errorf("DL miss rate %.4f at 25 dB", dl)
	}
	if ul > 0.01 {
		t.Errorf("UL miss rate %.4f at 25 dB", ul)
	}
}

func TestREGErrorsMostlyZero(t *testing.T) {
	res := quickSession(t, 2)
	errs := res.REGErrors()
	if len(errs) == 0 {
		t.Fatal("no REG samples")
	}
	zero := 0
	for _, e := range errs {
		if e == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(len(errs)); frac < 0.99 {
		t.Errorf("zero-REG-error fraction %.4f at 25 dB, want > 0.99", frac)
	}
}

func TestThroughputErrorsSmall(t *testing.T) {
	res := quickSession(t, 1)
	errs, meanGT := res.ThroughputErrors()
	if len(errs) == 0 || meanGT == 0 {
		t.Fatal("no throughput samples")
	}
	rel := Mean(errs) * 1e3 / meanGT
	if rel > 0.05 {
		t.Errorf("mean relative throughput error %.3f, want < 5%% (paper: 0.9%%)", rel)
	}
}

func TestFig7aQuickShape(t *testing.T) {
	fig := Fig7a(Options{Quick: true, Slots: 3000})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want DL+UL", len(fig.Series))
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if math.IsNaN(y) {
				t.Errorf("%s[%d] is NaN", s.Name, i)
			}
			if y > 0.10 {
				t.Errorf("%s[%d] miss rate %.3f implausibly high", s.Name, i, y)
			}
		}
	}
}

func TestFig13MonotoneWithDistance(t *testing.T) {
	fig := Fig13(Options{Quick: true, Slots: 3000})
	dl := fig.Series[0]
	if len(dl.Y) < 2 {
		t.Fatal("too few points")
	}
	near, far := dl.Y[0], dl.Y[len(dl.Y)-1]
	if far < near {
		t.Errorf("miss rate at far position (%.4f) below near (%.4f)", far, near)
	}
}

func TestFig15ChannelOrdering(t *testing.T) {
	fig := Fig15(Options{Quick: true, Slots: 4000})
	// Extract mean MCS per model from the notes via series means instead.
	means := map[string]float64{}
	for _, s := range fig.Series {
		if len(s.X) == 0 {
			continue
		}
		if len(s.Name) > 4 && s.Name[:4] == "MCS " {
			means[s.Name[4:]] = Mean(s.X)
		}
	}
	if means["Normal"] <= means["Urban"] {
		t.Errorf("Normal mean MCS %.1f not above Urban %.1f", means["Normal"], means["Urban"])
	}
	retx := map[string]float64{}
	for _, s := range fig.Series {
		if len(s.Name) > 5 && s.Name[:5] == "Retx " {
			retx[s.Name[5:]] = Mean(s.X)
		}
	}
	if retx["Urban"] <= retx["Normal"] {
		t.Errorf("Urban retx %.3f not above Normal %.3f", retx["Urban"], retx["Normal"])
	}
}

func TestFig16dAggregation(t *testing.T) {
	fig := Fig16d(Options{Quick: true, Slots: 4000})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// With competition the UE is served less often, so more packets pile
	// into each serving TTI: the mean packets/TTI should not shrink.
	spare := Mean(fig.Series[0].X)
	comp := Mean(fig.Series[1].X)
	if comp+0.5 < spare {
		t.Errorf("competition packets/TTI %.2f far below spare %.2f", comp, spare)
	}
}

func TestFigureString(t *testing.T) {
	fig := Figure{ID: "x", Title: "t"}
	fig.AddCDF("s", []CDFPoint{{X: 1, P: 0.5}, {X: 2, P: 1}})
	fig.Note("hello %d", 7)
	out := fig.String()
	for _, want := range []string{"== x: t ==", "series \"s\"", "hello 7"} {
		if !contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	if sum := fig.Summary(); !contains(sum, "hello 7") {
		t.Error("summary missing note")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
