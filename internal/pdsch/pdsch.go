// Package pdsch implements the shared-channel processing used for the
// broadcast payloads NR-Scope actually decodes — SIB1, the RAR (MSG 2)
// and the RRC Setup (MSG 4) — plus the PBCH carrying the MIB, and filler
// generation for user-plane transport blocks (whose content the scope
// never inspects; only their DCIs matter).
//
// The FEC is the convolutional/Viterbi substitute for 5G's LDPC
// (DESIGN.md §2). Payloads are CRC24A-protected, coded, rate matched to
// the grant's channel-bit budget, scrambled with the cell/RNTI Gold
// sequence and modulated at the grant's order onto the allocated REs.
package pdsch

import (
	"fmt"
	"sync"

	"nrscope/internal/bits"
	"nrscope/internal/convcode"
	"nrscope/internal/dci"
	"nrscope/internal/modulation"
	"nrscope/internal/phy"
)

// decodeScratch holds the per-decode buffers (symbols, LLRs, scrambling
// sequence, Viterbi trellis) so the per-slot decode paths allocate
// nothing at steady state. Pooled because SIB1/MSG4 decodes can run from
// multiple cell goroutines.
type decodeScratch struct {
	syms []complex128
	llr  []float64
	seq  []uint8
	vit  convcode.Workspace
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// roundChunk rounds n up to a multiple of the demap chunk width so the
// scratch capacities stay stable across differently sized grants.
func roundChunk(n int) int {
	return (n + modulation.ChunkWidth - 1) &^ (modulation.ChunkWidth - 1)
}

func (sc *decodeScratch) symbols(n int) []complex128 {
	if cap(sc.syms) < n {
		sc.syms = make([]complex128, roundChunk(n))
	}
	return sc.syms[:n]
}

func (sc *decodeScratch) sequence(n int) []uint8 {
	if cap(sc.seq) < n {
		sc.seq = make([]uint8, roundChunk(n))
	}
	return sc.seq[:n]
}

// allocationREs enumerates the REs of a grant's time-frequency
// allocation in mapping order (symbol-major), limited to the first n.
func allocationREs(g dci.Grant, n int) []phy.RE {
	out := make([]phy.RE, 0, n)
	for sym := g.Time.StartSymbol; sym < g.Time.StartSymbol+g.Time.NumSymbols; sym++ {
		for prb := g.StartPRB; prb < g.StartPRB+g.NumPRB; prb++ {
			for off := 0; off < phy.SubcarriersPerPRB; off++ {
				if len(out) == n {
					return out
				}
				out = append(out, phy.RE{Symbol: sym, Subcarrier: prb*phy.SubcarriersPerPRB + off})
			}
		}
	}
	return out
}

// Encode writes a transport block carrying payload onto the grid per the
// grant. The payload must fit the grant's TBS (minus the 24-bit CRC).
// Unused TBS bits are zero padding, exactly like a real MAC PDU.
func Encode(g *phy.Grid, grant dci.Grant, payload []byte, cellID uint16) error {
	if grant.TBS < 24 || len(payload)*8 > grant.TBS-24 {
		return fmt.Errorf("pdsch: payload %d bytes exceeds TBS %d bits", len(payload), grant.TBS)
	}
	tb := make([]uint8, grant.TBS-24)
	copy(tb, bits.Unpack(payload, len(payload)*8))
	block := bits.AttachCRC(bits.CRC24A, tb)
	coded, err := convcode.EncodeAndMatch(block, grant.NBits)
	if err != nil {
		return fmt.Errorf("pdsch: %w", err)
	}
	bits.ScrambleInPlace(bits.PDSCHScramblingInit(grant.RNTI, cellID), coded)
	scheme, err := modulation.FromQm(grant.Qm)
	if err != nil {
		return fmt.Errorf("pdsch: %w", err)
	}
	syms := modulation.Map(scheme, coded)
	res := allocationREs(grant, len(syms))
	if len(res) < len(syms) {
		return fmt.Errorf("pdsch: allocation too small: %d REs for %d symbols", len(res), len(syms))
	}
	for i, re := range res {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
	return nil
}

// gatherAllocation copies the symbols of a grant's time-frequency
// allocation into syms in mapping order (symbol-major). It reports
// whether the allocation holds at least len(syms) REs.
func gatherAllocation(g *phy.Grid, grant dci.Grant, syms []complex128) bool {
	n := len(syms)
	i := 0
	for sym := grant.Time.StartSymbol; sym < grant.Time.StartSymbol+grant.Time.NumSymbols; sym++ {
		for prb := grant.StartPRB; prb < grant.StartPRB+grant.NumPRB; prb++ {
			base := prb * phy.SubcarriersPerPRB
			for off := 0; off < phy.SubcarriersPerPRB; off++ {
				if i == n {
					return true
				}
				syms[i] = g.At(sym, base+off)
				i++
			}
		}
	}
	return i == n
}

// Decode extracts and decodes a transport block addressed by the grant,
// returning the payload bytes (the TBS payload, CRC-verified) and
// whether the CRC passed.
func Decode(g *phy.Grid, grant dci.Grant, cellID uint16, n0 float64) ([]byte, bool) {
	out, ok := DecodeInto(nil, g, grant, cellID, n0)
	if !ok {
		return nil, false
	}
	return out, true
}

// DecodeInto is Decode appending the payload bytes to dst[:0], so
// per-slot callers can retain one byte buffer across slots and decode
// without allocating. On failure it returns dst[:0] (capacity retained)
// and false. All intermediate buffers come from a package-level scratch
// pool.
func DecodeInto(dst []byte, g *phy.Grid, grant dci.Grant, cellID uint16, n0 float64) ([]byte, bool) {
	dst = dst[:0]
	if grant.TBS < 24 {
		return dst, false
	}
	scheme, err := modulation.FromQm(grant.Qm)
	if err != nil {
		return dst, false
	}
	nSyms := grant.NBits / grant.Qm
	sc := scratchPool.Get().(*decodeScratch)
	defer scratchPool.Put(sc)
	syms := sc.symbols(nSyms)
	if !gatherAllocation(g, grant, syms) {
		return dst, false
	}
	llr := modulation.DemapInto(sc.llr, scheme, syms, n0)
	sc.llr = llr
	seq := sc.sequence(len(llr))
	bits.GoldSequenceInto(bits.PDSCHScramblingInit(grant.RNTI, cellID), seq)
	bits.DescrambleLLRInPlace(seq, llr)
	decoded := sc.vit.RecoverAndDecode(llr, grant.TBS) // TB payload + CRC24A
	payload, ok := bits.CheckCRC(bits.CRC24A, decoded)
	if !ok {
		return dst, false
	}
	return bits.AppendPacked(dst, payload), true
}

// FillRandom occupies a grant's REs with pseudo-random unit-energy QPSK
// symbols — user-plane PDSCH whose content the scope never reads. The
// seed keeps the fill deterministic per (slot, rnti).
func FillRandom(g *phy.Grid, grant dci.Grant, cellID uint16, slot int) {
	nSyms := grant.NBits / grant.Qm
	if nSyms < 1 {
		return
	}
	cinit := bits.PDSCHScramblingInit(grant.RNTI, cellID) ^ uint32(slot)<<8
	seq := bits.GoldSequence(cinit&0x7FFFFFFF, 2*nSyms)
	syms := modulation.Map(modulation.QPSK, seq)
	for i, re := range allocationREs(grant, nSyms) {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
}

// PBCH geometry: the synchronisation signal block occupies a fixed
// region the UE can find before knowing anything about the cell. We
// place it at symbols 4..7 in the SSB slot, 20 PRBs wide, starting at
// PBCHStartPRB.
const (
	PBCHStartPRB  = 0
	PBCHNumPRB    = 20
	PBCHStartSym  = 4
	PBCHNumSym    = 4
	pbchBits      = PBCHNumPRB * phy.SubcarriersPerPRB * PBCHNumSym * 2 // QPSK
	pbchBlockBits = 256                                                 // MIB payload + CRC, conv coded into pbchBits
)

func pbchREs() []phy.RE {
	out := make([]phy.RE, 0, PBCHNumPRB*phy.SubcarriersPerPRB*PBCHNumSym)
	for sym := PBCHStartSym; sym < PBCHStartSym+PBCHNumSym; sym++ {
		for sc := PBCHStartPRB * phy.SubcarriersPerPRB; sc < (PBCHStartPRB+PBCHNumPRB)*phy.SubcarriersPerPRB; sc++ {
			out = append(out, phy.RE{Symbol: sym, Subcarrier: sc})
		}
	}
	return out
}

// EncodePBCH writes the MIB bytes onto the PBCH region. mibData must fit
// pbchBlockBits-24 bits.
func EncodePBCH(g *phy.Grid, mibData []byte, cellID uint16) error {
	if len(mibData)*8 > pbchBlockBits-24 {
		return fmt.Errorf("pdsch: MIB %d bytes exceeds PBCH budget", len(mibData))
	}
	tb := make([]uint8, pbchBlockBits-24)
	copy(tb, bits.Unpack(mibData, len(mibData)*8))
	block := bits.AttachCRC(bits.CRC24A, tb)
	coded, err := convcode.EncodeAndMatch(block, pbchBits)
	if err != nil {
		return fmt.Errorf("pdsch: PBCH: %w", err)
	}
	bits.ScrambleInPlace(bits.PDCCHScramblingInit(0, cellID)^0x55555, coded)
	syms := modulation.Map(modulation.QPSK, coded)
	for i, re := range pbchREs() {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
	return nil
}

// DecodePBCH attempts to decode a MIB from the PBCH region.
func DecodePBCH(g *phy.Grid, cellID uint16, n0 float64) ([]byte, bool) {
	out, ok := DecodePBCHInto(nil, g, cellID, n0)
	if !ok {
		return nil, false
	}
	return out, true
}

// DecodePBCHInto is DecodePBCH appending the MIB bytes to dst[:0] with
// pooled scratch, mirroring DecodeInto: on failure it returns dst[:0]
// (capacity retained) and false.
func DecodePBCHInto(dst []byte, g *phy.Grid, cellID uint16, n0 float64) ([]byte, bool) {
	dst = dst[:0]
	const nSyms = PBCHNumPRB * phy.SubcarriersPerPRB * PBCHNumSym
	sc := scratchPool.Get().(*decodeScratch)
	defer scratchPool.Put(sc)
	syms := sc.symbols(nSyms)
	i := 0
	for sym := PBCHStartSym; sym < PBCHStartSym+PBCHNumSym; sym++ {
		for s := PBCHStartPRB * phy.SubcarriersPerPRB; s < (PBCHStartPRB+PBCHNumPRB)*phy.SubcarriersPerPRB; s++ {
			syms[i] = g.At(sym, s)
			i++
		}
	}
	llr := modulation.DemapInto(sc.llr, modulation.QPSK, syms, n0)
	sc.llr = llr
	seq := sc.sequence(len(llr))
	bits.GoldSequenceInto(bits.PDCCHScramblingInit(0, cellID)^0x55555, seq)
	bits.DescrambleLLRInPlace(seq, llr)
	decoded := sc.vit.RecoverAndDecode(llr, pbchBlockBits)
	payload, ok := bits.CheckCRC(bits.CRC24A, decoded)
	if !ok {
		return dst, false
	}
	return bits.AppendPacked(dst, payload), true
}
