package pdsch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

const cellID = 500

func addNoise(g *phy.Grid, snrdB float64, rng *rand.Rand) float64 {
	n0 := channel.SNRdBToN0(snrdB)
	sigma := math.Sqrt(n0 / 2)
	s := g.Samples()
	for i := range s {
		s[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return n0
}

// controlGrant builds a small low-rate grant like the ones carrying
// SIB1/RAR/MSG4 (QPSK-ish MCS on the 64QAM table).
func controlGrant(t testing.TB, rnti uint16, nprb, mcsIdx int) dci.Grant {
	t.Helper()
	cfg := dci.DefaultConfig(51)
	riv, err := phy.EncodeRIV(51, 2, nprb)
	if err != nil {
		t.Fatal(err)
	}
	d := dci.DCI{Format: dci.Format10, FreqAlloc: riv, TimeAlloc: 0, MCS: mcsIdx}
	g, err := dci.ToGrant(d, rnti, cfg, dci.LinkConfig{DMRSPerPRB: 12, Layers: 1, Table: mcs.TableQAM64})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEncodeDecodeRoundTripNoiseless(t *testing.T) {
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0xFFFF, 8, 5)
	payload := []byte("SIB1: cell configuration payload for round trip")
	if err := Encode(g, grant, payload, cellID); err != nil {
		t.Fatal(err)
	}
	got, ok := Decode(g, grant, cellID, 1e-4)
	if !ok {
		t.Fatal("decode failed on clean channel")
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("payload mismatch:\n got %q\nwant %q", got[:len(payload)], payload)
	}
	// Padding must be zero.
	for i := len(payload); i < len(got); i++ {
		if got[i] != 0 {
			t.Errorf("padding byte %d = %#x, want 0", i, got[i])
		}
	}
}

func TestDecodeSurvivesModerateNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g := phy.NewGrid(51)
		grant := controlGrant(t, 0x4601, 6, 4)
		payload := []byte("RRC Setup dedicated configuration")
		if err := Encode(g, grant, payload, cellID); err != nil {
			t.Fatal(err)
		}
		n0 := addNoise(g, 8, rng)
		if got, pass := Decode(g, grant, cellID, n0); pass && bytes.Equal(got[:len(payload)], payload) {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Errorf("decoded %d/%d at 8 dB, want >= 80%%", ok, trials)
	}
}

func TestDecodeFailsOnSilentGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := phy.NewGrid(51)
	n0 := addNoise(g, 10, rng) // noise only, no signal
	grant := controlGrant(t, 0x4601, 6, 4)
	if _, ok := Decode(g, grant, cellID, n0); ok {
		t.Error("decode passed CRC on noise-only grid")
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0x4601, 2, 0)
	huge := make([]byte, grant.TBS/8+10)
	if err := Encode(g, grant, huge, cellID); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestWrongRNTIScramblingFails(t *testing.T) {
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0x4601, 8, 5)
	payload := []byte("scrambled for RNTI 0x4601")
	if err := Encode(g, grant, payload, cellID); err != nil {
		t.Fatal(err)
	}
	wrong := grant
	wrong.RNTI = 0x4602
	if _, ok := Decode(g, wrong, cellID, 1e-4); ok {
		t.Error("decode with wrong RNTI scrambling passed CRC")
	}
}

func TestFillRandomOccupiesAllocation(t *testing.T) {
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0x4601, 8, 5)
	FillRandom(g, grant, cellID, 12)
	nSyms := grant.NBits / grant.Qm
	res := allocationREs(grant, nSyms)
	nonZero := 0
	for _, re := range res {
		if g.At(re.Symbol, re.Subcarrier) != 0 {
			nonZero++
		}
	}
	if nonZero != len(res) {
		t.Errorf("FillRandom left %d/%d REs empty", len(res)-nonZero, len(res))
	}
	// Unit energy on average.
	var e float64
	for _, re := range res {
		v := g.At(re.Symbol, re.Subcarrier)
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if avg := e / float64(len(res)); math.Abs(avg-1) > 0.05 {
		t.Errorf("fill average energy %.3f, want ~1", avg)
	}
}

func TestPBCHRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := phy.NewGrid(51)
	mib := []byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0x40}
	if err := EncodePBCH(g, mib, cellID); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 5, rng) // PBCH is heavily coded; must survive low SNR
	got, ok := DecodePBCH(g, cellID, n0)
	if !ok {
		t.Fatal("PBCH decode failed at 5 dB")
	}
	if !bytes.Equal(got[:len(mib)], mib) {
		t.Errorf("MIB mismatch: got %x want %x", got[:len(mib)], mib)
	}
}

func TestPBCHRejectsOversizedMIB(t *testing.T) {
	g := phy.NewGrid(51)
	if err := EncodePBCH(g, make([]byte, 100), cellID); err == nil {
		t.Error("oversized MIB accepted")
	}
}

func TestPBCHFailsWithoutSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := phy.NewGrid(51)
	n0 := addNoise(g, 10, rng)
	if _, ok := DecodePBCH(g, cellID, n0); ok {
		t.Error("PBCH decode passed on noise-only grid")
	}
}

func TestAllocationREsOrderAndBounds(t *testing.T) {
	grant := controlGrant(t, 1, 3, 2)
	res := allocationREs(grant, 1<<20)
	want := grant.NumPRB * phy.SubcarriersPerPRB * grant.Time.NumSymbols
	if len(res) != want {
		t.Fatalf("allocation REs = %d, want %d", len(res), want)
	}
	for _, re := range res {
		if re.Symbol < grant.Time.StartSymbol || re.Symbol >= grant.Time.StartSymbol+grant.Time.NumSymbols {
			t.Fatalf("RE symbol %d outside allocation", re.Symbol)
		}
		prb := re.Subcarrier / phy.SubcarriersPerPRB
		if prb < grant.StartPRB || prb >= grant.StartPRB+grant.NumPRB {
			t.Fatalf("RE PRB %d outside allocation", prb)
		}
	}
}

func BenchmarkEncodeControlPDSCH(b *testing.B) {
	grant := controlGrant(b, 0x4601, 8, 5)
	payload := []byte("RRC Setup dedicated configuration payload")
	g := phy.NewGrid(51)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Encode(g, grant, payload, cellID); err != nil {
			b.Fatal(err)
		}
	}
}
