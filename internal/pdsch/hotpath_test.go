package pdsch

import (
	"bytes"
	"math/rand"
	"testing"

	"nrscope/internal/phy"
	"nrscope/internal/raceflag"
)

// TestDecodeIntoMatchesDecode: the pooled-scratch path must return the
// same payload and verdict as the allocating wrapper, and reuse the
// caller's byte buffer.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0x4601, 12, 6)
	payload := []byte("MSG4: RRC Setup payload for hot path equivalence")
	if err := Encode(g, grant, payload, cellID); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 18, rng)

	want, wantOK := Decode(g, grant, cellID, n0)
	buf := make([]byte, 0, 8) // deliberately too small: must grow once
	got, gotOK := DecodeInto(buf, g, grant, cellID, n0)
	if gotOK != wantOK {
		t.Fatalf("DecodeInto ok = %v, Decode ok = %v", gotOK, wantOK)
	}
	if wantOK && !bytes.Equal(got, want) {
		t.Fatalf("DecodeInto payload %x != Decode payload %x", got, want)
	}

	// Failure path must keep the buffer's capacity for the next slot.
	// (An exactly-silent grid trivially "decodes" to the all-zero block,
	// so the failure case is a noise-only grid.)
	empty := phy.NewGrid(51)
	noiseN0 := addNoise(empty, 10, rng)
	out, ok := DecodeInto(got, empty, grant, cellID, noiseN0)
	if ok {
		t.Fatal("DecodeInto succeeded on a silent grid")
	}
	if len(out) != 0 || cap(out) < cap(got) {
		t.Fatalf("failed DecodeInto returned len %d cap %d, want empty with cap >= %d",
			len(out), cap(out), cap(got))
	}
}

// TestDecodePBCHIntoMatchesDecodePBCH mirrors the equivalence test for
// the MIB path.
func TestDecodePBCHIntoMatchesDecodePBCH(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := phy.NewGrid(51)
	mib := []byte{0x12, 0x34, 0x56, 0x78}
	if err := EncodePBCH(g, mib, cellID); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 15, rng)
	want, wantOK := DecodePBCH(g, cellID, n0)
	got, gotOK := DecodePBCHInto(nil, g, cellID, n0)
	if gotOK != wantOK {
		t.Fatalf("DecodePBCHInto ok = %v, DecodePBCH ok = %v", gotOK, wantOK)
	}
	if wantOK && !bytes.Equal(got, want) {
		t.Fatalf("DecodePBCHInto payload %x != DecodePBCH payload %x", got, want)
	}
}

// TestDecodeIntoZeroAlloc: at steady state (warm scratch pool, grown
// byte buffer) the per-slot decode paths must not allocate.
func TestDecodeIntoZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(23))
	g := phy.NewGrid(51)
	grant := controlGrant(t, 0x4601, 12, 6)
	payload := []byte("steady state transport block")
	if err := Encode(g, grant, payload, cellID); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 18, rng)
	buf, ok := DecodeInto(nil, g, grant, cellID, n0) // warm pool + buffer
	if !ok {
		t.Fatal("warm-up decode failed")
	}
	if n := testing.AllocsPerRun(100, func() {
		buf, _ = DecodeInto(buf, g, grant, cellID, n0)
	}); n != 0 {
		t.Errorf("DecodeInto: %.1f allocs/op, want 0", n)
	}

	pb := phy.NewGrid(51)
	if err := EncodePBCH(pb, []byte{1, 2, 3, 4}, cellID); err != nil {
		t.Fatal(err)
	}
	pn0 := addNoise(pb, 15, rng)
	mibBuf, ok := DecodePBCHInto(nil, pb, cellID, pn0)
	if !ok {
		t.Fatal("warm-up PBCH decode failed")
	}
	if n := testing.AllocsPerRun(100, func() {
		mibBuf, _ = DecodePBCHInto(mibBuf, pb, cellID, pn0)
	}); n != 0 {
		t.Errorf("DecodePBCHInto: %.1f allocs/op, want 0", n)
	}
}

// BenchmarkDecodeControlPDSCH measures the steady-state decode path.
func BenchmarkDecodeControlPDSCH(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	g := phy.NewGrid(51)
	grant := controlGrant(b, 0x4601, 12, 6)
	if err := Encode(g, grant, []byte("bench transport block"), cellID); err != nil {
		b.Fatal(err)
	}
	n0 := addNoise(g, 18, rng)
	buf, ok := DecodeInto(nil, g, grant, cellID, n0)
	if !ok {
		b.Fatal("decode failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = DecodeInto(buf, g, grant, cellID, n0)
	}
}
