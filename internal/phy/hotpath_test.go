package phy

import (
	"testing"

	"nrscope/internal/raceflag"
)

func TestALIndex(t *testing.T) {
	for i, al := range AggregationLevels {
		if got := ALIndex(al); got != i {
			t.Errorf("ALIndex(%d) = %d, want %d", al, got, i)
		}
	}
	for _, bad := range []int{0, 3, 5, 32, -1} {
		if got := ALIndex(bad); got != -1 {
			t.Errorf("ALIndex(%d) = %d, want -1", bad, got)
		}
	}
}

func TestSameRegion(t *testing.T) {
	base := CORESET{ID: 0, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0}
	sameButID := base
	sameButID.ID = 1
	if !base.SameRegion(sameButID) {
		t.Error("same geometry, different ID: want SameRegion true")
	}
	for _, mutate := range []func(*CORESET){
		func(c *CORESET) { c.StartPRB = 6 },
		func(c *CORESET) { c.NumPRB = 24 },
		func(c *CORESET) { c.Duration = 2 },
		func(c *CORESET) { c.StartSym = 2 },
	} {
		other := base
		mutate(&other)
		if base.SameRegion(other) {
			t.Errorf("geometry %+v vs %+v: want SameRegion false", base, other)
		}
	}
}

func TestAppendSlotCandidatesMatchesSlotCandidates(t *testing.T) {
	cs := CORESET{ID: 1, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0}
	ss := SearchSpace{ID: 1, Type: UESearchSpace, Candidates: DefaultUECandidates()}
	var buf []Candidate
	for slot := 0; slot < 20; slot++ {
		for _, rnti := range []uint16{0x4601, 0x4602, 0xFFF0} {
			want := SlotCandidates(ss, cs, rnti, slot)
			buf = AppendSlotCandidates(buf[:0], ss, cs, rnti, slot)
			if len(buf) != len(want) {
				t.Fatalf("slot %d rnti %#x: %d candidates vs %d", slot, rnti, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("slot %d rnti %#x: candidate %d differs", slot, rnti, i)
				}
			}
		}
	}
	// Warm buffer: enumeration must not allocate.
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendSlotCandidates(buf[:0], ss, cs, 0x4601, 7)
	}); n != 0 {
		t.Errorf("AppendSlotCandidates: %.1f allocs/op, want 0", n)
	}
}
