package phy

import "fmt"

// Grid is one slot's resource grid: SymbolsPerSlot OFDM symbols by
// 12·NumPRB subcarriers of complex modulation symbols. It is the unit of
// data the simulated radio hands to NR-Scope (one "slot data" block in
// the paper's Fig. 4 pipeline).
type Grid struct {
	NumPRB int
	re     []complex128 // row-major: symbol * width + subcarrier
}

// NewGrid allocates an all-zero grid for numPRB resource blocks.
func NewGrid(numPRB int) *Grid {
	if numPRB <= 0 {
		panic(fmt.Sprintf("phy: NewGrid(%d)", numPRB))
	}
	return &Grid{
		NumPRB: numPRB,
		re:     make([]complex128, SymbolsPerSlot*numPRB*SubcarriersPerPRB),
	}
}

// Width returns the number of subcarriers.
func (g *Grid) Width() int { return g.NumPRB * SubcarriersPerPRB }

// At returns the resource element at (symbol, subcarrier).
func (g *Grid) At(symbol, subcarrier int) complex128 {
	return g.re[symbol*g.Width()+subcarrier]
}

// Set writes the resource element at (symbol, subcarrier).
func (g *Grid) Set(symbol, subcarrier int, v complex128) {
	g.re[symbol*g.Width()+subcarrier] = v
}

// Clone returns a deep copy; the scheduler copies slot data before
// handing it to a worker (paper §4).
func (g *Grid) Clone() *Grid {
	out := &Grid{NumPRB: g.NumPRB, re: make([]complex128, len(g.re))}
	copy(out.re, g.re)
	return out
}

// Samples exposes the raw RE array for channel impairment application.
// Mutating it mutates the grid.
func (g *Grid) Samples() []complex128 { return g.re }

// Clear zeroes the grid in place for reuse.
func (g *Grid) Clear() {
	for i := range g.re {
		g.re[i] = 0
	}
}

// RE addresses a single resource element.
type RE struct {
	Symbol     int
	Subcarrier int
}

// PRBSymbolREs enumerates the 12 REs of one PRB in one OFDM symbol
// (i.e. one REG), in ascending subcarrier order.
func PRBSymbolREs(prb, symbol int) []RE {
	out := make([]RE, SubcarriersPerPRB)
	for i := range out {
		out[i] = RE{Symbol: symbol, Subcarrier: prb*SubcarriersPerPRB + i}
	}
	return out
}
