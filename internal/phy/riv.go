package phy

import "fmt"

// Resource allocation type 1 RIV coding (TS 38.214 §5.1.2.2.2).
// A contiguous allocation of L PRBs starting at PRB S within a bandwidth
// part of N PRBs is encoded as a single resource indication value.

// EncodeRIV encodes (start, length) over a BWP of n PRBs.
func EncodeRIV(n, start, length int) (uint32, error) {
	if length < 1 || start < 0 || start+length > n {
		return 0, fmt.Errorf("phy: RIV allocation start=%d len=%d exceeds BWP of %d PRBs", start, length, n)
	}
	if length-1 <= n/2 {
		return uint32(n*(length-1) + start), nil
	}
	return uint32(n*(n-length+1) + (n - 1 - start)), nil
}

// DecodeRIV inverts EncodeRIV for a BWP of n PRBs.
func DecodeRIV(n int, riv uint32) (start, length int, err error) {
	v := int(riv)
	length = v/n + 1
	start = v % n
	if start+length > n {
		// Mirrored branch of the encoding.
		length = n - length + 2
		start = n - 1 - start
	}
	if length < 1 || start < 0 || start+length > n {
		return 0, 0, fmt.Errorf("phy: RIV %d decodes to invalid allocation for %d PRBs", riv, n)
	}
	return start, length, nil
}

// RIVBits returns the DCI field width needed for any RIV over n PRBs:
// ceil(log2(n(n+1)/2)).
func RIVBits(n int) int {
	max := n * (n + 1) / 2
	bits := 0
	for 1<<uint(bits) < max {
		bits++
	}
	return bits
}

// TimeAlloc is a time-domain resource allocation: a contiguous span of
// OFDM symbols within the slot (PDSCH mapping type A rows of the default
// tables collapse to this).
type TimeAlloc struct {
	StartSymbol int
	NumSymbols  int
}

// DefaultTimeAllocTable is a simplified TS 38.214 Table 5.1.2.1.1-2: the
// time-domain row index carried in the DCI indexes this table. Row 0 is
// the full-slot data allocation the cells in the paper use for most
// traffic; later rows are shorter allocations.
var DefaultTimeAllocTable = []TimeAlloc{
	{StartSymbol: 2, NumSymbols: 12},
	{StartSymbol: 2, NumSymbols: 10},
	{StartSymbol: 2, NumSymbols: 8},
	{StartSymbol: 2, NumSymbols: 6},
	{StartSymbol: 2, NumSymbols: 4},
	{StartSymbol: 8, NumSymbols: 6},
	{StartSymbol: 4, NumSymbols: 10},
	{StartSymbol: 2, NumSymbols: 2},
}

// Validate checks the time allocation fits a slot.
func (t TimeAlloc) Validate() error {
	if t.StartSymbol < 0 || t.NumSymbols < 1 || t.StartSymbol+t.NumSymbols > SymbolsPerSlot {
		return fmt.Errorf("phy: time allocation %+v exceeds slot", t)
	}
	return nil
}
