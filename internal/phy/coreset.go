package phy

import "fmt"

// PDCCH control-channel geometry (TS 38.211 §7.3.2, TS 38.213 §10.1).
//
// A REG (resource-element group) is one PRB in one OFDM symbol: 12 REs of
// which 3 carry DMRS (subcarriers 1, 5, 9 within the PRB) and 9 carry
// control data. A CCE is 6 REGs, so one CCE carries 54 data REs = 108
// QPSK-modulated bits. A DCI candidate at aggregation level L occupies L
// contiguous CCEs (non-interleaved mapping).

// REGDMRSOffsets are the subcarrier offsets of the PDCCH DMRS within a REG.
var REGDMRSOffsets = [3]int{1, 5, 9}

// REGDataOffsets are the 9 data subcarrier offsets within a REG.
var REGDataOffsets = [9]int{0, 2, 3, 4, 6, 7, 8, 10, 11}

const (
	// REGsPerCCE is fixed by the standard.
	REGsPerCCE = 6
	// DataREsPerREG is 12 minus the 3 DMRS REs.
	DataREsPerREG = 9
	// BitsPerCCE is the QPSK payload capacity of one CCE.
	BitsPerCCE = REGsPerCCE * DataREsPerREG * 2 // 108
)

// AggregationLevels enumerates the valid DCI aggregation levels.
var AggregationLevels = [5]int{1, 2, 4, 8, 16}

// ALIndex returns the index of aggregation level l within
// AggregationLevels, or -1 when l is not a valid level. Flat per-position
// data structures (the blind decoder's position arena) index by it.
func ALIndex(l int) int {
	switch l {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	case 16:
		return 4
	}
	return -1
}

// CORESET describes a control resource set: a block of PRBs over one or
// two leading OFDM symbols of the slot.
type CORESET struct {
	ID        int
	StartPRB  int // first PRB of the CORESET within the grid
	NumPRB    int // width in PRBs; NumPRB*Duration must be a multiple of 6
	Duration  int // OFDM symbols, 1 or 2
	StartSym  int // first OFDM symbol (usually 0)
	Interleav bool
}

// Validate checks the CORESET geometry.
func (c CORESET) Validate() error {
	if c.Duration < 1 || c.Duration > 2 {
		return fmt.Errorf("phy: CORESET duration %d not in {1,2}", c.Duration)
	}
	if c.NumPRB <= 0 || (c.NumPRB*c.Duration)%REGsPerCCE != 0 {
		return fmt.Errorf("phy: CORESET %d PRBs x %d symbols is not a whole number of CCEs", c.NumPRB, c.Duration)
	}
	if c.StartPRB < 0 || c.StartSym < 0 || c.StartSym+c.Duration > SymbolsPerSlot {
		return fmt.Errorf("phy: CORESET position out of slot bounds")
	}
	return nil
}

// NumCCE returns the CORESET capacity in CCEs.
func (c CORESET) NumCCE() int { return c.NumPRB * c.Duration / REGsPerCCE }

// SameRegion reports whether two CORESETs cover the same control-region
// resource elements (identical geometry; the ID — and with it the
// search-space hashing family — may differ). CCE indices, and therefore
// occupancy masks, are interchangeable exactly between same-region
// CORESETs.
func (c CORESET) SameRegion(o CORESET) bool {
	return c.StartPRB == o.StartPRB && c.NumPRB == o.NumPRB &&
		c.Duration == o.Duration && c.StartSym == o.StartSym
}

// REGPosition returns the (prb, symbol) of REG index r under the
// time-first REG numbering of TS 38.211 §7.3.2.2: REGs are numbered in
// increasing order of symbol first, then PRB.
func (c CORESET) REGPosition(r int) (prb, symbol int) {
	prb = c.StartPRB + r/c.Duration
	symbol = c.StartSym + r%c.Duration
	return prb, symbol
}

// CCEREGs returns the REG indices of CCE i (non-interleaved mapping:
// CCE i owns REGs 6i .. 6i+5).
func (c CORESET) CCEREGs(cce int) [REGsPerCCE]int {
	var out [REGsPerCCE]int
	for j := 0; j < REGsPerCCE; j++ {
		out[j] = cce*REGsPerCCE + j
	}
	return out
}

// CandidateDataREs enumerates, in mapping order, the data REs of a DCI
// candidate occupying aggregation-level-many CCEs starting at startCCE.
func (c CORESET) CandidateDataREs(startCCE, aggLevel int) []RE {
	out := make([]RE, 0, aggLevel*REGsPerCCE*DataREsPerREG)
	for cce := startCCE; cce < startCCE+aggLevel; cce++ {
		for _, reg := range c.CCEREGs(cce) {
			prb, sym := c.REGPosition(reg)
			for _, off := range REGDataOffsets {
				out = append(out, RE{Symbol: sym, Subcarrier: prb*SubcarriersPerPRB + off})
			}
		}
	}
	return out
}

// CandidateDMRSREs enumerates the DMRS REs of a candidate, in order.
func (c CORESET) CandidateDMRSREs(startCCE, aggLevel int) []RE {
	out := make([]RE, 0, aggLevel*REGsPerCCE*len(REGDMRSOffsets))
	for cce := startCCE; cce < startCCE+aggLevel; cce++ {
		for _, reg := range c.CCEREGs(cce) {
			prb, sym := c.REGPosition(reg)
			for _, off := range REGDMRSOffsets {
				out = append(out, RE{Symbol: sym, Subcarrier: prb*SubcarriersPerPRB + off})
			}
		}
	}
	return out
}

// SearchSpaceType distinguishes common from UE-specific search spaces.
type SearchSpaceType int

// Search space types (TS 38.213 §10.1).
const (
	CommonSearchSpace SearchSpaceType = iota
	UESearchSpace
)

// String implements fmt.Stringer.
func (t SearchSpaceType) String() string {
	if t == CommonSearchSpace {
		return "common"
	}
	return "ue"
}

// SearchSpace configures blind-decoding candidates within a CORESET.
type SearchSpace struct {
	ID         int
	Type       SearchSpaceType
	Candidates map[int]int // aggregation level -> number of candidates M_L
}

// DefaultCommonCandidates mirrors the Type0/Type1 common search space
// candidate counts used by the cells in the paper's evaluation.
func DefaultCommonCandidates() map[int]int {
	return map[int]int{4: 4, 8: 2, 16: 1}
}

// DefaultUECandidates mirrors a typical UE-specific configuration.
func DefaultUECandidates() map[int]int {
	return map[int]int{1: 6, 2: 6, 4: 4, 8: 2, 16: 1}
}

// hashing multipliers A_p of TS 38.213 §10.1, indexed by p mod 3.
var hashA = [3]uint64{39827, 39829, 39839}

const hashD = 65537

// CandidateCCE computes the first CCE of candidate m at aggregation
// level L in the given slot, per the TS 38.213 §10.1 hashing function.
// For a common search space Y is 0; for a UE-specific search space Y is
// derived from the C-RNTI and recursed once per slot. coresetID selects
// the multiplier family.
func CandidateCCE(ss SearchSpace, cs CORESET, rnti uint16, slot int, aggLevel, m int) (int, bool) {
	nCCE := cs.NumCCE()
	if aggLevel > nCCE {
		return 0, false
	}
	mL := ss.Candidates[aggLevel]
	if m >= mL || mL == 0 {
		return 0, false
	}
	var y uint64
	if ss.Type == UESearchSpace {
		y = uint64(rnti)
		if y == 0 {
			y = 1
		}
		a := hashA[cs.ID%3]
		for p := 0; p <= slot; p++ {
			y = a * y % hashD
		}
	}
	span := nCCE / aggLevel
	if span == 0 {
		return 0, false
	}
	idx := (y + uint64(m*nCCE/(aggLevel*mL))) % uint64(span)
	return aggLevel * int(idx), true
}

// Candidate identifies one blind-decoding opportunity.
type Candidate struct {
	AggLevel int
	Index    int // candidate index m within the level
	StartCCE int
}

// SlotCandidates enumerates every candidate of the search space for a
// slot, across all aggregation levels, in decreasing-level order (the
// order real blind decoders use: fewer large candidates first).
func SlotCandidates(ss SearchSpace, cs CORESET, rnti uint16, slot int) []Candidate {
	return AppendSlotCandidates(nil, ss, cs, rnti, slot)
}

// AppendSlotCandidates is SlotCandidates appending into dst, so per-UE
// candidate enumeration in the per-TTI blind-decode loop can reuse one
// buffer per worker instead of allocating per UE per slot.
func AppendSlotCandidates(dst []Candidate, ss SearchSpace, cs CORESET, rnti uint16, slot int) []Candidate {
	for i := len(AggregationLevels) - 1; i >= 0; i-- {
		l := AggregationLevels[i]
		mL := ss.Candidates[l]
		for m := 0; m < mL; m++ {
			if cce, ok := CandidateCCE(ss, cs, rnti, slot, l, m); ok {
				dst = append(dst, Candidate{AggLevel: l, Index: m, StartCCE: cce})
			}
		}
	}
	return dst
}
