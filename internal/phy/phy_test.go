package phy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNumerology(t *testing.T) {
	cases := []struct {
		mu       Numerology
		scs      int
		slots    int
		duration time.Duration
	}{
		{Mu0, 15, 10, time.Millisecond},
		{Mu1, 30, 20, 500 * time.Microsecond},
		{Mu2, 60, 40, 250 * time.Microsecond},
	}
	for _, c := range cases {
		if c.mu.SCSkHz() != c.scs {
			t.Errorf("%v: SCS = %d, want %d", c.mu, c.mu.SCSkHz(), c.scs)
		}
		if c.mu.SlotsPerFrame() != c.slots {
			t.Errorf("%v: slots/frame = %d, want %d", c.mu, c.mu.SlotsPerFrame(), c.slots)
		}
		if c.mu.SlotDuration() != c.duration {
			t.Errorf("%v: TTI = %v, want %v", c.mu, c.mu.SlotDuration(), c.duration)
		}
		if !c.mu.Valid() {
			t.Errorf("%v not valid", c.mu)
		}
	}
}

func TestSlotRefNextWraps(t *testing.T) {
	s := SlotRef{SFN: MaxSFN - 1, Slot: 19}
	next := s.Next(Mu1)
	if next.SFN != 0 || next.Slot != 0 {
		t.Errorf("Next at cycle end = %v, want 0.0", next)
	}
	if got := (SlotRef{SFN: 2, Slot: 3}).Index(Mu1); got != 43 {
		t.Errorf("Index = %d, want 43", got)
	}
}

func TestPRBsForBandwidth(t *testing.T) {
	// The paper's cells: 20 MHz @ 30 kHz (srsRAN/Mosolab/Amarisoft),
	// 10 and 15 MHz @ 15 kHz (T-Mobile n25/n71).
	cases := []struct {
		mhz  int
		mu   Numerology
		want int
	}{{20, Mu1, 51}, {10, Mu0, 52}, {15, Mu0, 79}}
	for _, c := range cases {
		got, err := PRBsForBandwidth(c.mhz, c.mu)
		if err != nil || got != c.want {
			t.Errorf("PRBsForBandwidth(%d, %v) = %d, %v; want %d", c.mhz, c.mu, got, err, c.want)
		}
	}
	if _, err := PRBsForBandwidth(7, Mu1); err == nil {
		t.Error("unknown bandwidth did not error")
	}
}

func TestGridSetAtClone(t *testing.T) {
	g := NewGrid(51)
	if g.Width() != 612 {
		t.Fatalf("Width = %d, want 612", g.Width())
	}
	g.Set(3, 100, complex(1, -1))
	if g.At(3, 100) != complex(1, -1) {
		t.Error("Set/At mismatch")
	}
	c := g.Clone()
	g.Set(3, 100, 0)
	if c.At(3, 100) != complex(1, -1) {
		t.Error("Clone not deep")
	}
	c.Clear()
	if c.At(3, 100) != 0 {
		t.Error("Clear left data")
	}
}

func TestCORESETGeometry(t *testing.T) {
	cs := CORESET{ID: 0, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	if cs.NumCCE() != 8 {
		t.Errorf("NumCCE = %d, want 8", cs.NumCCE())
	}
	// Duration-2 CORESET: REG numbering is time-first.
	cs2 := CORESET{ID: 1, StartPRB: 10, NumPRB: 24, Duration: 2, StartSym: 0}
	if err := cs2.Validate(); err != nil {
		t.Fatal(err)
	}
	prb, sym := cs2.REGPosition(0)
	if prb != 10 || sym != 0 {
		t.Errorf("REG 0 at (%d,%d), want (10,0)", prb, sym)
	}
	prb, sym = cs2.REGPosition(1)
	if prb != 10 || sym != 1 {
		t.Errorf("REG 1 at (%d,%d), want (10,1)", prb, sym)
	}
	prb, sym = cs2.REGPosition(2)
	if prb != 11 || sym != 0 {
		t.Errorf("REG 2 at (%d,%d), want (11,0)", prb, sym)
	}
}

func TestCORESETValidation(t *testing.T) {
	bad := []CORESET{
		{NumPRB: 5, Duration: 1},                // not a whole CCE count
		{NumPRB: 48, Duration: 3},               // duration out of range
		{NumPRB: 48, Duration: 1, StartSym: 14}, // out of slot
		{NumPRB: -6, Duration: 1},               // negative
		{NumPRB: 48, Duration: 1, StartPRB: -1}, // negative PRB
		{NumPRB: 9, Duration: 2, StartSym: 0},   // 18 REGs ok? 9*2=18 -> 3 CCEs: actually valid
	}
	for i, cs := range bad[:5] {
		if err := cs.Validate(); err == nil {
			t.Errorf("case %d: invalid CORESET %+v accepted", i, cs)
		}
	}
	if err := bad[5].Validate(); err != nil {
		t.Errorf("9 PRB x 2 symbol CORESET rejected: %v", err)
	}
}

func TestCandidateDataREsCount(t *testing.T) {
	cs := CORESET{ID: 0, NumPRB: 48, Duration: 1}
	for _, al := range AggregationLevels {
		if al > cs.NumCCE() {
			continue
		}
		res := cs.CandidateDataREs(0, al)
		if len(res) != al*54 {
			t.Errorf("AL%d: %d data REs, want %d", al, len(res), al*54)
		}
		dmrs := cs.CandidateDMRSREs(0, al)
		if len(dmrs) != al*18 {
			t.Errorf("AL%d: %d DMRS REs, want %d", al, len(dmrs), al*18)
		}
		// No overlap between data and DMRS sets.
		seen := make(map[RE]bool, len(res))
		for _, re := range res {
			seen[re] = true
		}
		for _, re := range dmrs {
			if seen[re] {
				t.Errorf("AL%d: RE %+v in both data and DMRS", al, re)
			}
		}
	}
}

func TestBitsPerCCE(t *testing.T) {
	if BitsPerCCE != 108 {
		t.Fatalf("BitsPerCCE = %d, want 108", BitsPerCCE)
	}
}

func TestCandidateCCEInRange(t *testing.T) {
	cs := CORESET{ID: 0, NumPRB: 48, Duration: 1} // 8 CCEs
	ss := SearchSpace{Type: UESearchSpace, Candidates: DefaultUECandidates()}
	f := func(rnti uint16, slotRaw uint8) bool {
		slot := int(slotRaw % 20)
		for _, c := range SlotCandidates(ss, cs, rnti, slot) {
			if c.StartCCE < 0 || c.StartCCE+c.AggLevel > cs.NumCCE() {
				return false
			}
			if c.StartCCE%c.AggLevel != 0 {
				return false // candidates are AL-aligned
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCandidateCCECommonIsRNTIIndependent(t *testing.T) {
	cs := CORESET{ID: 0, NumPRB: 48, Duration: 1}
	ss := SearchSpace{Type: CommonSearchSpace, Candidates: DefaultCommonCandidates()}
	a := SlotCandidates(ss, cs, 0x1111, 3)
	b := SlotCandidates(ss, cs, 0x2222, 3)
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("common SS candidate %d differs across RNTIs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCandidateCCEUEVariesWithSlot(t *testing.T) {
	cs := CORESET{ID: 1, NumPRB: 96, Duration: 1} // 16 CCEs
	ss := SearchSpace{Type: UESearchSpace, Candidates: map[int]int{1: 6}}
	varies := false
	first, _ := CandidateCCE(ss, cs, 0x4601, 0, 1, 0)
	for slot := 1; slot < 20; slot++ {
		c, ok := CandidateCCE(ss, cs, 0x4601, slot, 1, 0)
		if !ok {
			t.Fatalf("no candidate at slot %d", slot)
		}
		if c != first {
			varies = true
		}
	}
	if !varies {
		t.Error("UE search space hashing does not vary with slot")
	}
}

func TestCandidateCCERejectsOversizeAL(t *testing.T) {
	cs := CORESET{ID: 0, NumPRB: 24, Duration: 1} // 4 CCEs
	ss := SearchSpace{Type: CommonSearchSpace, Candidates: map[int]int{8: 2}}
	if _, ok := CandidateCCE(ss, cs, 0, 0, 8, 0); ok {
		t.Error("AL8 accepted in a 4-CCE CORESET")
	}
}

func TestRIVRoundTrip(t *testing.T) {
	for _, n := range []int{24, 51, 52, 79, 106, 273} {
		for start := 0; start < n; start++ {
			for length := 1; start+length <= n; length++ {
				riv, err := EncodeRIV(n, start, length)
				if err != nil {
					t.Fatalf("EncodeRIV(%d,%d,%d): %v", n, start, length, err)
				}
				s, l, err := DecodeRIV(n, riv)
				if err != nil || s != start || l != length {
					t.Fatalf("DecodeRIV(%d,%d) = (%d,%d,%v), want (%d,%d)", n, riv, s, l, err, start, length)
				}
			}
		}
	}
}

func TestRIVUnique(t *testing.T) {
	n := 51
	seen := make(map[uint32][2]int)
	for start := 0; start < n; start++ {
		for length := 1; start+length <= n; length++ {
			riv, err := EncodeRIV(n, start, length)
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := seen[riv]; dup {
				t.Fatalf("RIV %d for both %v and (%d,%d)", riv, prev, start, length)
			}
			seen[riv] = [2]int{start, length}
		}
	}
}

func TestRIVBits(t *testing.T) {
	// 51 PRBs: 51*52/2 = 1326 allocations -> 11 bits.
	if got := RIVBits(51); got != 11 {
		t.Errorf("RIVBits(51) = %d, want 11", got)
	}
	if got := RIVBits(273); got != 16 {
		t.Errorf("RIVBits(273) = %d, want 16", got)
	}
}

func TestEncodeRIVRejectsBad(t *testing.T) {
	if _, err := EncodeRIV(51, 50, 2); err == nil {
		t.Error("overflowing allocation accepted")
	}
	if _, err := EncodeRIV(51, 0, 0); err == nil {
		t.Error("zero-length allocation accepted")
	}
}

func TestTimeAllocTable(t *testing.T) {
	for i, ta := range DefaultTimeAllocTable {
		if err := ta.Validate(); err != nil {
			t.Errorf("row %d: %v", i, err)
		}
	}
	bad := TimeAlloc{StartSymbol: 10, NumSymbols: 6}
	if err := bad.Validate(); err == nil {
		t.Error("overlong time allocation accepted")
	}
}

func TestTDDPattern(t *testing.T) {
	p, err := NewTDDPattern("DDDSU")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "DDDSU" {
		t.Errorf("String = %q", p.String())
	}
	wantDir := []SlotDirection{SlotDownlink, SlotDownlink, SlotDownlink, SlotSpecial, SlotUplink}
	for i := 0; i < 10; i++ {
		if p.Direction(i) != wantDir[i%5] {
			t.Errorf("slot %d: direction %v, want %v", i, p.Direction(i), wantDir[i%5])
		}
	}
	if !p.HasDownlinkControl(3) || p.HasDownlinkControl(4) {
		t.Error("control availability wrong for S/U slots")
	}
	if p.HasDownlinkData(3) || !p.HasDownlinkData(0) {
		t.Error("data availability wrong")
	}
	if got := p.DownlinkDutyCycle(); got != 0.6 {
		t.Errorf("duty cycle %.2f, want 0.6", got)
	}
	if fdd := FDD(); !fdd.HasDownlinkData(12345) {
		t.Error("FDD pattern must always be downlink")
	}
	if _, err := NewTDDPattern("DDX"); err == nil {
		t.Error("bad pattern char accepted")
	}
	if _, err := NewTDDPattern(""); err == nil {
		t.Error("empty pattern accepted")
	}
}
