package phy

import "fmt"

// SlotDirection classifies a slot in the TDD pattern.
type SlotDirection int

// Slot directions. Special slots carry downlink control (so PDCCH is
// still decodable) plus the guard and uplink pilot regions.
const (
	SlotDownlink SlotDirection = iota
	SlotUplink
	SlotSpecial
)

// String implements fmt.Stringer.
func (d SlotDirection) String() string {
	switch d {
	case SlotDownlink:
		return "D"
	case SlotUplink:
		return "U"
	case SlotSpecial:
		return "S"
	default:
		return "?"
	}
}

// TDDPattern is a repeating slot-direction pattern, e.g. the band n41/n48
// cells in the paper use DDDSU-like patterns at 30 kHz SCS. An FDD cell
// is modelled as an all-downlink pattern on the downlink carrier.
type TDDPattern struct {
	pattern []SlotDirection
}

// NewTDDPattern parses a pattern string of D/U/S characters.
func NewTDDPattern(s string) (TDDPattern, error) {
	if len(s) == 0 {
		return TDDPattern{}, fmt.Errorf("phy: empty TDD pattern")
	}
	p := make([]SlotDirection, len(s))
	for i, c := range s {
		switch c {
		case 'D', 'd':
			p[i] = SlotDownlink
		case 'U', 'u':
			p[i] = SlotUplink
		case 'S', 's':
			p[i] = SlotSpecial
		default:
			return TDDPattern{}, fmt.Errorf("phy: bad TDD pattern char %q", c)
		}
	}
	return TDDPattern{pattern: p}, nil
}

// MustTDDPattern is NewTDDPattern for constant patterns; it panics on error.
func MustTDDPattern(s string) TDDPattern {
	p, err := NewTDDPattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// FDD returns the all-downlink pattern used to model an FDD downlink
// carrier (the T-Mobile n25/n71 cells).
func FDD() TDDPattern { return MustTDDPattern("D") }

// Direction returns the direction of slot index i (absolute slot count).
func (t TDDPattern) Direction(i int) SlotDirection {
	return t.pattern[i%len(t.pattern)]
}

// HasDownlinkControl reports whether PDCCH can be present in slot i
// (downlink and special slots carry control).
func (t TDDPattern) HasDownlinkControl(i int) bool {
	return t.Direction(i) != SlotUplink
}

// HasDownlinkData reports whether PDSCH can be scheduled in slot i.
func (t TDDPattern) HasDownlinkData(i int) bool {
	return t.Direction(i) == SlotDownlink
}

// Len returns the pattern period in slots.
func (t TDDPattern) Len() int { return len(t.pattern) }

// String renders the pattern as a D/U/S string.
func (t TDDPattern) String() string {
	out := make([]byte, len(t.pattern))
	for i, d := range t.pattern {
		out[i] = d.String()[0]
	}
	return string(out)
}

// DownlinkDutyCycle returns the fraction of slots that can carry PDSCH.
func (t TDDPattern) DownlinkDutyCycle() float64 {
	n := 0
	for i := range t.pattern {
		if t.pattern[i] == SlotDownlink {
			n++
		}
	}
	return float64(n) / float64(len(t.pattern))
}
