// Package phy models the 5G NR physical-layer geometry that both the
// simulated gNB and NR-Scope share: numerology (subcarrier spacing and
// TTI duration), the per-slot resource grid, CORESET/REG/CCE control-
// channel geometry with the TS 38.213 search-space hashing, resource
// allocation RIVs, and TDD slot patterns.
package phy

import (
	"fmt"
	"time"
)

// Numerology is the 3GPP μ value. SCS = 15 kHz · 2^μ.
type Numerology int

// Numerologies supported by NR-Scope (TTIs of 1, 0.5 and 0.25 ms — §3
// "Preliminaries" in the paper).
const (
	Mu0 Numerology = 0 // 15 kHz, 1 ms slots (4G-compatible, T-Mobile FDD cells)
	Mu1 Numerology = 1 // 30 kHz, 0.5 ms slots (all TDD cells in the paper)
	Mu2 Numerology = 2 // 60 kHz, 0.25 ms slots
)

// SymbolsPerSlot is fixed at 14 for normal cyclic prefix.
const SymbolsPerSlot = 14

// SubcarriersPerPRB is fixed at 12.
const SubcarriersPerPRB = 12

// SCSkHz returns the subcarrier spacing in kHz.
func (m Numerology) SCSkHz() int { return 15 << uint(m) }

// SlotsPerSubframe returns the number of slots in one 1 ms subframe.
func (m Numerology) SlotsPerSubframe() int { return 1 << uint(m) }

// SlotsPerFrame returns the number of slots in one 10 ms system frame.
func (m Numerology) SlotsPerFrame() int { return 10 << uint(m) }

// SlotDuration returns the TTI duration.
func (m Numerology) SlotDuration() time.Duration {
	return time.Millisecond / time.Duration(m.SlotsPerSubframe())
}

// Valid reports whether the numerology is one NR-Scope handles.
func (m Numerology) Valid() bool { return m >= Mu0 && m <= Mu2 }

// String implements fmt.Stringer.
func (m Numerology) String() string {
	return fmt.Sprintf("mu%d(%dkHz)", int(m), m.SCSkHz())
}

// MaxSFN is the exclusive upper bound of the system frame number space;
// one system frame is 10 ms (paper footnote 1).
const MaxSFN = 1024

// SlotRef identifies one TTI unambiguously within the SFN cycle.
type SlotRef struct {
	SFN  int // system frame number, 0..1023
	Slot int // slot within the frame, 0..SlotsPerFrame-1
}

// Index flattens the slot reference to a monotone index within one SFN
// cycle, for ordering and matching against ground-truth logs.
func (s SlotRef) Index(mu Numerology) int {
	return s.SFN*mu.SlotsPerFrame() + s.Slot
}

// Next returns the slot reference that follows s.
func (s SlotRef) Next(mu Numerology) SlotRef {
	s.Slot++
	if s.Slot >= mu.SlotsPerFrame() {
		s.Slot = 0
		s.SFN = (s.SFN + 1) % MaxSFN
	}
	return s
}

// String implements fmt.Stringer.
func (s SlotRef) String() string { return fmt.Sprintf("%d.%d", s.SFN, s.Slot) }

// PRBsForBandwidth returns the number of PRBs in a carrier of the given
// bandwidth (MHz) at the given numerology, per the TS 38.101-1 §5.3.2
// transmission-bandwidth tables for the configurations used in the
// paper's evaluation (10/15/20 MHz at 15/30 kHz SCS).
func PRBsForBandwidth(mhz int, mu Numerology) (int, error) {
	type key struct {
		mhz int
		mu  Numerology
	}
	table := map[key]int{
		{5, Mu0}: 25, {10, Mu0}: 52, {15, Mu0}: 79, {20, Mu0}: 106,
		{5, Mu1}: 11, {10, Mu1}: 24, {15, Mu1}: 38, {20, Mu1}: 51,
		{40, Mu1}: 106, {50, Mu1}: 133, {100, Mu1}: 273,
		{10, Mu2}: 11, {20, Mu2}: 24, {40, Mu2}: 51, {100, Mu2}: 132,
	}
	n, ok := table[key{mhz, mu}]
	if !ok {
		return 0, fmt.Errorf("phy: no PRB table entry for %d MHz at %v", mhz, mu)
	}
	return n, nil
}
