package lake

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The manifest is the lake's crash-safe source of truth for which
// segment files exist: an append-only text file of "add <name>" /
// "del <name>" / "swap <new> <old>... ;" lines, fsync'd after every
// append. A torn final line (crash mid-append, no trailing newline) is
// truncated away before replay, so it neither replays as a garbage
// entry nor has the next append concatenated onto it. Recovery then
// replays complete lines in order; a segment file present on disk but
// absent from the manifest (crash between create and add) is garbage
// and removed, a manifest entry whose file is missing is tolerated and
// dropped. The swap line is compaction's atomic commit: it carries a
// trailing ";" sentinel as defense in depth, so even a full-looking
// but uncommitted swap is ignored wholesale — replay then still sees
// the victims, and the half-registered merged file is orphan-removed.

const manifestName = "MANIFEST"

type manifest struct {
	f *os.File
}

// openManifest opens (creating if needed) the manifest and returns the
// live segment names in add order.
func openManifest(dir string) (*manifest, []string, error) {
	path := filepath.Join(dir, manifestName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// A crash mid-append leaves a torn final line (no trailing newline).
	// Drop it before replay: a partial "add cell-00001/seg-" would
	// otherwise replay as a garbage entry, and a later append would
	// concatenate onto it, corrupting that registration too.
	if err := trimTornTail(f); err != nil {
		f.Close()
		return nil, nil, err
	}
	live := make(map[string]int)
	var order []string
	add := func(name string) {
		if _, dup := live[name]; !dup {
			live[name] = len(order)
			order = append(order, name)
		}
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue // blank, or torn final line from a crash mid-append
		}
		switch fields[0] {
		case "add":
			add(fields[1])
		case "del":
			delete(live, fields[1])
		case "swap":
			if fields[len(fields)-1] != ";" {
				continue // torn swap line: not committed
			}
			for _, old := range fields[2 : len(fields)-1] {
				delete(live, old)
			}
			add(fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, err
	}
	// The replay scanner buffers reads, so the file offset may sit
	// anywhere; appends rely on it being exactly at EOF.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	names := make([]string, 0, len(live))
	for _, name := range order {
		if _, ok := live[name]; ok {
			names = append(names, name)
		}
	}
	return &manifest{f: f}, names, nil
}

// trimTornTail truncates a final line with no trailing newline (a
// crash mid-append) back to the last complete line. Uses only ReadAt,
// so the caller's file offset is untouched.
func trimTornTail(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	cut := int64(0)
	buf := make([]byte, 4096)
	for end := size; end > 0; {
		n := min(int64(len(buf)), end)
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			cut = end - n + int64(i) + 1
			break
		}
		end -= n
	}
	if err := f.Truncate(cut); err != nil {
		return err
	}
	return f.Sync()
}

func (m *manifest) append(op, name string) error {
	if _, err := fmt.Fprintf(m.f, "%s %s\n", op, name); err != nil {
		return err
	}
	return m.f.Sync()
}

func (m *manifest) add(name string) error { return m.append("add", name) }
func (m *manifest) del(name string) error { return m.append("del", name) }

// swap atomically replaces olds with new: one line, committed by its
// trailing sentinel.
func (m *manifest) swap(newName string, olds []string) error {
	if _, err := fmt.Fprintf(m.f, "swap %s %s ;\n", newName, strings.Join(olds, " ")); err != nil {
		return err
	}
	return m.f.Sync()
}

func (m *manifest) close() error {
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
