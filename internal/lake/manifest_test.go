package lake

import (
	"os"
	"path/filepath"
	"testing"
)

// TestManifestTornTailAppend reproduces a crash mid-append: the
// manifest ends in a torn line with no newline. Replay must drop the
// torn entry, and — critically — the next append must start on a fresh
// line instead of concatenating onto the torn tail (which would corrupt
// the new registration and orphan-delete its segment on the next Open).
func TestManifestTornTailAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, manifestName)
	torn := "add cell-00001/seg-00000001.seg\nadd cell-00001/seg-"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	m, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "cell-00001/seg-00000001.seg" {
		t.Fatalf("replayed names = %v, want the one complete entry", names)
	}
	if err := m.add("cell-00001/seg-00000003.seg"); err != nil {
		t.Fatal(err)
	}
	if err := m.close(); err != nil {
		t.Fatal(err)
	}

	m2, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.close()
	want := []string{"cell-00001/seg-00000001.seg", "cell-00001/seg-00000003.seg"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("names after torn-tail append = %v, want %v", names, want)
	}
}

// TestManifestTornOnlyLine: the torn line is the only content — the
// whole file must be truncated and the first append still replay clean.
func TestManifestTornOnlyLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, manifestName)
	if err := os.WriteFile(path, []byte("add cell-000"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("replayed names = %v, want none", names)
	}
	if err := m.add("cell-00002/seg-00000001.seg"); err != nil {
		t.Fatal(err)
	}
	if err := m.close(); err != nil {
		t.Fatal(err)
	}
	m2, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.close()
	if len(names) != 1 || names[0] != "cell-00002/seg-00000001.seg" {
		t.Fatalf("names = %v, want the appended entry alone", names)
	}
}
