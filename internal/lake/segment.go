package lake

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// On-disk segment layout:
//
//	block*  each: magic "LKBK" u32 | payloadLen u32 | crc32(payload) u32 | payload
//	footer  same framing with magic "LKFT"; payload = block index
//	trailer footerOff u64 LE | magic "LKS1"
//
// A sealed segment is located by its trailer; an unsealed one (writer
// crashed mid-spill) is recovered by a sequential CRC-verified scan
// that truncates the first torn block and re-seals.

const (
	blockMagic  = 0x4c4b424b // "LKBK"
	footerMagic = 0x4c4b4654 // "LKFT"
	sealMagic   = 0x4c4b5331 // "LKS1"
	frameHdr    = 12         // magic + payloadLen + crc
	trailerLen  = 12         // footerOff + sealMagic
	maxPayload  = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockRef locates one block inside a segment and carries enough of
// its header to answer index queries without touching disk.
type blockRef struct {
	seg        *segment
	off        int64
	plen       int
	kind       uint8
	cell, rnti uint16
	minIdx     int64
	maxIdx     int64
	count      int
}

// segment is one on-disk segment file.
type segment struct {
	path   string
	name   string // manifest-relative name
	seq    uint64
	cell   uint16
	f      *os.File
	size   int64
	sealed bool
}

// appendBlock frames and writes one encoded payload, returning its
// offset.
func (s *segment) appendBlock(payload []byte) (int64, error) {
	off := s.size
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, crcTable))
	if _, err := s.f.WriteAt(hdr[:], off); err != nil {
		return 0, err
	}
	if _, err := s.f.WriteAt(payload, off+frameHdr); err != nil {
		return 0, err
	}
	s.size = off + frameHdr + int64(len(payload))
	return off, nil
}

// readBlock reads and CRC-verifies the block at off, returning its
// payload.
func (s *segment) readBlock(off int64, plen int) ([]byte, error) {
	buf := make([]byte, frameHdr+plen)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != blockMagic && m != footerMagic {
		return nil, fmt.Errorf("lake: bad block magic %#x at %s+%d", m, s.name, off)
	}
	if got := binary.LittleEndian.Uint32(buf[4:]); int(got) != plen {
		return nil, fmt.Errorf("lake: block length mismatch at %s+%d", s.name, off)
	}
	payload := buf[frameHdr:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[8:]) {
		return nil, fmt.Errorf("lake: block CRC mismatch at %s+%d", s.name, off)
	}
	return payload, nil
}

// seal writes the footer index + trailer and fsyncs. The segment stays
// readable through its open handle.
func (s *segment) seal(refs []blockRef) error {
	if s.sealed {
		return nil
	}
	payload := appendFooter(nil, refs)
	footerOff := s.size
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], footerMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, crcTable))
	if _, err := s.f.WriteAt(hdr[:], footerOff); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(payload, footerOff+frameHdr); err != nil {
		return err
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(footerOff))
	binary.LittleEndian.PutUint32(tr[8:], sealMagic)
	if _, err := s.f.WriteAt(tr[:], footerOff+frameHdr+int64(len(payload))); err != nil {
		return err
	}
	s.size = footerOff + frameHdr + int64(len(payload)) + trailerLen
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.sealed = true
	return nil
}

// appendFooter encodes the block index.
func appendFooter(buf []byte, refs []blockRef) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(refs)))
	for _, r := range refs {
		buf = binary.AppendUvarint(buf, uint64(r.off))
		buf = binary.AppendUvarint(buf, uint64(r.plen))
		buf = append(buf, r.kind)
		buf = binary.AppendUvarint(buf, uint64(r.cell))
		buf = binary.AppendUvarint(buf, uint64(r.rnti))
		buf = binary.AppendVarint(buf, r.minIdx)
		buf = binary.AppendVarint(buf, r.maxIdx)
		buf = binary.AppendUvarint(buf, uint64(r.count))
	}
	return buf
}

// parseFooter decodes a footer payload into refs bound to seg.
func parseFooter(seg *segment, p []byte) ([]blockRef, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("lake: bad footer count in %s", seg.name)
	}
	p = p[w:]
	refs := make([]blockRef, 0, n)
	for i := uint64(0); i < n; i++ {
		var r blockRef
		r.seg = seg
		u := func() uint64 {
			v, m := binary.Uvarint(p)
			if m <= 0 {
				w = -1
				return 0
			}
			p = p[m:]
			return v
		}
		v := func() int64 {
			x, m := binary.Varint(p)
			if m <= 0 {
				w = -1
				return 0
			}
			p = p[m:]
			return x
		}
		r.off = int64(u())
		r.plen = int(u())
		if w < 0 || len(p) == 0 {
			return nil, fmt.Errorf("lake: truncated footer in %s", seg.name)
		}
		r.kind = p[0]
		p = p[1:]
		r.cell = uint16(u())
		r.rnti = uint16(u())
		r.minIdx = v()
		r.maxIdx = v()
		r.count = int(u())
		if w < 0 {
			return nil, fmt.Errorf("lake: truncated footer in %s", seg.name)
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// openSegment opens an existing segment file. Sealed segments load
// their footer index; unsealed ones are scanned, the first torn block
// truncated, and the valid prefix re-sealed (recovered=true).
func openSegment(path, name string, seq uint64, cell uint16) (*segment, []blockRef, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, false, err
	}
	seg := &segment{path: path, name: name, seq: seq, cell: cell, f: f, size: st.Size()}

	if refs, ok := seg.loadFooter(); ok {
		seg.sealed = true
		return seg, refs, false, nil
	}

	// No valid trailer: sequential scan + truncate + re-seal.
	refs, validEnd := seg.scan()
	if validEnd < seg.size {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, false, err
		}
	}
	seg.size = validEnd
	if err := seg.seal(refs); err != nil {
		f.Close()
		return nil, nil, false, err
	}
	return seg, refs, true, nil
}

// loadFooter tries the sealed-segment fast path.
func (s *segment) loadFooter() ([]blockRef, bool) {
	if s.size < trailerLen {
		return nil, false
	}
	var tr [trailerLen]byte
	if _, err := s.f.ReadAt(tr[:], s.size-trailerLen); err != nil {
		return nil, false
	}
	if binary.LittleEndian.Uint32(tr[8:]) != sealMagic {
		return nil, false
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	plen := s.size - trailerLen - footerOff - frameHdr
	if footerOff < 0 || plen < 0 || plen > maxPayload {
		return nil, false
	}
	payload, err := s.readBlock(footerOff, int(plen))
	if err != nil {
		return nil, false
	}
	refs, err := parseFooter(s, payload)
	if err != nil {
		return nil, false
	}
	return refs, true
}

// scan walks blocks from the start, stopping at the first torn or
// CRC-failing block. Returns the refs of valid blocks and the byte
// offset of the valid prefix's end.
func (s *segment) scan() ([]blockRef, int64) {
	var refs []blockRef
	off := int64(0)
	var hdr [frameHdr]byte
	for off+frameHdr <= s.size {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:])
		if magic != blockMagic {
			break // footer of a prior seal, garbage, or torn write
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[4:]))
		if plen > maxPayload || off+frameHdr+plen > s.size {
			break
		}
		payload, err := s.readBlock(off, int(plen))
		if err != nil {
			met.crcErrors.Inc()
			break
		}
		r, err := refFromPayload(s, off, payload)
		if err != nil {
			break
		}
		refs = append(refs, r)
		off += frameHdr + plen
	}
	return refs, off
}

// refFromPayload builds a blockRef by decoding just enough of a
// payload: the header and the bin-index bounds.
func refFromPayload(s *segment, off int64, payload []byte) (blockRef, error) {
	h, err := parseBlockPayload(payload)
	if err != nil {
		return blockRef{}, err
	}
	r := blockRef{
		seg: s, off: off, plen: len(payload),
		kind: h.kind, cell: h.cell, rnti: h.rnti, count: h.count,
	}
	switch {
	case h.kind == kindAnomaly && h.count > 0:
		// Anomaly ref bounds are in ms (the AtMs column), mirroring the
		// writer: leaving them zero would make retention read a
		// recovered segment as infinitely old and delete it.
		if len(h.cols) != anomColumns {
			return blockRef{}, fmt.Errorf("lake: anomaly block has %d columns, want %d", len(h.cols), anomColumns)
		}
		col := h.cols[3]
		for i := 0; i < h.count; i++ {
			v, n := binary.Uvarint(col)
			if n <= 0 {
				return blockRef{}, fmt.Errorf("lake: truncated anomaly t_ms column")
			}
			col = col[n:]
			ms := int64(math.Float64frombits(v))
			if i == 0 {
				r.minIdx, r.maxIdx = ms, ms
			} else {
				r.minIdx, r.maxIdx = min(r.minIdx, ms), max(r.maxIdx, ms)
			}
		}
	case h.kind != kindAnomaly && h.count > 0:
		idxs, err := decodeBinIdx(h.cols[0], h.count, nil)
		if err != nil {
			return blockRef{}, err
		}
		r.minIdx, r.maxIdx = idxs[0], idxs[0]
		for _, idx := range idxs[1:] {
			r.minIdx, r.maxIdx = min(r.minIdx, idx), max(r.maxIdx, idx)
		}
	}
	return r, nil
}

// createSegment creates a fresh segment file (O_EXCL: names are
// sequence-unique).
func createSegment(path, name string, seq uint64, cell uint16) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &segment{path: path, name: name, seq: seq, cell: cell, f: f}, nil
}

func (s *segment) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
