package lake

import (
	"os"
	"path/filepath"
	"sort"
	"time"

	"nrscope/internal/history"
)

// The background writer: drains the spill queue into per-cell
// segments, seals segments at the size threshold, and periodically
// runs the maintenance pass (compaction + retention). It is the sole
// mutator of the segment maps and the published index; readers see
// index updates only under l.mu.

// maintainEvery is how many flush ticks pass between maintenance
// passes.
const maintainEvery = 10

func (l *Lake) writerLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.FlushInterval)
	defer t.Stop()
	ticks := 0
	for {
		select {
		case <-l.done:
			if !l.abandoned.Load() {
				l.flushOnce()
			}
			return
		case <-l.notify:
			l.flushOnce()
		case ack := <-l.syncCh:
			for {
				l.flushOnce()
				if l.pushIdx.Load() == l.popIdx.Load() {
					break
				}
			}
			close(ack)
		case <-t.C:
			l.flushOnce()
			if ticks++; ticks >= maintainEvery {
				ticks = 0
				l.maintain()
			}
		}
	}
}

// flushOnce moves the pending ring into the inflight buffer, writes it
// out, and publishes the resulting block refs. Readers holding l.mu +
// l.qmu always see each entry exactly once: in pending, in inflight,
// or in the index — the inflight→index transition happens under both
// locks.
func (l *Lake) flushOnce() {
	if l.pushIdx.Load() == l.popIdx.Load() {
		return
	}
	l.qmu.Lock()
	pop := l.popIdx.Load()
	push := l.pushIdx.Load() // acquire: slots below push are fully written
	n := int(push - pop)
	if n == 0 {
		l.qmu.Unlock()
		return
	}
	if cap(l.inflight) < n {
		l.inflight = make([]entry, 0, max(n, 2*cap(l.inflight)))
	}
	inf := l.inflight[:0]
	for i := pop; i < push; i++ {
		inf = append(inf, l.pending[i%uint64(len(l.pending))])
	}
	l.inflight = inf
	// Freeing the slots must come after the copy: the producer reuses
	// them as soon as it observes the new popIdx.
	l.popIdx.Store(push)
	l.qmu.Unlock()
	// Sampled at drain time: the depth the queue reached between flushes.
	met.queuedEntries.Set(int64(n))

	start := time.Now()
	refs := l.writeBatch(inf)
	met.writeSeconds.Observe(time.Since(start).Seconds())

	var bins, anoms int64
	for _, r := range refs {
		if r.kind == kindAnomaly {
			anoms += int64(r.count)
		} else {
			bins += int64(r.count)
		}
	}
	met.spilledBins.Add(bins)
	met.spilledAnoms.Add(anoms)
	l.stBins.Add(bins)
	l.stAnoms.Add(anoms)

	l.mu.Lock()
	l.qmu.Lock()
	l.publishRefs(refs)
	l.inflight = l.inflight[:0]
	l.qmu.Unlock()
	l.mu.Unlock()
	l.updateTotals()
}

// publishRefs folds block refs into the queryable index. Callers hold
// l.mu (or run single-threaded during Open).
func (l *Lake) publishRefs(refs []blockRef) {
	for _, r := range refs {
		if r.kind == kindAnomaly {
			l.anomRefs = append(l.anomRefs, r)
			continue
		}
		k := seriesKey{cell: r.cell, rnti: r.rnti, kind: r.kind}
		l.series[k] = append(l.series[k], r)
		if r.maxIdx > l.maxIdx {
			l.maxIdx = r.maxIdx
		}
	}
}

// writeBatch encodes one drained batch into per-series blocks appended
// to the owning cells' active segments. It must not mutate the batch
// slice itself (readers scan it as inflight): runs hold int32 indices
// into the batch, not entry copies — 4 bytes moved per row instead of
// the full 170-byte entry. Bucketing replaces sorting — within one
// series, spills arrive in ascending order already (the store lock
// serializes them and rings evict oldest-first), so the whole path is
// O(n) even when the queue backs up to 100k+ entries.
func (l *Lake) writeBatch(batch []entry) []blockRef {
	for i := range batch {
		e := &batch[i]
		k := seriesKey{cell: e.cell, rnti: e.rnti, kind: e.kind}
		bi, ok := l.buckets[k]
		if !ok {
			bi = len(l.runs)
			l.buckets[k] = bi
			l.runs = append(l.runs, nil)
			l.runKeys = append(l.runKeys, k)
		}
		l.runs[bi] = append(l.runs[bi], int32(i))
	}
	refs := l.wrefs[:0]
	for bi := range l.runs {
		run := l.runs[bi]
		if len(run) == 0 {
			continue
		}
		l.runs[bi] = run[:0]
		k := l.runKeys[bi]
		var payload []byte
		if k.kind == kindAnomaly {
			payload = l.enc.anomalyBlock(k.cell, batch, run)
		} else {
			payload = l.enc.seriesBlock(k.kind, k.cell, k.rnti, batch, run)
		}
		a, err := l.activeFor(k.cell)
		if err != nil {
			met.writeErrors.Inc()
			continue
		}
		off, err := a.seg.appendBlock(payload)
		if err != nil {
			met.writeErrors.Inc()
			continue
		}
		r := blockRef{
			seg: a.seg, off: off, plen: len(payload),
			kind: k.kind, cell: k.cell, rnti: k.rnti,
			count: len(run),
		}
		if k.kind == kindAnomaly {
			r.minIdx, r.maxIdx = int64(batch[run[0]].anom.AtMs), int64(batch[run[0]].anom.AtMs)
			for i := 1; i < len(run); i++ {
				ms := int64(batch[run[i]].anom.AtMs)
				r.minIdx, r.maxIdx = min(r.minIdx, ms), max(r.maxIdx, ms)
			}
		} else {
			r.minIdx, r.maxIdx = batch[run[0]].binIdx, batch[run[0]].binIdx
			for i := 1; i < len(run); i++ {
				idx := batch[run[i]].binIdx
				r.minIdx, r.maxIdx = min(r.minIdx, idx), max(r.maxIdx, idx)
			}
		}
		a.refs = append(a.refs, r)
		refs = append(refs, r)
	}
	for cell, a := range l.actives {
		if a.seg.size >= l.cfg.SegmentBytes {
			if err := a.seg.seal(a.refs); err != nil {
				met.writeErrors.Inc()
				continue
			}
			delete(l.actives, cell)
		}
	}
	l.wrefs = refs
	return refs
}

// activeFor returns the cell's unsealed segment, creating one (and
// recording it in the manifest before first use) if needed.
func (l *Lake) activeFor(cell uint16) (*active, error) {
	if a, ok := l.actives[cell]; ok {
		return a, nil
	}
	seq := l.nextSeq
	l.nextSeq++
	name := segName(cell, seq)
	path := filepath.Join(l.dir, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	seg, err := createSegment(path, name, seq, cell)
	if err != nil {
		return nil, err
	}
	if err := l.man.add(name); err != nil {
		seg.close()
		os.Remove(path)
		return nil, err
	}
	l.segs[name] = seg
	a := &active{seg: seg}
	l.actives[cell] = a
	return a, nil
}

// updateTotals refreshes the segment-count and byte gauges.
func (l *Lake) updateTotals() {
	var bytes int64
	for _, s := range l.segs {
		bytes += s.size
	}
	met.segments.Set(int64(len(l.segs)))
	met.bytes.Set(bytes)
	l.stSegments.Store(int64(len(l.segs)))
	l.stBytes.Store(bytes)
}

// maintain runs one compaction + retention pass.
func (l *Lake) maintain() {
	l.compact()
	l.retention()
	l.updateTotals()
}

// compact merges cells' accumulations of small sealed segments into
// one, re-encoding so duplicate bin indices (partial bins from series
// evict/re-create cycles) collapse into single merged rows.
func (l *Lake) compact() {
	byCell := make(map[uint16][]*segment)
	for _, seg := range l.segs {
		if seg.sealed && seg.size < l.cfg.SegmentBytes {
			byCell[seg.cell] = append(byCell[seg.cell], seg)
		}
	}
	for cell, victims := range byCell {
		if len(victims) < l.cfg.CompactMinSegments {
			continue
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
		l.compactCell(cell, victims)
	}
}

func (l *Lake) compactCell(cell uint16, victims []*segment) {
	inSet := make(map[*segment]bool, len(victims))
	for _, v := range victims {
		inSet[v] = true
	}

	// Decode everything the victims hold. Compaction is rare; this
	// path allocates freely.
	merged := make(map[seriesKey]map[int64]history.Bin)
	var anoms []history.Anomaly
	decode := func(r blockRef) {
		payload, err := r.seg.readBlock(r.off, r.plen)
		if err != nil {
			met.crcErrors.Inc()
			return
		}
		h, err := parseBlockPayload(payload)
		if err != nil {
			met.crcErrors.Inc()
			return
		}
		if r.kind == kindAnomaly {
			_ = decodeAnomalyBlock(h, func(a history.Anomaly) { anoms = append(anoms, a) })
			return
		}
		k := seriesKey{cell: r.cell, rnti: r.rnti, kind: r.kind}
		m := merged[k]
		if m == nil {
			m = make(map[int64]history.Bin)
			merged[k] = m
		}
		_ = decodeSeriesBlock(h, r.minIdx, r.maxIdx, func(idx int64, b history.Bin) {
			old := m[idx]
			old.Merge(b)
			m[idx] = old
		})
	}
	// The writer is the index's only mutator, so reading it lock-free
	// from the writer goroutine is safe.
	for _, refs := range l.series {
		for _, r := range refs {
			if inSet[r.seg] {
				decode(r)
			}
		}
	}
	for _, r := range l.anomRefs {
		if inSet[r.seg] {
			decode(r)
		}
	}

	seq := l.nextSeq
	l.nextSeq++
	name := segName(cell, seq)
	path := filepath.Join(l.dir, filepath.FromSlash(name))
	seg, err := createSegment(path, name, seq, cell)
	if err != nil {
		met.writeErrors.Inc()
		return
	}
	abort := func() {
		seg.close()
		os.Remove(path)
		met.writeErrors.Inc()
	}
	var newRefs []blockRef
	keys := make([]seriesKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.rnti < b.rnti
	})
	for _, k := range keys {
		rows := merged[k]
		es := make([]entry, 0, len(rows))
		for idx, b := range rows {
			es = append(es, entry{cell: k.cell, rnti: k.rnti, kind: k.kind, binIdx: idx, bin: b})
		}
		sort.Slice(es, func(i, j int) bool { return es[i].binIdx < es[j].binIdx })
		payload := l.enc.seriesBlock(k.kind, k.cell, k.rnti, es, seqIdxs(len(es)))
		off, err := seg.appendBlock(payload)
		if err != nil {
			abort()
			return
		}
		newRefs = append(newRefs, blockRef{
			seg: seg, off: off, plen: len(payload),
			kind: k.kind, cell: k.cell, rnti: k.rnti,
			minIdx: es[0].binIdx, maxIdx: es[len(es)-1].binIdx, count: len(es),
		})
	}
	if len(anoms) > 0 {
		sort.SliceStable(anoms, func(i, j int) bool { return anoms[i].AtMs < anoms[j].AtMs })
		es := make([]entry, 0, len(anoms))
		for _, a := range anoms {
			es = append(es, entry{cell: cell, kind: kindAnomaly, anom: a})
		}
		payload := l.enc.anomalyBlock(cell, es, seqIdxs(len(es)))
		off, err := seg.appendBlock(payload)
		if err != nil {
			abort()
			return
		}
		newRefs = append(newRefs, blockRef{
			seg: seg, off: off, plen: len(payload),
			kind: kindAnomaly, cell: cell,
			minIdx: int64(anoms[0].AtMs), maxIdx: int64(anoms[len(anoms)-1].AtMs),
			count: len(anoms),
		})
	}
	if err := seg.seal(newRefs); err != nil {
		abort()
		return
	}
	oldNames := make([]string, len(victims))
	for i, v := range victims {
		oldNames[i] = v.name
	}
	// One atomic manifest line: replay either sees the victims or the
	// merged segment, never both and never neither.
	if err := l.man.swap(name, oldNames); err != nil {
		abort()
		return
	}

	l.mu.Lock()
	l.dropSegRefsLocked(inSet)
	l.publishRefs(newRefs)
	l.mu.Unlock()

	l.segs[name] = seg
	for _, v := range victims {
		delete(l.segs, v.name)
		v.close()
		os.Remove(v.path)
	}
	met.compactions.Inc()
	l.stCompact.Add(1)
}

// dropSegRefsLocked removes every index ref pointing into the given
// segments. Caller holds l.mu.
func (l *Lake) dropSegRefsLocked(victims map[*segment]bool) {
	for k, refs := range l.series {
		kept := refs[:0]
		for _, r := range refs {
			if !victims[r.seg] {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(l.series, k)
		} else {
			l.series[k] = kept
		}
	}
	kept := l.anomRefs[:0]
	for _, r := range l.anomRefs {
		if !victims[r.seg] {
			kept = append(kept, r)
		}
	}
	l.anomRefs = kept
}

// retention deletes sealed segments wholly behind the horizon.
func (l *Lake) retention() {
	if l.cfg.Retention <= 0 {
		return
	}
	horizonBins := int64(l.cfg.Retention / l.cfg.BinWidth)
	l.mu.RLock()
	cutoff := l.maxIdx - horizonBins
	l.mu.RUnlock()
	if cutoff <= 0 {
		return
	}
	cutoffMs := float64(cutoff) * float64(l.cfg.BinWidth) / float64(time.Millisecond)

	type bound struct {
		maxIdx int64
		maxMs  int64
		has    bool
	}
	bounds := make(map[*segment]*bound)
	note := func(seg *segment, idx, ms int64) {
		b := bounds[seg]
		if b == nil {
			b = &bound{}
			bounds[seg] = b
		}
		if !b.has || idx > b.maxIdx {
			b.maxIdx = idx
		}
		if !b.has || ms > b.maxMs {
			b.maxMs = ms
		}
		b.has = true
	}
	for _, refs := range l.series {
		for _, r := range refs {
			note(r.seg, r.maxIdx, 0)
		}
	}
	for _, r := range l.anomRefs {
		note(r.seg, 0, r.maxIdx) // anomaly ref bounds are in ms
	}

	for name, seg := range l.segs {
		if !seg.sealed {
			continue
		}
		b := bounds[seg]
		if b == nil || !b.has {
			continue
		}
		if b.maxIdx >= cutoff || float64(b.maxMs) >= cutoffMs {
			continue
		}
		victims := map[*segment]bool{seg: true}
		l.mu.Lock()
		l.dropSegRefsLocked(victims)
		l.mu.Unlock()
		if err := l.man.del(name); err != nil {
			met.writeErrors.Inc()
		}
		delete(l.segs, name)
		seg.close()
		os.Remove(seg.path)
		met.retired.Inc()
	}
}
