package lake

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"nrscope/internal/history"
)

// idleCfg keeps the background writer asleep except when poked by a
// push notify or a Sync, so tests control flush boundaries exactly.
func idleCfg() Config {
	return Config{FlushInterval: time.Hour}
}

// spill pushes one bin by value — test convenience over the
// pointer-taking hot-path API.
func spill(l *Lake, cell, rnti uint16, cellSeries bool, idx int64, b history.Bin) {
	l.SpillBin(cell, rnti, cellSeries, idx, &b)
}

func testBin(i int64) history.Bin {
	return history.Bin{
		DLBits: 1000 + i, ULBits: 500 + i, Grants: 10 + i, Retx: i % 3,
		PRBs: 40, MCSSum: 20 * (10 + i), MCSCount: 10 + i,
		MCSMin: 2, MCSMax: 27, SpareBits: float64(i) * 0.5,
	}
}

func readAll(t *testing.T, l *Lake, cell, rnti uint16, cellSeries bool) map[int64]history.Bin {
	t.Helper()
	out := make(map[int64]history.Bin)
	err := l.ReadSeries(cell, rnti, cellSeries, 0, 1<<40, func(idx int64, b history.Bin) {
		old := out[idx]
		old.Merge(b)
		out[idx] = old
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func onlySegFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "cell-*", "seg-*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("segment files = %v (err %v), want exactly 1", matches, err)
	}
	return matches[0]
}

// TestLakeRoundtrip spills bins and anomalies, syncs, and checks every
// read API before and after a clean close/reopen cycle.
func TestLakeRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := int64(0); i < n; i++ {
		spill(l, 3, 0x4601, false, i, testBin(i))
		spill(l, 3, 0x4602, false, i, testBin(2*i))
		spill(l, 3, 0, true, i, testBin(3*i))
	}
	l.SpillAnomaly(history.Anomaly{Cell: 3, RNTI: 0x4601, Kind: "retx_spike", AtMs: 700, Value: 0.5, Baseline: 0.1})
	l.SpillAnomaly(history.Anomaly{Cell: 3, RNTI: 0x4602, Kind: "throughput_collapse", AtMs: 300, Value: 100, Baseline: 9000})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	check := func(l *Lake, when string) {
		t.Helper()
		for rnti, mult := range map[uint16]int64{0x4601: 1, 0x4602: 2} {
			got := readAll(t, l, 3, rnti, false)
			if len(got) != n {
				t.Fatalf("%s: rnti %#x bins = %d, want %d", when, rnti, len(got), n)
			}
			for i := int64(0); i < n; i++ {
				if got[i] != testBin(mult*i) {
					t.Errorf("%s: rnti %#x bin %d = %+v, want %+v", when, rnti, i, got[i], testBin(mult*i))
				}
			}
		}
		cellBins := readAll(t, l, 3, 0, true)
		if len(cellBins) != n || cellBins[7] != testBin(21) {
			t.Errorf("%s: cell series %d bins, bin 7 = %+v", when, len(cellBins), cellBins[7])
		}
		// Range restriction.
		ranged := make(map[int64]history.Bin)
		l.ReadSeries(3, 0x4601, false, 10, 19, func(idx int64, b history.Bin) { ranged[idx] = b })
		if len(ranged) != 10 {
			t.Errorf("%s: ranged read = %d bins, want 10", when, len(ranged))
		}
		minIdx, maxIdx, ok := l.SeriesBounds(3, 0x4601, false)
		if !ok || minIdx != 0 || maxIdx != n-1 {
			t.Errorf("%s: bounds = [%d,%d] ok=%v", when, minIdx, maxIdx, ok)
		}
		if _, _, ok := l.SeriesBounds(9, 0x4601, false); ok {
			t.Errorf("%s: bounds for unknown cell reported ok", when)
		}
		if ues := l.SpilledUEs(3); len(ues) != 2 || ues[0] != 0x4601 || ues[1] != 0x4602 {
			t.Errorf("%s: spilled UEs = %v", when, ues)
		}
		anoms := l.Anomalies()
		if len(anoms) != 2 || anoms[0].AtMs != 300 || anoms[1].Kind != "retx_spike" {
			t.Errorf("%s: anomalies = %+v", when, anoms)
		}
	}
	check(l, "live")
	st := l.Stats()
	if st.SpilledBins != 3*n || st.SpilledAnomalies != 2 || st.Segments == 0 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Stats().RecoveredSegments; rec != 0 {
		t.Errorf("clean reopen recovered %d segments, want 0 (footer fast path)", rec)
	}
	check(l2, "reopened")
}

// TestLakeQueueVisibility: a spilled bin must be readable before the
// writer has flushed it (exactly-once across pending/inflight/index).
func TestLakeQueueVisibility(t *testing.T) {
	l, err := Open(t.TempDir(), idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	spill(l, 1, 0x10, false, 42, testBin(1))
	// No Sync: the entry may be pending, inflight, or already indexed
	// depending on writer timing — all three must be visible exactly once.
	got := readAll(t, l, 1, 0x10, false)
	if len(got) != 1 || got[42] != testBin(1) {
		t.Fatalf("pre-flush read = %v", got)
	}
	if _, maxIdx, ok := l.SeriesBounds(1, 0x10, false); !ok || maxIdx != 42 {
		t.Fatalf("pre-flush bounds maxIdx=%d ok=%v", maxIdx, ok)
	}
	if ues := l.SpilledUEs(1); len(ues) != 1 || ues[0] != 0x10 {
		t.Fatalf("pre-flush SpilledUEs = %v", ues)
	}
}

// TestLakeCrashRecovery is the satellite acceptance test: kill the lake
// without sealing, tear the tail block mid-write, and require reopen to
// recover the manifest's segments, skip the torn block via CRC scan,
// and serve every fully-written block.
func TestLakeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	// First flush: series 0x11, fully on disk.
	for i := int64(0); i < 20; i++ {
		spill(l, 5, 0x11, false, i, testBin(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	path := onlySegFile(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := fi.Size()
	// Second flush: series 0x22 — this block will be torn.
	for i := int64(0); i < 20; i++ {
		spill(l, 5, 0x22, false, i, testBin(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= intact {
		t.Fatalf("second flush did not grow the segment (%d -> %d)", intact, fi.Size())
	}
	l.Abandon() // crash: no footer, handles dropped

	// Tear the tail block: cut it roughly in half.
	torn := intact + (fi.Size()-intact)/2
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec := l2.Stats().RecoveredSegments; rec != 1 {
		t.Errorf("recovered segments = %d, want 1", rec)
	}
	// The intact block survives in full...
	got := readAll(t, l2, 5, 0x11, false)
	if len(got) != 20 {
		t.Fatalf("recovered series = %d bins, want 20", len(got))
	}
	for i := int64(0); i < 20; i++ {
		if got[i] != testBin(i) {
			t.Errorf("recovered bin %d = %+v", i, got[i])
		}
	}
	// ...the torn block is gone, not half-decoded.
	if torn := readAll(t, l2, 5, 0x22, false); len(torn) != 0 {
		t.Errorf("torn block leaked %d bins", len(torn))
	}
	// The scan re-sealed the segment: a third open takes the footer path.
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= torn {
		// seal appends a footer after truncating the torn tail, so the
		// file must end at intact + footer, strictly above `intact`.
		if fi.Size() <= intact {
			t.Errorf("re-seal missing: size %d <= intact %d", fi.Size(), intact)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rec := l3.Stats().RecoveredSegments; rec != 0 {
		t.Errorf("third open recovered %d segments, want footer fast path", rec)
	}
	l3.Close()
}

// TestLakeOrphanRemoval: a segment file the manifest never learned
// about (crash between create and manifest add) is deleted at open.
func TestLakeOrphanRemoval(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	spill(l, 1, 0x1, false, 0, testBin(0))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "cell-00001", "seg-00000099.seg")
	if err := os.WriteFile(orphan, []byte("never registered"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan still present (err %v)", err)
	}
	if got := readAll(t, l2, 1, 0x1, false); len(got) != 1 {
		t.Errorf("registered data lost with the orphan: %v", got)
	}
}

// TestManifestTornSwap: a swap line missing its ";" sentinel (crash
// mid-append) must be ignored — the victims stay live.
func TestManifestTornSwap(t *testing.T) {
	dir := t.TempDir()
	m, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("fresh manifest lists %v", names)
	}
	m.add("a.seg")
	m.add("b.seg")
	m.close()
	// Torn swap: no sentinel.
	f, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("swap merged.seg a.seg b.seg"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m2, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.seg" || names[1] != "b.seg" {
		t.Fatalf("torn swap changed liveness: %v", names)
	}
	// Committed swap replaces the victims.
	if err := m2.swap("merged.seg", []string{"a.seg", "b.seg"}); err != nil {
		t.Fatal(err)
	}
	m2.close()
	m3, names, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	m3.close()
	if len(names) != 1 || names[0] != "merged.seg" {
		t.Fatalf("committed swap result: %v", names)
	}
}

// TestLakeCompaction: restart churn leaves many small sealed segments;
// the maintenance pass merges them into one, collapsing duplicate bin
// rows, without losing a single bin or anomaly.
func TestLakeCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := idleCfg()
	cfg.CompactMinSegments = 3
	// Four open/spill/close cycles -> four small sealed segments, with
	// bin 5 split across two of them (partial-bin respill).
	for round := int64(0); round < 4; round++ {
		l, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := round * 5; i < round*5+6; i++ { // one bin of overlap per round
			spill(l, 7, 0x31, false, i, testBin(1))
		}
		l.SpillAnomaly(history.Anomaly{Cell: 7, RNTI: 0x31, Kind: "retx_spike", AtMs: float64(round * 100)})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	before := readAll(t, l, 7, 0x31, false)
	if l.Stats().Segments != 4 {
		t.Fatalf("pre-compaction segments = %d, want 4", l.Stats().Segments)
	}
	// The writer is idle (hour-long ticker, empty queue), so driving the
	// maintenance pass from here is the writer-goroutine role.
	l.maintain()
	st := l.Stats()
	if st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	after := readAll(t, l, 7, 0x31, false)
	if len(after) != len(before) {
		t.Fatalf("compaction changed bin count %d -> %d", len(before), len(after))
	}
	for idx, b := range before {
		if after[idx] != b {
			t.Errorf("bin %d: %+v -> %+v", idx, b, after[idx])
		}
	}
	// Overlap bins (5, 10, 15) were spilled twice and must now decode as
	// one merged row per index from a single block.
	if after[5] != func() history.Bin { b := testBin(1); b.Merge(testBin(1)); return b }() {
		t.Errorf("overlap bin not merged: %+v", after[5])
	}
	if anoms := l.Anomalies(); len(anoms) != 4 || anoms[0].AtMs != 0 || anoms[3].AtMs != 300 {
		t.Errorf("anomalies after compaction = %+v", anoms)
	}
	// The swap is durable: reopen sees only the merged segment.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Stats().Segments != 1 {
		t.Errorf("reopen after compaction: %d segments", l2.Stats().Segments)
	}
	if got := readAll(t, l2, 7, 0x31, false); len(got) != len(before) {
		t.Errorf("reopen after compaction lost bins: %d vs %d", len(got), len(before))
	}
}

// TestLakeRetention: sealed segments wholly behind the horizon are
// deleted; fresh ones survive.
func TestLakeRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := idleCfg()
	cfg.Retention = 10 * time.Second // 100 bins at the default width
	cfg.CompactMinSegments = 1 << 30 // keep compaction out of the way
	// Old segment: bins 0..9, sealed by Close.
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		spill(l, 2, 0x51, false, i, testBin(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Advance the horizon far past the old segment.
	spill(l, 2, 0x51, false, 500, testBin(500))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.maintain()
	if minIdx, maxIdx, ok := l.SeriesBounds(2, 0x51, false); !ok || minIdx != 500 || maxIdx != 500 {
		t.Errorf("post-retention bounds = [%d,%d] ok=%v, want [500,500]", minIdx, maxIdx, ok)
	}
	if got := readAll(t, l, 2, 0x51, false); len(got) != 1 {
		t.Errorf("post-retention bins = %v", got)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "cell-*", "seg-*.seg"))
	if len(matches) != 1 {
		t.Errorf("post-retention segment files = %v", matches)
	}
}

// TestLakeSoakFlatHeap is the acceptance soak: heap stays flat while
// the on-disk segment byte count keeps growing.
func TestLakeSoakFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	l, err := Open(t.TempDir(), Config{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	spillRound := func(round int64) {
		for i := int64(0); i < 2000; i++ {
			idx := round*2000 + i
			spill(l, 1, uint16(0x100+idx%8), false, idx, testBin(idx))
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up establishes steady state (queue ring, encoder buffers).
	for r := int64(0); r < 5; r++ {
		spillRound(r)
	}
	baseHeap := heap()
	baseBytes := l.Stats().Bytes
	for r := int64(5); r < 50; r++ {
		spillRound(r)
	}
	growHeap := int64(heap()) - int64(baseHeap)
	growBytes := l.Stats().Bytes - baseBytes
	if growBytes <= 0 {
		t.Fatalf("segment bytes did not grow (%d)", growBytes)
	}
	const heapCap = 4 << 20
	if growHeap > heapCap {
		t.Errorf("heap grew %d bytes (cap %d) while spilling %d segment bytes",
			growHeap, int64(heapCap), growBytes)
	}
	if d := l.Stats().DroppedEntries; d != 0 {
		t.Errorf("soak dropped %d entries", d)
	}
	t.Logf("heap %+d bytes, segments +%d bytes", growHeap, growBytes)
}

// TestCrashRecoveryAnomalyBounds: anomaly blocks rescued by the CRC
// scan must carry their real AtMs bounds, both in the recovered index
// and in the re-sealed footer — zero bounds would make retention read
// the segment as infinitely old and delete live anomaly data.
func TestCrashRecoveryAnomalyBounds(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, idleCfg())
	if err != nil {
		t.Fatal(err)
	}
	l.SpillAnomaly(history.Anomaly{Cell: 5, RNTI: 0x11, Kind: "retx_spike", AtMs: 1234, Value: 1, Baseline: 0.1})
	l.SpillAnomaly(history.Anomaly{Cell: 5, RNTI: 0x12, Kind: "throughput_collapse", AtMs: 5678, Value: 2, Baseline: 0.2})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Abandon() // crash: segment unsealed, reopen must recover by scan

	// First reopen recovers by scan (and re-seals); second reopen takes
	// the footer fast path. Both must see real ms bounds.
	for _, via := range []string{"scan", "footer"} {
		l2, err := Open(dir, idleCfg())
		if err != nil {
			t.Fatal(err)
		}
		l2.mu.RLock()
		refs := append([]blockRef(nil), l2.anomRefs...)
		l2.mu.RUnlock()
		if len(refs) == 0 {
			t.Fatalf("%s: no anomaly refs recovered", via)
		}
		minMs, maxMs := refs[0].minIdx, refs[0].maxIdx
		for _, r := range refs[1:] {
			minMs, maxMs = min(minMs, r.minIdx), max(maxMs, r.maxIdx)
		}
		if minMs != 1234 || maxMs != 5678 {
			t.Errorf("%s: anomaly ref bounds = [%d,%d] ms, want [1234,5678]", via, minMs, maxMs)
		}
		if anoms := l2.Anomalies(); len(anoms) != 2 || anoms[0].AtMs != 1234 || anoms[1].AtMs != 5678 {
			t.Errorf("%s: recovered anomalies = %+v", via, anoms)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
