// Package lake is the columnar on-disk telemetry lake: bins that fall
// off the history store's RAM rings are spilled into append-only,
// per-cell segment files and served back at query time, so the query
// APIs answer transparently across RAM + disk. Segments hold
// CRC-guarded column-major blocks (delta-of-delta bin indices,
// varint/zigzag value columns), each sealed with a footer index;
// discovery is crash-safe via an append-only fsync'd manifest, and a
// background compactor merges small segments and enforces a retention
// horizon.
package lake

import (
	"encoding/binary"
	"fmt"
	"math"

	"nrscope/internal/history"
)

// Series kinds, stored per block.
const (
	kindCell    = 0 // a cell's aggregate series
	kindUE      = 1 // one C-RNTI's series
	kindAnomaly = 2 // spilled anomaly events
)

// entry is one spilled bin in flight between the history store and a
// segment file.
type entry struct {
	cell, rnti uint16
	kind       uint8
	binIdx     int64
	bin        history.Bin
	anom       history.Anomaly
}

// binColumns is how many columns a series block carries: the bin-index
// column plus the 12 Bin value fields.
const binColumns = 13

// anomColumns is the anomaly block layout: cell, rnti, kind string,
// t_ms, value, baseline.
const anomColumns = 6

// encoder holds reusable column and payload buffers so the background
// writer's steady state is allocation-free.
type encoder struct {
	cols    [][]byte
	payload []byte
}

func (e *encoder) reset(ncols int) {
	for len(e.cols) < ncols {
		e.cols = append(e.cols, nil)
	}
	e.cols = e.cols[:ncols]
	for i := range e.cols {
		e.cols[i] = e.cols[i][:0]
	}
	e.payload = e.payload[:0]
}

// seriesBlock encodes one series' entries — batch rows picked out by
// idxs, in idxs order — column-major. Layout after the common header
// (kind, cell, rnti, count, column-length table): column 0 is the
// bin-index column as delta-of-delta zigzag varints; columns 1..11 are
// the int64 Bin fields as plain zigzag varints; column 12 is SpareBits
// as Float64bits uvarints. The returned payload is valid until the
// next encoder call.
func (e *encoder) seriesBlock(kind uint8, cell, rnti uint16, batch []entry, idxs []int32) []byte {
	e.reset(binColumns)
	cols := e.cols

	// Column 0: delta-of-delta bin indices.
	var prev, prevDelta int64
	for i, bi := range idxs {
		idx := batch[bi].binIdx
		switch i {
		case 0:
			cols[0] = binary.AppendVarint(cols[0], idx)
		case 1:
			prevDelta = idx - prev
			cols[0] = binary.AppendVarint(cols[0], prevDelta)
		default:
			d := idx - prev
			cols[0] = binary.AppendVarint(cols[0], d-prevDelta)
			prevDelta = d
		}
		prev = idx
	}
	for _, bi := range idxs {
		b := &batch[bi].bin
		cols[1] = binary.AppendVarint(cols[1], b.DLBits)
		cols[2] = binary.AppendVarint(cols[2], b.ULBits)
		cols[3] = binary.AppendVarint(cols[3], b.Grants)
		cols[4] = binary.AppendVarint(cols[4], b.Retx)
		cols[5] = binary.AppendVarint(cols[5], b.PRBs)
		cols[6] = binary.AppendVarint(cols[6], b.MCSSum)
		cols[7] = binary.AppendVarint(cols[7], b.MCSCount)
		cols[8] = binary.AppendVarint(cols[8], int64(b.MCSMin))
		cols[9] = binary.AppendVarint(cols[9], int64(b.MCSMax))
		cols[10] = binary.AppendVarint(cols[10], b.UsedREs)
		cols[11] = binary.AppendVarint(cols[11], b.TotalREs)
		cols[12] = binary.AppendUvarint(cols[12], math.Float64bits(b.SpareBits))
	}
	e.cols = cols
	return e.buildPayload(kind, cell, rnti, len(idxs))
}

// anomalyBlock encodes anomaly rows (batch picked by idxs) column-
// major: cell, rnti, kind string (length-prefixed), then the three
// float columns.
func (e *encoder) anomalyBlock(cell uint16, batch []entry, idxs []int32) []byte {
	e.reset(anomColumns)
	cols := e.cols
	for _, bi := range idxs {
		a := &batch[bi].anom
		cols[0] = binary.AppendUvarint(cols[0], uint64(a.Cell))
		cols[1] = binary.AppendUvarint(cols[1], uint64(a.RNTI))
		cols[2] = binary.AppendUvarint(cols[2], uint64(len(a.Kind)))
		cols[2] = append(cols[2], a.Kind...)
		cols[3] = binary.AppendUvarint(cols[3], math.Float64bits(a.AtMs))
		cols[4] = binary.AppendUvarint(cols[4], math.Float64bits(a.Value))
		cols[5] = binary.AppendUvarint(cols[5], math.Float64bits(a.Baseline))
	}
	e.cols = cols
	return e.buildPayload(kindAnomaly, cell, 0, len(idxs))
}

// seqIdxs returns [0, 1, ..., n): the identity pick for callers whose
// batch is already one series' rows in order (compaction).
func seqIdxs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// buildPayload writes the common payload header + column table +
// column bytes into the reusable payload buffer.
func (e *encoder) buildPayload(kind uint8, cell, rnti uint16, count int) []byte {
	buf := e.payload
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(cell))
	buf = binary.AppendUvarint(buf, uint64(rnti))
	buf = binary.AppendUvarint(buf, uint64(count))
	buf = binary.AppendUvarint(buf, uint64(len(e.cols)))
	for _, c := range e.cols {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
	}
	for _, c := range e.cols {
		buf = append(buf, c...)
	}
	e.payload = buf
	return buf
}

// blockHeader is the decoded payload header of one block.
type blockHeader struct {
	kind       uint8
	cell, rnti uint16
	count      int
	cols       [][]byte // column byte slices, aliasing the payload
}

// parseBlockPayload splits a verified payload into its header and
// column slices.
func parseBlockPayload(p []byte) (blockHeader, error) {
	var h blockHeader
	if len(p) < 1 {
		return h, fmt.Errorf("lake: empty block payload")
	}
	h.kind = p[0]
	p = p[1:]
	rd := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("lake: truncated block header")
		}
		p = p[n:]
		return v, nil
	}
	cell, err := rd()
	if err != nil {
		return h, err
	}
	rnti, err := rd()
	if err != nil {
		return h, err
	}
	count, err := rd()
	if err != nil {
		return h, err
	}
	ncols, err := rd()
	if err != nil {
		return h, err
	}
	if cell > math.MaxUint16 || rnti > math.MaxUint16 || count > 1<<24 || ncols > 64 {
		return h, fmt.Errorf("lake: implausible block header")
	}
	h.cell, h.rnti, h.count = uint16(cell), uint16(rnti), int(count)
	lens := make([]uint64, ncols)
	var total uint64
	for i := range lens {
		if lens[i], err = rd(); err != nil {
			return h, err
		}
		total += lens[i]
	}
	if total > uint64(len(p)) {
		return h, fmt.Errorf("lake: block columns overflow payload")
	}
	h.cols = make([][]byte, ncols)
	for i, l := range lens {
		h.cols[i] = p[:l]
		p = p[l:]
	}
	return h, nil
}

// decodeBinIdx decodes the delta-of-delta bin-index column into out.
func decodeBinIdx(col []byte, count int, out []int64) ([]int64, error) {
	out = out[:0]
	var prev, prevDelta int64
	for i := 0; i < count; i++ {
		v, n := binary.Varint(col)
		if n <= 0 {
			return nil, fmt.Errorf("lake: truncated bin-index column")
		}
		col = col[n:]
		switch i {
		case 0:
			prev = v
		case 1:
			prevDelta = v
			prev += v
		default:
			prevDelta += v
			prev += prevDelta
		}
		out = append(out, prev)
	}
	return out, nil
}

// decodeSeriesBlock reconstructs a series block's (binIdx, Bin) rows
// and hands each to visit. Rows outside [fromIdx, toIdx] are skipped.
func decodeSeriesBlock(h blockHeader, fromIdx, toIdx int64, visit func(binIdx int64, b history.Bin)) error {
	if len(h.cols) != binColumns {
		return fmt.Errorf("lake: series block has %d columns, want %d", len(h.cols), binColumns)
	}
	idxs, err := decodeBinIdx(h.cols[0], h.count, make([]int64, 0, h.count))
	if err != nil {
		return err
	}
	ints := make([][]int64, 11)
	for c := 1; c <= 11; c++ {
		col := h.cols[c]
		vals := make([]int64, h.count)
		for i := range vals {
			v, n := binary.Varint(col)
			if n <= 0 {
				return fmt.Errorf("lake: truncated value column %d", c)
			}
			col = col[n:]
			vals[i] = v
		}
		ints[c-1] = vals
	}
	spare := make([]float64, h.count)
	col := h.cols[12]
	for i := range spare {
		v, n := binary.Uvarint(col)
		if n <= 0 {
			return fmt.Errorf("lake: truncated spare-bits column")
		}
		col = col[n:]
		spare[i] = math.Float64frombits(v)
	}
	for i, idx := range idxs {
		if idx < fromIdx || idx > toIdx {
			continue
		}
		visit(idx, history.Bin{
			DLBits: ints[0][i], ULBits: ints[1][i],
			Grants: ints[2][i], Retx: ints[3][i], PRBs: ints[4][i],
			MCSSum: ints[5][i], MCSCount: ints[6][i],
			MCSMin: int(ints[7][i]), MCSMax: int(ints[8][i]),
			UsedREs: ints[9][i], TotalREs: ints[10][i],
			SpareBits: spare[i],
		})
	}
	return nil
}

// decodeAnomalyBlock reconstructs an anomaly block's events.
func decodeAnomalyBlock(h blockHeader, visit func(a history.Anomaly)) error {
	if len(h.cols) != anomColumns {
		return fmt.Errorf("lake: anomaly block has %d columns, want %d", len(h.cols), anomColumns)
	}
	cells, rntis := h.cols[0], h.cols[1]
	kinds := h.cols[2]
	floats := [3][]byte{h.cols[3], h.cols[4], h.cols[5]}
	for i := 0; i < h.count; i++ {
		var a history.Anomaly
		v, n := binary.Uvarint(cells)
		if n <= 0 {
			return fmt.Errorf("lake: truncated anomaly cell column")
		}
		cells = cells[n:]
		a.Cell = uint16(v)
		if v, n = binary.Uvarint(rntis); n <= 0 {
			return fmt.Errorf("lake: truncated anomaly rnti column")
		}
		rntis = rntis[n:]
		a.RNTI = uint16(v)
		if v, n = binary.Uvarint(kinds); n <= 0 || v > uint64(len(kinds)-n) {
			return fmt.Errorf("lake: truncated anomaly kind column")
		}
		a.Kind = string(kinds[n : n+int(v)])
		kinds = kinds[n+int(v):]
		dst := [3]*float64{&a.AtMs, &a.Value, &a.Baseline}
		for c := range floats {
			if v, n = binary.Uvarint(floats[c]); n <= 0 {
				return fmt.Errorf("lake: truncated anomaly float column %d", c)
			}
			floats[c] = floats[c][n:]
			*dst[c] = math.Float64frombits(v)
		}
		visit(a)
	}
	return nil
}
