package lake

import (
	"testing"
	"time"

	"nrscope/internal/history"
	"nrscope/internal/telemetry"
)

// BenchmarkLakeSpill measures the history ingest hot path with a tiny
// RAM ring that evicts (and therefore spills) continuously, against the
// identical run with no lake attached. CI gates lake=on at >= 0.87x the
// lake=off throughput (spill overhead <= 1.15x) and alloc-free via
// benchgate -max-alloc-ratio: the spill enqueue runs under the store
// lock and must not allocate.
func BenchmarkLakeSpill(b *testing.B) {
	for _, withLake := range []struct {
		name string
		on   bool
	}{{"lake=off", false}, {"lake=on", true}} {
		b.Run(withLake.name, func(b *testing.B) {
			st := history.New(history.Config{BinWidth: 100 * time.Millisecond, Depth: 8, MaxUEs: 1024})
			if err := st.AddCell(1, 500*time.Microsecond); err != nil {
				b.Fatal(err)
			}
			var l *Lake
			if withLake.on {
				var err error
				// A segment large enough not to seal mid-run: sealing
				// fsyncs, and an fsync stall would back up the queue and
				// turn the gate flaky; the steady-state spill path is what
				// is being measured.
				l, err = Open(b.TempDir(), Config{
					QueueDepth: 1 << 19, FlushInterval: 10 * time.Millisecond,
					SegmentBytes: 1 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
				st.AttachLake(l)
			}
			const ues = 64
			rec := telemetry.Record{Downlink: true, TBS: 1000, MCS: 10, NumPRB: 4}
			for i := 0; i < ues; i++ {
				rec.RNTI = uint16(0x100 + i)
				st.Ingest(1, rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.RNTI = uint16(0x100 + i%ues)
				// 10 records/ms across the cell: each 100 ms bin holds
				// ~1000 records, so the depth-8 ring evicts (and spills)
				// all 65 series steadily from ~8000 records in, at the
				// amortized one-spill-per-series-per-bin rate of a busy
				// cell.
				rec.TMs = float64(i) * 0.1
				rec.IsRetx = i%16 == 0
				st.Ingest(1, rec)
			}
			b.StopTimer()
			if l != nil {
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
				st := l.Stats()
				if b.N > 10000 && st.SpilledBins == 0 {
					b.Fatal("benchmark never spilled — not measuring the spill path")
				}
				if st.DroppedEntries > 0 {
					b.Fatalf("spill queue overflowed (%d drops): overhead undercounted", st.DroppedEntries)
				}
			}
		})
	}
}

// BenchmarkLakeQueryCold measures reading one full spilled series from
// sealed segments after a reopen — no RAM ring, no queue, pure
// decode-from-disk (page cache).
func BenchmarkLakeQueryCold(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Config{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	const series = 64
	const binsPer = 512
	for s := 0; s < series; s++ {
		for i := int64(0); i < binsPer; i++ {
			spill(l, 1, uint16(0x100+s), false, i, history.Bin{
				DLBits: 1000 + i, ULBits: 300, Grants: 12, Retx: i % 4,
				PRBs: 40, MCSSum: 200, MCSCount: 12, MCSMin: 3, MCSMax: 25,
			})
		}
		// Drain per series: the default queue is smaller than the full
		// corpus and overflow drops would hollow out the dataset.
		if err := l.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	if st := l.Stats(); st.DroppedEntries > 0 {
		b.Fatalf("setup dropped %d entries", st.DroppedEntries)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	l, err = Open(dir, Config{FlushInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int
		rnti := uint16(0x100 + i%series)
		err := l.ReadSeries(1, rnti, false, 0, binsPer, func(int64, history.Bin) { got++ })
		if err != nil || got != binsPer {
			b.Fatalf("cold read: %d bins, err %v", got, err)
		}
	}
	b.ReportMetric(float64(binsPer), "bins/op")
}
