package lake

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nrscope/internal/history"
)

// Config tunes a Lake. The zero value is usable: every field defaults
// sensibly in Open.
type Config struct {
	// SegmentBytes is the size at which an active segment is sealed and
	// a fresh one started (default 8 MiB).
	SegmentBytes int64
	// Retention drops sealed segments wholly older than this horizon
	// behind the newest spilled bin (0 = keep everything).
	Retention time.Duration
	// BinWidth is the history store's bin width, used to convert the
	// retention horizon into bin indices (default 100 ms — keep it in
	// sync with the store's).
	BinWidth time.Duration
	// QueueDepth is the spill ring capacity between the ingest path and
	// the background writer (default 16384). Overflow drops entries
	// (counted) rather than blocking ingest.
	QueueDepth int
	// FlushInterval is the background writer's wake cadence
	// (default 50 ms).
	FlushInterval time.Duration
	// CompactMinSegments is how many small sealed segments a cell
	// accumulates before they are merged into one (default 4).
	CompactMinSegments int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.BinWidth <= 0 {
		c.BinWidth = 100 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16384
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.CompactMinSegments <= 0 {
		c.CompactMinSegments = 4
	}
	return c
}

// seriesKey identifies one spilled series.
type seriesKey struct {
	cell, rnti uint16
	kind       uint8
}

// active is a cell's unsealed segment plus the refs its footer will
// index when sealed.
type active struct {
	seg  *segment
	refs []blockRef
}

// Stats is a point-in-time summary of the lake, for exit reports.
type Stats struct {
	Segments          int
	Bytes             int64
	SpilledBins       int64
	SpilledAnomalies  int64
	DroppedEntries    int64
	Compactions       int64
	RecoveredSegments int64
}

// Lake is the on-disk spill target. It implements history.Lake: spill
// methods enqueue into a bounded ring without blocking or allocating
// (they run under the history store's lock, on the ingest path); a
// background writer drains the ring into per-cell columnar segments;
// read methods answer from the segment index plus whatever is still
// queued, so a spilled bin is never invisible.
type Lake struct {
	dir string
	cfg Config

	// mu guards the published index (series, anomRefs) and the
	// aggregate gauges. Lock order: history store lock → mu → qmu.
	mu       sync.RWMutex
	series   map[seriesKey][]blockRef
	anomRefs []blockRef
	maxIdx   int64 // newest spilled bin index (retention anchor)

	// Writer-goroutine-only state (plus Open before the writer starts
	// and Close after it stops).
	segs    map[string]*segment // every live segment, by manifest name
	actives map[uint16]*active
	man     *manifest
	nextSeq uint64
	enc     encoder
	buckets map[seriesKey]int // series -> index into runs
	runs    [][]int32         // reusable per-series row-index buffers
	runKeys []seriesKey
	wrefs   []blockRef

	// The spill queue is an SPSC ring: the producer side always runs
	// under the history store's lock (spills and reads both do), so push
	// is lock-free — write the slot, then publish via the atomic pushIdx.
	// qmu serializes only the consumer's ring→inflight move against
	// readers, keeping every entry visible exactly once.
	qmu     sync.Mutex
	pending []entry
	// pushIdx sits on its own cache line: the producer stores it every
	// push and the consumer polls it; sharing a line with popIdx would
	// ping-pong on every spill.
	_       [64]byte
	pushIdx atomic.Uint64
	// cachedPop is producer-owned: the producer re-reads the shared
	// popIdx only when the ring looks full against this stale copy.
	cachedPop uint64
	_         [64]byte
	popIdx    atomic.Uint64
	_         [64]byte
	inflight  []entry
	closed    atomic.Bool

	notify    chan struct{}
	syncCh    chan chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	abandoned atomic.Bool

	stSegments atomic.Int64
	stBytes    atomic.Int64
	stBins     atomic.Int64
	stAnoms    atomic.Int64
	stDropped  atomic.Int64
	stCompact  atomic.Int64
	stRecover  atomic.Int64
}

// Open creates or reopens a lake rooted at dir. Recovery replays the
// manifest, loads sealed segments via their footer, rescues unsealed
// ones by CRC scan (truncating torn tails), removes orphan files the
// manifest never learned about, and starts the background writer.
func Open(dir string, cfg Config) (*Lake, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, names, err := openManifest(dir)
	if err != nil {
		return nil, err
	}
	l := &Lake{
		dir:     dir,
		cfg:     cfg,
		series:  make(map[seriesKey][]blockRef),
		segs:    make(map[string]*segment),
		actives: make(map[uint16]*active),
		buckets: make(map[seriesKey]int),
		man:     man,
		pending: make([]entry, cfg.QueueDepth),
		notify:  make(chan struct{}, 1),
		syncCh:  make(chan chan struct{}),
		done:    make(chan struct{}),
	}
	live := make(map[string]bool, len(names))
	for _, name := range names {
		live[name] = true
		cell, seq, perr := parseSegName(name)
		if perr != nil {
			continue
		}
		path := filepath.Join(dir, filepath.FromSlash(name))
		seg, refs, recovered, oerr := openSegment(path, name, seq, cell)
		if oerr != nil {
			if os.IsNotExist(oerr) {
				continue
			}
			l.closeAll()
			return nil, oerr
		}
		if recovered {
			met.recovered.Inc()
			l.stRecover.Add(1)
		}
		l.segs[name] = seg
		l.publishRefs(refs)
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
	}
	l.removeOrphans(live)
	l.updateTotals()
	l.wg.Add(1)
	go l.writerLoop()
	return l, nil
}

// segName formats a segment's manifest-relative name.
func segName(cell uint16, seq uint64) string {
	return fmt.Sprintf("cell-%05d/seg-%08d.seg", cell, seq)
}

func parseSegName(name string) (uint16, uint64, error) {
	var cell uint32
	var seq uint64
	if _, err := fmt.Sscanf(name, "cell-%d/seg-%d.seg", &cell, &seq); err != nil {
		return 0, 0, fmt.Errorf("lake: bad segment name %q", name)
	}
	return uint16(cell), seq, nil
}

// removeOrphans deletes *.seg files on disk that the manifest does not
// know (a crash between file create and manifest add).
func (l *Lake) removeOrphans(live map[string]bool) {
	matches, _ := filepath.Glob(filepath.Join(l.dir, "cell-*", "seg-*.seg"))
	for _, m := range matches {
		rel, err := filepath.Rel(l.dir, m)
		if err != nil {
			continue
		}
		if !live[filepath.ToSlash(rel)] {
			os.Remove(m)
		}
	}
}

// --- history.Lake: the spill side (ingest path, store lock held) ---

// SpillBin enqueues one evicted bin. Never blocks, never allocates; a
// full queue drops the entry and counts it. The Bin is copied exactly
// once, straight into the ring slot — it runs under the store lock on
// the ingest hot path, so every avoided copy shows up in ingest ns/op.
func (l *Lake) SpillBin(cell, rnti uint16, cellSeries bool, binIdx int64, b *history.Bin) {
	slot, push := l.reserve()
	if slot == nil {
		return
	}
	slot.cell, slot.rnti = cell, rnti
	slot.kind = kindUE
	if cellSeries {
		slot.kind = kindCell
	}
	slot.binIdx = binIdx
	slot.bin = *b
	l.commit(push)
}

// SpillAnomaly enqueues one anomaly event evicted from the bounded
// ring. Stale series fields in the reused slot are left as-is — every
// reader dispatches on kind first.
func (l *Lake) SpillAnomaly(a history.Anomaly) {
	slot, push := l.reserve()
	if slot == nil {
		return
	}
	slot.cell, slot.rnti = a.Cell, 0
	slot.kind = kindAnomaly
	slot.anom = a
	l.commit(push)
}

// reserve claims the next free ring slot, or returns nil if the lake
// is closed or the ring is full (the drop is counted). Runs on the
// ingest hot path under the history store's lock: no mutex, no
// allocation. The caller fills the slot and publishes it with commit —
// readers cannot observe the half-filled slot because they only visit
// slots below the acquire-loaded pushIdx, and a slot is never reused
// while a reader holds qmu (the consumer cannot advance popIdx).
func (l *Lake) reserve() (*entry, uint64) {
	if l.closed.Load() {
		met.dropped.Inc()
		l.stDropped.Add(1)
		return nil, 0
	}
	cap := uint64(len(l.pending))
	push := l.pushIdx.Load()
	if push-l.cachedPop == cap {
		l.cachedPop = l.popIdx.Load()
		if push-l.cachedPop == cap {
			met.dropped.Inc()
			l.stDropped.Add(1)
			return nil, 0
		}
	}
	return &l.pending[push%cap], push
}

// commit publishes the slot claimed at push.
func (l *Lake) commit(push uint64) {
	// The slot write must be visible before the index: the consumer
	// acquires via this store's matching Load.
	l.pushIdx.Store(push + 1)
	// Queued entries are already query-visible, so routine drains can
	// wait for the flush ticker; the notify poke is reserved for
	// backpressure (ring half full). Refresh the stale consumer index
	// first so an already-drained ring doesn't notify spuriously.
	cap := uint64(len(l.pending))
	if 2*(push+1-l.cachedPop) >= cap {
		l.cachedPop = l.popIdx.Load()
		if 2*(push+1-l.cachedPop) >= cap {
			select {
			case l.notify <- struct{}{}:
			default:
			}
		}
	}
}

// queuedLocked visits every entry currently in the ring. Caller holds
// qmu (so the consumer cannot advance popIdx underneath) and the
// history store's lock (so the producer cannot push concurrently).
func (l *Lake) queuedLocked(visit func(*entry)) {
	pop := l.popIdx.Load()
	push := l.pushIdx.Load()
	for i := pop; i < push; i++ {
		visit(&l.pending[i%uint64(len(l.pending))])
	}
}

// --- history.Lake: the read side (query path, store lock held) ---

// collectQueued copies queue entries matching k into a fresh slice.
// Caller must hold l.mu (either mode); takes and releases qmu.
func (l *Lake) collectQueued(match func(*entry) bool) []entry {
	var out []entry
	l.qmu.Lock()
	l.queuedLocked(func(e *entry) {
		if match(e) {
			out = append(out, *e)
		}
	})
	for i := range l.inflight {
		if match(&l.inflight[i]) {
			out = append(out, l.inflight[i])
		}
	}
	l.qmu.Unlock()
	return out
}

// ReadSeries visits every spilled bin of one series in [fromIdx,
// toIdx]: indexed blocks first (CRC-failing blocks are skipped and
// counted), then entries still queued behind the writer.
func (l *Lake) ReadSeries(cell, rnti uint16, cellSeries bool, fromIdx, toIdx int64, visit func(binIdx int64, b history.Bin)) error {
	start := time.Now()
	k := seriesKey{cell: cell, rnti: rnti, kind: kindUE}
	if cellSeries {
		k.kind = kindCell
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	queued := l.collectQueued(func(e *entry) bool {
		return e.kind == k.kind && e.cell == cell && e.rnti == rnti &&
			e.binIdx >= fromIdx && e.binIdx <= toIdx
	})
	for _, r := range l.series[k] {
		if r.count == 0 || r.maxIdx < fromIdx || r.minIdx > toIdx {
			continue
		}
		payload, err := r.seg.readBlock(r.off, r.plen)
		if err != nil {
			met.crcErrors.Inc()
			continue
		}
		h, err := parseBlockPayload(payload)
		if err != nil {
			met.crcErrors.Inc()
			continue
		}
		if err := decodeSeriesBlock(h, fromIdx, toIdx, visit); err != nil {
			met.crcErrors.Inc()
			continue
		}
	}
	for _, e := range queued {
		visit(e.binIdx, e.bin)
	}
	met.readSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// SeriesBounds reports the min/max spilled bin index of a series
// across indexed blocks and the queue.
func (l *Lake) SeriesBounds(cell, rnti uint16, cellSeries bool) (minIdx, maxIdx int64, ok bool) {
	k := seriesKey{cell: cell, rnti: rnti, kind: kindUE}
	if cellSeries {
		k.kind = kindCell
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.series[k] {
		if r.count == 0 {
			continue
		}
		if !ok || r.minIdx < minIdx {
			minIdx = r.minIdx
		}
		if !ok || r.maxIdx > maxIdx {
			maxIdx = r.maxIdx
		}
		ok = true
	}
	note := func(e *entry) {
		if e.kind == k.kind && e.cell == cell && e.rnti == rnti {
			if !ok || e.binIdx < minIdx {
				minIdx = e.binIdx
			}
			if !ok || e.binIdx > maxIdx {
				maxIdx = e.binIdx
			}
			ok = true
		}
	}
	l.qmu.Lock()
	l.queuedLocked(note)
	for i := range l.inflight {
		note(&l.inflight[i])
	}
	l.qmu.Unlock()
	return minIdx, maxIdx, ok
}

// SpilledUEs lists the RNTIs with spilled bins on a cell.
func (l *Lake) SpilledUEs(cell uint16) []uint16 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[uint16]bool)
	for k := range l.series {
		if k.kind == kindUE && k.cell == cell {
			seen[k.rnti] = true
		}
	}
	for _, e := range l.collectQueued(func(e *entry) bool {
		return e.kind == kindUE && e.cell == cell && !seen[e.rnti]
	}) {
		seen[e.rnti] = true
	}
	out := make([]uint16, 0, len(seen))
	for rnti := range seen {
		out = append(out, rnti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Anomalies returns the spilled anomaly events, oldest first.
func (l *Lake) Anomalies() []history.Anomaly {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []history.Anomaly
	for _, r := range l.anomRefs {
		payload, err := r.seg.readBlock(r.off, r.plen)
		if err != nil {
			met.crcErrors.Inc()
			continue
		}
		h, err := parseBlockPayload(payload)
		if err != nil {
			met.crcErrors.Inc()
			continue
		}
		_ = decodeAnomalyBlock(h, func(a history.Anomaly) { out = append(out, a) })
	}
	for _, e := range l.collectQueued(func(e *entry) bool { return e.kind == kindAnomaly }) {
		out = append(out, e.anom)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtMs < out[j].AtMs })
	return out
}

// --- lifecycle ---

// Sync flushes everything queued to disk and returns once the index
// covers it. Do not call while holding the history store's lock.
func (l *Lake) Sync() error {
	ack := make(chan struct{})
	select {
	case l.syncCh <- ack:
		<-ack
		return nil
	case <-l.done:
		return fmt.Errorf("lake: closed")
	}
}

// Close drains the queue, seals every active segment, and releases
// file handles. The lake must not be used afterwards.
func (l *Lake) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.done)
	l.wg.Wait()
	var firstErr error
	if !l.abandoned.Load() {
		for cell, a := range l.actives {
			if err := a.seg.seal(a.refs); err != nil && firstErr == nil {
				firstErr = err
			}
			delete(l.actives, cell)
		}
	}
	if err := l.closeAll(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Abandon simulates a crash: the writer stops without a final flush,
// active segments stay unsealed (no footer), and file handles are
// released without fsync. Reopening the directory must recover.
func (l *Lake) Abandon() {
	if l.closed.Swap(true) {
		return
	}
	l.abandoned.Store(true)
	close(l.done)
	l.wg.Wait()
	l.closeAll()
}

func (l *Lake) closeAll() error {
	var firstErr error
	for _, s := range l.segs {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if l.man != nil {
		if err := l.man.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns a point-in-time summary.
func (l *Lake) Stats() Stats {
	return Stats{
		Segments:          int(l.stSegments.Load()),
		Bytes:             l.stBytes.Load(),
		SpilledBins:       l.stBins.Load(),
		SpilledAnomalies:  l.stAnoms.Load(),
		DroppedEntries:    l.stDropped.Load(),
		Compactions:       l.stCompact.Load(),
		RecoveredSegments: l.stRecover.Load(),
	}
}

// Dir returns the lake's root directory.
func (l *Lake) Dir() string { return l.dir }
