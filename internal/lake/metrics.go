package lake

import "nrscope/internal/obs"

// met is the lake's instrumentation, registered on the Default
// registry under the nrscope_lake_* prefix.
var met = struct {
	segments      *obs.Gauge
	bytes         *obs.Gauge
	spilledBins   *obs.Counter
	spilledAnoms  *obs.Counter
	dropped       *obs.Counter
	compactions   *obs.Counter
	retired       *obs.Counter
	recovered     *obs.Counter
	crcErrors     *obs.Counter
	writeErrors   *obs.Counter
	writeSeconds  *obs.Histogram
	readSeconds   *obs.Histogram
	queuedEntries *obs.Gauge
}{
	segments: obs.Default.Gauge("nrscope_lake_segments",
		"segment files currently live in the lake"),
	bytes: obs.Default.Gauge("nrscope_lake_bytes",
		"total bytes across live segment files"),
	spilledBins: obs.Default.Counter("nrscope_lake_spilled_bins_total",
		"history bins spilled from RAM rings into the lake"),
	spilledAnoms: obs.Default.Counter("nrscope_lake_spilled_anomalies_total",
		"anomaly events spilled from the bounded ring into the lake"),
	dropped: obs.Default.Counter("nrscope_lake_dropped_total",
		"spilled entries dropped because the spill queue was full"),
	compactions: obs.Default.Counter("nrscope_lake_compactions_total",
		"segment compaction passes that merged files"),
	retired: obs.Default.Counter("nrscope_lake_retired_segments_total",
		"segments deleted by the retention horizon"),
	recovered: obs.Default.Counter("nrscope_lake_recovered_segments_total",
		"unsealed segments recovered by CRC scan at open"),
	crcErrors: obs.Default.Counter("nrscope_lake_crc_errors_total",
		"blocks discarded for CRC or framing errors"),
	writeErrors: obs.Default.Counter("nrscope_lake_write_errors_total",
		"segment write or manifest append failures"),
	writeSeconds: obs.Default.Histogram("nrscope_lake_write_seconds",
		"latency of one spill-batch flush to disk", obs.LatencyBuckets),
	readSeconds: obs.Default.Histogram("nrscope_lake_read_seconds",
		"latency of one lake-backed series read", obs.LatencyBuckets),
	queuedEntries: obs.Default.Gauge("nrscope_lake_queue_depth",
		"spilled entries waiting for the background writer"),
}
