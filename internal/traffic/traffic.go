// Package traffic generates per-UE offered load and keeps the delivered-
// byte ledger that substitutes for the paper's tcpdump ground truth
// (§5.2.2): the evaluation compares NR-Scope's TBS-derived bitrate
// against packet-level delivery, and this package reproduces both the
// workloads (video watching, file downloads — paper §5.2.2) and the
// measurement.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Generator produces the bytes arriving at a UE's downlink (or uplink)
// queue each slot. Implementations are not safe for concurrent use;
// create one per UE per direction.
type Generator interface {
	// NextSlot returns the number of new bytes that arrived during one TTI.
	NextSlot() int
}

// CBR is a constant-bit-rate source (e.g. a fixed-quality stream).
type CBR struct {
	bytesPerSlot float64
	acc          float64
}

// NewCBR builds a CBR source of rate bps for the given TTI duration.
func NewCBR(bps float64, tti time.Duration) *CBR {
	return &CBR{bytesPerSlot: bps / 8 * tti.Seconds()}
}

// NextSlot implements Generator, carrying fractional bytes across slots.
func (c *CBR) NextSlot() int {
	c.acc += c.bytesPerSlot
	n := int(c.acc)
	c.acc -= float64(n)
	return n
}

// Dynamic is a rate-controllable source: a congestion controller (the
// paper's §6 use case) adjusts its sending rate while the flow runs.
// Safe for single-goroutine use like the other generators.
type Dynamic struct {
	tti          time.Duration
	bytesPerSlot float64
	acc          float64
}

// NewDynamic builds a dynamic source starting at bps.
func NewDynamic(bps float64, tti time.Duration) *Dynamic {
	d := &Dynamic{tti: tti}
	d.SetRate(bps)
	return d
}

// SetRate changes the sending rate (bits/second).
func (d *Dynamic) SetRate(bps float64) {
	if bps < 0 {
		bps = 0
	}
	d.bytesPerSlot = bps / 8 * d.tti.Seconds()
}

// Rate returns the current sending rate in bits/second.
func (d *Dynamic) Rate() float64 {
	return d.bytesPerSlot * 8 / d.tti.Seconds()
}

// NextSlot implements Generator.
func (d *Dynamic) NextSlot() int {
	d.acc += d.bytesPerSlot
	n := int(d.acc)
	d.acc -= float64(n)
	return n
}

// Bulk models a backlogged file download: the queue never runs dry.
type Bulk struct {
	perSlot int
}

// NewBulk returns a bulk source that keeps at least perSlot bytes
// arriving every TTI (effectively "as much as the link can carry").
func NewBulk(perSlot int) *Bulk { return &Bulk{perSlot: perSlot} }

// NextSlot implements Generator.
func (b *Bulk) NextSlot() int { return b.perSlot }

// Video models a frame-paced stream: bursts of frameBytes (with jitter)
// every framePeriod, mimicking the "watching videos" workload.
type Video struct {
	frameBytes int
	jitter     float64
	slotsPer   int
	counter    int
	rng        *rand.Rand
}

// NewVideo builds a video source: fps frames per second, mean frame size
// frameBytes, multiplicative jitter (0.2 = ±20%), for the given TTI.
func NewVideo(fps int, frameBytes int, jitter float64, tti time.Duration, seed int64) *Video {
	framePeriod := time.Second / time.Duration(fps)
	slots := int(framePeriod / tti)
	if slots < 1 {
		slots = 1
	}
	return &Video{
		frameBytes: frameBytes,
		jitter:     jitter,
		slotsPer:   slots,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// NextSlot implements Generator.
func (v *Video) NextSlot() int {
	v.counter++
	if v.counter < v.slotsPer {
		return 0
	}
	v.counter = 0
	f := 1 + v.jitter*(2*v.rng.Float64()-1)
	return int(float64(v.frameBytes) * f)
}

// OnOff is a Poisson on/off source: exponentially distributed on and off
// periods, CBR while on. It captures the bursty "come and go" pattern of
// interactive traffic.
type OnOff struct {
	cbr       *CBR
	meanOn    float64 // slots
	meanOff   float64 // slots
	on        bool
	slotsLeft int
	rng       *rand.Rand
}

// NewOnOff builds an on/off source with the given on-rate (bps) and mean
// on/off durations.
func NewOnOff(bps float64, meanOn, meanOff time.Duration, tti time.Duration, seed int64) *OnOff {
	o := &OnOff{
		cbr:     NewCBR(bps, tti),
		meanOn:  float64(meanOn) / float64(tti),
		meanOff: float64(meanOff) / float64(tti),
		rng:     rand.New(rand.NewSource(seed)),
	}
	o.on = true
	o.slotsLeft = o.draw(o.meanOn)
	return o
}

func (o *OnOff) draw(mean float64) int {
	n := int(o.rng.ExpFloat64() * mean)
	if n < 1 {
		n = 1
	}
	return n
}

// NextSlot implements Generator.
func (o *OnOff) NextSlot() int {
	if o.slotsLeft == 0 {
		o.on = !o.on
		if o.on {
			o.slotsLeft = o.draw(o.meanOn)
		} else {
			o.slotsLeft = o.draw(o.meanOff)
		}
	}
	o.slotsLeft--
	if !o.on {
		return 0
	}
	return o.cbr.NextSlot()
}

// FiniteFile delivers totalBytes as fast as the link drains it, then goes
// silent — the "downloading files" workload.
type FiniteFile struct {
	remaining int
	perSlot   int
}

// NewFiniteFile builds a finite download of totalBytes arriving in chunks
// of up to perSlot bytes per TTI.
func NewFiniteFile(totalBytes, perSlot int) *FiniteFile {
	return &FiniteFile{remaining: totalBytes, perSlot: perSlot}
}

// NextSlot implements Generator.
func (f *FiniteFile) NextSlot() int {
	if f.remaining <= 0 {
		return 0
	}
	n := f.perSlot
	if n > f.remaining {
		n = f.remaining
	}
	f.remaining -= n
	return n
}

// Done reports whether the file finished arriving.
func (f *FiniteFile) Done() bool { return f.remaining <= 0 }

// MTU is the packet size the ledger assumes when counting packets per
// TTI (Fig. 16d): a typical downlink IP packet.
const MTU = 1400

// Ledger is the tcpdump substitute: it records the bytes actually
// delivered to one UE per slot, and derives bitrates and packets-per-TTI
// exactly as the paper's phone-side capture does. Storage is sparse —
// traffic is bursty and UEs short-lived, so only slots with deliveries
// cost memory.
type Ledger struct {
	tti       time.Duration
	maxSlots  int
	slots     map[int]int64 // slot index -> delivered bytes
	delivered int64
}

// NewLedger creates a ledger for a trace of at most maxSlots TTIs.
func NewLedger(maxSlots int, tti time.Duration) *Ledger {
	return &Ledger{tti: tti, maxSlots: maxSlots, slots: make(map[int]int64)}
}

// Record notes nBytes delivered in the given slot index.
func (l *Ledger) Record(slotIdx int, nBytes int) {
	if slotIdx < 0 || slotIdx >= l.maxSlots || nBytes == 0 {
		return
	}
	l.slots[slotIdx] += int64(nBytes)
	l.delivered += int64(nBytes)
}

// TotalBytes returns the total delivered bytes.
func (l *Ledger) TotalBytes() int64 { return l.delivered }

// BytesAt returns the delivered bytes in one slot.
func (l *Ledger) BytesAt(slotIdx int) int64 {
	return l.slots[slotIdx]
}

// WindowBitrate computes the delivered bitrate (bits/s) over the window
// of slots [from, to).
func (l *Ledger) WindowBitrate(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > l.maxSlots {
		to = l.maxSlots
	}
	if to <= from {
		return 0
	}
	var sum int64
	if to-from < len(l.slots) {
		for s := from; s < to; s++ {
			sum += l.slots[s]
		}
	} else {
		for s, b := range l.slots {
			if s >= from && s < to {
				sum += b
			}
		}
	}
	dur := float64(to-from) * l.tti.Seconds()
	return float64(sum) * 8 / dur
}

// PacketsPerTTI returns, for every slot with traffic in slot order, the
// number of MTU packets that slot's delivery aggregates (Fig. 16d).
func (l *Ledger) PacketsPerTTI() []int {
	keys := make([]int, 0, len(l.slots))
	for s := range l.slots {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, s := range keys {
		out = append(out, int((l.slots[s]+MTU-1)/MTU))
	}
	return out
}

// String summarises the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("ledger{%d active slots, %d bytes}", len(l.slots), l.delivered)
}
