package traffic

import (
	"math"
	"testing"
	"time"
)

const tti = 500 * time.Microsecond // 30 kHz SCS

func TestCBRRate(t *testing.T) {
	g := NewCBR(5e6, tti) // 5 Mbit/s
	var total int
	const slots = 20000 // 10 s
	for i := 0; i < slots; i++ {
		total += g.NextSlot()
	}
	gotBps := float64(total) * 8 / (float64(slots) * tti.Seconds())
	if math.Abs(gotBps-5e6)/5e6 > 0.001 {
		t.Errorf("CBR rate %.0f bps, want 5e6", gotBps)
	}
}

func TestCBRFractionalAccumulation(t *testing.T) {
	// 100 kbps at 0.5 ms slots = 6.25 bytes/slot; must not round to 6.
	g := NewCBR(100e3, tti)
	var total int
	for i := 0; i < 8000; i++ {
		total += g.NextSlot()
	}
	want := 100e3 / 8 * 4.0 // 4 seconds
	if math.Abs(float64(total)-want) > 2 {
		t.Errorf("CBR delivered %d bytes, want %.0f", total, want)
	}
}

func TestDynamicRateChanges(t *testing.T) {
	g := NewDynamic(4e6, tti)
	if math.Abs(g.Rate()-4e6) > 1 {
		t.Errorf("initial rate %.0f", g.Rate())
	}
	total := 0
	for i := 0; i < 2000; i++ { // 1 s at 4 Mbps
		total += g.NextSlot()
	}
	if got := float64(total) * 8; math.Abs(got-4e6)/4e6 > 0.01 {
		t.Errorf("delivered %.0f bits in 1 s at 4 Mbps", got)
	}
	g.SetRate(1e6)
	total = 0
	for i := 0; i < 2000; i++ {
		total += g.NextSlot()
	}
	if got := float64(total) * 8; math.Abs(got-1e6)/1e6 > 0.01 {
		t.Errorf("delivered %.0f bits in 1 s after SetRate(1M)", got)
	}
	g.SetRate(-5)
	if g.Rate() != 0 {
		t.Error("negative rate not clamped to zero")
	}
	if g.NextSlot() != 0 {
		t.Error("zero-rate source produced bytes")
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger(10, tti)
	l.Record(1, 500)
	if s := l.String(); s == "" || s[0] != 'l' {
		t.Errorf("String() = %q", s)
	}
}

func TestBulkAlwaysBacklogged(t *testing.T) {
	g := NewBulk(5000)
	for i := 0; i < 100; i++ {
		if g.NextSlot() != 5000 {
			t.Fatal("bulk source ran dry")
		}
	}
}

func TestVideoFramePacing(t *testing.T) {
	g := NewVideo(30, 20000, 0.2, tti, 1)
	bursts := 0
	var total int
	const slots = 2000 * 10 // 10 s at 0.5 ms
	for i := 0; i < slots; i++ {
		b := g.NextSlot()
		if b > 0 {
			bursts++
			total += b
		}
	}
	if bursts < 290 || bursts > 310 {
		t.Errorf("%d frame bursts over 10 s, want ~300", bursts)
	}
	meanFrame := float64(total) / float64(bursts)
	if math.Abs(meanFrame-20000)/20000 > 0.1 {
		t.Errorf("mean frame %.0f bytes, want ~20000", meanFrame)
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	g := NewOnOff(8e6, 100*time.Millisecond, 100*time.Millisecond, tti, 2)
	var total int
	const slots = 200000 // 100 s
	for i := 0; i < slots; i++ {
		total += g.NextSlot()
	}
	gotBps := float64(total) * 8 / (float64(slots) * tti.Seconds())
	// ~50% duty cycle of 8 Mbit/s.
	if gotBps < 2.5e6 || gotBps > 5.5e6 {
		t.Errorf("on/off mean rate %.2f Mbps, want ~4", gotBps/1e6)
	}
}

func TestFiniteFileCompletes(t *testing.T) {
	g := NewFiniteFile(10000, 3000)
	var total int
	for i := 0; i < 10 && !g.Done(); i++ {
		total += g.NextSlot()
	}
	if total != 10000 {
		t.Errorf("file delivered %d bytes, want 10000", total)
	}
	if g.NextSlot() != 0 {
		t.Error("finished file kept producing")
	}
}

func TestLedgerBitrate(t *testing.T) {
	l := NewLedger(2000, tti) // 1 s trace
	// 1000 bytes every slot for the first half.
	for i := 0; i < 1000; i++ {
		l.Record(i, 1000)
	}
	// Full-window rate: 1e6 bytes over 1 s = 8 Mbit/s... over 2000 slots.
	if got := l.WindowBitrate(0, 2000); math.Abs(got-8e6) > 1 {
		t.Errorf("full-window bitrate %.0f, want 8e6", got)
	}
	// First-half rate: 16 Mbit/s.
	if got := l.WindowBitrate(0, 1000); math.Abs(got-16e6) > 1 {
		t.Errorf("half-window bitrate %.0f, want 16e6", got)
	}
	// Second half is silent.
	if got := l.WindowBitrate(1000, 2000); got != 0 {
		t.Errorf("silent window bitrate %.0f, want 0", got)
	}
	if l.TotalBytes() != 1e6 {
		t.Errorf("total %d, want 1e6", l.TotalBytes())
	}
}

func TestLedgerBoundsIgnored(t *testing.T) {
	l := NewLedger(10, tti)
	l.Record(-1, 100)
	l.Record(10, 100)
	if l.TotalBytes() != 0 {
		t.Error("out-of-range records counted")
	}
	if l.BytesAt(-1) != 0 || l.BytesAt(99) != 0 {
		t.Error("out-of-range reads nonzero")
	}
}

func TestPacketsPerTTI(t *testing.T) {
	l := NewLedger(10, tti)
	l.Record(0, MTU)       // 1 packet
	l.Record(1, MTU*3)     // 3 packets aggregated
	l.Record(2, MTU*2+100) // 3 packets (partial counts)
	got := l.PacketsPerTTI()
	want := []int{1, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("PacketsPerTTI = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d: %d packets, want %d", i, got[i], want[i])
		}
	}
}
