package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.WriteUint(0b1011, 4)
	w.WriteBool(true)
	w.WriteBool(false)
	w.WriteBit(1)
	w.WriteUint(0xDEAD, 16)
	if w.Len() != 23 {
		t.Fatalf("Len = %d, want 23", w.Len())
	}
	r := NewReader(w.Bits())
	if got := r.ReadUint(4); got != 0b1011 {
		t.Errorf("ReadUint(4) = %#b, want 1011", got)
	}
	if !r.ReadBool() || r.ReadBool() {
		t.Errorf("ReadBool sequence wrong")
	}
	if got := r.ReadBit(); got != 1 {
		t.Errorf("ReadBit = %d, want 1", got)
	}
	if got := r.ReadUint(16); got != 0xDEAD {
		t.Errorf("ReadUint(16) = %#x, want 0xdead", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
	if r.Err() != nil {
		t.Errorf("Err = %v, want nil", r.Err())
	}
}

func TestReaderPastEnd(t *testing.T) {
	r := NewReader([]uint8{1, 0})
	r.ReadUint(2)
	if got := r.ReadBit(); got != 0 {
		t.Errorf("past-end ReadBit = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Error("expected sticky error after reading past end")
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining after error = %d, want 0", r.Remaining())
	}
}

func TestWriteUintWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteUint(65) did not panic")
		}
	}()
	NewWriter(0).WriteUint(0, 65)
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(data []byte, extra uint8) bool {
		n := len(data) * 8
		if n == 0 {
			return true
		}
		n -= int(extra % 8) // exercise non-byte-aligned lengths
		b := Unpack(data, n)
		packed := Pack(b)
		back := Unpack(packed, n)
		for i := range b {
			if b[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToFromUintRoundTrip(t *testing.T) {
	f := func(v uint64, width uint8) bool {
		n := int(width%64) + 1
		masked := v & (1<<uint(n) - 1)
		return ToUint(FromUint(masked, n)) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXOR(t *testing.T) {
	a := []uint8{1, 0, 1, 1}
	b := []uint8{1, 1, 0, 1}
	got := XOR(a, b)
	want := []uint8{0, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("XOR = %v, want %v", got, want)
		}
	}
}

func TestCRCKindString(t *testing.T) {
	want := map[CRCKind]string{CRC24A: "CRC24A", CRC24C: "CRC24C", CRC16: "CRC16", CRC11: "CRC11"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

func TestCheckCRCShortBlock(t *testing.T) {
	if _, ok := CheckCRC(CRC24A, make([]uint8, 10)); ok {
		t.Error("block shorter than CRC accepted")
	}
	if _, ok := CheckDCICRC(make([]uint8, 5), 1); ok {
		t.Error("DCI block shorter than CRC accepted")
	}
}

func TestUnpackPanicsWhenTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unpack beyond data did not panic")
		}
	}()
	Unpack([]byte{0xFF}, 9)
}

func TestToUintPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ToUint over 64 bits did not panic")
		}
	}()
	ToUint(make([]uint8, 65))
}

func TestXORPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("XOR length mismatch did not panic")
		}
	}()
	XOR([]uint8{1}, []uint8{1, 0})
}

func TestCRCLengths(t *testing.T) {
	for _, k := range []CRCKind{CRC24A, CRC24C, CRC16, CRC11} {
		if got := len(CRC(k, []uint8{1, 0, 1})); got != k.Len() {
			t.Errorf("%v: CRC length %d, want %d", k, got, k.Len())
		}
	}
}

func TestCRCDetectsSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []CRCKind{CRC24A, CRC24C, CRC16, CRC11} {
		data := randomBits(rng, 100)
		block := AttachCRC(k, data)
		if _, ok := CheckCRC(k, block); !ok {
			t.Fatalf("%v: clean block failed CRC", k)
		}
		for trial := 0; trial < 50; trial++ {
			i := rng.Intn(len(block))
			block[i] ^= 1
			if _, ok := CheckCRC(k, block); ok {
				t.Errorf("%v: single-bit error at %d not detected", k, i)
			}
			block[i] ^= 1
		}
	}
}

func TestCRCZeroPayloadNonDegenerate(t *testing.T) {
	// A plain CRC of all-zero data is all-zero; the DCI ones-prepending
	// must break that degeneracy (that is its purpose in 38.212 §7.3.2).
	zeros := make([]uint8, 40)
	plain := CRC(CRC24C, zeros)
	if ToUint(plain) != 0 {
		t.Fatalf("plain CRC of zeros = %#x, want 0", ToUint(plain))
	}
	block := AttachDCICRC(zeros, 0)
	crc := block[len(block)-24:]
	if ToUint(crc) == 0 {
		t.Error("DCI CRC of zeros is zero; ones-prepending missing")
	}
}

func TestAttachCheckDCICRC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		payload := randomBits(rng, 30+rng.Intn(50))
		rnti := uint16(rng.Intn(0x10000))
		block := AttachDCICRC(payload, rnti)
		if len(block) != len(payload)+24 {
			t.Fatalf("block length %d, want %d", len(block), len(payload)+24)
		}
		if _, ok := CheckDCICRC(block, rnti); !ok {
			t.Fatal("CheckDCICRC failed with correct RNTI")
		}
		if _, ok := CheckDCICRC(block, rnti^0x0001); ok {
			t.Error("CheckDCICRC passed with wrong RNTI")
		}
	}
}

func TestRecoverRNTI(t *testing.T) {
	f := func(seed int64, rnti uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := randomBits(rng, 40)
		block := AttachDCICRC(payload, rnti)
		_, got, ok := RecoverRNTI(block)
		return ok && got == rnti
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecoverRNTIRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := randomBits(rng, 40)
	block := AttachDCICRC(payload, 0x4601)
	// Corrupt a payload bit: the unscrambled high 8 CRC bits should no
	// longer match, so recovery must fail (this is the paper's built-in
	// verification, §3.1.2).
	rejected := 0
	for i := 0; i < len(payload); i++ {
		block[i] ^= 1
		if _, _, ok := RecoverRNTI(block); !ok {
			rejected++
		}
		block[i] ^= 1
	}
	// A corrupted payload changes the full CRC; the 8 visible check bits
	// catch it with probability 1 - 2^-8 per pattern. Over 40 positions
	// expect at most a couple of misses.
	if rejected < len(payload)-3 {
		t.Errorf("only %d/%d corruptions rejected", rejected, len(payload))
	}
}

func TestRecoverRNTIShortBlock(t *testing.T) {
	if _, _, ok := RecoverRNTI(make([]uint8, 10)); ok {
		t.Error("RecoverRNTI accepted a block shorter than the CRC")
	}
}

func TestGoldSequenceKnownProperties(t *testing.T) {
	// Distinct cinit values must give distinct sequences.
	a := GoldSequence(0x12345, 256)
	b := GoldSequence(0x12346, 256)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("distinct cinit produced identical Gold sequences")
	}
	// Sequences must be deterministic.
	c := GoldSequence(0x12345, 256)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("Gold sequence not deterministic")
		}
	}
}

func TestGoldSequenceBalance(t *testing.T) {
	// Gold sequences are balanced: ones frequency ~ 1/2.
	seq := GoldSequence(0x5A5A5, 10000)
	ones := 0
	for _, b := range seq {
		ones += int(b)
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("Gold sequence ones = %d/10000, not balanced", ones)
	}
}

func TestScrambleInvolution(t *testing.T) {
	f := func(cinit uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randomBits(rng, 200)
		orig := append([]uint8(nil), data...)
		ScrambleInPlace(cinit&0x7FFFFFFF, data)
		ScrambleInPlace(cinit&0x7FFFFFFF, data)
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScramblingInits(t *testing.T) {
	if got := PDCCHScramblingInit(0, 500); got != 500 {
		t.Errorf("PDCCHScramblingInit(0,500) = %d, want 500", got)
	}
	if got := PDCCHScramblingInit(0x4601, 500); got != (0x4601<<16+500)&0x7FFFFFFF {
		t.Errorf("PDCCHScramblingInit = %#x", got)
	}
	// DMRS inits must differ across symbols and slots.
	a := PDCCHDMRSInit(0, 0, 1)
	b := PDCCHDMRSInit(0, 1, 1)
	c := PDCCHDMRSInit(1, 0, 1)
	if a == b || a == c || b == c {
		t.Errorf("PDCCHDMRSInit collisions: %d %d %d", a, b, c)
	}
}

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(2))
	}
	return out
}

func BenchmarkCRC24C(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := randomBits(rng, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CRC(CRC24C, data)
	}
}

func BenchmarkGoldSequence(b *testing.B) {
	dst := make([]uint8, 864)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GoldSequenceInto(0x12345, dst)
	}
}
