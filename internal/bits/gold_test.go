package bits

import (
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// goldSequenceRefInto is the original buffer-based Gold generator,
// retained as the reference the register/jump-matrix implementation must
// match bit for bit.
func goldSequenceRefInto(cinit uint32, dst []uint8) {
	n := len(dst)
	total := goldNc + n + 31
	x1 := make([]uint8, total)
	x2 := make([]uint8, total)
	x1[0] = 1
	for i := 0; i < 31; i++ {
		x2[i] = uint8(cinit>>uint(i)) & 1
	}
	for i := 0; i+31 < total; i++ {
		x1[i+31] = x1[i+3] ^ x1[i]
		x2[i+31] = x2[i+3] ^ x2[i+2] ^ x2[i+1] ^ x2[i]
	}
	for i := 0; i < n; i++ {
		dst[i] = x1[i+goldNc] ^ x2[i+goldNc]
	}
}

// TestGoldSequenceMatchesReference: the LFSR-register generator with the
// precomputed Nc jump must reproduce the buffer-based reference for a
// spread of cinit values (including 0 and the full 31-bit mask) and
// lengths around typical scrambling spans.
func TestGoldSequenceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cinits := []uint32{0, 1, 0x12345, 0x5A5A5, 0x7FFFFFFF}
	for i := 0; i < 20; i++ {
		cinits = append(cinits, rng.Uint32()&0x7FFFFFFF)
	}
	for _, cinit := range cinits {
		for _, n := range []int{1, 31, 32, 100, 864} {
			got := make([]uint8, n)
			want := make([]uint8, n)
			GoldSequenceInto(cinit, got)
			goldSequenceRefInto(cinit, want)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("cinit %#x n %d: bit %d = %d, reference %d",
						cinit, n, j, got[j], want[j])
				}
			}
		}
	}
}

// TestGoldSequenceZeroAlloc: the generator and in-place scrambler must be
// allocation free (they run per candidate per slot).
func TestGoldSequenceZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	dst := make([]uint8, 864)
	if n := testing.AllocsPerRun(100, func() {
		GoldSequenceInto(0x12345, dst)
	}); n != 0 {
		t.Errorf("GoldSequenceInto: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ScrambleInPlace(0x12345, dst)
	}); n != 0 {
		t.Errorf("ScrambleInPlace: %.1f allocs/op, want 0", n)
	}
}

// TestDescrambleLLRInPlace: sign flips exactly where the sequence bit is
// 1, preserving magnitude, and handling non-finite values and zero length.
func TestDescrambleLLRInPlace(t *testing.T) {
	seq := []uint8{0, 1, 1, 0, 1, 0, 1}
	llr := []float64{1.5, -2.25, 0, -0.0, math.Inf(1), math.NaN(), -3}
	orig := append([]float64(nil), llr...)
	DescrambleLLRInPlace(seq, llr)
	for i := range llr {
		want := orig[i]
		if seq[i] == 1 {
			want = -want
		}
		if math.IsNaN(want) {
			if !math.IsNaN(llr[i]) {
				t.Fatalf("llr[%d] = %v, want NaN", i, llr[i])
			}
			continue
		}
		// Compare bit patterns so ±0 flips are observed too.
		if math.Float64bits(llr[i]) != math.Float64bits(want) {
			t.Fatalf("llr[%d] = %v (bits %#x), want %v", i, llr[i], math.Float64bits(llr[i]), want)
		}
	}
	DescrambleLLRInPlace(nil, nil) // must not panic
	if raceflag.Enabled {
		return
	}
	if n := testing.AllocsPerRun(100, func() {
		DescrambleLLRInPlace(seq, llr)
	}); n != 0 {
		t.Errorf("DescrambleLLRInPlace: %.1f allocs/op, want 0", n)
	}
}

// TestAppendPacked: AppendPacked must agree with Pack and reuse capacity.
func TestAppendPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64, 101} {
		b := make([]uint8, n)
		for i := range b {
			b[i] = uint8(rng.Intn(2))
		}
		want := Pack(b)
		got := AppendPacked(nil, b)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: byte %d = %#x, want %#x", n, i, got[i], want[i])
			}
		}
	}
	buf := make([]byte, 0, 16)
	b := []uint8{1, 0, 1, 1, 0, 0, 1, 0, 1}
	if raceflag.Enabled {
		return
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendPacked(buf[:0], b)
	}); n != 0 {
		t.Errorf("AppendPacked into reused buffer: %.1f allocs/op, want 0", n)
	}
}

// TestCheckCRCZeroAlloc: CheckCRC runs per decode candidate and must not
// allocate.
func TestCheckCRCZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	payload := []uint8{1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0}
	block := AttachCRC(CRC24A, payload)
	if _, ok := CheckCRC(CRC24A, block); !ok {
		t.Fatal("CheckCRC rejected a valid block")
	}
	if n := testing.AllocsPerRun(100, func() {
		CheckCRC(CRC24A, block)
	}); n != 0 {
		t.Errorf("CheckCRC: %.1f allocs/op, want 0", n)
	}
}
