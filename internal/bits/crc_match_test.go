package bits

import (
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// TestMatchDCICRCAgreesWithCheck: the allocation-free matcher must agree
// with CheckDCICRC on passing blocks, corrupted blocks and wrong RNTIs.
func TestMatchDCICRCAgreesWithCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		payload := make([]uint8, 1+rng.Intn(120))
		for i := range payload {
			payload[i] = uint8(rng.Intn(2))
		}
		rnti := uint16(rng.Intn(1 << 16))
		block := AttachDCICRC(payload, rnti)
		if !MatchDCICRC(block, rnti) {
			t.Fatalf("trial %d: fresh block rejected", trial)
		}
		if wrong := rnti ^ uint16(1+rng.Intn(1<<16-1)); MatchDCICRC(block, wrong) {
			t.Fatalf("trial %d: wrong RNTI %#x accepted", trial, wrong)
		}
		// Any single-bit corruption must flip both verifiers the same way.
		pos := rng.Intn(len(block))
		block[pos] ^= 1
		_, want := CheckDCICRC(block, rnti)
		if got := MatchDCICRC(block, rnti); got != want {
			t.Fatalf("trial %d: corrupted bit %d: Match %v, Check %v", trial, pos, got, want)
		}
	}
	if MatchDCICRC(make([]uint8, 23), 1) {
		t.Error("short block accepted")
	}
}

func TestMatchDCICRCZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	payload := make([]uint8, 67)
	block := AttachDCICRC(payload, 0x4601)
	if n := testing.AllocsPerRun(100, func() {
		if !MatchDCICRC(block, 0x4601) {
			t.Fatal("match failed")
		}
	}); n != 0 {
		t.Errorf("MatchDCICRC: %.1f allocs/op, want 0", n)
	}
}
