package bits

// CRC generator polynomials from TS 38.212 §5.1. The polynomials are
// written with the leading (degree) term implicit, low coefficients in the
// low bits: e.g. CRC24A g(D) = D^24 + D^23 + D^18 + D^17 + D^14 + D^11 +
// D^10 + D^7 + D^6 + D^5 + D^4 + D^3 + D + 1 -> 0x864CFB.
const (
	polyCRC24A = 0x864CFB // transport-block CRC (PDSCH)
	polyCRC24C = 0xB2B117 // PDCCH / polar CRC
	polyCRC16  = 0x1021   // CRC16 (PBCH payloads < 20 bits in LTE; kept for tooling)
	polyCRC11  = 0x621    // PUCCH polar CRC
)

// CRCKind selects one of the 3GPP CRC variants.
type CRCKind int

// Supported CRC variants.
const (
	CRC24A CRCKind = iota
	CRC24C
	CRC16
	CRC11
)

// Len returns the CRC length in bits.
func (k CRCKind) Len() int {
	switch k {
	case CRC24A, CRC24C:
		return 24
	case CRC16:
		return 16
	case CRC11:
		return 11
	default:
		panic("bits: unknown CRC kind")
	}
}

func (k CRCKind) poly() uint32 {
	switch k {
	case CRC24A:
		return polyCRC24A
	case CRC24C:
		return polyCRC24C
	case CRC16:
		return polyCRC16
	case CRC11:
		return polyCRC11
	default:
		panic("bits: unknown CRC kind")
	}
}

// String implements fmt.Stringer.
func (k CRCKind) String() string {
	switch k {
	case CRC24A:
		return "CRC24A"
	case CRC24C:
		return "CRC24C"
	case CRC16:
		return "CRC16"
	case CRC11:
		return "CRC11"
	default:
		return "CRC?"
	}
}

// CRC computes the CRC of an unpacked bit string, returned as a bit slice
// of k.Len() bits, MSB-first. Registers start at zero; DCI ones-prepending
// (TS 38.212 §7.3.2 prepends 24 ones before the CRC24C of a DCI payload)
// is the caller's job, see AttachDCICRC.
func CRC(k CRCKind, data []uint8) []uint8 {
	n := k.Len()
	poly := k.poly()
	var reg uint32
	top := uint32(1) << uint(n-1)
	mask := (uint32(1) << uint(n)) - 1
	for _, b := range data {
		fb := (reg>>uint(n-1))&1 ^ uint32(b&1)
		reg = (reg << 1) & mask
		if fb != 0 {
			reg ^= poly & mask
		}
	}
	_ = top
	return FromUint(uint64(reg), n)
}

// AttachCRC appends CRC(k, data) to data and returns the combined slice.
func AttachCRC(k CRCKind, data []uint8) []uint8 {
	crc := CRC(k, data)
	out := make([]uint8, 0, len(data)+len(crc))
	out = append(out, data...)
	out = append(out, crc...)
	return out
}

// CheckCRC verifies that the trailing k.Len() bits of block are the CRC of
// the preceding bits. It returns the payload (aliasing block) and whether
// the check passed. It allocates nothing: the CRC register bits are
// compared against the trailing bits directly, so per-slot decode paths
// (PDSCH transport blocks, PUCCH UCI) can run one check per candidate
// without heap traffic.
func CheckCRC(k CRCKind, block []uint8) (payload []uint8, ok bool) {
	n := k.Len()
	if len(block) < n {
		return nil, false
	}
	payload = block[:len(block)-n]
	poly := k.poly()
	mask := uint32(1)<<uint(n) - 1
	var reg uint32
	for _, b := range payload {
		fb := (reg>>uint(n-1))&1 ^ uint32(b&1)
		reg = (reg << 1) & mask
		if fb != 0 {
			reg ^= poly & mask
		}
	}
	got := block[len(block)-n:]
	for i := 0; i < n; i++ {
		if uint8(reg>>uint(n-1-i))&1 != got[i]&1 {
			return payload, false
		}
	}
	return payload, true
}

// dciCRCOnes is the number of 1-bits prepended to a DCI payload before CRC
// computation (TS 38.212 §7.3.2). The ones are not transmitted; they only
// seed the CRC so that all-zero payloads still produce a non-trivial CRC.
const dciCRCOnes = 24

// dciCRCPrefix computes CRC24C over 24 ones followed by the payload.
func dciCRCPrefix(payload []uint8) []uint8 {
	buf := make([]uint8, dciCRCOnes+len(payload))
	for i := 0; i < dciCRCOnes; i++ {
		buf[i] = 1
	}
	copy(buf[dciCRCOnes:], payload)
	return CRC(CRC24C, buf)
}

// AttachDCICRC attaches the PDCCH CRC to a DCI payload: CRC24C is computed
// over 24 prepended ones plus the payload, then the last 16 CRC bits are
// XOR-scrambled with the 16-bit RNTI (TS 38.212 §7.3.2). The returned
// slice is payload || scrambledCRC24.
func AttachDCICRC(payload []uint8, rnti uint16) []uint8 {
	crc := dciCRCPrefix(payload)
	rntiBits := FromUint(uint64(rnti), 16)
	for i := 0; i < 16; i++ {
		crc[8+i] ^= rntiBits[i]
	}
	out := make([]uint8, 0, len(payload)+24)
	out = append(out, payload...)
	out = append(out, crc...)
	return out
}

// CheckDCICRC verifies a received DCI block (payload || scrambled CRC24)
// against a hypothesised RNTI. It returns the payload and whether the CRC
// matched under that RNTI.
func CheckDCICRC(block []uint8, rnti uint16) (payload []uint8, ok bool) {
	if len(block) < 24 {
		return nil, false
	}
	payload = block[:len(block)-24]
	want := dciCRCPrefix(payload)
	got := block[len(block)-24:]
	rntiBits := FromUint(uint64(rnti), 16)
	for i := 0; i < 8; i++ {
		if want[i] != got[i] {
			return payload, false
		}
	}
	for i := 0; i < 16; i++ {
		if want[8+i]^rntiBits[i] != got[8+i] {
			return payload, false
		}
	}
	return payload, true
}

// MatchDCICRC reports whether block (payload || scrambled CRC24) passes
// the DCI CRC under the hypothesised RNTI. It is CheckDCICRC without the
// payload return and without any allocation: the blind decoder runs one
// CRC hypothesis per tracked UE per candidate position per TTI, so this
// is the single hottest per-UE operation of the whole scope.
func MatchDCICRC(block []uint8, rnti uint16) bool {
	if len(block) < 24 {
		return false
	}
	const n = 24
	const mask = uint32(1)<<n - 1
	var reg uint32
	// CRC24C over 24 prepended ones plus the payload, registers at zero
	// (same recurrence as CRC, inlined to keep the buffers off the heap).
	for i := 0; i < dciCRCOnes; i++ {
		fb := (reg>>(n-1))&1 ^ 1
		reg = (reg << 1) & mask
		if fb != 0 {
			reg ^= polyCRC24C & mask
		}
	}
	for _, b := range block[:len(block)-24] {
		fb := (reg>>(n-1))&1 ^ uint32(b&1)
		reg = (reg << 1) & mask
		if fb != 0 {
			reg ^= polyCRC24C & mask
		}
	}
	got := block[len(block)-24:]
	// The upper 8 CRC bits are transmitted in the clear; the lower 16 are
	// XOR-scrambled with the RNTI (MSB-first).
	for i := 0; i < 8; i++ {
		if uint8(reg>>uint(n-1-i))&1 != got[i]&1 {
			return false
		}
	}
	for i := 0; i < 16; i++ {
		want := uint8(reg>>uint(15-i))&1 ^ uint8(rnti>>uint(15-i))&1
		if want != got[8+i]&1 {
			return false
		}
	}
	return true
}

// RecoverRNTI implements the sniffer trick the paper inherits from 4G
// tools (§3.1.2): given a received DCI block whose CRC is scrambled with
// an unknown RNTI, locally recompute the CRC of the payload and XOR it
// with the received CRC. If the block decoded correctly, the upper 8 CRC
// bits (which the RNTI does not touch) match — that is the verification —
// and the XOR of the lower 16 bits *is* the RNTI.
func RecoverRNTI(block []uint8) (payload []uint8, rnti uint16, ok bool) {
	if len(block) < 24 {
		return nil, 0, false
	}
	payload = block[:len(block)-24]
	want := dciCRCPrefix(payload)
	got := block[len(block)-24:]
	for i := 0; i < 8; i++ {
		if want[i] != got[i] {
			return payload, 0, false
		}
	}
	var r uint16
	for i := 0; i < 16; i++ {
		r = r<<1 | uint16(want[8+i]^got[8+i])
	}
	return payload, r, true
}
