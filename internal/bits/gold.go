package bits

// Gold sequence generator from TS 38.211 §5.2.1. Pseudo-random sequences
// in NR (scrambling, DMRS) are length-31 Gold sequences:
//
//	c(n)      = (x1(n+Nc) + x2(n+Nc)) mod 2, Nc = 1600
//	x1(n+31)  = (x1(n+3) + x1(n)) mod 2
//	x2(n+31)  = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
//
// x1 is initialised with x1(0)=1, x1(n)=0 for n=1..30; x2 with the 31-bit
// cinit supplied by the physical channel (e.g. PDCCH DMRS uses a function
// of slot, symbol and the configured scrambling id).

const goldNc = 1600

// GoldSequence returns the first n bits of the Gold sequence with the
// given initialisation value cinit.
func GoldSequence(cinit uint32, n int) []uint8 {
	out := make([]uint8, n)
	GoldSequenceInto(cinit, out)
	return out
}

// GoldSequenceInto fills dst with the Gold sequence for cinit, avoiding an
// allocation on hot paths (per-slot scrambling).
func GoldSequenceInto(cinit uint32, dst []uint8) {
	n := len(dst)
	total := goldNc + n + 31
	x1 := make([]uint8, total)
	x2 := make([]uint8, total)
	x1[0] = 1
	for i := 0; i < 31; i++ {
		x2[i] = uint8(cinit>>uint(i)) & 1
	}
	for i := 0; i+31 < total; i++ {
		x1[i+31] = x1[i+3] ^ x1[i]
		x2[i+31] = x2[i+3] ^ x2[i+2] ^ x2[i+1] ^ x2[i]
	}
	for i := 0; i < n; i++ {
		dst[i] = x1[i+goldNc] ^ x2[i+goldNc]
	}
}

// ScrambleInPlace XORs data with the Gold sequence for cinit, in place.
// Applying it twice with the same cinit restores the original data.
func ScrambleInPlace(cinit uint32, data []uint8) {
	seq := make([]uint8, len(data))
	GoldSequenceInto(cinit, seq)
	for i := range data {
		data[i] ^= seq[i]
	}
}

// PDCCHScramblingInit computes the cinit for PDCCH bit scrambling
// (TS 38.211 §7.3.2.3): cinit = (nRNTI·2^16 + nID) mod 2^31. For the
// common search space nRNTI is 0 and nID is the cell id.
func PDCCHScramblingInit(nRNTI uint16, nID uint16) uint32 {
	return (uint32(nRNTI)<<16 + uint32(nID)) & 0x7FFFFFFF
}

// PDCCHDMRSInit computes the cinit for PDCCH DMRS generation
// (TS 38.211 §7.4.1.3.1) for a given slot and symbol:
// cinit = (2^17 (14·ns + l + 1)(2·nID + 1) + 2·nID) mod 2^31.
func PDCCHDMRSInit(slot, symbol int, nID uint16) uint32 {
	v := (uint64(1) << 17) * uint64(14*slot+symbol+1) * uint64(2*uint32(nID)+1)
	v += 2 * uint64(nID)
	return uint32(v & 0x7FFFFFFF)
}

// PDSCHScramblingInit computes the cinit for PDSCH bit scrambling
// (TS 38.211 §7.3.1.1): cinit = nRNTI·2^15 + q·2^14 + nID, with codeword
// index q (0 here; single-codeword transmission).
func PDSCHScramblingInit(rnti uint16, nID uint16) uint32 {
	return (uint32(rnti)<<15 + uint32(nID)) & 0x7FFFFFFF
}
