package bits

import (
	"math"
	mathbits "math/bits"
)

// Gold sequence generator from TS 38.211 §5.2.1. Pseudo-random sequences
// in NR (scrambling, DMRS) are length-31 Gold sequences:
//
//	c(n)      = (x1(n+Nc) + x2(n+Nc)) mod 2, Nc = 1600
//	x1(n+31)  = (x1(n+3) + x1(n)) mod 2
//	x2(n+31)  = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
//
// x1 is initialised with x1(0)=1, x1(n)=0 for n=1..30; x2 with the 31-bit
// cinit supplied by the physical channel (e.g. PDCCH DMRS uses a function
// of slot, symbol and the configured scrambling id).
//
// Each register lives in a uint32 with bit i holding x(n+i), so one step
// is a feedback tap, a shift, and an insert at bit 30 — no per-bit
// buffers. The Nc = 1600 warm-up is precomputed: x1's post-Nc state is a
// cinit-independent constant, and x2 is fast-forwarded through a GF(2)
// jump matrix (the one-step transition matrix raised to the 1600th power
// at package init), so GoldSequenceInto does no work proportional to Nc
// and no allocation at all.

const goldNc = 1600

// goldX1Start is the x1 register after the Nc warm-up (cinit independent).
var goldX1Start uint32

// goldX2Jump is the x2 one-step transition matrix raised to the Nc-th
// power: post-warm-up bit i is the parity of goldX2Jump[i] AND cinit.
var goldX2Jump [31]uint32

// stepX1 advances x1 by one bit: x1(n+31) = x1(n+3) + x1(n).
func stepX1(s uint32) uint32 {
	fb := ((s >> 3) ^ s) & 1
	return s>>1 | fb<<30
}

// stepX2 advances x2 by one bit:
// x2(n+31) = x2(n+3) + x2(n+2) + x2(n+1) + x2(n).
func stepX2(s uint32) uint32 {
	fb := ((s >> 3) ^ (s >> 2) ^ (s >> 1) ^ s) & 1
	return s>>1 | fb<<30
}

// applyGF2 applies a 31×31 GF(2) matrix (row i = mask of contributing
// state bits) to a register state.
func applyGF2(m *[31]uint32, s uint32) uint32 {
	var out uint32
	for i, row := range m {
		out |= uint32(mathbits.OnesCount32(row&s)&1) << uint(i)
	}
	return out
}

// composeGF2 sets dst = b∘a (apply a first, then b).
func composeGF2(dst, b, a *[31]uint32) {
	var tmp [31]uint32
	for i, row := range b {
		var acc uint32
		for row != 0 {
			j := mathbits.TrailingZeros32(row)
			acc ^= a[j]
			row &= row - 1
		}
		tmp[i] = acc
	}
	*dst = tmp
}

func init() {
	// x1 warm-up: constant, so just step it Nc times once.
	s1 := uint32(1) // x1(0) = 1, the rest 0
	for i := 0; i < goldNc; i++ {
		s1 = stepX1(s1)
	}
	goldX1Start = s1

	// x2 warm-up matrix: one-step matrix A (new bit j = old bit j+1 for
	// j < 30; new bit 30 = taps 3,2,1,0), raised to the Nc-th power by
	// square-and-multiply.
	var step, acc [31]uint32
	for j := 0; j < 30; j++ {
		step[j] = 1 << uint(j+1)
	}
	step[30] = 0b1111
	for i := range acc { // identity
		acc[i] = 1 << uint(i)
	}
	for e := goldNc; e > 0; e >>= 1 {
		if e&1 == 1 {
			composeGF2(&acc, &acc, &step)
		}
		composeGF2(&step, &step, &step)
	}
	goldX2Jump = acc
}

// GoldSequence returns the first n bits of the Gold sequence with the
// given initialisation value cinit.
func GoldSequence(cinit uint32, n int) []uint8 {
	out := make([]uint8, n)
	GoldSequenceInto(cinit, out)
	return out
}

// GoldSequenceInto fills dst with the Gold sequence for cinit. It is
// allocation free and skips the Nc warm-up via the precomputed register
// states, so per-slot scrambling paths can call it with pooled buffers.
func GoldSequenceInto(cinit uint32, dst []uint8) {
	s1 := goldX1Start
	s2 := applyGF2(&goldX2Jump, cinit&0x7FFFFFFF)
	for i := range dst {
		dst[i] = uint8((s1 ^ s2) & 1)
		s1 = stepX1(s1)
		s2 = stepX2(s2)
	}
}

// ScrambleInPlace XORs data with the Gold sequence for cinit, in place
// and without allocating. Applying it twice with the same cinit restores
// the original data.
func ScrambleInPlace(cinit uint32, data []uint8) {
	s1 := goldX1Start
	s2 := applyGF2(&goldX2Jump, cinit&0x7FFFFFFF)
	for i := range data {
		data[i] ^= uint8((s1 ^ s2) & 1)
		s1 = stepX1(s1)
		s2 = stepX2(s2)
	}
}

// DescrambleLLRInPlace flips the sign of llr[i] wherever seq[i] is 1 —
// the LLR-domain form of descrambling (a scrambled bit inverts the
// meaning of its soft value). The flip is a branch-free sign-bit XOR, so
// it vectorises and treats ±0 and non-finite values consistently.
// len(seq) must be at least len(llr).
func DescrambleLLRInPlace(seq []uint8, llr []float64) {
	if len(llr) == 0 {
		return
	}
	_ = seq[len(llr)-1]
	for i, v := range llr {
		llr[i] = math.Float64frombits(math.Float64bits(v) ^ uint64(seq[i]&1)<<63)
	}
}

// PDCCHScramblingInit computes the cinit for PDCCH bit scrambling
// (TS 38.211 §7.3.2.3): cinit = (nRNTI·2^16 + nID) mod 2^31. For the
// common search space nRNTI is 0 and nID is the cell id.
func PDCCHScramblingInit(nRNTI uint16, nID uint16) uint32 {
	return (uint32(nRNTI)<<16 + uint32(nID)) & 0x7FFFFFFF
}

// PDCCHDMRSInit computes the cinit for PDCCH DMRS generation
// (TS 38.211 §7.4.1.3.1) for a given slot and symbol:
// cinit = (2^17 (14·ns + l + 1)(2·nID + 1) + 2·nID) mod 2^31.
func PDCCHDMRSInit(slot, symbol int, nID uint16) uint32 {
	v := (uint64(1) << 17) * uint64(14*slot+symbol+1) * uint64(2*uint32(nID)+1)
	v += 2 * uint64(nID)
	return uint32(v & 0x7FFFFFFF)
}

// PDSCHScramblingInit computes the cinit for PDSCH bit scrambling
// (TS 38.211 §7.3.1.1): cinit = nRNTI·2^15 + q·2^14 + nID, with codeword
// index q (0 here; single-codeword transmission).
func PDSCHScramblingInit(rnti uint16, nID uint16) uint32 {
	return (uint32(rnti)<<15 + uint32(nID)) & 0x7FFFFFFF
}
