// Package bits provides the bit-level primitives shared by every layer of
// the 5G processing chain: MSB-first bit readers and writers, the 3GPP CRC
// polynomials with RNTI scrambling, and the length-31 Gold sequence
// generator from TS 38.211 §5.2.1 used for scrambling and DMRS.
//
// Throughout the package a "bit slice" is a []uint8 holding one bit per
// element (values 0 or 1). This unpacked representation trades memory for
// simplicity and mirrors how the coding chain (CRC attachment, polar
// encoding, rate matching, interleaving) is specified in TS 38.212.
package bits

import "fmt"

// Writer assembles a bit string MSB-first. The zero value is ready to use.
type Writer struct {
	bits []uint8
}

// NewWriter returns a Writer with capacity for n bits preallocated.
func NewWriter(n int) *Writer {
	return &Writer{bits: make([]uint8, 0, n)}
}

// WriteBit appends a single bit (any non-zero b is written as 1).
func (w *Writer) WriteBit(b uint8) {
	if b != 0 {
		b = 1
	}
	w.bits = append(w.bits, b)
}

// WriteUint appends the low n bits of v, most-significant bit first.
// It panics if n is outside [0, 64].
func (w *Writer) WriteUint(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bits: WriteUint width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.bits = append(w.bits, uint8(v>>uint(i))&1)
	}
}

// WriteBool appends 1 for true, 0 for false.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.bits = append(w.bits, 1)
	} else {
		w.bits = append(w.bits, 0)
	}
}

// WriteBits appends a bit slice verbatim.
func (w *Writer) WriteBits(b []uint8) {
	w.bits = append(w.bits, b...)
}

// Len reports the number of bits written so far.
func (w *Writer) Len() int { return len(w.bits) }

// Bits returns the accumulated bit slice. The returned slice aliases the
// writer's buffer; callers that keep writing must copy it first.
func (w *Writer) Bits() []uint8 { return w.bits }

// Reset truncates the writer to zero bits, retaining capacity.
func (w *Writer) Reset() { w.bits = w.bits[:0] }

// Reader consumes a bit string MSB-first.
type Reader struct {
	bits []uint8
	pos  int
	err  error
}

// NewReader returns a Reader over the given bit slice.
func NewReader(b []uint8) *Reader {
	return &Reader{bits: b}
}

// ReadBit consumes one bit. After the first out-of-range read the reader
// is sticky-failed: Err reports the failure and all reads return zero.
func (r *Reader) ReadBit() uint8 {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.bits) {
		r.err = fmt.Errorf("bits: read past end (len %d)", len(r.bits))
		return 0
	}
	b := r.bits[r.pos]
	r.pos++
	return b
}

// ReadUint consumes n bits and returns them as an unsigned integer,
// MSB-first. It panics if n is outside [0, 64].
func (r *Reader) ReadUint(n int) uint64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bits: ReadUint width %d out of range", n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// ReadBool consumes one bit and returns whether it is set.
func (r *Reader) ReadBool() bool { return r.ReadBit() == 1 }

// ReadBits consumes n bits and returns them as a fresh slice.
func (r *Reader) ReadBits(n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = r.ReadBit()
	}
	return out
}

// Remaining reports how many unread bits are left.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.bits) - r.pos
}

// Err returns the sticky read error, if any.
func (r *Reader) Err() error { return r.err }

// Pack converts an unpacked bit slice (MSB-first) into bytes. The final
// byte is zero-padded on the right if len(b) is not a multiple of 8.
func Pack(b []uint8) []byte {
	return AppendPacked(make([]byte, 0, (len(b)+7)/8), b)
}

// AppendPacked appends the packed form of b (MSB-first, final byte
// right-padded with zeros) to dst and returns the extended slice, so
// hot paths can pack into reused buffers without allocating.
func AppendPacked(dst []byte, b []uint8) []byte {
	for len(b) > 0 {
		n := len(b)
		if n > 8 {
			n = 8
		}
		var cur byte
		for i, bit := range b[:n] {
			if bit != 0 {
				cur |= 0x80 >> uint(i)
			}
		}
		dst = append(dst, cur)
		b = b[n:]
	}
	return dst
}

// Unpack converts bytes into an unpacked bit slice of exactly n bits,
// MSB-first. It panics if n exceeds 8*len(data).
func Unpack(data []byte, n int) []uint8 {
	if n > 8*len(data) {
		panic(fmt.Sprintf("bits: Unpack %d bits from %d bytes", n, len(data)))
	}
	out := make([]uint8, n)
	for i := 0; i < n; i++ {
		out[i] = (data[i/8] >> uint(7-i%8)) & 1
	}
	return out
}

// XOR returns a^b element-wise. The slices must have equal length.
func XOR(a, b []uint8) []uint8 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bits: XOR length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]uint8, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// ToUint interprets a bit slice MSB-first as an unsigned integer.
// It panics if the slice is longer than 64 bits.
func ToUint(b []uint8) uint64 {
	if len(b) > 64 {
		panic("bits: ToUint slice longer than 64 bits")
	}
	var v uint64
	for _, bit := range b {
		v = v<<1 | uint64(bit)
	}
	return v
}

// FromUint renders the low n bits of v as a bit slice, MSB-first.
func FromUint(v uint64, n int) []uint8 {
	out := make([]uint8, n)
	for i := 0; i < n; i++ {
		out[i] = uint8(v>>uint(n-1-i)) & 1
	}
	return out
}
