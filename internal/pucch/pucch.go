// Package pucch models the Physical Uplink Control Channel carrying
// UCI — Uplink Control Information: scheduling requests, HARQ-ACK
// feedback and CQI reports (paper Fig. 1). Decoding UCI is the paper's
// §7 future-work item ("UCI in the uplink channel ... could be useful
// for uplink data scheduling analysis"); this package plus the scope's
// ProcessUplinkSlot implement it against the simulated uplink carrier.
//
// The format modelled is PUCCH-format-2-like: a UE-specific one-PRB,
// four-symbol resource on the uplink grid, QPSK, convolutionally coded
// UCI with a CRC-11, scrambled with the UE's RNTI so only trackers that
// know the C-RNTI (the gNB, or NR-Scope after MSG 4) can read it.
package pucch

import (
	"fmt"
	"sync"

	"nrscope/internal/bits"
	"nrscope/internal/convcode"
	"nrscope/internal/modulation"
	"nrscope/internal/phy"
)

// Resource geometry: one PRB over four OFDM symbols.
const (
	ResourceSymbols = 4
	resourceREs     = ResourceSymbols * phy.SubcarriersPerPRB // 48
	resourceBits    = resourceREs * 2                         // QPSK
)

// UCI is one uplink control report.
type UCI struct {
	SR     bool // scheduling request: "I have uplink data"
	CQI    int  // channel quality indicator, 0..15
	HasAck bool // an HARQ-ACK field is present
	AckID  int  // HARQ process being acknowledged, 0..15
	Ack    bool // true = ACK, false = NACK
}

// Validate checks field ranges.
func (u UCI) Validate() error {
	if u.CQI < 0 || u.CQI > 15 {
		return fmt.Errorf("pucch: CQI %d", u.CQI)
	}
	if u.AckID < 0 || u.AckID > 15 {
		return fmt.Errorf("pucch: ack harq id %d", u.AckID)
	}
	return nil
}

// payloadBits is the UCI field width (SR + CQI + HasAck + Ack + AckID).
const payloadBits = 1 + 4 + 1 + 1 + 4

// pack serialises the UCI fields.
func (u UCI) pack() []uint8 {
	w := bits.NewWriter(payloadBits)
	w.WriteBool(u.SR)
	w.WriteUint(uint64(u.CQI), 4)
	w.WriteBool(u.HasAck)
	w.WriteBool(u.Ack)
	w.WriteUint(uint64(u.AckID), 4)
	return w.Bits()
}

func unpack(b []uint8) UCI {
	r := bits.NewReader(b)
	var u UCI
	u.SR = r.ReadBool()
	u.CQI = int(r.ReadUint(4))
	u.HasAck = r.ReadBool()
	u.Ack = r.ReadBool()
	u.AckID = int(r.ReadUint(4))
	return u
}

// ResourcePRB returns the UE's PUCCH resource block. Real cells assign
// resources via RRC; with the Setup identical across UEs (paper §3.1.2)
// the assignment here is the deterministic hash both the gNB and a
// passive observer can compute from the C-RNTI alone.
func ResourcePRB(rnti uint16, carrierPRBs int) int {
	return int(rnti) % carrierPRBs
}

// resourceREsFor enumerates the REs of a UE's PUCCH resource.
func resourceREsFor(prb int) []phy.RE {
	out := make([]phy.RE, 0, resourceREs)
	for sym := 0; sym < ResourceSymbols; sym++ {
		for off := 0; off < phy.SubcarriersPerPRB; off++ {
			out = append(out, phy.RE{Symbol: sym, Subcarrier: prb*phy.SubcarriersPerPRB + off})
		}
	}
	return out
}

// cinit derives the UCI scrambling sequence seed from the UE identity.
func cinit(rnti, cellID uint16) uint32 {
	return (uint32(rnti)<<14 ^ uint32(cellID) ^ 0x2BAD) & 0x7FFFFFFF
}

// Encode writes a UCI report onto the uplink grid at the UE's resource.
func Encode(g *phy.Grid, u UCI, rnti, cellID uint16) error {
	if err := u.Validate(); err != nil {
		return err
	}
	block := bits.AttachCRC(bits.CRC11, u.pack())
	coded, err := convcode.EncodeAndMatch(block, resourceBits)
	if err != nil {
		return fmt.Errorf("pucch: %w", err)
	}
	bits.ScrambleInPlace(cinit(rnti, cellID), coded)
	syms := modulation.Map(modulation.QPSK, coded)
	prb := ResourcePRB(rnti, g.NumPRB)
	for i, re := range resourceREsFor(prb) {
		g.Set(re.Symbol, re.Subcarrier, syms[i])
	}
	return nil
}

// EnergyThreshold gates decoding: an empty resource (noise only) is
// skipped without spending a Viterbi pass.
const EnergyThreshold = 0.5

// ResourceEnergy measures the mean RE energy of a UE's resource. It runs
// once per tracked RNTI per uplink slot, so the RE walk is inlined
// rather than materialised.
func ResourceEnergy(g *phy.Grid, rnti uint16) float64 {
	base := ResourcePRB(rnti, g.NumPRB) * phy.SubcarriersPerPRB
	var e float64
	for sym := 0; sym < ResourceSymbols; sym++ {
		for off := 0; off < phy.SubcarriersPerPRB; off++ {
			v := g.At(sym, base+off)
			e += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return e / resourceREs
}

// decodeScratch holds one Decode's fixed-size buffers plus the Viterbi
// trellis, pooled so per-slot UCI decoding across tracked RNTIs is
// allocation free.
type decodeScratch struct {
	syms [resourceREs]complex128
	llr  [resourceBits]float64
	seq  [resourceBits]uint8
	vit  convcode.Workspace
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// Decode attempts to read a UE's UCI from the uplink grid. ok is false
// when the resource is empty or the CRC fails. It allocates nothing at
// steady state.
func Decode(g *phy.Grid, rnti, cellID uint16, n0 float64) (UCI, bool) {
	if ResourceEnergy(g, rnti) < EnergyThreshold {
		return UCI{}, false
	}
	base := ResourcePRB(rnti, g.NumPRB) * phy.SubcarriersPerPRB
	sc := scratchPool.Get().(*decodeScratch)
	defer scratchPool.Put(sc)
	i := 0
	for sym := 0; sym < ResourceSymbols; sym++ {
		for off := 0; off < phy.SubcarriersPerPRB; off++ {
			sc.syms[i] = g.At(sym, base+off)
			i++
		}
	}
	llr := modulation.DemapInto(sc.llr[:0], modulation.QPSK, sc.syms[:], n0)
	seq := sc.seq[:len(llr)]
	bits.GoldSequenceInto(cinit(rnti, cellID), seq)
	bits.DescrambleLLRInPlace(seq, llr)
	decoded := sc.vit.RecoverAndDecode(llr, payloadBits+11)
	payload, ok := bits.CheckCRC(bits.CRC11, decoded)
	if !ok {
		return UCI{}, false
	}
	u := unpack(payload)
	if u.Validate() != nil {
		return UCI{}, false
	}
	return u, true
}
