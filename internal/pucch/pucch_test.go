package pucch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nrscope/internal/channel"
	"nrscope/internal/phy"
)

const cellID = 500

func addNoise(g *phy.Grid, snrdB float64, rng *rand.Rand) float64 {
	n0 := channel.SNRdBToN0(snrdB)
	sigma := math.Sqrt(n0 / 2)
	s := g.Samples()
	for i := range s {
		s[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return n0
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(rnti uint16, cqi, ackID uint8, sr, hasAck, ack bool) bool {
		if rnti == 0 {
			rnti = 1
		}
		u := UCI{SR: sr, CQI: int(cqi) % 16, HasAck: hasAck, Ack: ack, AckID: int(ackID) % 16}
		g := phy.NewGrid(51)
		if err := Encode(g, u, rnti, cellID); err != nil {
			return false
		}
		got, ok := Decode(g, rnti, cellID, 1e-4)
		return ok && got == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodeUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		g := phy.NewGrid(51)
		u := UCI{SR: true, CQI: 11, HasAck: true, Ack: i%2 == 0, AckID: i % 16}
		if err := Encode(g, u, 0x4601, cellID); err != nil {
			t.Fatal(err)
		}
		n0 := addNoise(g, 8, rng)
		if got, pass := Decode(g, 0x4601, cellID, n0); pass && got == u {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Errorf("decoded %d/%d at 8 dB", ok, trials)
	}
}

func TestDecodeEmptyResourceSkipped(t *testing.T) {
	g := phy.NewGrid(51)
	if _, ok := Decode(g, 0x4601, cellID, 0.1); ok {
		t.Error("empty resource decoded")
	}
	// Noise-only must be rejected too (energy gate or CRC).
	rng := rand.New(rand.NewSource(2))
	n0 := addNoise(g, 0, rng)
	if _, ok := Decode(g, 0x4601, cellID, n0); ok {
		t.Error("noise-only resource decoded")
	}
}

func TestWrongRNTIFailsCRC(t *testing.T) {
	g := phy.NewGrid(51)
	if err := Encode(g, UCI{CQI: 9}, 0x4601, cellID); err != nil {
		t.Fatal(err)
	}
	// An observer guessing a wrong RNTI that maps to the same PRB must
	// fail the descramble+CRC, not misread the report.
	other := uint16(0x4601 + 51) // same resource PRB
	if ResourcePRB(other, 51) != ResourcePRB(0x4601, 51) {
		t.Fatal("test setup: PRBs differ")
	}
	if _, ok := Decode(g, other, cellID, 1e-4); ok {
		t.Error("wrong-RNTI decode passed")
	}
}

func TestResourceSeparation(t *testing.T) {
	// Two UEs on different PRBs coexist in one uplink slot.
	g := phy.NewGrid(51)
	a := UCI{SR: true, CQI: 3}
	b := UCI{CQI: 14, HasAck: true, Ack: true, AckID: 5}
	if err := Encode(g, a, 0x4601, cellID); err != nil {
		t.Fatal(err)
	}
	if err := Encode(g, b, 0x4602, cellID); err != nil {
		t.Fatal(err)
	}
	gotA, okA := Decode(g, 0x4601, cellID, 1e-4)
	gotB, okB := Decode(g, 0x4602, cellID, 1e-4)
	if !okA || gotA != a {
		t.Errorf("UE A: %+v ok=%v", gotA, okA)
	}
	if !okB || gotB != b {
		t.Errorf("UE B: %+v ok=%v", gotB, okB)
	}
}

func TestValidation(t *testing.T) {
	g := phy.NewGrid(51)
	if err := Encode(g, UCI{CQI: 99}, 1, cellID); err == nil {
		t.Error("CQI 99 accepted")
	}
	if err := Encode(g, UCI{AckID: -1}, 1, cellID); err == nil {
		t.Error("negative ack id accepted")
	}
}

func BenchmarkDecode(b *testing.B) {
	g := phy.NewGrid(51)
	if err := Encode(g, UCI{SR: true, CQI: 11}, 0x4601, cellID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(g, 0x4601, cellID, 0.05)
	}
}
