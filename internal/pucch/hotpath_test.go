package pucch

import (
	"math/rand"
	"testing"

	"nrscope/internal/phy"
	"nrscope/internal/raceflag"
)

// TestDecodeZeroAlloc: UCI decoding runs once per tracked RNTI per
// uplink slot, so at steady state (warm scratch pool) it must not
// allocate — and neither must the energy gate that precedes it.
func TestDecodeZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(31))
	g := phy.NewGrid(51)
	const rnti = 0x4601
	u := UCI{SR: true, CQI: 11, HasAck: true, Ack: true, AckID: 3}
	if err := Encode(g, u, rnti, cellID); err != nil {
		t.Fatal(err)
	}
	n0 := addNoise(g, 20, rng)
	got, ok := Decode(g, rnti, cellID, n0) // warm the pool
	if !ok || got != u {
		t.Fatalf("warm-up decode: got %+v ok=%v, want %+v", got, ok, u)
	}
	if n := testing.AllocsPerRun(100, func() {
		Decode(g, rnti, cellID, n0)
	}); n != 0 {
		t.Errorf("Decode: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ResourceEnergy(g, rnti)
	}); n != 0 {
		t.Errorf("ResourceEnergy: %.1f allocs/op, want 0", n)
	}
	// The empty-resource skip path (the common case: most tracked RNTIs
	// are silent in a given slot) must also be allocation free.
	if n := testing.AllocsPerRun(100, func() {
		Decode(g, rnti+7, cellID, n0)
	}); n != 0 {
		t.Errorf("Decode (empty resource): %.1f allocs/op, want 0", n)
	}
}
