package radio

import (
	"math"
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/phy"
)

func txGrid() *phy.Grid {
	g := phy.NewGrid(24)
	for sym := 0; sym < phy.SymbolsPerSlot; sym++ {
		for sc := 0; sc < g.Width(); sc++ {
			g.Set(sym, sc, complex(1/math.Sqrt2, 1/math.Sqrt2))
		}
	}
	return g
}

func TestCaptureAddsCalibratedNoise(t *testing.T) {
	rx := NewReceiver(channel.AWGN, 10, 1)
	tx := txGrid()
	cap := rx.Capture(0, phy.SlotRef{}, tx)
	if cap.Grid == nil {
		t.Fatal("no grid captured")
	}
	// Empirical noise power must match the AGC-reported N0.
	var p float64
	src := tx.Samples()
	dst := cap.Grid.Samples()
	for i := range src {
		d := dst[i] - src[i]
		p += real(d)*real(d) + imag(d)*imag(d)
	}
	p /= float64(len(src))
	if math.Abs(p-cap.N0)/cap.N0 > 0.1 {
		t.Errorf("measured noise power %.4f, AGC says %.4f", p, cap.N0)
	}
	// AWGN model at base 10 dB has a -2 dB offset.
	wantN0 := channel.SNRdBToN0(8)
	if math.Abs(cap.N0-wantN0)/wantN0 > 1e-9 {
		t.Errorf("N0 = %v, want %v", cap.N0, wantN0)
	}
}

func TestCaptureDoesNotDisturbTransmitter(t *testing.T) {
	rx := NewReceiver(channel.Normal, 15, 2)
	tx := txGrid()
	want := tx.At(3, 17)
	rx.Capture(0, phy.SlotRef{}, tx)
	if tx.At(3, 17) != want {
		t.Error("capture mutated the transmit grid")
	}
}

func TestCaptureNilGrid(t *testing.T) {
	rx := NewReceiver(channel.Normal, 15, 3)
	cap := rx.Capture(7, phy.SlotRef{SFN: 1, Slot: 2}, nil)
	if cap.Grid != nil || cap.SlotIdx != 7 {
		t.Errorf("nil-grid capture wrong: %+v", cap)
	}
}

func TestReuseAlternatesTwoBuffers(t *testing.T) {
	rx := NewReceiver(channel.Normal, 15, 4).Reuse(true)
	tx := txGrid()
	a := rx.Capture(0, phy.SlotRef{}, tx)
	b := rx.Capture(1, phy.SlotRef{}, tx)
	c := rx.Capture(2, phy.SlotRef{}, tx)
	if a.Grid == b.Grid {
		t.Error("consecutive captures share a buffer")
	}
	if a.Grid != c.Grid {
		t.Error("buffer not recycled on the second-following capture")
	}
}

func TestNoReuseAllocatesFresh(t *testing.T) {
	rx := NewReceiver(channel.Normal, 15, 5)
	tx := txGrid()
	a := rx.Capture(0, phy.SlotRef{}, tx)
	b := rx.Capture(1, phy.SlotRef{}, tx)
	c := rx.Capture(2, phy.SlotRef{}, tx)
	if a.Grid == b.Grid || a.Grid == c.Grid {
		t.Error("non-reuse receiver recycled a buffer")
	}
}

func TestReceiverAtDistanceWeakerWhenFar(t *testing.T) {
	pl := channel.DefaultIndoor()
	near := NewReceiverAt(pl, 1, 10, -85, 6)
	far := NewReceiverAt(pl, 50, 10, -85, 6)
	tx := txGrid()
	cn := near.Capture(0, phy.SlotRef{}, tx)
	cf := far.Capture(0, phy.SlotRef{}, tx)
	if cf.SNRdB >= cn.SNRdB {
		t.Errorf("far SNR %.1f not below near %.1f", cf.SNRdB, cn.SNRdB)
	}
	if cf.N0 <= cn.N0 {
		t.Error("far capture not noisier")
	}
}

func TestNoiseDiffersAcrossSlots(t *testing.T) {
	rx := NewReceiver(channel.AWGN, 10, 7)
	tx := txGrid()
	a := rx.Capture(0, phy.SlotRef{}, tx)
	aCopy := append([]complex128(nil), a.Grid.Samples()...)
	b := rx.Capture(1, phy.SlotRef{}, tx)
	same := 0
	for i, v := range b.Grid.Samples() {
		if v == aCopy[i] {
			same++
		}
	}
	if same == len(aCopy) {
		t.Error("identical noise across slots")
	}
}

func BenchmarkCapture51PRB(b *testing.B) {
	rx := NewReceiver(channel.Normal, 20, 1).Reuse(true)
	tx := phy.NewGrid(51)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rx.Capture(i, phy.SlotRef{}, tx)
	}
}
