// Package radio is the substitute for NR-Scope's USRP front end
// (DESIGN.md §2): it takes the gNB's transmitted slot grids, applies the
// scope's own reception channel (AWGN at the slot's SNR, which may fade
// or depend on the scope's position via a path-loss model), and hands
// captures to the telemetry engine. Automatic gain control is modelled
// as a perfect noise-variance estimate delivered with each capture; the
// resampling stage of the real front end has no equivalent at symbol
// level.
package radio

import (
	"math"
	"math/rand"

	"nrscope/internal/channel"
	"nrscope/internal/phy"
)

// Capture is one received slot: the impaired grid plus the receiver's
// noise estimate (the AGC output the demappers consume).
type Capture struct {
	SlotIdx int
	Ref     phy.SlotRef
	// Grid is nil for slots with no downlink transmission.
	Grid *phy.Grid
	// N0 is the AGC's noise-variance estimate for this slot.
	N0 float64
	// SNRdB is the channel state the capture experienced (diagnostics).
	SNRdB float64
}

// noisePool is a shared ring of pregenerated unit-variance Gaussian
// samples. Per-slot noise is drawn as a slice at a random offset — the
// standard simulator trick that turns millions of Box-Muller/ziggurat
// draws per second into sequential reads. The pool is ~2M samples, far
// longer than a slot, so cross-slot correlation is negligible.
var noisePool = func() []float64 {
	rng := rand.New(rand.NewSource(0x601D))
	out := make([]float64, 1<<21)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}()

// Receiver models the scope's reception path.
type Receiver struct {
	ch  *channel.Channel
	rng *rand.Rand

	reuse bool
	bufs  [2]*phy.Grid
	n     int
}

// Reuse enables capture-buffer recycling: successive Captures alternate
// between two grid buffers, so each returned Capture stays valid only
// until the second-following Capture. Use it for synchronous,
// process-immediately loops (the eval sessions); leave it off when
// captures are queued (the async pipeline).
func (r *Receiver) Reuse(on bool) *Receiver {
	r.reuse = on
	return r
}

// NewReceiver creates a receiver whose own link to the cell follows the
// given channel model and mean SNR. This is the knob the Fig. 13
// coverage sweep turns (position -> path loss -> SNR).
func NewReceiver(model channel.Model, meanSNRdB float64, seed int64) *Receiver {
	return &Receiver{
		ch:  channel.New(model, meanSNRdB, seed),
		rng: rand.New(rand.NewSource(seed ^ 0x0DD)),
	}
}

// NewReceiverAt places the receiver d metres from the cell under a
// path-loss model (Fig. 13 / Fig. 6 geometry).
func NewReceiverAt(pl channel.PathLoss, d, txPowerDBm, noiseFloorDBm float64, seed int64) *Receiver {
	snr := pl.SNRAt(d, txPowerDBm, noiseFloorDBm)
	return NewReceiver(channel.Normal, snr, seed)
}

// Capture receives one slot: the grid is cloned (the transmitter's
// buffer is not disturbed) and white noise at this slot's SNR is added
// to every resource element.
func (r *Receiver) Capture(slotIdx int, ref phy.SlotRef, tx *phy.Grid) *Capture {
	snr := r.ch.NextSlot()
	cap := &Capture{SlotIdx: slotIdx, Ref: ref, SNRdB: snr}
	if tx == nil {
		return cap
	}
	n0 := channel.SNRdBToN0(snr)
	cap.N0 = n0
	var g *phy.Grid
	if r.reuse {
		buf := &r.bufs[r.n%2]
		r.n++
		if *buf == nil {
			*buf = phy.NewGrid(tx.NumPRB)
		}
		g = *buf
	} else {
		g = phy.NewGrid(tx.NumPRB)
	}
	sigma := math.Sqrt(n0 / 2)
	src := tx.Samples()
	dst := g.Samples()
	// Two independently offset noise streams (I and Q) from the pool.
	nI := noisePool[r.rng.Intn(len(noisePool)-len(src)):]
	nQ := noisePool[r.rng.Intn(len(noisePool)-len(src)):]
	for i := range src {
		dst[i] = src[i] + complex(nI[i]*sigma, nQ[i]*sigma)
	}
	cap.Grid = g
	return cap
}
