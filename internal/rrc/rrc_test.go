package rrc

import (
	"testing"
	"testing/quick"

	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

func sampleMIB() MIB {
	return MIB{
		SFN:              512,
		Mu:               phy.Mu1,
		CellID:           500,
		Coreset0StartPRB: 0,
		Coreset0NumPRB:   48,
		Coreset0Duration: 1,
		CellBarred:       false,
	}
}

func sampleSIB1() SIB1 {
	return SIB1{
		CellID:           500,
		CarrierPRBs:      51,
		TDD:              phy.MustTDDPattern("DDDSU"),
		CommonCandidates: phy.DefaultCommonCandidates(),
		RACHPeriodSlots:  20,
		SIB1PeriodSlots:  40,
		TimeAllocRows:    8,
	}
}

func sampleSetup() Setup {
	return Setup{
		CORESET:      phy.CORESET{ID: 1, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0},
		UECandidates: phy.DefaultUECandidates(),
		NonFallback:  true,
		DMRSPerPRB:   12,
		XOverhead:    0,
		MaxLayers:    2,
		MCSTable:     mcs.TableQAM256,
	}
}

func TestMIBRoundTrip(t *testing.T) {
	m := sampleMIB()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMIB(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("MIB round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestMIBRoundTripProperty(t *testing.T) {
	f := func(sfn uint16, cellID uint16, start, num uint8, barred bool) bool {
		m := MIB{
			SFN:              int(sfn) % phy.MaxSFN,
			Mu:               phy.Mu1,
			CellID:           cellID,
			Coreset0StartPRB: int(start) % 100,
			Coreset0NumPRB:   (1 + int(num)%20) * 6, // multiples of 6
			Coreset0Duration: 1,
			CellBarred:       barred,
		}
		data, err := m.Encode()
		if err != nil {
			return true // invalid combination, skip
		}
		got, err := DecodeMIB(data)
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMIBValidation(t *testing.T) {
	m := sampleMIB()
	m.SFN = phy.MaxSFN
	if _, err := m.Encode(); err == nil {
		t.Error("out-of-range SFN accepted")
	}
	m = sampleMIB()
	m.Coreset0NumPRB = 7 // not a CCE multiple
	if _, err := m.Encode(); err == nil {
		t.Error("bad CORESET0 accepted")
	}
	if _, err := DecodeMIB([]byte{1, 2}); err == nil {
		t.Error("short MIB accepted")
	}
}

func TestSIB1RoundTrip(t *testing.T) {
	s := sampleSIB1()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSIB1(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.CellID != s.CellID || got.CarrierPRBs != s.CarrierPRBs ||
		got.TDD.String() != s.TDD.String() ||
		got.RACHPeriodSlots != s.RACHPeriodSlots ||
		got.SIB1PeriodSlots != s.SIB1PeriodSlots ||
		got.TimeAllocRows != s.TimeAllocRows {
		t.Errorf("SIB1 round trip:\n got %+v\nwant %+v", got, s)
	}
	for _, al := range phy.AggregationLevels {
		if got.CommonCandidates[al] != s.CommonCandidates[al] {
			t.Errorf("AL%d candidates: got %d want %d", al, got.CommonCandidates[al], s.CommonCandidates[al])
		}
	}
}

func TestSIB1FDDPattern(t *testing.T) {
	s := sampleSIB1()
	s.TDD = phy.FDD()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSIB1(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TDD.String() != "D" {
		t.Errorf("FDD pattern round trip = %q", got.TDD.String())
	}
}

func TestSIB1Validation(t *testing.T) {
	s := sampleSIB1()
	s.CarrierPRBs = 0
	if _, err := s.Encode(); err == nil {
		t.Error("zero-width carrier accepted")
	}
	s = sampleSIB1()
	s.CommonCandidates = map[int]int{3: 1} // AL 3 does not exist
	if _, err := s.Encode(); err == nil {
		t.Error("bogus aggregation level accepted")
	}
	s = sampleSIB1()
	s.RACHPeriodSlots = 0
	if _, err := s.Encode(); err == nil {
		t.Error("zero RACH period accepted")
	}
}

func TestSIB1DecodeCorrupted(t *testing.T) {
	s := sampleSIB1()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Truncated input must error, not panic.
	if _, err := DecodeSIB1(data[:2]); err == nil {
		t.Error("truncated SIB1 accepted")
	}
}

func TestRARRoundTrip(t *testing.T) {
	f := func(rnti uint16, ta uint16, delta uint8) bool {
		r := RAR{
			TCRNTI:        1 + rnti%0xFFEF,
			TimingAdvance: int(ta) % 4096,
			MSG3SlotDelta: 1 + int(delta)%64,
		}
		data, err := r.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeRAR(data)
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRARValidation(t *testing.T) {
	r := RAR{TCRNTI: 0, TimingAdvance: 0, MSG3SlotDelta: 4}
	if _, err := r.Encode(); err == nil {
		t.Error("TC-RNTI 0 accepted")
	}
	if _, err := DecodeRAR([]byte{1}); err == nil {
		t.Error("short RAR accepted")
	}
}

func TestSetupRoundTrip(t *testing.T) {
	s := sampleSetup()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSetup(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.CORESET != s.CORESET || got.NonFallback != s.NonFallback ||
		got.DMRSPerPRB != s.DMRSPerPRB || got.XOverhead != s.XOverhead ||
		got.MaxLayers != s.MaxLayers || got.MCSTable != s.MCSTable {
		t.Errorf("Setup round trip:\n got %+v\nwant %+v", got, s)
	}
	for _, al := range phy.AggregationLevels {
		if got.UECandidates[al] != s.UECandidates[al] {
			t.Errorf("AL%d: got %d want %d", al, got.UECandidates[al], s.UECandidates[al])
		}
	}
}

func TestSetupRoundTripProperty(t *testing.T) {
	f := func(dmrs uint8, oh uint8, layers uint8, table bool, nonFallback bool) bool {
		s := sampleSetup()
		s.DMRSPerPRB = int(dmrs) % 37
		s.XOverhead = (int(oh) % 4) * 6
		s.MaxLayers = 1 + int(layers)%4
		s.NonFallback = nonFallback
		if table {
			s.MCSTable = mcs.TableQAM256
		} else {
			s.MCSTable = mcs.TableQAM64
		}
		data, err := s.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeSetup(data)
		return err == nil &&
			got.DMRSPerPRB == s.DMRSPerPRB && got.XOverhead == s.XOverhead &&
			got.MaxLayers == s.MaxLayers && got.MCSTable == s.MCSTable &&
			got.NonFallback == s.NonFallback
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetupLinkConfig(t *testing.T) {
	s := sampleSetup()
	lc := s.LinkConfig()
	if lc.DMRSPerPRB != 12 || lc.Layers != 2 || lc.Table != mcs.TableQAM256 || lc.Overhead != 0 {
		t.Errorf("LinkConfig = %+v", lc)
	}
}

func TestSetupValidation(t *testing.T) {
	s := sampleSetup()
	s.XOverhead = 5
	if _, err := s.Encode(); err == nil {
		t.Error("xOverhead 5 accepted")
	}
	s = sampleSetup()
	s.MaxLayers = 9
	if _, err := s.Encode(); err == nil {
		t.Error("9 layers accepted")
	}
	s = sampleSetup()
	s.UECandidates = nil
	if _, err := s.Encode(); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := DecodeSetup([]byte{0}); err == nil {
		t.Error("short Setup accepted")
	}
}

// TestDecodersNeverPanicOnGarbage feeds random byte strings to every
// decoder: corrupted PDSCH payloads that slip past the CRC (1 in 2^24)
// must be rejected by validation, never crash the pipeline.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		// Any of these may error; none may panic.
		_, _ = DecodeMIB(data)
		_, _ = DecodeSIB1(data)
		_, _ = DecodeRAR(data)
		_, _ = DecodeSetup(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecodersRejectBitFlips flips single bits in valid encodings: the
// decoders must either reject or produce a still-valid message (they
// sit behind a CRC in the real chain, but defence in depth matters).
func TestDecodersRejectBitFlips(t *testing.T) {
	data, err := sampleSIB1().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data)*8; i++ {
		mut := append([]byte(nil), data...)
		mut[i/8] ^= 1 << uint(i%8)
		if s, err := DecodeSIB1(mut); err == nil {
			if err := s.Validate(); err != nil {
				t.Fatalf("bit flip %d produced invalid-but-accepted SIB1: %v", i, err)
			}
		}
	}
}

func TestSetupSizeFitsMSG4Budget(t *testing.T) {
	// Paper §3.1.2: an RRC Setup PDSCH payload is up to 500 bytes; our
	// compact encoding must comfortably fit.
	data, err := sampleSetup().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 500 {
		t.Errorf("Setup is %d bytes, exceeds the 500-byte MSG4 budget", len(data))
	}
}
