// Package rrc models the Radio Resource Control messages NR-Scope decodes
// (paper §3.1): the MIB broadcast on the PBCH, SIB1 carried on the PDSCH
// via CORESET 0, the RACH Random Access Response (MSG 2), and the RRC
// Setup (MSG 4) that carries each UE's dedicated channel configuration.
//
// Real RRC uses ASN.1 UPER; with a stdlib-only constraint this package
// defines compact fixed-layout binary codecs with the same information
// content (DESIGN.md §2). Every message round-trips bit-exactly, and the
// decoders validate ranges so corrupted PDSCH payloads are rejected
// rather than silently misread.
package rrc

import (
	"fmt"

	"nrscope/internal/bits"
	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/phy"
)

// MIB is the Master Information Block (TS 38.331 §6.2.2), broadcast every
// 10 ms on the PBCH. It gives a UE (and NR-Scope) the frame timing and
// where to find CORESET 0 — step 1 of the paper's Fig. 2.
type MIB struct {
	SFN              int            // system frame number, 0..1023
	Mu               phy.Numerology // subcarrier spacing of SIB1/initial access
	CellID           uint16         // physical cell id (carried alongside for the sim)
	Coreset0StartPRB int
	Coreset0NumPRB   int
	Coreset0Duration int
	CellBarred       bool
}

// Validate checks field ranges.
func (m MIB) Validate() error {
	if m.SFN < 0 || m.SFN >= phy.MaxSFN {
		return fmt.Errorf("rrc: MIB SFN %d", m.SFN)
	}
	if !m.Mu.Valid() {
		return fmt.Errorf("rrc: MIB numerology %d", int(m.Mu))
	}
	cs := phy.CORESET{ID: 0, StartPRB: m.Coreset0StartPRB, NumPRB: m.Coreset0NumPRB, Duration: m.Coreset0Duration}
	if err := cs.Validate(); err != nil {
		return fmt.Errorf("rrc: MIB CORESET0: %w", err)
	}
	return nil
}

// Coreset0 returns the CORESET 0 geometry the MIB advertises.
func (m MIB) Coreset0() phy.CORESET {
	return phy.CORESET{ID: 0, StartPRB: m.Coreset0StartPRB, NumPRB: m.Coreset0NumPRB, Duration: m.Coreset0Duration}
}

// Encode serialises the MIB.
func (m MIB) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	w := bits.NewWriter(64)
	w.WriteUint(uint64(m.SFN), 10)
	w.WriteUint(uint64(m.Mu), 2)
	w.WriteUint(uint64(m.CellID), 16)
	w.WriteUint(uint64(m.Coreset0StartPRB), 9)
	w.WriteUint(uint64(m.Coreset0NumPRB), 9)
	w.WriteUint(uint64(m.Coreset0Duration), 2)
	w.WriteBool(m.CellBarred)
	return bits.Pack(w.Bits()), nil
}

// mibBits is the encoded MIB length in bits.
const mibBits = 10 + 2 + 16 + 9 + 9 + 2 + 1

// MIBBits exposes the encoded MIB payload size for PBCH budgeting.
const MIBBits = mibBits

// DecodeMIB parses an encoded MIB.
func DecodeMIB(data []byte) (MIB, error) {
	if len(data)*8 < mibBits {
		return MIB{}, fmt.Errorf("rrc: MIB too short (%d bytes)", len(data))
	}
	r := bits.NewReader(bits.Unpack(data, mibBits))
	m := MIB{
		SFN:              int(r.ReadUint(10)),
		Mu:               phy.Numerology(r.ReadUint(2)),
		CellID:           uint16(r.ReadUint(16)),
		Coreset0StartPRB: int(r.ReadUint(9)),
		Coreset0NumPRB:   int(r.ReadUint(9)),
		Coreset0Duration: int(r.ReadUint(2)),
		CellBarred:       r.ReadBool(),
	}
	if err := r.Err(); err != nil {
		return MIB{}, err
	}
	if err := m.Validate(); err != nil {
		return MIB{}, err
	}
	return m, nil
}

// SIB1 carries the cell's common configuration (paper §3.1.1): everything
// a UE needs for the RACH process and the common PDCCH parameters, which
// is exactly what lets NR-Scope skip the blind search earlier 4G tools
// needed.
type SIB1 struct {
	CellID      uint16
	CarrierPRBs int            // full carrier width in PRBs
	TDD         phy.TDDPattern // slot pattern (all-D for FDD)

	// Common PDCCH: the common search space lives in CORESET 0 with
	// these candidate counts per aggregation level.
	CommonCandidates map[int]int

	// RACH configuration: a PRACH occasion occurs every RACHPeriod
	// slots (in uplink slots); MSG2 follows within the response window.
	RACHPeriodSlots int

	// SIB1 itself is rebroadcast every this many slots.
	SIB1PeriodSlots int

	// TimeAllocRows bounds the time-domain allocation table rows in use.
	TimeAllocRows int
}

// Validate checks field ranges.
func (s SIB1) Validate() error {
	if s.CarrierPRBs < 1 || s.CarrierPRBs > 275 {
		return fmt.Errorf("rrc: SIB1 carrier PRBs %d", s.CarrierPRBs)
	}
	if s.TDD.Len() == 0 || s.TDD.Len() > 16 {
		return fmt.Errorf("rrc: SIB1 TDD pattern length %d", s.TDD.Len())
	}
	if s.RACHPeriodSlots < 1 || s.RACHPeriodSlots > 1024 {
		return fmt.Errorf("rrc: SIB1 RACH period %d", s.RACHPeriodSlots)
	}
	if s.SIB1PeriodSlots < 1 || s.SIB1PeriodSlots > 4096 {
		return fmt.Errorf("rrc: SIB1 period %d", s.SIB1PeriodSlots)
	}
	if s.TimeAllocRows < 1 || s.TimeAllocRows > 16 {
		return fmt.Errorf("rrc: SIB1 time alloc rows %d", s.TimeAllocRows)
	}
	if len(s.CommonCandidates) == 0 {
		return fmt.Errorf("rrc: SIB1 has no common candidates")
	}
	for l, m := range s.CommonCandidates {
		ok := false
		for _, al := range phy.AggregationLevels {
			if l == al {
				ok = true
			}
		}
		if !ok || m < 0 || m > 8 {
			return fmt.Errorf("rrc: SIB1 candidate entry AL%d x%d invalid", l, m)
		}
	}
	return nil
}

// Encode serialises SIB1.
func (s SIB1) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := bits.NewWriter(256)
	w.WriteUint(uint64(s.CellID), 16)
	w.WriteUint(uint64(s.CarrierPRBs), 9)
	w.WriteUint(uint64(s.TDD.Len()), 5)
	for i := 0; i < s.TDD.Len(); i++ {
		w.WriteUint(uint64(s.TDD.Direction(i)), 2)
	}
	// Candidates: fixed order over the five aggregation levels.
	for _, al := range phy.AggregationLevels {
		w.WriteUint(uint64(s.CommonCandidates[al]), 4)
	}
	w.WriteUint(uint64(s.RACHPeriodSlots), 11)
	w.WriteUint(uint64(s.SIB1PeriodSlots), 13)
	w.WriteUint(uint64(s.TimeAllocRows), 5)
	return bits.Pack(w.Bits()), nil
}

// DecodeSIB1 parses an encoded SIB1.
func DecodeSIB1(data []byte) (SIB1, error) {
	all := bits.Unpack(data, len(data)*8)
	r := bits.NewReader(all)
	var s SIB1
	s.CellID = uint16(r.ReadUint(16))
	s.CarrierPRBs = int(r.ReadUint(9))
	patLen := int(r.ReadUint(5))
	if patLen == 0 || patLen > 16 {
		return SIB1{}, fmt.Errorf("rrc: SIB1 TDD pattern length %d", patLen)
	}
	pat := make([]byte, patLen)
	for i := range pat {
		switch phy.SlotDirection(r.ReadUint(2)) {
		case phy.SlotDownlink:
			pat[i] = 'D'
		case phy.SlotUplink:
			pat[i] = 'U'
		case phy.SlotSpecial:
			pat[i] = 'S'
		default:
			return SIB1{}, fmt.Errorf("rrc: SIB1 bad slot direction")
		}
	}
	tdd, err := phy.NewTDDPattern(string(pat))
	if err != nil {
		return SIB1{}, err
	}
	s.TDD = tdd
	s.CommonCandidates = make(map[int]int, len(phy.AggregationLevels))
	for _, al := range phy.AggregationLevels {
		if n := int(r.ReadUint(4)); n > 0 {
			s.CommonCandidates[al] = n
		}
	}
	s.RACHPeriodSlots = int(r.ReadUint(11))
	s.SIB1PeriodSlots = int(r.ReadUint(13))
	s.TimeAllocRows = int(r.ReadUint(5))
	if err := r.Err(); err != nil {
		return SIB1{}, err
	}
	if err := s.Validate(); err != nil {
		return SIB1{}, err
	}
	return s, nil
}

// RAR is the Random Access Response (MSG 2): it assigns the TC-RNTI and
// grants uplink resources for MSG 3 (paper footnote 3).
type RAR struct {
	TCRNTI        uint16
	TimingAdvance int // 12 bits
	MSG3SlotDelta int // slots until the MSG3 PUSCH occasion
}

// Validate checks field ranges.
func (r RAR) Validate() error {
	if r.TCRNTI < dci.MinCRNTI || r.TCRNTI > dci.MaxCRNTI {
		return fmt.Errorf("rrc: RAR TC-RNTI %#x out of range", r.TCRNTI)
	}
	if r.TimingAdvance < 0 || r.TimingAdvance > 4095 {
		return fmt.Errorf("rrc: RAR TA %d", r.TimingAdvance)
	}
	if r.MSG3SlotDelta < 1 || r.MSG3SlotDelta > 64 {
		return fmt.Errorf("rrc: RAR MSG3 delta %d", r.MSG3SlotDelta)
	}
	return nil
}

// Encode serialises the RAR.
func (r RAR) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	w := bits.NewWriter(40)
	w.WriteUint(uint64(r.TCRNTI), 16)
	w.WriteUint(uint64(r.TimingAdvance), 12)
	w.WriteUint(uint64(r.MSG3SlotDelta), 7)
	return bits.Pack(w.Bits()), nil
}

// DecodeRAR parses an encoded RAR.
func DecodeRAR(data []byte) (RAR, error) {
	if len(data)*8 < 35 {
		return RAR{}, fmt.Errorf("rrc: RAR too short")
	}
	rd := bits.NewReader(bits.Unpack(data, 35))
	r := RAR{
		TCRNTI:        uint16(rd.ReadUint(16)),
		TimingAdvance: int(rd.ReadUint(12)),
		MSG3SlotDelta: int(rd.ReadUint(7)),
	}
	if err := rd.Err(); err != nil {
		return RAR{}, err
	}
	if err := r.Validate(); err != nil {
		return RAR{}, err
	}
	return r, nil
}

// Setup is the RRC Setup message (MSG 4): the UE-dedicated configuration
// the paper's §3.1.2 extracts — CORESET position, search-space candidate
// counts, DCI format, and the pdsch-ServingCellConfig elements that feed
// the TBS computation (maxMIMO-Layers, xOverhead, mcs-Table, DMRS).
// The paper observes the Setup content is identical across UEs in a cell,
// which NR-Scope exploits to skip redundant PDSCH decodes (§3.1.2).
type Setup struct {
	// UE-specific PDCCH.
	CORESET      phy.CORESET
	UECandidates map[int]int
	NonFallback  bool // whether data DCIs use formats 0_1/1_1

	// pdsch-ServingCellConfig / dmrs config.
	DMRSPerPRB int // REs of DMRS per PRB
	XOverhead  int // 0, 6, 12, 18
	MaxLayers  int // maxMIMO-Layers
	MCSTable   mcs.Table
}

// Validate checks field ranges.
func (s Setup) Validate() error {
	if err := s.CORESET.Validate(); err != nil {
		return fmt.Errorf("rrc: Setup CORESET: %w", err)
	}
	if len(s.UECandidates) == 0 {
		return fmt.Errorf("rrc: Setup has no UE candidates")
	}
	for l, m := range s.UECandidates {
		ok := false
		for _, al := range phy.AggregationLevels {
			if l == al {
				ok = true
			}
		}
		if !ok || m < 0 || m > 8 {
			return fmt.Errorf("rrc: Setup candidate entry AL%d x%d invalid", l, m)
		}
	}
	if s.DMRSPerPRB < 0 || s.DMRSPerPRB > 36 {
		return fmt.Errorf("rrc: Setup DMRS %d", s.DMRSPerPRB)
	}
	switch s.XOverhead {
	case 0, 6, 12, 18:
	default:
		return fmt.Errorf("rrc: Setup xOverhead %d", s.XOverhead)
	}
	if s.MaxLayers < 1 || s.MaxLayers > 4 {
		return fmt.Errorf("rrc: Setup maxMIMO-Layers %d", s.MaxLayers)
	}
	return nil
}

// LinkConfig converts the Setup's PDSCH parameters to the form the grant
// translation consumes.
func (s Setup) LinkConfig() dci.LinkConfig {
	return dci.LinkConfig{
		DMRSPerPRB: s.DMRSPerPRB,
		Overhead:   s.XOverhead,
		Layers:     s.MaxLayers,
		Table:      s.MCSTable,
	}
}

// Encode serialises the Setup.
func (s Setup) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := bits.NewWriter(128)
	w.WriteUint(uint64(s.CORESET.ID), 4)
	w.WriteUint(uint64(s.CORESET.StartPRB), 9)
	w.WriteUint(uint64(s.CORESET.NumPRB), 9)
	w.WriteUint(uint64(s.CORESET.Duration), 2)
	w.WriteUint(uint64(s.CORESET.StartSym), 4)
	for _, al := range phy.AggregationLevels {
		w.WriteUint(uint64(s.UECandidates[al]), 4)
	}
	w.WriteBool(s.NonFallback)
	w.WriteUint(uint64(s.DMRSPerPRB), 6)
	w.WriteUint(uint64(s.XOverhead/6), 2)
	w.WriteUint(uint64(s.MaxLayers), 3)
	w.WriteBool(s.MCSTable == mcs.TableQAM256)
	return bits.Pack(w.Bits()), nil
}

// setupBits is the encoded Setup length in bits.
const setupBits = 4 + 9 + 9 + 2 + 4 + 5*4 + 1 + 6 + 2 + 3 + 1

// DecodeSetup parses an encoded Setup.
func DecodeSetup(data []byte) (Setup, error) {
	if len(data)*8 < setupBits {
		return Setup{}, fmt.Errorf("rrc: Setup too short (%d bytes)", len(data))
	}
	r := bits.NewReader(bits.Unpack(data, setupBits))
	var s Setup
	s.CORESET.ID = int(r.ReadUint(4))
	s.CORESET.StartPRB = int(r.ReadUint(9))
	s.CORESET.NumPRB = int(r.ReadUint(9))
	s.CORESET.Duration = int(r.ReadUint(2))
	s.CORESET.StartSym = int(r.ReadUint(4))
	s.UECandidates = make(map[int]int, len(phy.AggregationLevels))
	for _, al := range phy.AggregationLevels {
		if n := int(r.ReadUint(4)); n > 0 {
			s.UECandidates[al] = n
		}
	}
	s.NonFallback = r.ReadBool()
	s.DMRSPerPRB = int(r.ReadUint(6))
	s.XOverhead = int(r.ReadUint(2)) * 6
	s.MaxLayers = int(r.ReadUint(3))
	if r.ReadBool() {
		s.MCSTable = mcs.TableQAM256
	} else {
		s.MCSTable = mcs.TableQAM64
	}
	if err := r.Err(); err != nil {
		return Setup{}, err
	}
	if err := s.Validate(); err != nil {
		return Setup{}, err
	}
	return s, nil
}
