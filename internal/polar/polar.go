// Package polar implements the polar coding chain used by the 5G PDCCH
// (TS 38.212 §5.3.1): code construction, encoding, rate matching and a
// successive-cancellation (SC) list-free decoder operating on LLRs.
//
// Two documented deviations from the 3GPP text (see DESIGN.md §2):
//
//   - The information-bit reliability order is generated at runtime with
//     the β-expansion polarization-weight (PW) construction, β = 2^(1/4) —
//     the method 3GPP used to design its frozen master sequence — instead
//     of embedding the 1024-entry table from TS 38.212 §5.3.1.2.
//   - Rate matching uses prefix puncturing plus repetition (no shortening
//     branch and no sub-block interleaver). When the code is punctured,
//     the punctured input indices are force-frozen, which preserves the
//     essential property that a noiseless codeword always decodes exactly.
//
// Both sides of the simulated air interface (the gNB encoder and the
// NR-Scope blind decoder) use this package, exactly as both sides of a
// real deployment follow the same standard.
package polar

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// MaxN is the maximum mother code length for downlink polar codes
// (TS 38.212: N <= 512 for PDCCH).
const MaxN = 512

// Code is a polar code instance for a fixed (K, E) pair: K information
// bits (including any CRC the caller attached) rate-matched to E channel
// bits. A Code is immutable after construction and safe for concurrent
// use; per-call scratch buffers are allocated by Encode/Decode.
type Code struct {
	K int // information bits in
	E int // rate-matched bits out
	N int // mother code length (power of two)

	punct      int     // number of punctured (untransmitted) leading coded bits
	infoPos    []int   // input indices carrying information, ascending
	isFrozen   []bool  // frozen mask over the N input positions
	frozenUpTo []int32 // prefix sums of isFrozen, length N+1 (rate-0 pruning)

	// schedule is the precomputed fast-SSC operation list (schedule.go):
	// the decode hot path is an iterative sweep over it instead of a
	// recursive tree walk.
	schedule []nodeOp

	// degenThresh is the magnitude (as raw exponent/mantissa bits) at or
	// above which a channel LLR voids the fast path's no-overflow
	// guarantee: below it, no g cascade over at most N operands can
	// produce an infinity or NaN mid-tree, so the schedule executor may
	// skip all NaN guards. prepare screens against it once per decode.
	degenThresh uint64

	scratch sync.Pool // *scScratch, reused across Decode calls
}

// NewCode constructs the polar code for K information bits rate-matched
// to E channel bits. It returns an error when the pair is infeasible
// (K < 1, E < K, or K exceeding the mother code capacity).
func NewCode(k, e int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("polar: K = %d < 1", k)
	}
	if e < k {
		return nil, fmt.Errorf("polar: E = %d < K = %d (rate > 1)", e, k)
	}
	n := motherLength(k, e)
	if k > n {
		return nil, fmt.Errorf("polar: K = %d exceeds mother length N = %d", k, n)
	}
	c := &Code{K: k, E: e, N: n}
	if e < n {
		c.punct = n - e
	}
	if k > n-c.punct {
		return nil, fmt.Errorf("polar: K = %d exceeds usable length N-P = %d", k, n-c.punct)
	}
	c.construct()
	return c, nil
}

// motherLength picks N = 2^n: the smallest power of two covering E and K,
// clamped to [32, MaxN]. K > MaxN is rejected by NewCode (the downlink
// polar code does not exist beyond N = 512).
func motherLength(k, e int) int {
	n := 32
	for n < e && n < MaxN {
		n <<= 1
	}
	for n < k && n < MaxN {
		n <<= 1
	}
	return n
}

// Feasible reports whether a (K, E) polar code exists under the same
// rules NewCode enforces, without constructing it. Blind decoders use it
// to skip candidate positions whose aggregation level cannot carry the
// hypothesised payload at all (no transmission is possible there).
func Feasible(k, e int) bool {
	if k < 1 || e < k {
		return false
	}
	n := motherLength(k, e)
	if k > n {
		return false
	}
	punct := 0
	if e < n {
		punct = n - e
	}
	return k <= n-punct
}

// construct selects the frozen set: the punctured prefix indices are
// force-frozen (they are incapable — their coded bits are never sent),
// then the least reliable remaining positions are frozen until only K
// information positions remain. Reliability is the PW β-expansion weight.
func (c *Code) construct() {
	type posWeight struct {
		pos int
		w   float64
	}
	beta := math.Pow(2, 0.25)
	order := make([]posWeight, c.N)
	nBits := intLog2(c.N)
	for i := 0; i < c.N; i++ {
		w := 0.0
		for j := 0; j < nBits; j++ {
			if i>>uint(j)&1 == 1 {
				w += math.Pow(beta, float64(j))
			}
		}
		order[i] = posWeight{pos: i, w: w}
	}
	// Sort by descending reliability; ties broken by higher index (which
	// have higher polarization on average).
	sort.Slice(order, func(a, b int) bool {
		if order[a].w != order[b].w {
			return order[a].w > order[b].w
		}
		return order[a].pos > order[b].pos
	})

	c.isFrozen = make([]bool, c.N)
	for i := 0; i < c.punct; i++ {
		c.isFrozen[i] = true
	}
	c.infoPos = make([]int, 0, c.K)
	for _, pw := range order {
		if len(c.infoPos) == c.K {
			break
		}
		if pw.pos < c.punct {
			continue // force-frozen
		}
		c.infoPos = append(c.infoPos, pw.pos)
	}
	sort.Ints(c.infoPos)
	frozenCount := 0
	for i := range c.isFrozen {
		c.isFrozen[i] = true
		frozenCount++
	}
	for _, p := range c.infoPos {
		c.isFrozen[p] = false
		frozenCount--
	}
	_ = frozenCount
	// Prefix sums over the frozen mask (O(1) all-frozen tests) and the
	// fast-SSC node schedule both derive from the mask alone.
	c.finish()
}

// allFrozen reports whether every input position in [base, base+n) is
// frozen, i.e. the subtree is a rate-0 node whose partial sums are all
// zero regardless of the channel LLRs.
func (c *Code) allFrozen(base, n int) bool {
	return c.frozenUpTo[base+n]-c.frozenUpTo[base] == int32(n)
}

// Encode maps K information bits to E rate-matched channel bits.
// It panics if len(info) != K.
func (c *Code) Encode(info []uint8) []uint8 {
	if len(info) != c.K {
		panic(fmt.Sprintf("polar: Encode got %d bits, code has K = %d", len(info), c.K))
	}
	u := make([]uint8, c.N)
	for i, p := range c.infoPos {
		u[p] = info[i] & 1
	}
	transform(u)
	// Rate matching: drop the punctured prefix, then repeat cyclically
	// until E bits are emitted.
	out := make([]uint8, c.E)
	sent := c.N - c.punct
	for i := 0; i < c.E; i++ {
		out[i] = u[c.punct+i%sent]
	}
	return out
}

// transform applies the polar transform x = u · F^{⊗n} in place
// (no bit-reversal permutation).
func transform(u []uint8) {
	n := len(u)
	for length := 1; length < n; length <<= 1 {
		for i := 0; i < n; i += 2 * length {
			for j := 0; j < length; j++ {
				u[i+j] ^= u[i+j+length]
			}
		}
	}
}

// scScratch is the preallocated working memory of one SC decoding pass:
// one LLR buffer per recursion depth plus the channel-LLR, partial-sum
// and decision arrays. Pooled per Code, so steady-state decoding does
// not allocate.
type scScratch struct {
	chLLR  []float64   // length N
	levels [][]float64 // levels[d] has length N >> (d+1)
	sums   []uint8     // length N (partial sums, becomes the codeword)
	u      []uint8     // length N (decided input bits)
}

func (c *Code) newScratch() *scScratch {
	s := &scScratch{
		chLLR: make([]float64, c.N),
		sums:  make([]uint8, c.N),
		u:     make([]uint8, c.N),
	}
	for m := c.N / 2; m >= 1; m /= 2 {
		s.levels = append(s.levels, make([]float64, m))
	}
	return s
}

// Decode runs successive-cancellation decoding over E channel LLRs
// (positive LLR means bit 0 more likely) and returns the K decoded
// information bits. It panics if len(llr) != E. It delegates to
// DecodeInto with the pooled scratch, so its only allocation is the
// K-bit result slice itself.
func (c *Code) Decode(llr []float64) []uint8 {
	return c.DecodeInto(nil, llr)
}

// DecodeInto is Decode writing the K information bits into dst (reused
// when its capacity suffices, so steady-state decoding is allocation
// free). It returns the K-bit result slice.
//
// The hot path is the iterative fast-SSC sweep (schedule.go): terminal
// nodes write their partial sums and recover their own input bits with
// a local polar transform (the transform is its own inverse over
// GF(2)), replacing the per-leaf u writes of the recursive reference.
func (c *Code) DecodeInto(dst []uint8, llr []float64) []uint8 {
	s := c.getScratch()
	defer c.scratch.Put(s)
	if c.prepare(s, llr) {
		// Degenerate LLRs (NaN/Inf/overflow-capable): the fast path's
		// no-NaN invariant does not hold, so run the reference, which
		// defines the bit-exact behaviour for these inputs.
		c.scDecode(s, s.chLLR, s.sums, 0, 0)
	} else {
		c.runSchedule(s)
	}
	return c.extract(dst, s)
}

// decodeReferenceInto mirrors DecodeInto through the retained recursive
// reference decoder. The fast-SSC equivalence property tests and the CI
// bench gate (BenchmarkPolarSC impl=reference) measure against it.
func (c *Code) decodeReferenceInto(dst []uint8, llr []float64) []uint8 {
	s := c.getScratch()
	defer c.scratch.Put(s)
	c.prepare(s, llr)
	c.scDecode(s, s.chLLR, s.sums, 0, 0)
	return c.extract(dst, s)
}

func (c *Code) getScratch() *scScratch {
	s, _ := c.scratch.Get().(*scScratch)
	if s == nil {
		s = c.newScratch()
	}
	return s
}

// prepare rate-recovers E channel LLRs into s.chLLR: punctured
// positions get LLR 0 (erasure); repeated positions accumulate. The
// first wrap assigns and later wraps add in whole runs, so the hot loop
// carries no per-bit modulo. It reports whether any recovered LLR is
// degenerate (NaN, Inf, or large enough that the g cascade could
// overflow) — in which case the caller must use the recursive
// reference, whose NaN/Inf handling is the ground truth.
func (c *Code) prepare(s *scScratch, llr []float64) bool {
	if len(llr) != c.E {
		panic(fmt.Sprintf("polar: Decode got %d LLRs, code has E = %d", len(llr), c.E))
	}
	for i := 0; i < c.punct; i++ {
		s.chLLR[i] = 0
	}
	sent := c.N - c.punct
	dst := s.chLLR[c.punct:]
	first := c.E
	if first > sent {
		first = sent
	}
	copy(dst[:first], llr[:first])
	for i := first; i < sent; i++ {
		dst[i] = 0
	}
	for off := sent; off < c.E; off += sent {
		run := c.E - off
		if run > sent {
			run = sent
		}
		src := llr[off : off+run]
		for i := range src {
			dst[i] += src[i]
		}
	}
	const signMask = 1 << 63
	degenerate := false
	for _, x := range s.chLLR {
		if math.Float64bits(x)&^uint64(signMask) >= c.degenThresh {
			degenerate = true
		}
	}
	return degenerate
}

// extract copies the decided information bits out of s.u into dst.
func (c *Code) extract(dst []uint8, s *scScratch) []uint8 {
	if cap(dst) < c.K {
		dst = make([]uint8, c.K)
	}
	dst = dst[:c.K]
	for i, p := range c.infoPos {
		dst[i] = s.u[p]
	}
	return dst
}

// scDecode is the retained recursive reference decoder: it processes
// the subtree whose LLRs are llr (length N>>depth) and whose leftmost
// leaf is input index base, writing the subtree's partial sums into
// out. The fast-SSC executor (schedule.go) must stay bit-identical to
// it on every input; it is also called directly as the fallback for
// guarded rate-1 nodes and by decodeReferenceInto.
func (c *Code) scDecode(s *scScratch, llr []float64, out []uint8, base, depth int) {
	n := len(llr)
	if n == 1 {
		var bit uint8
		if !c.isFrozen[base] && llr[0] < 0 {
			bit = 1
		}
		s.u[base] = bit
		out[0] = bit
		return
	}
	half := n / 2
	tmp := s.levels[depth] // length half
	if c.allFrozen(base, half) {
		// Rate-0 left subtree: its bits and partial sums are all zero by
		// definition, so skip the f step and the recursion entirely. The
		// leaf decisions in s.u for those positions were zeroed when the
		// subtree was last visited with content — frozen positions are
		// never read back by DecodeInto, so only out must be cleared.
		for i := 0; i < half; i++ {
			out[i] = 0
		}
	} else {
		// f step: LLRs for the left subtree.
		for i := 0; i < half; i++ {
			tmp[i] = fLLR(llr[i], llr[i+half])
		}
		c.scDecode(s, tmp, out[:half], base, depth+1)
	}
	if c.allFrozen(base+half, half) {
		for i := half; i < n; i++ {
			out[i] = 0
		}
		return // combine is a no-op when the right half is all zero
	}
	// g step: LLRs for the right subtree given left partial sums.
	for i := 0; i < half; i++ {
		tmp[i] = gLLR(llr[i], llr[i+half], out[i])
	}
	c.scDecode(s, tmp, out[half:], base+half, depth+1)
	// Combine partial sums in place.
	for i := 0; i < half; i++ {
		out[i] ^= out[i+half]
	}
}

// fLLR is the min-sum check-node update: |result| = min(|a|, |b|),
// sign(result) = sign(a)·sign(b), computed branch-free on the IEEE 754
// bit patterns (Float64bits/frombits compile to plain register moves).
func fLLR(a, b float64) float64 {
	ab := math.Float64bits(a)
	bb := math.Float64bits(b)
	sign := (ab ^ bb) & (1 << 63)
	ab &^= 1 << 63
	bb &^= 1 << 63
	if bb < ab {
		ab = bb
	}
	return math.Float64frombits(ab | sign)
}

// gLLR is the variable-node update given the decoded upper bit.
func gLLR(a, b float64, u uint8) float64 {
	if u == 1 {
		return b - a
	}
	return b + a
}

func intLog2(n int) int {
	l := 0
	for 1<<uint(l) < n {
		l++
	}
	return l
}
