package polar

import (
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// TestDecodeIntoMatchesDecode: the buffer-reusing variant must return
// the same information bits as Decode, with and without a warm dst.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var buf []uint8
	for _, ke := range [][2]int{{54, 108}, {67, 108}, {94, 216}, {64, 1728}} {
		c, err := NewCode(ke[0], ke[1])
		if err != nil {
			t.Fatal(err)
		}
		info := randomBits(rng, c.K)
		llr := bpskLLR(c.Encode(info), 8)
		want := c.Decode(llr)
		got := c.DecodeInto(buf, llr)
		buf = got[:0]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("(%d,%d): bit %d differs", ke[0], ke[1], i)
			}
		}
	}
}

// TestDecodeIntoZeroAllocWarm: with the scratch pool warm and a reused
// dst, a decode performs no heap allocation.
func TestDecodeIntoZeroAllocWarm(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(22))
	c, err := NewCode(67, 432)
	if err != nil {
		t.Fatal(err)
	}
	llr := bpskLLR(c.Encode(randomBits(rng, c.K)), 8)
	dst := c.Decode(llr) // warm the pool and size dst
	if n := testing.AllocsPerRun(100, func() {
		dst = c.DecodeInto(dst, llr)
	}); n != 0 {
		t.Errorf("DecodeInto: %.1f allocs/op, want 0", n)
	}
}

// TestFeasibleMatchesNewCode: Feasible must predict NewCode's outcome
// exactly — the blind decoder trusts it to classify candidate positions
// as untransmittable without constructing a code.
func TestFeasibleMatchesNewCode(t *testing.T) {
	es := []int{12, 24, 54, 108, 216, 432, 864, 1728}
	for _, e := range es {
		for k := 0; k <= 620; k++ {
			_, err := NewCode(k, e)
			if got, want := Feasible(k, e), err == nil; got != want {
				t.Fatalf("Feasible(%d, %d) = %v, NewCode err = %v", k, e, got, err)
			}
		}
	}
	if Feasible(10, 0) {
		t.Error("Feasible(10, 0) = true")
	}
}
