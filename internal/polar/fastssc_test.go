package polar

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// newMaskCode builds an unpunctured code (E = N) with an arbitrary
// frozen mask — the property tests sweep masks NewCode's PW
// construction would never produce, so every constituent-node shape
// (and every guard fallback) gets exercised.
func newMaskCode(t *testing.T, frozen []bool) *Code {
	t.Helper()
	n := len(frozen)
	c := &Code{E: n, N: n}
	c.isFrozen = append([]bool(nil), frozen...)
	for i, f := range frozen {
		if !f {
			c.infoPos = append(c.infoPos, i)
		}
	}
	c.K = len(c.infoPos)
	if c.K == 0 {
		t.Fatal("mask froze every position")
	}
	c.finish()
	return c
}

// llrPatterns are the adversarial channel-LLR generators the
// equivalence tests sweep: each one targets a way the fast-SSC
// shortcuts could diverge from the float recursion (exact zeros, ties,
// infinities, NaN propagation) plus plain noise.
var llrPatterns = []struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}{
	{"gaussian", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 4
		}
		return v
	}},
	{"ties", func(rng *rand.Rand, n int) []float64 {
		// Equal magnitudes everywhere: every f min is a tie.
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(1 - 2*rng.Intn(2))
		}
		return v
	}},
	{"zero-heavy", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			if rng.Intn(3) == 0 {
				v[i] = 0
			} else {
				v[i] = rng.NormFloat64()
			}
		}
		return v
	}},
	{"inf-sprinkled", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			switch rng.Intn(8) {
			case 0:
				v[i] = math.Inf(1)
			case 1:
				v[i] = math.Inf(-1)
			default:
				v[i] = rng.NormFloat64() * 2
			}
		}
		return v
	}},
	{"nan-sprinkled", func(rng *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			if rng.Intn(16) == 0 {
				v[i] = math.NaN()
			} else {
				v[i] = rng.NormFloat64() * 2
			}
		}
		return v
	}},
	{"degenerate-mix", func(rng *rand.Rand, n int) []float64 {
		// Ties, zeros and infinities together.
		vals := []float64{0, 0, 1, -1, 1, -1, math.Inf(1), math.Inf(-1)}
		v := make([]float64, n)
		for i := range v {
			v[i] = vals[rng.Intn(len(vals))]
		}
		return v
	}},
	{"all-zero", func(rng *rand.Rand, n int) []float64 {
		return make([]float64, n)
	}},
}

// checkEquivalence runs every LLR pattern through the fast-SSC path and
// the recursive reference and requires bit-identical decisions.
func checkEquivalence(t *testing.T, c *Code, rng *rand.Rand, trials int, label string) {
	t.Helper()
	var fast, ref []uint8
	for _, pat := range llrPatterns {
		for trial := 0; trial < trials; trial++ {
			llr := pat.gen(rng, c.E)
			fast = c.DecodeInto(fast, llr)
			ref = c.decodeReferenceInto(ref, llr)
			for i := range ref {
				if fast[i] != ref[i] {
					t.Fatalf("%s pattern %s trial %d: info bit %d: fast=%d reference=%d",
						label, pat.name, trial, i, fast[i], ref[i])
				}
			}
		}
	}
}

// TestFastSSCMatchesReferenceRandomMasks sweeps random frozen masks at
// every mother length and freeze density, so rate-0/rate-1/repetition/
// SPC nodes appear at every size and position — including shapes the PW
// construction never yields (info at an even position of a pair, lone
// frozen bits deep in rate-1 regions).
func TestFastSSCMatchesReferenceRandomMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for _, n := range []int{32, 64, 128, 256, 512} {
		for _, density := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
			for mask := 0; mask < 4; mask++ {
				frozen := make([]bool, n)
				info := 0
				for i := range frozen {
					frozen[i] = rng.Float64() < density
					if !frozen[i] {
						info++
					}
				}
				if info == 0 {
					frozen[rng.Intn(n)] = false
				}
				c := newMaskCode(t, frozen)
				checkEquivalence(t, c, rng, 3,
					fmt.Sprintf("n=%d density=%.2f mask=%d", n, density, mask))
			}
		}
	}
}

// TestFastSSCMatchesReferenceCodecShapes covers every (K, E) shape the
// PDCCH codec can request: DCI payload sizes (+24 CRC) across all five
// aggregation levels (E = AL·108), i.e. real punctured/repeated
// rate-matched codes rather than the E = N masks above.
func TestFastSSCMatchesReferenceCodecShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, k := range []int{30, 43, 54, 64, 84, 104, 128} {
		for _, al := range []int{1, 2, 4, 8, 16} {
			e := al * 108
			if !Feasible(k, e) {
				continue
			}
			c, err := NewCode(k, e)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, c, rng, 2, fmt.Sprintf("K=%d E=%d", k, e))
		}
	}
}

// TestFastSSCRoundTrip: noiseless codewords decode exactly through the
// schedule path for every codec shape (the involution-based bit
// recovery must invert the partial sums correctly).
func TestFastSSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dst []uint8
	for _, k := range []int{54, 64, 84, 104} {
		for _, al := range []int{1, 2, 4, 8, 16} {
			e := al * 108
			if !Feasible(k, e) {
				continue
			}
			c, err := NewCode(k, e)
			if err != nil {
				t.Fatal(err)
			}
			info := randomBits(rng, k)
			dst = c.DecodeInto(dst, bpskLLR(c.Encode(info), 6))
			for i := range info {
				if dst[i] != info[i] {
					t.Fatalf("K=%d E=%d: round-trip bit %d flipped", k, e, i)
				}
			}
		}
	}
}

// TestScheduleCoversAllKinds: the DCI-shaped codes must actually
// contain specialized nodes — if classification regressed to emitting
// only generic branches, the speedup claim would silently evaporate.
func TestScheduleCoversAllKinds(t *testing.T) {
	counts := map[uint8]int{}
	for _, ke := range [][2]int{{64, 432}, {104, 864}, {54, 108}} {
		c, err := NewCode(ke[0], ke[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range c.schedule {
			counts[op.kind]++
		}
	}
	for kind, name := range map[uint8]string{opRate0: "rate-0", opRate1: "rate-1", opRep: "repetition", opSPC: "SPC"} {
		if counts[kind] == 0 {
			t.Errorf("no %s nodes scheduled across the DCI shapes", name)
		}
	}
}

// TestDecodeSingleAlloc: the convenience Decode must allocate exactly
// its result slice once the scratch pool is warm.
func TestDecodeSingleAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates")
	}
	c, err := NewCode(64, 432)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	llr := bpskLLR(c.Encode(randomBits(rng, c.K)), 8)
	c.Decode(llr) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		c.Decode(llr)
	})
	if allocs > 1 {
		t.Fatalf("Decode allocates %.1f times per call, want 1 (the result slice)", allocs)
	}
}

// BenchmarkPolarSC is the CI-gated SC-pass comparison: the fast-SSC
// schedule sweep must beat the retained recursive reference by >= 2x at
// 0 allocs/op (cmd/benchgate over BENCH_polar.json). Rate recovery runs
// once outside the timer (neither decoder mutates the channel LLRs), so
// the ratio measures the SC pass in isolation.
func BenchmarkPolarSC(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, ke := range [][2]int{{64, 432}, {104, 864}, {54, 108}} {
		c, err := NewCode(ke[0], ke[1])
		if err != nil {
			b.Fatal(err)
		}
		llr := bpskLLR(c.Encode(randomBits(rng, c.K)), 8)
		for i := range llr {
			llr[i] += rng.NormFloat64()
		}
		arms := []struct {
			name string
			pass func(s *scScratch)
		}{
			{"reference", func(s *scScratch) { c.scDecode(s, s.chLLR, s.sums, 0, 0) }},
			{"fastssc", func(s *scScratch) { c.runSchedule(s) }},
		}
		for _, arm := range arms {
			b.Run(fmt.Sprintf("k=%d/e=%d/impl=%s", ke[0], ke[1], arm.name), func(b *testing.B) {
				s := c.getScratch()
				defer c.scratch.Put(s)
				c.prepare(s, llr)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					arm.pass(s)
				}
			})
		}
	}
}

// BenchmarkPolarDecodeInto measures the full codec-facing call — rate
// recovery + SC pass + bit extraction — per impl, the number the slot
// loop actually pays per candidate.
func BenchmarkPolarDecodeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	for _, ke := range [][2]int{{64, 432}, {104, 864}} {
		c, err := NewCode(ke[0], ke[1])
		if err != nil {
			b.Fatal(err)
		}
		llr := bpskLLR(c.Encode(randomBits(rng, c.K)), 8)
		for i := range llr {
			llr[i] += rng.NormFloat64()
		}
		arms := []struct {
			name string
			fn   func(dst []uint8, llr []float64) []uint8
		}{
			{"reference", c.decodeReferenceInto},
			{"fastssc", c.DecodeInto},
		}
		for _, arm := range arms {
			b.Run(fmt.Sprintf("k=%d/e=%d/impl=%s", ke[0], ke[1], arm.name), func(b *testing.B) {
				dst := make([]uint8, c.K)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = arm.fn(dst, llr)
				}
			})
		}
	}
}
