package polar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bpskLLR converts coded bits to noiseless LLRs (bit 0 -> +m, 1 -> -m).
func bpskLLR(bits []uint8, magnitude float64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = magnitude
		} else {
			out[i] = -magnitude
		}
	}
	return out
}

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(2))
	}
	return out
}

func TestNewCodeValidation(t *testing.T) {
	cases := []struct {
		k, e   int
		wantOK bool
	}{
		{k: 0, e: 100, wantOK: false},
		{k: 64, e: 32, wantOK: false}, // rate > 1
		{k: 54, e: 108, wantOK: true},
		{k: 104, e: 108, wantOK: true},
		{k: 64, e: 1728, wantOK: true}, // heavy repetition (AL16)
		{k: 600, e: 700, wantOK: false},
	}
	for _, c := range cases {
		_, err := NewCode(c.k, c.e)
		if (err == nil) != c.wantOK {
			t.Errorf("NewCode(%d, %d): err = %v, wantOK = %v", c.k, c.e, err, c.wantOK)
		}
	}
}

func TestMotherLength(t *testing.T) {
	cases := []struct{ k, e, want int }{
		{54, 108, 128},
		{54, 216, 256},
		{54, 432, 512},
		{54, 864, 512},  // capped at MaxN, repetition
		{54, 1728, 512}, // AL16
		{20, 24, 32},
	}
	for _, c := range cases {
		if got := motherLength(c.k, c.e); got != c.want {
			t.Errorf("motherLength(%d, %d) = %d, want %d", c.k, c.e, got, c.want)
		}
	}
}

func TestInfoPositionsAvoidPuncturedPrefix(t *testing.T) {
	c, err := NewCode(54, 108) // N=128, punct=20
	if err != nil {
		t.Fatal(err)
	}
	if c.punct != 20 {
		t.Fatalf("punct = %d, want 20", c.punct)
	}
	for _, p := range c.infoPos {
		if p < c.punct {
			t.Errorf("info position %d inside punctured prefix [0,%d)", p, c.punct)
		}
	}
	if len(c.infoPos) != c.K {
		t.Fatalf("infoPos count %d, want %d", len(c.infoPos), c.K)
	}
}

func TestNoiselessRoundTripTypicalDCISizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// K = DCI payload (30..80 bits) + 24 CRC; E = AL * 108.
	for _, k := range []int{54, 64, 84, 104} {
		for _, al := range []int{1, 2, 4, 8, 16} {
			e := al * 108
			if k > e {
				continue
			}
			c, err := NewCode(k, e)
			if err != nil {
				t.Fatalf("NewCode(%d, %d): %v", k, e, err)
			}
			for trial := 0; trial < 10; trial++ {
				info := randomBits(rng, k)
				coded := c.Encode(info)
				if len(coded) != e {
					t.Fatalf("coded length %d, want %d", len(coded), e)
				}
				got := c.Decode(bpskLLR(coded, 10))
				for i := range info {
					if got[i] != info[i] {
						t.Fatalf("K=%d E=%d trial %d: bit %d wrong", k, e, trial, i)
					}
				}
			}
		}
	}
}

func TestNoiselessRoundTripProperty(t *testing.T) {
	f := func(seed int64, kRaw, eRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 12 + int(kRaw%120)
		e := k + int(eRaw%1700)
		c, err := NewCode(k, e)
		if err != nil {
			return true // infeasible pair, skip
		}
		info := randomBits(rng, k)
		got := c.Decode(bpskLLR(c.Encode(info), 5))
		for i := range info {
			if got[i] != info[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrectsNoise(t *testing.T) {
	// At moderate rate and reasonable Eb/N0 the SC decoder should fix
	// most noisy codewords; at the same noise an uncoded slicer would
	// almost surely fail somewhere in the block.
	rng := rand.New(rand.NewSource(11))
	c, err := NewCode(64, 432) // AL4-ish: rate ~0.15
	if err != nil {
		t.Fatal(err)
	}
	sigma := 0.7 // Es/N0 ~ 3 dB
	success := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, c.K)
		coded := c.Encode(info)
		llr := make([]float64, len(coded))
		for i, b := range coded {
			x := 1.0
			if b == 1 {
				x = -1.0
			}
			y := x + rng.NormFloat64()*sigma
			llr[i] = 2 * y / (sigma * sigma)
		}
		got := c.Decode(llr)
		ok := true
		for i := range info {
			if got[i] != info[i] {
				ok = false
				break
			}
		}
		if ok {
			success++
		}
	}
	if success < trials*9/10 {
		t.Errorf("SC decoder succeeded %d/%d at sigma=%.2f; want >= 90%%", success, trials, sigma)
	}
}

func TestDecodeFailsAtExtremeNoise(t *testing.T) {
	// Sanity: with pure-noise LLRs uncorrelated to the codeword the
	// decoder should not reproduce the transmitted bits reliably.
	rng := rand.New(rand.NewSource(13))
	c, err := NewCode(64, 108)
	if err != nil {
		t.Fatal(err)
	}
	info := randomBits(rng, c.K)
	llr := make([]float64, c.E)
	for i := range llr {
		llr[i] = rng.NormFloat64()
	}
	got := c.Decode(llr)
	same := 0
	for i := range info {
		if got[i] == info[i] {
			same++
		}
	}
	if same == len(info) {
		t.Error("decoder matched all bits from pure noise (suspicious)")
	}
}

func TestEncodePanicsOnWrongLength(t *testing.T) {
	c, err := NewCode(54, 108)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Encode with wrong length did not panic")
		}
	}()
	c.Encode(make([]uint8, 10))
}

func TestDecodePanicsOnWrongLength(t *testing.T) {
	c, err := NewCode(54, 108)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Decode with wrong length did not panic")
		}
	}()
	c.Decode(make([]float64, 10))
}

func TestTransformInvolution(t *testing.T) {
	// The polar transform is its own inverse (F^{⊗n} over GF(2)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomBits(rng, 256)
		v := append([]uint8(nil), u...)
		transform(v)
		transform(v)
		for i := range u {
			if u[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepetitionImprovesReliability(t *testing.T) {
	// The same K at a larger E (higher AL) must not be less reliable.
	rng := rand.New(rand.NewSource(17))
	sigma := 1.1
	errRate := func(e int) float64 {
		c, err := NewCode(64, e)
		if err != nil {
			t.Fatal(err)
		}
		fail := 0
		const trials = 60
		for trial := 0; trial < trials; trial++ {
			info := randomBits(rng, c.K)
			coded := c.Encode(info)
			llr := make([]float64, len(coded))
			for i, b := range coded {
				x := 1.0
				if b == 1 {
					x = -1.0
				}
				llr[i] = 2 * (x + rng.NormFloat64()*sigma) / (sigma * sigma)
			}
			got := c.Decode(llr)
			for i := range info {
				if got[i] != info[i] {
					fail++
					break
				}
			}
		}
		return float64(fail) / trials
	}
	low := errRate(108)  // AL1
	high := errRate(864) // AL8
	if high > low+0.1 {
		t.Errorf("AL8 block error rate %.2f worse than AL1 %.2f", high, low)
	}
	if math.IsNaN(low) || math.IsNaN(high) {
		t.Fatal("NaN error rates")
	}
}

func BenchmarkEncodeAL4(b *testing.B) {
	c, err := NewCode(64, 432)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	info := randomBits(rng, c.K)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(info)
	}
}

func BenchmarkDecodeAL4(b *testing.B) {
	c, err := NewCode(64, 432)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	info := randomBits(rng, c.K)
	llr := bpskLLR(c.Encode(info), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Decode(llr)
	}
}
