package polar

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Fast-SSC decoding (Sarkis et al., "Fast Polar Decoders: Algorithm and
// Implementation"): instead of recursing into every subtree, the code
// classifies each subtree once at construction time and precomputes a
// flat operation schedule. Constituent nodes with special frozen
// patterns are decoded directly — no recursion below them:
//
//	rate-0      all positions frozen: partial sums are zero.
//	rate-1      no position frozen: hard-decide each LLR.
//	repetition  only the last position carries information: the bit is
//	            the sign of the (butterfly-ordered) LLR sum, broadcast.
//	SPC         only the first position is frozen: a single-parity-check
//	            code, decoded by replaying the recursion's f-cascade to
//	            the bottom repetition pair and unwinding g / hard-
//	            decision / combine per level.
//
// Everything else becomes explicit f/g/combine ops over the pooled
// scScratch buffers, executed iteratively — no call overhead, and the
// inner loops are flat slices the compiler can keep in registers.
//
// The contract is strict bit-identity with the retained recursive
// reference (scDecode) on every input, enforced by property tests over
// random frozen masks and adversarial LLRs. Two specializations are
// guarded because plain shortcuts diverge from float min-sum SC on
// degenerate inputs:
//
//   - rate-1 hard decisions equal the SC result only when every node
//     LLR is nonzero (an exact zero can flip sign under the f/g
//     recursion: f(0,-5) = -0 decodes to 0, while the hard decision of
//     the later g output may differ). The executor scans for zeros and
//     falls back to the recursive reference for just that subtree.
//   - SPC is not decoded with the textbook min-|LLR| parity flip (whose
//     tie-breaking and rounding differ from chained f/g floats); it
//     replays the recursion's exact arithmetic level by level, so each
//     intermediate equals the reference value operation for operation.
//
// Repetition nodes need no guard: the in-place butterfly sum performs
// the identical additions in the identical order as the g-with-zero
// cascade of the reference.
//
// NaN and infinity handling lives one level up: prepare screens the
// recovered channel LLRs once, and DecodeInto routes any input that
// could produce a non-finite intermediate (NaN, Inf, or magnitudes
// large enough to overflow a g cascade) to the recursive reference
// wholesale. The executor therefore assumes every LLR it touches is
// finite — which is what lets the g step use a sign-flip add and the
// rate-1/repetition shortcuts skip NaN ordering concerns.

// nodeOp kinds. opF/opG/opG0/opCombine are the generic tree ops; the
// rest decode a whole constituent node.
const (
	opF       uint8 = iota // f into levels[depth] (left-child LLRs)
	opG                    // g into levels[depth] (right-child LLRs, reads left sums)
	opG0                   // g with all-zero left sums (left child was rate-0)
	opCombine              // out[i] ^= out[i+half]
	opRate0                // zero the node's partial sums
	opRate1                // hard-decide each LLR (guarded)
	opRep                  // repetition: sign of butterfly LLR sum, broadcast
	opSPC                  // single-parity-check: staged f-cascade + unwind
	opBranch               // internal classify result, never scheduled
)

// nodeOp is one step of the flat decode schedule. base/n locate the
// subtree's positions; depth selects the scratch level holding its LLRs
// (depth 0 = chLLR, else levels[depth-1][:n]).
type nodeOp struct {
	kind  uint8
	depth uint8
	base  int16
	n     int16
}

// finish derives everything computed from the frozen mask: the prefix
// sums behind allFrozen and the fast-SSC schedule. construct calls it;
// tests call it directly on hand-built masks.
func (c *Code) finish() {
	c.frozenUpTo = make([]int32, c.N+1)
	for i, f := range c.isFrozen {
		c.frozenUpTo[i+1] = c.frozenUpTo[i]
		if f {
			c.frozenUpTo[i+1]++
		}
	}
	c.schedule = c.schedule[:0]
	c.emit(0, c.N, 0)
	// Any channel LLR of magnitude >= 2^(1022 - log2 N) is "degenerate":
	// a sum of N such values could overflow to Inf (and Inf - Inf to
	// NaN) somewhere in the g cascade. Everything below keeps every
	// intermediate strictly finite, because each intermediate is bounded
	// by the sum of at most N channel-LLR magnitudes < 2^1023.
	c.degenThresh = uint64(0x7FE-intLog2(c.N)) << 52
}

// classify maps a subtree to its constituent-node kind, or opBranch
// when it has no special structure and must be split.
func (c *Code) classify(base, n int) uint8 {
	f := int(c.frozenUpTo[base+n] - c.frozenUpTo[base])
	switch {
	case f == n:
		return opRate0
	case f == 0:
		return opRate1
	case n >= 2 && f == n-1 && !c.isFrozen[base+n-1]:
		return opRep
	case n >= 4 && f == 1 && c.isFrozen[base]:
		return opSPC
	}
	return opBranch
}

// emit appends the schedule for the subtree [base, base+n) at depth,
// mirroring scDecode's control flow exactly — including the rate-0
// pruning that skips the f step, and the early return (no combine) when
// the right half is entirely frozen.
func (c *Code) emit(base, n, depth int) {
	if k := c.classify(base, n); k != opBranch {
		c.schedule = append(c.schedule, nodeOp{kind: k, depth: uint8(depth), base: int16(base), n: int16(n)})
		return
	}
	half := n / 2
	leftZero := c.allFrozen(base, half)
	if leftZero {
		c.schedule = append(c.schedule, nodeOp{kind: opRate0, depth: uint8(depth + 1), base: int16(base), n: int16(half)})
	} else {
		c.schedule = append(c.schedule, nodeOp{kind: opF, depth: uint8(depth), base: int16(base), n: int16(n)})
		c.emit(base, half, depth+1)
	}
	if c.allFrozen(base+half, half) {
		c.schedule = append(c.schedule, nodeOp{kind: opRate0, depth: uint8(depth + 1), base: int16(base + half), n: int16(half)})
		return
	}
	g := opG
	if leftZero {
		g = opG0
	}
	c.schedule = append(c.schedule, nodeOp{kind: g, depth: uint8(depth), base: int16(base), n: int16(n)})
	c.emit(base+half, half, depth+1)
	c.schedule = append(c.schedule, nodeOp{kind: opCombine, base: int16(base), n: int16(n)})
}

// asBits reinterprets an LLR slice as its raw IEEE-754 words. The f
// step is pure sign/magnitude bit manipulation, so running it over an
// integer view keeps the whole loop in the integer pipeline — the
// compiler otherwise loads each operand into an xmm register only to
// immediately move it back out for Float64bits.
func asBits(v []float64) []uint64 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&v[0])), len(v))
}

// fBits is fLLR over raw IEEE-754 words: the sign of the output is the
// XOR of the operand signs, the magnitude the smaller operand
// magnitude (magnitudes of non-NaN doubles order correctly as unsigned
// integers, and the reference's NaN ordering is this same integer
// compare).
func fBits(x, y uint64) uint64 {
	const signMask = 1 << 63
	sign := (x ^ y) & signMask
	x &^= signMask
	y &^= signMask
	if y < x {
		x = y
	}
	return sign | x
}

// gSelect is the g step b ± a with the branch on the decoded bit u
// replaced by XORing u into a's sign bit and always adding. u is
// effectively random during decode, so the reference's data-dependent
// branch mispredicts half the time; the sign-flip form is branch-free.
// b + (-a) is bit-exact with b - a for every zero, denormal, finite
// and infinite a (IEEE subtraction IS addition of the negated
// operand). A NaN a would NOT be equivalent — the flipped sign changes
// the payload the hardware propagates — but prepare's degeneracy
// screen guarantees the fast path never sees a NaN, nor magnitudes
// that could overflow into one mid-tree.
func gSelect(a, b float64, u uint8) float64 {
	return b + math.Float64frombits(math.Float64bits(a)^(uint64(u)<<63))
}

// xorInto XORs src into dst elementwise — the combine step is pure
// GF(2), so word order is irrelevant. Lengths are always a power of
// two (half a node), so there is never a partial-word tail: two- and
// four-byte combines load exactly one small word, everything larger
// runs whole eight-byte words.
func xorInto(dst, src []uint8) {
	switch len(dst) {
	case 1:
		dst[0] ^= src[0]
	case 2:
		binary.LittleEndian.PutUint16(dst, binary.LittleEndian.Uint16(dst)^binary.LittleEndian.Uint16(src))
	case 4:
		binary.LittleEndian.PutUint32(dst, binary.LittleEndian.Uint32(dst)^binary.LittleEndian.Uint32(src))
	default:
		src = src[:len(dst)]
		for i := 0; i+8 <= len(dst); i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
	}
}

// fPass runs the f step over integer views of both operand halves.
// Kept out of runSchedule's switch on purpose: the dispatch loop keeps
// enough state live that an inlined body spills and reloads slice
// headers inside the hot loop; a standalone frame gets clean register
// allocation.
//
//go:noinline
func fPass(dst, a, bh []uint64) {
	a = a[:len(dst)]
	bh = bh[:len(dst)]
	i := 0
	for ; i+2 <= len(dst); i += 2 {
		dst[i] = fBits(a[i], bh[i])
		dst[i+1] = fBits(a[i+1], bh[i+1])
	}
	if i < len(dst) {
		dst[i] = fBits(a[i], bh[i])
	}
}

// gPass runs the branch-free g step; see fPass for why it lives
// outside the dispatch switch.
//
//go:noinline
func gPass(dst, a, bh []float64, us []uint8) {
	a = a[:len(dst)]
	bh = bh[:len(dst)]
	us = us[:len(dst)]
	i := 0
	for ; i+2 <= len(dst); i += 2 {
		dst[i] = gSelect(a[i], bh[i], us[i])
		dst[i+1] = gSelect(a[i+1], bh[i+1], us[i+1])
	}
	if i < len(dst) {
		dst[i] = gSelect(a[i], bh[i], us[i])
	}
}

// nodeLLR returns the scratch buffer holding the LLRs of a node at the
// given depth: the channel LLRs at the root, else the parent's f/g
// output level.
func (c *Code) nodeLLR(s *scScratch, depth, n int) []float64 {
	if depth == 0 {
		return s.chLLR
	}
	return s.levels[depth-1][:n]
}

// runSchedule executes the fast-SSC schedule over the scratch buffers,
// leaving the decoded codeword in s.sums and the information bits in
// s.u. Every information position belongs to exactly one terminal node
// (rate-1, repetition, SPC, or an info leaf under a generic branch), so
// each terminal writes its own slice of s.u: repetition nodes place
// their single bit directly, while rate-1 and SPC nodes invert their
// local partial sums with a size-n polar transform (the transform is an
// involution over GF(2)). Frozen positions are never read back by
// extract, so rate-0 nodes skip u entirely.
func (c *Code) runSchedule(s *scScratch) {
	for _, op := range c.schedule {
		base, n, depth := int(op.base), int(op.n), int(op.depth)
		switch op.kind {
		case opF:
			llr := c.nodeLLR(s, depth, n)
			half := n / 2
			fPass(asBits(s.levels[depth][:half]), asBits(llr[:half]), asBits(llr[half:][:half]))
		case opG:
			llr := c.nodeLLR(s, depth, n)
			half := n / 2
			gPass(s.levels[depth][:half], llr[:half], llr[half:][:half], s.sums[base:][:half])
		case opG0:
			llr := c.nodeLLR(s, depth, n)
			half := n / 2
			a, bh := llr[:half], llr[half:][:half]
			dst := s.levels[depth][:half]
			for i := range dst {
				dst[i] = bh[i] + a[i]
			}
		case opCombine:
			half := n / 2
			out := s.sums[base : base+n]
			xorInto(out[:half], out[half:])
		case opRate0:
			out := s.sums[base : base+n]
			for i := range out {
				out[i] = 0
			}
		case opRate1:
			c.rate1(s, c.nodeLLR(s, depth, n)[:n], base, n, depth)
		case opRep:
			// In-place butterfly halving performs the same additions in
			// the same order as the reference's g-with-zero cascade
			// (clobbering the node's LLR buffer is safe: it is dead once
			// the node completes).
			v := c.nodeLLR(s, depth, n)[:n]
			out := s.sums[base : base+n]
			var bit uint8
			if n == 4 {
				// Unrolled butterfly for the most common size.
				if (v[3]+v[1])+(v[2]+v[0]) < 0 {
					bit = 1
				}
				out[0], out[1], out[2], out[3] = bit, bit, bit, bit
				s.u[base+3] = bit
				continue
			}
			for m := n; m > 1; m >>= 1 {
				half := m >> 1
				lo, hi := v[:half], v[half:][:half]
				for i := range lo {
					lo[i] = hi[i] + lo[i]
				}
			}
			if v[0] < 0 {
				bit = 1
			}
			for i := range out {
				out[i] = bit
			}
			s.u[base+n-1] = bit // the node's only information position
		case opSPC:
			c.spc(s, c.nodeLLR(s, depth, n)[:n], base, n, depth)
		}
	}
}

// rate1 hard-decides the rate-1 node [base, base+n) whose LLRs are v.
// For nonzero LLRs the hard decisions equal the recursive SC result
// (induction: f and g of same-sign operands preserve the product sign
// structure, so every leaf decision reduces to the sign of its own
// channel LLR); an exact zero anywhere voids that proof, so the node
// falls back to the retained recursive reference. NaNs would void it
// too, but prepare's degeneracy screen keeps them out of every buffer
// rate1 can see.
func (c *Code) rate1(s *scScratch, v []float64, base, n, depth int) {
	if n == 1 {
		// The leaf rule verbatim: bit = 1 iff llr < 0 (so -0 and NaN
		// decode to 0, exactly like the reference).
		var bit uint8
		if v[0] < 0 {
			bit = 1
		}
		s.sums[base] = bit
		s.u[base] = bit
		return
	}
	// Zero detection: w<<1 == 0 exactly when the raw bits encode ±0.
	// NaNs need no check — prepare's degeneracy screen keeps them out
	// of every buffer rate1 can see (runSchedule and spc run only on
	// screened LLRs).
	out := s.sums[base : base+n]
	switch n {
	case 2:
		// The size-2 and size-4 transforms unrolled: SPC unwinds call
		// rate1 mostly at these sizes, where the generic copy+transform
		// costs more than the decisions themselves.
		w0 := math.Float64bits(v[0])
		w1 := math.Float64bits(v[1])
		if w0<<1 == 0 || w1<<1 == 0 {
			c.scDecode(s, v, out, base, depth)
			return
		}
		b0, b1 := uint8(w0>>63), uint8(w1>>63)
		out[0], out[1] = b0, b1
		s.u[base], s.u[base+1] = b0^b1, b1
	case 4:
		w0 := math.Float64bits(v[0])
		w1 := math.Float64bits(v[1])
		w2 := math.Float64bits(v[2])
		w3 := math.Float64bits(v[3])
		if w0<<1 == 0 || w1<<1 == 0 || w2<<1 == 0 || w3<<1 == 0 {
			c.scDecode(s, v, out, base, depth)
			return
		}
		b0, b1 := uint8(w0>>63), uint8(w1>>63)
		b2, b3 := uint8(w2>>63), uint8(w3>>63)
		out[0], out[1], out[2], out[3] = b0, b1, b2, b3
		s.u[base], s.u[base+1], s.u[base+2], s.u[base+3] = b0^b1^b2^b3, b1^b3, b2^b3, b3
	default:
		zero := false
		for i, x := range v {
			w := math.Float64bits(x)
			if w<<1 == 0 {
				zero = true
			}
			out[i] = uint8(w >> 63)
		}
		if zero {
			// The recursive reference recomputes the node from its LLRs
			// (the partial decisions above are fully overwritten) and
			// writes the leaf u bits itself.
			c.scDecode(s, v, out, base, depth)
			return
		}
		// Local involution: the node's input bits from its partial sums.
		u := s.u[base : base+n]
		copy(u, out)
		transform(u)
	}
}

// spc decodes a single-parity-check node (frozen only at base) by
// replaying the reference recursion's operation sequence: an f-cascade
// down to the size-2 repetition node, then per-level g, rate-1 hard
// decision, and combine on the way back up. Every float op matches the
// recursion's op on the same operands in the same buffers, so the
// result is bit-identical — including the rounding and tie cases a
// direct Wagner (min-|LLR| parity flip) decode would get wrong.
func (c *Code) spc(s *scScratch, buf []float64, base, n, depth int) {
	out := s.sums[base : base+n]
	if n == 4 {
		// The most common SPC size, fully unrolled: f pair, bottom
		// repetition decision, g pair, rate-1 pair, combine — the same
		// ops as the loops below without any slice bookkeeping.
		f0 := math.Float64frombits(fBits(math.Float64bits(buf[0]), math.Float64bits(buf[2])))
		f1 := math.Float64frombits(fBits(math.Float64bits(buf[1]), math.Float64bits(buf[3])))
		var bit uint8
		if f1+f0 < 0 {
			bit = 1
		}
		w0 := math.Float64bits(gSelect(buf[0], buf[2], bit))
		w1 := math.Float64bits(gSelect(buf[1], buf[3], bit))
		if w0<<1 == 0 || w1<<1 == 0 {
			// Zero in the rate-1 pair: replay it through the reference
			// (see rate1's guard).
			lv := s.levels[depth][:2]
			lv[0] = math.Float64frombits(w0)
			lv[1] = math.Float64frombits(w1)
			c.scDecode(s, lv, out[2:4], base+2, depth+1)
		} else {
			b2, b3 := uint8(w0>>63), uint8(w1>>63)
			out[2], out[3] = b2, b3
			s.u[base+2], s.u[base+3] = b2^b3, b3
		}
		out[0], out[1] = bit^out[2], bit^out[3]
		s.u[base+1] = bit
		return
	}
	src := buf
	d := depth
	for m := n; m > 2; m >>= 1 {
		half := m >> 1
		dst := s.levels[d][:half]
		a, bh := asBits(src[:half])[:half], asBits(src[half:][:half])[:half]
		db := asBits(dst)[:half]
		for i := range db {
			db[i] = fBits(a[i], bh[i])
		}
		src = dst
		d++
	}
	// Bottom of the cascade: a repetition pair (frozen, info). Its u
	// bits plus the unwind children's (written by rate1) cover every
	// position of the node.
	var bit uint8
	if src[1]+src[0] < 0 {
		bit = 1
	}
	s.sums[base] = bit
	s.sums[base+1] = bit
	s.u[base+1] = bit
	for m := 2; m < n; m <<= 1 {
		d--
		lv := buf
		if d != depth {
			lv = s.levels[d-1][:2*m]
		}
		g := s.levels[d][:m]
		out := s.sums[base : base+2*m]
		la, lb, us := lv[:m], lv[m:][:m], out[:m]
		for i := range g {
			g[i] = gSelect(la[i], lb[i], us[i])
		}
		c.rate1(s, g, base+m, m, d+1)
		xorInto(out[:m], out[m:])
	}
}
