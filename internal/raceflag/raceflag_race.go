//go:build race

// Package raceflag exposes whether the race detector is compiled in, so
// allocation-count tests can skip themselves: race instrumentation adds
// heap allocations that testing.AllocsPerRun would otherwise report as
// regressions.
package raceflag

// Enabled reports whether the build carries the race detector.
const Enabled = true
