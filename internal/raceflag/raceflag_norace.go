//go:build !race

package raceflag

// Enabled reports whether the build carries the race detector.
const Enabled = false
