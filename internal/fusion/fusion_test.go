package fusion

import (
	"runtime"
	"testing"
	"time"

	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

func rec(slot int, rnti uint16, tbs int) telemetry.Record {
	return telemetry.Record{SlotIdx: slot, RNTI: rnti, Downlink: true, TBS: tbs}
}

func twoCells(t *testing.T) *Aggregator {
	t.Helper()
	a := New()
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddCellValidation(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddCell(1, phy.Mu1); err == nil {
		t.Error("duplicate cell accepted")
	}
	if err := a.AddCell(2, phy.Numerology(9)); err == nil {
		t.Error("invalid numerology accepted")
	}
	if err := a.Ingest(99, rec(0, 1, 100)); err == nil {
		t.Error("unknown cell ingested")
	}
}

// TestAddCellSharedStore: handing the aggregator a store that already
// has a cell registered (the -history wiring) must not fail AddCell.
func TestAddCellSharedStore(t *testing.T) {
	st := history.New(history.Config{BinWidth: 10 * time.Millisecond, Depth: 64})
	if err := st.AddCell(1, phy.Mu1.SlotDuration()); err != nil {
		t.Fatal(err)
	}
	a := NewWithStore(st)
	if a.Store() != st {
		t.Fatal("shared store not adopted")
	}
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatalf("AddCell on a shared store: %v", err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		t.Fatalf("AddCell of a store-unknown cell: %v", err)
	}
	_ = a.Ingest(1, rec(100, 0x11, 1000))
	if got := st.TrackedUEs(); got != 1 {
		t.Errorf("shared store tracks %d UEs after ingest, want 1", got)
	}
}

func TestMergedStreamTimeOrdered(t *testing.T) {
	a := twoCells(t)
	// Cell 1 runs 0.5 ms slots, cell 2 runs 1 ms slots: slot indices do
	// not align, absolute bin times must.
	_ = a.Ingest(1, rec(100, 0x11, 1000)) // t = 50 ms -> bin 5
	_ = a.Ingest(2, rec(40, 0x22, 2000))  // t = 40 ms -> bin 4
	_ = a.Ingest(1, rec(60, 0x11, 4000))  // t = 30 ms -> bin 3
	m := a.Merged()
	if len(m) != 3 {
		t.Fatalf("merged %d bins (%+v), want 3", len(m), m)
	}
	for i := 1; i < len(m); i++ {
		if m[i].At() < m[i-1].At() {
			t.Fatalf("merged view out of order: %v after %v", m[i].At(), m[i-1].At())
		}
	}
	if m[0].Cell != 1 || m[0].At() != 30*time.Millisecond || m[0].DLBits != 4000 {
		t.Errorf("first merged bin wrong: %+v", m[0])
	}
	if m[1].Cell != 2 || m[1].DLBits != 2000 {
		t.Errorf("second merged bin wrong: %+v", m[1])
	}
}

// TestMergedViewBounded: the merged view is reconstructed from the
// store's fixed-depth rings, so it cannot outgrow depth bins per cell no
// matter how many records were ingested.
func TestMergedViewBounded(t *testing.T) {
	st := history.New(history.Config{BinWidth: 10 * time.Millisecond, Depth: 32})
	a := NewWithStore(st)
	if err := a.AddCell(1, phy.Mu0); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10000; s++ { // 10 s of 1 ms slots, every bin active
		_ = a.Ingest(1, rec(s, 0x11, 100))
	}
	if m := a.Merged(); len(m) > 32 {
		t.Errorf("merged view holds %d bins, want <= store depth 32", len(m))
	}
}

func TestHandoverDetected(t *testing.T) {
	a := twoCells(t)
	// A busy session on cell 1 (slots 0..400 at 0.5 ms = 0..200 ms).
	for s := 0; s <= 400; s += 4 {
		_ = a.Ingest(1, rec(s, 0x4601, 8000))
	}
	// Silence, then a new C-RNTI on cell 2 at 280 ms (slot 280 at 1 ms)
	// with a similar rate.
	for s := 280; s <= 600; s += 8 {
		_ = a.Ingest(2, rec(s, 0x7777, 16000))
	}
	hos := a.Handovers()
	if len(hos) != 1 {
		t.Fatalf("detected %d handovers, want 1", len(hos))
	}
	h := hos[0]
	if h.FromCell != 1 || h.ToCell != 2 || h.FromRNTI != 0x4601 || h.ToRNTI != 0x7777 {
		t.Errorf("handover endpoints wrong: %+v", h)
	}
	if h.Gap != 80*time.Millisecond {
		t.Errorf("gap = %v, want 80ms", h.Gap)
	}
	if h.Confidence < 0.5 {
		t.Errorf("confidence %.2f too low for a clean handover", h.Confidence)
	}
	if h.FromRate <= 0 || h.ToRate <= 0 {
		t.Errorf("session rates not reported: from %.0f to %.0f", h.FromRate, h.ToRate)
	}
}

func TestNoHandoverOutsideWindow(t *testing.T) {
	a := twoCells(t)
	for s := 0; s <= 400; s += 4 {
		_ = a.Ingest(1, rec(s, 0x4601, 8000))
	}
	// Arrival 2 s later: beyond the 500 ms window.
	_ = a.Ingest(2, rec(2200, 0x7777, 8000))
	if hos := a.Handovers(); len(hos) != 0 {
		t.Errorf("spurious handover: %+v", hos)
	}
}

func TestNoHandoverForTinySessions(t *testing.T) {
	a := twoCells(t)
	_ = a.Ingest(1, rec(100, 0x4601, 100)) // 100 bits: below MinSessionBits
	_ = a.Ingest(2, rec(60, 0x7777, 8000))
	if hos := a.Handovers(); len(hos) != 0 {
		t.Errorf("tiny session matched: %+v", hos)
	}
}

// TestHandoverSurvivesRNTIReuse: after a handover is detected, the
// target C-RNTI ages out and is reused by an unrelated (much faster)
// session. The retained handover must keep the original arrival's
// fingerprint — reuse used to rescore it with the new UE's bitrate.
func TestHandoverSurvivesRNTIReuse(t *testing.T) {
	a := twoCells(t)
	a.IdleHorizon = time.Second
	for s := 0; s <= 400; s += 4 {
		_ = a.Ingest(1, rec(s, 0x4601, 8000))
	}
	for s := 280; s <= 600; s += 8 {
		_ = a.Ingest(2, rec(s, 0x7777, 16000))
	}
	want := a.Handovers()
	if len(want) != 1 {
		t.Fatalf("detected %d handovers, want 1", len(want))
	}

	// Busy-work on cell 2 far past the idle horizon (>512 records to
	// trigger the sweep), evicting 0x7777's session accounting...
	for s := 0; s < 600; s++ {
		_ = a.Ingest(2, rec(5000+s, 0x1111, 1000))
	}
	if _, reused := a.cells[2].ues[0x7777]; reused {
		t.Fatal("stale 0x7777 session not evicted; sweep broken")
	}
	// ...then 0x7777 is reused by a session 100x the original's rate.
	for s := 5600; s <= 5700; s += 2 {
		_ = a.Ingest(2, rec(s, 0x7777, 200000))
	}

	got := a.Handovers()
	if len(got) < 1 {
		t.Fatal("handover lost after reuse")
	}
	g := got[0]
	if g.Confidence != want[0].Confidence {
		t.Errorf("RNTI reuse rescored the handover: conf %.4f -> %.4f", want[0].Confidence, g.Confidence)
	}
	if g.ToRate != want[0].ToRate {
		t.Errorf("RNTI reuse swapped the arrival fingerprint: rate %.0f -> %.0f", want[0].ToRate, g.ToRate)
	}
}

func TestCommonRecordsDoNotCreateUEs(t *testing.T) {
	a := twoCells(t)
	common := rec(10, 0xFFFF, 1000)
	common.Common = true
	_ = a.Ingest(1, common)
	total, _, err := a.ActiveUEs(1, time.Second, time.Second)
	if err != nil || total != 0 {
		t.Errorf("common record created a UE: total=%d err=%v", total, err)
	}
}

func TestCellLoadAndActiveUEs(t *testing.T) {
	a := twoCells(t)
	// 1 Mbit over 100 ms on cell 1.
	for s := 0; s <= 200; s += 2 {
		_ = a.Ingest(1, rec(s, 0x4601, 10000))
	}
	load, err := a.CellLoad(1)
	if err != nil {
		t.Fatal(err)
	}
	if load < 5e6 || load > 15e6 {
		t.Errorf("cell load %.0f bits/s implausible", load)
	}
	total, recent, err := a.ActiveUEs(1, 100*time.Millisecond, 20*time.Millisecond)
	if err != nil || total != 1 || recent != 1 {
		t.Errorf("ActiveUEs = (%d,%d,%v)", total, recent, err)
	}
	if _, err := a.CellLoad(42); err == nil {
		t.Error("unknown cell load accepted")
	}
}

// TestCellLoadSurvivesEviction: idle eviction of every UE session used
// to collapse the observation span to zero (the load was computed from
// the retained UEs' lastSeen), reporting zero load on a busy cell. The
// span now lives on the cell itself.
func TestCellLoadSurvivesEviction(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu0); err != nil { // 1 ms slots
		t.Fatal(err)
	}
	a.IdleHorizon = time.Second
	// A busy UE: 600 slots x 10000 bits over 0..599 ms.
	for s := 0; s < 600; s++ {
		_ = a.Ingest(1, rec(s, 0x4601, 10000))
	}
	want, err := a.CellLoad(1)
	if err != nil || want <= 0 {
		t.Fatalf("load before eviction = (%v, %v)", want, err)
	}
	// Broadcast-only traffic far past the horizon: triggers the idle
	// sweep (>512 records) without creating any UE session.
	for s := 0; s < 600; s++ {
		common := rec(5000+s, 0xFFFF, 0)
		common.Common = true
		_ = a.Ingest(1, common)
	}
	if n := len(a.cells[1].ues); n != 0 {
		t.Fatalf("ue map holds %d sessions, want 0 after sweep", n)
	}
	got, err := a.CellLoad(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("eviction changed CellLoad: %.0f -> %.0f", want, got)
	}
}

func TestCarrierAggregationDetected(t *testing.T) {
	a := twoCells(t)
	// Correlated bursts: the same device active on both carriers in the
	// same 10 ms windows (cell 1 at 0.5 ms TTI, cell 2 at 1 ms TTI).
	for burst := 0; burst < 20; burst++ {
		base1 := burst * 100 // cell 1 slots: 100 slots = 50 ms apart
		base2 := burst * 50  // cell 2 slots: same wall-clock spacing
		for k := 0; k < 10; k += 2 {
			_ = a.Ingest(1, rec(base1+k, 0x4601, 4000))
			_ = a.Ingest(2, rec(base2+k/2, 0x7001, 4000))
		}
	}
	// An uncorrelated bystander on cell 2, active in the gaps.
	for burst := 0; burst < 20; burst++ {
		_ = a.Ingest(2, rec(burst*50+30, 0x7002, 4000))
	}
	cas := a.CarrierAggregation(0.7)
	if len(cas) != 1 {
		t.Fatalf("CA candidates = %d (%v), want 1", len(cas), cas)
	}
	got := cas[0]
	pair := map[uint16]bool{got.RNTIA: true, got.RNTIB: true}
	if !pair[0x4601] || !pair[0x7001] {
		t.Errorf("wrong CA pair: %v", got)
	}
	if got.Overlap < 0.9 {
		t.Errorf("overlap %.2f for fully correlated sessions", got.Overlap)
	}
}

func TestCarrierAggregationIgnoresTinySessions(t *testing.T) {
	a := twoCells(t)
	_ = a.Ingest(1, rec(0, 0x4601, 4000))
	_ = a.Ingest(2, rec(0, 0x7001, 4000))
	if cas := a.CarrierAggregation(0.5); len(cas) != 0 {
		t.Errorf("tiny sessions matched: %v", cas)
	}
}

func TestHandoverStringer(t *testing.T) {
	h := Handover{FromCell: 1, ToCell: 2, FromRNTI: 0x4601, ToRNTI: 0x7777, At: time.Second, Gap: 80 * time.Millisecond, Confidence: 0.9}
	s := h.String()
	if len(s) == 0 || s[:8] != "handover" {
		t.Errorf("stringer output %q", s)
	}
}

// TestUEMapBoundedUnderChurn: a long-lived scope cycling through many
// distinct C-RNTIs must not grow the per-cell activity map without
// bound — sessions idle past the horizon are swept out.
func TestUEMapBoundedUnderChurn(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu0); err != nil { // 1 ms slots
		t.Fatal(err)
	}
	a.IdleHorizon = time.Second
	// 20k distinct RNTIs, each active for one slot, one every 2 ms:
	// only ~500 can fall within any 1 s horizon.
	const churn = 20000
	for i := 0; i < churn; i++ {
		if err := a.Ingest(1, rec(i*2, uint16(i%60000), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(a.cells[1].ues); n > 1200 {
		t.Errorf("ue map holds %d sessions after churn, want <= 1200 (horizon %v)", n, a.IdleHorizon)
	}
	total, _, err := a.ActiveUEs(1, time.Duration(churn*2)*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if total > 1200 {
		t.Errorf("ActiveUEs total = %d after churn, want <= 1200", total)
	}
}

// TestIdleHorizonDisabled: IdleHorizon <= 0 keeps every session (the
// pre-eviction behaviour, for offline multi-cell analyses).
func TestIdleHorizonDisabled(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu0); err != nil {
		t.Fatal(err)
	}
	a.IdleHorizon = 0
	for i := 0; i < 2048; i++ {
		if err := a.Ingest(1, rec(i*2, uint16(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(a.cells[1].ues); n != 2048 {
		t.Errorf("ue map holds %d sessions, want all 2048 with eviction off", n)
	}
}

// TestHandoverRingBounded: handover candidates are a bounded ring — a
// pathological ping-pong workload cannot grow the slice without limit,
// and the newest candidates win.
func TestHandoverRingBounded(t *testing.T) {
	a := twoCells(t)
	a.MaxHandovers = 8
	a.MinSessionBits = 1000
	cell, other := uint16(1), uint16(2)
	slotMS := map[uint16]int{1: 2, 2: 1} // slots per ms
	t0 := 0
	for i := 0; i < 100; i++ {
		// A short busy session, then an "arrival" on the other cell
		// 100 ms later: every iteration detects one handover.
		rnti := uint16(0x1000 + i)
		for k := 0; k < 10; k++ {
			_ = a.Ingest(cell, rec((t0+k*10)*slotMS[cell], rnti, 2000))
		}
		t0 += 200
		cell, other = other, cell
	}
	if n := len(a.handovers); n > 8 {
		t.Fatalf("handover ring holds %d, want <= 8", n)
	}
	hos := a.Handovers()
	if len(hos) == 0 {
		t.Fatal("no handovers retained")
	}
	_ = other
}

// TestFusionSoakBoundedMemory is the long-run soak: two cells ingest
// more than 10x the history depth of records under full C-RNTI churn,
// and the aggregator's retained state — store series, session maps,
// handover ring, merged view — must stay flat. The heap is sampled
// after a warm-up and again at the end; any per-record or per-UE-bin
// leak at this volume would add megabytes.
func TestFusionSoakBoundedMemory(t *testing.T) {
	st := history.New(history.Config{
		BinWidth: 10 * time.Millisecond, Depth: 64, MaxUEs: 512,
	})
	a := NewWithStore(st)
	a.IdleHorizon = time.Second
	a.MaxHandovers = 256
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		t.Fatal(err)
	}

	const total = 200000 // >> 10 * depth(64) bins of records, per cell
	ingest := func(from, to int) {
		for i := from; i < to; i++ {
			rnti := uint16(1 + i%30000)
			// Both cells see churning one-shot sessions, 2 ms apart.
			_ = a.Ingest(1, rec(i*4, rnti, 4000))        // 0.5 ms slots
			_ = a.Ingest(2, rec(i*2, rnti^0x5555, 4000)) // 1 ms slots
		}
	}

	ingest(0, total/5) // warm-up: fills rings, maps, ring buffers
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	ingest(total/5, total)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 2<<20 {
		t.Errorf("heap grew %d bytes across the soak (want flat, < 2 MiB slack)", grew)
	}
	if n := st.TrackedUEs(); n > 512 {
		t.Errorf("store tracks %d UEs, want <= MaxUEs 512", n)
	}
	for _, cell := range []uint16{1, 2} {
		if n := len(a.cells[cell].ues); n > 2000 {
			t.Errorf("cell %d session map holds %d, want bounded by idle horizon", cell, n)
		}
	}
	if n := len(a.handovers); n > 256 {
		t.Errorf("handover ring holds %d, want <= 256", n)
	}
	if m := a.Merged(); len(m) > 2*64 {
		t.Errorf("merged view holds %d bins, want <= 2x depth", len(m))
	}
	// The aggregate still answers: load and activity survive the churn.
	for _, cell := range []uint16{1, 2} {
		load, err := a.CellLoad(cell)
		if err != nil || load <= 0 {
			t.Errorf("cell %d load after soak = (%v, %v)", cell, load, err)
		}
	}
}
