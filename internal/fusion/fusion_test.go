package fusion

import (
	"testing"
	"time"

	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

func rec(slot int, rnti uint16, tbs int) telemetry.Record {
	return telemetry.Record{SlotIdx: slot, RNTI: rnti, Downlink: true, TBS: tbs}
}

func twoCells(t *testing.T) *Aggregator {
	t.Helper()
	a := New()
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddCellValidation(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddCell(1, phy.Mu1); err == nil {
		t.Error("duplicate cell accepted")
	}
	if err := a.AddCell(2, phy.Numerology(9)); err == nil {
		t.Error("invalid numerology accepted")
	}
	if err := a.Ingest(99, rec(0, 1, 100)); err == nil {
		t.Error("unknown cell ingested")
	}
}

func TestMergedStreamTimeOrdered(t *testing.T) {
	a := twoCells(t)
	// Cell 1 runs 0.5 ms slots, cell 2 runs 1 ms slots: slot indices do
	// not align, absolute times must.
	_ = a.Ingest(1, rec(100, 0x11, 1000)) // t = 50 ms
	_ = a.Ingest(2, rec(40, 0x22, 1000))  // t = 40 ms
	_ = a.Ingest(1, rec(60, 0x11, 1000))  // t = 30 ms
	m := a.Merged()
	if len(m) != 3 {
		t.Fatalf("merged %d records", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].At < m[i-1].At {
			t.Fatalf("merged stream out of order: %v after %v", m[i].At, m[i-1].At)
		}
	}
	if m[0].Cell != 1 || m[0].At != 30*time.Millisecond {
		t.Errorf("first merged record wrong: %+v", m[0])
	}
}

func TestHandoverDetected(t *testing.T) {
	a := twoCells(t)
	// A busy session on cell 1 (slots 0..400 at 0.5 ms = 0..200 ms).
	for s := 0; s <= 400; s += 4 {
		_ = a.Ingest(1, rec(s, 0x4601, 8000))
	}
	// Silence, then a new C-RNTI on cell 2 at 280 ms (slot 280 at 1 ms)
	// with a similar rate.
	for s := 280; s <= 600; s += 8 {
		_ = a.Ingest(2, rec(s, 0x7777, 16000))
	}
	hos := a.Handovers()
	if len(hos) != 1 {
		t.Fatalf("detected %d handovers, want 1", len(hos))
	}
	h := hos[0]
	if h.FromCell != 1 || h.ToCell != 2 || h.FromRNTI != 0x4601 || h.ToRNTI != 0x7777 {
		t.Errorf("handover endpoints wrong: %+v", h)
	}
	if h.Gap != 80*time.Millisecond {
		t.Errorf("gap = %v, want 80ms", h.Gap)
	}
	if h.Confidence < 0.5 {
		t.Errorf("confidence %.2f too low for a clean handover", h.Confidence)
	}
}

func TestNoHandoverOutsideWindow(t *testing.T) {
	a := twoCells(t)
	for s := 0; s <= 400; s += 4 {
		_ = a.Ingest(1, rec(s, 0x4601, 8000))
	}
	// Arrival 2 s later: beyond the 500 ms window.
	_ = a.Ingest(2, rec(2200, 0x7777, 8000))
	if hos := a.Handovers(); len(hos) != 0 {
		t.Errorf("spurious handover: %+v", hos)
	}
}

func TestNoHandoverForTinySessions(t *testing.T) {
	a := twoCells(t)
	_ = a.Ingest(1, rec(100, 0x4601, 100)) // 100 bits: below MinSessionBits
	_ = a.Ingest(2, rec(60, 0x7777, 8000))
	if hos := a.Handovers(); len(hos) != 0 {
		t.Errorf("tiny session matched: %+v", hos)
	}
}

func TestCommonRecordsDoNotCreateUEs(t *testing.T) {
	a := twoCells(t)
	common := rec(10, 0xFFFF, 1000)
	common.Common = true
	_ = a.Ingest(1, common)
	total, _, err := a.ActiveUEs(1, time.Second, time.Second)
	if err != nil || total != 0 {
		t.Errorf("common record created a UE: total=%d err=%v", total, err)
	}
}

func TestCellLoadAndActiveUEs(t *testing.T) {
	a := twoCells(t)
	// 1 Mbit over 100 ms on cell 1.
	for s := 0; s <= 200; s += 2 {
		_ = a.Ingest(1, rec(s, 0x4601, 10000))
	}
	load, err := a.CellLoad(1)
	if err != nil {
		t.Fatal(err)
	}
	if load < 5e6 || load > 15e6 {
		t.Errorf("cell load %.0f bits/s implausible", load)
	}
	total, recent, err := a.ActiveUEs(1, 100*time.Millisecond, 20*time.Millisecond)
	if err != nil || total != 1 || recent != 1 {
		t.Errorf("ActiveUEs = (%d,%d,%v)", total, recent, err)
	}
	if _, err := a.CellLoad(42); err == nil {
		t.Error("unknown cell load accepted")
	}
}

func TestCarrierAggregationDetected(t *testing.T) {
	a := twoCells(t)
	// Correlated bursts: the same device active on both carriers in the
	// same 10 ms windows (cell 1 at 0.5 ms TTI, cell 2 at 1 ms TTI).
	for burst := 0; burst < 20; burst++ {
		base1 := burst * 100 // cell 1 slots: 100 slots = 50 ms apart
		base2 := burst * 50  // cell 2 slots: same wall-clock spacing
		for k := 0; k < 10; k += 2 {
			_ = a.Ingest(1, rec(base1+k, 0x4601, 4000))
			_ = a.Ingest(2, rec(base2+k/2, 0x7001, 4000))
		}
	}
	// An uncorrelated bystander on cell 2, active in the gaps.
	for burst := 0; burst < 20; burst++ {
		_ = a.Ingest(2, rec(burst*50+30, 0x7002, 4000))
	}
	cas := a.CarrierAggregation(0.7)
	if len(cas) != 1 {
		t.Fatalf("CA candidates = %d (%v), want 1", len(cas), cas)
	}
	got := cas[0]
	pair := map[uint16]bool{got.RNTIA: true, got.RNTIB: true}
	if !pair[0x4601] || !pair[0x7001] {
		t.Errorf("wrong CA pair: %v", got)
	}
	if got.Overlap < 0.9 {
		t.Errorf("overlap %.2f for fully correlated sessions", got.Overlap)
	}
}

func TestCarrierAggregationIgnoresTinySessions(t *testing.T) {
	a := twoCells(t)
	_ = a.Ingest(1, rec(0, 0x4601, 4000))
	_ = a.Ingest(2, rec(0, 0x7001, 4000))
	if cas := a.CarrierAggregation(0.5); len(cas) != 0 {
		t.Errorf("tiny sessions matched: %v", cas)
	}
}

func TestHandoverStringer(t *testing.T) {
	h := Handover{FromCell: 1, ToCell: 2, FromRNTI: 0x4601, ToRNTI: 0x7777, At: time.Second, Gap: 80 * time.Millisecond, Confidence: 0.9}
	s := h.String()
	if len(s) == 0 || s[:8] != "handover" {
		t.Errorf("stringer output %q", s)
	}
}

// TestUEMapBoundedUnderChurn: a long-lived scope cycling through many
// distinct C-RNTIs must not grow the per-cell activity map without
// bound — sessions idle past the horizon are swept out.
func TestUEMapBoundedUnderChurn(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu0); err != nil { // 1 ms slots
		t.Fatal(err)
	}
	a.IdleHorizon = time.Second
	// 20k distinct RNTIs, each active for one slot, one every 2 ms:
	// only ~500 can fall within any 1 s horizon.
	const churn = 20000
	for i := 0; i < churn; i++ {
		if err := a.Ingest(1, rec(i*2, uint16(i%60000), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(a.cells[1].ues); n > 1200 {
		t.Errorf("ue map holds %d sessions after churn, want <= 1200 (horizon %v)", n, a.IdleHorizon)
	}
	total, _, err := a.ActiveUEs(1, time.Duration(churn*2)*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if total > 1200 {
		t.Errorf("ActiveUEs total = %d after churn, want <= 1200", total)
	}
}

// TestIdleHorizonDisabled: IdleHorizon <= 0 keeps every session (the
// pre-eviction behaviour, for offline multi-cell analyses).
func TestIdleHorizonDisabled(t *testing.T) {
	a := New()
	if err := a.AddCell(1, phy.Mu0); err != nil {
		t.Fatal(err)
	}
	a.IdleHorizon = 0
	for i := 0; i < 2048; i++ {
		if err := a.Ingest(1, rec(i*2, uint16(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(a.cells[1].ues); n != 2048 {
		t.Errorf("ue map holds %d sessions, want all 2048 with eviction off", n)
	}
}
