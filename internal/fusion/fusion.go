// Package fusion implements the paper's §7 "post-processing library"
// future-work item: NR-Scope instances on multiple USRPs decode multiple
// cells, and their telemetry streams are fused into one aggregate view —
// time-aligned cell load, a merged record stream, and cross-cell UE
// handover detection (a session going silent on one cell immediately
// followed by a new C-RNTI appearing on a neighbour).
//
// C-RNTIs are cell-local, so cross-cell identity can only be inferred:
// the detector matches departure/arrival timing and compares the flow's
// bitrate fingerprint before and after, reporting a confidence rather
// than a claim.
package fusion

import (
	"fmt"
	"sort"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

// cellState tracks one monitored cell.
type cellState struct {
	id  uint16
	mu  phy.Numerology
	tti time.Duration

	// Per-UE activity, maintained from the record stream.
	ues map[uint16]*ueActivity

	records int
	bits    int64 // downlink TBS bits total (load accounting)
}

// activityBin buckets DCI activity for cross-cell correlation.
const activityBin = 10 * time.Millisecond

// ueActivity is the fused view of one C-RNTI on one cell.
type ueActivity struct {
	rnti      uint16
	firstSeen time.Duration
	lastSeen  time.Duration
	bits      int64
	dcis      int
	bins      map[int64]bool // activityBin buckets with >=1 DCI
}

// meanRate returns the session's average downlink rate in bits/s.
func (u *ueActivity) meanRate() float64 {
	d := (u.lastSeen - u.firstSeen).Seconds()
	if d <= 0 {
		d = 1e-3
	}
	return float64(u.bits) / d
}

// Handover is one cross-cell mobility candidate.
type Handover struct {
	FromCell uint16
	ToCell   uint16
	FromRNTI uint16
	ToRNTI   uint16
	// At is the arrival time on the target cell.
	At time.Duration
	// Gap is the silence between the last DCI on the source cell and
	// the first on the target.
	Gap time.Duration
	// Confidence in [0,1]: timing proximity combined with the bitrate
	// fingerprint similarity of the two sessions.
	Confidence float64
}

// String implements fmt.Stringer.
func (h Handover) String() string {
	return fmt.Sprintf("handover cell%d:0x%04x -> cell%d:0x%04x at %v (gap %v, conf %.2f)",
		h.FromCell, h.FromRNTI, h.ToCell, h.ToRNTI, h.At.Round(time.Millisecond), h.Gap.Round(time.Millisecond), h.Confidence)
}

// Aggregator fuses multiple cells' telemetry streams.
type Aggregator struct {
	cells map[uint16]*cellState

	// HandoverWindow bounds the silence gap considered a handover.
	HandoverWindow time.Duration
	// MinSessionBits filters noise sessions from handover matching.
	MinSessionBits int64
	// IdleHorizon evicts per-cell UE activity idle longer than this, so
	// the ues maps stay bounded under C-RNTI churn (0 disables; keep it
	// well above HandoverWindow or departures can no longer be matched
	// to arrivals on neighbour cells).
	IdleHorizon time.Duration

	handovers []Handover
	merged    []TimedRecord

	bus *bus.Bus // optional: mirror the fused stream onto a bus
}

// TimedRecord is a telemetry record annotated with its cell and its
// absolute time (cells may run different numerologies, so slot indices
// alone do not align).
type TimedRecord struct {
	Cell uint16
	At   time.Duration
	Rec  telemetry.Record
}

// New creates an empty aggregator.
func New() *Aggregator {
	return &Aggregator{
		cells:          make(map[uint16]*cellState),
		HandoverWindow: 500 * time.Millisecond,
		MinSessionBits: 10000,
		IdleHorizon:    5 * time.Minute,
	}
}

// AddCell registers a monitored cell and its numerology.
func (a *Aggregator) AddCell(cellID uint16, mu phy.Numerology) error {
	if !mu.Valid() {
		return fmt.Errorf("fusion: invalid numerology for cell %d", cellID)
	}
	if _, dup := a.cells[cellID]; dup {
		return fmt.Errorf("fusion: cell %d already registered", cellID)
	}
	a.cells[cellID] = &cellState{
		id: cellID, mu: mu, tti: mu.SlotDuration(),
		ues: make(map[uint16]*ueActivity),
	}
	return nil
}

// PublishTo mirrors every record Ingest accepts onto a telemetry bus,
// making the aggregator a bus producer: downstream sinks see the fused
// multi-cell stream through the same distribution layer as a single
// scope's feed. Pass nil to stop mirroring.
func (a *Aggregator) PublishTo(b *bus.Bus) { a.bus = b }

// Ingest feeds one record from a cell's scope into the aggregate.
func (a *Aggregator) Ingest(cellID uint16, rec telemetry.Record) error {
	c := a.cells[cellID]
	if c == nil {
		return fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	at := time.Duration(rec.SlotIdx) * c.tti
	a.merged = append(a.merged, TimedRecord{Cell: cellID, At: at, Rec: rec})
	c.records++
	if a.IdleHorizon > 0 && c.records%512 == 0 {
		c.evictIdle(at - a.IdleHorizon)
	}
	if a.bus != nil {
		_ = a.bus.Publish(rec) // closed bus: the aggregate still holds the record
	}
	if rec.Common {
		return nil
	}
	u := c.ues[rec.RNTI]
	if u == nil {
		u = &ueActivity{rnti: rec.RNTI, firstSeen: at, bins: make(map[int64]bool)}
		c.ues[rec.RNTI] = u
		// A fresh C-RNTI: check whether it looks like an arrival from a
		// recently silenced session on another cell.
		a.matchHandover(c, u, at)
	}
	u.lastSeen = at
	u.dcis++
	u.bins[int64(at/activityBin)] = true
	if rec.Downlink && !rec.IsRetx {
		u.bits += int64(rec.TBS)
		c.bits += int64(rec.TBS)
	}
	return nil
}

// evictIdle drops UE activity last seen before the cutoff. Sweeping
// every few hundred records amortizes the map walk; evicted sessions
// are older than the idle horizon, so (with the horizon above the
// handover window) they could no longer match an arrival anyway.
func (c *cellState) evictIdle(cutoff time.Duration) {
	for rnti, u := range c.ues {
		if u.lastSeen < cutoff {
			delete(c.ues, rnti)
		}
	}
}

// matchHandover looks for the best recently-departed session elsewhere.
func (a *Aggregator) matchHandover(to *cellState, arrival *ueActivity, at time.Duration) {
	var best *Handover
	for _, from := range a.cells {
		if from.id == to.id {
			continue
		}
		for _, u := range from.ues {
			if u.bits < a.MinSessionBits {
				continue
			}
			gap := at - u.lastSeen
			if gap < 0 || gap > a.HandoverWindow {
				continue
			}
			conf := 1 - gap.Seconds()/a.HandoverWindow.Seconds()
			h := Handover{
				FromCell: from.id, ToCell: to.id,
				FromRNTI: u.rnti, ToRNTI: arrival.rnti,
				At: at, Gap: gap, Confidence: conf,
			}
			if best == nil || h.Confidence > best.Confidence {
				best = &h
			}
		}
	}
	if best != nil {
		a.handovers = append(a.handovers, *best)
	}
}

// rateSimilarity scores how alike two session bitrates are, in [0,1].
func rateSimilarity(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	r := a / b
	if r > 1 {
		r = 1 / r
	}
	return r
}

// Handovers returns the detected candidates with their confidence
// refined by the sessions' bitrate similarity.
func (a *Aggregator) Handovers() []Handover {
	out := make([]Handover, len(a.handovers))
	copy(out, a.handovers)
	for i := range out {
		from := a.cells[out[i].FromCell]
		to := a.cells[out[i].ToCell]
		if from == nil || to == nil {
			continue
		}
		fu := from.ues[out[i].FromRNTI]
		tu := to.ues[out[i].ToRNTI]
		if fu == nil || tu == nil {
			continue
		}
		sim := rateSimilarity(fu.meanRate(), tu.meanRate())
		out[i].Confidence = 0.5*out[i].Confidence + 0.5*sim
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CACandidate is a carrier-aggregation hypothesis: two cell-local
// identities whose DCI activity is so correlated in time that they look
// like one device served on two carriers (§7: the fused streams are
// "analyzed for carrier aggregation").
type CACandidate struct {
	CellA, CellB uint16
	RNTIA, RNTIB uint16
	// Overlap is the fraction of the smaller session's active 10 ms
	// bins that are also active on the other carrier.
	Overlap float64
}

// String implements fmt.Stringer.
func (c CACandidate) String() string {
	return fmt.Sprintf("carrier-aggregation cell%d:0x%04x ~ cell%d:0x%04x (overlap %.2f)",
		c.CellA, c.RNTIA, c.CellB, c.RNTIB, c.Overlap)
}

// CarrierAggregation scans cross-cell session pairs and returns those
// whose activity overlap meets minOverlap (e.g. 0.7). Sessions shorter
// than ten bins are ignored: tiny sessions correlate by chance.
func (a *Aggregator) CarrierAggregation(minOverlap float64) []CACandidate {
	type entry struct {
		cell uint16
		u    *ueActivity
	}
	var all []entry
	for _, c := range a.cells {
		for _, u := range c.ues {
			if len(u.bins) >= 10 {
				all = append(all, entry{c.id, u})
			}
		}
	}
	var out []CACandidate
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].cell == all[j].cell {
				continue
			}
			ov := binOverlap(all[i].u.bins, all[j].u.bins)
			if ov >= minOverlap {
				out = append(out, CACandidate{
					CellA: all[i].cell, CellB: all[j].cell,
					RNTIA: all[i].u.rnti, RNTIB: all[j].u.rnti,
					Overlap: ov,
				})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Overlap > out[y].Overlap })
	return out
}

// binOverlap is |A∩B| / min(|A|,|B|).
func binOverlap(a, b map[int64]bool) float64 {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	if len(small) == 0 {
		return 0
	}
	n := 0
	for bin := range small {
		if big[bin] {
			n++
		}
	}
	return float64(n) / float64(len(small))
}

// Merged returns the fused record stream in absolute-time order — the
// "aggregate data stream" of §7.
func (a *Aggregator) Merged() []TimedRecord {
	out := make([]TimedRecord, len(a.merged))
	copy(out, a.merged)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CellLoad reports a cell's mean downlink load in bits/s over the span
// it has been observed.
func (a *Aggregator) CellLoad(cellID uint16) (float64, error) {
	c := a.cells[cellID]
	if c == nil {
		return 0, fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	var span time.Duration
	for _, u := range c.ues {
		if u.lastSeen > span {
			span = u.lastSeen
		}
	}
	if span <= 0 {
		return 0, nil
	}
	return float64(c.bits) / span.Seconds(), nil
}

// ActiveUEs reports how many UE sessions a cell retains (sessions idle
// past IdleHorizon are evicted) and how many were active within the
// trailing window ending at now.
func (a *Aggregator) ActiveUEs(cellID uint16, now, window time.Duration) (total, recent int, err error) {
	c := a.cells[cellID]
	if c == nil {
		return 0, 0, fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	for _, u := range c.ues {
		total++
		if u.lastSeen >= now-window {
			recent++
		}
	}
	return total, recent, nil
}
