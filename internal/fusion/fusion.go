// Package fusion implements the paper's §7 "post-processing library"
// future-work item: NR-Scope instances on multiple USRPs decode multiple
// cells, and their telemetry streams are fused into one aggregate view —
// time-aligned cell load, a merged windowed stream, and cross-cell UE
// handover detection (a session going silent on one cell immediately
// followed by a new C-RNTI appearing on a neighbour).
//
// C-RNTIs are cell-local, so cross-cell identity can only be inferred:
// the detector matches departure/arrival timing and compares the flow's
// bitrate fingerprint before and after, reporting a confidence rather
// than a claim.
//
// The aggregator is strictly memory-bounded: every ingested record is
// folded into a history.Store (either its own, or one shared with the
// -history query API), and the windowed views — Merged, carrier
// aggregation — are reconstructed from the store's fixed-depth bin
// rings. Per-UE session accounting is a compact fixed-size struct per
// retained C-RNTI, swept by the idle horizon; detected handovers live in
// a bounded ring. Nothing grows with the number of records ingested, so
// the aggregate survives the multi-day runs OWL-style control-channel
// monitors are built for.
package fusion

import (
	"fmt"
	"sort"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

// cellState tracks one monitored cell.
type cellState struct {
	id  uint16
	mu  phy.Numerology
	tti time.Duration

	// Per-UE session accounting, maintained from the record stream and
	// swept by the idle horizon. Bin-level activity lives in the history
	// store, not here.
	ues map[uint16]*ueActivity

	records int
	bits    int64 // downlink TBS bits total (load accounting)

	// First/last UE activity on the cell, tracked independently of the
	// ues map so idle eviction cannot shrink the observation span that
	// CellLoad divides by.
	seen            bool
	firstAt, lastAt time.Duration
}

// activityBin is the correlation bin width an aggregator-owned history
// store uses; a shared store correlates at its own bin width.
const activityBin = 10 * time.Millisecond

// ownStoreDepth is the bin depth of an aggregator-owned store: ~10 s of
// correlation window at the 10 ms activity bin.
const ownStoreDepth = 1024

// minCABins is the minimum active bins a session needs to enter
// carrier-aggregation matching: tiny sessions correlate by chance.
const minCABins = 10

// ueActivity is the fused session accounting of one C-RNTI on one cell.
type ueActivity struct {
	rnti      uint16
	firstSeen time.Duration
	lastSeen  time.Duration
	bits      int64
	dcis      int
}

// meanRate returns the session's average downlink rate in bits/s.
func (u *ueActivity) meanRate() float64 {
	d := (u.lastSeen - u.firstSeen).Seconds()
	if d <= 0 {
		d = 1e-3
	}
	return float64(u.bits) / d
}

// Handover is one cross-cell mobility candidate.
type Handover struct {
	FromCell uint16
	ToCell   uint16
	FromRNTI uint16
	ToRNTI   uint16
	// At is the arrival time on the target cell.
	At time.Duration
	// Gap is the silence between the last DCI on the source cell and
	// the first on the target.
	Gap time.Duration
	// Confidence in [0,1]: timing proximity combined with the bitrate
	// fingerprint similarity of the two sessions.
	Confidence float64
	// FromRate/ToRate are the two sessions' mean downlink rates in
	// bits/s: the fingerprint the confidence was refined with. FromRate
	// is frozen at detection (the source session is over); ToRate is the
	// arrival session's rate as of the Handovers call.
	FromRate float64
	ToRate   float64
}

// String implements fmt.Stringer.
func (h Handover) String() string {
	return fmt.Sprintf("handover cell%d:0x%04x -> cell%d:0x%04x at %v (gap %v, conf %.2f)",
		h.FromCell, h.FromRNTI, h.ToCell, h.ToRNTI, h.At.Round(time.Millisecond), h.Gap.Round(time.Millisecond), h.Confidence)
}

// handoverRec is the retained form of a detected handover: the timing
// candidate plus frozen references to the two sessions it scored, so
// later C-RNTI reuse or idle eviction cannot rescore it with a different
// UE's fingerprint.
type handoverRec struct {
	h        Handover // Confidence holds the timing-only score
	fromRate float64  // source session mean rate, snapshotted at detection
	to       *ueActivity
}

// Aggregator fuses multiple cells' telemetry streams.
type Aggregator struct {
	cells map[uint16]*cellState

	// HandoverWindow bounds the silence gap considered a handover.
	HandoverWindow time.Duration
	// MinSessionBits filters noise sessions from handover matching.
	MinSessionBits int64
	// IdleHorizon evicts per-cell UE activity idle longer than this, so
	// the ues maps stay bounded under C-RNTI churn (0 disables; keep it
	// well above HandoverWindow or departures can no longer be matched
	// to arrivals on neighbour cells).
	IdleHorizon time.Duration
	// MaxHandovers bounds the retained handover candidates: beyond it
	// the oldest is dropped.
	MaxHandovers int

	store    *history.Store
	ownStore bool

	handovers []handoverRec

	bus *bus.Bus // optional: mirror the fused stream onto a bus
}

// New creates an aggregator backed by its own history store at the
// 10 ms activity-bin width.
func New() *Aggregator { return NewWithStore(nil) }

// NewWithStore creates an aggregator publishing into st — typically the
// store already serving the -history query API, so one copy of the bins
// backs both. The store's bin width becomes the correlation bin. A nil
// st allocates a private store at the 10 ms activity bin.
func NewWithStore(st *history.Store) *Aggregator {
	a := &Aggregator{
		cells:          make(map[uint16]*cellState),
		HandoverWindow: 500 * time.Millisecond,
		MinSessionBits: 10000,
		IdleHorizon:    5 * time.Minute,
		MaxHandovers:   4096,
	}
	if st == nil {
		st = history.New(history.Config{BinWidth: activityBin, Depth: ownStoreDepth})
		a.ownStore = true
	}
	a.store = st
	return a
}

// Store returns the history store the aggregator publishes into.
func (a *Aggregator) Store() *history.Store { return a.store }

// AddCell registers a monitored cell and its numerology, registering it
// with the history store too unless a shared store already has it.
func (a *Aggregator) AddCell(cellID uint16, mu phy.Numerology) error {
	if !mu.Valid() {
		return fmt.Errorf("fusion: invalid numerology for cell %d", cellID)
	}
	if _, dup := a.cells[cellID]; dup {
		return fmt.Errorf("fusion: cell %d already registered", cellID)
	}
	if !a.store.HasCell(cellID) {
		if err := a.store.AddCell(cellID, mu.SlotDuration()); err != nil {
			return err
		}
	}
	a.cells[cellID] = &cellState{
		id: cellID, mu: mu, tti: mu.SlotDuration(),
		ues: make(map[uint16]*ueActivity),
	}
	return nil
}

// PublishTo mirrors every record Ingest accepts onto a telemetry bus,
// making the aggregator a bus producer: downstream sinks see the fused
// multi-cell stream through the same distribution layer as a single
// scope's feed. Pass nil to stop mirroring.
func (a *Aggregator) PublishTo(b *bus.Bus) { a.bus = b }

// Ingest feeds one record from a cell's scope into the aggregate: the
// history store gets the bin-level data, the cell gets its compact
// session accounting.
func (a *Aggregator) Ingest(cellID uint16, rec telemetry.Record) error {
	c := a.cells[cellID]
	if c == nil {
		return fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	at := time.Duration(rec.SlotIdx) * c.tti
	a.store.Ingest(cellID, rec)
	c.records++
	if a.IdleHorizon > 0 && c.records%512 == 0 {
		c.evictIdle(at - a.IdleHorizon)
	}
	if a.bus != nil {
		_ = a.bus.Publish(rec) // closed bus: the aggregate still holds the record
	}
	if rec.Common {
		return nil
	}
	if !c.seen {
		c.seen, c.firstAt = true, at
	}
	if at > c.lastAt {
		c.lastAt = at
	}
	u := c.ues[rec.RNTI]
	if u == nil {
		u = &ueActivity{rnti: rec.RNTI, firstSeen: at}
		c.ues[rec.RNTI] = u
		// A fresh C-RNTI: check whether it looks like an arrival from a
		// recently silenced session on another cell.
		a.matchHandover(c, u, at)
	}
	u.lastSeen = at
	u.dcis++
	if rec.Downlink && !rec.IsRetx {
		u.bits += int64(rec.TBS)
		c.bits += int64(rec.TBS)
	}
	return nil
}

// evictIdle drops UE activity last seen before the cutoff. Sweeping
// every few hundred records amortizes the map walk; evicted sessions
// are older than the idle horizon, so (with the horizon above the
// handover window) they could no longer match an arrival anyway.
func (c *cellState) evictIdle(cutoff time.Duration) {
	for rnti, u := range c.ues {
		if u.lastSeen < cutoff {
			delete(c.ues, rnti)
		}
	}
}

// matchHandover looks for the best recently-departed session elsewhere,
// freezing both sessions' identities into the retained record so later
// RNTI reuse cannot rescore it.
func (a *Aggregator) matchHandover(to *cellState, arrival *ueActivity, at time.Duration) {
	var best *handoverRec
	for _, from := range a.cells {
		if from.id == to.id {
			continue
		}
		for _, u := range from.ues {
			if u.bits < a.MinSessionBits {
				continue
			}
			gap := at - u.lastSeen
			if gap < 0 || gap > a.HandoverWindow {
				continue
			}
			conf := 1 - gap.Seconds()/a.HandoverWindow.Seconds()
			hr := handoverRec{
				h: Handover{
					FromCell: from.id, ToCell: to.id,
					FromRNTI: u.rnti, ToRNTI: arrival.rnti,
					At: at, Gap: gap, Confidence: conf,
				},
				fromRate: u.meanRate(),
				to:       arrival,
			}
			if best == nil || hr.h.Confidence > best.h.Confidence {
				best = &hr
			}
		}
	}
	if best != nil {
		if a.MaxHandovers > 0 && len(a.handovers) >= a.MaxHandovers {
			n := copy(a.handovers, a.handovers[1:])
			a.handovers = a.handovers[:n]
		}
		a.handovers = append(a.handovers, *best)
	}
}

// rateSimilarity scores how alike two session bitrates are, in [0,1].
func rateSimilarity(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	r := a / b
	if r > 1 {
		r = 1 / r
	}
	return r
}

// Handovers returns the detected candidates with their confidence
// refined by the sessions' bitrate similarity. The refinement uses the
// sessions frozen at detection time — the source rate snapshot and the
// arrival session object — so idle eviction or C-RNTI reuse on either
// cell cannot swap in a different UE's fingerprint.
func (a *Aggregator) Handovers() []Handover {
	out := make([]Handover, 0, len(a.handovers))
	for _, hr := range a.handovers {
		h := hr.h
		h.FromRate = hr.fromRate
		h.ToRate = hr.to.meanRate()
		sim := rateSimilarity(h.FromRate, h.ToRate)
		h.Confidence = 0.5*h.Confidence + 0.5*sim
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CACandidate is a carrier-aggregation hypothesis: two cell-local
// identities whose DCI activity is so correlated in time that they look
// like one device served on two carriers (§7: the fused streams are
// "analyzed for carrier aggregation").
type CACandidate struct {
	CellA, CellB uint16
	RNTIA, RNTIB uint16
	// Overlap is the fraction of the sparser session's active bins that
	// are also active on the other carrier.
	Overlap float64
}

// String implements fmt.Stringer.
func (c CACandidate) String() string {
	return fmt.Sprintf("carrier-aggregation cell%d:0x%04x ~ cell%d:0x%04x (overlap %.2f)",
		c.CellA, c.RNTIA, c.CellB, c.RNTIB, c.Overlap)
}

// CarrierAggregation scans cross-cell session pairs over the history
// store's retained window and returns those whose activity-mask overlap
// meets minOverlap (e.g. 0.7). Sessions active in fewer than ten bins
// are ignored: tiny sessions correlate by chance.
func (a *Aggregator) CarrierAggregation(minOverlap float64) []CACandidate {
	var all []history.SeriesMask
	for _, c := range a.cells {
		for _, s := range a.store.UEs(c.id) {
			m, ok := a.store.ActivityMask(c.id, s.RNTI)
			if ok && m.Active >= minCABins {
				all = append(all, m)
			}
		}
	}
	var out []CACandidate
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Cell == all[j].Cell {
				continue
			}
			ov := all[i].Overlap(all[j])
			if ov >= minOverlap {
				out = append(out, CACandidate{
					CellA: all[i].Cell, CellB: all[j].Cell,
					RNTIA: all[i].RNTI, RNTIB: all[j].RNTI,
					Overlap: ov,
				})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Overlap > out[y].Overlap })
	return out
}

// MergedBin is one cell's history bin in the fused windowed stream.
type MergedBin struct {
	Cell uint16
	history.BinSample
}

// At returns the bin's start as an absolute stream time.
func (m MergedBin) At() time.Duration {
	return time.Duration(m.StartMs * float64(time.Millisecond))
}

// Merged returns the fused stream as a bounded windowed view — each
// cell's retained history bins that saw traffic, interleaved in
// absolute-time order (the "aggregate data stream" of §7, reconstructed
// from the store's fixed-depth rings instead of a per-record buffer).
func (a *Aggregator) Merged() []MergedBin {
	var out []MergedBin
	for _, c := range a.cells {
		// The retained rings are Depth-bounded, far under the query cap.
		bins, _ := a.store.CellQuery(c.id, 0, 0, 1)
		for _, s := range bins {
			if s.Grants == 0 && s.TotalREs == 0 {
				continue // silent bin inside the retained window
			}
			out = append(out, MergedBin{Cell: c.id, BinSample: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartMs != out[j].StartMs {
			return out[i].StartMs < out[j].StartMs
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// CellLoad reports a cell's mean downlink load in bits/s over the span
// it has been observed. The span is the cell's own first-to-last
// activity, independent of which UE sessions are still retained, so
// idle eviction cannot shrink it.
func (a *Aggregator) CellLoad(cellID uint16) (float64, error) {
	c := a.cells[cellID]
	if c == nil {
		return 0, fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	if !c.seen {
		return 0, nil
	}
	span := c.lastAt - c.firstAt
	if span <= 0 {
		span = c.tti // a single active slot: rate over one TTI
	}
	return float64(c.bits) / span.Seconds(), nil
}

// ActiveUEs reports how many UE sessions a cell retains (sessions idle
// past IdleHorizon are evicted) and how many were active within the
// trailing window ending at now.
func (a *Aggregator) ActiveUEs(cellID uint16, now, window time.Duration) (total, recent int, err error) {
	c := a.cells[cellID]
	if c == nil {
		return 0, 0, fmt.Errorf("fusion: unknown cell %d", cellID)
	}
	for _, u := range c.ues {
		total++
		if u.lastSeen >= now-window {
			recent++
		}
	}
	return total, recent, nil
}
