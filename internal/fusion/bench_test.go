package fusion

import (
	"testing"
	"time"

	"nrscope/internal/history"
	"nrscope/internal/phy"
	"nrscope/internal/telemetry"
)

// BenchmarkFusionIngest measures the aggregator's ingest hot path —
// history-store fold plus session accounting — under steady two-cell
// traffic with a realistic population of live C-RNTIs.
func BenchmarkFusionIngest(b *testing.B) {
	a := New()
	if err := a.AddCell(1, phy.Mu1); err != nil {
		b.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		b.Fatal(err)
	}
	const ues = 1000
	for i := 0; i < ues; i++ {
		_ = a.Ingest(1, telemetry.Record{SlotIdx: i, RNTI: uint16(1 + i), Downlink: true, TBS: 1000})
		_ = a.Ingest(2, telemetry.Record{SlotIdx: i, RNTI: uint16(1 + i), Downlink: true, TBS: 1000})
	}
	r := telemetry.Record{Downlink: true, TBS: 4000, NumPRB: 4, MCS: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := uint16(1 + i%2)
		r.RNTI = uint16(1 + i%ues)
		r.SlotIdx = ues + i/2
		if err := a.Ingest(cell, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusionIngestChurn is the long-run profile: every record is a
// fresh one-shot C-RNTI, exercising session creation, handover matching
// and the idle sweep together.
func BenchmarkFusionIngestChurn(b *testing.B) {
	a := New()
	a.IdleHorizon = time.Second
	if err := a.AddCell(1, phy.Mu0); err != nil {
		b.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		b.Fatal(err)
	}
	r := telemetry.Record{Downlink: true, TBS: 4000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := uint16(1 + i%2)
		r.RNTI = uint16(1 + i%60000)
		r.SlotIdx = i * 2
		if err := a.Ingest(cell, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCarrierAggregation measures the mask-correlation scan over a
// populated store: the query-side cost of the history-backed design.
func BenchmarkCarrierAggregation(b *testing.B) {
	st := history.New(history.Config{BinWidth: 10 * time.Millisecond, Depth: 128})
	a := NewWithStore(st)
	if err := a.AddCell(1, phy.Mu0); err != nil {
		b.Fatal(err)
	}
	if err := a.AddCell(2, phy.Mu0); err != nil {
		b.Fatal(err)
	}
	// 50 sessions per cell, each active across the retained window.
	for i := 0; i < 1000; i++ {
		for u := 0; u < 50; u++ {
			_ = a.Ingest(1, telemetry.Record{SlotIdx: i, RNTI: uint16(0x100 + u), Downlink: true, TBS: 1000})
			_ = a.Ingest(2, telemetry.Record{SlotIdx: i, RNTI: uint16(0x200 + u), Downlink: true, TBS: 1000})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cas := a.CarrierAggregation(0.7); len(cas) == 0 {
			b.Fatal("no CA candidates on fully correlated traffic")
		}
	}
}
