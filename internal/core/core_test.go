package core

import (
	"testing"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/rrc"
	"nrscope/internal/telemetry"
	"nrscope/internal/traffic"
)

// testbed wires a gNB, a receiver and a scope together.
type testbed struct {
	gnb   *ran.GNB
	rx    *radio.Receiver
	scope *Scope
}

func newTestbed(t testing.TB, cfg ran.CellConfig, scopeSNR float64, opts ...Option) *testbed {
	t.Helper()
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{
		gnb:   gnb,
		rx:    radio.NewReceiver(channel.Normal, scopeSNR, cfg.Seed^0xACE),
		scope: New(cfg.CellID, opts...),
	}
}

// step advances one TTI through the whole chain.
func (tb *testbed) step() (*ran.SlotOutput, *SlotResult) {
	out := tb.gnb.Step()
	cap := tb.rx.Capture(out.SlotIdx, out.Ref, out.Grid)
	return out, tb.scope.ProcessSlot(cap)
}

func bulk(cfg ran.CellConfig) ran.UEFactory {
	return func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(4000), traffic.NewCBR(200e3, cfg.TTI()),
			channel.New(channel.Normal, cfg.BaseSNRdB, seed)
	}
}

func amari() ran.CellConfig {
	cfg := ran.AmarisoftCell()
	cfg.Seed = 99
	return cfg
}

func TestCellAcquisition(t *testing.T) {
	tb := newTestbed(t, amari(), 25)
	mibSlot, sib1Slot := -1, -1
	for i := 0; i < 200; i++ {
		_, res := tb.step()
		if res.MIBAcquired && mibSlot < 0 {
			mibSlot = res.SlotIdx
		}
		if res.SIB1Acquired && sib1Slot < 0 {
			sib1Slot = res.SlotIdx
			break
		}
	}
	if mibSlot < 0 {
		t.Fatal("MIB never acquired")
	}
	if sib1Slot < 0 {
		t.Fatal("SIB1 never acquired")
	}
	if !tb.scope.CellAcquired() {
		t.Fatal("CellAcquired false after both decodes")
	}
	sib1 := tb.scope.SIB1()
	if sib1.CarrierPRBs != tb.gnb.Config().CarrierPRBs {
		t.Errorf("SIB1 carrier %d, want %d", sib1.CarrierPRBs, tb.gnb.Config().CarrierPRBs)
	}
	if sib1.TDD.String() != tb.gnb.Config().TDD.String() {
		t.Errorf("SIB1 TDD %q, want %q", sib1.TDD.String(), tb.gnb.Config().TDD.String())
	}
	if tb.scope.MIB().CellID != tb.gnb.Config().CellID {
		t.Error("MIB cell id wrong")
	}
}

func TestUEDiscoveryViaMSG4(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	want := tb.gnb.AddUE(bulk(cfg), -1)
	found := false
	for i := 0; i < 300 && !found; i++ {
		_, res := tb.step()
		for _, rnti := range res.NewUEs {
			if rnti == want {
				found = true
			} else {
				t.Errorf("ghost UE %#x discovered", rnti)
			}
		}
	}
	if !found {
		t.Fatal("scope never discovered the UE's C-RNTI")
	}
	if !tb.scope.SetupKnown() {
		t.Error("RRC Setup not learned from MSG4")
	}
	track := tb.scope.Track(want)
	if track == nil {
		t.Fatal("no track for discovered UE")
	}
}

func TestPerfectDecodingAtHighSNR(t *testing.T) {
	// At 25 dB the scope must see essentially every data DCI the gNB
	// sent, with identical grants — the zero-miss anchor of Figs. 7-9.
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	for i := 0; i < 2; i++ {
		tb.gnb.AddUE(bulk(cfg), -1)
	}
	// A UE can get several DCIs per TTI (retx + new data), so compare
	// per-(slot, rnti, direction, tbs, regs) multisets.
	type key struct {
		slot int
		rnti uint16
		dl   bool
		tbs  int
		regs int
	}
	gt := make(map[key]int)
	scope := make(map[key]int)
	discovered := make(map[uint16]int)
	acquired := -1

	const slots = 2000
	for i := 0; i < slots; i++ {
		out, res := tb.step()
		if res.SIB1Acquired {
			acquired = res.SlotIdx
		}
		for _, rnti := range res.NewUEs {
			discovered[rnti] = res.SlotIdx
		}
		for _, r := range out.GT {
			if r.Common {
				continue
			}
			// Only count DCIs after the scope knew both the cell and the UE.
			if acquired < 0 || r.SlotIdx <= acquired {
				continue
			}
			if d, ok := discovered[r.RNTI]; !ok || r.SlotIdx <= d {
				continue
			}
			gt[key{r.SlotIdx, r.RNTI, r.Grant.Downlink, r.Grant.TBS, r.Grant.REGCount()}]++
		}
		for _, rec := range res.Records {
			if rec.Common {
				continue
			}
			scope[key{rec.SlotIdx, rec.RNTI, rec.Downlink, rec.TBS, rec.REGs}]++
		}
	}
	total, missed := 0, 0
	for k, n := range gt {
		total += n
		got := scope[k]
		if got < n {
			missed += n - got
		}
	}
	if total < 100 {
		t.Fatalf("only %d GT DCIs; test too thin", total)
	}
	missRate := float64(missed) / float64(total)
	if missRate > 0.005 {
		t.Errorf("miss rate %.4f at 25 dB, want < 0.5%% (%d/%d)", missRate, missed, total)
	}
	// No phantom decodes either: every scope record must match a GT one.
	for k, n := range scope {
		if gt[k] < n {
			t.Fatalf("scope decoded a DCI the gNB never sent (or with wrong content): %+v", k)
		}
	}
}

func TestMissRateIncreasesWithNoise(t *testing.T) {
	missAt := func(snr float64) float64 {
		cfg := amari()
		tb := newTestbed(t, cfg, snr)
		tb.gnb.AddUE(bulk(cfg), -1)
		gt, seen := 0, 0
		discovered := make(map[uint16]int)
		for i := 0; i < 1500; i++ {
			out, res := tb.step()
			for _, rnti := range res.NewUEs {
				discovered[rnti] = res.SlotIdx
			}
			for _, r := range out.GT {
				if r.Common {
					continue
				}
				if d, ok := discovered[r.RNTI]; ok && r.SlotIdx > d {
					gt++
				}
			}
			for _, rec := range res.Records {
				if !rec.Common {
					seen++
				}
			}
		}
		if gt == 0 {
			return 1
		}
		miss := float64(gt-seen) / float64(gt)
		if miss < 0 {
			miss = 0
		}
		return miss
	}
	clean := missAt(25)
	noisy := missAt(1)
	if noisy <= clean {
		t.Errorf("miss at 1 dB (%.3f) not above 25 dB (%.3f)", noisy, clean)
	}
}

func TestRetransmissionDetectionMatchesGT(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy HARQ session; skipped in -short (race CI)")
	}
	cfg := amari()
	cfg.BaseSNRdB = 14 // fading channel below triggers HARQ
	tb := newTestbed(t, cfg, 25)
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(3000), nil, channel.New(channel.Vehicle, cfg.BaseSNRdB, seed)
	}
	rnti := tb.gnb.AddUE(factory, -1)
	// Compare per-slot retransmission counts: (slot, dl) -> (#dcis, #retx).
	type counts struct{ total, retx int }
	type key struct {
		slot int
		dl   bool
	}
	gtC := make(map[key]*counts)
	scC := make(map[key]*counts)
	bump := func(m map[key]*counts, k key, isRetx bool) {
		c := m[k]
		if c == nil {
			c = &counts{}
			m[k] = c
		}
		c.total++
		if isRetx {
			c.retx++
		}
	}
	var discoveredAt = -1
	acquired := -1
	for i := 0; i < 3000; i++ {
		out, res := tb.step()
		if res.SIB1Acquired {
			acquired = res.SlotIdx
		}
		for _, r := range res.NewUEs {
			if r == rnti {
				discoveredAt = res.SlotIdx
			}
		}
		for _, r := range out.GT {
			if r.Common || r.RNTI != rnti {
				continue
			}
			if discoveredAt >= 0 && r.SlotIdx > discoveredAt && acquired >= 0 && r.SlotIdx > acquired {
				bump(gtC, key{r.SlotIdx, r.Grant.Downlink}, r.IsRetx)
			}
		}
		for _, rec := range res.Records {
			if rec.Common || rec.RNTI != rnti {
				continue
			}
			bump(scC, key{rec.SlotIdx, rec.Downlink}, rec.IsRetx)
		}
	}
	retxSeen, checked := 0, 0
	for k, want := range gtC {
		got, ok := scC[k]
		if !ok || got.total != want.total {
			continue // missed DCIs in this slot; miss rate tested elsewhere
		}
		checked++
		if got.retx != want.retx {
			t.Fatalf("retx count mismatch at %+v: scope %d, GT %d", k, got.retx, want.retx)
		}
		retxSeen += want.retx
	}
	if checked < 100 {
		t.Fatalf("only %d slots checked", checked)
	}
	if retxSeen == 0 {
		t.Error("no retransmissions observed on a Vehicle channel")
	}
}

func TestThroughputTracksLedger(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	// The paper's workloads ("watching videos or downloading files",
	// §5.2.2) build queues, so transport blocks run full and the TBS
	// overhead vs delivered payload stays small.
	factory := func(r uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewVideo(30, 25000, 0.2, cfg.TTI(), seed), nil,
			channel.New(channel.Normal, cfg.BaseSNRdB, seed)
	}
	rnti := tb.gnb.AddUE(factory, -1)
	const slots = 6000 // 3 s
	for i := 0; i < slots; i++ {
		tb.step()
	}
	ue := tb.gnb.UE(rnti)
	if ue == nil {
		t.Fatal("UE lost")
	}
	// Compare over a long window to absorb frame-boundary timing.
	gt := ue.Ledger.WindowBitrate(slots-4000, slots)
	win := telemetry.NewWindowEstimator(4000*cfg.TTI(), cfg.TTI())
	_ = win
	est := tb.scope.Bitrate(rnti, true, slots)
	// Average the 100 ms estimator over the tail by sampling: simpler,
	// compare the scope estimate directly against the same-window ledger.
	shortGT := ue.Ledger.WindowBitrate(slots-tb.scope.estimatorWindowSlots(), slots)
	if gt == 0 || shortGT == 0 {
		t.Fatal("ledger saw no traffic")
	}
	relErr := (est - shortGT) / shortGT
	// TBS counts payload + MAC header + padding, so the estimate should
	// sit slightly above the ledger (paper: ~0.9% average error).
	if relErr < -0.02 || relErr > 0.06 {
		t.Errorf("throughput estimate %.0f vs ledger %.0f (err %.2f%%)", est, shortGT, 100*relErr)
	}
}

func TestUEActivityAging(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25, WithInactivityTimeout(400))
	tb.gnb.AddUE(bulk(cfg), 1000) // departs after 1000 slots
	sawUE := false
	for i := 0; i < 2500; i++ {
		_, res := tb.step()
		if len(res.NewUEs) > 0 {
			sawUE = true
		}
	}
	if !sawUE {
		t.Fatal("UE never discovered")
	}
	departed := tb.scope.DepartedUEs()
	if len(departed) != 1 {
		t.Fatalf("departed sessions = %d, want 1", len(departed))
	}
	active := departed[0].ActiveSlots()
	if active < 500 || active > 1100 {
		t.Errorf("measured active time %d slots, want ~900", active)
	}
	if len(tb.scope.KnownUEs()) != 0 {
		t.Error("departed UE still tracked")
	}
}

func TestSpareCapacityReported(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	tb.gnb.AddUE(bulk(cfg), -1)
	var last *telemetry.SpareCapacity
	for i := 0; i < 1500; i++ {
		_, res := tb.step()
		// Keep a slot where the UE was actually scheduled, so both used
		// and spare REs are meaningful.
		if res.Spare != nil && len(res.Spare.PerUE) > 0 && res.Spare.UsedREs > 0 {
			last = res.Spare
		}
	}
	if last == nil {
		t.Fatal("no spare capacity with active UEs ever reported")
	}
	if last.UsedREs <= 0 || last.TotalREs <= last.UsedREs {
		t.Errorf("implausible spare: %+v", last)
	}
	for rnti, bits := range last.PerUE {
		if bits <= 0 {
			t.Errorf("UE %#x spare bits %.0f", rnti, bits)
		}
	}
}

func TestDCIThreadsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread sweep; skipped in -short (race CI)")
	}
	results := func(threads int) map[int]int {
		cfg := amari()
		tb := newTestbed(t, cfg, 25, WithDCIThreads(threads))
		for i := 0; i < 4; i++ {
			tb.gnb.AddUE(bulk(cfg), -1)
		}
		out := make(map[int]int) // slot -> #records
		for i := 0; i < 1200; i++ {
			_, res := tb.step()
			if n := len(res.Records); n > 0 {
				out[res.SlotIdx] = n
			}
		}
		return out
	}
	one := results(1)
	four := results(4)
	if len(one) != len(four) {
		t.Fatalf("slot coverage differs: %d vs %d", len(one), len(four))
	}
	for slot, n := range one {
		if four[slot] != n {
			t.Fatalf("slot %d: 1-thread found %d, 4-thread found %d", slot, n, four[slot])
		}
	}
}

func TestPipelineMatchesSynchronous(t *testing.T) {
	runSync := func() int {
		cfg := amari()
		tb := newTestbed(t, cfg, 25)
		tb.gnb.AddUE(bulk(cfg), -1)
		total := 0
		for i := 0; i < 1000; i++ {
			_, res := tb.step()
			total += len(res.Records)
		}
		return total
	}
	runPipe := func(workers int) int {
		cfg := amari()
		gnb, err := ran.NewGNB(cfg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		gnb.AddUE(bulk(cfg), -1)
		rx := radio.NewReceiver(channel.Normal, 25, cfg.Seed^0xACE)
		scope := New(cfg.CellID)
		p := NewPipeline(scope, workers, 64)
		done := make(chan int)
		go func() {
			total := 0
			for res := range p.Results() {
				total += len(res.Records)
			}
			done <- total
		}()
		for i := 0; i < 1000; i++ {
			out := gnb.Step()
			p.Submit(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		}
		p.Close()
		return <-done
	}
	sync := runSync()
	pipe := runPipe(3)
	if sync == 0 {
		t.Fatal("no records in synchronous run")
	}
	// The pipeline decodes some slots against slightly stale snapshots
	// (UE discovered at slot t is searchable only after its merge), so
	// allow a small deficit but nothing dramatic.
	if pipe < sync*90/100 || pipe > sync {
		t.Errorf("pipeline records %d vs sync %d", pipe, sync)
	}
}

func TestMSG4ShortcutTradeoff(t *testing.T) {
	// The paper's §3.1.2 shortcut skips the RRC Setup PDSCH decode once
	// one Setup is known. Its cost is ghost UEs from CRC aliasing on a
	// noisy channel; the scope must (a) still find real UEs and (b) keep
	// its tracking state bounded by aging ghosts out.
	cfg := amari()
	tb := newTestbed(t, cfg, 8, // noisy capture: aliasing happens
		WithVerifyMSG4(false), WithInactivityTimeout(500))
	rnti := tb.gnb.AddUE(bulk(cfg), -1)
	found := false
	maxTracked := 0
	for i := 0; i < 4000; i++ {
		_, res := tb.step()
		for _, r := range res.NewUEs {
			if r == rnti {
				found = true
			}
		}
		if n := len(tb.scope.KnownUEs()); n > maxTracked {
			maxTracked = n
		}
	}
	if !found {
		t.Fatal("shortcut mode never discovered the real UE")
	}
	// Ghosts may appear, but aging must keep the set small.
	if final := len(tb.scope.KnownUEs()); final > 8 {
		t.Errorf("tracked set grew to %d (max %d); ghosts not aged out", final, maxTracked)
	}
}

func TestFallbackFormatCellEndToEnd(t *testing.T) {
	// A cell whose UE-data DCIs use the fallback formats (1_0/0_0, 64QAM
	// table, single layer) — exercises the Fallback size class in the
	// blind decoder's USS pass.
	cfg := amari()
	cfg.Setup.NonFallback = false
	cfg.Setup.MCSTable = mcsTableQAM64()
	tb := newTestbed(t, cfg, 25)
	rnti := tb.gnb.AddUE(bulk(cfg), -1)
	type key struct {
		slot int
		dl   bool
		tbs  int
	}
	gt := make(map[key]int)
	scope := make(map[key]int)
	discovered, acquired := -1, -1
	for i := 0; i < 1500; i++ {
		out, res := tb.step()
		if res.SIB1Acquired {
			acquired = res.SlotIdx
		}
		for _, r := range res.NewUEs {
			if r == rnti {
				discovered = res.SlotIdx
			}
		}
		for _, r := range out.GT {
			if r.Common || r.RNTI != rnti {
				continue
			}
			if r.Grant.Format.String() != "1_0" && r.Grant.Format.String() != "0_0" {
				t.Fatalf("fallback cell issued format %v", r.Grant.Format)
			}
			if discovered >= 0 && acquired >= 0 && r.SlotIdx > discovered && r.SlotIdx > acquired {
				gt[key{r.SlotIdx, r.Grant.Downlink, r.Grant.TBS}]++
			}
		}
		for _, rec := range res.Records {
			if !rec.Common && rec.RNTI == rnti {
				scope[key{rec.SlotIdx, rec.Downlink, rec.TBS}]++
			}
		}
	}
	total, missed := 0, 0
	for k, n := range gt {
		total += n
		if scope[k] < n {
			missed += n - scope[k]
		}
	}
	if total < 100 {
		t.Fatalf("only %d fallback DCIs", total)
	}
	if rate := float64(missed) / float64(total); rate > 0.01 {
		t.Errorf("fallback-format miss rate %.4f at 25 dB (%d/%d)", rate, missed, total)
	}
}

func TestManualCellInfoSkipsAcquisition(t *testing.T) {
	// The §3.1.1 NSA mode: the cell configuration is provided manually,
	// so the scope tracks UEs without ever decoding MIB/SIB1.
	cfg := amari()
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := gnb.AddUE(bulk(cfg), -1)
	rx := radio.NewReceiver(channel.Normal, 25, cfg.Seed^0xACE)
	mib := rrc.MIB{
		SFN: 0, Mu: cfg.Mu, CellID: cfg.CellID,
		Coreset0StartPRB: cfg.Coreset0.StartPRB,
		Coreset0NumPRB:   cfg.Coreset0.NumPRB,
		Coreset0Duration: cfg.Coreset0.Duration,
	}
	scope := New(cfg.CellID, WithManualCellInfo(mib, cfg.SIB1()))
	if !scope.CellAcquired() {
		t.Fatal("manual cell info did not mark the cell acquired")
	}
	found := false
	records := 0
	for i := 0; i < 400; i++ {
		out := gnb.Step()
		res := scope.ProcessSlot(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		for _, r := range res.NewUEs {
			if r == want {
				found = true
			}
		}
		for _, rec := range res.Records {
			if !rec.Common {
				records++
			}
		}
		if res.MIBAcquired || res.SIB1Acquired {
			t.Fatal("NSA-mode scope re-acquired broadcast info")
		}
	}
	if !found {
		t.Fatal("NSA-mode scope never discovered the UE")
	}
	if records == 0 {
		t.Fatal("NSA-mode scope produced no data records")
	}
}

func TestProcessingTimeGrowsWithUEs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling test; skipped in -short (race CI)")
	}
	elapsed := func(ues int) time.Duration {
		cfg := amari()
		tb := newTestbed(t, cfg, 25)
		for i := 0; i < ues; i++ {
			tb.gnb.AddUE(bulk(cfg), -1)
		}
		// settle
		for i := 0; i < 600; i++ {
			tb.step()
		}
		var total time.Duration
		n := 0
		for i := 0; i < 300; i++ {
			_, res := tb.step()
			if res.Records != nil {
				total += res.Elapsed
				n++
			}
		}
		if n == 0 {
			t.Fatal("no processed slots")
		}
		return total / time.Duration(n)
	}
	small := elapsed(2)
	large := elapsed(16)
	if large <= small {
		t.Errorf("processing time with 16 UEs (%v) not above 2 UEs (%v)", large, small)
	}
}
