package core

import "nrscope/internal/obs"

// met is the core package's instrument set, resolved once from the
// Default registry: the pipeline and scope record with single atomic
// ops on the hot path. Metrics follow process-wide Prometheus
// semantics — they aggregate across every Scope/Pipeline in the
// process (gauges reflect the most recent writer).
var met = struct {
	// Pipeline (Fig. 4 worker pool).
	queueDepth     *obs.Gauge
	queueCapacity  *obs.Gauge
	reorderPending *obs.Gauge
	submitted      *obs.Counter
	merged         *obs.Counter
	dropped        *obs.Counter
	syncSlots      *obs.Counter
	asyncFlips     *obs.Counter
	workerBusyNs   *obs.Counter
	workerIdleNs   *obs.Counter

	// Shared multi-cell decode pool.
	poolWorkers   *obs.Gauge
	poolSubmitted *obs.Counter
	poolDecoded   *obs.Counter
	poolSteals    *obs.Counter

	// Scope decode path.
	decodeLatency  *obs.Histogram
	slots          *obs.Counter
	positions      *obs.Counter
	positionsEmpty *obs.Counter
	candAttempted  *obs.Counter
	candMatched    *obs.Counter
	decodeFailed   *obs.Counter
	crntiRecovers  *obs.Counter
	msg4Hits       *obs.Counter
	mibAcquired    *obs.Counter
	sib1Acquired   *obs.Counter
	mergeDropped   *obs.Counter
	uesTracked     *obs.Gauge
}{
	queueDepth: obs.Default.Gauge("nrscope_pipeline_queue_depth",
		"captures waiting in the pipeline input queue"),
	queueCapacity: obs.Default.Gauge("nrscope_pipeline_queue_capacity",
		"input queue capacity of the most recently created pipeline"),
	reorderPending: obs.Default.Gauge("nrscope_pipeline_reorder_pending",
		"decoded slots held in the scheduler's reordering buffer"),
	submitted: obs.Default.Counter("nrscope_pipeline_slots_submitted_total",
		"captures accepted into the asynchronous pipeline"),
	merged: obs.Default.Counter("nrscope_pipeline_slots_merged_total",
		"slots merged back into scope state in order"),
	dropped: obs.Default.Counter("nrscope_pipeline_slots_dropped_total",
		"captures rejected because the pipeline was closed"),
	syncSlots: obs.Default.Counter("nrscope_pipeline_sync_slots_total",
		"slots processed synchronously before cell acquisition"),
	asyncFlips: obs.Default.Counter("nrscope_pipeline_async_transitions_total",
		"sync-to-async transitions after cell acquisition"),
	workerBusyNs: obs.Default.Counter("nrscope_pipeline_worker_busy_ns_total",
		"nanoseconds workers spent decoding slots"),
	workerIdleNs: obs.Default.Counter("nrscope_pipeline_worker_idle_ns_total",
		"nanoseconds workers spent waiting for input"),

	poolWorkers: obs.Default.Gauge("nrscope_decode_pool_workers",
		"workers in the most recently started decode pool"),
	poolSubmitted: obs.Default.Counter("nrscope_decode_pool_slots_submitted_total",
		"captures accepted into decode pool cell queues"),
	poolDecoded: obs.Default.Counter("nrscope_decode_pool_slots_decoded_total",
		"captures decoded by pool workers"),
	poolSteals: obs.Default.Counter("nrscope_decode_pool_steals_total",
		"cell claims taken by a worker outside its home set"),

	decodeLatency: obs.Default.Histogram("nrscope_scope_decode_latency_seconds",
		"per-slot signal-processing + DCI-decoding time (Fig. 12)", obs.LatencyBuckets),
	slots: obs.Default.Counter("nrscope_scope_slots_processed_total",
		"slot captures run through decodeSlot"),
	positions: obs.Default.Counter("nrscope_scope_blind_positions_decoded_total",
		"RNTI-independent candidate positions polar-decoded per the position cache"),
	positionsEmpty: obs.Default.Counter("nrscope_scope_blind_positions_empty_total",
		"candidate positions skipped because no transmission is possible there (payload exceeds the aggregation level's capacity)"),
	candAttempted: obs.Default.Counter("nrscope_scope_blind_candidates_attempted_total",
		"blind-decode candidates attempted (CSS decodes + per-UE CRC checks)"),
	candMatched: obs.Default.Counter("nrscope_scope_blind_candidates_matched_total",
		"candidates that CRC-checked and translated into grants"),
	decodeFailed: obs.Default.Counter("nrscope_scope_decode_failures_total",
		"candidate decodes rejected (polar/CRC/unpack/grant errors)"),
	crntiRecovers: obs.Default.Counter("nrscope_scope_crnti_recoveries_total",
		"RNTIs recovered from DCI CRC XOR in the common search space"),
	msg4Hits: obs.Default.Counter("nrscope_scope_msg4_hits_total",
		"MSG4 discoveries (new-UE C-RNTI candidates accepted)"),
	mibAcquired: obs.Default.Counter("nrscope_scope_mib_acquired_total",
		"MIB acquisitions merged into scope state"),
	sib1Acquired: obs.Default.Counter("nrscope_scope_sib1_acquired_total",
		"SIB1 acquisitions merged into scope state"),
	mergeDropped: obs.Default.Counter("nrscope_scope_merge_dropped_total",
		"decoded DCIs dropped at merge (UE aged out between decode and merge)"),
	uesTracked: obs.Default.Gauge("nrscope_scope_ues_tracked",
		"C-RNTIs currently tracked by the scope"),
}
