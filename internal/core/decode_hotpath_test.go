package core

import (
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/dci"
	"nrscope/internal/harq"
	"nrscope/internal/pdcch"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/rrc"
)

// mismatchScope builds a scope whose UE CORESET covers a different
// control region than CORESET 0 — a configuration the gNB simulator
// never produces (it reuses CORESET 0's span), so the state is
// assembled by hand. Returns the scope and the dedicated UE CORESET.
func mismatchScope(t *testing.T, cfg ran.CellConfig, rnti uint16) (*Scope, phy.CORESET) {
	t.Helper()
	ueCS := phy.CORESET{ID: 1, StartPRB: 6, NumPRB: 24, Duration: 1, StartSym: 2}
	if ueCS.SameRegion(cfg.Coreset0) {
		t.Fatal("test CORESET accidentally matches CORESET 0")
	}
	mib := rrc.MIB{
		Mu: cfg.Mu, CellID: cfg.CellID,
		Coreset0StartPRB: cfg.Coreset0.StartPRB,
		Coreset0NumPRB:   cfg.Coreset0.NumPRB,
		Coreset0Duration: cfg.Coreset0.Duration,
	}
	s := New(cfg.CellID, WithManualCellInfo(mib, cfg.SIB1()), WithDCIThreads(2))
	setup := cfg.Setup
	setup.CORESET = ueCS
	s.setup = &setup
	s.ueCoreset = ueCS
	s.ueSS = phy.SearchSpace{ID: ueCS.ID, Type: phy.UESearchSpace, Candidates: setup.UECandidates}
	s.link = setup.LinkConfig()
	s.ues[rnti] = &UETrack{RNTI: rnti, DL: harq.NewTracker(), UL: harq.NewTracker()}
	s.rntis = []uint16{rnti}
	return s, ueCS
}

// TestUECoresetDistinctRegionDecodes is the regression test for the
// occupancy-mask mismatch: when the UE CORESET covers a different
// control region than CORESET 0, the USS pass must sweep the UE CORESET
// itself rather than indexing CORESET 0's occupancy mask with UE-CORESET
// CCE numbers (which gates every candidate out — CORESET 0 is silent).
func TestUECoresetDistinctRegionDecodes(t *testing.T) {
	cfg := amari()
	rnti := uint16(0x4601)
	s, ueCS := mismatchScope(t, cfg, rnti)

	ref := phy.SlotRef{SFN: 0, Slot: 1}
	g := phy.NewGrid(cfg.CarrierPRBs)
	riv, err := phy.EncodeRIV(cfg.CarrierPRBs, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := dci.DCI{
		Format: dci.Format11, FreqAlloc: riv, TimeAlloc: 0,
		MCS: 10, NDI: 1, RV: 0, HARQID: 2, DAI: 1, TPC: 1,
	}
	payload, err := dci.Pack(d, s.dataCfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := dci.ClassSize(dci.NonFallback, s.dataCfg); len(payload) != want {
		t.Fatalf("packed payload %d bits, class size %d", len(payload), want)
	}
	cands := phy.SlotCandidates(s.ueSS, ueCS, rnti, ref.Slot)
	if len(cands) == 0 {
		t.Fatal("no UE candidates in the dedicated CORESET")
	}
	cand := cands[0]
	enc := pdcch.New(cfg.CellID)
	if err := enc.Encode(g, ueCS, cand, ref.Slot, payload, rnti); err != nil {
		t.Fatal(err)
	}

	// Precondition that makes the regression meaningful: CORESET 0 is
	// silent, so its occupancy mask would gate out every UE candidate.
	for i, occ := range s.codec.OccupiedCCEs(g, s.coreset, ref.Slot) {
		if occ {
			t.Fatalf("CORESET 0 CCE %d unexpectedly occupied", i)
		}
	}

	res := s.ProcessSlot(&radio.Capture{SlotIdx: 41, Ref: ref, Grid: g, N0: 1e-4})
	found := false
	for _, rec := range res.Records {
		if !rec.Common && rec.RNTI == rnti && rec.AggLevel == cand.AggLevel && rec.StartCCE == cand.StartCCE {
			found = true
		}
	}
	if !found {
		t.Fatalf("DCI in the dedicated UE CORESET not decoded; records: %+v", res.Records)
	}
}

// TestInfeasiblePositionsCountEmptyNotFailed: candidate positions whose
// aggregation level cannot carry the payload at all are no-transmission
// positions, not decode failures.
func TestInfeasiblePositionsCountEmptyNotFailed(t *testing.T) {
	s := New(500)
	cs := phy.CORESET{ID: 1, StartPRB: 0, NumPRB: 48, Duration: 1, StartSym: 0}
	snap := &snapshot{
		ueCoreset: cs,
		ueSS:      phy.SearchSpace{ID: 1, Type: phy.UESearchSpace, Candidates: phy.DefaultUECandidates()},
		threads:   2,
	}
	capt := &radio.Capture{Ref: phy.SlotRef{}, Grid: phy.NewGrid(51), N0: 1e-2}
	occupied := boolMask(nil, cs.NumCCE(), true)
	claimed := boolMask(nil, cs.NumCCE(), false)
	// 100 payload bits: K = 124 exceeds AL1's capacity (E = 108 with 20
	// punctured mother bits) but fits every higher level.
	if pdcch.PayloadFits(100, 1) || !pdcch.PayloadFits(100, 2) {
		t.Fatal("payload size does not split the aggregation levels as intended")
	}
	emptyBefore := met.positionsEmpty.Value()
	failedBefore := met.decodeFailed.Value()
	decodedBefore := met.positions.Value()

	var ar posArena
	s.decodePositions(snap, capt, 100, occupied, claimed, &ar)

	// 8 CCEs: 8 AL1 positions are infeasible; 4 AL2 + 2 AL4 + 1 AL8
	// decode (a silent grid still polar-decodes, to garbage).
	if got := met.positionsEmpty.Value() - emptyBefore; got != 8 {
		t.Errorf("positionsEmpty delta = %d, want 8", got)
	}
	if got := met.decodeFailed.Value() - failedBefore; got != 0 {
		t.Errorf("decodeFailed delta = %d, want 0", got)
	}
	if got := met.positions.Value() - decodedBefore; got != 7 {
		t.Errorf("positions decoded delta = %d, want 7", got)
	}
	if _, ok := ar.lookup(1, 0); ok {
		t.Error("infeasible AL1 position reported as decoded")
	}
	if _, ok := ar.lookup(2, 0); !ok {
		t.Error("feasible AL2 position not decoded")
	}
}

// TestPosArenaIndexing pins the flat arena's arithmetic addressing:
// posAt and lookup must agree, blocks must be disjoint and capacity
// capped, and reset must recycle the backing arrays.
func TestPosArenaIndexing(t *testing.T) {
	ss := phy.SearchSpace{Candidates: phy.DefaultUECandidates()}
	const blockLen = 67
	var a posArena
	a.reset(ss, 8, blockLen)
	if a.n != 8+4+2+1 {
		t.Fatalf("arena entries = %d, want 15", a.n)
	}
	for idx := 0; idx < a.n; idx++ {
		al, cce := a.posAt(idx)
		if al == 0 || cce%al != 0 {
			t.Fatalf("posAt(%d) = (%d, %d)", idx, al, cce)
		}
		if _, ok := a.lookup(al, cce); ok {
			t.Fatalf("undecoded position (%d, %d) reported decoded", al, cce)
		}
		blk := a.writeBlock(idx)
		if cap(blk) != blockLen {
			t.Fatalf("writeBlock(%d) cap = %d, want %d (no spill into neighbours)", idx, cap(blk), blockLen)
		}
		a.state[idx] = 1
		got, ok := a.lookup(al, cce)
		if !ok || len(got) != blockLen || &got[0] != &a.blocks[idx*blockLen] {
			t.Fatalf("lookup(%d, %d) does not address entry %d", al, cce, idx)
		}
	}
	if _, ok := a.lookup(4, 2); ok {
		t.Error("unaligned CCE accepted")
	}
	if _, ok := a.lookup(3, 0); ok {
		t.Error("invalid aggregation level accepted")
	}
	if _, ok := a.lookup(16, 0); ok {
		t.Error("level without positions accepted")
	}
	prev := &a.blocks[0]
	a.reset(ss, 8, blockLen)
	if &a.blocks[0] != prev {
		t.Error("reset reallocated the block arena")
	}
	for idx := 0; idx < a.n; idx++ {
		if a.state[idx] != 0 {
			t.Fatal("reset did not clear decode state")
		}
	}
}

// TestDecodeSlotConcurrencyAcrossAcquisition drives the full pipeline —
// concurrent workers, each running the position-parallel USS pass with
// multiple DCI threads — through the MIB/SIB1/Setup transitions. Kept
// -short-friendly so the race CI exercises it.
func TestDecodeSlotConcurrencyAcrossAcquisition(t *testing.T) {
	cfg := amari()
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		gnb.AddUE(bulk(cfg), -1)
	}
	rx := radio.NewReceiver(channel.Normal, 25, cfg.Seed^0xACE)
	scope := New(cfg.CellID, WithDCIThreads(4))
	p := NewPipeline(scope, 3, 32)
	done := make(chan [2]int)
	go func() {
		ues, records := 0, 0
		for res := range p.Results() {
			ues += len(res.NewUEs)
			for _, rec := range res.Records {
				if !rec.Common {
					records++
				}
			}
		}
		done <- [2]int{ues, records}
	}()
	for i := 0; i < 700; i++ {
		out := gnb.Step()
		p.Submit(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
	p.Close()
	got := <-done
	if got[0] == 0 {
		t.Error("no UEs discovered across acquisition under concurrency")
	}
	if got[1] == 0 {
		t.Error("no data DCIs decoded under concurrency")
	}
}

// BenchmarkDecodePositions measures the RNTI-independent half of the
// blind decode alone: one polar decode per occupied AL-aligned position
// of the UE search space (all positions forced occupied here).
func BenchmarkDecodePositions(b *testing.B) {
	cfg := amari()
	tb := newTestbed(b, cfg, 25)
	tb.gnb.AddUE(bulk(cfg), -1)
	var capt *radio.Capture
	for i := 0; i < 600; i++ {
		out := tb.gnb.Step()
		c := tb.rx.Capture(out.SlotIdx, out.Ref, out.Grid)
		tb.scope.ProcessSlot(c)
		if tb.scope.SetupKnown() && c.Grid != nil {
			capt = c
		}
	}
	if capt == nil || !tb.scope.SetupKnown() {
		b.Fatal("testbed never reached steady state")
	}
	snap := tb.scope.snapshot()
	sizeClass := dci.Fallback
	if snap.setup.NonFallback {
		sizeClass = dci.NonFallback
	}
	payloadBits := dci.ClassSize(sizeClass, snap.dataCfg)
	occupied := boolMask(nil, snap.ueCoreset.NumCCE(), true)
	claimed := boolMask(nil, snap.ueCoreset.NumCCE(), false)
	var ar posArena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.scope.decodePositions(snap, capt, payloadBits, occupied, claimed, &ar)
	}
}
