package core

import "nrscope/internal/mcs"

// mcsTableQAM64 avoids importing mcs at every use site in the big test file.
func mcsTableQAM64() mcs.Table { return mcs.TableQAM64 }
