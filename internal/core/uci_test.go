package core

import (
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/traffic"
)

// TestUCIDecodingMatchesGroundTruth drives the full chain: the gNB's UEs
// transmit SR/CQI/HARQ-ACK on the uplink carrier, a second receiver
// captures it, and the scope decodes every report for the UEs it tracks.
func TestUCIDecodingMatchesGroundTruth(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	ulRX := radio.NewReceiver(channel.Normal, 25, cfg.Seed^0xBEE)
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewVideo(30, 15000, 0.2, cfg.TTI(), seed),
			traffic.NewCBR(300e3, cfg.TTI()),
			channel.New(channel.Pedestrian, cfg.BaseSNRdB, seed)
	}
	want := tb.gnb.AddUE(factory, -1)

	type key struct {
		slot int
		rnti uint16
	}
	gt := make(map[key]ran.UCIGT)
	seen := make(map[key]UCIReport)
	discovered := -1
	for i := 0; i < 2000; i++ {
		out := tb.gnb.Step()
		res := tb.scope.ProcessSlot(tb.rx.Capture(out.SlotIdx, out.Ref, out.Grid))
		for _, r := range res.NewUEs {
			if r == want {
				discovered = res.SlotIdx
			}
		}
		ulCap := ulRX.Capture(out.SlotIdx, out.Ref, out.ULGrid)
		ulRes := tb.scope.ProcessUplinkSlot(ulCap)
		for _, g := range out.UCIGT {
			if discovered >= 0 && g.SlotIdx > discovered {
				gt[key{g.SlotIdx, g.RNTI}] = g
			}
		}
		for _, r := range ulRes.Reports {
			seen[key{r.SlotIdx, r.RNTI}] = r
		}
	}
	if discovered < 0 {
		t.Fatal("UE never discovered")
	}
	if len(gt) < 50 {
		t.Fatalf("only %d UCI ground-truth reports", len(gt))
	}
	matched, sr, acks := 0, 0, 0
	for k, g := range gt {
		r, ok := seen[k]
		if !ok {
			continue
		}
		matched++
		if r.UCI != g.UCI {
			t.Fatalf("UCI mismatch at %+v: scope %+v, GT %+v", k, r.UCI, g.UCI)
		}
		if g.UCI.SR {
			sr++
		}
		if g.UCI.HasAck {
			acks++
		}
	}
	if float64(matched) < 0.95*float64(len(gt)) {
		t.Errorf("decoded %d/%d UCI reports at 25 dB", matched, len(gt))
	}
	if sr == 0 {
		t.Error("no scheduling requests observed despite UL traffic")
	}
	if acks == 0 {
		t.Error("no HARQ feedback observed despite DL traffic")
	}
}

// TestUCICQIFollowsChannel checks the decoded CQI stream tracks the
// UE's channel quality ordering.
func TestUCICQIFollowsChannel(t *testing.T) {
	meanCQI := func(model channel.Model) float64 {
		cfg := amari()
		cfg.Seed = 321
		tb := newTestbed(t, cfg, 25)
		ulRX := radio.NewReceiver(channel.Normal, 25, 77)
		factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
			return traffic.NewBulk(3000), nil, channel.New(model, cfg.BaseSNRdB, seed)
		}
		tb.gnb.AddUE(factory, -1)
		var sum, n float64
		for i := 0; i < 1500; i++ {
			out := tb.gnb.Step()
			tb.scope.ProcessSlot(tb.rx.Capture(out.SlotIdx, out.Ref, out.Grid))
			ulRes := tb.scope.ProcessUplinkSlot(ulRX.Capture(out.SlotIdx, out.Ref, out.ULGrid))
			for _, r := range ulRes.Reports {
				sum += float64(r.UCI.CQI)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no CQI reports decoded")
		}
		return sum / n
	}
	good := meanCQI(channel.Normal)
	bad := meanCQI(channel.Urban)
	if bad >= good {
		t.Errorf("Urban mean CQI %.1f not below Normal %.1f", bad, good)
	}
}

func TestProcessUplinkSlotNoUEs(t *testing.T) {
	s := New(1)
	res := s.ProcessUplinkSlot(&radio.Capture{SlotIdx: 5})
	if len(res.Reports) != 0 || res.SlotIdx != 5 {
		t.Errorf("unexpected result: %+v", res)
	}
}
