package core

import (
	"testing"
	"time"

	"nrscope/internal/obs"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
	"nrscope/internal/rrc"
)

// manualScope returns a scope with the cell configuration preloaded, so
// a pipeline wrapping it goes asynchronous on the first Submit.
func manualScope(cfg ran.CellConfig) *Scope {
	mib := rrc.MIB{
		SFN: 0, Mu: cfg.Mu, CellID: cfg.CellID,
		Coreset0StartPRB: cfg.Coreset0.StartPRB,
		Coreset0NumPRB:   cfg.Coreset0.NumPRB,
		Coreset0Duration: cfg.Coreset0.Duration,
	}
	return New(cfg.CellID, WithManualCellInfo(mib, cfg.SIB1()))
}

// emptyCapture is a slot with no downlink transmission (nil grid):
// decodeSlot returns immediately, which keeps the pipeline mechanics
// under test without the decoding cost.
func emptyCapture(slotIdx int) *radio.Capture {
	return &radio.Capture{SlotIdx: slotIdx}
}

func TestPipelineSubmitAfterClose(t *testing.T) {
	cfg := amari()
	p := NewPipeline(manualScope(cfg), 2, 8)
	go func() {
		for range p.Results() {
		}
	}()
	for i := 0; i < 4; i++ {
		if !p.Submit(emptyCapture(i)) {
			t.Fatalf("submit %d rejected on an open pipeline", i)
		}
	}
	p.Close()

	before := obs.Snapshot()
	for i := 4; i < 7; i++ {
		if p.Submit(emptyCapture(i)) {
			t.Errorf("submit %d accepted after Close", i)
		}
	}
	d := obs.Delta(before, obs.Snapshot())
	if got := d["nrscope_pipeline_slots_dropped_total"]; got != 3 {
		t.Errorf("dropped-slot counter delta = %g, want 3", got)
	}
	// Close is idempotent.
	p.Close()
}

func TestPipelineReorderDrainsSlotGaps(t *testing.T) {
	// Slot gaps happen when the radio skips slots (overruns, uplink-only
	// slots filtered upstream). The reordering buffer must deliver what
	// it has in order: contiguous slots flow immediately, the post-gap
	// tail drains sorted at Close.
	cfg := amari()
	p := NewPipeline(manualScope(cfg), 3, 16)
	if p.Async() {
		t.Fatal("pipeline async before first Submit")
	}
	gaps := []int{0, 1, 5, 6, 12}
	done := make(chan []int)
	go func() {
		var order []int
		for res := range p.Results() {
			order = append(order, res.SlotIdx)
		}
		done <- order
	}()
	for _, idx := range gaps {
		p.Submit(emptyCapture(idx))
	}
	if !p.Async() {
		t.Error("pipeline still synchronous after submits with cell acquired")
	}
	p.Close()
	order := <-done
	if len(order) != len(gaps) {
		t.Fatalf("got %d results, want %d", len(order), len(gaps))
	}
	for i, idx := range gaps {
		if order[i] != idx {
			t.Fatalf("result order %v, want %v", order, gaps)
		}
	}
}

func TestPipelineBackpressureBlocksSubmit(t *testing.T) {
	// With one worker, a depth-4 queue and nobody draining results, the
	// pipeline's bounded channels must push back on Submit rather than
	// buffer unboundedly — the paper's radio back-pressure contract.
	cfg := amari()
	const total = 40
	p := NewPipeline(manualScope(cfg), 1, 4)
	submitted := make(chan int, 1)
	go func() {
		for i := 0; i < total; i++ {
			p.Submit(emptyCapture(i))
		}
		submitted <- total
	}()

	select {
	case <-submitted:
		t.Fatal("submitter never blocked: back-pressure is broken")
	case <-time.After(300 * time.Millisecond):
		// Blocked as expected; the input queue must be holding slots.
		if depth := obs.Snapshot()["nrscope_pipeline_queue_depth"]; depth < 1 {
			t.Errorf("queue depth gauge = %g while back-pressured, want >= 1", depth)
		}
	}

	var order []int
	drained := make(chan struct{})
	go func() {
		for res := range p.Results() {
			order = append(order, res.SlotIdx)
		}
		close(drained)
	}()
	<-submitted // draining the results unblocks the submitter
	p.Close()
	<-drained
	if len(order) != total {
		t.Fatalf("drained %d results, want %d", len(order), total)
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("results out of order at %d: %d after %d", i, order[i], order[i-1])
		}
	}
}

func TestObsSnapshotDeltasAcrossRun(t *testing.T) {
	// The acceptance test for the instrumentation itself: counter deltas
	// across a simulated multi-slot run must account for the work done.
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	tb.gnb.AddUE(bulk(cfg), -1)

	before := obs.Snapshot()
	const slots = 800
	for i := 0; i < slots; i++ {
		tb.step()
	}
	d := obs.Delta(before, obs.Snapshot())

	if got := d["nrscope_scope_slots_processed_total"]; got != slots {
		t.Errorf("slots_processed delta = %g, want %d", got, slots)
	}
	if got := d["nrscope_scope_decode_latency_seconds_count"]; got != slots {
		t.Errorf("decode latency histogram count delta = %g, want %d", got, slots)
	}
	if d["nrscope_scope_decode_latency_seconds_sum"] <= 0 {
		t.Error("decode latency histogram sum did not grow")
	}
	if got := d["nrscope_scope_mib_acquired_total"]; got != 1 {
		t.Errorf("mib_acquired delta = %g, want 1", got)
	}
	if got := d["nrscope_scope_sib1_acquired_total"]; got != 1 {
		t.Errorf("sib1_acquired delta = %g, want 1", got)
	}
	if got := d["nrscope_scope_msg4_hits_total"]; got < 1 {
		t.Errorf("msg4_hits delta = %g, want >= 1", got)
	}
	if got := d["nrscope_scope_crnti_recoveries_total"]; got < 1 {
		t.Errorf("crnti_recoveries delta = %g, want >= 1", got)
	}
	attempted := d["nrscope_scope_blind_candidates_attempted_total"]
	matched := d["nrscope_scope_blind_candidates_matched_total"]
	if attempted <= 0 {
		t.Error("no blind-decode candidates attempted")
	}
	if matched <= 0 || matched > attempted {
		t.Errorf("candidates matched delta = %g (attempted %g)", matched, attempted)
	}
	if d["nrscope_scope_blind_positions_decoded_total"] <= 0 {
		t.Error("position cache never decoded a candidate position")
	}
	if tracked := obs.Snapshot()["nrscope_scope_ues_tracked"]; tracked < 1 {
		t.Errorf("ues_tracked gauge = %g, want >= 1", tracked)
	}
}
