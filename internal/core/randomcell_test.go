package core

import (
	"math/rand"
	"testing"

	"nrscope/internal/phy"
	"nrscope/internal/ran"
)

// TestRandomCellConfigsEndToEnd sweeps randomized cell configurations —
// bandwidth/numerology pairs, CORESET widths, TDD patterns, MCS tables,
// candidate counts — and checks the whole chain still works: the scope
// acquires the cell, discovers the UE, and decodes its traffic without
// phantom records. This guards the configuration space the paper's
// tool must handle ("the highly flexible 5G control channel").
func TestRandomCellConfigsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy end-to-end sweep; skipped in -short (race CI)")
	}
	type bwmu struct {
		mhz int
		mu  phy.Numerology
	}
	bands := []bwmu{
		{10, phy.Mu0}, {15, phy.Mu0}, {20, phy.Mu0},
		{10, phy.Mu1}, {15, phy.Mu1}, {20, phy.Mu1}, {40, phy.Mu1},
		{40, phy.Mu2},
	}
	patterns := []string{"D", "DDDSU", "DDSU", "DDDDDDDSUU"}

	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		band := bands[rng.Intn(len(bands))]
		prbs, err := phy.PRBsForBandwidth(band.mhz, band.mu)
		if err != nil {
			t.Fatal(err)
		}
		if prbs < 24 {
			continue // cannot hold the SSB
		}
		cfg := ran.AmarisoftCell()
		cfg.Name = "random"
		cfg.Mu = band.mu
		cfg.CarrierPRBs = prbs
		cfg.TDD = phy.MustTDDPattern(patterns[rng.Intn(len(patterns))])
		// Random whole-CCE CORESET width within the carrier.
		maxCCEs := prbs / phy.REGsPerCCE
		if maxCCEs > 8 {
			maxCCEs = 8
		}
		ccEs := 4 + rng.Intn(maxCCEs-3)
		cfg.Coreset0.NumPRB = ccEs * phy.REGsPerCCE
		cfg.Setup.CORESET.NumPRB = cfg.Coreset0.NumPRB
		cfg.Setup.NonFallback = rng.Intn(2) == 0
		if !cfg.Setup.NonFallback {
			cfg.Setup.MCSTable = mcsTableQAM64()
		}
		cfg.Seed = int64(500 + trial)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}

		tb := newTestbed(t, cfg, 25)
		rnti := tb.gnb.AddUE(bulk(cfg), -1)
		discovered := false
		gtData, scopeData := 0, 0
		gtSeen := make(map[[3]int]int)
		for i := 0; i < 1200; i++ {
			out, res := tb.step()
			for _, r := range res.NewUEs {
				if r == rnti {
					discovered = true
				}
			}
			for _, r := range out.GT {
				if !r.Common && r.RNTI == rnti {
					gtData++
					gtSeen[[3]int{r.SlotIdx, boolInt(r.Grant.Downlink), r.Grant.TBS}]++
				}
			}
			for _, rec := range res.Records {
				if !rec.Common && rec.RNTI == rnti {
					scopeData++
					k := [3]int{rec.SlotIdx, boolInt(rec.Downlink), rec.TBS}
					if gtSeen[k] == 0 {
						t.Fatalf("trial %d (%d PRBs %v %s): phantom record %+v",
							trial, prbs, band.mu, cfg.TDD, rec)
					}
					gtSeen[k]--
				}
			}
		}
		if !tb.scope.CellAcquired() {
			t.Fatalf("trial %d (%d PRBs %v %s): cell never acquired", trial, prbs, band.mu, cfg.TDD)
		}
		if !discovered {
			t.Fatalf("trial %d (%d PRBs %v %s): UE never discovered", trial, prbs, band.mu, cfg.TDD)
		}
		if scopeData == 0 || gtData == 0 {
			t.Fatalf("trial %d (%d PRBs %v %s): no data decoded (gt %d)", trial, prbs, band.mu, cfg.TDD, gtData)
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
