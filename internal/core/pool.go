package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nrscope/internal/radio"
)

// DecodePool spreads per-cell slot decode across a shared set of
// workers — the multi-cell counterpart of Pipeline. Where Pipeline
// parallelizes one cell's slots through snapshot/decode/merge,
// DecodePool keeps each cell's ProcessSlot strictly serial (slot n+1's
// blind decode depends on state merged from slot n: MIB, SIB1, MSG4
// one-shots) and gets its parallelism across cells: each registered
// cell owns a bounded capture FIFO, and every worker scans the cell
// list from its own offset, claiming whole cells with a CAS. A worker
// whose home cells are idle steals from any other cell with queued
// work, so a burst on one cell is absorbed by the whole pool.
//
// Submit blocks when the cell's queue is full (radio back-pressure,
// like Pipeline.Submit), keeping the steady state allocation-free: the
// ring buffers are fixed at Start and captures are handed over by
// pointer. Results are delivered to the cell's handler on the worker
// goroutine, serialized per cell by the claim but concurrent across
// cells.
type DecodePool struct {
	workers int
	queue   int // per-cell ring size, fixed at construction
	cells   []*poolCell
	byID    map[uint16]*poolCell

	started bool
	closed  atomic.Bool
	pending atomic.Int64 // submitted captures not yet handled

	wake chan struct{} // non-blocking doorbells, capacity = workers
	quit chan struct{} // closed by Close: workers drain and exit
	wg   sync.WaitGroup
}

// poolMaxClaim bounds how many slots a worker decodes per cell claim,
// so one deep queue cannot starve the other cells a worker serves.
const poolMaxClaim = 32

// poolCell is one registered cell: its scope, its result handler, and
// its bounded capture ring.
type poolCell struct {
	id      uint16
	scope   *Scope
	handler func(*SlotResult)

	mu      sync.Mutex
	notFull *sync.Cond
	buf     []*radio.Capture
	head, n int

	// busy is the cell claim: exactly one worker decodes a cell at a
	// time, which is what keeps per-cell slot order strict while cells
	// proceed concurrently.
	busy atomic.Bool
}

// NewDecodePool creates a pool with the given worker count and
// per-cell queue depth. Register cells with AddCell, then Start.
func NewDecodePool(workers, queueDepth int) *DecodePool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 64
	}
	return &DecodePool{
		workers: workers,
		queue:   queueDepth,
		byID:    make(map[uint16]*poolCell),
		wake:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
}

// AddCell registers a cell's scope and result handler. The handler is
// invoked on a worker goroutine, serialized per cell; it may be nil
// when only the scope's side effects (bus publication, state) matter.
// Must be called before Start.
func (p *DecodePool) AddCell(id uint16, scope *Scope, handler func(*SlotResult)) error {
	if p.started {
		return errors.New("core: DecodePool.AddCell after Start")
	}
	if scope == nil {
		return fmt.Errorf("core: DecodePool.AddCell(%d) with nil scope", id)
	}
	if _, dup := p.byID[id]; dup {
		return fmt.Errorf("core: cell %d already registered", id)
	}
	c := &poolCell{id: id, scope: scope, handler: handler, buf: make([]*radio.Capture, p.queue)}
	c.notFull = sync.NewCond(&c.mu)
	p.byID[id] = c
	p.cells = append(p.cells, c)
	return nil
}

// Workers reports the pool's worker count.
func (p *DecodePool) Workers() int { return p.workers }

// Start launches the workers. AddCell calls must precede it.
func (p *DecodePool) Start() error {
	if p.started {
		return errors.New("core: DecodePool already started")
	}
	if len(p.cells) == 0 {
		return errors.New("core: DecodePool has no cells")
	}
	p.started = true
	met.poolWorkers.Set(int64(p.workers))
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.run(i)
	}
	return nil
}

// Submit enqueues one capture for its cell and reports whether it was
// accepted (a Submit after Close is dropped). It blocks while the
// cell's queue is full. Per-cell submissions must be in slot order and
// from a single goroutine, never concurrently with Close.
func (p *DecodePool) Submit(id uint16, cap *radio.Capture) bool {
	if p.closed.Load() {
		return false
	}
	c, ok := p.byID[id]
	if !ok {
		return false
	}
	c.mu.Lock()
	for c.n == len(c.buf) {
		if p.closed.Load() {
			c.mu.Unlock()
			return false
		}
		c.notFull.Wait()
	}
	c.buf[(c.head+c.n)%len(c.buf)] = cap
	c.n++
	c.mu.Unlock()
	p.pending.Add(1)
	met.poolSubmitted.Inc()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return true
}

// Flush blocks until every submitted capture has been decoded and its
// handler has returned. Must not race Close.
func (p *DecodePool) Flush() {
	for p.pending.Load() > 0 {
		time.Sleep(20 * time.Microsecond)
	}
}

// Close drains every queue, stops the workers, and releases blocked
// Submits. Idempotent; must not race a concurrent Submit.
func (p *DecodePool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
	// Unblock any Submit that was waiting on a full ring when Close hit.
	for _, c := range p.cells {
		c.mu.Lock()
		c.notFull.Broadcast()
		c.mu.Unlock()
	}
	met.poolWorkers.Set(0)
}

// run is one worker: scan the cells from this worker's offset, claim
// and drain any with queued work, park on the doorbell when idle.
func (p *DecodePool) run(self int) {
	defer p.wg.Done()
	for {
		progressed := false
		for k := 0; k < len(p.cells); k++ {
			idx := (self + k) % len(p.cells)
			if p.drain(p.cells[idx], idx%p.workers != self) {
				progressed = true
			}
		}
		if progressed {
			continue
		}
		select {
		case <-p.wake:
		case <-p.quit:
			// Closing: sweep until every queue is empty. Other workers
			// do the same; the claims keep per-cell order intact.
			for p.pending.Load() > 0 {
				for i, c := range p.cells {
					p.drain(c, i%p.workers != self)
				}
			}
			return
		}
	}
}

// drain claims a cell and decodes up to poolMaxClaim queued slots in
// order, delivering each result to the cell's handler. Returns whether
// any slot was decoded.
func (p *DecodePool) drain(c *poolCell, stolen bool) bool {
	if !c.busy.CompareAndSwap(false, true) {
		return false
	}
	defer c.busy.Store(false)
	worked := false
	for decoded := 0; decoded < poolMaxClaim; decoded++ {
		c.mu.Lock()
		if c.n == 0 {
			c.mu.Unlock()
			break
		}
		cap := c.buf[c.head]
		c.buf[c.head] = nil
		c.head = (c.head + 1) % len(c.buf)
		c.n--
		c.notFull.Signal()
		c.mu.Unlock()
		res := c.scope.ProcessSlot(cap)
		if c.handler != nil {
			c.handler(res)
		}
		p.pending.Add(-1)
		met.poolDecoded.Inc()
		if stolen && !worked {
			met.poolSteals.Inc()
		}
		worked = true
	}
	return worked
}
