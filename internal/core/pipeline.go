package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nrscope/internal/radio"
)

// Pipeline is the asynchronous processing architecture of the paper's
// Fig. 4: a scheduler feeds slot captures (with a copy of the current
// state) to a pool of workers; each worker runs the SIB/RACH/DCI
// processing; results flow through a result queue back to the scheduler,
// which merges them in slot order, updating the shared state (known UE
// list, cell configuration) and emitting SlotResults.
//
// The worker pool enables on-demand processing: slots queue up when the
// host is busy and drain later, lowering the CPU requirement when
// real-time output is not needed (§4).
//
// The pipeline reports its runtime behaviour through internal/obs:
// input queue depth, reordering-buffer size, worker busy/idle time and
// the sync→async transition are all visible on the /metrics endpoint.
type Pipeline struct {
	scope   *Scope
	workers int

	mu      sync.Mutex // guards scope state (snapshot vs merge)
	in      chan *radio.Capture
	results chan *SlotResult
	wg      sync.WaitGroup

	firstOnce sync.Once
	first     chan int // slot index of the first async submission

	// async flips once the cell is acquired. Until then Submit processes
	// slots synchronously: cell search is a strict prerequisite of
	// everything else (paper Fig. 2 step 1), and racing workers past an
	// unmerged MIB/SIB1 would silently drop one-shot MSG4s. Atomic so
	// concurrent observers (tests, metrics scrapes) read it race-free.
	async atomic.Bool

	// closed flips in Close; late Submits are dropped instead of
	// panicking on the closed input channel.
	closed atomic.Bool
}

// NewPipeline wraps a scope in an asynchronous pipeline with the given
// worker count and queue depth.
func NewPipeline(scope *Scope, workers, queueDepth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers
	}
	p := &Pipeline{
		scope:   scope,
		workers: workers,
		in:      make(chan *radio.Capture, queueDepth),
		results: make(chan *SlotResult, queueDepth),
		first:   make(chan int, 1),
	}
	met.queueCapacity.Set(int64(queueDepth))
	met.queueDepth.Set(0)
	met.reorderPending.Set(0)
	p.start()
	return p
}

// Async reports whether the pipeline has transitioned to asynchronous
// worker-pool processing (it does after cell acquisition).
func (p *Pipeline) Async() bool { return p.async.Load() }

// start launches the workers and the merging scheduler.
func (p *Pipeline) start() {
	decoded := make(chan *decodeResult, p.workers*2)

	var workerWG sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for {
				idleStart := time.Now()
				cap, ok := <-p.in
				met.workerIdleNs.Add(time.Since(idleStart).Nanoseconds())
				if !ok {
					return
				}
				met.queueDepth.Set(int64(len(p.in)))
				busyStart := time.Now()
				snap := p.snapshotLocked()
				res := p.scope.decodeSlot(snap, cap)
				met.workerBusyNs.Add(time.Since(busyStart).Nanoseconds())
				decoded <- res
			}
		}()
	}
	go func() {
		workerWG.Wait()
		close(decoded)
	}()

	// Scheduler: merge in slot order using a reordering buffer.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.results)
		pending := make(map[int]*decodeResult)
		next := -1
		flushReady := func() {
			if next == -1 {
				// Submissions are in slot order, and a Submit always
				// precedes its decode result, so the first submitted
				// index is available by the time any result lands.
				select {
				case f := <-p.first:
					next = f
				default:
					return
				}
			}
			for {
				res, ok := pending[next]
				if !ok {
					return
				}
				delete(pending, next)
				met.reorderPending.Set(int64(len(pending)))
				p.results <- p.mergeLocked(res)
				met.merged.Inc()
				next++
			}
		}
		for res := range decoded {
			pending[res.slotIdx] = res
			met.reorderPending.Set(int64(len(pending)))
			flushReady()
		}
		// Input closed: drain stragglers in order (gaps allowed).
		var idxs []int
		for idx := range pending {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			p.results <- p.mergeLocked(pending[idx])
			met.merged.Inc()
		}
		met.reorderPending.Set(0)
	}()
}

// snapshotLocked takes a state snapshot under the pipeline lock.
func (p *Pipeline) snapshotLocked() *snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scope.snapshot()
}

// mergeLocked merges a decode result under the pipeline lock.
func (p *Pipeline) mergeLocked(res *decodeResult) *SlotResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scope.merge(res)
}

// Submit enqueues a capture and reports whether it was accepted (a
// Submit after Close is dropped). It blocks when the queue is full
// (radio back-pressure). Submissions must be in slot order and come
// from a single goroutine, never concurrently with Close.
func (p *Pipeline) Submit(cap *radio.Capture) bool {
	if p.closed.Load() {
		met.dropped.Inc()
		return false
	}
	if !p.async.Load() {
		p.mu.Lock()
		acquired := p.scope.CellAcquired()
		p.mu.Unlock()
		if !acquired {
			res := p.scope.decodeSlot(p.snapshotLocked(), cap)
			p.results <- p.mergeLocked(res)
			met.syncSlots.Inc()
			met.merged.Inc()
			return true
		}
		p.async.Store(true)
		met.asyncFlips.Inc()
	}
	p.firstOnce.Do(func() { p.first <- cap.SlotIdx })
	p.in <- cap
	met.submitted.Inc()
	met.queueDepth.Set(int64(len(p.in)))
	return true
}

// Results returns the ordered result stream. It is closed after Close
// once all submitted slots have drained.
func (p *Pipeline) Results() <-chan *SlotResult { return p.results }

// Close stops accepting captures and waits for in-flight slots. It is
// idempotent, but must not race a concurrent Submit.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.in)
	p.wg.Wait()
}
