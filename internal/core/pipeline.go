package core

import (
	"sort"
	"sync"

	"nrscope/internal/radio"
)

// Pipeline is the asynchronous processing architecture of the paper's
// Fig. 4: a scheduler feeds slot captures (with a copy of the current
// state) to a pool of workers; each worker runs the SIB/RACH/DCI
// processing; results flow through a result queue back to the scheduler,
// which merges them in slot order, updating the shared state (known UE
// list, cell configuration) and emitting SlotResults.
//
// The worker pool enables on-demand processing: slots queue up when the
// host is busy and drain later, lowering the CPU requirement when
// real-time output is not needed (§4).
type Pipeline struct {
	scope   *Scope
	workers int

	mu      sync.Mutex // guards scope state (snapshot vs merge)
	in      chan *radio.Capture
	results chan *SlotResult
	wg      sync.WaitGroup

	firstOnce sync.Once
	first     chan int // slot index of the first async submission

	// async flips once the cell is acquired. Until then Submit processes
	// slots synchronously: cell search is a strict prerequisite of
	// everything else (paper Fig. 2 step 1), and racing workers past an
	// unmerged MIB/SIB1 would silently drop one-shot MSG4s.
	async bool
}

// NewPipeline wraps a scope in an asynchronous pipeline with the given
// worker count and queue depth.
func NewPipeline(scope *Scope, workers, queueDepth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers
	}
	p := &Pipeline{
		scope:   scope,
		workers: workers,
		in:      make(chan *radio.Capture, queueDepth),
		results: make(chan *SlotResult, queueDepth),
		first:   make(chan int, 1),
	}
	p.start()
	return p
}

// start launches the workers and the merging scheduler.
func (p *Pipeline) start() {
	decoded := make(chan *decodeResult, p.workers*2)

	var workerWG sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for cap := range p.in {
				snap := p.snapshotLocked()
				decoded <- p.scope.decodeSlot(snap, cap)
			}
		}()
	}
	go func() {
		workerWG.Wait()
		close(decoded)
	}()

	// Scheduler: merge in slot order using a reordering buffer.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.results)
		pending := make(map[int]*decodeResult)
		next := -1
		flushReady := func() {
			if next == -1 {
				// Submissions are in slot order, and a Submit always
				// precedes its decode result, so the first submitted
				// index is available by the time any result lands.
				select {
				case f := <-p.first:
					next = f
				default:
					return
				}
			}
			for {
				res, ok := pending[next]
				if !ok {
					return
				}
				delete(pending, next)
				p.results <- p.mergeLocked(res)
				next++
			}
		}
		for res := range decoded {
			pending[res.slotIdx] = res
			flushReady()
		}
		// Input closed: drain stragglers in order (gaps allowed).
		var idxs []int
		for idx := range pending {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			p.results <- p.mergeLocked(pending[idx])
		}
	}()
}

// snapshotLocked takes a state snapshot under the pipeline lock.
func (p *Pipeline) snapshotLocked() *snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scope.snapshot()
}

// mergeLocked merges a decode result under the pipeline lock.
func (p *Pipeline) mergeLocked(res *decodeResult) *SlotResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scope.merge(res)
}

// Submit enqueues a capture. It blocks when the queue is full (radio
// back-pressure). Submissions must be in slot order and come from a
// single goroutine.
func (p *Pipeline) Submit(cap *radio.Capture) {
	if !p.async {
		p.mu.Lock()
		acquired := p.scope.CellAcquired()
		p.mu.Unlock()
		if !acquired {
			res := p.scope.decodeSlot(p.snapshotLocked(), cap)
			p.results <- p.mergeLocked(res)
			return
		}
		p.async = true
	}
	p.firstOnce.Do(func() { p.first <- cap.SlotIdx })
	p.in <- cap
}

// Results returns the ordered result stream. It is closed after Close
// once all submitted slots have drained.
func (p *Pipeline) Results() <-chan *SlotResult { return p.results }

// Close stops accepting captures and waits for in-flight slots.
func (p *Pipeline) Close() {
	close(p.in)
	p.wg.Wait()
}
