package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"nrscope/internal/raceflag"
	"nrscope/internal/radio"
)

// stepRaw advances the testbed one TTI and returns the capture without
// decoding it — the producer side of a DecodePool.
func (tb *testbed) stepRaw() *radio.Capture {
	out := tb.gnb.Step()
	return tb.rx.Capture(out.SlotIdx, out.Ref, out.Grid)
}

// slotDigest is the per-slot evidence we compare between a serial scope
// and a pool-driven scope: if these match slot for slot, the pool
// preserved the strict per-cell decode order the one-shot state
// transitions (MIB, SIB1, MSG4) depend on.
type slotDigest struct {
	slotIdx int
	records int
	newUEs  int
	mib     bool
	sib1    bool
}

func digest(res *SlotResult) slotDigest {
	return slotDigest{
		slotIdx: res.SlotIdx,
		records: len(res.Records),
		newUEs:  len(res.NewUEs),
		mib:     res.MIBAcquired,
		sib1:    res.SIB1Acquired,
	}
}

// TestDecodePoolMatchesSerial drives two identical cells — one through
// Scope.ProcessSlot directly, one through a 3-worker DecodePool — and
// requires slot-for-slot identical outcomes across the full acquisition
// sequence (MIB, SIB1, MSG4 discovery) and steady-state traffic.
func TestDecodePoolMatchesSerial(t *testing.T) {
	cfg := amari()
	const slots = 600

	serialTB := newTestbed(t, cfg, 25)
	serialTB.gnb.AddUE(bulk(cfg), -1)
	var want []slotDigest
	for i := 0; i < slots; i++ {
		_, res := serialTB.step()
		want = append(want, digest(res))
	}

	poolTB := newTestbed(t, cfg, 25)
	poolTB.gnb.AddUE(bulk(cfg), -1)
	pool := NewDecodePool(3, 32)
	var mu sync.Mutex
	var got []slotDigest
	if err := pool.AddCell(cfg.CellID, poolTB.scope, func(res *SlotResult) {
		mu.Lock()
		got = append(got, digest(res))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		if !pool.Submit(cfg.CellID, poolTB.stepRaw()) {
			t.Fatalf("Submit rejected at slot %d", i)
		}
	}
	pool.Flush()
	pool.Close()

	if len(got) != len(want) {
		t.Fatalf("pool delivered %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d diverged: pool %+v, serial %+v", i, got[i], want[i])
		}
	}
	sw, pw := serialTB.scope.KnownUEs(), poolTB.scope.KnownUEs()
	if len(sw) != len(pw) {
		t.Fatalf("known UEs diverged: pool %v, serial %v", pw, sw)
	}
	if !poolTB.scope.CellAcquired() || !poolTB.scope.SetupKnown() {
		t.Fatal("pool-driven scope missed cell acquisition or MSG4")
	}
}

// TestDecodePoolConcurrentCells runs several cells through a shared
// pool from concurrent producers, crossing every acquisition transition
// (MIB, SIB1, RRC Setup) while workers steal across cells. Primarily a
// -race exercise; it also checks each cell completed acquisition and
// the pool's accounting closed.
func TestDecodePoolConcurrentCells(t *testing.T) {
	const (
		cells = 3
		slots = 500
	)
	pool := NewDecodePool(4, 16)
	tbs := make([]*testbed, cells)
	ids := make([]uint16, cells)
	var decoded atomic.Int64
	for i := 0; i < cells; i++ {
		cfg := amari()
		cfg.CellID = uint16(100 + i)
		cfg.Seed = int64(7 + i)
		tbs[i] = newTestbed(t, cfg, 25)
		tbs[i].gnb.AddUE(bulk(cfg), -1)
		ids[i] = cfg.CellID
		if err := pool.AddCell(cfg.CellID, tbs[i].scope, func(res *SlotResult) {
			decoded.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for s := 0; s < slots; s++ {
				if !pool.Submit(ids[i], tbs[i].stepRaw()) {
					t.Errorf("cell %d: Submit rejected at slot %d", ids[i], s)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	pool.Close()

	if n := decoded.Load(); n != cells*slots {
		t.Fatalf("decoded %d slots, want %d", n, cells*slots)
	}
	for i, tb := range tbs {
		if !tb.scope.CellAcquired() {
			t.Errorf("cell %d never acquired MIB+SIB1", ids[i])
		}
		if !tb.scope.SetupKnown() {
			t.Errorf("cell %d never saw MSG4", ids[i])
		}
		if len(tb.scope.KnownUEs()) == 0 {
			t.Errorf("cell %d discovered no UEs", ids[i])
		}
	}
}

// TestDecodePoolSubmitAfterClose: a Submit once the pool is closed is
// refused, not deadlocked.
func TestDecodePoolSubmitAfterClose(t *testing.T) {
	cfg := amari()
	tb := newTestbed(t, cfg, 25)
	pool := NewDecodePool(1, 4)
	if err := pool.AddCell(cfg.CellID, tb.scope, nil); err != nil {
		t.Fatal(err)
	}
	if err := pool.Start(); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if pool.Submit(cfg.CellID, tb.stepRaw()) {
		t.Fatal("Submit accepted after Close")
	}
	pool.Close() // idempotent
}

// TestDecodePoolSteadyStateAllocs: the pool machinery (ring, claim,
// doorbell, flush) must add no allocations on top of the decode itself.
// Measured differentially: allocs/slot through the pool minus allocs/
// slot of a bare ProcessSlot on an identically warmed twin cell.
func TestDecodePoolSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates")
	}
	cfg := amari()
	const warm = 600

	serialTB := newTestbed(t, cfg, 25)
	serialTB.gnb.AddUE(bulk(cfg), -1)
	for i := 0; i < warm; i++ {
		serialTB.step()
	}
	scap := serialTB.stepRaw()
	serialTB.scope.ProcessSlot(scap)
	serial := testing.AllocsPerRun(200, func() {
		serialTB.scope.ProcessSlot(scap)
	})

	poolTB := newTestbed(t, cfg, 25)
	poolTB.gnb.AddUE(bulk(cfg), -1)
	pool := NewDecodePool(2, 32)
	if err := pool.AddCell(cfg.CellID, poolTB.scope, nil); err != nil {
		t.Fatal(err)
	}
	if err := pool.Start(); err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < warm; i++ {
		pool.Submit(cfg.CellID, poolTB.stepRaw())
	}
	pool.Flush()
	pcap := poolTB.stepRaw()
	pool.Submit(cfg.CellID, pcap)
	pool.Flush()
	pooled := testing.AllocsPerRun(200, func() {
		pool.Submit(cfg.CellID, pcap)
		pool.Flush()
	})

	// The decode itself allocates (snapshot, result); the pool must not
	// add to it. Allow one alloc of slack for goroutine wakeup noise.
	if pooled > serial+1 {
		t.Fatalf("pool path allocates %.1f/slot vs %.1f/slot serial — pool overhead must be allocation-free",
			pooled, serial)
	}
}
