package core

import (
	"sync"
	"time"

	"nrscope/internal/bits"
	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/pdcch"
	"nrscope/internal/pdsch"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/rrc"
)

// snapshot is the read-only state a decode pass runs against (the
// paper's "state copy" handed from the scheduler to a worker).
type snapshot struct {
	mib        *rrc.MIB
	sib1       *rrc.SIB1
	setup      *rrc.Setup
	coreset    phy.CORESET
	ueCoreset  phy.CORESET
	commonSS   phy.SearchSpace
	ueSS       phy.SearchSpace
	commonCfg  dci.Config
	dataCfg    dci.Config
	link       dci.LinkConfig
	rntis      []uint16
	threads    int
	verifyMSG4 bool
	dmrsGate   bool
}

// foundDCI is one successfully decoded and translated DCI.
type foundDCI struct {
	rnti  uint16
	d     dci.DCI
	grant dci.Grant
	cand  phy.Candidate
}

// newUE is a MSG4 discovery: the RNTI recovered from the CRC XOR.
type newUE struct {
	rnti  uint16
	grant dci.Grant
	cand  phy.Candidate
}

// decodeResult is everything a decode pass found in one slot.
type decodeResult struct {
	slotIdx int
	ref     phy.SlotRef
	hadGrid bool

	mib    *rrc.MIB
	sib1   *rrc.SIB1
	setup  *rrc.Setup
	common []foundDCI
	newUEs []newUE
	data   []foundDCI

	elapsed time.Duration
}

// slotScratch is the reusable working memory of one decodeSlot pass:
// occupancy/claim masks for both CORESETs, the common-search-space
// candidate list, and the position arena. Pooled on the Scope so
// concurrent pipeline workers never share one, and steady-state slots
// allocate nothing for any of it.
type slotScratch struct {
	occupied   []bool
	claimed    []bool
	ueOccupied []bool
	ueClaimed  []bool
	cssCands   []phy.Candidate
	cssBlock   []uint8
	pdschBuf   []byte // SIB1/MSG4 transport-block bytes (pdsch.DecodeInto)
	arena      posArena
}

func (s *Scope) getSlotScratch() *slotScratch {
	if sc, _ := s.slotPool.Get().(*slotScratch); sc != nil {
		return sc
	}
	return &slotScratch{}
}

// ueScratch is one worker's buffers for the per-UE candidate sweep.
type ueScratch struct {
	cands []phy.Candidate
	mine  []phy.Candidate
}

func (s *Scope) getUEScratch() *ueScratch {
	if us, _ := s.uePool.Get().(*ueScratch); us != nil {
		return us
	}
	return &ueScratch{}
}

// boolMask resizes buf to n entries, filled with fill.
func boolMask(buf []bool, n int, fill bool) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// raRNTILookback is how many recent slots' RA-RNTIs are excluded from
// new-UE discovery (a RAR's CRC recovers to the RA-RNTI of its own
// slot; the window absorbs scheduling jitter).
const raRNTILookback = 5

// decodeSlot is the pure (state-immutable) per-slot processing: the
// "SIBs thread", "RACH thread" and "DCI threads" of the paper's Fig. 4
// all run here against the snapshot.
func (s *Scope) decodeSlot(snap *snapshot, cap *radio.Capture) *decodeResult {
	start := time.Now()
	res := &decodeResult{slotIdx: cap.SlotIdx, ref: cap.Ref}
	met.slots.Inc()
	defer func() {
		res.elapsed = time.Since(start)
		met.decodeLatency.Observe(res.elapsed.Seconds())
	}()
	if cap.Grid == nil {
		return res
	}
	res.hadGrid = true

	// Cell search: until the MIB is in hand nothing else can run.
	if snap.mib == nil {
		if data, ok := pdsch.DecodePBCH(cap.Grid, s.cellID, cap.N0); ok {
			if mib, err := rrc.DecodeMIB(data); err == nil && !mib.CellBarred {
				res.mib = &mib
			}
		}
		return res
	}

	sc := s.getSlotScratch()
	defer s.slotPool.Put(sc)

	// One DMRS-correlation sweep over the CORESET feeds both passes —
	// this plus the demapping is the "signal processing" term of the
	// paper's O(n log n + m) cost model. With the gate ablated, every
	// CCE is treated as potentially occupied.
	if snap.dmrsGate {
		sc.occupied = s.codec.OccupiedCCEsInto(sc.occupied, cap.Grid, snap.coreset, cap.Ref.Slot)
	} else {
		sc.occupied = boolMask(sc.occupied, snap.coreset.NumCCE(), true)
	}
	sc.claimed = boolMask(sc.claimed, len(sc.occupied), false)

	// CSS pass: SIB decoding and RACH/new-UE tracking.
	s.decodeCommon(snap, cap, res, sc)

	// USS pass: DCI extraction for every known UE, sharded over the DCI
	// threads (§4: "UE list is sharded among threads"). It needs both
	// SIB1 (the active-BWP DCI sizes) and an RRC Setup (the UE search
	// space) — the paper's step 1 before step 2.
	if snap.sib1 != nil && snap.setup != nil && len(snap.rntis) > 0 {
		s.decodeUESpace(snap, cap, res, sc)
	}
	return res
}

// decodeCommon scans the common search space, filling sc.claimed with
// the CCE-claim mask so the USS pass skips already-explained CCEs.
func (s *Scope) decodeCommon(snap *snapshot, cap *radio.Capture, res *decodeResult, sc *slotScratch) {
	occupied, claimed := sc.occupied, sc.claimed
	fallbackSize := dci.ClassSize(dci.Fallback, snap.commonCfg)

	sc.cssCands = phy.AppendSlotCandidates(sc.cssCands[:0], snap.commonSS, snap.coreset, 0, cap.Ref.Slot)
	for _, cand := range sc.cssCands {
		if !spanTrue(occupied, cand.StartCCE, cand.AggLevel) || anyTrue(claimed, cand.StartCCE, cand.AggLevel) {
			continue
		}
		met.candAttempted.Inc()
		block, err := s.codec.DecodeCandidateInto(sc.cssBlock, cap.Grid, snap.coreset, cand, cap.Ref.Slot, fallbackSize, cap.N0)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		sc.cssBlock = block[:0]
		payload, rnti, ok := bits.RecoverRNTI(block)
		if !ok {
			met.decodeFailed.Inc()
			continue
		}
		met.crntiRecovers.Inc()
		d, err := dci.Unpack(payload, dci.Fallback, snap.commonCfg)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		grant, err := dci.ToGrant(d, rnti, snap.commonCfg, controlLink())
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		// CCEs are claimed only for accepted finds: a RecoverRNTI false
		// positive on top of somebody's data DCI (the 8 visible CRC bits
		// pass by chance 1 in 256) must not shadow the USS pass.

		switch {
		case rnti == dci.SIRNTI:
			met.candMatched.Inc()
			if snap.sib1 == nil && res.sib1 == nil {
				data, ok := pdsch.DecodeInto(sc.pdschBuf, cap.Grid, grant, s.cellID, cap.N0)
				sc.pdschBuf = data
				if ok {
					if sib1, err := rrc.DecodeSIB1(data); err == nil {
						res.sib1 = &sib1
					}
				}
			}
			res.common = append(res.common, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		case isRecentRARNTI(rnti, cap.SlotIdx):
			met.candMatched.Inc()
			res.common = append(res.common, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		default:
			// Candidate MSG 4: the recovered RNTI is a would-be C-RNTI
			// (paper §3.1.2). Verify via the RRC Setup PDSCH CRC unless
			// the shortcut is on and the Setup is already known.
			if snap.setup == nil || snap.verifyMSG4 {
				data, ok := pdsch.DecodeInto(sc.pdschBuf, cap.Grid, grant, s.cellID, cap.N0)
				sc.pdschBuf = data
				if !ok {
					continue
				}
				setup, err := rrc.DecodeSetup(data)
				if err != nil {
					continue
				}
				if snap.setup == nil && res.setup == nil {
					res.setup = &setup
				}
			}
			met.candMatched.Inc()
			met.msg4Hits.Inc()
			res.newUEs = append(res.newUEs, newUE{rnti: rnti, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		}
	}
}

// decodeUESpace blind-decodes every known UE's search-space candidates.
//
// The heavy half of a candidate decode — demapping, descrambling and the
// polar SC pass — does not depend on the RNTI: PDCCH payload scrambling
// uses the cell id (TS 38.211 §7.3.2.3 without a configured UE
// scrambling id), and the RNTI only appears in the CRC mask. So each
// AL-aligned candidate position is decoded once per slot (at most
// sum(NumCCE/AL) positions, independent of the UE count) and the per-UE
// sweep reduces to hash-position lookups and CRC checks. Both halves are
// sharded over the DCI threads (§4): the position pass stripes the
// position list, the per-UE sweep stripes the UE list.
func (s *Scope) decodeUESpace(snap *snapshot, cap *radio.Capture, res *decodeResult, sc *slotScratch) {
	sizeClass := dci.Fallback
	cfg := snap.dataCfg
	if snap.setup.NonFallback {
		sizeClass = dci.NonFallback
	}
	payloadBits := dci.ClassSize(sizeClass, cfg)

	// The occupancy mask was swept over CORESET 0, whose CCE indexing is
	// only valid for the UE CORESET when both cover the same control
	// region. A dedicated UE CORESET elsewhere gets its own sweep, and
	// the CSS claim mask (which addresses CORESET-0 CCEs) does not carry
	// over.
	ueOccupied, ueClaimed := sc.occupied, sc.claimed
	if !snap.ueCoreset.SameRegion(snap.coreset) {
		if snap.dmrsGate {
			sc.ueOccupied = s.codec.OccupiedCCEsInto(sc.ueOccupied, cap.Grid, snap.ueCoreset, cap.Ref.Slot)
		} else {
			sc.ueOccupied = boolMask(sc.ueOccupied, snap.ueCoreset.NumCCE(), true)
		}
		sc.ueClaimed = boolMask(sc.ueClaimed, len(sc.ueOccupied), false)
		ueOccupied, ueClaimed = sc.ueOccupied, sc.ueClaimed
	}

	ar := &sc.arena
	s.decodePositions(snap, cap, payloadBits, ueOccupied, ueClaimed, ar)

	workers := snap.threads
	if workers > len(snap.rntis) {
		workers = len(snap.rntis)
	}
	if workers <= 1 {
		us := s.getUEScratch()
		var out []foundDCI
		for _, rnti := range snap.rntis {
			out = s.decodeOneUE(snap, cap, rnti, sizeClass, cfg, ar, us, out)
		}
		s.uePool.Put(us)
		res.data = out
		return
	}
	found := make([][]foundDCI, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			us := s.getUEScratch()
			var out []foundDCI
			for i := w; i < len(snap.rntis); i += workers {
				rnti := snap.rntis[i]
				out = s.decodeOneUE(snap, cap, rnti, sizeClass, cfg, ar, us, out)
			}
			s.uePool.Put(us)
			found[w] = out
		}(w)
	}
	wg.Wait()
	for _, out := range found {
		res.data = append(res.data, out...)
	}
}

// posArena is the flat, indexed store of the per-slot position cache:
// one fixed-size block slot per AL-aligned candidate position of the UE
// search space, addressed arithmetically by (aggregation level, start
// CCE). It replaces a map[posKey][]uint8 rebuilt every slot; the backing
// arrays persist in the slot scratch, so steady-state slots reuse them
// without allocating, and parallel position workers write disjoint
// entries without coordination.
type posArena struct {
	blockLen int
	counts   [len(phy.AggregationLevels)]int // positions per AL index
	base     [len(phy.AggregationLevels)]int // first entry per AL index
	n        int
	blocks   []uint8 // n * blockLen hard-decision bits
	state    []uint8 // 1 = decoded successfully
	work     []int32 // entry indices scheduled for decoding this slot
}

// reset shapes the arena for a search space, CORESET size and block
// length, recycling the backing arrays.
func (a *posArena) reset(ss phy.SearchSpace, nCCE, blockLen int) {
	a.blockLen = blockLen
	n := 0
	for i, al := range phy.AggregationLevels {
		a.base[i] = n
		a.counts[i] = 0
		if ss.Candidates[al] == 0 || al > nCCE {
			continue
		}
		a.counts[i] = nCCE / al
		n += a.counts[i]
	}
	a.n = n
	if cap(a.blocks) < n*blockLen {
		a.blocks = make([]uint8, n*blockLen)
	}
	a.blocks = a.blocks[:n*blockLen]
	if cap(a.state) < n {
		a.state = make([]uint8, n)
	}
	a.state = a.state[:n]
	for i := range a.state {
		a.state[i] = 0
	}
	a.work = a.work[:0]
}

// posAt recovers the (aggregation level, start CCE) of entry idx.
func (a *posArena) posAt(idx int) (al, cce int) {
	for i := range a.base {
		if a.counts[i] > 0 && idx >= a.base[i] && idx < a.base[i]+a.counts[i] {
			al = phy.AggregationLevels[i]
			return al, (idx - a.base[i]) * al
		}
	}
	return 0, 0
}

// writeBlock returns entry idx's block storage, capacity-capped so a
// decode into it cannot spill into the neighbouring entry.
func (a *posArena) writeBlock(idx int) []uint8 {
	return a.blocks[idx*a.blockLen : idx*a.blockLen : (idx+1)*a.blockLen]
}

// lookup returns the decoded block at (al, cce), if that position was
// decoded successfully this slot.
func (a *posArena) lookup(al, cce int) ([]uint8, bool) {
	i := phy.ALIndex(al)
	if i < 0 || a.counts[i] == 0 || cce%al != 0 {
		return nil, false
	}
	k := cce / al
	if k < 0 || k >= a.counts[i] {
		return nil, false
	}
	idx := a.base[i] + k
	if a.state[idx] != 1 {
		return nil, false
	}
	return a.blocks[idx*a.blockLen : (idx+1)*a.blockLen], true
}

// decodePositions runs the RNTI-independent half of the blind decode for
// every occupied, unclaimed candidate position of the UE search space,
// sharding the position list across the DCI threads. Positions whose
// aggregation level cannot carry the payload at all are counted as empty
// (nothing can be transmitted there), not as decode failures.
func (s *Scope) decodePositions(snap *snapshot, cap *radio.Capture, payloadBits int, occupied, claimed []bool, ar *posArena) {
	nCCE := snap.ueCoreset.NumCCE()
	ar.reset(snap.ueSS, nCCE, payloadBits+24)
	for i, al := range phy.AggregationLevels {
		if ar.counts[i] == 0 {
			continue
		}
		fits := pdcch.PayloadFits(payloadBits, al)
		for cce := 0; cce+al <= nCCE; cce += al {
			if !spanTrue(occupied, cce, al) || anyTrue(claimed, cce, al) {
				continue
			}
			if !fits {
				met.positionsEmpty.Inc()
				continue
			}
			ar.work = append(ar.work, int32(ar.base[i]+cce/al))
		}
	}

	workers := snap.threads
	if workers > len(ar.work) {
		workers = len(ar.work)
	}
	if workers <= 1 {
		for _, idx := range ar.work {
			s.decodePosition(snap, cap, payloadBits, ar, int(idx))
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ar.work); i += workers {
				s.decodePosition(snap, cap, payloadBits, ar, int(ar.work[i]))
			}
		}(w)
	}
	wg.Wait()
}

// decodePosition decodes one candidate position into its arena entry.
// Entries are disjoint, so parallel workers need no locking; the codec's
// own scratch is pooled per call.
func (s *Scope) decodePosition(snap *snapshot, cap *radio.Capture, payloadBits int, ar *posArena, idx int) {
	al, cce := ar.posAt(idx)
	cand := phy.Candidate{AggLevel: al, StartCCE: cce}
	met.positions.Inc()
	if _, err := s.codec.DecodeCandidateInto(ar.writeBlock(idx), cap.Grid, snap.ueCoreset, cand, cap.Ref.Slot, payloadBits, cap.N0); err != nil {
		met.decodeFailed.Inc()
		return
	}
	ar.state[idx] = 1
}

// decodeOneUE sweeps one UE's candidates against the position arena. A
// UE can legitimately receive several DCIs in one TTI (a retransmission
// plus new data, or a downlink assignment plus an uplink grant), so
// every CRC-passing candidate is kept; candidates whose CCEs were
// already explained by a previous hit of this UE are skipped.
func (s *Scope) decodeOneUE(snap *snapshot, cap *radio.Capture, rnti uint16, sizeClass dci.SizeClass, cfg dci.Config, ar *posArena, us *ueScratch, out []foundDCI) []foundDCI {
	us.cands = phy.AppendSlotCandidates(us.cands[:0], snap.ueSS, snap.ueCoreset, rnti, cap.Ref.Slot)
	us.mine = us.mine[:0] // candidates already decoded for this UE
	for _, cand := range us.cands {
		block, ok := ar.lookup(cand.AggLevel, cand.StartCCE)
		if !ok {
			continue
		}
		if overlapsAny(us.mine, cand) {
			continue
		}
		met.candAttempted.Inc()
		if !bits.MatchDCICRC(block, rnti) {
			continue // expected: most candidates belong to other UEs
		}
		d, err := dci.Unpack(block[:len(block)-24], sizeClass, cfg)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		grant, err := dci.ToGrant(d, rnti, cfg, snap.link)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		met.candMatched.Inc()
		us.mine = append(us.mine, cand)
		out = append(out, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
	}
	return out
}

// overlapsAny reports whether cand shares CCEs with any prior hit.
func overlapsAny(prev []phy.Candidate, cand phy.Candidate) bool {
	for _, p := range prev {
		if cand.StartCCE < p.StartCCE+p.AggLevel && p.StartCCE < cand.StartCCE+cand.AggLevel {
			return true
		}
	}
	return false
}

// controlLink mirrors the fallback-format link parameters (single
// layer, 64QAM table) that DCI 1_0 grants always use.
func controlLink() dci.LinkConfig {
	return dci.LinkConfig{DMRSPerPRB: 12, Overhead: 0, Layers: 1, Table: mcs.TableQAM64}
}

func isRecentRARNTI(rnti uint16, slotIdx int) bool {
	for k := 0; k < raRNTILookback; k++ {
		if slotIdx-k < 0 {
			break
		}
		if rnti == dci.RARNTI(slotIdx-k) {
			return true
		}
	}
	return false
}

func spanTrue(mask []bool, start, n int) bool {
	if start < 0 || start+n > len(mask) {
		return false
	}
	for i := start; i < start+n; i++ {
		if !mask[i] {
			return false
		}
	}
	return true
}

func anyTrue(mask []bool, start, n int) bool {
	if start < 0 || start+n > len(mask) {
		return true
	}
	for i := start; i < start+n; i++ {
		if mask[i] {
			return true
		}
	}
	return false
}

func markTrue(mask []bool, start, n int) {
	for i := start; i < start+n && i < len(mask); i++ {
		mask[i] = true
	}
}
