package core

import (
	"sync"
	"time"

	"nrscope/internal/bits"
	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/pdsch"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/rrc"
)

// snapshot is the read-only state a decode pass runs against (the
// paper's "state copy" handed from the scheduler to a worker).
type snapshot struct {
	mib        *rrc.MIB
	sib1       *rrc.SIB1
	setup      *rrc.Setup
	coreset    phy.CORESET
	ueCoreset  phy.CORESET
	commonSS   phy.SearchSpace
	ueSS       phy.SearchSpace
	commonCfg  dci.Config
	dataCfg    dci.Config
	link       dci.LinkConfig
	rntis      []uint16
	threads    int
	verifyMSG4 bool
	dmrsGate   bool
}

// foundDCI is one successfully decoded and translated DCI.
type foundDCI struct {
	rnti  uint16
	d     dci.DCI
	grant dci.Grant
	cand  phy.Candidate
}

// newUE is a MSG4 discovery: the RNTI recovered from the CRC XOR.
type newUE struct {
	rnti  uint16
	grant dci.Grant
	cand  phy.Candidate
}

// decodeResult is everything a decode pass found in one slot.
type decodeResult struct {
	slotIdx int
	ref     phy.SlotRef
	hadGrid bool

	mib    *rrc.MIB
	sib1   *rrc.SIB1
	setup  *rrc.Setup
	common []foundDCI
	newUEs []newUE
	data   []foundDCI

	elapsed time.Duration
}

// raRNTILookback is how many recent slots' RA-RNTIs are excluded from
// new-UE discovery (a RAR's CRC recovers to the RA-RNTI of its own
// slot; the window absorbs scheduling jitter).
const raRNTILookback = 5

// decodeSlot is the pure (state-immutable) per-slot processing: the
// "SIBs thread", "RACH thread" and "DCI threads" of the paper's Fig. 4
// all run here against the snapshot.
func (s *Scope) decodeSlot(snap *snapshot, cap *radio.Capture) *decodeResult {
	start := time.Now()
	res := &decodeResult{slotIdx: cap.SlotIdx, ref: cap.Ref}
	met.slots.Inc()
	defer func() {
		res.elapsed = time.Since(start)
		met.decodeLatency.Observe(res.elapsed.Seconds())
	}()
	if cap.Grid == nil {
		return res
	}
	res.hadGrid = true

	// Cell search: until the MIB is in hand nothing else can run.
	if snap.mib == nil {
		if data, ok := pdsch.DecodePBCH(cap.Grid, s.cellID, cap.N0); ok {
			if mib, err := rrc.DecodeMIB(data); err == nil && !mib.CellBarred {
				res.mib = &mib
			}
		}
		return res
	}

	// One DMRS-correlation sweep over the CORESET feeds both passes —
	// this plus the demapping is the "signal processing" term of the
	// paper's O(n log n + m) cost model. With the gate ablated, every
	// CCE is treated as potentially occupied.
	var occupied []bool
	if snap.dmrsGate {
		occupied = s.codec.OccupiedCCEs(cap.Grid, snap.coreset, cap.Ref.Slot)
	} else {
		occupied = make([]bool, snap.coreset.NumCCE())
		for i := range occupied {
			occupied[i] = true
		}
	}

	// CSS pass: SIB decoding and RACH/new-UE tracking.
	claimed := s.decodeCommon(snap, cap, res, occupied)

	// USS pass: DCI extraction for every known UE, sharded over the DCI
	// threads (§4: "UE list is sharded among threads"). It needs both
	// SIB1 (the active-BWP DCI sizes) and an RRC Setup (the UE search
	// space) — the paper's step 1 before step 2.
	if snap.sib1 != nil && snap.setup != nil && len(snap.rntis) > 0 {
		s.decodeUESpace(snap, cap, res, occupied, claimed)
	}
	return res
}

// decodeCommon scans the common search space. It returns the CCE-claim
// mask so the USS pass skips already-explained CCEs.
func (s *Scope) decodeCommon(snap *snapshot, cap *radio.Capture, res *decodeResult, occupied []bool) []bool {
	claimed := make([]bool, len(occupied))
	fallbackSize := dci.ClassSize(dci.Fallback, snap.commonCfg)

	for _, cand := range phy.SlotCandidates(snap.commonSS, snap.coreset, 0, cap.Ref.Slot) {
		if !spanTrue(occupied, cand.StartCCE, cand.AggLevel) || anyTrue(claimed, cand.StartCCE, cand.AggLevel) {
			continue
		}
		met.candAttempted.Inc()
		block, err := s.codec.DecodeCandidate(cap.Grid, snap.coreset, cand, cap.Ref.Slot, fallbackSize, cap.N0)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		payload, rnti, ok := bits.RecoverRNTI(block)
		if !ok {
			met.decodeFailed.Inc()
			continue
		}
		met.crntiRecovers.Inc()
		d, err := dci.Unpack(payload, dci.Fallback, snap.commonCfg)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		grant, err := dci.ToGrant(d, rnti, snap.commonCfg, controlLink())
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		// CCEs are claimed only for accepted finds: a RecoverRNTI false
		// positive on top of somebody's data DCI (the 8 visible CRC bits
		// pass by chance 1 in 256) must not shadow the USS pass.

		switch {
		case rnti == dci.SIRNTI:
			met.candMatched.Inc()
			if snap.sib1 == nil && res.sib1 == nil {
				if data, ok := pdsch.Decode(cap.Grid, grant, s.cellID, cap.N0); ok {
					if sib1, err := rrc.DecodeSIB1(data); err == nil {
						res.sib1 = &sib1
					}
				}
			}
			res.common = append(res.common, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		case isRecentRARNTI(rnti, cap.SlotIdx):
			met.candMatched.Inc()
			res.common = append(res.common, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		default:
			// Candidate MSG 4: the recovered RNTI is a would-be C-RNTI
			// (paper §3.1.2). Verify via the RRC Setup PDSCH CRC unless
			// the shortcut is on and the Setup is already known.
			if snap.setup == nil || snap.verifyMSG4 {
				data, ok := pdsch.Decode(cap.Grid, grant, s.cellID, cap.N0)
				if !ok {
					continue
				}
				setup, err := rrc.DecodeSetup(data)
				if err != nil {
					continue
				}
				if snap.setup == nil && res.setup == nil {
					res.setup = &setup
				}
			}
			met.candMatched.Inc()
			met.msg4Hits.Inc()
			res.newUEs = append(res.newUEs, newUE{rnti: rnti, grant: grant, cand: cand})
			markTrue(claimed, cand.StartCCE, cand.AggLevel)
		}
	}
	return claimed
}

// decodeUESpace blind-decodes every known UE's search-space candidates.
//
// The heavy half of a candidate decode — demapping, descrambling and the
// polar SC pass — does not depend on the RNTI: PDCCH payload scrambling
// uses the cell id (TS 38.211 §7.3.2.3 without a configured UE
// scrambling id), and the RNTI only appears in the CRC mask. So each
// AL-aligned candidate position is decoded once per slot (at most
// sum(NumCCE/AL) positions, independent of the UE count) and the per-UE
// sweep reduces to hash-position lookups and CRC checks. The remaining
// per-UE work is what the DCI threads shard (§4).
func (s *Scope) decodeUESpace(snap *snapshot, cap *radio.Capture, res *decodeResult, occupied, claimed []bool) {
	sizeClass := dci.Fallback
	cfg := snap.dataCfg
	if snap.setup.NonFallback {
		sizeClass = dci.NonFallback
	}
	payloadBits := dci.ClassSize(sizeClass, cfg)
	cache := s.decodePositions(snap, cap, payloadBits, occupied, claimed)

	workers := snap.threads
	if workers > len(snap.rntis) {
		workers = len(snap.rntis)
	}
	if workers <= 1 {
		var out []foundDCI
		for _, rnti := range snap.rntis {
			out = s.decodeOneUE(snap, cap, rnti, sizeClass, cfg, cache, out)
		}
		res.data = out
		return
	}
	found := make([][]foundDCI, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []foundDCI
			for i := w; i < len(snap.rntis); i += workers {
				rnti := snap.rntis[i]
				out = s.decodeOneUE(snap, cap, rnti, sizeClass, cfg, cache, out)
			}
			found[w] = out
		}(w)
	}
	wg.Wait()
	for _, out := range found {
		res.data = append(res.data, out...)
	}
}

// posKey identifies an AL-aligned candidate position.
type posKey struct {
	al  int
	cce int
}

// decodePositions runs the RNTI-independent half of the blind decode for
// every occupied, unclaimed candidate position of the UE search space.
func (s *Scope) decodePositions(snap *snapshot, cap *radio.Capture, payloadBits int, occupied, claimed []bool) map[posKey][]uint8 {
	cache := make(map[posKey][]uint8)
	for _, al := range phy.AggregationLevels {
		if snap.ueSS.Candidates[al] == 0 {
			continue
		}
		for cce := 0; cce+al <= snap.ueCoreset.NumCCE(); cce += al {
			if !spanTrue(occupied, cce, al) || anyTrue(claimed, cce, al) {
				continue
			}
			cand := phy.Candidate{AggLevel: al, StartCCE: cce}
			met.positions.Inc()
			block, err := s.codec.DecodeCandidate(cap.Grid, snap.ueCoreset, cand, cap.Ref.Slot, payloadBits, cap.N0)
			if err != nil {
				met.decodeFailed.Inc()
				continue
			}
			cache[posKey{al, cce}] = block
		}
	}
	return cache
}

// decodeOneUE sweeps one UE's candidates against the position cache. A
// UE can legitimately receive several DCIs in one TTI (a retransmission
// plus new data, or a downlink assignment plus an uplink grant), so
// every CRC-passing candidate is kept; candidates whose CCEs were
// already explained by a previous hit of this UE are skipped.
func (s *Scope) decodeOneUE(snap *snapshot, cap *radio.Capture, rnti uint16, sizeClass dci.SizeClass, cfg dci.Config, cache map[posKey][]uint8, out []foundDCI) []foundDCI {
	var mine []phy.Candidate // candidates already decoded for this UE
	for _, cand := range phy.SlotCandidates(snap.ueSS, snap.ueCoreset, rnti, cap.Ref.Slot) {
		block, ok := cache[posKey{cand.AggLevel, cand.StartCCE}]
		if !ok {
			continue
		}
		if overlapsAny(mine, cand) {
			continue
		}
		met.candAttempted.Inc()
		payload, ok := bits.CheckDCICRC(block, rnti)
		if !ok {
			continue // expected: most candidates belong to other UEs
		}
		d, err := dci.Unpack(payload, sizeClass, cfg)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		grant, err := dci.ToGrant(d, rnti, cfg, snap.link)
		if err != nil {
			met.decodeFailed.Inc()
			continue
		}
		met.candMatched.Inc()
		mine = append(mine, cand)
		out = append(out, foundDCI{rnti: rnti, d: d, grant: grant, cand: cand})
	}
	return out
}

// overlapsAny reports whether cand shares CCEs with any prior hit.
func overlapsAny(prev []phy.Candidate, cand phy.Candidate) bool {
	for _, p := range prev {
		if cand.StartCCE < p.StartCCE+p.AggLevel && p.StartCCE < cand.StartCCE+cand.AggLevel {
			return true
		}
	}
	return false
}

// controlLink mirrors the fallback-format link parameters (single
// layer, 64QAM table) that DCI 1_0 grants always use.
func controlLink() dci.LinkConfig {
	return dci.LinkConfig{DMRSPerPRB: 12, Overhead: 0, Layers: 1, Table: mcs.TableQAM64}
}

func isRecentRARNTI(rnti uint16, slotIdx int) bool {
	for k := 0; k < raRNTILookback; k++ {
		if slotIdx-k < 0 {
			break
		}
		if rnti == dci.RARNTI(slotIdx-k) {
			return true
		}
	}
	return false
}

func spanTrue(mask []bool, start, n int) bool {
	if start < 0 || start+n > len(mask) {
		return false
	}
	for i := start; i < start+n; i++ {
		if !mask[i] {
			return false
		}
	}
	return true
}

func anyTrue(mask []bool, start, n int) bool {
	if start < 0 || start+n > len(mask) {
		return true
	}
	for i := start; i < start+n; i++ {
		if mask[i] {
			return true
		}
	}
	return false
}

func markTrue(mask []bool, start, n int) {
	for i := start; i < start+n && i < len(mask); i++ {
		mask[i] = true
	}
}
