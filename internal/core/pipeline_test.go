package core

import (
	"testing"

	"nrscope/internal/channel"
	"nrscope/internal/radio"
	"nrscope/internal/ran"
)

func TestPipelineCloseWithoutSubmissions(t *testing.T) {
	p := NewPipeline(New(1), 2, 8)
	p.Close()
	if _, open := <-p.Results(); open {
		t.Error("results channel not closed after Close")
	}
}

func TestPipelineOrderedResults(t *testing.T) {
	cfg := ran.AmarisoftCell()
	cfg.Seed = 31
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gnb.AddUE(nil, -1)
	rx := radio.NewReceiver(channel.Normal, 25, 1)
	p := NewPipeline(New(cfg.CellID), 4, 32)
	const slots = 400
	done := make(chan []int)
	go func() {
		var order []int
		for res := range p.Results() {
			order = append(order, res.SlotIdx)
		}
		done <- order
	}()
	for i := 0; i < slots; i++ {
		out := gnb.Step()
		p.Submit(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
	p.Close()
	order := <-done
	if len(order) != slots {
		t.Fatalf("got %d results, want %d", len(order), slots)
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("results out of order at %d: %d after %d", i, order[i], order[i-1])
		}
	}
}

func TestPipelineAcquiresCellAndUEs(t *testing.T) {
	cfg := ran.AmarisoftCell()
	cfg.Seed = 33
	gnb, err := ran.NewGNB(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gnb.AddUE(nil, -1)
	rx := radio.NewReceiver(channel.Normal, 25, 2)
	scope := New(cfg.CellID)
	p := NewPipeline(scope, 3, 16)
	done := make(chan int)
	go func() {
		newUEs := 0
		for res := range p.Results() {
			newUEs += len(res.NewUEs)
		}
		done <- newUEs
	}()
	for i := 0; i < 800; i++ {
		out := gnb.Step()
		p.Submit(rx.Capture(out.SlotIdx, out.Ref, out.Grid))
	}
	p.Close()
	if newUEs := <-done; newUEs != 1 {
		t.Errorf("pipeline discovered %d UEs, want 1", newUEs)
	}
	if !scope.CellAcquired() {
		t.Error("pipeline never acquired the cell")
	}
}
