// Package core is NR-Scope itself — the paper's primary contribution: a
// passive 5G Standalone telemetry engine that, from received slot grids
// alone, (1) acquires the cell configuration from MIB and SIB1, (2)
// tracks UE associations by recovering C-RNTIs from MSG 4 DCIs via the
// CRC-XOR trick, and (3) blind-decodes every PDCCH candidate of every
// known UE in every TTI, translating DCIs into grants, transport block
// sizes, throughput, HARQ retransmissions and spare-capacity telemetry.
//
// The processing pipeline mirrors the paper's Fig. 4: a synchronous
// ProcessSlot for exact in-order evaluation, and a Pipeline (see
// pipeline.go) with a scheduler, a worker pool, and per-worker SIB/RACH/
// DCI tasks for asynchronous, multi-core operation.
package core

import (
	"fmt"
	"sync"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/dci"
	"nrscope/internal/harq"
	"nrscope/internal/mcs"
	"nrscope/internal/pdcch"
	"nrscope/internal/phy"
	"nrscope/internal/radio"
	"nrscope/internal/rrc"
	"nrscope/internal/telemetry"
)

// Option configures a Scope.
type Option func(*Scope)

// WithDCIThreads sets how many goroutines shard the UE list during DCI
// extraction (the paper's "DCI threads", §4). Default 1.
func WithDCIThreads(n int) Option {
	return func(s *Scope) {
		if n > 0 {
			s.dciThreads = n
		}
	}
}

// WithVerifyMSG4 controls whether a new-UE candidate's RRC Setup PDSCH
// is decoded and CRC-verified before admitting the UE. The paper's
// shortcut (§3.1.2) skips this after the first UE; verification costs
// 1-2 ms per RACH but rejects ghost UEs. Default: verify.
func WithVerifyMSG4(v bool) Option {
	return func(s *Scope) { s.verifyMSG4 = v }
}

// WithInactivityTimeout drops UEs unseen for the given number of slots
// (they left the RAN; their C-RNTI may be reassigned). Default 20000.
func WithInactivityTimeout(slots int) Option {
	return func(s *Scope) {
		if slots > 0 {
			s.inactivitySlots = slots
		}
	}
}

// WithIdleHorizon expresses UE inactivity eviction as a wall-clock
// duration instead of slots: once the numerology is known the horizon
// converts to an inactivity timeout, so live scope, fusion, and history
// can share one eviction knob. Overrides WithInactivityTimeout.
func WithIdleHorizon(d time.Duration) Option {
	return func(s *Scope) {
		if d > 0 {
			s.idleHorizon = d
		}
	}
}

// WithThroughputWindow sets the sliding window of the bitrate estimator.
// Default 100 ms.
func WithThroughputWindow(d time.Duration) Option {
	return func(s *Scope) { s.window = d }
}

// WithDMRSGate toggles the DMRS-correlation occupancy gate that lets the
// blind decoder skip candidates with no transmission. On by default;
// turning it off decodes every candidate of every UE in every slot (the
// brute-force baseline the gate is measured against).
func WithDMRSGate(on bool) Option {
	return func(s *Scope) { s.dmrsGate = on }
}

// WithBus attaches a telemetry distribution bus: every record the scope
// emits (through ProcessSlot or the async Pipeline — both converge on
// merge) is also published onto b, fanning out to the bus's sinks under
// their own queues and backpressure policies.
func WithBus(b *bus.Bus) Option {
	return func(s *Scope) { s.bus = b }
}

// WithManualCellInfo preloads the cell configuration instead of decoding
// it off the air — the paper's §3.1.1 NSA mode, where the 5G cell's
// system information is delivered encrypted via the LTE anchor and
// NR-Scope "requires manual input of 5G cell information". The scope
// skips MIB/SIB1 acquisition and goes straight to UE tracking.
func WithManualCellInfo(mib rrc.MIB, sib1 rrc.SIB1) Option {
	return func(s *Scope) {
		m, s1 := mib, sib1
		s.mib = &m
		s.coreset = m.Coreset0()
		s.commonSS = phy.SearchSpace{ID: 0, Type: phy.CommonSearchSpace, Candidates: phy.DefaultCommonCandidates()}
		s.commonCfg = dci.Config{BWPPRBs: s.coreset.NumPRB, TimeAllocRows: len(phy.DefaultTimeAllocTable), MaxHARQ: 16}
		s.sib1 = &s1
		s.dataCfg = dci.Config{BWPPRBs: s1.CarrierPRBs, TimeAllocRows: s1.TimeAllocRows, MaxHARQ: 16}
		s.estimator = telemetry.NewWindowEstimator(s.window, m.Mu.SlotDuration())
	}
}

// UETrack is the scope's per-UE state.
type UETrack struct {
	RNTI      uint16
	FirstSeen int // slot index of the MSG4 discovery
	LastSeen  int // slot index of the last decoded DCI

	DL *harq.Tracker
	UL *harq.Tracker

	lastMCS    mcs.Entry
	haveMCS    bool
	lastLayers int
}

// UEActivity summarises a UE session after it aged out (Fig. 10 data).
type UEActivity struct {
	RNTI      uint16
	FirstSeen int
	LastSeen  int
}

// ActiveSlots returns the session length in slots.
func (a UEActivity) ActiveSlots() int { return a.LastSeen - a.FirstSeen + 1 }

// SlotResult is the outcome of processing one capture.
type SlotResult struct {
	SlotIdx int
	Ref     phy.SlotRef

	MIBAcquired  bool // MIB decoded in this slot
	SIB1Acquired bool // SIB1 decoded in this slot
	NewUEs       []uint16

	Records []telemetry.Record
	Spare   *telemetry.SpareCapacity

	// Elapsed is the signal-processing + DCI-decoding time of the slot
	// (the quantity of the paper's Fig. 12).
	Elapsed time.Duration
}

// Scope is the NR-Scope telemetry engine for one cell.
type Scope struct {
	cellID uint16
	codec  *pdcch.Codec

	dciThreads      int
	verifyMSG4      bool
	dmrsGate        bool
	inactivitySlots int
	idleHorizon     time.Duration // optional wall-clock form of the above
	window          time.Duration

	// Acquired cell state.
	mib       *rrc.MIB
	sib1      *rrc.SIB1
	setup     *rrc.Setup
	coreset   phy.CORESET // CORESET 0, from the MIB
	ueCoreset phy.CORESET // UE CORESET, from the RRC Setup (MSG 4)
	commonSS  phy.SearchSpace
	ueSS      phy.SearchSpace
	commonCfg dci.Config
	dataCfg   dci.Config
	link      dci.LinkConfig

	ues       map[uint16]*UETrack
	rntis     []uint16 // stable order for sharding
	estimator *telemetry.WindowEstimator
	departed  []UEActivity
	lastPurge int

	// Decode-path scratch pools: per-slot working memory (masks, the
	// position arena) and per-worker UE-sweep buffers. Pooled rather
	// than owned so concurrent pipeline workers never contend on them.
	slotPool sync.Pool // *slotScratch
	uePool   sync.Pool // *ueScratch

	bus *bus.Bus // optional telemetry distribution bus
}

// New creates a scope tuned to the physical cell id (obtained from the
// PSS/SSS during cell search, which the symbol-level simulation
// abstracts away — DESIGN.md §2).
func New(cellID uint16, opts ...Option) *Scope {
	s := &Scope{
		cellID:          cellID,
		codec:           pdcch.New(cellID),
		dciThreads:      1,
		verifyMSG4:      true,
		dmrsGate:        true,
		inactivitySlots: 20000,
		window:          100 * time.Millisecond,
		ues:             make(map[uint16]*UETrack),
	}
	for _, o := range opts {
		o(s)
	}
	if s.mib != nil {
		s.applyIdleHorizon()
	}
	return s
}

// applyIdleHorizon converts the wall-clock eviction horizon into slots
// once the numerology (and so the TTI) is known.
func (s *Scope) applyIdleHorizon() {
	if s.idleHorizon <= 0 || s.mib == nil {
		return
	}
	if slots := int(s.idleHorizon / s.mib.Mu.SlotDuration()); slots > 0 {
		s.inactivitySlots = slots
	}
}

// CellAcquired reports whether MIB and SIB1 are both decoded.
func (s *Scope) CellAcquired() bool { return s.mib != nil && s.sib1 != nil }

// SetupKnown reports whether the UE-dedicated configuration was learned.
func (s *Scope) SetupKnown() bool { return s.setup != nil }

// MIB returns the acquired MIB (nil before acquisition).
func (s *Scope) MIB() *rrc.MIB { return s.mib }

// SIB1 returns the acquired SIB1 (nil before acquisition).
func (s *Scope) SIB1() *rrc.SIB1 { return s.sib1 }

// KnownUEs returns the currently tracked C-RNTIs.
func (s *Scope) KnownUEs() []uint16 {
	out := make([]uint16, len(s.rntis))
	copy(out, s.rntis)
	return out
}

// Track returns a UE's tracking state (nil if unknown).
func (s *Scope) Track(rnti uint16) *UETrack { return s.ues[rnti] }

// DepartedUEs returns the sessions that aged out so far (plus, for
// convenience, nothing else — live sessions are in KnownUEs).
func (s *Scope) DepartedUEs() []UEActivity {
	out := make([]UEActivity, len(s.departed))
	copy(out, s.departed)
	return out
}

// Bitrate returns the current windowed throughput estimate in bits/s for
// one direction of a UE (paper §3.2.2), evaluated at nowSlot.
func (s *Scope) Bitrate(rnti uint16, downlink bool, nowSlot int) float64 {
	if s.estimator == nil {
		return 0
	}
	return s.estimator.Bitrate(rnti, downlink, nowSlot)
}

// ProcessSlot runs the full per-TTI processing synchronously: decode
// against the current state, then merge the findings into the state.
func (s *Scope) ProcessSlot(cap *radio.Capture) *SlotResult {
	res := s.decodeSlot(s.snapshot(), cap)
	return s.merge(res)
}

// snapshot captures the read-only state a decode pass needs; the worker
// pool hands snapshots to workers exactly as the paper's scheduler
// copies its state (known UE list, cell configuration) to idle workers.
func (s *Scope) snapshot() *snapshot {
	snap := &snapshot{
		mib:        s.mib,
		sib1:       s.sib1,
		setup:      s.setup,
		coreset:    s.coreset,
		ueCoreset:  s.ueCoreset,
		commonSS:   s.commonSS,
		ueSS:       s.ueSS,
		commonCfg:  s.commonCfg,
		dataCfg:    s.dataCfg,
		link:       s.link,
		threads:    s.dciThreads,
		verifyMSG4: s.verifyMSG4,
		dmrsGate:   s.dmrsGate,
	}
	snap.rntis = make([]uint16, len(s.rntis))
	copy(snap.rntis, s.rntis)
	return snap
}

// merge applies a decode result to the scope state, in slot order.
func (s *Scope) merge(res *decodeResult) *SlotResult {
	out := &SlotResult{SlotIdx: res.slotIdx, Ref: res.ref, Elapsed: res.elapsed}

	if res.mib != nil && s.mib == nil {
		s.mib = res.mib
		s.coreset = res.mib.Coreset0()
		s.commonSS = phy.SearchSpace{ID: 0, Type: phy.CommonSearchSpace, Candidates: phy.DefaultCommonCandidates()}
		s.commonCfg = dci.Config{BWPPRBs: s.coreset.NumPRB, TimeAllocRows: len(phy.DefaultTimeAllocTable), MaxHARQ: 16}
		out.MIBAcquired = true
		met.mibAcquired.Inc()
		s.applyIdleHorizon()
	}
	if res.sib1 != nil && s.sib1 == nil {
		s.sib1 = res.sib1
		s.dataCfg = dci.Config{BWPPRBs: res.sib1.CarrierPRBs, TimeAllocRows: res.sib1.TimeAllocRows, MaxHARQ: 16}
		s.estimator = telemetry.NewWindowEstimator(s.window, s.mib.Mu.SlotDuration())
		out.SIB1Acquired = true
		met.sib1Acquired.Inc()
	}
	if res.setup != nil && s.setup == nil {
		s.setup = res.setup
		// "From MSG 4, we also get the CORESET position, DCI aggregation
		// level, and the correct format of DCI" (§3.1.2).
		s.ueCoreset = res.setup.CORESET
		s.ueSS = phy.SearchSpace{ID: res.setup.CORESET.ID, Type: phy.UESearchSpace, Candidates: res.setup.UECandidates}
		s.link = res.setup.LinkConfig()
	}

	for _, nu := range res.newUEs {
		if _, known := s.ues[nu.rnti]; known {
			continue
		}
		s.ues[nu.rnti] = &UETrack{
			RNTI: nu.rnti, FirstSeen: res.slotIdx, LastSeen: res.slotIdx,
			DL: harq.NewTracker(), UL: harq.NewTracker(),
		}
		s.rntis = append(s.rntis, nu.rnti)
		out.NewUEs = append(out.NewUEs, nu.rnti)
		rec := telemetry.FromGrant(res.slotIdx, res.ref, nu.grant, false)
		rec.NewUE = true
		rec.Common = true
		rec.AggLevel = nu.cand.AggLevel
		rec.StartCCE = nu.cand.StartCCE
		out.Records = append(out.Records, rec)
	}

	for _, f := range res.common {
		rec := telemetry.FromGrant(res.slotIdx, res.ref, f.grant, false)
		rec.Common = true
		rec.AggLevel = f.cand.AggLevel
		rec.StartCCE = f.cand.StartCCE
		out.Records = append(out.Records, rec)
	}

	usedREs := 0
	for _, f := range res.common {
		usedREs += f.grant.NRE
	}
	for _, nu := range res.newUEs {
		usedREs += nu.grant.NRE
	}
	for _, f := range res.data {
		track := s.ues[f.rnti]
		if track == nil {
			met.mergeDropped.Inc()
			continue // aged out between decode and merge
		}
		track.LastSeen = res.slotIdx
		tracker := track.UL
		if f.grant.Downlink {
			tracker = track.DL
		}
		retx := tracker.Observe(f.grant.HARQID, f.grant.NDI)
		if f.grant.Downlink {
			if e, err := f.grant.Table.Lookup(f.grant.MCSIndex); err == nil {
				track.lastMCS = e
				track.haveMCS = true
				track.lastLayers = f.grant.Layers
			}
			usedREs += f.grant.NRE
		}
		rec := telemetry.FromGrant(res.slotIdx, res.ref, f.grant, retx)
		rec.AggLevel = f.cand.AggLevel
		rec.StartCCE = f.cand.StartCCE
		if s.estimator != nil {
			s.estimator.Add(rec)
		}
		out.Records = append(out.Records, rec)
	}

	if s.sib1 != nil && res.hadGrid && s.sib1.TDD.HasDownlinkData(res.slotIdx) {
		out.Spare = s.spareCapacity(res.slotIdx, usedREs)
	}

	if s.mib != nil {
		// Stamp slot time in ms on every outgoing record, so history
		// bins and external JSON consumers share one time base.
		ttiMS := s.mib.Mu.SlotDuration().Seconds() * 1e3
		for i := range out.Records {
			out.Records[i].TMs = float64(out.Records[i].SlotIdx) * ttiMS
		}
	}
	s.purgeInactive(res.slotIdx)
	met.uesTracked.Set(int64(len(s.ues)))
	if s.bus != nil {
		for _, rec := range out.Records {
			_ = s.bus.Publish(rec) // closed bus: records still in out
		}
	}
	return out
}

// spareCapacity computes the §5.4.1 fair-share split for this TTI.
func (s *Scope) spareCapacity(slotIdx, usedREs int) *telemetry.SpareCapacity {
	// Data region: symbols 2..13 across the carrier (the control region
	// and its PDSCH share were accounted as used by their own grants).
	dataSymbols := phy.DefaultTimeAllocTable[0].NumSymbols
	total := s.sib1.CarrierPRBs * phy.SubcarriersPerPRB * dataSymbols
	active := make(map[uint16]telemetry.UELinkState)
	for rnti, track := range s.ues {
		if !track.haveMCS || slotIdx-track.LastSeen > s.estimatorWindowSlots() {
			continue
		}
		active[rnti] = telemetry.UELinkState{Entry: track.lastMCS, Layers: track.lastLayers}
	}
	sc := telemetry.ComputeSpare(total, usedREs, active)
	return &sc
}

func (s *Scope) estimatorWindowSlots() int {
	if s.estimator == nil {
		return 200
	}
	return s.estimator.WindowSlots()
}

// WindowSlots reports the throughput estimator's window length in TTIs.
func (s *Scope) WindowSlots() int { return s.estimatorWindowSlots() }

// purgeInactive ages out silent UEs (they left the RAN; Fig. 10 measures
// exactly these session lengths).
func (s *Scope) purgeInactive(slotIdx int) {
	if slotIdx-s.lastPurge < 200 {
		return
	}
	s.lastPurge = slotIdx
	kept := s.rntis[:0]
	for _, rnti := range s.rntis {
		track := s.ues[rnti]
		if slotIdx-track.LastSeen > s.inactivitySlots {
			s.departed = append(s.departed, UEActivity{RNTI: rnti, FirstSeen: track.FirstSeen, LastSeen: track.LastSeen})
			delete(s.ues, rnti)
			if s.estimator != nil {
				// The C-RNTI may be reassigned; its flow windows must
				// not survive the session (unbounded growth otherwise).
				s.estimator.Remove(rnti)
			}
			continue
		}
		kept = append(kept, rnti)
	}
	s.rntis = kept
}

// String summarises scope state.
func (s *Scope) String() string {
	return fmt.Sprintf("scope{cell=%d mib=%v sib1=%v setup=%v ues=%d}",
		s.cellID, s.mib != nil, s.sib1 != nil, s.setup != nil, len(s.ues))
}
