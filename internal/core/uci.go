package core

import (
	"time"

	"nrscope/internal/pucch"
	"nrscope/internal/radio"
)

// UCIReport is one uplink control report decoded off the air — the
// paper's §7 "UCI decoding" future-work output: scheduling requests and
// CQI from the uplink channel, useful for uplink scheduling analysis.
type UCIReport struct {
	SlotIdx int
	RNTI    uint16
	UCI     pucch.UCI
}

// UplinkResult is the outcome of processing one uplink-carrier capture.
type UplinkResult struct {
	SlotIdx int
	Reports []UCIReport
	Elapsed time.Duration
}

// ProcessUplinkSlot decodes the PUCCH resources of every tracked UE from
// an uplink-carrier capture. It requires the UE list built by the
// downlink pipeline (UCI is scrambled per-RNTI, so only C-RNTIs learned
// from MSG 4 are readable) and does not mutate tracking state.
func (s *Scope) ProcessUplinkSlot(cap *radio.Capture) *UplinkResult {
	start := time.Now()
	res := &UplinkResult{SlotIdx: cap.SlotIdx}
	defer func() { res.Elapsed = time.Since(start) }()
	if cap.Grid == nil || len(s.rntis) == 0 {
		return res
	}
	for _, rnti := range s.rntis {
		if uci, ok := pucch.Decode(cap.Grid, rnti, s.cellID, cap.N0); ok {
			res.Reports = append(res.Reports, UCIReport{SlotIdx: cap.SlotIdx, RNTI: rnti, UCI: uci})
		}
	}
	return res
}
