package ran

import (
	"math"
	"math/rand"
	"time"

	"nrscope/internal/channel"
	"nrscope/internal/harq"
	"nrscope/internal/sched"
	"nrscope/internal/traffic"
)

// connState tracks a UE through the RACH procedure of the paper's Fig. 2.
type connState int

const (
	stateWaitPRACH connState = iota // waiting for a PRACH occasion (MSG 1)
	stateWaitMSG2                   // preamble sent, RAR pending
	stateWaitMSG3                   // RAR received, MSG 3 PUSCH pending
	stateWaitMSG4                   // MSG 3 sent, RRC Setup pending
	stateConnected
	stateDeparted
)

// inflightTB is a transport block awaiting HARQ completion.
type inflightTB struct {
	tbs          int // bits
	payloadBytes int // actual MAC SDU bytes inside (rest is padding)
	mcsIdx       int
	nprb         int
	ndi          uint8
	attempts     int
	downlink     bool
}

// macOverheadBytes approximates the MAC/RLC header per transport block.
const macOverheadBytes = 3

// UE is one simulated device attached (or attaching) to the cell.
type UE struct {
	RNTI uint16 // TC-RNTI during RACH, promoted to C-RNTI at MSG4

	ch      *channel.Channel
	cqi     int
	cqiAge  int
	lastSNR float64

	dlGen traffic.Generator
	ulGen traffic.Generator

	dlQueueBits int
	ulQueueBits int

	harqDL *harq.Entity
	harqUL *harq.Entity

	inflight map[int]*inflightTB // key: harq id (DL); UL keys offset by 100
	retxDue  map[int][]sched.RetxRequest

	// Ledger is the tcpdump substitute recording delivered DL bytes.
	Ledger *traffic.Ledger

	state        connState
	arriveSlot   int
	connectSlot  int
	departSlot   int // slot at which the UE leaves (-1 = never)
	msgDue       int // slot of the next RACH step
	lastActivity int

	// Pending uplink control (sent on the next UL-capable slot).
	cqiDue      bool
	pendingAcks []pendingAck
}

// pendingAck is HARQ feedback awaiting its PUCCH occasion.
type pendingAck struct {
	harqID int
	ack    bool
	due    int
}

// Connected reports whether the UE completed RACH.
func (u *UE) Connected() bool { return u.state == stateConnected }

// Departed reports whether the UE left the cell.
func (u *UE) Departed() bool { return u.state == stateDeparted }

// CQI returns the UE's latest channel quality report.
func (u *UE) CQI() int { return u.cqi }

// ArriveSlot returns the slot the UE entered the population.
func (u *UE) ArriveSlot() int { return u.arriveSlot }

// ConnectSlot returns the slot the UE finished RACH (0 if not yet).
func (u *UE) ConnectSlot() int { return u.connectSlot }

// LastActivity returns the last slot the gNB scheduled this UE.
func (u *UE) LastActivity() int { return u.lastActivity }

// DLQueueBits returns the current downlink queue depth.
func (u *UE) DLQueueBits() int { return u.dlQueueBits }

// cqiPeriodSlots is the periodic CQI reporting interval. The staleness
// between reports is exactly why fast-fading channels (Vehicle, Urban)
// draw retransmissions: the scheduler acts on an SNR the channel has
// already left (Fig. 15).
const cqiPeriodSlots = 8

// stepChannel advances the UE's fading process one TTI; the CQI report
// refreshes only on its periodic occasions.
func (u *UE) stepChannel() float64 {
	snr := u.ch.NextSlot()
	u.lastSNR = snr
	u.cqiAge++
	if u.cqi == 0 || u.cqiAge >= cqiPeriodSlots {
		u.cqi = channel.CQI(snr)
		u.cqiAge = 0
		u.cqiDue = true // report on the next PUCCH occasion
	}
	return snr
}

// pullTraffic moves newly arrived bytes into the queues.
func (u *UE) pullTraffic() {
	if u.dlGen != nil {
		u.dlQueueBits += 8 * u.dlGen.NextSlot()
	}
	if u.ulGen != nil {
		u.ulQueueBits += 8 * u.ulGen.NextSlot()
	}
}

// UEFactory builds the traffic and channel for a new UE.
type UEFactory func(rnti uint16, seed int64) (dl, ul traffic.Generator, ch *channel.Channel)

// DefaultUEFactory attaches a video-like downlink and light uplink to a
// Normal channel at the cell's base SNR.
func DefaultUEFactory(cfg CellConfig) UEFactory {
	return func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		tti := cfg.TTI()
		dl := traffic.NewVideo(30, 15000, 0.2, tti, seed)
		ul := traffic.NewCBR(200e3, tti)
		ch := channel.New(channel.Normal, cfg.BaseSNRdB, seed^0x5EED)
		return dl, ul, ch
	}
}

// Population generates UE churn: Poisson arrivals with heavy-tailed
// session durations, calibrated to the paper's Fig. 10 finding that
// ~90% of UEs stay under 35 s.
type Population struct {
	// ArrivalsPerSecond is the Poisson arrival rate.
	ArrivalsPerSecond float64
	// MedianSessionSeconds and SessionSigma parameterise the log-normal
	// session duration.
	MedianSessionSeconds float64
	SessionSigma         float64
	// MaxUEs caps concurrent UEs (RAN admission control).
	MaxUEs int
	// Factory customises per-UE traffic/channel; nil uses the default.
	Factory UEFactory
}

// DefaultPopulation mirrors a busy commercial cell (Fig. 10 cell 1).
func DefaultPopulation() Population {
	return Population{
		ArrivalsPerSecond:    1.0,
		MedianSessionSeconds: 6,
		SessionSigma:         1.3,
		MaxUEs:               128,
	}
}

// sampleSessionSlots draws a session duration in slots.
func (p Population) sampleSessionSlots(rng *rand.Rand, tti time.Duration) int {
	d := p.MedianSessionSeconds * math.Exp(p.SessionSigma*rng.NormFloat64())
	slots := int(d / tti.Seconds())
	if slots < 2 {
		slots = 2
	}
	return slots
}

// arrivalsThisSlot draws the Poisson arrival count for one TTI.
func (p Population) arrivalsThisSlot(rng *rand.Rand, tti time.Duration) int {
	lambda := p.ArrivalsPerSecond * tti.Seconds()
	// Knuth's method is fine at these tiny lambdas.
	l := math.Exp(-lambda)
	k := 0
	acc := 1.0
	for {
		acc *= rng.Float64()
		if acc <= l {
			return k
		}
		k++
		if k > 16 {
			return k
		}
	}
}
