package ran

import (
	"testing"
	"time"

	"nrscope/internal/bits"
	"nrscope/internal/channel"
	"nrscope/internal/dci"
	"nrscope/internal/pdcch"
	"nrscope/internal/phy"
	"nrscope/internal/rrc"
	"nrscope/internal/traffic"
)

func testCell() CellConfig {
	c := AmarisoftCell()
	c.Seed = 42
	return c
}

func bulkFactory(cfg CellConfig) UEFactory {
	return func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(4000), traffic.NewCBR(100e3, cfg.TTI()),
			channel.New(channel.Normal, cfg.BaseSNRdB, seed)
	}
}

// run steps the gNB n slots and returns all outputs.
func run(t *testing.T, g *GNB, n int) []*SlotOutput {
	t.Helper()
	out := make([]*SlotOutput, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Step())
	}
	return out
}

func TestCellPresetsValid(t *testing.T) {
	for _, cfg := range []CellConfig{SrsRANCell(), MosolabCell(), AmarisoftCell(), TMobileCell(1), TMobileCell(2)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if _, err := NewGNB(cfg, 1000); err != nil {
			t.Errorf("%s: NewGNB: %v", cfg.Name, err)
		}
	}
	if SrsRANCell().TTI() != 500*time.Microsecond {
		t.Error("srsRAN cell TTI wrong")
	}
}

func TestRACHConnectsUE(t *testing.T) {
	g, err := NewGNB(testCell(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	rnti := g.AddUE(bulkFactory(g.Config()), -1)
	if rnti < firstCRNTI {
		t.Fatalf("rnti %#x below first C-RNTI", rnti)
	}
	var connected bool
	var msg4Seen bool
	for i := 0; i < 200 && !connected; i++ {
		out := g.Step()
		for _, r := range out.GT {
			if r.MSG4 && r.RNTI == rnti {
				msg4Seen = true
			}
		}
		for _, e := range out.Events {
			if e.Kind == EventConnected && e.RNTI == rnti {
				connected = true
			}
		}
	}
	if !connected {
		t.Fatal("UE did not connect within 200 slots")
	}
	if !msg4Seen {
		t.Error("no MSG4 GT record for the connecting UE")
	}
	if got := g.ConnectedRNTIs(); len(got) != 1 || got[0] != rnti {
		t.Errorf("ConnectedRNTIs = %v", got)
	}
}

func TestRACHConnectsOnFDDCell(t *testing.T) {
	cfg := TMobileCell(1)
	cfg.Seed = 7
	g, err := NewGNB(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	g.AddUE(bulkFactory(cfg), -1)
	connected := false
	for i := 0; i < 200 && !connected; i++ {
		for _, e := range g.Step().Events {
			if e.Kind == EventConnected {
				connected = true
			}
		}
	}
	if !connected {
		t.Fatal("FDD cell never completed RACH")
	}
}

func TestBroadcastCadence(t *testing.T) {
	g, err := NewGNB(testCell(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	sib1 := 0
	for _, out := range run(t, g, 400) {
		for _, r := range out.GT {
			if r.Common && r.RNTI == dci.SIRNTI {
				sib1++
			}
		}
	}
	// 400 slots / 40-slot period = 10 SIB1s.
	if sib1 < 9 || sib1 > 11 {
		t.Errorf("%d SIB1 broadcasts in 400 slots, want ~10", sib1)
	}
}

func TestMIBDecodableFromGrid(t *testing.T) {
	g, err := NewGNB(testCell(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < 40 && !found; i++ {
		out := g.Step()
		if out.Grid == nil || out.Ref.Slot != 1 {
			continue
		}
		data, ok := pdschDecodePBCH(out.Grid, g.Config().CellID)
		if !ok {
			t.Fatal("PBCH not decodable from clean grid")
		}
		mib, err := rrc.DecodeMIB(data)
		if err != nil {
			t.Fatalf("MIB decode: %v", err)
		}
		if mib.SFN != out.Ref.SFN || mib.CellID != g.Config().CellID {
			t.Errorf("MIB content wrong: %+v at %v", mib, out.Ref)
		}
		found = true
	}
	if !found {
		t.Fatal("no PBCH slot observed")
	}
}

func TestDataDCIsDecodableFromGrid(t *testing.T) {
	// Every GT data record must be re-decodable from the clean grid at
	// the logged candidate with the logged RNTI — the core consistency
	// the whole evaluation rests on.
	cfg := testCell()
	g, err := NewGNB(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	g.AddUE(bulkFactory(cfg), -1)
	g.AddUE(bulkFactory(cfg), -1)
	codec := pdcch.New(cfg.CellID)
	dciCfg := cfg.DCIConfig()
	checked := 0
	// Grids are double-buffered (valid until the second-next Step), so
	// decode each slot before stepping again.
	for i := 0; i < 600; i++ {
		out := g.Step()
		if out.Grid == nil {
			continue
		}
		for _, r := range out.GT {
			if r.Common {
				continue
			}
			cand := phy.Candidate{AggLevel: r.AggLevel, StartCCE: r.StartCCE}
			sizeClass := dci.NonFallback
			size := dci.ClassSize(sizeClass, dciCfg)
			block, err := codec.DecodeCandidate(out.Grid, cfg.Setup.CORESET, cand, out.Ref.Slot, size, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			payload, ok := bits.CheckDCICRC(block, r.RNTI)
			if !ok {
				t.Fatalf("GT DCI at %v not decodable with its RNTI", out.Ref)
			}
			d, err := dci.Unpack(payload, sizeClass, dciCfg)
			if err != nil {
				t.Fatal(err)
			}
			grant, err := dci.ToGrant(d, r.RNTI, dciCfg, cfg.Setup.LinkConfig())
			if err != nil {
				t.Fatal(err)
			}
			if grant.TBS != r.Grant.TBS || grant.NumPRB != r.Grant.NumPRB {
				t.Fatalf("re-decoded grant differs: %v vs %v", grant, r.Grant)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Errorf("only %d data DCIs checked; traffic too thin", checked)
	}
}

func TestSchedulerConservesPRBs(t *testing.T) {
	cfg := testCell()
	g, err := NewGNB(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		g.AddUE(bulkFactory(cfg), -1)
	}
	for _, out := range run(t, g, 500) {
		if out.Grid == nil {
			continue
		}
		// Downlink allocations must not overlap in PRBs.
		type span struct{ lo, hi int }
		var spans []span
		for _, r := range out.GT {
			if !r.Grant.Downlink {
				continue
			}
			spans = append(spans, span{r.Grant.StartPRB, r.Grant.StartPRB + r.Grant.NumPRB})
		}
		for i := range spans {
			if spans[i].hi > cfg.CarrierPRBs {
				t.Fatalf("allocation beyond carrier at %v", out.Ref)
			}
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Fatalf("overlapping DL allocations at %v: %v %v", out.Ref, spans[i], spans[j])
				}
			}
		}
	}
}

func TestUplinkGrantsIssued(t *testing.T) {
	cfg := testCell()
	g, err := NewGNB(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	g.AddUE(bulkFactory(cfg), -1)
	ul := 0
	for _, out := range run(t, g, 600) {
		for _, r := range out.GT {
			if !r.Common && !r.Grant.Downlink {
				ul++
			}
		}
	}
	if ul == 0 {
		t.Error("no uplink grants issued despite UL traffic")
	}
}

func TestHARQRetransmissionsUnderBadChannel(t *testing.T) {
	cfg := testCell()
	cfg.BaseSNRdB = 14
	g, err := NewGNB(cfg, 8000)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(3000), nil, channel.New(channel.Urban, cfg.BaseSNRdB, seed)
	}
	g.AddUE(factory, -1)
	newTx, retx := 0, 0
	for _, out := range run(t, g, 4000) {
		for _, r := range out.GT {
			if r.Common || !r.Grant.Downlink {
				continue
			}
			if r.IsRetx {
				retx++
			} else {
				newTx++
			}
		}
	}
	if newTx == 0 {
		t.Fatal("no downlink data scheduled")
	}
	if retx == 0 {
		t.Error("Urban channel produced zero retransmissions")
	}
	ratio := float64(retx) / float64(newTx+retx)
	if ratio > 0.8 {
		t.Errorf("retx ratio %.2f implausibly high", ratio)
	}
}

func TestRetxNDIUnchangedAndTBSPreserved(t *testing.T) {
	cfg := testCell()
	cfg.BaseSNRdB = 12
	g, err := NewGNB(cfg, 8000)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(rnti uint16, seed int64) (traffic.Generator, traffic.Generator, *channel.Channel) {
		return traffic.NewBulk(3000), nil, channel.New(channel.Vehicle, cfg.BaseSNRdB, seed)
	}
	rnti := g.AddUE(factory, -1)
	// last (ndi, tbs) per harq id from new transmissions
	type harqState struct {
		ndi uint8
		tbs int
	}
	last := make(map[int]harqState)
	checked := 0
	for _, out := range run(t, g, 4000) {
		for _, r := range out.GT {
			if r.Common || r.RNTI != rnti || !r.Grant.Downlink {
				continue
			}
			id := r.Grant.HARQID
			if r.IsRetx {
				prev, ok := last[id]
				if !ok {
					t.Fatal("retx before any new data on process")
				}
				if r.Grant.NDI != prev.ndi {
					t.Fatal("retx toggled NDI")
				}
				if r.Grant.TBS != prev.tbs {
					t.Fatalf("retx TBS %d != original %d", r.Grant.TBS, prev.tbs)
				}
				checked++
			} else {
				if prev, ok := last[id]; ok && prev.ndi == r.Grant.NDI {
					t.Fatal("new data kept same NDI")
				}
				last[id] = harqState{r.Grant.NDI, r.Grant.TBS}
			}
		}
	}
	if checked == 0 {
		t.Skip("no retransmissions observed (channel too kind)")
	}
}

func TestLedgerRecordsDeliveries(t *testing.T) {
	cfg := testCell()
	g, err := NewGNB(cfg, 4000)
	if err != nil {
		t.Fatal(err)
	}
	rnti := g.AddUE(bulkFactory(cfg), -1)
	var gtDelivered int64
	for _, out := range run(t, g, 2000) {
		for _, r := range out.GT {
			if r.RNTI == rnti && r.Grant.Downlink && !r.Common {
				gtDelivered += int64(r.DeliveredBytes)
			}
		}
	}
	u := g.UE(rnti)
	if u == nil {
		t.Fatal("UE lost")
	}
	if u.Ledger.TotalBytes() == 0 {
		t.Fatal("ledger empty despite bulk traffic")
	}
	if u.Ledger.TotalBytes() != gtDelivered {
		t.Errorf("ledger %d bytes, GT says %d", u.Ledger.TotalBytes(), gtDelivered)
	}
}

func TestPopulationChurn(t *testing.T) {
	cfg := testCell()
	g, err := NewGNB(cfg, 40000)
	if err != nil {
		t.Fatal(err)
	}
	pop := DefaultPopulation()
	pop.ArrivalsPerSecond = 5
	pop.MedianSessionSeconds = 2
	g.SetPopulation(pop)
	arrived, connected, departed := 0, 0, 0
	for i := 0; i < 20000; i++ { // 10 s
		out := g.Step()
		for _, e := range out.Events {
			switch e.Kind {
			case EventArrived:
				arrived++
			case EventConnected:
				connected++
			case EventDeparted:
				departed++
			}
		}
	}
	if arrived < 20 {
		t.Fatalf("only %d arrivals in 10 s at 5/s", arrived)
	}
	if connected == 0 || departed == 0 {
		t.Errorf("connected=%d departed=%d; churn not flowing", connected, departed)
	}
	if connected > arrived {
		t.Errorf("connected %d > arrived %d", connected, arrived)
	}
}

func TestUplinkSlotsProduceNoGrid(t *testing.T) {
	g, err := NewGNB(testCell(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range run(t, g, 100) {
		dir := g.Config().TDD.Direction(out.SlotIdx)
		if dir == phy.SlotUplink && out.Grid != nil {
			t.Fatal("uplink slot produced a downlink grid")
		}
		if dir != phy.SlotUplink && out.Grid == nil {
			t.Fatal("downlink slot missing grid")
		}
	}
}

func TestGNBRejectsBadConfig(t *testing.T) {
	cfg := testCell()
	cfg.Setup.CORESET.StartPRB = 6 // desynchronised control regions
	if _, err := NewGNB(cfg, 100); err == nil {
		t.Error("mismatched CORESETs accepted")
	}
	cfg = testCell()
	if _, err := NewGNB(cfg, 0); err == nil {
		t.Error("zero maxSlots accepted")
	}
}

// pdschDecodePBCH adapts the pdsch decoder for the test (tiny noise).
func pdschDecodePBCH(g *phy.Grid, cellID uint16) ([]byte, bool) {
	return pdschDecode(g, cellID)
}

func BenchmarkGNBStep8UEs(b *testing.B) {
	cfg := testCell()
	g, err := NewGNB(cfg, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		g.AddUE(nil, -1)
	}
	for i := 0; i < 200; i++ {
		g.Step() // settle RACH
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}
