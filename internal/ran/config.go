// Package ran simulates a 5G Standalone gNB at symbol level: it
// broadcasts MIB/SIB1, runs the RACH MSG1-4 state machine, schedules
// downlink and uplink data with HARQ over TDD or FDD slot patterns, and
// emits per-slot resource grids plus an srsRAN-style ground-truth log.
// NR-Scope (internal/core) sees only the grids — exactly the passive
// vantage point of the paper.
package ran

import (
	"fmt"
	"time"

	"nrscope/internal/dci"
	"nrscope/internal/mcs"
	"nrscope/internal/pdsch"
	"nrscope/internal/phy"
	"nrscope/internal/rrc"
	"nrscope/internal/sched"
)

// pdschPBCHSpan is the carrier width the SSB/PBCH block requires.
const pdschPBCHSpan = pdsch.PBCHStartPRB + pdsch.PBCHNumPRB

// CellConfig fully describes a simulated cell. The presets below mirror
// the four networks of the paper's §5.1 evaluation methodology.
type CellConfig struct {
	Name        string
	CellID      uint16
	Mu          phy.Numerology
	CarrierPRBs int
	TDD         phy.TDDPattern

	// CORESET geometry: CORESET 0 carries the common search space; the
	// UE-dedicated search space lives in the CORESET advertised by the
	// RRC Setup (same PRBs, different id and hashing in these cells).
	Coreset0 phy.CORESET
	CommonSS phy.SearchSpace

	// Setup is the (UE-invariant) RRC Setup content, carrying the
	// dedicated CORESET/search space and the PDSCH parameters.
	Setup rrc.Setup

	// Broadcast cadence.
	SIB1PeriodSlots int
	RACHPeriodSlots int

	// ControlMCS is the (low) MCS used for SIB1/RAR/MSG4 PDSCH.
	ControlMCS int

	// BaseSNRdB is the default mean SNR of gNB<->UE links.
	BaseSNRdB float64

	// MaxHARQRetx caps HARQ attempts per TB (first tx + retx).
	MaxHARQRetx int

	// FillUserPDSCH populates user-plane PDSCH allocations with filler
	// symbols. NR-Scope never demodulates user data (only its DCIs), so
	// the fill is cosmetic; leave it off except when inspecting grids.
	FillUserPDSCH bool

	Seed int64
}

// Validate checks the configuration coherence.
func (c CellConfig) Validate() error {
	if !c.Mu.Valid() {
		return fmt.Errorf("ran: invalid numerology")
	}
	if c.CarrierPRBs < pdschPBCHSpan {
		// The SSB/PBCH block occupies 20 PRBs; narrower carriers would
		// silently write outside the grid.
		return fmt.Errorf("ran: carrier of %d PRBs cannot hold the SSB (needs %d)", c.CarrierPRBs, pdschPBCHSpan)
	}
	if err := c.Coreset0.Validate(); err != nil {
		return fmt.Errorf("ran: CORESET0: %w", err)
	}
	if c.Coreset0.StartPRB+c.Coreset0.NumPRB > c.CarrierPRBs {
		return fmt.Errorf("ran: CORESET0 exceeds carrier")
	}
	if err := c.Setup.Validate(); err != nil {
		return fmt.Errorf("ran: %w", err)
	}
	if c.SIB1PeriodSlots < 1 || c.RACHPeriodSlots < 1 {
		return fmt.Errorf("ran: broadcast periods must be positive")
	}
	if c.ControlMCS < 0 || c.ControlMCS > 9 {
		return fmt.Errorf("ran: control MCS %d outside the low-rate range", c.ControlMCS)
	}
	if c.MaxHARQRetx < 1 {
		return fmt.Errorf("ran: MaxHARQRetx must be >= 1")
	}
	return nil
}

// TTI returns the slot duration.
func (c CellConfig) TTI() time.Duration { return c.Mu.SlotDuration() }

// DCIConfig derives the DCI field-width context for UE-data DCIs over
// the active BWP (the full carrier in these cells). NR-Scope
// reconstructs it from SIB1.
func (c CellConfig) DCIConfig() dci.Config {
	return dci.Config{
		BWPPRBs:       c.CarrierPRBs,
		TimeAllocRows: len(phy.DefaultTimeAllocTable),
		MaxHARQ:       16,
	}
}

// CommonDCIConfig is the field-width context for common (CORESET 0)
// DCIs, sized over the initial BWP — the CORESET 0 span — exactly so a
// passive observer can size SIB1's DCI from the MIB alone.
func (c CellConfig) CommonDCIConfig() dci.Config {
	return dci.Config{
		BWPPRBs:       c.Coreset0.NumPRB,
		TimeAllocRows: len(phy.DefaultTimeAllocTable),
		MaxHARQ:       16,
	}
}

// SIB1 assembles the SIB1 message the cell broadcasts.
func (c CellConfig) SIB1() rrc.SIB1 {
	return rrc.SIB1{
		CellID:           c.CellID,
		CarrierPRBs:      c.CarrierPRBs,
		TDD:              c.TDD,
		CommonCandidates: c.CommonSS.Candidates,
		RACHPeriodSlots:  c.RACHPeriodSlots,
		SIB1PeriodSlots:  c.SIB1PeriodSlots,
		TimeAllocRows:    len(phy.DefaultTimeAllocTable),
	}
}

// baseCell builds the pieces shared by every preset.
func baseCell(name string, cellID uint16, mu phy.Numerology, prbs int, tdd phy.TDDPattern, snr float64) CellConfig {
	coresetPRBs := prbs - prbs%phy.REGsPerCCE // widest whole-CCE span
	if coresetPRBs > 48 {
		coresetPRBs = 48
	}
	cs0 := phy.CORESET{ID: 0, StartPRB: 0, NumPRB: coresetPRBs, Duration: 1, StartSym: 0}
	ueCS := cs0
	ueCS.ID = 1
	return CellConfig{
		Name:        name,
		CellID:      cellID,
		Mu:          mu,
		CarrierPRBs: prbs,
		TDD:         tdd,
		Coreset0:    cs0,
		CommonSS:    phy.SearchSpace{ID: 0, Type: phy.CommonSearchSpace, Candidates: phy.DefaultCommonCandidates()},
		Setup: rrc.Setup{
			CORESET:      ueCS,
			UECandidates: phy.DefaultUECandidates(),
			NonFallback:  true,
			DMRSPerPRB:   12,
			XOverhead:    0,
			MaxLayers:    1,
			MCSTable:     mcs.TableQAM256,
		},
		SIB1PeriodSlots: 40,
		RACHPeriodSlots: 20,
		ControlMCS:      4,
		BaseSNRdB:       snr,
		MaxHARQRetx:     4,
		Seed:            1,
	}
}

// SrsRANCell mirrors [srsRAN/Open5GS]: band n41 TDD, 20 MHz, 30 kHz SCS.
func SrsRANCell() CellConfig {
	prbs, err := phy.PRBsForBandwidth(20, phy.Mu1)
	if err != nil {
		panic(err)
	}
	return baseCell("srsRAN/Open5GS", 1, phy.Mu1, prbs, phy.MustTDDPattern("DDDSU"), 22)
}

// MosolabCell mirrors [Mosolabs/Aether]: CBRS band n48 TDD, 20 MHz,
// 30 kHz SCS.
func MosolabCell() CellConfig {
	c := baseCell("Mosolabs/Aether", 2, phy.Mu1, mustPRBs(20, phy.Mu1), phy.MustTDDPattern("DDDSU"), 20)
	return c
}

// AmarisoftCell mirrors [Amari Callbox]: band n78 TDD, 20 MHz, 30 kHz
// SCS, with the UE emulator able to attach up to 64 UEs.
func AmarisoftCell() CellConfig {
	c := baseCell("Amari Callbox", 3, phy.Mu1, mustPRBs(20, phy.Mu1), phy.MustTDDPattern("DDDSU"), 21)
	return c
}

// TMobileCell mirrors the commercial cells: FDD, 15 kHz SCS, 10 MHz
// (cell 1, n25) or 15 MHz (cell 2, n71) downlink carriers.
func TMobileCell(n int) CellConfig {
	switch n {
	case 1:
		return baseCell("T-Mobile cell 1 (n25)", 101, phy.Mu0, mustPRBs(10, phy.Mu0), phy.FDD(), 17)
	case 2:
		return baseCell("T-Mobile cell 2 (n71)", 102, phy.Mu0, mustPRBs(15, phy.Mu0), phy.FDD(), 15)
	default:
		panic(fmt.Sprintf("ran: no T-Mobile cell %d", n))
	}
}

func mustPRBs(mhz int, mu phy.Numerology) int {
	n, err := phy.PRBsForBandwidth(mhz, mu)
	if err != nil {
		panic(err)
	}
	return n
}

// ueSearchSpace derives the UE search space from the Setup.
func (c CellConfig) ueSearchSpace() phy.SearchSpace {
	return phy.SearchSpace{ID: 1, Type: phy.UESearchSpace, Candidates: c.Setup.UECandidates}
}

// controlLink is the link config used for fallback/control grants.
func controlLink() dci.LinkConfig {
	return dci.LinkConfig{DMRSPerPRB: 12, Overhead: 0, Layers: 1, Table: mcs.TableQAM64}
}

// dataRegionRow is the time-allocation row used for data this slot.
const dataRegionRow = 0

// schedRegion builds the scheduler region after reserving ctrlPRBs at
// the front of the carrier.
func (c CellConfig) schedRegion(ctrlPRBs int) sched.Region {
	return sched.Region{
		StartPRB: ctrlPRBs,
		NumPRB:   c.CarrierPRBs - ctrlPRBs,
		TimeRow:  dataRegionRow,
		Link:     c.Setup.LinkConfig(),
	}
}
