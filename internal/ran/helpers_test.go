package ran

import (
	"nrscope/internal/pdsch"
	"nrscope/internal/phy"
)

// pdschDecode wraps pdsch.DecodePBCH with a near-noiseless N0 for
// clean-grid assertions.
func pdschDecode(g *phy.Grid, cellID uint16) ([]byte, bool) {
	return pdsch.DecodePBCH(g, cellID, 1e-4)
}
