package ran

import (
	"fmt"
	"math/rand"
	"sort"

	"nrscope/internal/channel"
	"nrscope/internal/dci"
	"nrscope/internal/harq"
	"nrscope/internal/pdcch"
	"nrscope/internal/pdsch"
	"nrscope/internal/phy"
	"nrscope/internal/pucch"
	"nrscope/internal/rrc"
	"nrscope/internal/sched"
	"nrscope/internal/traffic"
)

// firstCRNTI is where C-RNTI assignment starts (srsRAN begins at 0x4601),
// keeping C-RNTIs disjoint from the RA-RNTI range RARNTI() produces.
const firstCRNTI = 0x4601

// GNB is the simulated 5G SA base station.
type GNB struct {
	cfg   CellConfig
	codec *pdcch.Codec
	rng   *rand.Rand

	dlSched sched.Scheduler
	ulSched sched.Scheduler

	slotIdx int
	ues     map[uint16]*UE
	order   []uint16 // stable iteration order

	pop       *Population
	popRNG    *rand.Rand
	nextRNTI  uint16
	ueSeed    int64
	maxSlots  int // ledger horizon
	sib1Bytes []byte
	setupByts []byte
	ueSS      phy.SearchSpace

	// per-slot scratch, reset in Step.
	busyCCE    []bool
	ctrlPRB    int
	out        *SlotOutput
	grid       *phy.Grid
	gridBufs   [2]*phy.Grid // double buffer; see Step's doc comment
	ulGridBufs [2]*phy.Grid
}

// NewGNB builds a gNB for the cell, with a ledger horizon of maxSlots
// TTIs (bounds memory for delivered-byte ground truth).
func NewGNB(cfg CellConfig, maxSlots int) (*GNB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Setup.CORESET.StartPRB != cfg.Coreset0.StartPRB ||
		cfg.Setup.CORESET.NumPRB != cfg.Coreset0.NumPRB ||
		cfg.Setup.CORESET.Duration != cfg.Coreset0.Duration ||
		cfg.Setup.CORESET.StartSym != cfg.Coreset0.StartSym {
		return nil, fmt.Errorf("ran: UE CORESET must share CORESET0's control region")
	}
	if maxSlots < 1 {
		return nil, fmt.Errorf("ran: maxSlots = %d", maxSlots)
	}
	sib1, err := cfg.SIB1().Encode()
	if err != nil {
		return nil, err
	}
	setup, err := cfg.Setup.Encode()
	if err != nil {
		return nil, err
	}
	return &GNB{
		cfg:       cfg,
		codec:     pdcch.New(cfg.CellID),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		dlSched:   sched.NewRoundRobin(),
		ulSched:   sched.NewRoundRobin(),
		ues:       make(map[uint16]*UE),
		nextRNTI:  firstCRNTI,
		ueSeed:    cfg.Seed * 7919,
		maxSlots:  maxSlots,
		sib1Bytes: sib1,
		setupByts: setup,
		ueSS:      cfg.ueSearchSpace(),
		busyCCE:   make([]bool, cfg.Coreset0.NumCCE()),
	}, nil
}

// UseSchedulers swaps the MAC schedulers (default round-robin).
func (g *GNB) UseSchedulers(dl, ul sched.Scheduler) {
	g.dlSched, g.ulSched = dl, ul
}

// SetPopulation enables the UE churn process.
func (g *GNB) SetPopulation(p Population) {
	g.pop = &p
	g.popRNG = rand.New(rand.NewSource(g.cfg.Seed ^ 0xBEEF))
}

// Config returns the cell configuration.
func (g *GNB) Config() CellConfig { return g.cfg }

// SlotIdx returns the absolute TTI counter.
func (g *GNB) SlotIdx() int { return g.slotIdx }

// UE returns the state of an attached UE (nil if unknown).
func (g *GNB) UE(rnti uint16) *UE { return g.ues[rnti] }

// ConnectedRNTIs lists the RRC-connected UEs.
func (g *GNB) ConnectedRNTIs() []uint16 {
	var out []uint16
	for _, rnti := range g.order {
		if u := g.ues[rnti]; u != nil && u.Connected() {
			out = append(out, rnti)
		}
	}
	return out
}

// AddUE admits a UE that starts its RACH at the next PRACH occasion.
// sessionSlots < 0 means the UE never departs. factory may be nil for
// the cell default. It returns the UE's (future) C-RNTI.
func (g *GNB) AddUE(factory UEFactory, sessionSlots int) uint16 {
	if factory == nil {
		factory = DefaultUEFactory(g.cfg)
	}
	rnti := g.allocateRNTI()
	g.ueSeed++
	dl, ul, ch := factory(rnti, g.ueSeed)
	depart := -1
	if sessionSlots >= 0 {
		depart = g.slotIdx + sessionSlots
	}
	u := &UE{
		RNTI:       rnti,
		ch:         ch,
		dlGen:      dl,
		ulGen:      ul,
		harqDL:     harq.NewEntity(),
		harqUL:     harq.NewEntity(),
		inflight:   make(map[int]*inflightTB),
		retxDue:    make(map[int][]sched.RetxRequest),
		Ledger:     traffic.NewLedger(g.maxSlots, g.cfg.TTI()),
		state:      stateWaitPRACH,
		arriveSlot: g.slotIdx,
		departSlot: depart,
	}
	g.ues[rnti] = u
	g.order = append(g.order, rnti)
	return rnti
}

func (g *GNB) allocateRNTI() uint16 {
	for {
		r := g.nextRNTI
		g.nextRNTI++
		if g.nextRNTI > dci.MaxCRNTI {
			g.nextRNTI = firstCRNTI
		}
		if _, used := g.ues[r]; !used {
			return r
		}
	}
}

// ref converts the absolute slot counter to a frame-relative reference.
func (g *GNB) ref() phy.SlotRef {
	spf := g.cfg.Mu.SlotsPerFrame()
	return phy.SlotRef{SFN: (g.slotIdx / spf) % phy.MaxSFN, Slot: g.slotIdx % spf}
}

// Step advances the cell by one TTI and returns its output.
//
// Grid lifetime: to keep the per-slot allocation cost flat, grids are
// drawn from a two-slot double buffer — the returned Grid stays valid
// until the second-following Step. Callers that queue slots (rather
// than processing or cloning them immediately) must Clone the grid.
func (g *GNB) Step() *SlotOutput {
	out := &SlotOutput{Ref: g.ref(), SlotIdx: g.slotIdx}
	g.out = out

	g.stepPopulation()
	g.stepUEs()

	dir := g.cfg.TDD.Direction(g.slotIdx)
	if dir != phy.SlotDownlink || !g.hasULSlots() {
		// Uplink or special slots (TDD), or any slot on the paired FDD
		// uplink carrier, carry PUCCH.
		g.stepUplinkControl()
	}
	if dir == phy.SlotUplink {
		g.stepRACHUplink()
		g.stepDepartures()
		g.slotIdx++
		g.out = nil
		return out
	}
	if !g.hasULSlots() {
		// FDD: PRACH/PUSCH live on the paired uplink carrier, available
		// in every slot.
		g.stepRACHUplink()
	}

	buf := &g.gridBufs[g.slotIdx%2]
	if *buf == nil {
		*buf = phy.NewGrid(g.cfg.CarrierPRBs)
	} else {
		(*buf).Clear()
	}
	g.grid = *buf
	out.Grid = g.grid
	for i := range g.busyCCE {
		g.busyCCE[i] = false
	}
	g.ctrlPRB = 0

	pbchSlot := out.Ref.Slot == 1
	if pbchSlot {
		g.broadcastMIB()
		// Keep control PDSCH clear of the SSB region.
		g.ctrlPRB = pdsch.PBCHStartPRB + pdsch.PBCHNumPRB
	}
	if g.slotIdx%g.cfg.SIB1PeriodSlots == 0 {
		g.broadcastSIB1()
	}
	g.stepRACHDownlink()

	dataStart := g.ctrlPRB
	if pbchSlot && dataStart < pdsch.PBCHStartPRB+pdsch.PBCHNumPRB {
		dataStart = pdsch.PBCHStartPRB + pdsch.PBCHNumPRB
	}
	if dir == phy.SlotDownlink {
		g.scheduleDownlink(dataStart)
	}
	g.scheduleUplinkGrants()

	g.stepDepartures()
	g.slotIdx++
	g.out = nil
	g.grid = nil
	return out
}

// stepUplinkControl lets connected UEs transmit pending UCI (scheduling
// requests, CQI reports, HARQ feedback) on their PUCCH resources of the
// uplink grid — the traffic the paper's §7 "UCI decoding" future-work
// item targets.
func (g *GNB) stepUplinkControl() {
	var grid *phy.Grid
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil || !u.Connected() {
			continue
		}
		uci := pucch.UCI{CQI: u.cqi}
		send := false
		if u.cqiDue {
			send = true
			u.cqiDue = false
		}
		if u.ulQueueBits > 0 {
			uci.SR = true
			send = true
		}
		for i, pa := range u.pendingAcks {
			if pa.due <= g.slotIdx {
				uci.HasAck = true
				uci.AckID = pa.harqID
				uci.Ack = pa.ack
				u.pendingAcks = append(u.pendingAcks[:i], u.pendingAcks[i+1:]...)
				send = true
				break
			}
		}
		if !send {
			continue
		}
		if grid == nil {
			buf := &g.ulGridBufs[g.slotIdx%2]
			if *buf == nil {
				*buf = phy.NewGrid(g.cfg.CarrierPRBs)
			} else {
				(*buf).Clear()
			}
			grid = *buf
			g.out.ULGrid = grid
		}
		if err := pucch.Encode(grid, uci, rnti, g.cfg.CellID); err != nil {
			continue
		}
		g.out.UCIGT = append(g.out.UCIGT, UCIGT{Slot: g.out.Ref, SlotIdx: g.slotIdx, RNTI: rnti, UCI: uci})
	}
}

// stepPopulation samples arrivals from the churn process.
func (g *GNB) stepPopulation() {
	if g.pop == nil {
		return
	}
	connected := 0
	for _, u := range g.ues {
		if u.state != stateDeparted {
			connected++
		}
	}
	n := g.pop.arrivalsThisSlot(g.popRNG, g.cfg.TTI())
	for i := 0; i < n && connected < g.pop.MaxUEs; i++ {
		session := g.pop.sampleSessionSlots(g.popRNG, g.cfg.TTI())
		factory := g.pop.Factory
		rnti := g.AddUE(factory, session)
		connected++
		g.out.Events = append(g.out.Events, Event{Kind: EventArrived, RNTI: rnti, Slot: g.out.Ref})
	}
}

// stepUEs advances channels and traffic for everyone.
func (g *GNB) stepUEs() {
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil || u.state == stateDeparted {
			continue
		}
		u.stepChannel()
		if u.Connected() {
			u.pullTraffic()
		}
	}
}

// stepDepartures removes UEs whose session ended.
func (g *GNB) stepDepartures() {
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil || u.state == stateDeparted {
			continue
		}
		if u.departSlot >= 0 && g.slotIdx >= u.departSlot {
			u.state = stateDeparted
			if pf, ok := g.dlSched.(*sched.ProportionalFair); ok {
				pf.Forget(rnti)
			}
			g.out.Events = append(g.out.Events, Event{Kind: EventDeparted, RNTI: rnti, Slot: g.out.Ref})
		}
	}
}

// stepRACHUplink advances MSG1/MSG3 stages (which happen on PUSCH/PRACH,
// invisible on the downlink grid).
func (g *GNB) stepRACHUplink() {
	prachOccasion := g.slotIdx%g.cfg.RACHPeriodSlots == g.cfg.RACHPeriodSlots-1
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil {
			continue
		}
		switch u.state {
		case stateWaitPRACH:
			if prachOccasion {
				u.state = stateWaitMSG2
				u.msgDue = g.slotIdx + 2
			}
		case stateWaitMSG3:
			if g.slotIdx >= u.msgDue {
				u.state = stateWaitMSG4
				u.msgDue = g.slotIdx + 2
			}
		}
	}
}

// stepRACHDownlink transmits MSG2 (RAR) and MSG4 (RRC Setup) when due.
func (g *GNB) stepRACHDownlink() {
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil {
			continue
		}
		switch u.state {
		case stateWaitMSG2:
			if g.slotIdx >= u.msgDue {
				rar := rrc.RAR{TCRNTI: u.RNTI, TimingAdvance: 11, MSG3SlotDelta: 4}
				data, err := rar.Encode()
				if err != nil {
					continue
				}
				raRNTI := dci.RARNTI(g.slotIdx)
				if g.sendControlPDSCH(raRNTI, data, false) {
					u.state = stateWaitMSG3
					u.msgDue = g.slotIdx + 4
				}
			}
		case stateWaitMSG4:
			if g.slotIdx >= u.msgDue {
				if g.sendControlPDSCH(u.RNTI, g.setupByts, true) {
					u.state = stateConnected
					u.connectSlot = g.slotIdx
					u.lastActivity = g.slotIdx
					g.out.Events = append(g.out.Events, Event{Kind: EventConnected, RNTI: u.RNTI, Slot: g.out.Ref})
				}
			}
		}
	}
}

// broadcastMIB places the PBCH.
func (g *GNB) broadcastMIB() {
	mib := rrc.MIB{
		SFN:              g.out.Ref.SFN,
		Mu:               g.cfg.Mu,
		CellID:           g.cfg.CellID,
		Coreset0StartPRB: g.cfg.Coreset0.StartPRB,
		Coreset0NumPRB:   g.cfg.Coreset0.NumPRB,
		Coreset0Duration: g.cfg.Coreset0.Duration,
	}
	data, err := mib.Encode()
	if err != nil {
		return
	}
	_ = pdsch.EncodePBCH(g.grid, data, g.cfg.CellID)
}

// broadcastSIB1 sends the SIB1 DCI + PDSCH.
func (g *GNB) broadcastSIB1() {
	g.sendControlPDSCH(dci.SIRNTI, g.sib1Bytes, false)
}

// sendControlPDSCH emits a fallback (format 1_0) DCI in the common
// search space plus its PDSCH payload, allocating PRBs from the control
// region at the front of the carrier. Returns false when the PDCCH or
// PRBs are exhausted this slot (the message is retried next slot).
func (g *GNB) sendControlPDSCH(rnti uint16, payload []byte, msg4 bool) bool {
	link := controlLink()
	want := (len(payload) + macOverheadBytes) * 8
	// Common PDSCH lives within the initial BWP (the CORESET 0 span).
	maxPRB := g.cfg.Coreset0.NumPRB - g.ctrlPRB
	if maxPRB < 1 {
		return false
	}
	nprb, tbs := sched.Size(want+24, g.cfg.ControlMCS, maxPRB, dataRegionRow, link)
	if nprb == 0 || tbs < want {
		return false
	}
	commonCfg := g.cfg.CommonDCIConfig()
	riv, err := phy.EncodeRIV(commonCfg.BWPPRBs, g.ctrlPRB, nprb)
	if err != nil {
		return false
	}
	d := dci.DCI{
		Format:    dci.Format10,
		FreqAlloc: riv,
		TimeAlloc: dataRegionRow,
		MCS:       g.cfg.ControlMCS,
	}
	cand, ok := g.placeCommonDCI(d, rnti)
	if !ok {
		return false
	}
	grant, err := dci.ToGrant(d, rnti, commonCfg, link)
	if err != nil {
		return false
	}
	if err := pdsch.Encode(g.grid, grant, payload, g.cfg.CellID); err != nil {
		return false
	}
	g.ctrlPRB += nprb
	g.out.GT = append(g.out.GT, GTRecord{
		Slot: g.out.Ref, SlotIdx: g.slotIdx, RNTI: rnti, Grant: grant,
		AggLevel: cand.AggLevel, StartCCE: cand.StartCCE,
		Common: true, MSG4: msg4,
	})
	return true
}

// placeCommonDCI places a fallback DCI in the common search space,
// packed over the initial BWP.
func (g *GNB) placeCommonDCI(d dci.DCI, rnti uint16) (phy.Candidate, bool) {
	return g.placeDCI(d, rnti, g.cfg.CommonSS, 4, g.cfg.CommonDCIConfig())
}

// placeDCI packs, finds a collision-free candidate at (or near) the
// preferred aggregation level, and encodes the PDCCH. It returns the
// candidate used.
func (g *GNB) placeDCI(d dci.DCI, rnti uint16, ss phy.SearchSpace, prefAL int, cfg dci.Config) (phy.Candidate, bool) {
	payload, err := dci.Pack(d, cfg)
	if err != nil {
		return phy.Candidate{}, false
	}
	cs := g.cfg.Coreset0
	if ss.Type == phy.UESearchSpace {
		cs = g.cfg.Setup.CORESET
	}
	for _, al := range alPreferenceOrder(prefAL) {
		m := ss.Candidates[al]
		for i := 0; i < m; i++ {
			cce, ok := phy.CandidateCCE(ss, cs, rnti, g.out.Ref.Slot, al, i)
			if !ok {
				continue
			}
			if g.cceFree(cce, al) {
				cand := phy.Candidate{AggLevel: al, Index: i, StartCCE: cce}
				if err := g.codec.Encode(g.grid, cs, cand, g.out.Ref.Slot, payload, rnti); err != nil {
					return phy.Candidate{}, false
				}
				g.markCCE(cce, al)
				return cand, true
			}
		}
	}
	return phy.Candidate{}, false
}

// alPreferenceOrder yields aggregation levels starting at pref, then
// larger (more robust), then smaller.
func alPreferenceOrder(pref int) []int {
	var after, before []int
	for _, al := range phy.AggregationLevels {
		switch {
		case al == pref:
		case al > pref:
			after = append(after, al)
		default:
			before = append(before, al)
		}
	}
	out := []int{pref}
	out = append(out, after...)
	// Smaller levels last, largest-first for robustness.
	for i := len(before) - 1; i >= 0; i-- {
		out = append(out, before[i])
	}
	return out
}

func (g *GNB) cceFree(start, n int) bool {
	if start+n > len(g.busyCCE) {
		return false
	}
	for i := start; i < start+n; i++ {
		if g.busyCCE[i] {
			return false
		}
	}
	return true
}

func (g *GNB) markCCE(start, n int) {
	for i := start; i < start+n; i++ {
		g.busyCCE[i] = true
	}
}

// alForCQI picks the DCI aggregation level from channel quality: weaker
// UEs get more CCEs, as real link adaptation does.
func alForCQI(cqi int) int {
	switch {
	case cqi >= 12:
		return 1
	case cqi >= 9:
		return 2
	case cqi >= 6:
		return 4
	case cqi >= 3:
		return 8
	default:
		return 16
	}
}

// scheduleDownlink runs the MAC scheduler and transmits data DCIs/PDSCH.
func (g *GNB) scheduleDownlink(dataStart int) {
	region := g.cfg.schedRegion(dataStart)
	if region.NumPRB < 1 {
		return
	}
	var reqs []sched.Request
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil || !u.Connected() {
			continue
		}
		req := sched.Request{RNTI: rnti, QueueBits: u.dlQueueBits, CQI: u.cqi}
		// UL retransmissions live under negative keys.
		for _, due := range u.dueKeys(true, g.slotIdx) {
			req.Retx = append(req.Retx, u.retxDue[due]...)
			delete(u.retxDue, due)
		}
		if req.QueueBits > 0 || len(req.Retx) > 0 {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) == 0 {
		return
	}
	allocs := g.dlSched.Schedule(g.out.Ref.Slot, reqs, region)
	for _, a := range allocs {
		g.transmitData(a, true)
	}
	g.requeueUnserved(reqs, allocs, true)
}

// requeueUnserved puts retransmission requests the scheduler could not
// fit this TTI back into the due queue; dropping them would leak the
// HARQ process and eventually starve the UE.
func (g *GNB) requeueUnserved(reqs []sched.Request, allocs []sched.Allocation, downlink bool) {
	type rkey struct {
		rnti uint16
		harq int
	}
	served := make(map[rkey]bool, len(allocs))
	for _, a := range allocs {
		if a.IsRetx {
			served[rkey{a.RNTI, a.HARQID}] = true
		}
	}
	for _, req := range reqs {
		u := g.ues[req.RNTI]
		if u == nil {
			continue
		}
		for _, rx := range req.Retx {
			if served[rkey{req.RNTI, rx.HARQID}] {
				continue
			}
			if downlink {
				u.retxDue[g.slotIdx+1] = append(u.retxDue[g.slotIdx+1], rx)
			} else {
				u.addULRetx(g.slotIdx+1, rx)
			}
		}
	}
}

// scheduleUplinkGrants issues PUSCH grants (uplink DCIs) from DL-capable
// slots. PUSCH PRBs live on the uplink carrier/slots and do not occupy
// the downlink grid; only the DCI does.
func (g *GNB) scheduleUplinkGrants() {
	region := sched.Region{StartPRB: 0, NumPRB: g.cfg.CarrierPRBs, TimeRow: dataRegionRow, Link: g.cfg.Setup.LinkConfig()}
	var reqs []sched.Request
	for _, rnti := range g.order {
		u := g.ues[rnti]
		if u == nil || !u.Connected() {
			continue
		}
		req := sched.Request{RNTI: rnti, QueueBits: u.ulQueueBits, CQI: u.cqi}
		for _, key := range u.dueKeys(false, g.slotIdx) {
			req.Retx = append(req.Retx, u.retxDue[key]...)
			delete(u.retxDue, key)
		}
		if req.QueueBits > 0 || len(req.Retx) > 0 {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) == 0 {
		return
	}
	allocs := g.ulSched.Schedule(g.out.Ref.Slot, reqs, region)
	for _, a := range allocs {
		g.transmitData(a, false)
	}
	g.requeueUnserved(reqs, allocs, false)
}

// transmitData sends one scheduled transport block: DCI in the UE search
// space, PDSCH fill (downlink), HARQ bookkeeping and the delivery draw.
func (g *GNB) transmitData(a sched.Allocation, downlink bool) {
	u := g.ues[a.RNTI]
	if u == nil || !u.Connected() {
		return
	}
	entity := u.harqUL
	if downlink {
		entity = u.harqDL
	}

	var harqID int
	var ndi uint8
	var tb *inflightTB
	if a.IsRetx {
		harqID = a.HARQID
		var err error
		ndi, _, err = entity.Retransmit(harqID)
		if err != nil {
			return
		}
		tb = u.inflight[inflightKey(harqID, downlink)]
		if tb == nil {
			return
		}
		tb.attempts++
	} else {
		var ok bool
		harqID, ndi, ok = entity.Allocate(a.TBS)
		if !ok {
			return // all HARQ processes busy; queue drains later
		}
		payloadBytes := a.TBS/8 - macOverheadBytes
		queueBytes := u.queueBits(downlink) / 8
		if payloadBytes > queueBytes {
			payloadBytes = queueBytes
		}
		if payloadBytes < 0 {
			payloadBytes = 0
		}
		tb = &inflightTB{
			tbs: a.TBS, payloadBytes: payloadBytes, mcsIdx: a.MCS,
			nprb: a.NumPRB, ndi: ndi, attempts: 1, downlink: downlink,
		}
		u.inflight[inflightKey(harqID, downlink)] = tb
		u.drainQueue(downlink, payloadBytes*8)
	}

	d := g.buildDataDCI(a, downlink, harqID, ndi, tb.attempts)
	cand, placed := g.placeDCI(d, a.RNTI, g.ueSS, alForCQI(u.cqi), g.cfg.DCIConfig())
	if !placed {
		// PDCCH blocked: roll the transmission back.
		g.rollback(u, entity, harqID, tb, a, downlink)
		return
	}
	link := g.cfg.Setup.LinkConfig()
	grant, err := dci.ToGrant(d, a.RNTI, g.cfg.DCIConfig(), link)
	if err != nil {
		g.rollback(u, entity, harqID, tb, a, downlink)
		return
	}
	if downlink && g.cfg.FillUserPDSCH {
		pdsch.FillRandom(g.grid, grant, g.cfg.CellID, g.slotIdx)
	}
	u.lastActivity = g.slotIdx

	g.out.GT = append(g.out.GT, GTRecord{
		Slot: g.out.Ref, SlotIdx: g.slotIdx, RNTI: a.RNTI, Grant: grant,
		AggLevel: cand.AggLevel, StartCCE: cand.StartCCE, IsRetx: a.IsRetx,
		DeliveredBytes: g.resolveDelivery(u, entity, harqID, tb, downlink),
	})
}

// resolveDelivery draws the HARQ outcome for the transmission that was
// just placed and returns the delivered payload bytes (zero on failure).
func (g *GNB) resolveDelivery(u *UE, entity *harq.Entity, harqID int, tb *inflightTB, downlink bool) int {
	e, err := g.cfg.Setup.MCSTable.Lookup(tb.mcsIdx)
	if err != nil {
		return 0
	}
	eff := e.R() * float64(e.Qm)
	// The delivery draw uses the slot's true SNR; the scheduler only saw
	// the quantised CQI, so deep fades beat the link adaptation and
	// trigger HARQ — the paper's Fig. 15 mechanism.
	bler := channel.BLER(eff, u.lastSNR)
	if g.rng.Float64() >= bler {
		// Success: deliver and free the process.
		if downlink {
			u.Ledger.Record(g.slotIdx, tb.payloadBytes)
			u.pendingAcks = append(u.pendingAcks, pendingAck{harqID: harqID, ack: true, due: g.slotIdx + 4})
		}
		_ = entity.Ack(harqID)
		delete(u.inflight, inflightKey(harqID, downlink))
		return tb.payloadBytes
	}
	// Failure: NACK on PUCCH, then retransmit or give up.
	if downlink {
		u.pendingAcks = append(u.pendingAcks, pendingAck{harqID: harqID, ack: false, due: g.slotIdx + 4})
	}
	if tb.attempts >= g.cfg.MaxHARQRetx {
		_ = entity.Ack(harqID)
		delete(u.inflight, inflightKey(harqID, downlink))
		return 0
	}
	due := g.slotIdx + 4 // HARQ RTT
	req := sched.RetxRequest{HARQID: harqID, TBS: tb.tbs, NDI: tb.ndi, MCS: tb.mcsIdx, NPRB: tb.nprb}
	if downlink {
		u.retxDue[due] = append(u.retxDue[due], req)
	} else {
		u.addULRetx(due, req)
	}
	return 0
}

// rollback undoes HARQ state after a blocked PDCCH.
func (g *GNB) rollback(u *UE, entity *harq.Entity, harqID int, tb *inflightTB, a sched.Allocation, downlink bool) {
	if a.IsRetx {
		// Try again next slot.
		req := sched.RetxRequest{HARQID: harqID, TBS: tb.tbs, NDI: tb.ndi, MCS: tb.mcsIdx, NPRB: tb.nprb}
		tb.attempts--
		if downlink {
			u.retxDue[g.slotIdx+1] = append(u.retxDue[g.slotIdx+1], req)
		} else {
			u.addULRetx(g.slotIdx+1, req)
		}
		return
	}
	_ = entity.Cancel(harqID)
	delete(u.inflight, inflightKey(harqID, downlink))
	u.refillQueue(downlink, tb.payloadBytes*8)
}

// buildDataDCI assembles the DCI for a data allocation.
func (g *GNB) buildDataDCI(a sched.Allocation, downlink bool, harqID int, ndi uint8, attempts int) dci.DCI {
	riv, _ := phy.EncodeRIV(g.cfg.CarrierPRBs, a.StartPRB, a.NumPRB)
	rv := attempts - 1
	if rv > 3 {
		rv = 3
	}
	format := dci.Format11
	if !downlink {
		format = dci.Format01
	}
	if !g.cfg.Setup.NonFallback {
		format = dci.Format10
		if !downlink {
			format = dci.Format00
		}
	}
	return dci.DCI{
		Format:    format,
		FreqAlloc: riv,
		TimeAlloc: a.TimeRow,
		MCS:       a.MCS,
		NDI:       ndi,
		RV:        rv,
		HARQID:    harqID,
		DAI:       attempts % 4,
		TPC:       1,
	}
}

// --- small UE helpers kept here to stay close to their use ---

func inflightKey(harqID int, downlink bool) int {
	if downlink {
		return harqID
	}
	return 100 + harqID
}

func (u *UE) queueBits(downlink bool) int {
	if downlink {
		return u.dlQueueBits
	}
	return u.ulQueueBits
}

func (u *UE) drainQueue(downlink bool, bits int) {
	if downlink {
		u.dlQueueBits -= bits
		if u.dlQueueBits < 0 {
			u.dlQueueBits = 0
		}
	} else {
		u.ulQueueBits -= bits
		if u.ulQueueBits < 0 {
			u.ulQueueBits = 0
		}
	}
}

func (u *UE) refillQueue(downlink bool, bits int) {
	if downlink {
		u.dlQueueBits += bits
	} else {
		u.ulQueueBits += bits
	}
}

// hasULSlots reports whether the TDD pattern contains uplink slots
// (false for FDD downlink carriers, which pair with an always-on uplink).
func (g *GNB) hasULSlots() bool {
	for i := 0; i < g.cfg.TDD.Len(); i++ {
		if g.cfg.TDD.Direction(i) == phy.SlotUplink {
			return true
		}
	}
	return false
}

// addULRetx stores UL retransmission queues under negative keys to keep
// them apart from DL ones.
func (u *UE) addULRetx(due int, r sched.RetxRequest) {
	u.retxDue[-due] = append(u.retxDue[-due], r)
}

// dueKeys returns, in deterministic (ascending due-slot) order, the map
// keys of retransmissions due at slotIdx for the given direction.
func (u *UE) dueKeys(downlink bool, slotIdx int) []int {
	var keys []int
	for k := range u.retxDue {
		if downlink && k >= 0 && k <= slotIdx {
			keys = append(keys, k)
		}
		if !downlink && k < 0 && -k <= slotIdx {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}
