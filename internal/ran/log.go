package ran

import (
	"fmt"

	"nrscope/internal/dci"
	"nrscope/internal/phy"
	"nrscope/internal/pucch"
)

// GTRecord is one ground-truth log entry — the information srsRAN's gNB
// log provided the paper's §5.2.1 evaluation: TTI index, DCI content and
// the translated grant.
type GTRecord struct {
	Slot     phy.SlotRef
	SlotIdx  int // absolute TTI index
	RNTI     uint16
	Grant    dci.Grant
	AggLevel int
	StartCCE int
	IsRetx   bool
	// DeliveredBytes is the MAC SDU payload the UE actually received in
	// this transmission (zero when the HARQ attempt failed or for
	// retransmission padding).
	DeliveredBytes int
	// Common marks broadcast/RACH DCIs (SI-RNTI, RA-RNTI, TC-RNTI MSG4).
	Common bool
	// MSG4 marks the RRC Setup scheduling DCI.
	MSG4 bool
}

// String renders the record in the srsRAN-log style.
func (r GTRecord) String() string {
	kind := "data"
	if r.MSG4 {
		kind = "msg4"
	} else if r.Common {
		kind = "common"
	}
	return fmt.Sprintf("tti=%v %s L=%d cce=%d retx=%v %v", r.Slot, kind, r.AggLevel, r.StartCCE, r.IsRetx, r.Grant)
}

// EventKind classifies population events.
type EventKind int

// Population events.
const (
	EventArrived EventKind = iota
	EventConnected
	EventDeparted
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventArrived:
		return "arrived"
	case EventConnected:
		return "connected"
	case EventDeparted:
		return "departed"
	default:
		return "?"
	}
}

// Event is a UE lifecycle notification in the slot output.
type Event struct {
	Kind EventKind
	RNTI uint16
	Slot phy.SlotRef
}

// UCIGT is the ground truth of one uplink control report a UE sent.
type UCIGT struct {
	Slot    phy.SlotRef
	SlotIdx int
	RNTI    uint16
	UCI     pucch.UCI
}

// SlotOutput is everything one TTI produced: the clean transmit grid
// (the radio adds the scope's channel impairments), the ground-truth
// records, and lifecycle events.
type SlotOutput struct {
	Ref     phy.SlotRef
	SlotIdx int
	// Grid is nil in pure-uplink slots (nothing on the downlink carrier).
	Grid *phy.Grid
	// ULGrid is the uplink carrier's grid (PUCCH/UCI); nil in slots
	// where no UE transmits control. Same double-buffer lifetime as Grid.
	ULGrid *phy.Grid
	GT     []GTRecord
	UCIGT  []UCIGT
	Events []Event
}
