package pump

import (
	"strconv"

	"nrscope/internal/telemetry"
)

// Influx encodes records as InfluxDB line protocol, one line per
// record:
//
//	nrscope_dci,dir=dl,rnti=0x4601 tbs_bits=5640,prbs=24,mcs=12,retx=0 1723113600123
//
// Tags are emitted in sorted order (Influx's write-path fast path) and
// timestamps are milliseconds — the sink's URL carries precision=ms.
type Influx struct {
	// Measurement overrides the line measurement name (default
	// "nrscope_dci").
	Measurement string
	// BaseMs is the Unix-ms epoch added to each record's
	// capture-relative TMs.
	BaseMs int64

	buf []byte
	n   int
}

// Kind implements Encoder.
func (e *Influx) Kind() string { return "influx" }

// ContentType implements Encoder.
func (e *Influx) ContentType() string { return "text/plain; charset=utf-8" }

// ContentEncoding implements Encoder.
func (e *Influx) ContentEncoding() string { return "" }

// Reset implements Encoder.
func (e *Influx) Reset() {
	e.buf = e.buf[:0]
	e.n = 0
}

// Records implements Encoder.
func (e *Influx) Records() int { return e.n }

// Len implements Encoder.
func (e *Influx) Len() int { return len(e.buf) }

// Append implements Encoder.
func (e *Influx) Append(r *telemetry.Record) {
	m := e.Measurement
	if m == "" {
		m = "nrscope_dci"
	}
	e.buf = append(e.buf, m...)
	e.buf = append(e.buf, ",dir="...)
	e.buf = append(e.buf, dirString(r)...)
	e.buf = append(e.buf, ",rnti="...)
	e.buf = appendRNTI(e.buf, r.RNTI)
	e.buf = append(e.buf, ' ')
	for i := range fieldDefs {
		f := &fieldDefs[i]
		if i > 0 {
			e.buf = append(e.buf, ',')
		}
		e.buf = append(e.buf, f.influx...)
		e.buf = append(e.buf, '=')
		e.buf = strconv.AppendFloat(e.buf, f.get(r), 'g', -1, 64)
	}
	e.buf = append(e.buf, ' ')
	e.buf = strconv.AppendInt(e.buf, recordMs(e.BaseMs, r), 10)
	e.buf = append(e.buf, '\n')
	e.n++
}

// Frame implements Encoder.
func (e *Influx) Frame() []byte { return e.buf }
