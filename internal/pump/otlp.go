package pump

import (
	"strconv"

	"nrscope/internal/telemetry"
)

// OTLP encodes records as an OTLP/HTTP JSON ExportMetricsServiceRequest
// (proto3 JSON mapping: int64s as strings, lowerCamelCase keys): one
// gauge metric per schema field, whose dataPoints accumulate across the
// appended records. Append streams each record's points into per-metric
// buffers; Frame stitches the envelope around them, so both stay
// allocation-free once the buffers are warm.
type OTLP struct {
	// BaseMs is the Unix-ms epoch added to each record's
	// capture-relative TMs.
	BaseMs int64

	points [len(fieldDefs)][]byte // dataPoint JSON fragments per metric
	size   int                    // total pending fragment bytes
	out    []byte                 // assembled request body
	n      int
}

const (
	otlpHead = `{"resourceMetrics":[{"resource":{"attributes":[` +
		`{"key":"service.name","value":{"stringValue":"nrscope"}}]},` +
		`"scopeMetrics":[{"scope":{"name":"nrscope"},"metrics":[`
	otlpTail = `]}]}]}`
)

// Kind implements Encoder.
func (e *OTLP) Kind() string { return "otlp" }

// ContentType implements Encoder.
func (e *OTLP) ContentType() string { return "application/json" }

// ContentEncoding implements Encoder.
func (e *OTLP) ContentEncoding() string { return "" }

// Reset implements Encoder.
func (e *OTLP) Reset() {
	for i := range e.points {
		e.points[i] = e.points[i][:0]
	}
	e.size = 0
	e.n = 0
}

// Records implements Encoder.
func (e *OTLP) Records() int { return e.n }

// Len implements Encoder: pending fragments plus the fixed envelope.
func (e *OTLP) Len() int {
	overhead := len(otlpHead) + len(otlpTail)
	for i := range fieldDefs {
		overhead += len(fieldDefs[i].otlp) + 40 // per-metric envelope
	}
	return e.size + overhead
}

// Append implements Encoder.
func (e *OTLP) Append(r *telemetry.Record) {
	ns := recordMs(e.BaseMs, r) * 1e6
	dir := dirString(r)
	for i := range fieldDefs {
		f := &fieldDefs[i]
		p := e.points[i]
		before := len(p)
		if before > 0 {
			p = append(p, ',')
		}
		p = append(p, `{"timeUnixNano":"`...)
		p = strconv.AppendInt(p, ns, 10)
		p = append(p, `","asDouble":`...)
		p = strconv.AppendFloat(p, f.get(r), 'g', -1, 64)
		p = append(p, `,"attributes":[{"key":"dir","value":{"stringValue":"`...)
		p = append(p, dir...)
		p = append(p, `"}},{"key":"rnti","value":{"stringValue":"`...)
		p = appendRNTI(p, r.RNTI)
		p = append(p, `"}}]}`...)
		e.size += len(p) - before
		e.points[i] = p
	}
	e.n++
}

// Frame implements Encoder.
func (e *OTLP) Frame() []byte {
	out := append(e.out[:0], otlpHead...)
	for i := range fieldDefs {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, `{"name":"`...)
		out = append(out, fieldDefs[i].otlp...)
		out = append(out, `","gauge":{"dataPoints":[`...)
		out = append(out, e.points[i]...)
		out = append(out, `]}}`...)
	}
	out = append(out, otlpTail...)
	e.out = out
	return e.out
}
