package pump

import (
	"strings"
	"sync"

	"nrscope/internal/obs"
)

// sendBuckets is the latency layout for pump HTTP deliveries: 1 ms to
// 2.5 s, roughly exponential — a TSDB hop is orders of magnitude above
// the bus's in-process flush latencies.
var sendBuckets = []float64{
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5,
}

// pumpMetrics is one named pump's instrument set. Same-named pumps
// share a set, mirroring the bus's per-sink convention.
type pumpMetrics struct {
	frames    *obs.Counter
	records   *obs.Counter
	dropped   *obs.Counter
	bytes     *obs.Counter
	err4xx    *obs.Counter
	err5xx    *obs.Counter
	netErrors *obs.Counter
	send      *obs.Histogram
}

var (
	pumpMetricsMu    sync.Mutex
	pumpMetricsCache = map[string]*pumpMetrics{}
)

// metricsFor resolves (or creates) the instrument set for a pump name.
func metricsFor(name string) *pumpMetrics {
	key := sanitizeMetricName(name)
	pumpMetricsMu.Lock()
	defer pumpMetricsMu.Unlock()
	if m, ok := pumpMetricsCache[key]; ok {
		return m
	}
	p := "nrscope_pump_" + key + "_"
	m := &pumpMetrics{
		frames:    obs.Default.Counter(p+"frames_sent_total", "HTTP frames delivered by the "+name+" pump (includes batch retries)"),
		records:   obs.Default.Counter(p+"records_sent_total", "records exported by the "+name+" pump (exactly once per delivered record)"),
		dropped:   obs.Default.Counter(p+"records_dropped_total", "records dropped towards the "+name+" pump (queue eviction, quarantine, failed delivery)"),
		bytes:     obs.Default.Counter(p+"sent_bytes_total", "encoded body bytes delivered by the "+name+" pump"),
		err4xx:    obs.Default.Counter(p+"http_4xx_total", "4xx responses from the "+name+" pump's backend"),
		err5xx:    obs.Default.Counter(p+"http_5xx_total", "5xx responses from the "+name+" pump's backend"),
		netErrors: obs.Default.Counter(p+"net_errors_total", "transport errors (dial, timeout, reset) towards the "+name+" pump's backend"),
		send:      obs.Default.Histogram(p+"send_seconds", "successful frame delivery latency of the "+name+" pump", sendBuckets),
	}
	pumpMetricsCache[key] = m
	return m
}

// sanitizeMetricName maps an arbitrary pump name into the Prometheus
// metric-name alphabet (same rule as the bus's sink names).
func sanitizeMetricName(name string) string {
	if name == "" {
		return "pump"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
