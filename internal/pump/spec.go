package pump

import (
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"
)

// AuthEnv is the fallback auth hook: when a spec carries neither
// ?token= nor ?token_env=, and this environment variable is set, its
// value is sent verbatim as the Authorization header of every frame
// (e.g. "Bearer xyz" or "Basic ...").
const AuthEnv = "NRSCOPE_PUMP_AUTH"

// Tuning is the bus-subscription shape a -sink spec asked for; the
// caller applies it via bus.Subscribe options.
type Tuning struct {
	Queue int           // ring queue size
	Batch int           // max records per delivery batch
	Flush time.Duration // max delay before a partial batch flushes
	Block bool          // lossless Block policy instead of DropOldest
}

// FromSpec builds a pump sink from a -sink spec: the kind keyword
// ("promrw" | "influx" | "otlp") and its URL argument. Option keys in
// the URL query are consumed by the pump; anything else stays on the
// URL. Shared options:
//
//	token=T        Authorization: Bearer T
//	token_env=VAR  like token=, reading T from $VAR (must be non-empty)
//	name=N         metric key under nrscope_pump_<N>_* (default: kind)
//	epoch_ms=E     wall-clock base for sample timestamps
//	               (default: sink construction time; set it when
//	               backfilling a -replay run to place samples at
//	               capture time)
//	timeout=D      per-request timeout (Go duration, default 10s)
//	frame_kb=N     split frames beyond N KiB of body (default 4096)
//	batch=N        bus delivery batch size (default 256)
//	flush=D        bus max-delay flush (default 100ms)
//	queue=N        bus ring queue size (default 4096)
//	block=true     Block (lossless) backpressure instead of DropOldest
//
// influx: requires bucket=B; org=O optional; measurement=M renames the
// line measurement; the path defaults to /api/v2/write and
// precision=ms is pinned. otlp: the path defaults to /v1/metrics.
func FromSpec(kind, arg string) (*Sink, Tuning, error) {
	fail := func(err error) (*Sink, Tuning, error) { return nil, Tuning{}, err }
	u, err := url.Parse(arg)
	if err != nil {
		return fail(fmt.Errorf("pump: %s spec: %w", kind, err))
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fail(fmt.Errorf("pump: %s spec needs an http(s):// URL, got %q", kind, arg))
	}
	q := u.Query()
	take := func(key string) string {
		v := q.Get(key)
		q.Del(key)
		return v
	}

	tun := Tuning{Queue: 4096, Batch: 256, Flush: 100 * time.Millisecond}
	takeInt := func(key string, dst *int) error {
		if v := take(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return fmt.Errorf("pump: %s spec: %s=%q is not a positive integer", kind, key, v)
			}
			*dst = n
		}
		return nil
	}
	if err := takeInt("queue", &tun.Queue); err != nil {
		return fail(err)
	}
	if err := takeInt("batch", &tun.Batch); err != nil {
		return fail(err)
	}
	if v := take("flush"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fail(fmt.Errorf("pump: %s spec: flush=%q is not a positive duration", kind, v))
		}
		tun.Flush = d
	}
	if v := take("block"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fail(fmt.Errorf("pump: %s spec: block=%q is not a bool", kind, v))
		}
		tun.Block = b
	}

	cfg := Config{Name: take("name"), Header: http.Header{}}
	if v := take("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fail(fmt.Errorf("pump: %s spec: timeout=%q is not a positive duration", kind, v))
		}
		cfg.Timeout = d
	}
	frameKB := 0
	if err := takeInt("frame_kb", &frameKB); err != nil {
		return fail(err)
	}
	cfg.MaxFrameBytes = frameKB << 10

	// Auth hook: ?token= beats ?token_env= beats the AuthEnv fallback.
	token := take("token")
	if env := take("token_env"); token == "" && env != "" {
		token = os.Getenv(env)
		if token == "" {
			return fail(fmt.Errorf("pump: %s spec: token_env=%s names an empty environment variable", kind, env))
		}
	}
	if token != "" {
		cfg.Header.Set("Authorization", "Bearer "+token)
	} else if v := os.Getenv(AuthEnv); v != "" {
		cfg.Header.Set("Authorization", v)
	}

	base := time.Now().UnixMilli()
	if q.Has("epoch_ms") {
		base, err = strconv.ParseInt(take("epoch_ms"), 10, 64)
		if err != nil {
			return fail(fmt.Errorf("pump: %s spec: bad epoch_ms: %w", kind, err))
		}
	}

	switch kind {
	case "promrw":
		cfg.Encoder = &PromRW{BaseMs: base}
		cfg.Header.Set("X-Prometheus-Remote-Write-Version", "0.1.0")
	case "influx":
		bucket := take("bucket")
		if bucket == "" {
			return fail(fmt.Errorf("pump: influx spec needs ?bucket=NAME"))
		}
		if u.Path == "" || u.Path == "/" {
			u.Path = "/api/v2/write"
		}
		q.Set("bucket", bucket)
		if org := take("org"); org != "" {
			q.Set("org", org)
		}
		q.Set("precision", "ms")
		cfg.Encoder = &Influx{Measurement: take("measurement"), BaseMs: base}
	case "otlp":
		if u.Path == "" || u.Path == "/" {
			u.Path = "/v1/metrics"
		}
		cfg.Encoder = &OTLP{BaseMs: base}
	default:
		return fail(fmt.Errorf("pump: unknown pump kind %q (want promrw, influx or otlp)", kind))
	}
	u.RawQuery = q.Encode()
	cfg.URL = u.String()
	s, err := New(cfg)
	if err != nil {
		return fail(err)
	}
	return s, tun, nil
}
