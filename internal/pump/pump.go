package pump

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"nrscope/internal/telemetry"
)

// Config shapes one pump sink.
type Config struct {
	// Name keys the pump's nrscope_pump_<name>_* instruments (default:
	// the encoder's Kind). Same-named pumps share instruments.
	Name string
	// URL is the POST target.
	URL string
	// Encoder is the wire format. Required; owned by this sink.
	Encoder Encoder
	// Header holds extra request headers (auth, remote-write version).
	Header http.Header
	// Timeout bounds each HTTP request (default 10 s). Ignored when
	// Client is provided.
	Timeout time.Duration
	// MaxFrameBytes splits a batch into multiple frames once the
	// pending body reaches this size (default 4 MiB).
	MaxFrameBytes int
	// Client overrides the HTTP client (tests, shared pools).
	Client *http.Client
}

// Sink is a batching HTTP exporter implementing the bus Sink contract:
// WriteBatch encodes the batch through the Encoder and POSTs one or
// more frames; any HTTP failure is returned to the bus runner, whose
// retry/backoff/quarantine machinery owns the recovery policy.
//
// Accounting: records_sent counts each record exactly once, committed
// only when its whole WriteBatch succeeded — a mid-batch frame failure
// makes the runner retry the batch, re-sending earlier frames (frames/
// bytes count that wire activity) without double-counting records.
// With CountDrops wired to bus.WithDropNotify, sent + dropped equals
// the records published to the subscription once the bus has drained.
type Sink struct {
	name     string
	url      string
	enc      Encoder
	header   http.Header
	client   *http.Client
	owned    bool // we built the client: close its idle conns on Close
	maxFrame int
	met      *pumpMetrics
}

// New builds a pump sink. The encoder must not be shared with another
// sink: WriteBatch reuses its buffers from the bus runner goroutine.
func New(cfg Config) (*Sink, error) {
	if cfg.Encoder == nil {
		return nil, fmt.Errorf("pump: config needs an Encoder")
	}
	if cfg.URL == "" {
		return nil, fmt.Errorf("pump: config needs a URL")
	}
	name := cfg.Name
	if name == "" {
		name = cfg.Encoder.Kind()
	}
	s := &Sink{
		name:     name,
		url:      cfg.URL,
		enc:      cfg.Encoder,
		header:   cfg.Header,
		client:   cfg.Client,
		maxFrame: cfg.MaxFrameBytes,
		met:      metricsFor(name),
	}
	if s.maxFrame <= 0 {
		s.maxFrame = 4 << 20
	}
	if s.client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		s.client = &http.Client{Timeout: timeout}
		s.owned = true
	}
	return s, nil
}

// Name returns the pump's metric key.
func (s *Sink) Name() string { return s.name }

// URL returns the POST target.
func (s *Sink) URL() string { return s.url }

// WriteBatch implements the bus Sink contract: encode, split at
// MaxFrameBytes, POST. Called from the subscription's runner goroutine
// only.
func (s *Sink) WriteBatch(recs []telemetry.Record) error {
	enc := s.enc
	enc.Reset()
	sent := 0
	for i := range recs {
		enc.Append(&recs[i])
		if enc.Len() >= s.maxFrame {
			n := enc.Records()
			if err := s.send(enc); err != nil {
				return err
			}
			sent += n
			enc.Reset()
		}
	}
	if enc.Records() > 0 {
		n := enc.Records()
		if err := s.send(enc); err != nil {
			return err
		}
		sent += n
	}
	s.met.records.Add(int64(sent))
	return nil
}

// send POSTs one frame and classifies the outcome.
func (s *Sink) send(enc Encoder) error {
	body := enc.Frame()
	req, err := http.NewRequest(http.MethodPost, s.url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("pump %s: %w", s.name, err)
	}
	req.Header.Set("Content-Type", enc.ContentType())
	if ce := enc.ContentEncoding(); ce != "" {
		req.Header.Set("Content-Encoding", ce)
	}
	req.Header.Set("User-Agent", "nrscope-pump/"+enc.Kind())
	for k, vs := range s.header {
		req.Header[k] = vs
	}
	start := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		s.met.netErrors.Inc()
		return fmt.Errorf("pump %s: %w", s.name, err)
	}
	// Drain a bounded slice of the response so the connection is
	// reusable, whatever the backend chats back.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		if resp.StatusCode >= 500 {
			s.met.err5xx.Inc()
		} else {
			s.met.err4xx.Inc()
		}
		return fmt.Errorf("pump %s: %s responded %s", s.name, s.url, resp.Status)
	}
	s.met.frames.Inc()
	s.met.bytes.Add(int64(len(body)))
	s.met.send.Observe(time.Since(start).Seconds())
	return nil
}

// CountDrops records n dropped records against the pump; wire it to the
// subscription via bus.WithDropNotify(sink.CountDrops) so the pump's
// sent + dropped accounting closes against the bus's published count.
func (s *Sink) CountDrops(n int) {
	s.met.dropped.Add(int64(n))
}

// Sent reports records successfully exported (exactly-once per record).
func (s *Sink) Sent() int64 { return s.met.records.Value() }

// Dropped reports records dropped towards this pump (via CountDrops).
func (s *Sink) Dropped() int64 { return s.met.dropped.Value() }

// Close implements the bus Sink contract.
func (s *Sink) Close() error {
	if s.owned {
		s.client.CloseIdleConnections()
	}
	return nil
}
