package pump

// End-to-end tests: real bus → pump sink → httptest backend, where each
// backend decodes its wire format for real (snappy + proto walk, line
// protocol, OTLP JSON) and the decoded samples are compared one-for-one
// with the published records.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/obs"
	"nrscope/internal/phy"
	"nrscope/internal/shard"
	"nrscope/internal/telemetry"
)

// promBackend decodes remote-write frames as a real TSDB would.
type promBackend struct {
	mu       sync.Mutex
	series   []promSeries
	requests int
	headers  http.Header // first request's headers
	queries  []string
}

func (pb *promBackend) snapshot() ([]promSeries, int, http.Header) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return append([]promSeries(nil), pb.series...), pb.requests, pb.headers
}

func (pb *promBackend) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("backend read: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		raw, err := snappyDecode(body)
		if err != nil {
			t.Errorf("backend snappy: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		series, err := parseWriteRequest(raw)
		if err != nil {
			t.Errorf("backend proto: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pb.mu.Lock()
		if pb.requests == 0 {
			pb.headers = r.Header.Clone()
		}
		pb.requests++
		pb.series = append(pb.series, series...)
		pb.queries = append(pb.queries, r.URL.RawQuery)
		pb.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

// subscribePump wires a pump sink into a bus with its spec tuning plus
// drop accounting, the way cmd/nrscope does.
func subscribePump(t *testing.T, b *bus.Bus, snk *Sink, tun Tuning, extra ...bus.SubOption) *bus.Subscription {
	t.Helper()
	policy := bus.DropOldest
	if tun.Block {
		policy = bus.Block
	}
	opts := append([]bus.SubOption{
		bus.WithQueueSize(tun.Queue),
		bus.WithBatch(tun.Batch, tun.Flush),
		bus.WithDropNotify(snk.CountDrops),
	}, extra...)
	sub, err := b.Subscribe(snk.Name(), policy, snk, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestE2EPromRW(t *testing.T) {
	backend := &promBackend{}
	srv := httptest.NewServer(backend.handler(t))
	defer srv.Close()

	snk, tun, err := FromSpec("promrw",
		srv.URL+"?name=e2e_promrw&epoch_ms=1723113600000&token=sesame&flush=5ms")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	subscribePump(t, b, snk, tun)

	recs := testRecords(25)
	for _, r := range recs {
		if err := b.Publish(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	series, _, headers := backend.snapshot()
	checkPromSeries(t, series, expectedSamples(recs, 1723113600000))
	for header, want := range map[string]string{
		"Content-Type":                      "application/x-protobuf",
		"Content-Encoding":                  "snappy",
		"X-Prometheus-Remote-Write-Version": "0.1.0",
		"Authorization":                     "Bearer sesame",
		"User-Agent":                        "nrscope-pump/promrw",
	} {
		if got := headers.Get(header); got != want {
			t.Errorf("%s = %q, want %q", header, got, want)
		}
	}
	if got, want := snk.Sent(), int64(len(recs)); got != want {
		t.Errorf("Sent = %d, want %d", got, want)
	}
	if snk.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", snk.Dropped())
	}
}

func TestE2EPromRWFrameSplit(t *testing.T) {
	backend := &promBackend{}
	srv := httptest.NewServer(backend.handler(t))
	defer srv.Close()

	// 1 KiB frames force a large batch to split into several POSTs.
	snk, tun, err := FromSpec("promrw",
		srv.URL+"?name=e2e_split&epoch_ms=0&frame_kb=1&batch=512&flush=5ms")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	subscribePump(t, b, snk, tun)

	recs := testRecords(120)
	for _, r := range recs {
		if err := b.Publish(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	series, requests, _ := backend.snapshot()
	if requests < 2 {
		t.Fatalf("frame_kb=1 produced %d requests, want a split (>= 2)", requests)
	}
	checkPromSeries(t, series, expectedSamples(recs, 0))
	if got, want := snk.Sent(), int64(len(recs)); got != want {
		t.Errorf("Sent = %d, want %d", got, want)
	}
}

func TestE2EInflux(t *testing.T) {
	var (
		mu     sync.Mutex
		points []influxPoint
		query  string
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got, err := parseInflux(string(body))
		if err != nil {
			t.Errorf("backend: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		points = append(points, got...)
		query = r.URL.Path + "?" + r.URL.RawQuery
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	snk, tun, err := FromSpec("influx",
		srv.URL+"?bucket=nr&org=lab&name=e2e_influx&epoch_ms=1723113600000&flush=5ms")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	subscribePump(t, b, snk, tun)

	recs := testRecords(19)
	for _, r := range recs {
		if err := b.Publish(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, want := range []string{"/api/v2/write", "bucket=nr", "org=lab", "precision=ms"} {
		if !strings.Contains(query, want) {
			t.Errorf("request %q lacks %s", query, want)
		}
	}
	if len(points) != len(recs) {
		t.Fatalf("decoded %d points, want %d", len(points), len(recs))
	}
	for i := range points {
		r := &recs[i]
		p := points[i]
		if p.tags["dir"] != dirString(r) || p.tags["rnti"] != string(appendRNTI(nil, r.RNTI)) ||
			p.ms != recordMs(1723113600000, r) {
			t.Fatalf("point %d = %+v for record %+v", i, p, r)
		}
		for fi := range fieldDefs {
			if p.fields[fieldDefs[fi].influx] != fieldDefs[fi].get(r) {
				t.Fatalf("point %d field %s = %v, want %v",
					i, fieldDefs[fi].influx, p.fields[fieldDefs[fi].influx], fieldDefs[fi].get(r))
			}
		}
	}
}

func TestE2EOTLP(t *testing.T) {
	var (
		mu     sync.Mutex
		points []otlpPoint
		path   string
		ctype  string
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got, err := decodeOTLPBody(body)
		if err != nil {
			t.Errorf("backend: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		points = append(points, got...)
		path = r.URL.Path
		ctype = r.Header.Get("Content-Type")
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	snk, tun, err := FromSpec("otlp", srv.URL+"?name=e2e_otlp&epoch_ms=1723113600000&flush=5ms")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	subscribePump(t, b, snk, tun)

	recs := testRecords(9)
	for _, r := range recs {
		if err := b.Publish(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if path != "/v1/metrics" {
		t.Errorf("path = %q, want /v1/metrics", path)
	}
	if ctype != "application/json" {
		t.Errorf("Content-Type = %q", ctype)
	}
	// Samples may arrive split across frames; regroup both sides
	// record-major for a stable comparison.
	want := map[otlpPoint]int{}
	for _, w := range expectedSamples(recs, 1723113600000) {
		want[otlpPoint{
			metric: fieldDefs[w.metricIdx].otlp,
			dir:    w.dir, rnti: w.rnti, value: w.value, ns: w.ms * 1e6,
		}]++
	}
	got := map[otlpPoint]int{}
	for _, p := range points {
		got[p]++
	}
	if len(points) != 4*len(recs) {
		t.Fatalf("decoded %d datapoints, want %d", len(points), 4*len(recs))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("datapoint %+v seen %d times, want %d", k, got[k], n)
		}
	}
}

// TestE2EFlakyBackend drives the full failure lifecycle — healthy →
// erroring (retry, then quarantine) → recovered — and closes the
// accounting: every published record is either Sent or Dropped.
func TestE2EFlakyBackend(t *testing.T) {
	var failing atomic.Bool
	var calls, errors atomic.Int64
	backend := &promBackend{}
	decode := backend.handler(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			errors.Add(1)
			http.Error(w, "tsdb down", http.StatusInternalServerError)
			return
		}
		decode(w, r)
	}))
	defer srv.Close()

	snk, tun, err := FromSpec("promrw", srv.URL+"?name=e2e_flaky&epoch_ms=0&batch=1&flush=2ms")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	sub := subscribePump(t, b, snk, tun,
		bus.WithRetry(1, time.Millisecond, 2*time.Millisecond),
		bus.WithQuarantine(2, 150*time.Millisecond),
	)

	published := 0
	publish := func(i int) {
		t.Helper()
		if err := b.Publish(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		published++
	}

	// Healthy: first record lands.
	publish(0)
	waitFor(t, "first delivery", func() bool { return snk.Sent() == 1 })

	// Backend dies: two consecutive batch failures (each retried once)
	// trip the quarantine.
	failing.Store(true)
	publish(1)
	waitFor(t, "first failure drop", func() bool { return snk.Dropped() == 1 })
	publish(2)
	waitFor(t, "quarantine", func() bool { return sub.Stats().Quarantines == 1 })

	// In quarantine: dropped without touching the backend.
	before := calls.Load()
	publish(3)
	waitFor(t, "quarantine drop", func() bool { return snk.Dropped() == 3 })
	if calls.Load() != before {
		t.Errorf("quarantined batch hit the backend (%d calls)", calls.Load()-before)
	}

	// Cooldown passes, backend recovers: deliveries resume.
	failing.Store(false)
	time.Sleep(160 * time.Millisecond)
	publish(4)
	waitFor(t, "recovery delivery", func() bool { return snk.Sent() == 2 })

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	if got := snk.Sent() + snk.Dropped(); got != int64(published) {
		t.Errorf("sent(%d) + dropped(%d) = %d, want published %d",
			snk.Sent(), snk.Dropped(), got, published)
	}
	if errors.Load() < 2 {
		t.Errorf("backend saw %d errors, want >= 2 (one per failed attempt)", errors.Load())
	}
	st := sub.Stats()
	if st.Retries < 2 {
		t.Errorf("Stats.Retries = %d, want >= 2", st.Retries)
	}
	// The recovered record decoded correctly through the same backend.
	r4 := testRecord(4)
	series, _, _ := backend.snapshot()
	found := false
	for _, ts := range series {
		if ts.label("__name__") != fieldDefs[0].prom {
			continue
		}
		for _, s := range ts.samples {
			if s.ms == recordMs(0, &r4) {
				found = true
			}
		}
	}
	if !found {
		t.Error("post-recovery record never reached the backend")
	}
}

// TestE2EMetroAccounting runs the headline scenario from the issue: a
// 4-shard supervisor fanning into a promrw pump, with the ledger closed
// against the bus's published counter: sent + dropped == published.
func TestE2EMetroAccounting(t *testing.T) {
	backend := &promBackend{}
	srv := httptest.NewServer(backend.handler(t))
	defer srv.Close()

	snk, tun, err := FromSpec("promrw",
		srv.URL+"?name=e2e_metro&epoch_ms=0&flush=5ms&batch=128&queue=8192")
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	subscribePump(t, b, snk, tun)

	sup := shard.New(shard.Config{Shards: 4, Bus: b})
	load, err := shard.NewMetroLoad(12, 6, phy.Mu1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.Register(sup); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}

	published0 := obs.Default.Snapshot()["nrscope_bus_published_total"]
	sent0, dropped0 := snk.Sent(), snk.Dropped()
	for slot := 0; slot < 200; slot++ {
		load.Slot(slot, func(cell uint16, rec telemetry.Record) {
			if err := sup.Ingest(cell, rec); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := sup.Close(); err != nil { // drains shard queues into the bus
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // drains the pump subscription
		t.Fatal(err)
	}

	published := int64(obs.Default.Snapshot()["nrscope_bus_published_total"] - published0)
	sent := snk.Sent() - sent0
	dropped := snk.Dropped() - dropped0
	if published == 0 {
		t.Fatal("metro load published nothing")
	}
	if sent+dropped != published {
		t.Errorf("sent(%d) + dropped(%d) = %d, want published %d",
			sent, dropped, sent+dropped, published)
	}
	series, requests, _ := backend.snapshot()
	if got, want := int64(len(series)), sent*int64(len(fieldDefs)); got != want {
		t.Errorf("backend decoded %d series, want %d (4 per sent record)", got, want)
	}
	t.Logf("metro: published=%d sent=%d dropped=%d frames=%d", published, sent, dropped, requests)
}
