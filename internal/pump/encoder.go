// Package pump is the bus's egress layer: batching HTTP exporters
// ("pumps") that turn telemetry.Records into the wire formats real
// metrics backends ingest — Prometheus remote-write protobuf
// (snappy-framed), Influx line protocol, and OTLP/HTTP JSON — so a
// live capture (or an offline -replay backfill) lands in an external
// TSDB for longitudinal analysis, the deployment posture the paper's
// always-on telemetry service assumes.
//
// The subsystem has two parts. pump.Sink is the SDK: it implements the
// bus Sink contract (WriteBatch/Close) and therefore rides the bus
// runner's batching, retry/backoff and failure-quarantine machinery,
// while owning everything HTTP — request framing (content type and
// encoding, auth header, timeout), max-frame splitting, and the
// nrscope_pump_<name>_* instruments. The Encoder seam below is the
// per-format half: append-only encoding into reusable buffers, so
// steady-state export allocates nothing and never pressures the decode
// hot path's allocator.
package pump

import "nrscope/internal/telemetry"

// Encoder turns appended records into one HTTP request body ("frame")
// of a concrete wire format. Implementations keep their buffers across
// Reset so steady-state Append/Frame is allocation-free. An Encoder is
// owned by exactly one Sink and is only touched from that sink's bus
// runner goroutine — no locking.
type Encoder interface {
	// Kind is the format's -sink spec keyword ("promrw", "influx",
	// "otlp"); it doubles as the default metric key.
	Kind() string
	// ContentType is the frame's Content-Type header value.
	ContentType() string
	// ContentEncoding is the frame's Content-Encoding header value
	// ("" means none is sent).
	ContentEncoding() string
	// Reset discards pending records, keeping buffers for reuse.
	Reset()
	// Append encodes one record into the pending frame.
	Append(rec *telemetry.Record)
	// Records reports how many records are pending since Reset.
	Records() int
	// Len reports the pending body size in bytes. For promrw it is the
	// pre-snappy size — an upper bound, since all-literal snappy adds
	// under 1% framing overhead and never doubles it.
	Len() int
	// Frame finalizes and returns the request body for the pending
	// records. The slice is owned by the encoder and valid until the
	// next Append or Reset.
	Frame() []byte
}

// fieldDefs is the per-record export schema every pump shares: one
// sample per field per record, labelled/tagged with the record's C-RNTI
// and link direction, timestamped from its capture-relative TMs plus
// the encoder's wall-clock base.
var fieldDefs = [...]struct {
	prom   string // Prometheus metric name (the __name__ label)
	influx string // Influx field key
	otlp   string // OTLP metric name
	get    func(*telemetry.Record) float64
}{
	{"nrscope_dci_tbs_bits", "tbs_bits", "nrscope.dci.tbs_bits",
		func(r *telemetry.Record) float64 { return float64(r.TBS) }},
	{"nrscope_dci_prbs", "prbs", "nrscope.dci.prbs",
		func(r *telemetry.Record) float64 { return float64(r.NumPRB) }},
	{"nrscope_dci_mcs", "mcs", "nrscope.dci.mcs",
		func(r *telemetry.Record) float64 { return float64(r.MCS) }},
	{"nrscope_dci_retx", "retx", "nrscope.dci.retx",
		func(r *telemetry.Record) float64 {
			if r.IsRetx {
				return 1
			}
			return 0
		}},
}

// recordMs places a record on the wall clock: the pump's base epoch
// (Unix ms, fixed at sink construction or via ?epoch_ms=) plus the
// record's capture-relative slot time.
func recordMs(base int64, r *telemetry.Record) int64 {
	return base + int64(r.TMs)
}

// dirString is the record's link direction label value.
func dirString(r *telemetry.Record) string {
	if r.Downlink {
		return "dl"
	}
	return "ul"
}

const hexDigits = "0123456789abcdef"

// appendRNTI renders a C-RNTI as the fixed-width "0x4601" form shared
// by the repo's logs and HTTP APIs, without allocating.
func appendRNTI(dst []byte, rnti uint16) []byte {
	return append(dst, '0', 'x',
		hexDigits[rnti>>12&0xF], hexDigits[rnti>>8&0xF],
		hexDigits[rnti>>4&0xF], hexDigits[rnti&0xF])
}

// appendUvarint appends v in base-128 varint form (protobuf and snappy
// both use it).
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
