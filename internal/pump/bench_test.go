package pump

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/telemetry"
)

// BenchmarkPromRWEncode measures the remote-write encode path. Two arms
// feed the CI alloc gate: arm=baseline memcpys a precomputed frame (the
// 0-alloc floor), arm=encoder runs the real Reset/Append/Frame cycle —
// benchgate -max-alloc-ratio 1.0 against a 0-alloc base pins the
// encoder's steady state to 0 allocs/op.
func BenchmarkPromRWEncode(b *testing.B) {
	recs := testRecords(256)
	for _, arm := range []string{"baseline", "encoder"} {
		b.Run("arm="+arm, func(b *testing.B) {
			enc := &PromRW{BaseMs: 1_723_113_600_000}
			cycle := func() []byte {
				enc.Reset()
				for i := range recs {
					enc.Append(&recs[i])
				}
				return enc.Frame()
			}
			frame := append([]byte(nil), cycle()...) // warm the buffers
			scratch := make([]byte, len(frame))
			bytesPerOp := int64(len(frame))
			b.SetBytes(bytesPerOp)
			b.ReportAllocs()
			b.ResetTimer()
			if arm == "baseline" {
				for i := 0; i < b.N; i++ {
					copy(scratch, frame)
				}
			} else {
				for i := 0; i < b.N; i++ {
					if len(cycle()) == 0 {
						b.Fatal("empty frame")
					}
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(len(recs))/secs, "records/s")
			}
		})
	}
}

// discardTransport is a hermetic in-process backend: it drains the
// request body and answers 204, so the fanout benchmark measures the
// pump pipeline (bus batching + encode + request assembly) without
// sockets.
type discardTransport struct{}

func (discardTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusNoContent,
		Status:     "204 No Content",
		Body:       http.NoBody,
		Header:     http.Header{},
		Request:    req,
	}, nil
}

// BenchmarkPumpFanout measures Publish throughput with 1..4 pumps (one
// per wire format, then a second promrw) subscribed to one bus.
func BenchmarkPumpFanout(b *testing.B) {
	kinds := []string{"promrw", "influx", "otlp", "promrw"}
	for _, pumps := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dpumps", pumps), func(b *testing.B) {
			bb := bus.New()
			sinks := make([]*Sink, pumps)
			for i := 0; i < pumps; i++ {
				arg := fmt.Sprintf("http://bench.invalid?name=bench_fanout_%d&epoch_ms=0", i)
				if kinds[i] == "influx" {
					arg += "&bucket=bench"
				}
				snk, tun, err := FromSpec(kinds[i], arg)
				if err != nil {
					b.Fatal(err)
				}
				snk.client = &http.Client{Transport: discardTransport{}}
				sinks[i] = snk
				if _, err := bb.Subscribe(snk.Name(), bus.Block, snk,
					bus.WithQueueSize(tun.Queue),
					bus.WithBatch(tun.Batch, time.Millisecond),
					bus.WithDropNotify(snk.CountDrops)); err != nil {
					b.Fatal(err)
				}
			}
			r := telemetry.Record{SlotIdx: 1, RNTI: 0x4601, Downlink: true, TBS: 8192, NumPRB: 24, MCS: 20}
			// Metrics are cached per pump name and accumulate across
			// the framework's repeated runs: account in deltas.
			var sent0, dropped0 int64
			for _, snk := range sinks {
				sent0 += snk.Sent()
				dropped0 += snk.Dropped()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.SlotIdx = i
				r.TMs = float64(i) * 0.5
				if err := bb.Publish(r); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := bb.Close(); err != nil {
				b.Fatal(err)
			}
			var sent, dropped int64
			for _, snk := range sinks {
				sent += snk.Sent()
				dropped += snk.Dropped()
			}
			sent -= sent0
			dropped -= dropped0
			if sent+dropped != int64(b.N)*int64(pumps) {
				b.Fatalf("sent(%d) + dropped(%d) != published %d", sent, dropped, int64(b.N)*int64(pumps))
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "records/s")
				b.ReportMetric(float64(b.N)*float64(pumps)/secs, "deliveries/s")
			}
		})
	}
}
