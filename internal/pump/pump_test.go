package pump

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"nrscope/internal/raceflag"
	"nrscope/internal/telemetry"
)

// testRecord fabricates a varied record stream (direction, RNTI, sizes
// and retransmissions all cycle).
func testRecord(i int) telemetry.Record {
	return telemetry.Record{
		SlotIdx:  i,
		RNTI:     uint16(0x4601 + i%7),
		Downlink: i%3 != 0,
		TBS:      1000 + 37*i,
		NumPRB:   1 + i%24,
		MCS:      i % 28,
		IsRetx:   i%5 == 0,
		TMs:      float64(i) * 0.5,
	}
}

func testRecords(n int) []telemetry.Record {
	recs := make([]telemetry.Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	return recs
}

// checkPromSeries asserts decoded remote-write series equal the
// expected samples, one single-sample TimeSeries per expected entry,
// labels in spec-sorted order.
func checkPromSeries(t *testing.T, series []promSeries, want []expectedSample) {
	t.Helper()
	if len(series) != len(want) {
		t.Fatalf("decoded %d timeseries, want %d", len(series), len(want))
	}
	for i, ts := range series {
		w := want[i]
		if len(ts.samples) != 1 {
			t.Fatalf("series %d has %d samples, want 1", i, len(ts.samples))
		}
		for j := 1; j < len(ts.labels); j++ {
			if ts.labels[j-1][0] >= ts.labels[j][0] {
				t.Fatalf("series %d labels not sorted: %v", i, ts.labels)
			}
		}
		if got := ts.label("__name__"); got != fieldDefs[w.metricIdx].prom {
			t.Fatalf("series %d __name__ = %q, want %q", i, got, fieldDefs[w.metricIdx].prom)
		}
		if got := ts.label("dir"); got != w.dir {
			t.Fatalf("series %d dir = %q, want %q", i, got, w.dir)
		}
		if got := ts.label("rnti"); got != w.rnti {
			t.Fatalf("series %d rnti = %q, want %q", i, got, w.rnti)
		}
		if s := ts.samples[0]; s.value != w.value || s.ms != w.ms {
			t.Fatalf("series %d sample = (%v, %d), want (%v, %d)", i, s.value, s.ms, w.value, w.ms)
		}
	}
}

func TestPromRWEncoderRoundTrip(t *testing.T) {
	enc := &PromRW{BaseMs: 1_723_113_600_000}
	recs := testRecords(17)
	for i := range recs {
		enc.Append(&recs[i])
	}
	if enc.Records() != len(recs) {
		t.Fatalf("Records = %d, want %d", enc.Records(), len(recs))
	}
	raw, err := snappyDecode(enc.Frame())
	if err != nil {
		t.Fatal(err)
	}
	series, err := parseWriteRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	checkPromSeries(t, series, expectedSamples(recs, enc.BaseMs))

	// Reset reuses the buffers and drops the pending records.
	enc.Reset()
	if enc.Records() != 0 || enc.Len() != 0 {
		t.Fatalf("Reset left %d records / %d bytes", enc.Records(), enc.Len())
	}
	enc.Append(&recs[3])
	raw, err = snappyDecode(enc.Frame())
	if err != nil {
		t.Fatal(err)
	}
	series, err = parseWriteRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	checkPromSeries(t, series, expectedSamples(recs[3:4], enc.BaseMs))
}

// TestSnappyMultiChunk: bodies past the 64 KiB literal cap still
// round-trip (multiple literal chunks, 2-byte length form).
func TestSnappyMultiChunk(t *testing.T) {
	enc := &PromRW{}
	recs := testRecords(400) // ~4 series * ~70 B each -> > 64 KiB
	for i := range recs {
		enc.Append(&recs[i])
	}
	if enc.Len() <= snappyMaxLiteral {
		t.Fatalf("test body only %d bytes; grow it past %d", enc.Len(), snappyMaxLiteral)
	}
	raw, err := snappyDecode(enc.Frame())
	if err != nil {
		t.Fatal(err)
	}
	series, err := parseWriteRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	checkPromSeries(t, series, expectedSamples(recs, 0))
}

func TestInfluxEncoderRoundTrip(t *testing.T) {
	enc := &Influx{BaseMs: 1_723_113_600_000}
	recs := testRecords(11)
	for i := range recs {
		enc.Append(&recs[i])
	}
	points, err := parseInflux(string(enc.Frame()))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(recs) {
		t.Fatalf("decoded %d points, want %d", len(points), len(recs))
	}
	for i, p := range points {
		r := &recs[i]
		if p.measurement != "nrscope_dci" {
			t.Fatalf("point %d measurement = %q", i, p.measurement)
		}
		if p.tags["dir"] != dirString(r) || p.tags["rnti"] != string(appendRNTI(nil, r.RNTI)) {
			t.Fatalf("point %d tags = %v", i, p.tags)
		}
		if p.ms != recordMs(enc.BaseMs, r) {
			t.Fatalf("point %d ms = %d, want %d", i, p.ms, recordMs(enc.BaseMs, r))
		}
		for fi := range fieldDefs {
			f := &fieldDefs[fi]
			got, ok := p.fields[f.influx]
			if !ok || got != f.get(r) {
				t.Fatalf("point %d field %s = %v (present=%v), want %v", i, f.influx, got, ok, f.get(r))
			}
		}
	}
}

func TestInfluxEncoderGoldenLine(t *testing.T) {
	enc := &Influx{}
	r := telemetry.Record{RNTI: 0x4601, Downlink: true, TBS: 5640, NumPRB: 24, MCS: 12, TMs: 123.7}
	enc.Append(&r)
	want := "nrscope_dci,dir=dl,rnti=0x4601 tbs_bits=5640,prbs=24,mcs=12,retx=0 123\n"
	if got := string(enc.Frame()); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestOTLPEncoderRoundTrip(t *testing.T) {
	enc := &OTLP{BaseMs: 1_723_113_600_000}
	recs := testRecords(13)
	for i := range recs {
		enc.Append(&recs[i])
	}
	points, err := decodeOTLPBody(enc.Frame())
	if err != nil {
		t.Fatal(err)
	}
	want := expectedSamples(recs, enc.BaseMs)
	// decodeOTLPBody returns points grouped by metric; regroup the
	// record-major expectations to match.
	var regrouped []expectedSample
	for fi := range fieldDefs {
		for _, w := range want {
			if w.metricIdx == fi {
				regrouped = append(regrouped, w)
			}
		}
	}
	if len(points) != len(regrouped) {
		t.Fatalf("decoded %d datapoints, want %d", len(points), len(regrouped))
	}
	for i, p := range points {
		w := regrouped[i]
		if p.metric != fieldDefs[w.metricIdx].otlp || p.dir != w.dir || p.rnti != w.rnti ||
			p.value != w.value || p.ns != w.ms*1e6 {
			t.Fatalf("datapoint %d = %+v, want %+v", i, p, w)
		}
	}
}

func TestSpecPromRWDefaults(t *testing.T) {
	s, tun, err := FromSpec("promrw", "http://tsdb:9090/api/v1/write?epoch_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "promrw" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.URL() != "http://tsdb:9090/api/v1/write" {
		t.Errorf("URL = %q", s.URL())
	}
	if got := s.header.Get("X-Prometheus-Remote-Write-Version"); got != "0.1.0" {
		t.Errorf("remote-write version header = %q", got)
	}
	if enc, ok := s.enc.(*PromRW); !ok || enc.BaseMs != 5 {
		t.Errorf("encoder = %#v, want PromRW with BaseMs 5", s.enc)
	}
	if tun.Queue != 4096 || tun.Batch != 256 || tun.Flush != 100*time.Millisecond || tun.Block {
		t.Errorf("tuning = %+v", tun)
	}
}

func TestSpecInfluxURLRewrite(t *testing.T) {
	s, _, err := FromSpec("influx", "http://db:8086?bucket=nr&org=lab&measurement=dci&name=lab_influx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.URL(), "http://db:8086/api/v2/write?") {
		t.Fatalf("URL = %q, want the /api/v2/write path", s.URL())
	}
	for _, want := range []string{"bucket=nr", "org=lab", "precision=ms"} {
		if !strings.Contains(s.URL(), want) {
			t.Errorf("URL %q lacks %s", s.URL(), want)
		}
	}
	if strings.Contains(s.URL(), "measurement=") || strings.Contains(s.URL(), "name=") {
		t.Errorf("URL %q leaked consumed pump options", s.URL())
	}
	if s.Name() != "lab_influx" {
		t.Errorf("Name = %q", s.Name())
	}
	if enc, ok := s.enc.(*Influx); !ok || enc.Measurement != "dci" {
		t.Errorf("encoder = %#v, want Influx with measurement dci", s.enc)
	}
	if _, _, err := FromSpec("influx", "http://db:8086"); err == nil {
		t.Error("influx spec without bucket succeeded")
	}
}

func TestSpecOTLPDefaultPath(t *testing.T) {
	s, _, err := FromSpec("otlp", "http://collector:4318")
	if err != nil {
		t.Fatal(err)
	}
	if s.URL() != "http://collector:4318/v1/metrics" {
		t.Errorf("URL = %q", s.URL())
	}
}

func TestSpecTuningAndErrors(t *testing.T) {
	_, tun, err := FromSpec("otlp", "http://c:4318?batch=32&flush=5ms&queue=64&block=true&frame_kb=256&timeout=2s")
	if err != nil {
		t.Fatal(err)
	}
	if tun.Batch != 32 || tun.Flush != 5*time.Millisecond || tun.Queue != 64 || !tun.Block {
		t.Errorf("tuning = %+v", tun)
	}
	for _, spec := range []struct{ kind, arg string }{
		{"kafka", "http://x"},
		{"promrw", "tsdb:9090"},
		{"promrw", "http://x?batch=-1"},
		{"promrw", "http://x?flush=fast"},
		{"promrw", "http://x?epoch_ms=yesterday"},
		{"influx", "http://x?bucket=b&queue=zero"},
	} {
		if _, _, err := FromSpec(spec.kind, spec.arg); err == nil {
			t.Errorf("FromSpec(%q, %q) succeeded, want error", spec.kind, spec.arg)
		}
	}
}

func TestSpecAuthHook(t *testing.T) {
	s, _, err := FromSpec("promrw", "http://x?token=sesame")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.header.Get("Authorization"); got != "Bearer sesame" {
		t.Errorf("token= header = %q", got)
	}

	t.Setenv("NRSCOPE_TEST_TOKEN", "from-env")
	s, _, err = FromSpec("promrw", "http://x?token_env=NRSCOPE_TEST_TOKEN")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.header.Get("Authorization"); got != "Bearer from-env" {
		t.Errorf("token_env= header = %q", got)
	}
	if _, _, err := FromSpec("promrw", "http://x?token_env=NRSCOPE_UNSET_TOKEN"); err == nil {
		t.Error("token_env naming an unset variable succeeded")
	}

	t.Setenv(AuthEnv, "Basic Zm9vOmJhcg==")
	s, _, err = FromSpec("promrw", "http://x")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.header.Get("Authorization"); got != "Basic Zm9vOmJhcg==" {
		t.Errorf("%s fallback header = %q", AuthEnv, got)
	}
}

// TestEncoderSteadyStateAllocFree: after warm-up, a full
// Reset/Append.../Frame cycle allocates nothing, for every encoder —
// the property the CI bench gate enforces on the promrw path.
func TestEncoderSteadyStateAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc assertions are meaningless")
	}
	recs := testRecords(64)
	for _, enc := range []Encoder{
		&PromRW{BaseMs: 1_723_113_600_000},
		&Influx{BaseMs: 1_723_113_600_000},
		&OTLP{BaseMs: 1_723_113_600_000},
	} {
		cycle := func() {
			enc.Reset()
			for i := range recs {
				enc.Append(&recs[i])
			}
			if len(enc.Frame()) == 0 {
				t.Fatal("empty frame")
			}
		}
		cycle() // warm the buffers
		cycle()
		if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
			t.Errorf("%s: %v allocs per encode cycle, want 0", enc.Kind(), allocs)
		}
	}
}

// otlpPoint is decodeOTLPBody's flat view of one dataPoint.
type otlpPoint struct {
	metric string
	dir    string
	rnti   string
	value  float64
	ns     int64
}

// decodeOTLPBody unmarshals an OTLP/HTTP JSON body into metric-major
// dataPoint order.
func decodeOTLPBody(body []byte) ([]otlpPoint, error) {
	req, err := unmarshalOTLP(body)
	if err != nil {
		return nil, err
	}
	var out []otlpPoint
	for _, rm := range req.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				for _, dp := range m.Gauge.DataPoints {
					ns, err := strconv.ParseInt(dp.TimeUnixNano, 10, 64)
					if err != nil {
						return nil, err
					}
					out = append(out, otlpPoint{
						metric: m.Name,
						dir:    otlpAttrValue(dp.Attributes, "dir"),
						rnti:   otlpAttrValue(dp.Attributes, "rnti"),
						value:  dp.AsDouble,
						ns:     ns,
					})
				}
			}
		}
	}
	return out, nil
}
