package pump

import (
	"math"

	"nrscope/internal/telemetry"
)

// PromRW encodes records as a Prometheus remote-write WriteRequest:
// hand-rolled protobuf wire encoding (the message is four nested types
// deep but every field is tag+varint or tag+len — no generator needed)
// snappy-framed in block format with all-literal chunks. All-literal
// snappy is spec-valid output any receiver's decoder accepts; it trades
// compression for a dependency-free, zero-allocation encode path.
//
// Each record becomes one TimeSeries per schema field, labels sorted as
// the remote-write spec requires (__name__ < dir < rnti), holding one
// sample at the record's wall-clock ms.
type PromRW struct {
	// BaseMs is the Unix-ms epoch added to each record's
	// capture-relative TMs.
	BaseMs int64

	buf []byte // pending WriteRequest message (pre-snappy)
	ts  []byte // scratch: one TimeSeries message
	lbl []byte // scratch: one Label message
	smp []byte // scratch: one Sample message
	val []byte // scratch: one label value (rnti rendering)
	out []byte // snappy-framed request body
	n   int
}

// Proto field numbers from prometheus/prompb.WriteRequest:
//
//	WriteRequest{ repeated TimeSeries timeseries = 1 }
//	TimeSeries{ repeated Label labels = 1; repeated Sample samples = 2 }
//	Label{ string name = 1; string value = 2 }
//	Sample{ double value = 1; int64 timestamp = 2 }

// Kind implements Encoder.
func (e *PromRW) Kind() string { return "promrw" }

// ContentType implements Encoder.
func (e *PromRW) ContentType() string { return "application/x-protobuf" }

// ContentEncoding implements Encoder.
func (e *PromRW) ContentEncoding() string { return "snappy" }

// Reset implements Encoder.
func (e *PromRW) Reset() {
	e.buf = e.buf[:0]
	e.n = 0
}

// Records implements Encoder.
func (e *PromRW) Records() int { return e.n }

// Len implements Encoder: the pre-snappy WriteRequest size.
func (e *PromRW) Len() int { return len(e.buf) }

// Append implements Encoder: one TimeSeries per schema field.
func (e *PromRW) Append(r *telemetry.Record) {
	ms := recordMs(e.BaseMs, r)
	dir := dirString(r)
	e.val = appendRNTI(e.val[:0], r.RNTI)
	for i := range fieldDefs {
		f := &fieldDefs[i]
		e.ts = e.ts[:0]
		e.ts = e.appendLabel(e.ts, "__name__", f.prom)
		e.ts = e.appendLabel(e.ts, "dir", dir)
		e.ts = e.appendLabelBytes(e.ts, "rnti", e.val)
		e.smp = protoKey(e.smp[:0], 1, 1) // value: double, fixed64
		e.smp = appendFixed64(e.smp, math.Float64bits(f.get(r)))
		e.smp = protoKey(e.smp, 2, 0) // timestamp: int64 varint
		e.smp = appendUvarint(e.smp, uint64(ms))
		e.ts = protoBytes(e.ts, 2, e.smp)
		e.buf = protoBytes(e.buf, 1, e.ts)
	}
	e.n++
}

// Frame implements Encoder: snappy block-format framing of the pending
// WriteRequest.
func (e *PromRW) Frame() []byte {
	e.out = appendSnappy(e.out[:0], e.buf)
	return e.out
}

// appendLabel appends one Label{name, value} as a length-delimited
// field 1 of a TimeSeries.
func (e *PromRW) appendLabel(dst []byte, name, value string) []byte {
	e.lbl = protoString(e.lbl[:0], 1, name)
	e.lbl = protoString(e.lbl, 2, value)
	return protoBytes(dst, 1, e.lbl)
}

// appendLabelBytes is appendLabel for a non-constant value rendered
// into a scratch buffer.
func (e *PromRW) appendLabelBytes(dst []byte, name string, value []byte) []byte {
	e.lbl = protoString(e.lbl[:0], 1, name)
	e.lbl = protoKey(e.lbl, 2, 2)
	e.lbl = appendUvarint(e.lbl, uint64(len(value)))
	e.lbl = append(e.lbl, value...)
	return protoBytes(dst, 1, e.lbl)
}

// protoKey appends a field key (field number + wire type).
func protoKey(dst []byte, field, wire int) []byte {
	return appendUvarint(dst, uint64(field)<<3|uint64(wire))
}

// protoBytes appends a length-delimited field holding msg.
func protoBytes(dst []byte, field int, msg []byte) []byte {
	dst = protoKey(dst, field, 2)
	dst = appendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// protoString appends a length-delimited string field.
func protoString(dst []byte, field int, s string) []byte {
	dst = protoKey(dst, field, 2)
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendFixed64 appends v little-endian (proto wire type 1).
func appendFixed64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// snappyMaxLiteral caps literal chunks so their length always fits the
// 1- or 2-byte tag extensions.
const snappyMaxLiteral = 1 << 16

// appendSnappy frames src in snappy block format using only literal
// chunks: the uncompressed-length preamble varint, then literals of up
// to 64 KiB each. Spec-valid for any snappy decoder, no compression.
func appendSnappy(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		n := len(src)
		if n > snappyMaxLiteral {
			n = snappyMaxLiteral
		}
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2)
		case n-1 < 1<<8:
			dst = append(dst, 60<<2, byte(n-1))
		default:
			dst = append(dst, 61<<2, byte(n-1), byte((n-1)>>8))
		}
		dst = append(dst, src[:n]...)
		src = src[n:]
	}
	return dst
}
