package pump

// Test-side wire-format decoders: the e2e tests must prove the frames
// are what real backends parse, so each format is decoded independently
// here — snappy block format uncompressed, the WriteRequest proto
// walked field by field, line protocol split, OTLP JSON unmarshalled —
// and compared sample-for-sample with the published records.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"nrscope/internal/telemetry"
)

// snappyDecode uncompresses a snappy block-format body. It handles
// literal and copy elements (copies so the decoder stays honest even
// though our encoder never emits them).
func snappyDecode(b []byte) ([]byte, error) {
	want, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("snappy: bad length preamble")
	}
	b = b[n:]
	out := make([]byte, 0, want)
	for len(b) > 0 {
		tag := b[0]
		b = b[1:]
		switch tag & 3 {
		case 0: // literal
			l := int(tag >> 2)
			switch {
			case l < 60:
				l++
			case l == 60:
				if len(b) < 1 {
					return nil, fmt.Errorf("snappy: truncated literal length")
				}
				l = int(b[0]) + 1
				b = b[1:]
			case l == 61:
				if len(b) < 2 {
					return nil, fmt.Errorf("snappy: truncated literal length")
				}
				l = int(b[0]) | int(b[1])<<8
				l++
				b = b[2:]
			default:
				return nil, fmt.Errorf("snappy: unsupported literal length width")
			}
			if len(b) < l {
				return nil, fmt.Errorf("snappy: truncated literal body")
			}
			out = append(out, b[:l]...)
			b = b[l:]
		case 1: // copy, 1-byte offset
			if len(b) < 1 {
				return nil, fmt.Errorf("snappy: truncated copy")
			}
			length := int(tag>>2&0x7) + 4
			offset := int(tag>>5)<<8 | int(b[0])
			b = b[1:]
			if err := snappyCopy(&out, offset, length); err != nil {
				return nil, err
			}
		case 2: // copy, 2-byte offset
			if len(b) < 2 {
				return nil, fmt.Errorf("snappy: truncated copy")
			}
			length := int(tag>>2) + 1
			offset := int(b[0]) | int(b[1])<<8
			b = b[2:]
			if err := snappyCopy(&out, offset, length); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("snappy: 4-byte-offset copies unsupported")
		}
	}
	if uint64(len(out)) != want {
		return nil, fmt.Errorf("snappy: decoded %d bytes, preamble said %d", len(out), want)
	}
	return out, nil
}

func snappyCopy(out *[]byte, offset, length int) error {
	if offset <= 0 || offset > len(*out) {
		return fmt.Errorf("snappy: copy offset %d out of range", offset)
	}
	for i := 0; i < length; i++ {
		*out = append(*out, (*out)[len(*out)-offset])
	}
	return nil
}

// promSample is one decoded remote-write sample.
type promSample struct {
	value float64
	ms    int64
}

// promSeries is one decoded remote-write TimeSeries.
type promSeries struct {
	labels  []([2]string) // in wire order
	samples []promSample
}

func (s promSeries) label(name string) string {
	for _, l := range s.labels {
		if l[0] == name {
			return l[1]
		}
	}
	return ""
}

// parseWriteRequest walks a WriteRequest proto message.
func parseWriteRequest(b []byte) ([]promSeries, error) {
	var out []promSeries
	for len(b) > 0 {
		field, wire, rest, err := protoReadKey(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if field != 1 || wire != 2 {
			return nil, fmt.Errorf("proto: unexpected WriteRequest field %d/wire %d", field, wire)
		}
		msg, rest, err := protoReadBytes(b)
		if err != nil {
			return nil, err
		}
		b = rest
		ts, err := parseTimeSeries(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

func parseTimeSeries(b []byte) (promSeries, error) {
	var ts promSeries
	for len(b) > 0 {
		field, wire, rest, err := protoReadKey(b)
		if err != nil {
			return ts, err
		}
		b = rest
		if wire != 2 {
			return ts, fmt.Errorf("proto: unexpected TimeSeries wire type %d", wire)
		}
		msg, rest, err := protoReadBytes(b)
		if err != nil {
			return ts, err
		}
		b = rest
		switch field {
		case 1:
			name, value, err := parseLabel(msg)
			if err != nil {
				return ts, err
			}
			ts.labels = append(ts.labels, [2]string{name, value})
		case 2:
			s, err := parseSample(msg)
			if err != nil {
				return ts, err
			}
			ts.samples = append(ts.samples, s)
		default:
			return ts, fmt.Errorf("proto: unexpected TimeSeries field %d", field)
		}
	}
	return ts, nil
}

func parseLabel(b []byte) (name, value string, err error) {
	for len(b) > 0 {
		field, wire, rest, err := protoReadKey(b)
		if err != nil {
			return "", "", err
		}
		b = rest
		if wire != 2 {
			return "", "", fmt.Errorf("proto: unexpected Label wire type %d", wire)
		}
		s, rest, err := protoReadBytes(b)
		if err != nil {
			return "", "", err
		}
		b = rest
		switch field {
		case 1:
			name = string(s)
		case 2:
			value = string(s)
		default:
			return "", "", fmt.Errorf("proto: unexpected Label field %d", field)
		}
	}
	return name, value, nil
}

func parseSample(b []byte) (promSample, error) {
	var s promSample
	for len(b) > 0 {
		field, wire, rest, err := protoReadKey(b)
		if err != nil {
			return s, err
		}
		b = rest
		switch {
		case field == 1 && wire == 1:
			if len(b) < 8 {
				return s, fmt.Errorf("proto: truncated double")
			}
			s.value = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		case field == 2 && wire == 0:
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return s, fmt.Errorf("proto: bad timestamp varint")
			}
			s.ms = int64(v)
			b = b[n:]
		default:
			return s, fmt.Errorf("proto: unexpected Sample field %d/wire %d", field, wire)
		}
	}
	return s, nil
}

func protoReadKey(b []byte) (field, wire int, rest []byte, err error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("proto: bad field key")
	}
	return int(v >> 3), int(v & 7), b[n:], nil
}

func protoReadBytes(b []byte) (msg, rest []byte, err error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, nil, fmt.Errorf("proto: bad length-delimited field")
	}
	return b[n : n+int(l)], b[n+int(l):], nil
}

// influxPoint is one decoded line-protocol line.
type influxPoint struct {
	measurement string
	tags        map[string]string
	fields      map[string]float64
	ms          int64
}

// parseInflux splits a line-protocol body.
func parseInflux(body string) ([]influxPoint, error) {
	var out []influxPoint
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 3 {
			return nil, fmt.Errorf("influx: line %q has %d segments, want 3", line, len(parts))
		}
		p := influxPoint{tags: map[string]string{}, fields: map[string]float64{}}
		head := strings.Split(parts[0], ",")
		p.measurement = head[0]
		for _, kv := range head[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("influx: bad tag %q", kv)
			}
			p.tags[k] = v
		}
		for _, kv := range strings.Split(parts[1], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("influx: bad field %q", kv)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("influx: field %q: %w", kv, err)
			}
			p.fields[k] = f
		}
		ms, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("influx: timestamp %q: %w", parts[2], err)
		}
		p.ms = ms
		out = append(out, p)
	}
	return out, nil
}

// otlpRequest mirrors the OTLP/HTTP JSON metrics request shape.
type otlpRequest struct {
	ResourceMetrics []struct {
		Resource struct {
			Attributes []otlpAttr `json:"attributes"`
		} `json:"resource"`
		ScopeMetrics []struct {
			Scope struct {
				Name string `json:"name"`
			} `json:"scope"`
			Metrics []struct {
				Name  string `json:"name"`
				Gauge struct {
					DataPoints []struct {
						TimeUnixNano string     `json:"timeUnixNano"`
						AsDouble     float64    `json:"asDouble"`
						Attributes   []otlpAttr `json:"attributes"`
					} `json:"dataPoints"`
				} `json:"gauge"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

// unmarshalOTLP strictly decodes an OTLP/HTTP JSON metrics body.
func unmarshalOTLP(body []byte) (*otlpRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req otlpRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("otlp: %w", err)
	}
	return &req, nil
}

type otlpAttr struct {
	Key   string `json:"key"`
	Value struct {
		StringValue string `json:"stringValue"`
	} `json:"value"`
}

func otlpAttrValue(attrs []otlpAttr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value.StringValue
		}
	}
	return ""
}

// expectedSample is the format-independent shape an exported record
// must decode back to, one per schema field per record.
type expectedSample struct {
	metricIdx int // index into fieldDefs
	rnti      string
	dir       string
	value     float64
	ms        int64
}

// expectedSamples expands records through the shared schema.
func expectedSamples(recs []telemetry.Record, baseMs int64) []expectedSample {
	var out []expectedSample
	for i := range recs {
		r := &recs[i]
		for fi := range fieldDefs {
			out = append(out, expectedSample{
				metricIdx: fi,
				rnti:      string(appendRNTI(nil, r.RNTI)),
				dir:       dirString(r),
				value:     fieldDefs[fi].get(r),
				ms:        recordMs(baseMs, r),
			})
		}
	}
	return out
}
