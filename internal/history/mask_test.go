package history

import (
	"testing"
	"time"
)

// maskStore is a two-cell store at a 10 ms bin width, the fusion
// aggregator's correlation configuration.
func maskStore(t *testing.T, depth int) *Store {
	t.Helper()
	st := New(Config{BinWidth: 10 * time.Millisecond, Depth: depth})
	for cell := uint16(1); cell <= 2; cell++ {
		if err := st.AddCell(cell, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestActivityMask(t *testing.T) {
	st := maskStore(t, 32)
	// Active in bins 2, 3 and 7 (bin width 10 ms).
	for _, tms := range []float64{21, 25, 33, 71} {
		st.Ingest(1, msRec(tms, 0x10, true, 1000, 5, false))
	}
	m, ok := st.ActivityMask(1, 0x10)
	if !ok {
		t.Fatal("tracked UE has no mask")
	}
	if m.FirstIdx != 2 || m.BinMs != 10 {
		t.Errorf("mask FirstIdx=%d BinMs=%v", m.FirstIdx, m.BinMs)
	}
	if m.Active != 3 || len(m.Mask) != 6 {
		t.Errorf("mask active=%d len=%d, want 3 active over 6 bins", m.Active, len(m.Mask))
	}
	for i, want := range []bool{true, true, false, false, false, true} {
		if m.Mask[i] != want {
			t.Errorf("mask[%d] = %v, want %v", i, m.Mask[i], want)
		}
	}
	if _, ok := st.ActivityMask(1, 0xBEEF); ok {
		t.Error("unknown UE returned a mask")
	}
}

func TestMaskOverlapAlignsAcrossCells(t *testing.T) {
	st := maskStore(t, 64)
	// Cell 1 UE active in bins 0..9; cell 2 UE active in bins 5..14:
	// 5 shared bins over 10 active each -> overlap 0.5.
	for i := 0; i < 10; i++ {
		st.Ingest(1, msRec(float64(i*10)+1, 0x11, true, 1000, 5, false))
		st.Ingest(2, msRec(float64((i+5)*10)+1, 0x22, true, 1000, 5, false))
	}
	ov, ok := st.PairOverlap(1, 0x11, 2, 0x22)
	if !ok {
		t.Fatal("tracked pair not correlated")
	}
	if ov != 0.5 {
		t.Errorf("overlap = %v, want 0.5", ov)
	}
	// Symmetric.
	rev, _ := st.PairOverlap(2, 0x22, 1, 0x11)
	if rev != ov {
		t.Errorf("overlap not symmetric: %v vs %v", ov, rev)
	}
	if _, ok := st.PairOverlap(1, 0x11, 2, 0xBEEF); ok {
		t.Error("unknown UE correlated")
	}
}

func TestMaskOverlapDisjointWindows(t *testing.T) {
	st := maskStore(t, 8)
	st.Ingest(1, msRec(5, 0x11, true, 1000, 5, false))
	// The cell-2 session starts far past cell 1's retained window.
	st.Ingest(2, msRec(10005, 0x22, true, 1000, 5, false))
	ov, ok := st.PairOverlap(1, 0x11, 2, 0x22)
	if !ok || ov != 0 {
		t.Errorf("disjoint sessions overlap %v (ok=%v), want 0", ov, ok)
	}
}

func TestMaskBoundedByDepth(t *testing.T) {
	st := maskStore(t, 16)
	// 200 active bins: only the newest 16 are retained.
	for i := 0; i < 200; i++ {
		st.Ingest(1, msRec(float64(i*10)+1, 0x11, true, 1000, 5, false))
	}
	m, ok := st.ActivityMask(1, 0x11)
	if !ok {
		t.Fatal("no mask")
	}
	if len(m.Mask) != 16 || m.Active != 16 {
		t.Errorf("mask len=%d active=%d, want 16/16", len(m.Mask), m.Active)
	}
	if m.FirstIdx != 199-15 {
		t.Errorf("mask FirstIdx = %d, want %d", m.FirstIdx, 199-15)
	}
}

func TestHasCell(t *testing.T) {
	st := maskStore(t, 8)
	if !st.HasCell(1) || !st.HasCell(2) {
		t.Error("registered cells not reported")
	}
	if st.HasCell(42) {
		t.Error("unknown cell reported")
	}
	if st.Depth() != 8 {
		t.Errorf("Depth = %d", st.Depth())
	}
}
