// Package history is the queryable UE session-history store: it
// subscribes to the telemetry bus (Block policy, so it is lossless) and
// maintains, per cell and per C-RNTI, fixed-capacity ring-buffer time
// series of windowed aggregates — DL/UL bits, grant and retx counts,
// MCS min/avg/max, PRBs, spare-capacity share — at a configurable bin
// width (default 100 ms).
//
// The paper's headline use case feeds per-UE telemetry back to
// applications faster than half an RTT; this package is the read-side
// state that makes the feed *queryable*: "what was UE 0x4601's
// throughput over the last 2 s", "which UEs saw a retx spike". Memory
// is strictly bounded: each series retains Depth bins, at most MaxUEs
// UE series exist process-wide (idle-LRU eviction), and an optional
// idle horizon ages out silent sessions — so the store survives the
// ROADMAP's "millions of users" churn without growing without bound.
//
// On top of the store sit a Go query API (Query, TopK, Snapshot, UEs,
// Anomalies), an HTTP JSON API (http.go) mounted next to /metrics, and
// a first anomaly layer (anomaly.go) flagging per-UE retx-rate spikes
// and throughput collapse against a trailing EWMA baseline.
package history

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/telemetry"
)

// Config tunes a Store. The zero value is usable: every field defaults
// sensibly in New.
type Config struct {
	// BinWidth is the aggregation bin width (default 100 ms).
	BinWidth time.Duration
	// Depth is how many bins each series retains (default 600 — one
	// minute of history at the default bin width).
	Depth int
	// MaxUEs caps the number of UE series across all cells; beyond it
	// the least-recently-seen UE is evicted (default 10000).
	MaxUEs int
	// IdleHorizon evicts UE series idle longer than this, independent
	// of the LRU cap (0 = LRU-only).
	IdleHorizon time.Duration
	// AnomalyDepth is the anomaly ring capacity (default 256).
	AnomalyDepth int
	// MaxQuerySamples caps how many samples a single query may
	// materialize (default 100000). With a lake attached the queryable
	// span is no longer bounded by Depth, so an unconstrained
	// full-history query at downsample=1 could allocate without bound;
	// over-wide requests fail with a *TooWideError instead — narrow the
	// range or raise the downsample factor.
	MaxQuerySamples int
	// Anomaly thresholds; see anomaly.go (zero = defaults).
	Anomaly AnomalyConfig
}

func (c Config) withDefaults() Config {
	if c.BinWidth <= 0 {
		c.BinWidth = 100 * time.Millisecond
	}
	if c.Depth <= 0 {
		c.Depth = 600
	}
	if c.MaxUEs <= 0 {
		c.MaxUEs = 10000
	}
	if c.AnomalyDepth <= 0 {
		c.AnomalyDepth = 256
	}
	if c.MaxQuerySamples <= 0 {
		c.MaxQuerySamples = 100000
	}
	c.Anomaly = c.Anomaly.withDefaults()
	return c
}

// ueKey identifies one C-RNTI on one cell (C-RNTIs are cell-local).
type ueKey struct {
	cell uint16
	rnti uint16
}

// ueSeries is one UE's retained history plus its anomaly state.
type ueSeries struct {
	key     ueKey
	series  series
	lastTMs float64
	elem    *list.Element // position in the store's LRU list

	// close and evict are allocated once at series creation so the
	// ingest hot path passes preexisting func values (no per-record
	// closure).
	close func(b Bin, binIdx int64)
	evict func(binIdx int64, b *Bin)

	anom anomalyState
}

// cellHistory is one monitored cell: its slot duration (for records
// that predate the t_ms field) and the cell-level aggregate series.
type cellHistory struct {
	id     uint16
	ttiMS  float64
	series series
	evict  func(binIdx int64, b *Bin)
}

// Store is the session-history store. All methods are safe for
// concurrent use; ingest takes a write lock, queries a read lock.
type Store struct {
	cfg   Config
	binMS float64

	mu      sync.RWMutex
	cells   map[uint16]*cellHistory
	ues     map[ueKey]*ueSeries
	lru     *list.List // front = most recently seen UE
	anoms   anomalyRing
	lastTMs float64 // newest record time seen (ms)
	lake    Lake    // optional spill target; nil = evicted bins are lost
}

// New creates a store with the given configuration.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:   cfg,
		binMS: float64(cfg.BinWidth) / float64(time.Millisecond),
		cells: make(map[uint16]*cellHistory),
		ues:   make(map[ueKey]*ueSeries),
		lru:   list.New(),
		anoms: newAnomalyRing(cfg.AnomalyDepth),
	}
}

// BinWidth returns the store's bin width.
func (st *Store) BinWidth() time.Duration { return st.cfg.BinWidth }

// AddCell registers a monitored cell. tti is the cell's slot duration,
// used to derive bin time for records without a t_ms stamp.
func (st *Store) AddCell(cellID uint16, tti time.Duration) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.cells[cellID]; dup {
		return fmt.Errorf("history: cell %d already registered", cellID)
	}
	c := &cellHistory{
		id:     cellID,
		ttiMS:  float64(tti) / float64(time.Millisecond),
		series: newSeries(st.cfg.Depth),
	}
	c.evict = func(binIdx int64, b *Bin) {
		if st.lake != nil {
			st.lake.SpillBin(c.id, 0, true, binIdx, b)
		}
	}
	st.cells[cellID] = c
	return nil
}

// SubscribeTo attaches the store to a bus as a lossless (Block policy)
// subscriber feeding Ingest for cellID. The returned subscription is
// drained in full when the bus closes.
func (st *Store) SubscribeTo(b *bus.Bus, cellID uint16) (*bus.Subscription, error) {
	return b.Subscribe("history", bus.Block, bus.SinkFunc(func(recs []telemetry.Record) error {
		for _, r := range recs {
			st.Ingest(cellID, r)
		}
		return nil
	}))
}

// Ingest folds one record into the cell's and (unless the record is a
// common-search-space broadcast) the UE's current bin. The hot path is
// allocation-free for already-tracked UEs.
func (st *Store) Ingest(cellID uint16, rec telemetry.Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	c := st.cells[cellID]
	if c == nil {
		met.dropped.Inc()
		return
	}
	tms := rec.TMs
	if tms <= 0 {
		tms = float64(rec.SlotIdx) * c.ttiMS
	}
	if tms > st.lastTMs {
		st.lastTMs = tms
	}
	idx := int64(tms / st.binMS)
	met.ingested.Inc()

	if cb := c.series.advance(idx, nil, c.evict); cb != nil {
		cb.addRecord(rec)
	} else {
		met.late.Inc()
	}
	if rec.Common {
		return
	}
	k := ueKey{cellID, rec.RNTI}
	u := st.ues[k]
	if u == nil {
		u = st.addUE(k)
	}
	st.lru.MoveToFront(u.elem)
	u.lastTMs = tms
	if ub := u.series.advance(idx, u.close, u.evict); ub != nil {
		ub.addRecord(rec)
	} else {
		met.late.Inc()
	}
	if st.cfg.IdleHorizon > 0 {
		st.evictIdleLocked(tms)
	}
}

// IngestSpare folds one TTI's §5.4.1 spare-capacity split into the
// history: per-UE fair-share spare bits onto each tracked UE's bin, and
// the cell's used/total RE accounting onto the cell bin. Spare data
// never creates a UE series (a UE history starts at its first DCI).
func (st *Store) IngestSpare(cellID uint16, slotIdx int, sp *telemetry.SpareCapacity) {
	if sp == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	c := st.cells[cellID]
	if c == nil {
		met.dropped.Inc()
		return
	}
	tms := float64(slotIdx) * c.ttiMS
	if tms > st.lastTMs {
		st.lastTMs = tms
	}
	idx := int64(tms / st.binMS)
	if cb := c.series.advance(idx, nil, c.evict); cb != nil {
		cb.UsedREs += int64(sp.UsedREs)
		cb.TotalREs += int64(sp.TotalREs)
	}
	for rnti, bits := range sp.PerUE {
		u := st.ues[ueKey{cellID, rnti}]
		if u == nil {
			continue
		}
		if ub := u.series.advance(idx, u.close, u.evict); ub != nil {
			ub.SpareBits += bits
		}
	}
}

// addUE creates a UE series, evicting the least-recently-seen UE first
// if the store is at its cap.
func (st *Store) addUE(k ueKey) *ueSeries {
	if len(st.ues) >= st.cfg.MaxUEs {
		if back := st.lru.Back(); back != nil {
			st.evictLocked(back.Value.(*ueSeries))
		}
	}
	u := &ueSeries{key: k, series: newSeries(st.cfg.Depth)}
	u.close = func(b Bin, binIdx int64) { st.binClosed(u, b, binIdx) }
	u.evict = func(binIdx int64, b *Bin) {
		if st.lake != nil {
			st.lake.SpillBin(u.key.cell, u.key.rnti, false, binIdx, b)
		}
	}
	u.elem = st.lru.PushFront(u)
	st.ues[k] = u
	met.tracked.Set(int64(len(st.ues)))
	return u
}

// evictIdleLocked ages out UEs idle past the horizon, oldest first.
func (st *Store) evictIdleLocked(nowMs float64) {
	horizonMS := float64(st.cfg.IdleHorizon) / float64(time.Millisecond)
	for {
		back := st.lru.Back()
		if back == nil {
			return
		}
		u := back.Value.(*ueSeries)
		if nowMs-u.lastTMs <= horizonMS {
			return
		}
		st.evictLocked(u)
	}
}

func (st *Store) evictLocked(u *ueSeries) {
	// A whole-series eviction spills every retained bin: the UE may
	// come back under the same C-RNTI, and a later query must still see
	// the full session.
	st.spillSeriesLocked(u.key.cell, u.key.rnti, false, &u.series)
	st.lru.Remove(u.elem)
	delete(st.ues, u.key)
	met.evicted.Inc()
	met.tracked.Set(int64(len(st.ues)))
}

// TrackedUEs reports how many UE series the store currently holds.
func (st *Store) TrackedUEs() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.ues)
}

// LastMs returns the newest record time the store has seen, in ms.
func (st *Store) LastMs() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.lastTMs
}
