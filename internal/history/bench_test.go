package history

import (
	"testing"
	"time"

	"nrscope/internal/telemetry"
)

// BenchmarkHistoryIngest measures the steady-state ingest rate with 10k
// tracked UEs — the CI bench artifact's records/s + allocs/record
// number for the store's hot path.
func BenchmarkHistoryIngest(b *testing.B) {
	st := New(Config{BinWidth: 100 * time.Millisecond, Depth: 64, MaxUEs: 10000})
	if err := st.AddCell(1, 500*time.Microsecond); err != nil {
		b.Fatal(err)
	}
	const ues = 10000
	for i := 0; i < ues; i++ {
		st.Ingest(1, telemetry.Record{TMs: float64(i) * 0.01, RNTI: uint16(i), Downlink: true, TBS: 1000, MCS: 10, NumPRB: 4})
	}
	rec := telemetry.Record{Downlink: true, TBS: 1000, MCS: 10, NumPRB: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.RNTI = uint16(i % ues)
		rec.TMs = 100 + float64(i)*0.001
		rec.IsRetx = i%16 == 0
		st.Ingest(1, rec)
	}
}

// BenchmarkHistoryQuery measures a windowed UE query against a busy
// store (read path under the ingest write lock's contention profile).
func BenchmarkHistoryQuery(b *testing.B) {
	st := New(Config{BinWidth: 100 * time.Millisecond, Depth: 64, MaxUEs: 10000})
	if err := st.AddCell(1, 500*time.Microsecond); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		st.Ingest(1, telemetry.Record{TMs: float64(i) * 0.01, RNTI: uint16(i % 1000), Downlink: true, TBS: 1000, MCS: 10, NumPRB: 4})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bins, _ := st.QueryWindow(1, uint16(i%1000), time.Second, 1); len(bins) == 0 {
			b.Fatal("empty query")
		}
	}
}
