package history

import (
	"errors"
	"testing"
	"time"

	"nrscope/internal/bus"
	"nrscope/internal/obs"
	"nrscope/internal/telemetry"
)

// msRec builds a data record stamped at tms milliseconds.
func msRec(tms float64, rnti uint16, downlink bool, tbs, mcs int, retx bool) telemetry.Record {
	return telemetry.Record{
		TMs: tms, RNTI: rnti, Downlink: downlink, TBS: tbs,
		MCS: mcs, NumPRB: 4, IsRetx: retx,
	}
}

func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st := New(cfg)
	if err := st.AddCell(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBinAggregation(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 16})
	st.Ingest(1, msRec(10, 0x100, true, 1000, 5, false))
	st.Ingest(1, msRec(50, 0x100, true, 2000, 9, false))
	st.Ingest(1, msRec(120, 0x100, true, 4000, 7, false))
	st.Ingest(1, msRec(130, 0x100, true, 4000, 7, true)) // retx: no bits
	st.Ingest(1, msRec(140, 0x100, false, 600, 3, false))

	bins, _ := st.Query(1, 0x100, 0, 0, 1)
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2 (%+v)", len(bins), bins)
	}
	b0 := bins[0]
	if b0.StartMs != 0 || b0.DLBits != 3000 || b0.Grants != 2 || b0.Retx != 0 {
		t.Errorf("bin0 = %+v", b0)
	}
	if b0.MCSMin != 5 || b0.MCSMax != 9 || b0.MCSAvg != 7 {
		t.Errorf("bin0 MCS = %d/%.1f/%d", b0.MCSMin, b0.MCSAvg, b0.MCSMax)
	}
	if want := 3000 / 0.1; b0.DLBps != want {
		t.Errorf("bin0 DLBps = %v, want %v", b0.DLBps, want)
	}
	b1 := bins[1]
	if b1.StartMs != 100 || b1.DLBits != 4000 || b1.ULBits != 600 || b1.Grants != 3 || b1.Retx != 1 {
		t.Errorf("bin1 = %+v", b1)
	}
	if want := 1.0 / 3; b1.RetxRate != want {
		t.Errorf("bin1 retx rate = %v, want %v", b1.RetxRate, want)
	}
}

func TestSlotTimeFallback(t *testing.T) {
	// Records without a t_ms stamp derive bin time from SlotIdx and
	// the cell's registered TTI (1 ms in this store).
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 16})
	st.Ingest(1, telemetry.Record{SlotIdx: 250, RNTI: 0x200, Downlink: true, TBS: 500})
	bins, _ := st.Query(1, 0x200, 0, 0, 1)
	if len(bins) != 1 || bins[0].StartMs != 200 {
		t.Fatalf("bins = %+v, want one bin at 200ms", bins)
	}
}

func TestQueryRangeAndDownsample(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 16})
	for i := 0; i < 6; i++ {
		st.Ingest(1, msRec(float64(i)*100+10, 0x1, true, 100, 4, false))
	}
	// Range query: [200, 400) covers bins 2 and 3.
	bins, _ := st.Query(1, 0x1, 200, 400, 1)
	if len(bins) != 2 || bins[0].StartMs != 200 || bins[1].StartMs != 300 {
		t.Fatalf("range query = %+v", bins)
	}
	// Downsample by 3: 6 bins -> 2 samples of 300 ms each.
	ds, _ := st.Query(1, 0x1, 0, 0, 3)
	if len(ds) != 2 {
		t.Fatalf("downsample = %+v", ds)
	}
	if ds[0].SpanMs != 300 || ds[0].DLBits != 300 || ds[0].Grants != 3 {
		t.Errorf("downsampled bin0 = %+v", ds[0])
	}
	if want := 300 / 0.3; ds[0].DLBps != want {
		t.Errorf("downsampled DLBps = %v, want %v", ds[0].DLBps, want)
	}
}

func TestLateRecordWithinAndBeyondRing(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4})
	before := obs.Snapshot()
	st.Ingest(1, msRec(810, 0x1, true, 100, 4, false))  // bin 8
	st.Ingest(1, msRec(1000, 0x1, true, 100, 4, false)) // bin 10: ring now holds 8..10
	st.Ingest(1, msRec(910, 0x1, true, 100, 4, false))  // bin 9: late but retained
	st.Ingest(1, msRec(100, 0x1, true, 100, 4, false))  // bin 1: older than the ring
	d := obs.Delta(before, obs.Snapshot())
	// The too-old record misses both the cell and the UE series.
	if d["nrscope_history_late_total"] != 2 {
		t.Errorf("late = %v, want 2", d["nrscope_history_late_total"])
	}
	bins, _ := st.Query(1, 0x1, 0, 0, 1)
	var total int64
	for _, b := range bins {
		total += b.DLBits
	}
	if total != 300 {
		t.Errorf("retained DL bits = %d, want 300", total)
	}
}

func TestCommonRecordsStayOffUESeries(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 8})
	rec := msRec(10, 0xFFFF, true, 100, 4, false)
	rec.Common = true
	st.Ingest(1, rec)
	if st.TrackedUEs() != 0 {
		t.Error("common record created a UE series")
	}
	cell, _ := st.CellQuery(1, 0, 0, 1)
	if len(cell) != 1 || cell[0].Grants != 1 {
		t.Errorf("cell series = %+v, want the common grant", cell)
	}
}

// TestMaxUEsBounded is the acceptance-criteria memory bound: 50k
// distinct RNTIs through a 1000-UE store never exceed the cap.
func TestMaxUEsBounded(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4, MaxUEs: 1000})
	before := obs.Snapshot()
	for i := 0; i < 50000; i++ {
		st.Ingest(1, msRec(float64(i)*0.1, uint16(i), true, 100, 4, false))
		if n := len(st.ues); n > 1000 {
			t.Fatalf("tracked UEs %d exceeded cap after %d ingests", n, i+1)
		}
		if st.lru.Len() != len(st.ues) {
			t.Fatalf("LRU list %d out of sync with map %d", st.lru.Len(), len(st.ues))
		}
	}
	if st.TrackedUEs() != 1000 {
		t.Errorf("tracked = %d, want 1000", st.TrackedUEs())
	}
	d := obs.Delta(before, obs.Snapshot())
	if d["nrscope_history_ues_evicted_total"] != 49000 {
		t.Errorf("evicted = %v, want 49000", d["nrscope_history_ues_evicted_total"])
	}
	// LRU: the survivors are the most recently seen RNTIs.
	if bins, _ := st.Query(1, uint16(49999), 0, 0, 1); bins == nil {
		t.Error("most recent UE was evicted")
	}
	if bins, _ := st.Query(1, uint16(0), 0, 0, 1); bins != nil {
		t.Error("oldest UE survived past the cap")
	}
}

func TestLRUTouchOnActivity(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4, MaxUEs: 2})
	st.Ingest(1, msRec(10, 0xA, true, 100, 4, false))
	st.Ingest(1, msRec(20, 0xB, true, 100, 4, false))
	st.Ingest(1, msRec(30, 0xA, true, 100, 4, false)) // touch A: B becomes LRU
	st.Ingest(1, msRec(40, 0xC, true, 100, 4, false)) // evicts B, not A
	if bins, _ := st.Query(1, 0xA, 0, 0, 1); bins == nil {
		t.Error("recently touched UE evicted")
	}
	if bins, _ := st.Query(1, 0xB, 0, 0, 1); bins != nil {
		t.Error("least-recently-seen UE survived")
	}
}

func TestIdleHorizonEviction(t *testing.T) {
	st := newTestStore(t, Config{
		BinWidth: 100 * time.Millisecond, Depth: 4, MaxUEs: 100,
		IdleHorizon: time.Second,
	})
	st.Ingest(1, msRec(0, 0xA, true, 100, 4, false))
	st.Ingest(1, msRec(500, 0xB, true, 100, 4, false))
	st.Ingest(1, msRec(5000, 0xC, true, 100, 4, false)) // A and B now idle > 1 s
	if got := st.TrackedUEs(); got != 1 {
		t.Errorf("tracked = %d, want 1 after idle eviction", got)
	}
	if bins, _ := st.Query(1, 0xC, 0, 0, 1); bins == nil {
		t.Error("active UE evicted")
	}
}

func TestTopK(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 16})
	st.Ingest(1, msRec(10, 0xA, true, 1000, 4, false))
	st.Ingest(1, msRec(20, 0xB, true, 5000, 4, false))
	st.Ingest(1, msRec(30, 0xC, true, 3000, 4, false))
	st.Ingest(1, msRec(40, 0xC, true, 100, 4, true)) // retx for C
	ranks, err := st.TopK("dl_bits", time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[0].RNTI != 0xB || ranks[1].RNTI != 0xC {
		t.Fatalf("TopK(dl_bits) = %+v", ranks)
	}
	if ranks[0].Value != 5000 {
		t.Errorf("top value = %v, want 5000", ranks[0].Value)
	}
	retx, err := st.TopK("retx", time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(retx) != 1 || retx[0].RNTI != 0xC || retx[0].Value != 1 {
		t.Errorf("TopK(retx) = %+v", retx)
	}
	if _, err := st.TopK("nope", time.Second, 1); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestSpareIngest(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 8})
	st.Ingest(1, msRec(10, 0xA, true, 1000, 4, false))
	sp := &telemetry.SpareCapacity{
		TotalREs: 5000, UsedREs: 2000,
		PerUE: map[uint16]float64{0xA: 1234, 0xB: 999}, // 0xB untracked
	}
	st.IngestSpare(1, 50, sp) // slot 50 at 1 ms TTI -> bin 0
	bins, _ := st.Query(1, 0xA, 0, 0, 1)
	if len(bins) != 1 || bins[0].SpareBits != 1234 {
		t.Errorf("UE spare bins = %+v", bins)
	}
	if st.TrackedUEs() != 1 {
		t.Error("spare data created a UE series")
	}
	cell, _ := st.CellQuery(1, 0, 0, 1)
	if len(cell) != 1 || cell[0].UsedREs != 2000 || cell[0].TotalREs != 5000 {
		t.Errorf("cell spare accounting = %+v", cell)
	}
}

func TestSubscribeToBusLossless(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64})
	b := bus.New()
	if _, err := st.SubscribeTo(b, 1); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := b.Publish(msRec(float64(i), uint16(0x10+i%3), true, 100, 4, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil { // Block policy: drains in full
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if len(snap.Cells) != 1 || snap.Cells[0].Grants != n {
		t.Fatalf("snapshot = %+v, want %d grants", snap, n)
	}
	if snap.TrackedUEs != 3 {
		t.Errorf("tracked = %d, want 3", snap.TrackedUEs)
	}
}

func TestUnknownCellDropped(t *testing.T) {
	st := newTestStore(t, Config{})
	before := obs.Snapshot()
	st.Ingest(7, msRec(10, 0xA, true, 100, 4, false))
	d := obs.Delta(before, obs.Snapshot())
	if d["nrscope_history_dropped_total"] != 1 {
		t.Errorf("dropped = %v, want 1", d["nrscope_history_dropped_total"])
	}
	if st.TrackedUEs() != 0 {
		t.Error("unknown cell created a UE series")
	}
}

// TestIngestAllocs enforces the allocation-lean acceptance bound on
// the steady-state ingest path (already-tracked UE): <= 2 allocs/record.
func TestIngestAllocs(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64, MaxUEs: 256})
	for i := 0; i < 128; i++ {
		st.Ingest(1, msRec(float64(i), uint16(i), true, 100, 4, false))
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		st.Ingest(1, msRec(130+float64(i)*0.05, uint16(i%128), true, 100, 4, false))
		i++
	})
	if avg > 2 {
		t.Errorf("ingest allocs/record = %.2f, want <= 2", avg)
	}
}

func TestGapLargerThanRingResets(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4})
	st.Ingest(1, msRec(10, 0xA, true, 1000, 4, false))
	// Jump far beyond the ring: old bins must vanish, not loop O(gap).
	st.Ingest(1, msRec(1e9, 0xA, true, 2000, 4, false))
	bins, _ := st.Query(1, 0xA, 0, 0, 1)
	var total int64
	for _, b := range bins {
		total += b.DLBits
	}
	if total != 2000 {
		t.Errorf("retained DL bits after jump = %d, want 2000", total)
	}
}

// TestQueryTooWide: a query materializing more samples than
// MaxQuerySamples must fail with a TooWideError instead of allocating
// proportionally to the span (with a lake attached the span is
// unbounded — days of 100 ms bins is an OOM vector, not a slow query).
func TestQueryTooWide(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64, MaxQuerySamples: 10})
	for i := 0; i < 50; i++ {
		st.Ingest(1, msRec(float64(i)*100+10, 0x1, true, 100, 4, false))
	}
	_, err := st.Query(1, 0x1, 0, 0, 1) // 50 bins > cap 10
	var twe *TooWideError
	if !errors.As(err, &twe) {
		t.Fatalf("over-wide query err = %v, want *TooWideError", err)
	}
	if twe.Samples != 50 || twe.Cap != 10 {
		t.Errorf("TooWideError = %+v, want samples 50 cap 10", twe)
	}
	// Raising the downsample factor brings the request under the cap...
	bins, err := st.Query(1, 0x1, 0, 0, 5)
	if err != nil || len(bins) != 10 {
		t.Fatalf("downsampled query = %d bins, err %v; want 10, nil", len(bins), err)
	}
	// ...and so does narrowing the range.
	bins, err = st.Query(1, 0x1, 0, 1000, 1)
	if err != nil || len(bins) != 10 {
		t.Fatalf("narrowed query = %d bins, err %v; want 10, nil", len(bins), err)
	}
	if _, err := st.CellQuery(1, 0, 0, 1); !errors.As(err, &twe) {
		t.Errorf("over-wide cell query err = %v, want *TooWideError", err)
	}
}
