package history

import (
	"fmt"
	"sort"
	"time"
)

// BinSample is one query-result bin: the retained sums plus derived
// rates, in JSON form for both the Go and HTTP query APIs.
type BinSample struct {
	// StartMs/SpanMs delimit the sample: [StartMs, StartMs+SpanMs).
	StartMs   float64 `json:"start_ms"`
	SpanMs    float64 `json:"span_ms"`
	DLBits    int64   `json:"dl_bits"`
	ULBits    int64   `json:"ul_bits"`
	Grants    int64   `json:"grants"`
	Retx      int64   `json:"retx"`
	RetxRate  float64 `json:"retx_rate"`
	PRBs      int64   `json:"prbs"`
	MCSMin    int     `json:"mcs_min"`
	MCSAvg    float64 `json:"mcs_avg"`
	MCSMax    int     `json:"mcs_max"`
	DLBps     float64 `json:"dl_bps"`
	ULBps     float64 `json:"ul_bps"`
	SpareBits float64 `json:"spare_bits,omitempty"`
	UsedREs   int64   `json:"used_res,omitempty"`
	TotalREs  int64   `json:"total_res,omitempty"`
}

func (st *Store) sample(b Bin, startMs, spanMs float64) BinSample {
	s := BinSample{
		StartMs: startMs, SpanMs: spanMs,
		DLBits: b.DLBits, ULBits: b.ULBits,
		Grants: b.Grants, Retx: b.Retx, PRBs: b.PRBs,
		SpareBits: b.SpareBits, UsedREs: b.UsedREs, TotalREs: b.TotalREs,
	}
	if b.Grants > 0 {
		s.RetxRate = float64(b.Retx) / float64(b.Grants)
	}
	if b.MCSCount > 0 {
		s.MCSMin = b.MCSMin
		s.MCSMax = b.MCSMax
		s.MCSAvg = float64(b.MCSSum) / float64(b.MCSCount)
	}
	if spanMs > 0 {
		s.DLBps = float64(b.DLBits) / (spanMs / 1e3)
		s.ULBps = float64(b.ULBits) / (spanMs / 1e3)
	}
	return s
}

// TooWideError reports a query whose materialized sample count would
// exceed the store's MaxQuerySamples cap. The HTTP layer maps it to a
// 400; callers narrow from/to or raise the downsample factor.
type TooWideError struct {
	Samples int64 // samples the request would materialize
	Cap     int
}

func (e *TooWideError) Error() string {
	return fmt.Sprintf("history: query would materialize %d samples (cap %d): narrow from_ms/to_ms or raise downsample", e.Samples, e.Cap)
}

// querySeries extracts [fromMs, toMs) from a series merged with its
// lake spill-over, grouping `downsample` consecutive bins per sample
// (1 = raw bins). Bin indices below the RAM ring's retained window are
// answered from the lake; indices the ring covers are answered from
// RAM (plus any disk bins a re-created series left behind, which merge
// by summing). Caller holds st.mu.
func (st *Store) querySeries(cell, rnti uint16, cellSeries bool, s *series, fromMs, toMs float64, downsample int) ([]BinSample, error) {
	if downsample < 1 {
		downsample = 1
	}
	var diskMin, diskMax int64
	var haveDisk bool
	if st.lake != nil {
		diskMin, diskMax, haveDisk = st.lake.SeriesBounds(cell, rnti, cellSeries)
	}
	haveRAM := s != nil && s.n > 0
	if !haveRAM && !haveDisk {
		return nil, nil
	}
	var first, last int64
	switch {
	case haveRAM && haveDisk:
		first, last = min(diskMin, s.oldestIdx()), max(diskMax, s.curIdx)
	case haveRAM:
		first, last = s.oldestIdx(), s.curIdx
	default:
		first, last = diskMin, diskMax
	}
	if fromMs > 0 {
		if i := int64(fromMs / st.binMS); i > first {
			first = i
		}
	}
	if toMs > 0 {
		if i := int64((toMs - 1e-9) / st.binMS); i < last {
			last = i
		}
	}
	if first > last {
		return nil, nil
	}
	ds := int64(downsample)
	// With a lake attached [first, last] can span days of spilled bins;
	// the two materialized slices below are proportional to it, so an
	// unbounded span is an OOM vector, not just a slow query.
	if n := (last-first)/ds + 1; n > int64(st.cfg.MaxQuerySamples) {
		return nil, &TooWideError{Samples: n, Cap: st.cfg.MaxQuerySamples}
	}
	acc := make([]Bin, (last-first)/ds+1)
	if haveDisk && diskMin <= last && diskMax >= first {
		_ = st.lake.ReadSeries(cell, rnti, cellSeries, first, last, func(idx int64, b Bin) {
			acc[(idx-first)/ds].Merge(b)
		})
	}
	if haveRAM {
		rFirst, rLast := max(s.oldestIdx(), first), min(s.curIdx, last)
		for idx := rFirst; idx <= rLast; idx++ {
			acc[(idx-first)/ds].Merge(s.at(idx))
		}
	}
	out := make([]BinSample, 0, len(acc))
	for i := range acc {
		start := first + int64(i)*ds
		span := min(ds, last-start+1)
		out = append(out, st.sample(acc[i], float64(start)*st.binMS, float64(span)*st.binMS))
	}
	return out, nil
}

// Query returns a UE's windowed aggregates over [fromMs, toMs), oldest
// first, merging `downsample` bins per sample (toMs <= 0 means "up to
// now"; fromMs <= 0 means "from the oldest bin anywhere — disk or
// RAM"). A nil slice with a nil error means the UE is unknown to both
// the rings and the lake (or its history has no bins in range); a
// *TooWideError means the range must be narrowed or downsampled.
func (st *Store) Query(cellID, rnti uint16, fromMs, toMs float64, downsample int) ([]BinSample, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	var s *series
	if u := st.ues[ueKey{cellID, rnti}]; u != nil {
		s = &u.series
	} else if st.lake == nil {
		return nil, nil
	}
	return st.querySeries(cellID, rnti, false, s, fromMs, toMs, downsample)
}

// QueryWindow is Query over the trailing window ending at the newest
// record the store has seen.
func (st *Store) QueryWindow(cellID, rnti uint16, window time.Duration, downsample int) ([]BinSample, error) {
	from := st.LastMs() - float64(window)/float64(time.Millisecond)
	if from < 0 {
		from = 0
	}
	return st.Query(cellID, rnti, from, 0, downsample)
}

// CellQuery returns the cell-level aggregate series over [fromMs, toMs),
// merged across the RAM ring and the lake.
func (st *Store) CellQuery(cellID uint16, fromMs, toMs float64, downsample int) ([]BinSample, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	c := st.cells[cellID]
	if c == nil {
		return nil, nil
	}
	return st.querySeries(cellID, 0, true, &c.series, fromMs, toMs, downsample)
}

// UERank is one TopK result row.
type UERank struct {
	Cell  uint16  `json:"cell"`
	RNTI  uint16  `json:"rnti"`
	Value float64 `json:"value"`
}

// TopK ranks tracked UEs (across all cells) by a metric summed over the
// trailing window: "dl_bits", "ul_bits", "bits", "grants", "retx",
// "retx_rate", "prbs", "spare_bits". With a lake attached, windows
// reaching below a UE's RAM ring pull the spilled remainder from disk,
// and UEs evicted from RAM entirely re-enter the ranking from their
// spilled bins alone.
func (st *Store) TopK(metric string, window time.Duration, k int) ([]UERank, error) {
	extract, err := metricFunc(metric)
	if err != nil {
		return nil, err
	}
	// Phase 1, under the store lock: sum the RAM rings and snapshot
	// which series need a disk remainder. The lake reads themselves run
	// after the lock is released — a cold-cache TopK over a large lake
	// must not stall Ingest for the scan's duration (the lake is
	// internally synchronized).
	type ueAcc struct {
		key    ueKey
		acc    Bin
		diskTo int64 // >= fromIdx: read [fromIdx, diskTo] from the lake
	}
	st.mu.RLock()
	met.queries.Inc()
	lake := st.lake
	fromIdx := int64((st.lastTMs - float64(window)/float64(time.Millisecond)) / st.binMS)
	lastIdx := int64(st.lastTMs / st.binMS)
	accs := make([]ueAcc, 0, len(st.ues))
	for key, u := range st.ues {
		a := ueAcc{key: key, diskTo: fromIdx - 1}
		first := u.series.oldestIdx()
		if fromIdx > first {
			first = fromIdx
		}
		for idx := first; idx <= u.series.curIdx && u.series.n > 0; idx++ {
			a.acc.Merge(u.series.at(idx))
		}
		if lake != nil && u.series.n > 0 && fromIdx < u.series.oldestIdx() {
			a.diskTo = u.series.oldestIdx() - 1
		}
		accs = append(accs, a)
	}
	var cellIDs []uint16
	if lake != nil {
		cellIDs = make([]uint16, 0, len(st.cells))
		for cellID := range st.cells {
			cellIDs = append(cellIDs, cellID)
		}
	}
	st.mu.RUnlock()

	ranks := make([]UERank, 0, len(accs))
	for i := range accs {
		a := &accs[i]
		if lake != nil && a.diskTo >= fromIdx {
			if _, _, ok := lake.SeriesBounds(a.key.cell, a.key.rnti, false); ok {
				_ = lake.ReadSeries(a.key.cell, a.key.rnti, false, fromIdx, a.diskTo,
					func(_ int64, b Bin) { a.acc.Merge(b) })
			}
		}
		ranks = append(ranks, UERank{Cell: a.key.cell, RNTI: a.key.rnti, Value: extract(a.acc)})
	}
	if lake != nil {
		// UEs that only survive on disk (evicted from RAM). "Live" is
		// the set snapshotted above: a UE evicted after the unlock was
		// already ranked from its RAM bins.
		live := make(map[ueKey]bool, len(accs))
		for i := range accs {
			live[accs[i].key] = true
		}
		for _, cellID := range cellIDs {
			for _, rnti := range lake.SpilledUEs(cellID) {
				if live[ueKey{cellID, rnti}] {
					continue
				}
				var acc Bin
				_ = lake.ReadSeries(cellID, rnti, false, fromIdx, lastIdx,
					func(_ int64, b Bin) { acc.Merge(b) })
				if acc == (Bin{}) {
					continue
				}
				ranks = append(ranks, UERank{Cell: cellID, RNTI: rnti, Value: extract(acc)})
			}
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].Value != ranks[j].Value {
			return ranks[i].Value > ranks[j].Value
		}
		if ranks[i].Cell != ranks[j].Cell {
			return ranks[i].Cell < ranks[j].Cell
		}
		return ranks[i].RNTI < ranks[j].RNTI
	})
	if k > 0 && len(ranks) > k {
		ranks = ranks[:k]
	}
	return ranks, nil
}

func metricFunc(metric string) (func(Bin) float64, error) {
	switch metric {
	case "dl_bits":
		return func(b Bin) float64 { return float64(b.DLBits) }, nil
	case "ul_bits":
		return func(b Bin) float64 { return float64(b.ULBits) }, nil
	case "bits":
		return func(b Bin) float64 { return float64(b.DLBits + b.ULBits) }, nil
	case "grants":
		return func(b Bin) float64 { return float64(b.Grants) }, nil
	case "retx":
		return func(b Bin) float64 { return float64(b.Retx) }, nil
	case "retx_rate":
		return func(b Bin) float64 {
			if b.Grants == 0 {
				return 0
			}
			return float64(b.Retx) / float64(b.Grants)
		}, nil
	case "prbs":
		return func(b Bin) float64 { return float64(b.PRBs) }, nil
	case "spare_bits":
		return func(b Bin) float64 { return b.SpareBits }, nil
	default:
		return nil, fmt.Errorf("history: unknown metric %q", metric)
	}
}

// UESummary is one tracked UE's rolled-up retained history.
type UESummary struct {
	Cell   uint16  `json:"cell"`
	RNTI   uint16  `json:"rnti"`
	LastMs float64 `json:"last_ms"`
	Bins   int     `json:"bins"`
	DLBits int64   `json:"dl_bits"`
	ULBits int64   `json:"ul_bits"`
	Grants int64   `json:"grants"`
	Retx   int64   `json:"retx"`
}

// UEs lists the tracked UEs of a cell with rolled-up totals over their
// retained bins, ordered by RNTI.
func (st *Store) UEs(cellID uint16) []UESummary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	out := make([]UESummary, 0, len(st.ues))
	for key, u := range st.ues {
		if key.cell != cellID {
			continue
		}
		var acc Bin
		for idx := u.series.oldestIdx(); idx <= u.series.curIdx && u.series.n > 0; idx++ {
			acc.Merge(u.series.at(idx))
		}
		out = append(out, UESummary{
			Cell: key.cell, RNTI: key.rnti, LastMs: u.lastTMs, Bins: u.series.n,
			DLBits: acc.DLBits, ULBits: acc.ULBits, Grants: acc.Grants, Retx: acc.Retx,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RNTI < out[j].RNTI })
	return out
}

// CellSummary is one cell's rolled-up retained history.
type CellSummary struct {
	Cell   uint16  `json:"cell"`
	UEs    int     `json:"ues"`
	DLBits int64   `json:"dl_bits"`
	ULBits int64   `json:"ul_bits"`
	Grants int64   `json:"grants"`
	Retx   int64   `json:"retx"`
	LastMs float64 `json:"last_ms"`
}

// Snapshot is the store's state roll-up.
type Snapshot struct {
	TrackedUEs int           `json:"tracked_ues"`
	LastMs     float64       `json:"last_ms"`
	BinMs      float64       `json:"bin_ms"`
	Depth      int           `json:"depth"`
	MaxUEs     int           `json:"max_ues"`
	Anomalies  int           `json:"anomalies"`
	Cells      []CellSummary `json:"cells"`
}

// Snapshot rolls up the whole store: per-cell totals over retained
// bins, tracked-UE counts, and configuration echoes.
func (st *Store) Snapshot() Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	snap := Snapshot{
		TrackedUEs: len(st.ues), LastMs: st.lastTMs, BinMs: st.binMS,
		Depth: st.cfg.Depth, MaxUEs: st.cfg.MaxUEs, Anomalies: st.anoms.n,
	}
	perCell := make(map[uint16]int)
	for key := range st.ues {
		perCell[key.cell]++
	}
	cells := make([]uint16, 0, len(st.cells))
	for id := range st.cells {
		cells = append(cells, id)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, id := range cells {
		c := st.cells[id]
		var acc Bin
		for idx := c.series.oldestIdx(); idx <= c.series.curIdx && c.series.n > 0; idx++ {
			acc.Merge(c.series.at(idx))
		}
		snap.Cells = append(snap.Cells, CellSummary{
			Cell: id, UEs: perCell[id],
			DLBits: acc.DLBits, ULBits: acc.ULBits, Grants: acc.Grants, Retx: acc.Retx,
			LastMs: float64(c.series.curIdx+1) * st.binMS,
		})
	}
	return snap
}
