package history

// Series activity masks: the cross-cell correlation primitives behind
// the fusion aggregator's carrier-aggregation detector. A mask reduces a
// UE's retained bin series to "had >=1 DCI in this bin" booleans on the
// store's global bin-index timeline, so two sessions on different cells
// can be correlated bin-for-bin without either side keeping raw records.

// SeriesMask is a UE's per-bin activity over its retained window. Bin i
// of Mask covers absolute bin index FirstIdx+i (bin indices are global:
// tms / bin width), so masks from different cells align in time.
type SeriesMask struct {
	Cell uint16
	RNTI uint16
	// FirstIdx is the absolute bin index of Mask[0].
	FirstIdx int64
	// BinMs is the store's bin width in milliseconds.
	BinMs float64
	// Mask is true where the bin saw at least one grant (DCI).
	Mask []bool
	// Active is the number of true bins.
	Active int
}

// Overlap is |A∩B| / min(activeA, activeB) over the aligned bin-index
// timeline — the fraction of the sparser session's active bins that are
// also active in the other. Masks from stores with different bin widths
// are not comparable; the caller is expected to use one store.
func (m SeriesMask) Overlap(o SeriesMask) float64 {
	if m.Active == 0 || o.Active == 0 {
		return 0
	}
	lo := m.FirstIdx
	if o.FirstIdx > lo {
		lo = o.FirstIdx
	}
	hi := m.FirstIdx + int64(len(m.Mask)) - 1
	if h := o.FirstIdx + int64(len(o.Mask)) - 1; h < hi {
		hi = h
	}
	n := 0
	for idx := lo; idx <= hi; idx++ {
		if m.Mask[idx-m.FirstIdx] && o.Mask[idx-o.FirstIdx] {
			n++
		}
	}
	denom := m.Active
	if o.Active < denom {
		denom = o.Active
	}
	return float64(n) / float64(denom)
}

// maskLocked builds a UE's activity mask. Caller holds st.mu.
func (st *Store) maskLocked(u *ueSeries) SeriesMask {
	m := SeriesMask{
		Cell: u.key.cell, RNTI: u.key.rnti,
		FirstIdx: u.series.oldestIdx(), BinMs: st.binMS,
	}
	if u.series.n == 0 {
		return m
	}
	m.Mask = make([]bool, u.series.n)
	for i := range m.Mask {
		if u.series.at(m.FirstIdx+int64(i)).Grants > 0 {
			m.Mask[i] = true
			m.Active++
		}
	}
	return m
}

// ActivityMask returns a UE's per-bin activity mask over its retained
// window, or ok=false when the UE is not tracked.
func (st *Store) ActivityMask(cellID, rnti uint16) (SeriesMask, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	u := st.ues[ueKey{cellID, rnti}]
	if u == nil {
		return SeriesMask{}, false
	}
	return st.maskLocked(u), true
}

// PairOverlap correlates two sessions' retained activity in one locked
// pass: the mask overlap of (cellA, rntiA) against (cellB, rntiB).
// ok is false when either UE is not tracked.
func (st *Store) PairOverlap(cellA, rntiA, cellB, rntiB uint16) (overlap float64, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	met.queries.Inc()
	ua := st.ues[ueKey{cellA, rntiA}]
	ub := st.ues[ueKey{cellB, rntiB}]
	if ua == nil || ub == nil {
		return 0, false
	}
	return st.maskLocked(ua).Overlap(st.maskLocked(ub)), true
}

// HasCell reports whether the cell is registered, so a component handed
// a shared store (e.g. the fusion aggregator) can register cells it is
// the first to see without racing AddCell's duplicate check.
func (st *Store) HasCell(cellID uint16) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.cells[cellID]
	return ok
}

// Depth returns how many bins each series retains.
func (st *Store) Depth() int { return st.cfg.Depth }
