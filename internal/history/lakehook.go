package history

// The store's durability seam: a Lake receives every bin the RAM rings
// evict (and every anomaly the anomaly ring overwrites) and serves them
// back at query time, so Query/CellQuery/TopK/Anomalies answer
// transparently across RAM + disk. internal/lake implements the
// interface with append-only columnar segment files; tests implement it
// with an in-memory map. The store never imports the implementation —
// the dependency points the other way.

// Lake is the on-disk (or fake) spill target attached to a Store.
//
// Spill methods are invoked on the ingest path with the store lock held
// and must not block or allocate: implementations enqueue into a
// bounded ring and do the encoding on their own goroutine. Read methods
// are invoked on the query path — usually under the store read lock,
// but TopK issues its disk reads after releasing it so slow scans
// cannot stall ingest, so implementations must be internally
// synchronized against concurrent spills. Reads must observe every
// spilled bin exactly once, including bins still queued behind the
// writer — a bin leaves the RAM ring and becomes the lake's
// responsibility at the moment Spill returns.
type Lake interface {
	// SpillBin receives one bin evicted from a ring. cellSeries
	// distinguishes the cell-aggregate series from a UE's (rnti is 0
	// for cell series). Empty bins are never spilled. b is only valid
	// for the duration of the call (it points into a ring slot about
	// to be reused) — implementations copy it before returning.
	SpillBin(cell, rnti uint16, cellSeries bool, binIdx int64, b *Bin)

	// SpillAnomaly receives one anomaly event evicted from the
	// bounded anomaly ring.
	SpillAnomaly(a Anomaly)

	// ReadSeries visits every spilled bin of one series with binIdx in
	// [fromIdx, toIdx], in no particular order. The same binIdx may be
	// visited more than once (a series evicted and re-created can
	// spill partial bins); callers merge.
	ReadSeries(cell, rnti uint16, cellSeries bool, fromIdx, toIdx int64, visit func(binIdx int64, b Bin)) error

	// SeriesBounds reports the min/max spilled bin index of a series,
	// or ok=false when the lake holds nothing for it.
	SeriesBounds(cell, rnti uint16, cellSeries bool) (minIdx, maxIdx int64, ok bool)

	// SpilledUEs lists the RNTIs with spilled bins on a cell (used to
	// rank UEs that were evicted from RAM entirely).
	SpilledUEs(cell uint16) []uint16

	// Anomalies returns the spilled anomaly events, oldest first.
	Anomalies() []Anomaly
}

// AttachLake connects a spill target to the store. Bins evicted from
// the rings (and anomalies evicted from the anomaly ring) are handed to
// the lake instead of being lost, and the query APIs merge lake data
// below the rings' retained window. Attach before the first Ingest.
func (st *Store) AttachLake(l Lake) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lake = l
}

// ueKnown reports whether a UE is live in RAM or has spilled history in
// the lake — the 404-vs-empty distinction for /history/ue.
func (st *Store) ueKnown(cell, rnti uint16) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if _, live := st.ues[ueKey{cell, rnti}]; live {
		return true
	}
	if st.lake != nil {
		if _, _, ok := st.lake.SeriesBounds(cell, rnti, false); ok {
			return true
		}
	}
	return false
}

// spillSeriesLocked spills every non-empty retained bin of a series —
// the whole-series eviction path (UE LRU / idle eviction). Caller holds
// st.mu.
func (st *Store) spillSeriesLocked(cell, rnti uint16, cellSeries bool, s *series) {
	if st.lake == nil || s.n == 0 {
		return
	}
	for idx := s.oldestIdx(); idx <= s.curIdx; idx++ {
		if p := s.atPtr(idx); *p != (Bin{}) {
			st.lake.SpillBin(cell, rnti, cellSeries, idx, p)
		}
	}
}
