package history

import (
	"testing"
	"time"

	"nrscope/internal/obs"
)

// fillBin ingests `grants` records into the UE's bin starting at
// binStart ms, of which the first `retx` are retransmissions.
func fillBin(st *Store, rnti uint16, binStart float64, grants, retx, tbs int) {
	for i := 0; i < grants; i++ {
		st.Ingest(1, msRec(binStart+float64(i), rnti, true, tbs, 10, i < retx))
	}
}

func TestRetxSpikeFlagged(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64})
	before := obs.Snapshot()
	// Ten clean bins establish a near-zero retx baseline.
	for b := 0; b < 10; b++ {
		fillBin(st, 0xA, float64(b)*100, 10, 0, 1000)
	}
	// Spike bin: 6 of 10 grants are retransmissions.
	fillBin(st, 0xA, 1000, 10, 6, 1000)
	// A record in the next bin closes the spike bin and runs detection.
	st.Ingest(1, msRec(1150, 0xA, true, 1000, 10, false))

	anoms := st.Anomalies()
	var spike *Anomaly
	for i := range anoms {
		if anoms[i].Kind == KindRetxSpike {
			spike = &anoms[i]
		}
	}
	if spike == nil {
		t.Fatalf("no retx spike flagged; anomalies = %+v", anoms)
	}
	if spike.RNTI != 0xA || spike.Cell != 1 || spike.AtMs != 1000 {
		t.Errorf("spike = %+v", *spike)
	}
	if spike.Value != 0.6 {
		t.Errorf("spike value = %v, want 0.6", spike.Value)
	}
	d := obs.Delta(before, obs.Snapshot())
	if d["nrscope_history_anomaly_retx_spike_total"] != 1 {
		t.Errorf("spike counter = %v, want 1", d["nrscope_history_anomaly_retx_spike_total"])
	}
}

func TestCleanTrafficFlagsNothing(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64})
	for b := 0; b < 30; b++ {
		fillBin(st, 0xB, float64(b)*100, 10, 1, 1000) // steady 10% retx
	}
	if n := len(st.Anomalies()); n != 0 {
		t.Errorf("clean traffic flagged %d anomalies: %+v", n, st.Anomalies())
	}
}

func TestThroughputCollapseLatchesOnce(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64})
	before := obs.Snapshot()
	// Ten busy bins: ~100 kbit per bin baseline.
	for b := 0; b < 10; b++ {
		fillBin(st, 0xC, float64(b)*100, 10, 0, 10000)
	}
	// Silence until bin 20: the gap closes bins 9..19, most of them
	// empty against a high baseline -> one collapse (latched).
	st.Ingest(1, msRec(2010, 0xC, true, 100, 10, false))

	var collapses int
	for _, a := range st.Anomalies() {
		if a.Kind == KindTputCollapse {
			collapses++
			if a.RNTI != 0xC {
				t.Errorf("collapse on wrong UE: %+v", a)
			}
		}
	}
	if collapses != 1 {
		t.Errorf("collapses = %d, want exactly 1 (latched)", collapses)
	}
	d := obs.Delta(before, obs.Snapshot())
	if d["nrscope_history_anomaly_tput_collapse_total"] != 1 {
		t.Errorf("collapse counter = %v", d["nrscope_history_anomaly_tput_collapse_total"])
	}
}

func TestIdleUENeverCollapses(t *testing.T) {
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 64})
	// A trickle UE: tiny bins, long gaps. Baseline stays under the
	// floor, so silence is idleness, not collapse.
	for b := 0; b < 20; b += 5 {
		st.Ingest(1, msRec(float64(b)*100, 0xD, true, 200, 4, false))
	}
	for _, a := range st.Anomalies() {
		if a.Kind == KindTputCollapse {
			t.Fatalf("idle UE flagged as collapsed: %+v", a)
		}
	}
}

func TestAnomalyRingBounded(t *testing.T) {
	r := newAnomalyRing(4)
	for i := 0; i < 10; i++ {
		r.add(Anomaly{AtMs: float64(i)})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, a := range got {
		if a.AtMs != float64(6+i) {
			t.Errorf("ring[%d] = %v, want %v (oldest-first, newest retained)", i, a.AtMs, 6+i)
		}
	}
}
