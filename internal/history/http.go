package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The HTTP JSON query API, mounted on the observability mux next to
// /metrics and /events:
//
//	GET /history/ues?cell=N                     tracked UEs + roll-ups
//	GET /history/ue?rnti=0x4601&window=2s       one UE's windowed bins
//	GET /history/ue?rnti=...&from_ms=&to_ms=&downsample=N
//	GET /history/cell?cell=N&window=...         cell-level aggregate bins
//	GET /history/anomalies                      flagged anomaly events
//	GET /history/topk?metric=dl_bits&window=1s&k=10
//
// The cell parameter may be omitted when the store tracks one cell.

// Mux is the subset of http.ServeMux (and obs.Server) the store mounts
// its endpoints on.
type Mux interface {
	Handle(pattern string, h http.Handler)
}

// Mount registers the /history/* endpoints on a mux.
func (st *Store) Mount(m Mux) {
	m.Handle("/history/ues", http.HandlerFunc(st.serveUEs))
	m.Handle("/history/ue", http.HandlerFunc(st.serveUE))
	m.Handle("/history/cell", http.HandlerFunc(st.serveCell))
	m.Handle("/history/anomalies", http.HandlerFunc(st.serveAnomalies))
	m.Handle("/history/topk", http.HandlerFunc(st.serveTopK))
}

// Handler returns a standalone handler serving the /history/* routes.
func (st *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	st.Mount(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError answers with a JSON error body — malformed parameters get
// 400, unknown cells/UEs get 404 — so API consumers never have to
// distinguish "empty result" from "you asked about nothing".
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// cellParam resolves the cell query parameter, defaulting to the only
// registered cell when there is exactly one. A malformed or ambiguous
// parameter is a 400; a well-formed cell id that is not registered is
// a 404.
func (st *Store) cellParam(r *http.Request) (uint16, int, error) {
	if s := r.URL.Query().Get("cell"); s != "" {
		v, err := strconv.ParseUint(s, 10, 16)
		if err != nil {
			return 0, http.StatusBadRequest, fmt.Errorf("bad cell %q", s)
		}
		st.mu.RLock()
		_, known := st.cells[uint16(v)]
		st.mu.RUnlock()
		if !known {
			return 0, http.StatusNotFound, fmt.Errorf("cell %d not monitored", v)
		}
		return uint16(v), 0, nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.cells) == 1 {
		for id := range st.cells {
			return id, 0, nil
		}
	}
	return 0, http.StatusBadRequest, fmt.Errorf("cell parameter required (%d cells tracked)", len(st.cells))
}

func parseRNTI(s string) (uint16, error) {
	if s == "" {
		return 0, fmt.Errorf("rnti parameter required")
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 16)
	if err != nil {
		return 0, fmt.Errorf("bad rnti %q", s)
	}
	return uint16(v), nil
}

// rangeParams extracts from_ms/to_ms (or window=duration) + downsample.
func (st *Store) rangeParams(r *http.Request) (fromMs, toMs float64, downsample int, err error) {
	q := r.URL.Query()
	if s := q.Get("window"); s != "" {
		d, perr := time.ParseDuration(s)
		if perr != nil || d <= 0 {
			return 0, 0, 0, fmt.Errorf("bad window %q", s)
		}
		fromMs = st.LastMs() - float64(d)/float64(time.Millisecond)
		if fromMs < 0 {
			fromMs = 0
		}
	}
	if s := q.Get("from_ms"); s != "" {
		if fromMs, err = strconv.ParseFloat(s, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad from_ms %q", s)
		}
	}
	if s := q.Get("to_ms"); s != "" {
		if toMs, err = strconv.ParseFloat(s, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad to_ms %q", s)
		}
	}
	downsample = 1
	if s := q.Get("downsample"); s != "" {
		if downsample, err = strconv.Atoi(s); err != nil || downsample < 1 {
			return 0, 0, 0, fmt.Errorf("bad downsample %q", s)
		}
	}
	return fromMs, toMs, downsample, nil
}

func (st *Store) serveUEs(w http.ResponseWriter, r *http.Request) {
	cell, code, err := st.cellParam(r)
	if err != nil {
		writeError(w, code, "%s", err)
		return
	}
	ues := st.UEs(cell)
	writeJSON(w, struct {
		Cell    uint16      `json:"cell"`
		Tracked int         `json:"tracked"`
		UEs     []UESummary `json:"ues"`
	}{cell, len(ues), ues})
}

func (st *Store) serveUE(w http.ResponseWriter, r *http.Request) {
	cell, code, err := st.cellParam(r)
	if err != nil {
		writeError(w, code, "%s", err)
		return
	}
	rnti, err := parseRNTI(r.URL.Query().Get("rnti"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	fromMs, toMs, downsample, err := st.rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	bins, err := st.Query(cell, rnti, fromMs, toMs, downsample)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	if bins == nil && !st.ueKnown(cell, rnti) {
		// Distinguish an unknown UE from an empty range.
		writeError(w, http.StatusNotFound, "rnti 0x%04x not tracked on cell %d", rnti, cell)
		return
	}
	writeJSON(w, struct {
		Cell  uint16      `json:"cell"`
		RNTI  uint16      `json:"rnti"`
		BinMs float64     `json:"bin_ms"`
		Bins  []BinSample `json:"bins"`
	}{cell, rnti, st.binMS * float64(downsample), bins})
}

func (st *Store) serveCell(w http.ResponseWriter, r *http.Request) {
	cell, code, err := st.cellParam(r)
	if err != nil {
		writeError(w, code, "%s", err)
		return
	}
	fromMs, toMs, downsample, err := st.rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	bins, err := st.CellQuery(cell, fromMs, toMs, downsample)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	writeJSON(w, struct {
		Cell     uint16      `json:"cell"`
		BinMs    float64     `json:"bin_ms"`
		Snapshot Snapshot    `json:"snapshot"`
		Bins     []BinSample `json:"bins"`
	}{cell, st.binMS * float64(downsample), st.Snapshot(), bins})
}

func (st *Store) serveAnomalies(w http.ResponseWriter, r *http.Request) {
	anoms := st.Anomalies()
	writeJSON(w, struct {
		Count     int       `json:"count"`
		Anomalies []Anomaly `json:"anomalies"`
	}{len(anoms), anoms})
}

func (st *Store) serveTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		metric = "dl_bits"
	}
	window := time.Second
	if s := q.Get("window"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad window %q", s)
			return
		}
		window = d
	}
	k := 10
	if s := q.Get("k"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad k %q", s)
			return
		}
		k = v
	}
	ranks, err := st.TopK(metric, window, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	writeJSON(w, struct {
		Metric string   `json:"metric"`
		Ranks  []UERank `json:"ranks"`
	}{metric, ranks})
}
