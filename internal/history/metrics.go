package history

import "nrscope/internal/obs"

// met is the history subsystem's instrumentation, registered on the
// Default registry under the nrscope_history_* prefix.
var met = struct {
	ingested      *obs.Counter
	dropped       *obs.Counter
	late          *obs.Counter
	tracked       *obs.Gauge
	evicted       *obs.Counter
	queries       *obs.Counter
	retxSpikes    *obs.Counter
	tputCollapses *obs.Counter
}{
	ingested: obs.Default.Counter("nrscope_history_records_total",
		"telemetry records folded into the history store"),
	dropped: obs.Default.Counter("nrscope_history_dropped_total",
		"records dropped by the history store (unknown cell)"),
	late: obs.Default.Counter("nrscope_history_late_total",
		"records older than the retained bin window, not folded in"),
	tracked: obs.Default.Gauge("nrscope_history_ues_tracked",
		"UE series currently retained by the history store"),
	evicted: obs.Default.Counter("nrscope_history_ues_evicted_total",
		"UE series evicted (LRU cap or idle horizon)"),
	queries: obs.Default.Counter("nrscope_history_queries_total",
		"history queries served (Go and HTTP APIs)"),
	retxSpikes: obs.Default.Counter("nrscope_history_anomaly_retx_spike_total",
		"per-UE retx-rate spike anomalies flagged"),
	tputCollapses: obs.Default.Counter("nrscope_history_anomaly_tput_collapse_total",
		"per-UE throughput collapse anomalies flagged"),
}
