package history

import (
	"fmt"
	"testing"
	"time"
)

// fakeLake is an in-memory history.Lake used to test the store's spill
// hooks and RAM+disk query merge without touching disk.
type fakeLake struct {
	bins  map[string]map[int64]Bin
	anoms []Anomaly
}

func newFakeLake() *fakeLake {
	return &fakeLake{bins: make(map[string]map[int64]Bin)}
}

func fkey(cell, rnti uint16, cellSeries bool) string {
	return fmt.Sprintf("%d/%d/%v", cell, rnti, cellSeries)
}

func (f *fakeLake) SpillBin(cell, rnti uint16, cellSeries bool, binIdx int64, b *Bin) {
	k := fkey(cell, rnti, cellSeries)
	m := f.bins[k]
	if m == nil {
		m = make(map[int64]Bin)
		f.bins[k] = m
	}
	old := m[binIdx]
	old.Merge(*b)
	m[binIdx] = old
}

func (f *fakeLake) SpillAnomaly(a Anomaly) { f.anoms = append(f.anoms, a) }

func (f *fakeLake) ReadSeries(cell, rnti uint16, cellSeries bool, fromIdx, toIdx int64, visit func(binIdx int64, b Bin)) error {
	for idx, b := range f.bins[fkey(cell, rnti, cellSeries)] {
		if idx >= fromIdx && idx <= toIdx {
			visit(idx, b)
		}
	}
	return nil
}

func (f *fakeLake) SeriesBounds(cell, rnti uint16, cellSeries bool) (int64, int64, bool) {
	m := f.bins[fkey(cell, rnti, cellSeries)]
	if len(m) == 0 {
		return 0, 0, false
	}
	var minIdx, maxIdx int64
	first := true
	for idx := range m {
		if first || idx < minIdx {
			minIdx = idx
		}
		if first || idx > maxIdx {
			maxIdx = idx
		}
		first = false
	}
	return minIdx, maxIdx, true
}

func (f *fakeLake) SpilledUEs(cell uint16) []uint16 {
	var out []uint16
	for k, m := range f.bins {
		var c uint16
		var r uint16
		var cs bool
		fmt.Sscanf(k, "%d/%d/%t", &c, &r, &cs)
		if c == cell && !cs && len(m) > 0 {
			out = append(out, r)
		}
	}
	return out
}

func (f *fakeLake) Anomalies() []Anomaly { return append([]Anomaly(nil), f.anoms...) }

// TestEvictSpillsToLake drives a tiny ring past its depth and checks
// every evicted bin lands in the lake exactly once, with RAM + disk
// together covering the full ingest span.
func TestEvictSpillsToLake(t *testing.T) {
	fl := newFakeLake()
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4})
	st.AttachLake(fl)

	const bins = 12
	for i := 0; i < bins; i++ {
		st.Ingest(1, msRec(float64(i)*100+10, 0x1, true, 100, 4, false))
	}
	// Ring depth 4 holds bins 8..11; bins 0..7 must have spilled.
	ue := fl.bins[fkey(1, 0x1, false)]
	if len(ue) != bins-4 {
		t.Fatalf("spilled UE bins = %d, want %d (%v)", len(ue), bins-4, ue)
	}
	for idx := int64(0); idx < bins-4; idx++ {
		b, ok := ue[idx]
		if !ok || b.DLBits != 100 || b.Grants != 1 {
			t.Errorf("spilled bin %d = %+v, ok=%v", idx, b, ok)
		}
	}
	cell := fl.bins[fkey(1, 0, true)]
	if len(cell) != bins-4 {
		t.Errorf("spilled cell bins = %d, want %d", len(cell), bins-4)
	}

	// The merged query must cover the whole span, oldest bin first.
	got, _ := st.Query(1, 0x1, 0, 0, 1)
	if len(got) != bins {
		t.Fatalf("merged query bins = %d, want %d", len(got), bins)
	}
	for i, b := range got {
		if b.StartMs != float64(i)*100 || b.DLBits != 100 {
			t.Errorf("merged bin %d = %+v", i, b)
		}
	}
}

// TestGapEvictionSpills covers the advance gap-reset path: a silence
// gap wider than the ring must still spill everything retained.
func TestGapEvictionSpills(t *testing.T) {
	fl := newFakeLake()
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4})
	st.AttachLake(fl)

	st.Ingest(1, msRec(10, 0x1, true, 100, 4, false))
	st.Ingest(1, msRec(110, 0x1, true, 200, 4, false))
	// Jump 50 bins ahead: the whole retained window is evicted at once.
	st.Ingest(1, msRec(5010, 0x1, true, 300, 4, false))

	ue := fl.bins[fkey(1, 0x1, false)]
	if len(ue) != 2 || ue[0].DLBits != 100 || ue[1].DLBits != 200 {
		t.Fatalf("gap spill = %v, want bins 0 and 1", ue)
	}
	got, _ := st.Query(1, 0x1, 0, 0, 1)
	if len(got) != 51 {
		t.Fatalf("merged span = %d bins, want 51 (0..50)", len(got))
	}
	if got[0].DLBits != 100 || got[1].DLBits != 200 || got[50].DLBits != 300 {
		t.Errorf("merged endpoints = %+v ... %+v", got[0], got[50])
	}
}

// TestUEEvictionSpillsWholeSeries covers the LRU eviction path: a UE
// pushed out by the MaxUEs cap must leave its whole retained series in
// the lake and stay rankable by TopK.
func TestUEEvictionSpillsWholeSeries(t *testing.T) {
	fl := newFakeLake()
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 8, MaxUEs: 2})
	st.AttachLake(fl)

	st.Ingest(1, msRec(10, 0xA, true, 1000, 4, false))
	st.Ingest(1, msRec(20, 0xB, true, 500, 4, false))
	st.Ingest(1, msRec(30, 0xC, true, 200, 4, false)) // evicts 0xA

	if st.TrackedUEs() != 2 {
		t.Fatalf("tracked = %d, want 2", st.TrackedUEs())
	}
	if got := fl.bins[fkey(1, 0xA, false)]; len(got) != 1 || got[0].DLBits != 1000 {
		t.Fatalf("evicted UE spill = %v", got)
	}
	// The evicted UE still answers queries from disk alone...
	bins, _ := st.Query(1, 0xA, 0, 0, 1)
	if len(bins) != 1 || bins[0].DLBits != 1000 {
		t.Fatalf("disk-only query = %+v", bins)
	}
	// ...and re-enters TopK from its spilled bins.
	ranks, err := st.TopK("dl_bits", time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 || ranks[0].RNTI != 0xA || ranks[0].Value != 1000 {
		t.Fatalf("TopK with disk-only UE = %+v", ranks)
	}
}

// TestRAMDiskBoundaryEquality replays one record sequence into a store
// with a tiny ring backed by a lake and into an unbounded-RAM store,
// and requires QueryWindow spanning the RAM/disk boundary to agree
// bin-for-bin (the tentpole's transparency contract).
func TestRAMDiskBoundaryEquality(t *testing.T) {
	fl := newFakeLake()
	small := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 5})
	small.AttachLake(fl)
	big := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 4096})

	feed := func(st *Store) {
		for i := 0; i < 60; i++ {
			tms := float64(i)*50 + 3
			rnti := uint16(0x100 + i%3)
			st.Ingest(1, msRec(tms, rnti, i%2 == 0, 100*(i+1), 4+i%10, i%7 == 0))
		}
	}
	feed(small)
	feed(big)

	for _, rnti := range []uint16{0x100, 0x101, 0x102} {
		for _, ds := range []int{1, 3} {
			got, _ := small.QueryWindow(1, rnti, 10*time.Second, ds)
			want, _ := big.QueryWindow(1, rnti, 10*time.Second, ds)
			if len(got) != len(want) {
				t.Fatalf("rnti %#x ds %d: %d bins vs %d", rnti, ds, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("rnti %#x ds %d bin %d:\n lake: %+v\n  ram: %+v", rnti, ds, i, got[i], want[i])
				}
			}
		}
	}
	gotCell, _ := small.CellQuery(1, 0, 0, 1)
	wantCell, _ := big.CellQuery(1, 0, 0, 1)
	if len(gotCell) != len(wantCell) {
		t.Fatalf("cell bins %d vs %d", len(gotCell), len(wantCell))
	}
	for i := range gotCell {
		if gotCell[i] != wantCell[i] {
			t.Errorf("cell bin %d: lake %+v ram %+v", i, gotCell[i], wantCell[i])
		}
	}

	gotTop, _ := small.TopK("bits", 10*time.Second, 0)
	wantTop, _ := big.TopK("bits", 10*time.Second, 0)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopK %v vs %v", gotTop, wantTop)
	}
	for i := range gotTop {
		if gotTop[i] != wantTop[i] {
			t.Errorf("TopK row %d: lake %+v ram %+v", i, gotTop[i], wantTop[i])
		}
	}
}

// TestAnomalySpill overflows the anomaly ring and checks Anomalies()
// returns the spilled prefix ahead of the retained tail.
func TestAnomalySpill(t *testing.T) {
	fl := newFakeLake()
	st := newTestStore(t, Config{BinWidth: 100 * time.Millisecond, Depth: 8, AnomalyDepth: 2})
	st.AttachLake(fl)

	for i := 0; i < 5; i++ {
		st.addAnomalyLocked(Anomaly{Cell: 1, RNTI: 0x1, Kind: KindRetxSpike, AtMs: float64(i)})
	}
	all := st.Anomalies()
	if len(all) != 5 {
		t.Fatalf("anomalies = %d, want 5", len(all))
	}
	for i, a := range all {
		if a.AtMs != float64(i) {
			t.Errorf("anomaly %d at %v, want %v (order lost)", i, a.AtMs, float64(i))
		}
	}
	if len(fl.anoms) != 3 {
		t.Errorf("spilled anomalies = %d, want 3", len(fl.anoms))
	}
}
