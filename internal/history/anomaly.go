package history

// The first anomaly layer over the history store: when a UE's bin
// closes, its retx rate and throughput are compared against a trailing
// EWMA baseline. A retx rate far above baseline flags a retx spike
// (interference, cell-edge mobility); throughput falling to a small
// fraction of a substantial baseline flags a throughput collapse (the
// cross-layer misbehavior-detection substrate of Ganiuly et al.).
// Anomalies are counted via internal/obs and retained in a bounded ring
// queryable through Anomalies() and GET /history/anomalies.

import "fmt"

// AnomalyConfig tunes the detector. Zero values take defaults.
type AnomalyConfig struct {
	// Alpha is the EWMA smoothing factor (default 0.3).
	Alpha float64
	// RetxRateMin is the absolute retx-rate floor a bin must exceed to
	// be a spike candidate (default 0.3).
	RetxRateMin float64
	// RetxSpikeFactor is how far above the EWMA baseline the rate must
	// be (default 3x).
	RetxSpikeFactor float64
	// MinGrants is the minimum grants in a bin for its retx rate to be
	// meaningful (default 4).
	MinGrants int64
	// CollapseFraction: throughput below this fraction of baseline is
	// a collapse (default 0.25).
	CollapseFraction float64
	// TputFloorBits: baselines below this many bits/bin never flag a
	// collapse — an idle UE is not a collapsed UE (default 10000).
	TputFloorBits float64
}

func (a AnomalyConfig) withDefaults() AnomalyConfig {
	if a.Alpha <= 0 || a.Alpha > 1 {
		a.Alpha = 0.3
	}
	if a.RetxRateMin <= 0 {
		a.RetxRateMin = 0.3
	}
	if a.RetxSpikeFactor <= 0 {
		a.RetxSpikeFactor = 3
	}
	if a.MinGrants <= 0 {
		a.MinGrants = 4
	}
	if a.CollapseFraction <= 0 {
		a.CollapseFraction = 0.25
	}
	if a.TputFloorBits <= 0 {
		a.TputFloorBits = 10000
	}
	return a
}

// Anomaly kinds.
const (
	KindRetxSpike    = "retx_spike"
	KindTputCollapse = "tput_collapse"
)

// Anomaly is one flagged event.
type Anomaly struct {
	Cell uint16 `json:"cell"`
	RNTI uint16 `json:"rnti"`
	Kind string `json:"kind"`
	// AtMs is the start of the offending bin, in ms.
	AtMs float64 `json:"t_ms"`
	// Value is the observed metric (retx rate, or bits in the bin).
	Value float64 `json:"value"`
	// Baseline is the trailing EWMA the value was judged against.
	Baseline float64 `json:"baseline"`
}

// String formats an anomaly for log lines.
func (a Anomaly) String() string {
	return fmt.Sprintf("%s cell=%d ue=0x%04x t=%.0fms value=%.3g baseline=%.3g",
		a.Kind, a.Cell, a.RNTI, a.AtMs, a.Value, a.Baseline)
}

// anomalyState is the per-UE trailing baseline.
type anomalyState struct {
	init      bool
	ewmaRetx  float64 // retx rate baseline (updated on bins with grants)
	ewmaTput  float64 // bits/bin baseline (updated on every closed bin)
	collapsed bool    // latch: one collapse flag per silence episode
}

// binClosed runs the detector on a UE's freshly closed bin. Called with
// the store lock held, from the ingest path's series.advance.
func (st *Store) binClosed(u *ueSeries, b Bin, binIdx int64) {
	cfg := st.cfg.Anomaly
	a := &u.anom
	rate := 0.0
	if b.Grants > 0 {
		rate = float64(b.Retx) / float64(b.Grants)
	}
	bits := float64(b.DLBits + b.ULBits)

	if a.init {
		if b.Grants >= cfg.MinGrants && rate >= cfg.RetxRateMin && rate >= cfg.RetxSpikeFactor*a.ewmaRetx {
			st.addAnomalyLocked(Anomaly{
				Cell: u.key.cell, RNTI: u.key.rnti, Kind: KindRetxSpike,
				AtMs: float64(binIdx) * st.binMS, Value: rate, Baseline: a.ewmaRetx,
			})
			met.retxSpikes.Inc()
		}
		if a.ewmaTput >= cfg.TputFloorBits && bits <= cfg.CollapseFraction*a.ewmaTput {
			if !a.collapsed {
				a.collapsed = true
				st.addAnomalyLocked(Anomaly{
					Cell: u.key.cell, RNTI: u.key.rnti, Kind: KindTputCollapse,
					AtMs: float64(binIdx) * st.binMS, Value: bits, Baseline: a.ewmaTput,
				})
				met.tputCollapses.Inc()
			}
		} else {
			a.collapsed = false
		}
	}

	if !a.init {
		a.init = true
		a.ewmaRetx = rate
		a.ewmaTput = bits
		return
	}
	if b.Grants > 0 {
		a.ewmaRetx = cfg.Alpha*rate + (1-cfg.Alpha)*a.ewmaRetx
	}
	a.ewmaTput = cfg.Alpha*bits + (1-cfg.Alpha)*a.ewmaTput
}

// anomalyRing is a bounded FIFO of flagged anomalies.
type anomalyRing struct {
	buf  []Anomaly
	head int // next write position once full
	n    int
}

func newAnomalyRing(depth int) anomalyRing {
	return anomalyRing{buf: make([]Anomaly, depth)}
}

// add appends one anomaly, returning the event it pushed out of a full
// ring (ok=true) so the caller can spill it to the lake.
func (r *anomalyRing) add(a Anomaly) (evicted Anomaly, ok bool) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = a
		r.n++
		return Anomaly{}, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = a
	r.head = (r.head + 1) % len(r.buf)
	return evicted, true
}

// snapshot returns the retained anomalies, oldest first.
func (r *anomalyRing) snapshot() []Anomaly {
	out := make([]Anomaly, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// addAnomalyLocked appends an anomaly to the bounded ring, handing any
// overwritten event to the lake. Caller holds st.mu.
func (st *Store) addAnomalyLocked(a Anomaly) {
	if old, evicted := st.anoms.add(a); evicted && st.lake != nil {
		st.lake.SpillAnomaly(old)
	}
}

// Anomalies returns the retained anomaly events, oldest first. With a
// lake attached, events that the bounded ring already pushed out are
// merged back in from disk ahead of the retained ones.
func (st *Store) Anomalies() []Anomaly {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ram := st.anoms.snapshot()
	if st.lake == nil {
		return ram
	}
	spilled := st.lake.Anomalies()
	if len(spilled) == 0 {
		return ram
	}
	return append(spilled, ram...)
}
