package history

import "nrscope/internal/telemetry"

// Bin is one bin-width of aggregated telemetry for a series (a UE's, or
// the whole cell's). Sums are kept raw; rates and means are derived at
// query time (BinSample) so downsampling stays a pure sum-merge.
type Bin struct {
	DLBits   int64
	ULBits   int64
	Grants   int64
	Retx     int64
	PRBs     int64
	MCSSum   int64
	MCSCount int64
	MCSMin   int
	MCSMax   int
	// SpareBits is the UE's accumulated §5.4.1 fair-share spare
	// capacity across the bin's TTIs (UE series only).
	SpareBits float64
	// UsedREs/TotalREs accumulate the cell's RE budget accounting
	// (cell series only).
	UsedREs  int64
	TotalREs int64
}

// addRecord folds one telemetry record into the bin.
func (b *Bin) addRecord(rec telemetry.Record) {
	b.Grants++
	b.PRBs += int64(rec.NumPRB)
	if rec.IsRetx {
		b.Retx++
	} else if rec.Downlink {
		b.DLBits += int64(rec.TBS)
	} else {
		b.ULBits += int64(rec.TBS)
	}
	if b.MCSCount == 0 || rec.MCS < b.MCSMin {
		b.MCSMin = rec.MCS
	}
	if b.MCSCount == 0 || rec.MCS > b.MCSMax {
		b.MCSMax = rec.MCS
	}
	b.MCSSum += int64(rec.MCS)
	b.MCSCount++
}

// Merge folds another bin's sums into b (downsampling).
func (b *Bin) Merge(o Bin) {
	b.DLBits += o.DLBits
	b.ULBits += o.ULBits
	b.Grants += o.Grants
	b.Retx += o.Retx
	b.PRBs += o.PRBs
	if o.MCSCount > 0 {
		if b.MCSCount == 0 || o.MCSMin < b.MCSMin {
			b.MCSMin = o.MCSMin
		}
		if b.MCSCount == 0 || o.MCSMax > b.MCSMax {
			b.MCSMax = o.MCSMax
		}
		b.MCSSum += o.MCSSum
		b.MCSCount += o.MCSCount
	}
	b.SpareBits += o.SpareBits
	b.UsedREs += o.UsedREs
	b.TotalREs += o.TotalREs
}

// series is a fixed-capacity ring of consecutive bins. bins[head] is
// the newest bin, covering bin index curIdx; older bins sit behind it.
type series struct {
	bins   []Bin
	head   int
	n      int
	curIdx int64
}

func newSeries(depth int) series {
	return series{bins: make([]Bin, depth)}
}

// advance positions the ring at bin index idx and returns the bin to
// write into. Moving forward closes intervening bins (invoking onClose
// for each, newest-gap walk capped at the ring depth) and hands every
// bin pushed off the back of a full ring to onEvict — the lake spill
// point; a late index still inside the ring returns its retained bin;
// one older than the ring returns nil.
func (s *series) advance(idx int64, onClose func(b Bin, binIdx int64), onEvict func(binIdx int64, b *Bin)) *Bin {
	depth := len(s.bins)
	if s.n == 0 {
		s.head, s.n, s.curIdx = 0, 1, idx
		s.bins[0] = Bin{}
		return &s.bins[0]
	}
	if idx <= s.curIdx {
		back := s.curIdx - idx
		if back >= int64(depth) {
			return nil
		}
		if back >= int64(s.n) {
			// Late but within the ring's depth, before the series had
			// grown that far back: extend it — the intervening positions
			// have never been written since the last reset, so they
			// already read as empty bins.
			s.n = int(back) + 1
		}
		pos := s.head - int(back)
		if pos < 0 {
			pos += depth
		}
		return &s.bins[pos]
	}
	if gap := idx - s.curIdx; gap >= int64(depth) {
		// The whole retained window is silence: close the current bin,
		// evict everything retained, zero the ring, and jump — never
		// walk an unbounded gap.
		if onClose != nil {
			onClose(s.bins[s.head], s.curIdx)
		}
		if onEvict != nil {
			for i := s.oldestIdx(); i <= s.curIdx; i++ {
				if p := s.atPtr(i); *p != (Bin{}) {
					onEvict(i, p)
				}
			}
		}
		for i := range s.bins {
			s.bins[i] = Bin{}
		}
		s.head = 0
		s.n = depth
		s.curIdx = idx
		return &s.bins[0]
	}
	for s.curIdx < idx {
		if onClose != nil {
			onClose(s.bins[s.head], s.curIdx)
		}
		s.head++
		if s.head == depth {
			s.head = 0
		}
		if s.n == depth {
			// The slot about to be recycled holds the oldest retained
			// bin: it falls off the ring here, and nowhere else. The
			// pointer stays valid only until the zeroing below —
			// onEvict (the lake spill point) copies before returning.
			if onEvict != nil {
				if p := &s.bins[s.head]; *p != (Bin{}) {
					onEvict(s.curIdx+1-int64(depth), p)
				}
			}
		}
		s.bins[s.head] = Bin{}
		if s.n < depth {
			s.n++
		}
		s.curIdx++
	}
	return &s.bins[s.head]
}

// oldestIdx returns the bin index of the oldest retained bin.
func (s *series) oldestIdx() int64 { return s.curIdx - int64(s.n) + 1 }

// at returns the retained bin for binIdx (valid only for indices in
// [oldestIdx, curIdx]).
func (s *series) at(binIdx int64) Bin {
	return *s.atPtr(binIdx)
}

// atPtr returns a pointer into the ring for binIdx — valid under the
// same index bounds as at, and only until the ring advances.
func (s *series) atPtr(binIdx int64) *Bin {
	back := s.curIdx - binIdx
	pos := s.head - int(back)
	if pos < 0 {
		pos += len(s.bins)
	}
	return &s.bins[pos]
}
