package history_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nrscope"
	"nrscope/internal/bus"
	"nrscope/internal/capfile"
	"nrscope/internal/core"
	"nrscope/internal/history"
	"nrscope/internal/telemetry"
)

// ueResponse mirrors the /history/ue JSON shape.
type ueResponse struct {
	Cell  uint16              `json:"cell"`
	RNTI  uint16              `json:"rnti"`
	BinMs float64             `json:"bin_ms"`
	Bins  []history.BinSample `json:"bins"`
}

// binSums is the test's independent per-bin aggregation.
type binSums struct {
	dl, ul, grants, retx int64
}

// TestReplayedCaptureWindowedAggregates is the acceptance-criteria
// test: record a capture, replay it through a scope publishing into the
// history store, and check /history/ue returns exactly the windowed
// aggregates the test computes independently from the replayed records.
func TestReplayedCaptureWindowedAggregates(t *testing.T) {
	// Record ~1.5 s of a two-UE cell.
	tb, err := nrscope.NewTestbed(nrscope.AmarisoftPreset, 3)
	if err != nil {
		t.Fatal(err)
	}
	tb.AttachUE(nrscope.UEProfile{})
	tb.AttachUE(nrscope.UEProfile{Mobility: "pedestrian"})
	cfg := tb.GNB.Config()
	var buf bytes.Buffer
	w, err := capfile.NewWriter(&buf, capfile.Header{CellID: cfg.CellID, Mu: cfg.Mu, NumPRB: cfg.CarrierPRBs})
	if err != nil {
		t.Fatal(err)
	}
	slots := int(1500 * time.Millisecond / tb.TTI())
	for i := 0; i < slots; i++ {
		cap, _ := tb.StepCapture()
		if err := w.Append(cap); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay through a fresh scope wired to the store via the bus.
	r, err := capfile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	binWidth := 100 * time.Millisecond
	st := history.New(history.Config{BinWidth: binWidth, Depth: 256})
	if err := st.AddCell(hdr.CellID, hdr.Mu.SlotDuration()); err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	if _, err := st.SubscribeTo(b, hdr.CellID); err != nil {
		t.Fatal(err)
	}
	scope := core.New(hdr.CellID, core.WithBus(b))
	// Independent aggregation, straight from the replayed records.
	want := map[uint16]map[int64]*binSums{}
	for {
		cap, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		res := scope.ProcessSlot(cap)
		for _, rec := range res.Records {
			if rec.Common {
				continue
			}
			if rec.TMs <= 0 {
				t.Fatalf("record without t_ms stamp: %+v", rec)
			}
			per := want[rec.RNTI]
			if per == nil {
				per = map[int64]*binSums{}
				want[rec.RNTI] = per
			}
			idx := int64(rec.TMs / (float64(binWidth) / float64(time.Millisecond)))
			s := per[idx]
			if s == nil {
				s = &binSums{}
				per[idx] = s
			}
			s.grants++
			if rec.IsRetx {
				s.retx++
			} else if rec.Downlink {
				s.dl += int64(rec.TBS)
			} else {
				s.ul += int64(rec.TBS)
			}
		}
	}
	if err := b.Close(); err != nil { // lossless drain into the store
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("replay discovered %d UEs, want >= 2", len(want))
	}

	ts := httptest.NewServer(st.Handler())
	defer ts.Close()
	for rnti, bins := range want {
		resp, err := http.Get(fmt.Sprintf("%s/history/ue?rnti=0x%04x", ts.URL, rnti))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/history/ue 0x%04x: status %d", rnti, resp.StatusCode)
		}
		var got ueResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.RNTI != rnti || got.Cell != hdr.CellID {
			t.Fatalf("response identity = cell %d rnti 0x%04x", got.Cell, got.RNTI)
		}
		nonEmpty := 0
		for _, bs := range got.Bins {
			idx := int64(bs.StartMs / got.BinMs)
			w := bins[idx]
			if w == nil {
				if bs.Grants != 0 {
					t.Errorf("ue 0x%04x bin %d: store has %d grants, test saw none", rnti, idx, bs.Grants)
				}
				continue
			}
			nonEmpty++
			if bs.DLBits != w.dl || bs.ULBits != w.ul || bs.Grants != w.grants || bs.Retx != w.retx {
				t.Errorf("ue 0x%04x bin %d: store {dl %d ul %d g %d rtx %d} != independent {dl %d ul %d g %d rtx %d}",
					rnti, idx, bs.DLBits, bs.ULBits, bs.Grants, bs.Retx, w.dl, w.ul, w.grants, w.retx)
			}
			delete(bins, idx)
		}
		if nonEmpty == 0 {
			t.Errorf("ue 0x%04x: no non-empty bins returned", rnti)
		}
		if len(bins) != 0 {
			t.Errorf("ue 0x%04x: %d independently computed bins missing from the response", rnti, len(bins))
		}
	}
}

func liveStore(t *testing.T) *history.Store {
	t.Helper()
	st := history.New(history.Config{BinWidth: 100 * time.Millisecond, Depth: 32})
	if err := st.AddCell(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		st.Ingest(1, telemetry.Record{
			TMs: float64(i * 5), RNTI: uint16(0x100 + i%4), Downlink: i%3 != 0,
			TBS: 1000, MCS: 10, NumPRB: 4, IsRetx: i%10 == 0,
		})
	}
	return st
}

func TestHTTPEndpoints(t *testing.T) {
	st := liveStore(t)
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	var ues struct {
		Cell    uint16              `json:"cell"`
		Tracked int                 `json:"tracked"`
		UEs     []history.UESummary `json:"ues"`
	}
	getJSON("/history/ues", &ues)
	if ues.Cell != 1 || ues.Tracked != 4 || len(ues.UEs) != 4 {
		t.Errorf("/history/ues = %+v", ues)
	}

	var ue ueResponse
	getJSON("/history/ue?rnti=0x0100&window=500ms&downsample=2", &ue)
	if ue.RNTI != 0x100 || ue.BinMs != 200 || len(ue.Bins) == 0 {
		t.Errorf("/history/ue = %+v", ue)
	}
	// Decimal RNTI accepted too.
	getJSON("/history/ue?rnti=256", &ue)
	if ue.RNTI != 0x100 {
		t.Errorf("decimal rnti parsed as 0x%04x", ue.RNTI)
	}

	var cell struct {
		Cell     uint16              `json:"cell"`
		Snapshot history.Snapshot    `json:"snapshot"`
		Bins     []history.BinSample `json:"bins"`
	}
	getJSON("/history/cell", &cell)
	if cell.Cell != 1 || cell.Snapshot.TrackedUEs != 4 || len(cell.Bins) == 0 {
		t.Errorf("/history/cell = %+v", cell)
	}
	var cellGrants int64
	for _, b := range cell.Bins {
		cellGrants += b.Grants
	}
	if cellGrants != 300 {
		t.Errorf("cell grants = %d, want 300", cellGrants)
	}

	var anoms struct {
		Count     int               `json:"count"`
		Anomalies []history.Anomaly `json:"anomalies"`
	}
	getJSON("/history/anomalies", &anoms)
	if anoms.Count != len(anoms.Anomalies) {
		t.Errorf("/history/anomalies = %+v", anoms)
	}

	var topk struct {
		Metric string           `json:"metric"`
		Ranks  []history.UERank `json:"ranks"`
	}
	getJSON("/history/topk?metric=grants&window=2s&k=2", &topk)
	if topk.Metric != "grants" || len(topk.Ranks) != 2 {
		t.Errorf("/history/topk = %+v", topk)
	}
	if topk.Ranks[0].Value < topk.Ranks[1].Value {
		t.Errorf("topk not sorted: %+v", topk.Ranks)
	}
}

func TestHTTPErrors(t *testing.T) {
	st := liveStore(t)
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/history/ue", http.StatusBadRequest},           // no rnti
		{"/history/ue?rnti=zzz", http.StatusBadRequest},  // bad rnti
		{"/history/ue?rnti=0x9999", http.StatusNotFound}, // unknown rnti
		{"/history/ue?rnti=0x0100&window=bogus", http.StatusBadRequest},
		{"/history/ue?rnti=0x0100&window=-2s", http.StatusBadRequest},
		{"/history/ue?rnti=0x0100&downsample=0", http.StatusBadRequest},
		{"/history/ue?rnti=0x0100&cell=77", http.StatusNotFound}, // unmonitored cell
		{"/history/ue?rnti=0x0100&cell=xx", http.StatusBadRequest},
		{"/history/ue?rnti=0x0100&cell=99999999", http.StatusBadRequest}, // out of uint16 range
		{"/history/ues?cell=77", http.StatusNotFound},
		{"/history/cell?cell=77", http.StatusNotFound},
		{"/history/topk?metric=bogus", http.StatusBadRequest},
		{"/history/topk?k=0", http.StatusBadRequest},
		{"/history/topk?window=nope", http.StatusBadRequest},
		{"/history/cell?from_ms=abc", http.StatusBadRequest},
		{"/history/cell?to_ms=1e", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.code {
			resp.Body.Close()
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
			continue
		}
		// Every error response must carry a machine-readable JSON body.
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Errorf("%s: error body not JSON: %v", tc.path, err)
		} else if body.Error == "" {
			t.Errorf("%s: empty error message", tc.path)
		}
		resp.Body.Close()
	}
}

// TestCellParamRequiredWithTwoCells: with more than one cell the cell
// query parameter stops being inferable.
func TestCellParamRequiredWithTwoCells(t *testing.T) {
	st := history.New(history.Config{})
	if err := st.AddCell(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := st.AddCell(2, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/history/ues")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous cell: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/history/ues?cell=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("explicit cell: status %d, want 200", resp.StatusCode)
	}
}

// TestHTTPQueryTooWide: a request materializing more samples than the
// store's cap is a 400 with guidance, not an unbounded allocation.
func TestHTTPQueryTooWide(t *testing.T) {
	st := history.New(history.Config{BinWidth: 100 * time.Millisecond, Depth: 64, MaxQuerySamples: 10})
	if err := st.AddCell(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		st.Ingest(1, telemetry.Record{TMs: float64(i)*100 + 10, RNTI: 0x100, Downlink: true, TBS: 1000, MCS: 5, NumPRB: 4})
	}
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/history/ue?rnti=0x0100", http.StatusBadRequest},
		{"/history/cell", http.StatusBadRequest},
		{"/history/ue?rnti=0x0100&downsample=5", http.StatusOK},
		{"/history/cell?downsample=5", http.StatusOK},
		{"/history/ue?rnti=0x0100&from_ms=4000", http.StatusOK},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}
