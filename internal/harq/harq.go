// Package harq implements Hybrid-ARQ process bookkeeping on both sides
// of the air interface (paper §3.2.2): the gNB-side entity that assigns
// processes and toggles the new-data indicator (NDI), and the passive
// tracker NR-Scope runs — an array of previous NDIs per harq_id per UE,
// where an un-toggled NDI on the same process means a retransmission.
package harq

import "fmt"

// MaxProcesses is the per-UE HARQ process count (paper: "up to 16").
const MaxProcesses = 16

// process is one gNB-side HARQ process.
type process struct {
	active   bool
	ndi      uint8
	tbs      int
	attempts int
}

// Entity is the gNB-side HARQ state for one UE and one direction.
type Entity struct {
	procs [MaxProcesses]process
	rr    int // round-robin allocation pointer
}

// NewEntity returns an empty HARQ entity.
func NewEntity() *Entity { return &Entity{} }

// Allocate grabs a free process for a new transport block of size tbs
// bits, toggling its NDI. It returns the process id and the NDI value to
// signal in the DCI, or ok=false when all processes are busy (the
// scheduler must then hold off new data for this UE).
func (e *Entity) Allocate(tbs int) (id int, ndi uint8, ok bool) {
	for i := 0; i < MaxProcesses; i++ {
		p := (e.rr + i) % MaxProcesses
		if !e.procs[p].active {
			e.procs[p].active = true
			e.procs[p].ndi ^= 1
			e.procs[p].tbs = tbs
			e.procs[p].attempts = 1
			e.rr = (p + 1) % MaxProcesses
			return p, e.procs[p].ndi, true
		}
	}
	return 0, 0, false
}

// Retransmit re-issues the TB held by process id, keeping the NDI
// un-toggled (that is exactly the signal NR-Scope detects). It returns
// the NDI to signal and the stored TBS.
func (e *Entity) Retransmit(id int) (ndi uint8, tbs int, err error) {
	if id < 0 || id >= MaxProcesses || !e.procs[id].active {
		return 0, 0, fmt.Errorf("harq: retransmit on inactive process %d", id)
	}
	e.procs[id].attempts++
	return e.procs[id].ndi, e.procs[id].tbs, nil
}

// Cancel aborts a freshly allocated TB whose DCI was never transmitted
// (e.g. PDCCH blocking): the process is freed and the NDI toggle undone,
// so the next real TB on this process still reads as new data.
func (e *Entity) Cancel(id int) error {
	if id < 0 || id >= MaxProcesses || !e.procs[id].active {
		return fmt.Errorf("harq: cancel on inactive process %d", id)
	}
	e.procs[id].active = false
	e.procs[id].ndi ^= 1
	return nil
}

// Ack releases process id after the UE acknowledged the TB.
func (e *Entity) Ack(id int) error {
	if id < 0 || id >= MaxProcesses || !e.procs[id].active {
		return fmt.Errorf("harq: ack on inactive process %d", id)
	}
	e.procs[id].active = false
	return nil
}

// Attempts returns the number of transmissions the active TB on process
// id has had, or zero when inactive.
func (e *Entity) Attempts(id int) int {
	if id < 0 || id >= MaxProcesses {
		return 0
	}
	return e.procs[id].attempts
}

// Busy reports how many processes currently hold an unacknowledged TB.
func (e *Entity) Busy() int {
	n := 0
	for i := range e.procs {
		if e.procs[i].active {
			n++
		}
	}
	return n
}

// Tracker is NR-Scope's passive retransmission detector for one UE and
// one direction (paper §3.2.2): it records the NDI seen for each
// harq_id; a repeated NDI on the same process marks a retransmission.
type Tracker struct {
	ndi  [MaxProcesses]uint8
	seen [MaxProcesses]bool

	total int
	retx  int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Observe processes one decoded DCI's (harq_id, ndi) pair and reports
// whether it is a retransmission. The first observation of a process is
// always new data.
func (t *Tracker) Observe(harqID int, ndi uint8) (retx bool) {
	if harqID < 0 || harqID >= MaxProcesses {
		return false
	}
	t.total++
	if t.seen[harqID] && t.ndi[harqID] == ndi&1 {
		t.retx++
		return true
	}
	t.seen[harqID] = true
	t.ndi[harqID] = ndi & 1
	return false
}

// Stats returns the observed totals: all transmissions and detected
// retransmissions.
func (t *Tracker) Stats() (total, retransmissions int) {
	return t.total, t.retx
}

// RetransmissionRatio returns the fraction of observed DCIs that were
// retransmissions — the x-axis of the paper's Fig. 15 (right).
func (t *Tracker) RetransmissionRatio() float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.retx) / float64(t.total)
}
