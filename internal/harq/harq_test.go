package harq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocateTogglesNDI(t *testing.T) {
	e := NewEntity()
	id1, ndi1, ok := e.Allocate(1000)
	if !ok {
		t.Fatal("allocate failed on empty entity")
	}
	if err := e.Ack(id1); err != nil {
		t.Fatal(err)
	}
	// Cycle through all processes back to id1.
	for i := 0; i < MaxProcesses-1; i++ {
		id, _, ok := e.Allocate(1)
		if !ok {
			t.Fatal("allocate failed")
		}
		if err := e.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	id2, ndi2, ok := e.Allocate(2000)
	if !ok || id2 != id1 {
		t.Fatalf("expected to cycle back to process %d, got %d", id1, id2)
	}
	if ndi2 == ndi1 {
		t.Error("NDI did not toggle on new data for the same process")
	}
}

func TestAllocateExhaustion(t *testing.T) {
	e := NewEntity()
	for i := 0; i < MaxProcesses; i++ {
		if _, _, ok := e.Allocate(1); !ok {
			t.Fatalf("allocate %d failed early", i)
		}
	}
	if _, _, ok := e.Allocate(1); ok {
		t.Error("17th allocation succeeded")
	}
	if e.Busy() != MaxProcesses {
		t.Errorf("Busy = %d, want %d", e.Busy(), MaxProcesses)
	}
}

func TestRetransmitKeepsNDI(t *testing.T) {
	e := NewEntity()
	id, ndi, _ := e.Allocate(5000)
	ndi2, tbs, err := e.Retransmit(id)
	if err != nil {
		t.Fatal(err)
	}
	if ndi2 != ndi {
		t.Error("retransmission toggled NDI")
	}
	if tbs != 5000 {
		t.Errorf("retransmission TBS %d, want 5000", tbs)
	}
	if e.Attempts(id) != 2 {
		t.Errorf("attempts = %d, want 2", e.Attempts(id))
	}
}

func TestRetransmitInactiveErrors(t *testing.T) {
	e := NewEntity()
	if _, _, err := e.Retransmit(3); err == nil {
		t.Error("retransmit on inactive process accepted")
	}
	if err := e.Ack(3); err == nil {
		t.Error("ack on inactive process accepted")
	}
	if _, _, err := e.Retransmit(99); err == nil {
		t.Error("out-of-range process accepted")
	}
}

func TestCancelRestoresNDIParity(t *testing.T) {
	e := NewEntity()
	id1, ndi1, _ := e.Allocate(100)
	if err := e.Ack(id1); err != nil {
		t.Fatal(err)
	}
	// Cycle back to the same process, then cancel the allocation
	// (simulating PDCCH blocking before the DCI ever aired).
	for i := 0; i < MaxProcesses-1; i++ {
		id, _, _ := e.Allocate(1)
		_ = e.Ack(id)
	}
	id2, _, _ := e.Allocate(200)
	if id2 != id1 {
		t.Fatalf("expected process %d again, got %d", id1, id2)
	}
	if err := e.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	// The next real TB on this process must still toggle vs ndi1.
	for i := 0; i < MaxProcesses-1; i++ {
		id, _, _ := e.Allocate(1)
		_ = e.Ack(id)
	}
	id3, ndi3, _ := e.Allocate(300)
	if id3 != id1 {
		t.Fatalf("expected process %d again, got %d", id1, id3)
	}
	if ndi3 == ndi1 {
		t.Error("cancelled allocation broke NDI toggling")
	}
	if err := e.Cancel(5); err == nil {
		t.Error("cancel on inactive process accepted")
	}
}

func TestTrackerDetectsRetransmissions(t *testing.T) {
	tr := NewTracker()
	if tr.Observe(5, 1) {
		t.Error("first observation flagged as retx")
	}
	if !tr.Observe(5, 1) {
		t.Error("repeated NDI not flagged as retx")
	}
	if tr.Observe(5, 0) {
		t.Error("toggled NDI flagged as retx")
	}
	total, retx := tr.Stats()
	if total != 3 || retx != 1 {
		t.Errorf("stats = (%d,%d), want (3,1)", total, retx)
	}
	if got := tr.RetransmissionRatio(); got != 1.0/3 {
		t.Errorf("ratio = %f", got)
	}
}

func TestTrackerIndependentProcesses(t *testing.T) {
	tr := NewTracker()
	tr.Observe(0, 1)
	if tr.Observe(1, 1) {
		t.Error("different process flagged as retx")
	}
}

func TestTrackerIgnoresBadIDs(t *testing.T) {
	tr := NewTracker()
	if tr.Observe(-1, 0) || tr.Observe(16, 1) {
		t.Error("out-of-range harq id flagged")
	}
	if total, _ := tr.Stats(); total != 0 {
		t.Error("out-of-range observations counted")
	}
}

func TestTrackerZeroRatioWhenEmpty(t *testing.T) {
	if NewTracker().RetransmissionRatio() != 0 {
		t.Error("empty tracker ratio nonzero")
	}
}

// TestEntityTrackerAgree drives a random gNB schedule through both the
// entity and the tracker and checks the tracker's retransmission count
// matches what the entity actually did — the paper's §3.2.2 claim that
// NDI tracking recovers the gNB's HARQ behaviour exactly.
func TestEntityTrackerAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEntity()
		tr := NewTracker()
		wantRetx := 0
		active := make(map[int]bool)
		for step := 0; step < 500; step++ {
			if len(active) > 0 && rng.Float64() < 0.3 {
				// Retransmit a random active process.
				var ids []int
				for id := range active {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				ndi, _, err := e.Retransmit(id)
				if err != nil {
					return false
				}
				if tr.Observe(id, ndi) {
					wantRetx--
				} else {
					return false // tracker must flag it
				}
				wantRetx++
				_ = wantRetx
			} else if id, ndi, ok := e.Allocate(rng.Intn(8000) + 100); ok {
				if tr.Observe(id, ndi) {
					return false // new data must not be flagged
				}
				active[id] = true
			}
			// Random ACKs free processes.
			for id := range active {
				if rng.Float64() < 0.4 {
					if err := e.Ack(id); err != nil {
						return false
					}
					delete(active, id)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
