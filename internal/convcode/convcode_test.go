package convcode

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBits(rng *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(2))
	}
	return out
}

func noiselessLLR(bits []uint8) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = 8
		} else {
			out[i] = -8
		}
	}
	return out
}

func TestCodedLen(t *testing.T) {
	if got := CodedLen(100); got != (100+6)*3 {
		t.Errorf("CodedLen(100) = %d, want %d", got, 318)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	info := []uint8{1, 0, 1, 1, 0, 0, 1}
	a := Encode(info)
	b := Encode(info)
	if len(a) != CodedLen(len(info)) {
		t.Fatalf("coded length %d, want %d", len(a), CodedLen(len(info)))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Encode not deterministic")
		}
	}
}

func TestNoiselessRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 8 + int(kRaw%500)
		info := randomBits(rng, k)
		coded := Encode(info)
		got := Decode(noiselessLLR(coded), k)
		for i := range info {
			if got[i] != info[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRateMatchRepetitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	info := randomBits(rng, 120)
	coded := Encode(info)
	e := len(coded)*2 + 17
	matched, err := RateMatch(coded, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) != e {
		t.Fatalf("matched length %d, want %d", len(matched), e)
	}
	got := RecoverAndDecode(noiselessLLR(matched), len(info))
	for i := range info {
		if got[i] != info[i] {
			t.Fatalf("bit %d wrong after repetition round trip", i)
		}
	}
}

func TestRateMatchPuncturedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	info := randomBits(rng, 200)
	coded := Encode(info)
	e := len(coded) * 3 / 4 // puncture a quarter
	matched, err := RateMatch(coded, e)
	if err != nil {
		t.Fatal(err)
	}
	got := RecoverAndDecode(noiselessLLR(matched), len(info))
	for i := range info {
		if got[i] != info[i] {
			t.Fatalf("bit %d wrong after punctured round trip", i)
		}
	}
}

func TestRateMatchRejectsOverPuncturing(t *testing.T) {
	coded := Encode(make([]uint8, 100))
	if _, err := RateMatch(coded, len(coded)/3); err == nil {
		t.Error("RateMatch accepted E below half the coded length")
	}
}

func TestDecodeCorrectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sigma := 0.8
	success := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, 150)
		coded := Encode(info)
		llr := make([]float64, len(coded))
		for i, b := range coded {
			x := 1.0
			if b == 1 {
				x = -1.0
			}
			llr[i] = 2 * (x + rng.NormFloat64()*sigma) / (sigma * sigma)
		}
		got := Decode(llr, len(info))
		ok := true
		for i := range info {
			if got[i] != info[i] {
				ok = false
				break
			}
		}
		if ok {
			success++
		}
	}
	if success < trials*85/100 {
		t.Errorf("Viterbi succeeded %d/%d at sigma=%.2f, want >= 85%%", success, trials, sigma)
	}
}

func TestDecodePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode with wrong LLR count did not panic")
		}
	}()
	Decode(make([]float64, 10), 100)
}

func TestTrellisTables(t *testing.T) {
	// Every state must have exactly two predecessors across the trellis.
	preds := make(map[uint8]int)
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			preds[nextState[s][in]]++
		}
	}
	for s := 0; s < numStates; s++ {
		if preds[uint8(s)] != 2 {
			t.Errorf("state %d has %d predecessors, want 2", s, preds[uint8(s)])
		}
	}
}

func BenchmarkViterbiDecode500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	info := randomBits(rng, 500)
	llr := noiselessLLR(Encode(info))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(llr, len(info))
	}
}
