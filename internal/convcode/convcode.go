// Package convcode implements a constraint-length-7, rate-1/3
// convolutional code with a soft-decision Viterbi decoder.
//
// It stands in for the 5G LDPC shared-channel FEC (TS 38.212 §5.3.2); see
// DESIGN.md §2 for the substitution rationale. The generator polynomials
// are the classic ones used by LTE's tail-biting convolutional code
// (TS 36.212 §5.1.3.1): g0 = 133, g1 = 171, g2 = 165 (octal). The encoder
// here is zero-tailed: six flush bits return the trellis to state zero so
// the decoder can start and end in a known state.
//
// Rate matching to an arbitrary number of channel bits E is done by
// cyclic repetition (E >= coded length) or by even puncturing (E smaller),
// with erased positions receiving zero LLR at the decoder.
package convcode

import "fmt"

const (
	constraintLen = 7
	memory        = constraintLen - 1
	numStates     = 1 << memory
	rateInv       = 3 // rate 1/3: three output bits per input bit
)

// Generator polynomials 133, 171, 165 (octal), constraint length 7.
var generators = [rateInv]uint32{0o133, 0o171, 0o165}

// outputTable[state][input] is the 3-bit output for a transition.
var outputTable [numStates][2]uint8

// nextState[state][input] is the successor trellis state.
var nextState [numStates][2]uint8

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := uint32(in)<<memory | uint32(s)
			var out uint8
			for g := 0; g < rateInv; g++ {
				out <<= 1
				out |= uint8(parity32(reg & generators[g]))
			}
			outputTable[s][in] = out
			nextState[s][in] = uint8(reg >> 1)
		}
	}
}

func parity32(v uint32) uint32 {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// CodedLen returns the number of coded bits produced for k input bits
// (including the six flush bits).
func CodedLen(k int) int { return (k + memory) * rateInv }

// Encode convolutionally encodes the input bits, appending six zero flush
// bits, and returns the coded bit stream of length CodedLen(len(info)).
func Encode(info []uint8) []uint8 {
	out := make([]uint8, 0, CodedLen(len(info)))
	state := uint8(0)
	emit := func(bit uint8) {
		o := outputTable[state][bit&1]
		out = append(out, o>>2&1, o>>1&1, o&1)
		state = nextState[state][bit&1]
	}
	for _, b := range info {
		emit(b)
	}
	for i := 0; i < memory; i++ {
		emit(0)
	}
	return out
}

// RateMatch adapts coded bits to exactly e channel bits: repetition when
// e exceeds the coded length, even puncturing otherwise. It returns an
// error when e is smaller than half the coded length (the decoder needs
// rate <= 2/3 overall to stay useful).
func RateMatch(coded []uint8, e int) ([]uint8, error) {
	n := len(coded)
	if e >= n {
		out := make([]uint8, e)
		for i := range out {
			out[i] = coded[i%n]
		}
		return out, nil
	}
	if e < n/2 {
		return nil, fmt.Errorf("convcode: E = %d punctures more than half of %d coded bits", e, n)
	}
	// Even puncturing: keep positions spread uniformly.
	out := make([]uint8, e)
	for i := 0; i < e; i++ {
		out[i] = coded[i*n/e]
	}
	return out, nil
}

// RateRecover expands e channel LLRs back to the coded length n:
// repeated positions accumulate, punctured positions stay at zero LLR.
func RateRecover(llr []float64, n int) []float64 {
	e := len(llr)
	out := make([]float64, n)
	if e >= n {
		for i, v := range llr {
			out[i%n] += v
		}
		return out
	}
	for i := 0; i < e; i++ {
		out[i*n/e] += llr[i]
	}
	return out
}

// Workspace holds the Viterbi decoder's trellis scratch (path metrics,
// survivor history, rate-recovery buffer, traceback output) so repeated
// decodes allocate nothing once the buffers have grown to the largest
// block seen. A Workspace is not safe for concurrent use; per-slot decode
// paths keep one in their pooled scratch.
type Workspace struct {
	recovered []float64
	metric    [numStates]float64
	next      [numStates]float64
	survivors [][numStates]uint8
	prevOf    [][numStates]uint8
	out       []uint8
}

// Decode runs soft-decision Viterbi decoding over coded-bit LLRs
// (positive = bit 0 likelier). len(llr) must equal CodedLen(k) for the
// original info length k, which the caller supplies. It returns the k
// decoded information bits. The returned slice aliases the workspace and
// is only valid until the next Decode/RecoverAndDecode call.
func (w *Workspace) Decode(llr []float64, k int) []uint8 {
	steps := k + memory
	if len(llr) != steps*rateInv {
		panic(fmt.Sprintf("convcode: got %d LLRs for k = %d (want %d)", len(llr), k, steps*rateInv))
	}
	const inf = 1e300
	if cap(w.survivors) < steps {
		w.survivors = make([][numStates]uint8, steps)
		w.prevOf = make([][numStates]uint8, steps)
	}
	// survivors[t][s] is the input bit that led into state s at step t.
	survivors := w.survivors[:steps]
	prevOf := w.prevOf[:steps]
	metric, next := &w.metric, &w.next
	metric[0] = 0
	for s := 1; s < numStates; s++ {
		metric[s] = -inf // trellis starts in state 0
	}

	for t := 0; t < steps; t++ {
		for s := range next {
			next[s] = -inf
		}
		l0 := llr[t*rateInv]
		l1 := llr[t*rateInv+1]
		l2 := llr[t*rateInv+2]
		// Branch metrics by 3-bit output pattern: +LLR when the output
		// bit is 0. Hoisting the eight sums out of the state loop turns
		// the 128 transition updates into one add and one compare each.
		var bm [8]float64
		bm[0b000] = l0 + l1 + l2
		bm[0b001] = l0 + l1 - l2
		bm[0b010] = l0 - l1 + l2
		bm[0b011] = l0 - l1 - l2
		bm[0b100] = -l0 + l1 + l2
		bm[0b101] = -l0 + l1 - l2
		bm[0b110] = -l0 - l1 + l2
		bm[0b111] = -l0 - l1 - l2
		surv := &survivors[t]
		prev := &prevOf[t]
		for s := 0; s < numStates; s++ {
			if metric[s] == -inf {
				continue
			}
			for in := uint8(0); in < 2; in++ {
				m := metric[s] + bm[outputTable[s][in]]
				ns := nextState[s][in]
				if m > next[ns] {
					next[ns] = m
					surv[ns] = in
					prev[ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}

	// Trace back from state 0 (zero-tailed).
	if cap(w.out) < steps {
		w.out = make([]uint8, steps)
	}
	out := w.out[:steps]
	state := uint8(0)
	for t := steps - 1; t >= 0; t-- {
		out[t] = survivors[t][state]
		state = prevOf[t][state]
	}
	return out[:k]
}

// RecoverAndDecode rate-recovers e channel LLRs for an original info
// length k and Viterbi-decodes, reusing the workspace buffers. The
// returned slice aliases the workspace (see Decode).
func (w *Workspace) RecoverAndDecode(llr []float64, k int) []uint8 {
	n := CodedLen(k)
	if cap(w.recovered) < n {
		w.recovered = make([]float64, n)
	}
	rec := w.recovered[:n]
	for i := range rec {
		rec[i] = 0
	}
	e := len(llr)
	if e >= n {
		for i, v := range llr {
			rec[i%n] += v
		}
	} else {
		for i := 0; i < e; i++ {
			rec[i*n/e] += llr[i]
		}
	}
	return w.Decode(rec, k)
}

// Decode runs soft-decision Viterbi decoding over coded-bit LLRs with a
// throwaway workspace; see Workspace.Decode. Hot paths should hold a
// Workspace instead.
func Decode(llr []float64, k int) []uint8 {
	return new(Workspace).Decode(llr, k)
}

// EncodeAndMatch is a convenience that encodes info and rate-matches to e
// channel bits in one step.
func EncodeAndMatch(info []uint8, e int) ([]uint8, error) {
	return RateMatch(Encode(info), e)
}

// RecoverAndDecode is the receive-side convenience: rate-recovers e LLRs
// for an original info length k and Viterbi-decodes with a throwaway
// workspace. Hot paths should hold a Workspace instead.
func RecoverAndDecode(llr []float64, k int) []uint8 {
	return new(Workspace).RecoverAndDecode(llr, k)
}
