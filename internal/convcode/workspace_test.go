package convcode

import (
	"math/rand"
	"testing"

	"nrscope/internal/raceflag"
)

// TestWorkspaceMatchesPackageDecode: a reused Workspace must produce the
// same bits as the package-level functions across block sizes, including
// after shrinking (stale survivor history must not leak between calls).
func TestWorkspaceMatchesPackageDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var w Workspace
	for _, k := range []int{40, 12, 100, 7, 56, 40} {
		info := make([]uint8, k)
		for i := range info {
			info[i] = uint8(rng.Intn(2))
		}
		coded := Encode(info)
		llr := make([]float64, len(coded))
		for i, b := range coded {
			llr[i] = (1 - 2*float64(b)) * (2 + rng.Float64()) // clean channel
		}
		got := w.Decode(llr, k)
		want := Decode(llr, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: bit %d workspace %d != package %d", k, i, got[i], want[i])
			}
		}
		// Rate-matched path, both repetition and puncturing.
		for _, e := range []int{len(coded) * 2, len(coded) * 2 / 3} {
			ch, err := RateMatch(coded, e)
			if err != nil {
				t.Fatalf("RateMatch: %v", err)
			}
			chLLR := make([]float64, e)
			for i, b := range ch {
				chLLR[i] = 1 - 2*float64(b)
			}
			got := w.RecoverAndDecode(chLLR, k)
			want := RecoverAndDecode(chLLR, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d e=%d: bit %d workspace %d != package %d", k, e, i, got[i], want[i])
				}
			}
			for i := range info {
				if got[i] != info[i] {
					t.Fatalf("k=%d e=%d: bit %d decoded %d != encoded %d", k, e, i, got[i], info[i])
				}
			}
		}
	}
}

// TestWorkspaceZeroAlloc: once grown, Decode and RecoverAndDecode must
// not allocate (they run per PDSCH/PUCCH candidate per slot).
func TestWorkspaceZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(12))
	const k = 80
	info := make([]uint8, k)
	for i := range info {
		info[i] = uint8(rng.Intn(2))
	}
	ch, err := EncodeAndMatch(info, 2*CodedLen(k))
	if err != nil {
		t.Fatal(err)
	}
	llr := make([]float64, len(ch))
	for i, b := range ch {
		llr[i] = 1 - 2*float64(b)
	}
	var w Workspace
	w.RecoverAndDecode(llr, k) // grow buffers
	if n := testing.AllocsPerRun(100, func() {
		w.RecoverAndDecode(llr, k)
	}); n != 0 {
		t.Errorf("Workspace.RecoverAndDecode: %.1f allocs/op, want 0", n)
	}
}
