// Package channel provides the wireless channel models the evaluation
// needs: per-slot SNR processes for the channel profiles the paper's
// Fig. 15 emulates (Normal, AWGN, Pedestrian, Vehicle, Urban), a
// log-distance path-loss model for the Fig. 13 floor-coverage sweep, a
// BLER model that links the gNB's MCS choice to retransmission
// probability, and the CQI quantisation UEs report for link adaptation.
//
// Fading is modelled as an AR(1) (Gauss-Markov) process on the dB-domain
// SNR — a standard discrete-time approximation of block fading whose
// coherence parameter plays the role of Doppler: pedestrian channels
// decorrelate slowly, vehicular ones quickly (DESIGN.md §2).
package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// Model enumerates the channel profiles of the paper's §5.4.2 evaluation.
type Model int

// Channel models. Normal is the lab default (static UE, good signal);
// AWGN adds white noise only; Pedestrian/Vehicle/Urban follow the 3GPP
// channel-emulator profiles in spirit.
const (
	Normal Model = iota
	AWGN
	Pedestrian
	Vehicle
	Urban
)

// Models lists all profiles in display order (as in Fig. 15).
var Models = []Model{Normal, AWGN, Pedestrian, Vehicle, Urban}

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case Normal:
		return "Normal"
	case AWGN:
		return "AWGN"
	case Pedestrian:
		return "Pedestrian"
	case Vehicle:
		return "Vehicle"
	case Urban:
		return "Urban"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// params returns (mean SNR offset dB, fading std dB, AR(1) coherence per
// slot). The offsets stack on the configured base SNR.
func (m Model) params() (offset, sigma, rho float64) {
	switch m {
	case Normal:
		return 0, 0.5, 0.99
	case AWGN:
		return -2, 0, 0
	case Pedestrian:
		return -4, 3.5, 0.995
	case Vehicle:
		return -6, 5, 0.92
	case Urban:
		return -10, 8, 0.93
	default:
		return 0, 0, 0
	}
}

// Channel is a per-link SNR process. It is not safe for concurrent use;
// create one per UE (and one for the scope's own reception path).
type Channel struct {
	model Model
	mean  float64 // mean SNR in dB after the model offset
	sigma float64
	rho   float64
	state float64 // zero-mean AR(1) deviation in dB
	rng   *rand.Rand
}

// New creates a channel with the given base mean SNR (dB) and seed.
func New(model Model, baseSNRdB float64, seed int64) *Channel {
	off, sigma, rho := model.params()
	c := &Channel{
		model: model,
		mean:  baseSNRdB + off,
		sigma: sigma,
		rho:   rho,
		rng:   rand.New(rand.NewSource(seed)),
	}
	if sigma > 0 {
		c.state = c.rng.NormFloat64() * sigma
	}
	return c
}

// Model returns the channel profile.
func (c *Channel) Model() Model { return c.model }

// NextSlot advances the fading process one TTI and returns the slot's
// SNR in dB.
func (c *Channel) NextSlot() float64 {
	if c.sigma > 0 {
		// AR(1): state' = rho*state + sqrt(1-rho^2)*sigma*w.
		c.state = c.rho*c.state + math.Sqrt(1-c.rho*c.rho)*c.sigma*c.rng.NormFloat64()
	}
	return c.mean + c.state
}

// SNRdBToN0 converts an SNR in dB (for unit-energy symbols) to the noise
// variance N0 the demapper consumes.
func SNRdBToN0(snrdB float64) float64 {
	return math.Pow(10, -snrdB/10)
}

// Efficiency estimates achievable spectral efficiency (bits/RE) at an
// SNR, as attenuated Shannon capacity — the standard link-abstraction
// used by system simulators.
func Efficiency(snrdB float64) float64 {
	lin := math.Pow(10, snrdB/10)
	eff := 0.75 * math.Log2(1+lin)
	if eff > 7.4 {
		eff = 7.4 // cap just below 256QAM R=0.948 * 8
	}
	return eff
}

// RequiredSNRdB inverts Efficiency: the SNR needed to support eff.
func RequiredSNRdB(eff float64) float64 {
	return 10 * math.Log10(math.Exp2(eff/0.75)-1)
}

// BLER models the first-transmission block error rate when a transport
// block at spectral efficiency eff is sent over a slot with the given
// SNR: a steep sigmoid in the dB gap between required and actual SNR
// (50% at threshold, ~1% with 2 dB headroom), the familiar waterfall of
// coded links. Together with the CQI reporting delay it drives the
// retransmission ratios of Fig. 15.
func BLER(eff, snrdB float64) float64 {
	gap := snrdB - RequiredSNRdB(eff) // positive = headroom
	p := 1 / (1 + math.Exp(2.2*gap))
	if p < 1e-4 {
		p = 1e-4
	}
	return p
}

// CQI quantises an SNR into the 0..15 CQI range (TS 38.214 Table
// 5.2.2.1-2 in spirit: CQI 15 ≈ 256QAM R=0.93, CQI 1 ≈ QPSK R=0.08).
func CQI(snrdB float64) int {
	// CQI thresholds spaced ~1.9 dB apart starting at -6 dB.
	cqi := int(math.Floor((snrdB + 6) / 1.9))
	if cqi < 0 {
		cqi = 0
	}
	if cqi > 15 {
		cqi = 15
	}
	return cqi
}

// CQIEfficiency maps a CQI back to the target spectral efficiency the
// gNB's link adaptation should aim at, with a 2 dB safety backoff (the
// usual outer-loop margin against quantisation and report staleness).
func CQIEfficiency(cqi int) float64 {
	if cqi <= 0 {
		return 0.1
	}
	snr := float64(cqi)*1.9 - 6
	eff := Efficiency(snr - 2)
	if eff < 0.1 {
		eff = 0.1
	}
	return eff
}

// PathLoss computes a log-distance indoor/outdoor path loss in dB:
// PL(d) = PL0 + 10·n·log10(d/d0) + walls. Used for the Fig. 13 floor
// sweep and the Fig. 6 commercial-cell distances.
type PathLoss struct {
	PL0      float64 // loss at the reference distance, dB
	RefDist  float64 // reference distance d0, metres
	Exponent float64 // path-loss exponent n
	WalldB   float64 // additional fixed penetration loss
}

// DefaultIndoor is a typical indoor office model (n = 3).
func DefaultIndoor() PathLoss {
	return PathLoss{PL0: 40, RefDist: 1, Exponent: 3, WalldB: 0}
}

// DefaultOutdoor is a typical urban macro model (n = 2.9, with a modest
// clutter/penetration term). Pair it with EIRP-level transmit powers
// (macro cells radiate ~60-66 dBm EIRP including antenna gain).
func DefaultOutdoor() PathLoss {
	return PathLoss{PL0: 40, RefDist: 1, Exponent: 2.9, WalldB: 5}
}

// DB returns the path loss at distance d metres.
func (p PathLoss) DB(d float64) float64 {
	if d < p.RefDist {
		d = p.RefDist
	}
	return p.PL0 + 10*p.Exponent*math.Log10(d/p.RefDist) + p.WalldB
}

// SNRAt computes the receive SNR at distance d for a transmit power
// (dBm) and receiver noise floor (dBm).
func (p PathLoss) SNRAt(d, txPowerDBm, noiseFloorDBm float64) float64 {
	return txPowerDBm - p.DB(d) - noiseFloorDBm
}
