package channel

import (
	"math"
	"testing"
)

func TestModelString(t *testing.T) {
	want := map[Model]string{Normal: "Normal", AWGN: "AWGN", Pedestrian: "Pedestrian", Vehicle: "Vehicle", Urban: "Urban"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), w)
		}
	}
}

func TestChannelDeterministic(t *testing.T) {
	a := New(Vehicle, 20, 42)
	b := New(Vehicle, 20, 42)
	for i := 0; i < 100; i++ {
		if a.NextSlot() != b.NextSlot() {
			t.Fatal("same seed produced different SNR traces")
		}
	}
}

func TestChannelMeanSNR(t *testing.T) {
	// The long-run average must sit near the configured mean + offset.
	for _, m := range Models {
		c := New(m, 20, 7)
		off, _, _ := m.params()
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += c.NextSlot()
		}
		avg := sum / n
		if math.Abs(avg-(20+off)) > 1.0 {
			t.Errorf("%v: mean SNR %.2f, want %.2f +/- 1", m, avg, 20+off)
		}
	}
}

func TestChannelVariabilityOrdering(t *testing.T) {
	// AWGN must be constant; Urban must fluctuate more than Normal.
	variance := func(m Model) float64 {
		c := New(m, 20, 3)
		var vals []float64
		for i := 0; i < 5000; i++ {
			vals = append(vals, c.NextSlot())
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return ss / float64(len(vals))
	}
	if v := variance(AWGN); v != 0 {
		t.Errorf("AWGN variance %.3f, want 0", v)
	}
	vNormal, vUrban := variance(Normal), variance(Urban)
	if vUrban <= vNormal {
		t.Errorf("Urban variance %.2f not above Normal %.2f", vUrban, vNormal)
	}
}

func TestPedestrianCoherenceSlowerThanVehicle(t *testing.T) {
	// Lag-1 autocorrelation: pedestrian ~ static, vehicle decorrelates.
	autocorr := func(m Model) float64 {
		c := New(m, 20, 9)
		var vals []float64
		for i := 0; i < 20000; i++ {
			vals = append(vals, c.NextSlot())
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var num, den float64
		for i := 1; i < len(vals); i++ {
			num += (vals[i] - mean) * (vals[i-1] - mean)
		}
		for _, v := range vals {
			den += (v - mean) * (v - mean)
		}
		return num / den
	}
	if ped, veh := autocorr(Pedestrian), autocorr(Vehicle); ped <= veh {
		t.Errorf("pedestrian autocorr %.3f not above vehicle %.3f", ped, veh)
	}
}

func TestSNRdBToN0(t *testing.T) {
	if got := SNRdBToN0(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("N0 at 0 dB = %f, want 1", got)
	}
	if got := SNRdBToN0(10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("N0 at 10 dB = %f, want 0.1", got)
	}
}

func TestEfficiencyMonotoneAndCapped(t *testing.T) {
	prev := -1.0
	for snr := -10.0; snr <= 40; snr += 0.5 {
		e := Efficiency(snr)
		if e < prev {
			t.Fatalf("efficiency decreased at %.1f dB", snr)
		}
		prev = e
	}
	if Efficiency(60) > 7.4 {
		t.Error("efficiency exceeds cap")
	}
}

func TestRequiredSNRInvertsEfficiency(t *testing.T) {
	for _, eff := range []float64{0.2, 1, 2, 4, 6} {
		snr := RequiredSNRdB(eff)
		back := Efficiency(snr)
		if math.Abs(back-eff) > 1e-9 {
			t.Errorf("eff %.2f -> snr %.2f -> eff %.4f", eff, snr, back)
		}
	}
}

func TestBLERBehaviour(t *testing.T) {
	eff := 4.0
	req := RequiredSNRdB(eff)
	if p := BLER(eff, req+10); p > 0.01 {
		t.Errorf("BLER with 10 dB headroom = %.4f, want tiny", p)
	}
	if p := BLER(eff, req-5); p < 0.9 {
		t.Errorf("BLER 5 dB under threshold = %.4f, want near 1", p)
	}
	// Monotone in SNR.
	prev := 1.1
	for snr := req - 6; snr <= req+6; snr += 0.5 {
		p := BLER(eff, snr)
		if p > prev {
			t.Fatalf("BLER increased with SNR at %.1f", snr)
		}
		prev = p
	}
}

func TestCQIRangeAndMonotone(t *testing.T) {
	prev := -1
	for snr := -20.0; snr <= 40; snr++ {
		c := CQI(snr)
		if c < 0 || c > 15 {
			t.Fatalf("CQI %d out of range at %.0f dB", c, snr)
		}
		if c < prev {
			t.Fatalf("CQI decreased at %.0f dB", snr)
		}
		prev = c
	}
	if CQI(-20) != 0 || CQI(40) != 15 {
		t.Error("CQI extremes wrong")
	}
}

func TestCQIEfficiencyMonotone(t *testing.T) {
	prev := 0.0
	for c := 0; c <= 15; c++ {
		e := CQIEfficiency(c)
		if e < prev {
			t.Fatalf("CQI efficiency decreased at %d", c)
		}
		prev = e
	}
}

func TestPathLoss(t *testing.T) {
	p := DefaultIndoor()
	if p.DB(1) != p.PL0 {
		t.Errorf("PL at reference distance = %.1f, want %.1f", p.DB(1), p.PL0)
	}
	if p.DB(0.1) != p.PL0 {
		t.Error("distances below reference not clamped")
	}
	// 10x distance at n=3 adds 30 dB.
	if got := p.DB(10) - p.DB(1); math.Abs(got-30) > 1e-9 {
		t.Errorf("decade loss = %.1f dB, want 30", got)
	}
	// SNR at larger distance must be lower.
	if p.SNRAt(5, 30, -90) <= p.SNRAt(50, 30, -90) {
		t.Error("SNR not decreasing with distance")
	}
}

func TestCommercialCellDistancesStillDecodable(t *testing.T) {
	// Fig. 6: NR-Scope received T-Mobile cells at 350 m and 1460 m.
	// With macro-cell transmit power the SNR at those ranges must stay
	// above QPSK-decodable levels (paper §5.3.3 says operational cells
	// have higher transmit power for better coverage).
	p := DefaultOutdoor()
	txPower := 66.0     // dBm EIRP, macro cell incl. antenna gain
	noiseFloor := -96.0 // dBm over 20 MHz
	near := p.SNRAt(350, txPower, noiseFloor)
	far := p.SNRAt(1460, txPower, noiseFloor)
	if near <= far {
		t.Error("near cell not stronger than far cell")
	}
	if far < 0 {
		t.Errorf("SNR at 1460 m = %.1f dB; model leaves commercial cells undecodable", far)
	}
}
