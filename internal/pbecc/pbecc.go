// Package pbecc implements the paper's §6 congestion-control use case:
// a sender whose rate is driven by NR-Scope telemetry, in the spirit of
// PBE-CC (SIGCOMM '20), which used the 4G predecessor NG-Scope the same
// way. The telemetry controller sets its rate to the UE's observed
// allocation plus its fair share of the cell's spare capacity — a
// physical-layer capacity signal that arrives faster than half an RTT
// and needs no probing.
//
// A delay-based end-to-end baseline (AIMD on RTT inflation) is included
// for the comparison the extension experiment runs: it only learns about
// capacity changes after queues build, so it trades utilisation against
// delay, while the telemetry controller tracks capacity directly.
package pbecc

import (
	"nrscope/internal/telemetry"
)

// Controller is a congestion-control policy producing a send rate.
type Controller interface {
	// Name identifies the policy.
	Name() string
	// Rate returns the current target send rate in bits/second.
	Rate() float64
}

// Telemetry is the PBE-CC-style controller: rate follows the RAN's
// allocation plus fair-share spare capacity, as streamed by NR-Scope.
// The allocation signal is a time-windowed sum of scheduled transport
// block bits — time-weighted, unlike a per-DCI average, which would be
// biased toward busy slots and overshoot capacity.
type Telemetry struct {
	// Gain scales the capacity estimate into a send rate (<1 leaves
	// headroom so queues drain).
	Gain float64
	// MinRate is the probe floor: with no allocation observed yet (or a
	// flow that went fully idle) the sender must still offer traffic,
	// or no DCIs ever appear to measure — the telemetry bootstrap.
	MinRate float64

	rnti     uint16
	tti      float64 // seconds per slot
	window   []int64 // ring of scheduled bits per slot
	total    int64
	lastSlot int
	spareBps float64
}

// NewTelemetry builds the controller for one UE's downlink flow, with a
// 50 ms allocation window — short enough to track capacity swings
// within a few dozen TTIs, long enough to smooth scheduler granularity.
func NewTelemetry(rnti uint16, ttiSeconds float64) *Telemetry {
	n := int(0.05 / ttiSeconds)
	if n < 10 {
		n = 10
	}
	return &Telemetry{
		Gain: 0.9, MinRate: 500e3,
		rnti: rnti, tti: ttiSeconds, window: make([]int64, n),
	}
}

// Name implements Controller.
func (t *Telemetry) Name() string { return "nr-scope-telemetry" }

// advance zeroes ring entries between the last observed slot and now.
func (t *Telemetry) advance(slotIdx int) {
	if slotIdx <= t.lastSlot {
		return
	}
	steps := slotIdx - t.lastSlot
	if steps > len(t.window) {
		steps = len(t.window)
	}
	for i := 1; i <= steps; i++ {
		pos := (t.lastSlot + i) % len(t.window)
		t.total -= t.window[pos]
		t.window[pos] = 0
	}
	t.lastSlot = slotIdx
}

// OnRecord consumes one telemetry record from the NR-Scope feed.
func (t *Telemetry) OnRecord(rec telemetry.Record) {
	if rec.RNTI != t.rnti || !rec.Downlink || rec.Common || rec.IsRetx {
		return
	}
	t.advance(rec.SlotIdx)
	t.window[rec.SlotIdx%len(t.window)] += int64(rec.TBS)
	t.total += int64(rec.TBS)
}

// OnSpare consumes the fair-share spare capacity attributed to this UE
// (bits/second), from the scope's per-TTI spare estimate.
func (t *Telemetry) OnSpare(bps float64) {
	t.spareBps = bps
}

// OnIdle advances the window through slots with no DCI for this UE, so
// the rate follows capacity down, not just up.
func (t *Telemetry) OnIdle(slotIdx int) {
	t.advance(slotIdx)
}

// allocBps returns the windowed allocation rate in bits/second.
func (t *Telemetry) allocBps() float64 {
	return float64(t.total) / (float64(len(t.window)) * t.tti)
}

// Rate implements Controller: allocation plus spare, with headroom and
// the probe floor.
func (t *Telemetry) Rate() float64 {
	r := t.Gain * (t.allocBps() + t.spareBps)
	if r < t.MinRate {
		return t.MinRate
	}
	return r
}

// AIMD is the end-to-end baseline: additive increase every RTT, halving
// when the measured RTT inflates past a threshold over the base (the
// classic delay-triggered backoff; loss-based variants behave worse in
// deep cellular buffers — §1 of the paper).
type AIMD struct {
	// IncreaseBpsPerRTT is the additive probe step.
	IncreaseBpsPerRTT float64
	// DelayThreshold (seconds) of queueing delay that triggers backoff.
	DelayThreshold float64

	rate     float64
	rttSlots int
	counter  int
}

// NewAIMD builds the baseline at a starting rate.
func NewAIMD(startBps float64, rttSlots int) *AIMD {
	return &AIMD{
		IncreaseBpsPerRTT: 250e3,
		DelayThreshold:    0.020,
		rate:              startBps,
		rttSlots:          rttSlots,
	}
}

// Name implements Controller.
func (a *AIMD) Name() string { return "aimd-delay" }

// OnSlot feeds one slot's end-to-end observation: the queueing delay the
// flow's packets currently experience (measured one RTT late by a real
// sender; the caller applies that lag).
func (a *AIMD) OnSlot(queueDelaySeconds float64) {
	a.counter++
	if queueDelaySeconds > a.DelayThreshold {
		a.rate /= 2
		if a.rate < 100e3 {
			a.rate = 100e3
		}
		a.counter = 0
		return
	}
	if a.counter >= a.rttSlots {
		a.rate += a.IncreaseBpsPerRTT
		a.counter = 0
	}
}

// Rate implements Controller.
func (a *AIMD) Rate() float64 { return a.rate }
