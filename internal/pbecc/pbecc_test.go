package pbecc

import (
	"testing"

	"nrscope/internal/telemetry"
)

func rec(slot int, rnti uint16, tbs int) telemetry.Record {
	return telemetry.Record{SlotIdx: slot, RNTI: rnti, Downlink: true, TBS: tbs}
}

func TestTelemetryTracksAllocation(t *testing.T) {
	c := NewTelemetry(0x4601, 0.0005)
	// 10 kbit every slot = 20 Mbit/s.
	for s := 1; s <= 200; s++ {
		c.OnRecord(rec(s, 0x4601, 10000))
	}
	rate := c.Rate()
	want := 0.9 * 20e6
	if rate < want*0.9 || rate > want*1.1 {
		t.Errorf("rate %.1f Mbps, want ~%.1f", rate/1e6, want/1e6)
	}
}

func TestTelemetryAddsSpare(t *testing.T) {
	c := NewTelemetry(0x4601, 0.0005)
	for s := 1; s <= 100; s++ {
		c.OnRecord(rec(s, 0x4601, 5000))
	}
	base := c.Rate()
	c.OnSpare(8e6)
	if got := c.Rate(); got <= base || got < base+0.85*0.9*8e6 {
		t.Errorf("spare not folded in: base %.1f, with spare %.1f Mbps", base/1e6, got/1e6)
	}
}

func TestTelemetryIgnoresOtherTraffic(t *testing.T) {
	c := NewTelemetry(0x4601, 0.0005)
	c.OnRecord(rec(1, 0x9999, 50000))                                                   // other UE
	c.OnRecord(telemetry.Record{SlotIdx: 2, RNTI: 0x4601, Downlink: false, TBS: 50000}) // uplink
	r := rec(3, 0x4601, 50000)
	r.IsRetx = true
	c.OnRecord(r) // retransmission
	if c.Rate() != c.MinRate {
		t.Errorf("rate %.0f after only irrelevant records, want the probe floor %.0f", c.Rate(), c.MinRate)
	}
}

func TestTelemetryDecaysWhenIdle(t *testing.T) {
	c := NewTelemetry(0x4601, 0.0005)
	for s := 1; s <= 100; s++ {
		c.OnRecord(rec(s, 0x4601, 10000))
	}
	before := c.Rate()
	// 2000 idle slots (1 s) with periodic idle notifications.
	for s := 101; s <= 2100; s += 10 {
		c.OnIdle(s)
	}
	after := c.Rate()
	if after >= before {
		t.Errorf("rate did not decay during silence: %.1f -> %.1f Mbps", before/1e6, after/1e6)
	}
}

func TestAIMDProbesAndBacksOff(t *testing.T) {
	a := NewAIMD(1e6, 100)
	start := a.Rate()
	for i := 0; i < 500; i++ {
		a.OnSlot(0) // no queueing
	}
	if a.Rate() <= start {
		t.Error("AIMD never probed up")
	}
	grown := a.Rate()
	a.OnSlot(0.5) // massive queueing delay
	if a.Rate() >= grown {
		t.Error("AIMD did not back off on delay")
	}
	if a.Rate() < grown/2-1 {
		t.Errorf("backoff overshot: %.1f vs %.1f", a.Rate(), grown)
	}
	// Floor.
	for i := 0; i < 50; i++ {
		a.OnSlot(1)
	}
	if a.Rate() < 100e3 {
		t.Errorf("rate %f below floor", a.Rate())
	}
}

func TestControllersImplementInterface(t *testing.T) {
	var _ Controller = NewTelemetry(1, 0.0005)
	var _ Controller = NewAIMD(1e6, 100)
	if NewTelemetry(1, 0.0005).Name() == NewAIMD(1e6, 100).Name() {
		t.Error("controllers share a name")
	}
}
