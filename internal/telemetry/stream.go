package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Server streams telemetry records to TCP subscribers as JSON lines —
// the paper's §6 feedback path: NR-Scope runs as a service and pushes
// RAN capacity to application servers faster than half an RTT, without
// involving the (bottleneck) RAN.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	subs   map[net.Conn]*bufio.Writer
	closed bool
	wg     sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{ln: ln, subs: make(map[net.Conn]*bufio.Writer)}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.subs[conn] = bufio.NewWriter(conn)
		met.subscribers.Set(int64(len(s.subs)))
		s.mu.Unlock()
	}
}

// Publish sends a record to every subscriber, dropping subscribers whose
// connections fail (slow consumers do not stall the pipeline).
func (s *Server) Publish(rec Record) {
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	var backlog int64
	for conn, bw := range s.subs {
		if _, err := bw.Write(data); err != nil {
			_ = conn.Close()
			delete(s.subs, conn)
			met.subscribersDrop.Inc()
			continue
		}
		// Buffered bytes before the flush are the stream's momentary
		// backlog: how far this publish got ahead of the sockets.
		backlog += int64(bw.Buffered())
		if err := bw.Flush(); err != nil {
			_ = conn.Close()
			delete(s.subs, conn)
			met.subscribersDrop.Inc()
			continue
		}
		met.recordsPublished.Inc()
	}
	met.backlogBytes.Set(backlog)
	met.subscribers.Set(int64(len(s.subs)))
}

// Subscribers reports the current subscriber count.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close stops the server and disconnects subscribers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.subs {
		_ = conn.Close()
	}
	s.subs = map[net.Conn]*bufio.Writer{}
	met.subscribers.Set(0)
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client subscribes to a telemetry server and decodes its stream.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
}

// Dial connects to a telemetry server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn))}, nil
}

// Next blocks for the next record.
func (c *Client) Next() (Record, error) {
	var rec Record
	if err := c.dec.Decode(&rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
